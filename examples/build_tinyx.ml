(* Tinyx: build a tailor-made Linux VM image for an application and
   boot it next to the stock images (Section 3.2).

   Run with: dune exec examples/build_tinyx.exe *)

module Engine = Lightvm_sim.Engine
module Image = Lightvm_guest.Image
module Build = Lightvm_tinyx.Build
module Kconfig = Lightvm_tinyx.Kconfig
module Vmm = Lightvm_cluster.Vmm

let () =
  (* Build a Tinyx image around nginx, for the Xen platform, with the
     test-driven kernel-option pruning loop on. *)
  let report =
    match Build.build (Build.spec ~app:"nginx" ()) with
    | Ok r -> r
    | Error msg -> failwith ("tinyx build failed: " ^ msg)
  in
  Printf.printf "Tinyx build for nginx:\n";
  Printf.printf "  packages (%d): %s\n"
    (List.length report.Build.packages)
    (String.concat ", " report.Build.packages);
  Printf.printf "  blacklisted install machinery: %s\n"
    (String.concat ", " report.Build.blacklisted);
  Printf.printf "  distribution: %.1f MB, kernel: %d KB (Debian: %d KB)\n"
    (float_of_int report.Build.distribution_kb /. 1024.)
    report.Build.kernel_kb report.Build.debian_kernel_kb;
  Printf.printf
    "  kernel runtime memory: %.1f MB (Debian kernel: %.1f MB)\n"
    (float_of_int report.Build.kernel_runtime_kb /. 1024.)
    (float_of_int report.Build.debian_kernel_runtime_kb /. 1024.);
  Printf.printf "  pruning loop: %d rebuild+boot+test iterations\n"
    report.Build.prune_iterations;

  (* Boot the image we just built. *)
  ignore
    (Engine.run (fun () ->
         let host = Vmm.create () in
         let boot image =
           match Vmm.vm_create host (Vmm.vm_request image) with
           | Error e -> failwith (Vmm.error_to_string e)
           | Ok vi -> (
               ignore (Vmm.vm_boot host ~domid:vi.Vmm.vi_domid);
               match Vmm.vm_counters host ~domid:vi.Vmm.vi_domid with
               | Ok c -> (vi, c.Vmm.vc_create_s +. c.Vmm.vc_boot_s)
               | Error e -> failwith (Vmm.error_to_string e))
         in
         let vi, t_total = boot report.Build.image in
         Printf.printf
           "Booted %S: image %.1f MB, %.1f MB RAM, create+boot %.0f ms\n"
           vi.Vmm.vi_name report.Build.image.Image.disk_mb
           report.Build.image.Image.mem_mb (t_total *. 1e3);
         (* Compare with the paper's pre-calibrated guests. *)
         List.iter
           (fun image ->
             let _vi, t = boot image in
             Printf.printf "  vs %-18s %8.1f ms create+boot\n"
               image.Image.name (t *. 1e3))
           [ Image.daytime; Image.tinyx; Image.debian ];
         Engine.stop ()))
