(* Quickstart: boot a LightVM host, create a unikernel in a few
   milliseconds through the cloud-hypervisor-style Vmm API, checkpoint
   it, and live-migrate it to a second host.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Lightvm_sim.Engine
module Image = Lightvm_guest.Image
module Mode = Lightvm_toolstack.Mode
module Migrate = Lightvm_toolstack.Migrate
module Vmm = Lightvm_cluster.Vmm

let ms t = t *. 1e3

let ok = function
  | Ok v -> v
  | Error e -> failwith (Vmm.error_to_string e)

let () =
  ignore
    (Engine.run (fun () ->
         (* A host with every LightVM mechanism on: chaos toolstack,
            noxs instead of the XenStore, split toolstack, xendevd. *)
         let host = Vmm.create ~mode:Mode.lightvm () in
         Printf.printf "Booted a %s host in mode %S (API %s)\n"
           (Vmm.platform host).Lightvm_hv.Params.name
           (Mode.name (Vmm.mode host))
           Vmm.api_version;

         (* Warm the chaos daemon's shell pool, then create a VM. *)
         Vmm.prefill_pool host Image.daytime ~nics:1 ~disks:0;
         let vi = ok (Vmm.vm_create host (Vmm.vm_request Image.daytime)) in
         ok (Vmm.vm_boot host ~domid:vi.Vmm.vi_domid);
         let c = ok (Vmm.vm_counters host ~domid:vi.Vmm.vi_domid) in
         Printf.printf
           "Created %S (domid %d): create %.2f ms + boot %.2f ms = %.2f ms\n"
           vi.Vmm.vi_name vi.Vmm.vi_domid (ms c.Vmm.vc_create_s)
           (ms c.Vmm.vc_boot_s)
           (ms (c.Vmm.vc_create_s +. c.Vmm.vc_boot_s));
         Printf.printf "  %d device(s) connected, %.1f MB of guest memory\n"
           (vi.Vmm.vi_nics + vi.Vmm.vi_disks)
           (float_of_int
              (Lightvm_hv.Xen.domain_mem_kb (Vmm.xen host)
                 ~domid:vi.Vmm.vi_domid)
           /. 1024.);

         (* Checkpoint: snapshot + restore. *)
         let t0 = Engine.now () in
         let saved = ok (Vmm.vm_snapshot host ~domid:vi.Vmm.vi_domid) in
         Printf.printf "Saved to ramdisk in %.1f ms\n"
           (ms (Engine.now () -. t0));
         let t0 = Engine.now () in
         let restored = ok (Vmm.vm_restore host saved) in
         ok (Vmm.vm_boot host ~domid:restored.Vmm.vi_domid);
         Printf.printf "Restored in %.1f ms\n" (ms (Engine.now () -. t0));

         (* Live-migrate to a second host. *)
         let dst = Vmm.create ~host_id:1 ~mode:Mode.lightvm () in
         let moved, stats =
           ok (Vmm.vm_migrate ~src:host ~dst ~domid:restored.Vmm.vi_domid)
         in
         ok (Vmm.vm_boot dst ~domid:moved.Vmm.vi_domid);
         Printf.printf
           "Migrated in %.1f ms (suspend %.1f + transfer %.1f + resume %.1f)\n"
           (ms stats.Migrate.total) (ms stats.Migrate.suspend)
           (ms stats.Migrate.transfer) (ms stats.Migrate.resume);
         Printf.printf "Guests now: source %d, destination %d\n"
           (Vmm.vm_count host) (Vmm.vm_count dst);
         Engine.stop ()))
