(* Density: pack unikernels onto a host until memory runs out, and
   compare with a Docker engine on the same box (Fig 10 in miniature).

   Run with: dune exec examples/density.exe *)

module Engine = Lightvm_sim.Engine
module Params = Lightvm_hv.Params
module Xen = Lightvm_hv.Xen
module Image = Lightvm_guest.Image
module Mode = Lightvm_toolstack.Mode
module Create = Lightvm_toolstack.Create
module Machine = Lightvm_container.Machine
module Docker = Lightvm_container.Docker
module Layers = Lightvm_container.Layers
module Vmm = Lightvm_cluster.Vmm

(* A deliberately small host so the example finishes instantly: 16 GB. *)
let platform = { Params.xeon_e5_1630 with Params.ram_mb = 16 * 1024 }

let () =
  ignore
    (Engine.run (fun () ->
         (* LightVM guests until out of memory. *)
         let host = Vmm.create ~platform ~mode:Mode.lightvm () in
         let booted = ref 0 in
         (try
            while true do
              match
                Vmm.vm_create host
                  (Vmm.vm_request ~nics:0 Image.noop_unikernel)
              with
              | Ok vi ->
                  ignore (Vmm.vm_boot host ~domid:vi.Vmm.vi_domid);
                  incr booted
              | Error _ -> raise Exit
            done
          with Exit -> ());
         Printf.printf
           "LightVM: %d noop unikernels on a 16 GB host (%.1f MB/guest \
            incl. hypervisor overhead)\n"
           !booted
           (float_of_int (Vmm.guest_mem_kb host)
           /. 1024. /. float_of_int !booted);

         (* Docker on the same hardware. *)
         let machine = Machine.create ~platform () in
         let engine = Docker.create machine in
         let containers = ref 0 in
         (try
            while true do
              match
                Docker.run engine ~image:Layers.alpine_noop
                  ~name:(Printf.sprintf "c%d" !containers) ()
              with
              | Ok _ -> incr containers
              | Error _ -> raise Exit
            done
          with Exit -> ());
         Printf.printf
           "Docker:  %d containers before the engine wedged (thin-pool \
            reservations: %.1f GB)\n"
           !containers
           (float_of_int (Docker.reserved_kb engine) /. 1024. /. 1024.);
         Printf.printf
           "\n(The paper packs 8000 unikernels on a 128 GB machine while \
            Docker stops\n near 3000 — scale the host up to reproduce \
            Fig 10 via the bench harness.)\n";
         Engine.stop ()))
