(* Command-line front end.

     lightvm_cli figure fig9 -n 500      reproduce one figure
     lightvm_cli list                    figures available
     lightvm_cli headline                abstract's numbers
     lightvm_cli tinyx --app nginx       run the Tinyx build system
     lightvm_cli minipy -e 'print(1+2)'  run the mini-Python interpreter
     lightvm_cli boot --image daytime --mode lightvm
     lightvm_cli cluster -n 500 --faults 'migrate.corrupt:0.6'
*)

module E = Lightvm.Experiment
module Vmm = Lightvm_cluster.Vmm
module Series = Lightvm_metrics.Series
module Table = Lightvm_metrics.Table
module Image = Lightvm_guest.Image
module Mode = Lightvm_toolstack.Mode
module Create = Lightvm_toolstack.Create
module Trace = Lightvm_trace.Trace
module Trace_export = Lightvm_trace.Trace_export
module Pool = Lightvm_sim.Pool

open Cmdliner

(* ------------------------------------------------------------------ *)
(* Shared printing *)

let print_labelled (l : E.labelled) =
  Printf.printf "# %s\n" l.E.label;
  List.iter
    (fun (x, y) -> Printf.printf "%g\t%.3f\n" x y)
    (Series.points l.E.series);
  print_newline ()

let print_table t = Format.printf "%a@." Table.pp t

(* The single generic renderer: every experiment comes back as an
   [E.result], whatever mix of series/tables/notes it produced. *)
let print_result (r : E.result) =
  List.iter print_labelled r.E.series;
  List.iter print_table r.E.tables;
  List.iter print_endline r.E.notes

(* ------------------------------------------------------------------ *)
(* figure *)

let lookup_experiment id n =
  match E.find ?n id with
  | Some run -> run
  | None ->
      Printf.eprintf "unknown experiment %S; try: %s\n" id
        (String.concat " " E.names);
      exit 1

(* Run an experiment with tracing on, dump the Chrome JSON if asked,
   and print the plain-text attribution summaries. *)
let run_traced id n trace_file buffer =
  let run = lookup_experiment id n in
  Trace.enable ~capacity:buffer ();
  let r = run () in
  Trace.disable ();
  print_result r;
  print_table (Trace_export.summary_table ());
  print_table (Trace_export.charged_table ());
  print_table (Trace_export.counters_table ());
  match trace_file with
  | None -> ()
  | Some path -> (
      match Trace_export.write_chrome_json path with
      | () ->
          Printf.printf
            "trace: %d spans recorded (%d evicted), Chrome JSON in %s\n"
            (Trace.span_count ()) (Trace.evicted ()) path
      | exception Sys_error msg ->
          Printf.eprintf "cannot write trace: %s\n" msg;
          exit 1)

let lookup_plan id n partition sim_jobs =
  match E.plan ?n ~partition ~sim_jobs id with
  | Some p -> p
  | None ->
      Printf.eprintf "unknown experiment %S; try: %s\n" id
        (String.concat " " E.names);
      exit 1

let parse_partition_or_exit s =
  match E.partition_of_string s with
  | Ok p -> p
  | Error msg ->
      Printf.eprintf "bad --partition: %s\n" msg;
      exit 1

let run_experiment id n jobs partition trace_file =
  let partition = parse_partition_or_exit partition in
  match trace_file with
  (* Tracing instruments the calling domain only, so a traced run is
     always sequential regardless of --jobs. *)
  | Some _ -> run_traced id n trace_file 2_000_000
  | None ->
      let jobs =
        match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
      in
      (* The same worker budget drives both layers of parallelism: the
         per-curve Pool and, inside the partitioned families, the
         per-partition windows. Output is identical either way. *)
      print_result (E.run_plan ~jobs (lookup_plan id n partition jobs))

let n_arg =
  Arg.(value & opt (some int) None
       & info [ "n" ] ~docv:"N"
           ~doc:"Scale (guests/clients/requests, figure-dependent).")

let jobs_arg =
  Arg.(value & opt (some int) None
       & info [ "jobs"; "j" ] ~docv:"JOBS"
           ~doc:"Worker domains for per-curve parallelism (default: \
                 the machine's recommended domain count, capped). The \
                 output is identical for any value; 1 disables the \
                 pool.")

let partition_arg =
  Arg.(value & opt string "host"
       & info [ "partition" ] ~docv:"MODE"
           ~doc:"Partitioning of the multi-host simulations (scale's \
                 partitioned row and the cluster policy jobs): \
                 $(b,host) runs each simulated host in its own \
                 partition of the conservative-sync parallel engine \
                 (on up to --jobs cores); $(b,none) runs the identical \
                 workload on the single-heap engine. Output is \
                 bit-identical either way.")

let trace_file_arg =
  Arg.(value & opt (some string) None
       & info [ "trace" ] ~docv:"FILE"
           ~doc:"Write a Chrome trace_event JSON trace to $(docv) \
                 (load in chrome://tracing or Perfetto).")

let figure_cmd =
  let id =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FIGURE" ~doc:"Figure id, e.g. fig9.")
  in
  let doc = "Reproduce one of the paper's figures." in
  Cmd.v (Cmd.info "figure" ~doc)
    Term.(
      const run_experiment $ id $ n_arg $ jobs_arg $ partition_arg
      $ trace_file_arg)

let trace_cmd =
  let id =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"EXPERIMENT" ~doc:"Experiment id, e.g. fig5.")
  in
  let buffer =
    Arg.(value & opt int 2_000_000
         & info [ "buffer" ] ~docv:"SPANS"
             ~doc:"Span ring-buffer capacity (oldest evicted beyond it).")
  in
  let doc =
    "Run an experiment with the tracer on and print time attribution."
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run_traced $ id $ n_arg $ trace_file_arg $ buffer)

(* ------------------------------------------------------------------ *)
(* reliability: creation under deterministic fault injection *)

module Fault = Lightvm_sim.Fault

let parse_spec_or_exit s =
  match Fault.parse_spec s with
  | Ok spec -> spec
  | Error msg ->
      Printf.eprintf "bad --faults spec: %s\nfault points:\n%s\n" msg
        (String.concat "\n"
           (List.map
              (fun (name, doc) -> Printf.sprintf "  %-16s %s" name doc)
              Fault.points));
      exit 1

let faults_arg =
  Arg.(value & opt (some string) None
       & info [ "faults" ] ~docv:"SPEC"
           ~doc:"Comma-separated fault spec: $(i,point)$(b,:)$(i,P) \
                 injects with probability P, $(i,point)$(b,:@)$(i,K) \
                 every Kth check, a bare $(i,point) always; \
                 $(i,prefix)$(b,*) configures every matching point, \
                 e.g. $(b,xs.eagain:0.1,create.phase*:0.01). Default: \
                 the built-in mixed spec; the empty string disables \
                 every point.")

let seed_arg =
  Arg.(value & opt int64 42L
       & info [ "fault-seed" ] ~docv:"SEED"
           ~doc:"Seed of the per-point fault streams. One (spec, \
                 seed) pair reproduces the exact same failures on \
                 every run and for any --jobs value.")

let run_reliability n jobs spec_str fault_seed =
  let spec = Option.map parse_spec_or_exit spec_str in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  print_result (E.run_plan ~jobs (E.reliability_plan ?n ?spec ~fault_seed ()))

let reliability_cmd =
  let doc =
    "Creation success rates and latency CDFs under fault injection \
     (xl vs chaos, fault rates x0/x1/x2/x4)."
  in
  Cmd.v (Cmd.info "reliability" ~doc)
    Term.(const run_reliability $ n_arg $ jobs_arg $ faults_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* cluster: the multi-host control plane *)

let run_cluster n jobs partition spec_str fault_seed =
  let partition = parse_partition_or_exit partition in
  let spec = Option.map parse_spec_or_exit spec_str in
  let jobs =
    match jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  print_result
    (E.run_plan ~jobs
       (E.cluster_plan ?n ?spec ~fault_seed ~partition ~sim_jobs:jobs ()))

let cluster_cmd =
  let doc =
    "Place guests across a multi-host cluster (bin-pack, spread, \
     pool-everywhere), then drain a host by live migration under \
     injected migration faults and rebalance. --faults overrides the \
     drain job's default spec (migrate.corrupt:0.6); --partition \
     selects the per-host parallel engine (host, the default) or the \
     single-heap engine (none) for the policy jobs."
  in
  Cmd.v (Cmd.info "cluster" ~doc)
    Term.(
      const run_cluster $ n_arg $ jobs_arg $ partition_arg $ faults_arg
      $ seed_arg)

(* ------------------------------------------------------------------ *)
(* serverless: open-loop traffic onto an autoscaled pool *)

let arrival_arg =
  Arg.(value & opt string "poisson"
       & info [ "arrival" ] ~docv:"PROCESS"
           ~doc:"Arrival process: $(b,poisson) (homogeneous), \
                 $(b,diurnal) (sinusoidal rate, +/-60% of --rate over \
                 the run) or $(b,mmpp) (two-state Markov-modulated: \
                 calm at half --rate, bursts at 4x).")

let rate_arg =
  Arg.(value & opt float 2000.
       & info [ "rate" ] ~docv:"REQ_PER_S"
           ~doc:"Mean arrival rate in requests/second.")

let policy_arg =
  Arg.(value & opt string "warmpool"
       & info [ "policy" ] ~docv:"POLICY"
           ~doc:"Instance policy: $(b,warmpool) (split-toolstack \
                 shell pool with the autoscaler), $(b,coldboot) (full \
                 creation pipeline per request) or $(b,container) \
                 (docker run per request).")

let duration_arg =
  Arg.(value & opt (some float) None
       & info [ "duration" ] ~docv:"SECONDS"
           ~doc:"Simulated seconds of arrivals (wins over -n; the \
                 backlog still drains after arrivals stop). Default: \
                 a 2000-request budget, i.e. 2000/rate seconds.")

let run_serverless arrival rate policy duration n spec_str fault_seed =
  let spec = Option.map parse_spec_or_exit spec_str in
  match
    E.serverless_run ?n ?duration ?spec ~fault_seed ~arrival ~rate ~policy ()
  with
  | Ok r -> print_result r
  | Error msg ->
      Printf.eprintf "serverless: %s\n" msg;
      exit 1

let serverless_cmd =
  let doc =
    "Open-loop serverless traffic: an arrival process dispatches \
     function invocations onto VM (or container) instances and \
     reports p50/p99/p999 sojourn times, the queue-depth trace and \
     the warm-pool hit rate. The full calibrated family (coldboot vs \
     warmpool vs container, diurnal/mmpp shapes, the multi-host \
     fleet) runs via $(b,figure serverless); this command runs one \
     configurable cell. Same seed and flags produce bit-identical \
     output for any --jobs or --partition setting. --faults injects \
     creation faults, surfacing as failed requests."
  in
  Cmd.v (Cmd.info "serverless" ~doc)
    Term.(
      const run_serverless $ arrival_arg $ rate_arg $ policy_arg
      $ duration_arg $ n_arg $ faults_arg $ seed_arg)

(* ------------------------------------------------------------------ *)
(* snapshot / resume: boot-once prefixes on disk *)

let run_snapshot key n partition sim_jobs out =
  let partition = parse_partition_or_exit partition in
  let sim_jobs =
    match sim_jobs with Some j -> max 1 j | None -> Pool.default_jobs ()
  in
  match key with
  | None ->
      (* No key: list what this scale would snapshot. *)
      List.iter
        (fun p ->
          Printf.printf "%-28s %s\n" p.E.prefix_key p.E.prefix_describe)
        (E.prefixes ?n ~partition ~sim_jobs ())
  | Some key -> (
      match
        E.snapshot_to_file ?n ~partition ~sim_jobs ~key ~path:out ()
      with
      | Ok description ->
          Printf.printf "snapshot %s: %s\n  -> %s\n" key description out
      | Error msg ->
          Printf.eprintf "snapshot failed: %s\n" msg;
          Printf.eprintf "known prefixes at this scale:\n";
          List.iter
            (fun p -> Printf.eprintf "  %s\n" p.E.prefix_key)
            (E.prefixes ?n ~partition ~sim_jobs ());
          exit 1)

let snapshot_cmd =
  let key =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"PREFIX"
             ~doc:"Prefix key, e.g. $(b,scale:chaos-xs\\@2000) or \
                   $(b,cluster:drain\\@500). Omit to list the keys \
                   available at this scale.")
  in
  let out =
    Arg.(value & opt string "lightvm.lvmsnap"
         & info [ "o"; "output" ] ~docv:"FILE"
             ~doc:"Where to write the snapshot.")
  in
  let doc =
    "Simulate a shared experiment boot prefix once and write the \
     quiesced state to disk. The file carries a versioned header \
     (magic, format version, producing binary digest, config) and can \
     be resumed any number of times by $(b,resume) — fork-many from \
     one boot."
  in
  Cmd.v (Cmd.info "snapshot" ~doc)
    Term.(
      const run_snapshot $ key $ n_arg $ partition_arg $ jobs_arg $ out)

let run_resume path n spec_str fault_seed =
  let spec = Option.map parse_spec_or_exit spec_str in
  match E.resume_from_file ?n ?spec ~fault_seed ~path () with
  | Ok r -> print_result r
  | Error msg ->
      Printf.eprintf "resume failed: %s\n" msg;
      exit 1

let resume_cmd =
  let path =
    Arg.(required & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Snapshot written by $(b,snapshot).")
  in
  let doc =
    "Resume a snapshot and run the suffix its stored key implies: \
     scale images are extended by -n more creations, fleet images run \
     their second fan-out wave, reliability images run an -n-attempt \
     fault-injection cell, drain images drain host 0. A resumed run \
     renders bit-identically to the unbroken simulation; header \
     mismatches (foreign file, other format version, other binary) are \
     refused with the structured reason."
  in
  Cmd.v (Cmd.info "resume" ~doc)
    Term.(const run_resume $ path $ n_arg $ faults_arg $ seed_arg)

let list_cmd =
  let doc = "List the reproducible experiments." in
  Cmd.v (Cmd.info "list" ~doc)
    Term.(const (fun () -> List.iter print_endline E.names) $ const ())

let headline_cmd =
  let doc = "Print the abstract's headline numbers, paper vs measured." in
  Cmd.v (Cmd.info "headline" ~doc)
    Term.(
      const (fun () ->
          print_table (E.headline_numbers ());
          print_table (E.tinyx_table ()))
      $ const ())

(* ------------------------------------------------------------------ *)
(* tinyx *)

let run_tinyx app no_prune =
  match
    Lightvm_tinyx.Build.build
      (Lightvm_tinyx.Build.spec ~app ~prune_kernel:(not no_prune) ())
  with
  | Error msg ->
      Printf.eprintf "build failed: %s\n" msg;
      exit 1
  | Ok r ->
      Printf.printf "packages: %s\n"
        (String.concat ", " r.Lightvm_tinyx.Build.packages);
      Printf.printf "blacklisted: %s\n"
        (String.concat ", " r.Lightvm_tinyx.Build.blacklisted);
      Printf.printf "distribution: %d KB\n"
        r.Lightvm_tinyx.Build.distribution_kb;
      Printf.printf "kernel: %d KB (debian: %d KB), runtime %d KB\n"
        r.Lightvm_tinyx.Build.kernel_kb
        r.Lightvm_tinyx.Build.debian_kernel_kb
        r.Lightvm_tinyx.Build.kernel_runtime_kb;
      Printf.printf "image: %.1f MB disk, %.1f MB memory\n"
        r.Lightvm_tinyx.Build.image.Image.disk_mb
        r.Lightvm_tinyx.Build.image.Image.mem_mb

let tinyx_cmd =
  let app_arg =
    Arg.(value & opt string "nginx"
         & info [ "app" ] ~docv:"APP" ~doc:"Application package.")
  in
  let no_prune =
    Arg.(value & flag
         & info [ "no-prune" ] ~doc:"Skip the kernel-pruning loop.")
  in
  let doc = "Build a Tinyx image (Section 3.2)." in
  Cmd.v (Cmd.info "tinyx" ~doc)
    Term.(const run_tinyx $ app_arg $ no_prune)

(* ------------------------------------------------------------------ *)
(* minipy *)

let run_minipy expr file =
  let source =
    match (expr, file) with
    | Some e, _ -> e
    | None, Some path ->
        let ic = open_in path in
        let n = in_channel_length ic in
        let s = really_input_string ic n in
        close_in ic;
        s
    | None, None ->
        Printf.eprintf "need -e PROGRAM or a file argument\n";
        exit 1
  in
  match Lightvm_minipy.Interp.run source with
  | Ok outcome ->
      List.iter print_endline outcome.Lightvm_minipy.Interp.stdout;
      Printf.eprintf "(%d steps)\n" outcome.Lightvm_minipy.Interp.steps
  | Error msg ->
      Printf.eprintf "%s\n" msg;
      exit 1

let minipy_cmd =
  let expr =
    Arg.(value & opt (some string) None
         & info [ "e" ] ~docv:"PROGRAM" ~doc:"Program text.")
  in
  let file =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"FILE" ~doc:"Program file.")
  in
  let doc = "Run a program through the Minipython interpreter." in
  Cmd.v (Cmd.info "minipy" ~doc) Term.(const run_minipy $ expr $ file)

(* ------------------------------------------------------------------ *)
(* boot *)

let mode_of_string = function
  | "xl" -> Some Mode.xl
  | "chaos-xs" -> Some Mode.chaos_xs
  | "chaos-xs-split" -> Some Mode.chaos_xs_split
  | "chaos-noxs" -> Some Mode.chaos_noxs
  | "lightvm" -> Some Mode.lightvm
  | _ -> None

let run_boot image_name mode_name count =
  let image =
    match Image.find image_name with
    | Some i -> i
    | None ->
        Printf.eprintf "unknown image %S; known: %s\n" image_name
          (String.concat ", "
             (List.map (fun i -> i.Image.name) Image.all));
        exit 1
  in
  let mode =
    match mode_of_string mode_name with
    | Some m -> m
    | None ->
        Printf.eprintf
          "unknown mode %S (xl, chaos-xs, chaos-xs-split, chaos-noxs, \
           lightvm)\n"
          mode_name;
        exit 1
  in
  ignore
    (Lightvm_sim.Engine.run (fun () ->
         let host = Vmm.create ~mode () in
         if mode.Mode.split then
           Vmm.prefill_pool host image ~nics:1 ~disks:0;
         for i = 1 to count do
           let vi =
             match Vmm.vm_create host (Vmm.vm_request image) with
             | Ok vi -> vi
             | Error e ->
                 Printf.eprintf "create failed: %s\n" (Vmm.error_to_string e);
                 exit 1
           in
           (match Vmm.vm_boot host ~domid:vi.Vmm.vi_domid with
           | Ok () -> ()
           | Error e ->
               Printf.eprintf "boot failed: %s\n" (Vmm.error_to_string e);
               exit 1);
           match Vmm.vm_counters host ~domid:vi.Vmm.vi_domid with
           | Error _ -> assert false
           | Ok c ->
               Printf.printf
                 "vm %3d %-14s domid %4d  create %8.2f ms  boot %8.2f ms\n" i
                 vi.Vmm.vi_name vi.Vmm.vi_domid
                 (c.Vmm.vc_create_s *. 1e3)
                 (c.Vmm.vc_boot_s *. 1e3)
         done;
         Lightvm_sim.Engine.stop ()))

let boot_cmd =
  let image =
    Arg.(value & opt string "daytime"
         & info [ "image" ] ~docv:"IMAGE" ~doc:"Guest image name.")
  in
  let mode =
    Arg.(value & opt string "lightvm"
         & info [ "mode" ] ~docv:"MODE" ~doc:"Toolstack mode.")
  in
  let count =
    Arg.(value & opt int 3
         & info [ "count" ] ~docv:"N" ~doc:"How many VMs to boot.")
  in
  let doc = "Boot VMs on a simulated host and print timings." in
  Cmd.v (Cmd.info "boot" ~doc)
    Term.(const run_boot $ image $ mode $ count)

(* ------------------------------------------------------------------ *)
(* xenstore: boot guests on the classic path and dump the store *)

let run_xenstore count =
  ignore
    (Lightvm_sim.Engine.run (fun () ->
         let host = Vmm.create ~mode:Mode.chaos_xs () in
         for _ = 1 to count do
           match Vmm.vm_create host (Vmm.vm_request Image.daytime) with
           | Ok vi -> ignore (Vmm.vm_boot host ~domid:vi.Vmm.vi_domid)
           | Error e -> failwith (Vmm.error_to_string e)
         done;
         let server =
           Lightvm_toolstack.Toolstack.xs_server (Vmm.toolstack host)
         in
         let store = Lightvm_xenstore.Xs_server.store server in
         Printf.printf
           "XenStore after creating %d guest(s) (%d nodes, generation \
            %d):\n"
           count
           (Lightvm_xenstore.Xs_store.node_count store)
           (Lightvm_xenstore.Xs_store.generation store);
         Lightvm_xenstore.Xs_store.iter store
           (fun ~path ~value ~perms ->
             Printf.printf "%-52s = %-14S  (%s)\n"
               (Lightvm_xenstore.Xs_path.to_string path)
               value
               (Lightvm_xenstore.Xs_perms.to_string perms));
         let counters = Lightvm_xenstore.Xs_server.counters server in
         Printf.printf
           "\ndaemon: %d ops, %d watch events, %d commits, %d conflicts, \
            %.2f ms busy\n"
           counters.Lightvm_xenstore.Xs_server.ops
           counters.Lightvm_xenstore.Xs_server.watch_events
           counters.Lightvm_xenstore.Xs_server.tx_commits
           counters.Lightvm_xenstore.Xs_server.tx_conflicts
           (counters.Lightvm_xenstore.Xs_server.busy_time *. 1e3);
         Lightvm_sim.Engine.stop ()))

let xenstore_cmd =
  let count =
    Arg.(value & opt int 2
         & info [ "count" ] ~docv:"N" ~doc:"Guests to create first.")
  in
  let doc = "Dump the XenStore contents after creating guests." in
  Cmd.v (Cmd.info "xenstore" ~doc) Term.(const run_xenstore $ count)

(* ------------------------------------------------------------------ *)

let () =
  Lightvm_sim.Pool.tune_gc ();
  let doc = "LightVM (SOSP'17) reproduction toolkit" in
  let info = Cmd.info "lightvm_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ figure_cmd; trace_cmd; reliability_cmd; cluster_cmd;
            serverless_cmd; snapshot_cmd; resume_cmd; list_cmd;
            headline_cmd; tinyx_cmd; minipy_cmd; boot_cmd; xenstore_cmd ]))
