(* A path caches both its canonical string and its segment list: store
   operations walk [segs] and logging/compare use [str], so neither
   re-splits nor re-concatenates on the hot path (every XenStore op
   used to pay a [String.concat] in [to_string]/[compare]). *)
type t = {
  str : string; (* canonical form: "/", "/a/b", or "@special" *)
  segs : string list; (* [] for the root and for specials *)
  special : bool;
}

exception Invalid of string

let max_path_length = 3072
let max_segment_length = 256

let root = { str = "/"; segs = []; special = false }

let segment_char_ok c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':' || c = '@' || c = '+'

let check_segment s =
  if s = "" then raise (Invalid "empty path segment");
  if String.length s > max_segment_length then
    raise (Invalid ("segment too long: " ^ s));
  String.iter
    (fun c ->
      if not (segment_char_ok c) then
        raise (Invalid (Printf.sprintf "illegal character %C in %S" c s)))
    s

let specials = [ "@introduceDomain"; "@releaseDomain" ]

let of_string s =
  if List.mem s specials then { str = s; segs = []; special = true }
  else begin
    if String.length s > max_path_length then raise (Invalid "path too long");
    if s = "" then raise (Invalid "empty path");
    if s.[0] <> '/' then raise (Invalid ("path not absolute: " ^ s));
    if s = "/" then root
    else begin
      (* Tolerate a single trailing slash, as the real daemon does. *)
      let s =
        if String.length s > 1 && s.[String.length s - 1] = '/' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      let parts = String.split_on_char '/' s in
      match parts with
      | "" :: segs ->
          List.iter check_segment segs;
          { str = s; segs; special = false }
      | _ -> raise (Invalid ("path not absolute: " ^ s))
    end
  end

let of_string_opt s = try Some (of_string s) with Invalid _ -> None

let to_string t = t.str

let segments t = t.segs

let is_special t = t.special

let depth t = List.length t.segs

let concat p seg =
  if p.special then raise (Invalid "cannot extend a special path");
  check_segment seg;
  let str = if p.segs = [] then "/" ^ seg else p.str ^ "/" ^ seg in
  { str; segs = p.segs @ [ seg ]; special = false }

let ( / ) = concat

let parent t =
  if t.special then None
  else
    match t.segs with
    | [] -> None
    | segs ->
        let rec drop_last = function
          | [] | [ _ ] -> []
          | x :: rest -> x :: drop_last rest
        in
        let i = String.rindex t.str '/' in
        if i = 0 then Some root
        else
          Some
            { str = String.sub t.str 0 i; segs = drop_last segs;
              special = false }

let basename t =
  if t.special then None
  else
    match t.segs with
    | [] -> None
    | segs -> Some (List.nth segs (List.length segs - 1))

let is_prefix p ~of_ =
  match (p.special, of_.special) with
  | true, true -> String.equal p.str of_.str
  | true, false | false, true -> false
  | false, false ->
      let rec go = function
        | [], _ -> true
        | _, [] -> false
        | x :: xs, y :: ys -> String.equal x y && go (xs, ys)
      in
      go (p.segs, of_.segs)

let equal a b = String.equal a.str b.str
let compare a b = String.compare a.str b.str
let pp fmt t = Format.pp_print_string fmt t.str

let domain_path domid =
  let id = string_of_int domid in
  {
    str = "/local/domain/" ^ id;
    segs = [ "local"; "domain"; id ];
    special = false;
  }
