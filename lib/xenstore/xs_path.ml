(* A path caches both its canonical string and its segment list: store
   operations walk [segs] and logging/compare use [str], so neither
   re-splits nor re-concatenates on the hot path (every XenStore op
   used to pay a [String.concat] in [to_string]/[compare]). *)
type t = {
  str : string; (* canonical form: "/", "/a/b", or "@special" *)
  segs : string list; (* [] for the root and for specials *)
  special : bool;
}

exception Invalid of string

let max_path_length = 3072
let max_segment_length = 256

let root = { str = "/"; segs = []; special = false }

let segment_char_ok c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':' || c = '@' || c = '+'

let check_segment s =
  if s = "" then raise (Invalid "empty path segment");
  if String.length s > max_segment_length then
    raise (Invalid ("segment too long: " ^ s));
  String.iter
    (fun c ->
      if not (segment_char_ok c) then
        raise (Invalid (Printf.sprintf "illegal character %C in %S" c s)))
    s

let specials = [ "@introduceDomain"; "@releaseDomain" ]

(* Segment interning: one canonical string per distinct segment, so
   equal segments are physically equal and map/trie comparisons on the
   store walk take the pointer fast path before falling back to a real
   compare. The table is domain-local rather than global-with-a-mutex:
   simulations run one per domain (pool workers included), and physical
   equality only ever needs to hold within a domain.

   The table is capped: a long-lived host churning through millions of
   VM lifecycles interns a fresh domid segment per lifecycle, and an
   uncapped table grows the GC live set without bound — major-GC
   marking cost then scales with total VMs ever created, turning a
   linear workload quadratic (this showed up as the serverless-day row
   running 5x slower per request than a short row). Interning is an
   optimisation only ([seg_equal]/[seg_compare] fall back to real
   string comparison), so dropping the table just costs pointer
   misses until the steady-state segments re-intern. *)
let intern_tbl : (string, string) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 1024)

let intern_cap = 65_536

let intern seg =
  let tbl = Domain.DLS.get intern_tbl in
  match Hashtbl.find_opt tbl seg with
  | Some canonical -> canonical
  | None ->
      if Hashtbl.length tbl >= intern_cap then Hashtbl.reset tbl;
      Hashtbl.add tbl seg seg;
      seg

let seg_equal a b = a == b || String.equal a b

let seg_compare a b = if a == b then 0 else String.compare a b

let parse s =
  if List.mem s specials then { str = s; segs = []; special = true }
  else begin
    if String.length s > max_path_length then raise (Invalid "path too long");
    if s = "" then raise (Invalid "empty path");
    if s.[0] <> '/' then raise (Invalid ("path not absolute: " ^ s));
    if s = "/" then root
    else begin
      (* Tolerate a single trailing slash, as the real daemon does. *)
      let s =
        if String.length s > 1 && s.[String.length s - 1] = '/' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      let parts = String.split_on_char '/' s in
      match parts with
      | "" :: segs ->
          List.iter check_segment segs;
          { str = s; segs = List.map intern segs; special = false }
      | _ -> raise (Invalid ("path not absolute: " ^ s))
    end
  end

(* Parsing is pure, and clients re-parse the same strings constantly
   (every simulated round trip starts from a string path), so memoize
   successful parses per domain. The cap is a safety valve against a
   workload filling memory with distinct paths — serverless churn does
   exactly that, one /local/domain/<fresh domid> family per request —
   and it is sized to cover the concurrent working set (dozens of
   in-flight lifecycles x ~50 paths each), not to hoard history: every
   cached dead path is GC live set that every major cycle re-marks.
   Clearing just costs re-parses. *)
let memo_tbl : (string, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 4096)

let memo_cap = 131_072

let of_string s =
  let tbl = Domain.DLS.get memo_tbl in
  match Hashtbl.find_opt tbl s with
  | Some p -> p
  | None ->
      let p = parse s in
      if Hashtbl.length tbl >= memo_cap then Hashtbl.reset tbl;
      Hashtbl.add tbl s p;
      p

let of_string_opt s = try Some (of_string s) with Invalid _ -> None

let to_string t = t.str

let segments t = t.segs

let is_special t = t.special

let depth t = List.length t.segs

let concat p seg =
  if p.special then raise (Invalid "cannot extend a special path");
  check_segment seg;
  let str = if p.segs = [] then "/" ^ seg else p.str ^ "/" ^ seg in
  { str; segs = p.segs @ [ intern seg ]; special = false }

let ( / ) = concat

let parent t =
  if t.special then None
  else
    match t.segs with
    | [] -> None
    | segs ->
        let rec drop_last = function
          | [] | [ _ ] -> []
          | x :: rest -> x :: drop_last rest
        in
        let i = String.rindex t.str '/' in
        if i = 0 then Some root
        else
          Some
            { str = String.sub t.str 0 i; segs = drop_last segs;
              special = false }

let basename t =
  if t.special then None
  else
    match t.segs with
    | [] -> None
    | segs -> Some (List.nth segs (List.length segs - 1))

let is_prefix p ~of_ =
  match (p.special, of_.special) with
  | true, true -> String.equal p.str of_.str
  | true, false | false, true -> false
  | false, false ->
      let rec go = function
        | [], _ -> true
        | _, [] -> false
        | x :: xs, y :: ys -> seg_equal x y && go (xs, ys)
      in
      go (p.segs, of_.segs)

let equal a b = String.equal a.str b.str
let compare a b = String.compare a.str b.str
let pp fmt t = Format.pp_print_string fmt t.str

let domain_path domid =
  let id = intern (string_of_int domid) in
  {
    str = "/local/domain/" ^ id;
    segs = [ intern "local"; intern "domain"; id ];
    special = false;
  }
