(** Watch registry.

    A watch pairs a path with a client token; any modification at or
    below the path fires an event carrying the *modified* path and the
    token.

    The registry is indexed: a path-segment trie (plus a separate
    bucket per special path) makes {!matching} O(depth of the modified
    path + matching watches) and a per-owner index makes {!count},
    {!count_for} and {!remove_owner} O(1)/O(own watches) on the host.

    This is a *host-cost* optimisation only. The paper's scalability
    problem — the real xenstored scanning every registered watch on
    every commit — is a *modeled* cost: {!Xs_server} charges
    [count × per_watch_check] simulated nanoseconds per fire,
    regardless of how the lookup is implemented here. Simulated
    results are identical to the linear-scan registry; only wall-clock
    time changes. *)

type event = { event_path : Xs_path.t; token : string }

type t

val create : unit -> t

val count : t -> int
(** Total registered watches. O(1). *)

val count_for : t -> owner:int -> int
(** Watches registered by [owner] (the quota check). O(1). *)

val add :
  t ->
  owner:int ->
  path:Xs_path.t ->
  token:string ->
  deliver:(event -> unit) ->
  unit

val remove : t -> owner:int -> path:Xs_path.t -> token:string -> bool
(** Removes every watch matching [(owner, path, token)] — duplicates
    included, matching the semantics of an unwatch request against a
    registry that permits double registration. [true] when something
    was removed. *)

val remove_owner : t -> owner:int -> int
(** Drop all watches of a domain (on release); returns how many.
    O(watches owned), not O(registry). *)

val matching : t -> modified:Xs_path.t -> (Xs_path.t * string * (event -> unit)) list
(** Watches whose path is a prefix of (or equal to) [modified], in
    registration order, as [(watch_path, token, deliver)]. Special
    paths ([@introduceDomain], [@releaseDomain]) only match exactly.
    Single pass over the trie spine plus a sort of the hits. *)
