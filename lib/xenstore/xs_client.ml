type t = { server : Xs_server.t; domid : int }

let connect server ~domid = { server; domid }

let domid t = t.domid
let server t = t.server

let fail e = raise (Xs_error.Error e)

let unexpected () = fail Xs_error.EINVAL

let op t ?tx req = Xs_server.op t.server ~caller:t.domid ?tx req

let path s = Xs_path.of_string s

let read t ?tx p =
  match op t ?tx (Xs_server.Read (path p)) with
  | Xs_server.Ok_value v -> v
  | Xs_server.Err e -> fail e
  | _ -> unexpected ()

let read_opt t ?tx p =
  match op t ?tx (Xs_server.Read (path p)) with
  | Xs_server.Ok_value v -> Some v
  | Xs_server.Err Xs_error.ENOENT -> None
  | Xs_server.Err e -> fail e
  | _ -> unexpected ()

let expect_unit = function
  | Xs_server.Ok_unit -> ()
  | Xs_server.Err e -> fail e
  | _ -> unexpected ()

let write t ?tx p v = expect_unit (op t ?tx (Xs_server.Write (path p, v)))
let mkdir t ?tx p = expect_unit (op t ?tx (Xs_server.Mkdir (path p)))
let rm t ?tx p = expect_unit (op t ?tx (Xs_server.Rm (path p)))

let directory t ?tx p =
  match op t ?tx (Xs_server.Directory (path p)) with
  | Xs_server.Ok_list entries -> entries
  | Xs_server.Err e -> fail e
  | _ -> unexpected ()

let set_perms t ?tx p perms =
  expect_unit (op t ?tx (Xs_server.Set_perms (path p, perms)))

let watch t ~path:p ~token ~deliver =
  expect_unit
    (Xs_server.watch t.server ~caller:t.domid ~path:(path p) ~token
       ~deliver)

let unwatch t ~path:p ~token =
  expect_unit (op t (Xs_server.Unwatch (path p, token)))

let with_transaction t f =
  match
    Xs_server.transaction t.server ~caller:t.domid (fun txid ->
        f txid;
        Ok ())
  with
  | Ok () -> ()
  | Error e -> fail e

let get_domain_path t domid =
  match op t (Xs_server.Get_domain_path domid) with
  | Xs_server.Ok_path p -> p
  | Xs_server.Err e -> fail e
  | _ -> unexpected ()

let introduce t domid = expect_unit (op t (Xs_server.Introduce domid))
let release t domid = expect_unit (op t (Xs_server.Release domid))

let write_many t ?tx pairs = List.iter (fun (p, v) -> write t ?tx p v) pairs

let scan_names t = Xs_server.scan_names t.server ~caller:t.domid
