(* Children are keyed by interned path segments (Xs_path.intern), so
   the map's compare hits the pointer fast path on the common case of
   walking with a segment that already names an existing child. Order
   agrees with String.compare, so [bindings] stays sorted by name. *)
module SMap = Map.Make (struct
  type t = string

  let compare = Xs_path.seg_compare
end)

module IMap = Map.Make (Int)

module Node = struct
  type t = {
    value : string;
    perms : Xs_perms.t;
    children : t SMap.t;
  }

  let value t = t.value
  let perms t = t.perms
  let children t = SMap.bindings t.children

  let rec subtree_size t =
    SMap.fold (fun _ child acc -> acc + subtree_size child) t.children 1

  let make ~value ~perms = { value; perms; children = SMap.empty }
end

(* [owned] is a persistent map (not a Hashtbl) so that snapshots are
   pure structural sharing: [snapshot]/[of_snapshot] copy four words
   whatever the number of owners, where a Hashtbl would cost an O(n)
   copy per transaction start and per scratch validation. *)
type t = {
  mutable root : Node.t;
  mutable generation : int;
  mutable count : int;
  mutable owned : int IMap.t;
  mutable memo : (Xs_path.t * Node.t * Node.t) option;
      (** Single-entry lookup memo: [(path, root, node)] from the last
          successful walk. Clients overwhelmingly re-touch one key
          (device state machines poll their own state node), and the
          node tree is immutable, so the memo is valid exactly while
          both the path and the root are physically unchanged — two
          pointer compares instead of a per-segment walk. Any commit
          that replaces [root] clears it, so it never pins a dead
          tree. *)
}

type 'a r = ('a, Xs_error.t) result

type snapshot = {
  snap_root : Node.t;
  snap_generation : int;
  snap_count : int;
  snap_owned : int IMap.t;
}

let adjust_owned t domid delta =
  let cur = Option.value ~default:0 (IMap.find_opt domid t.owned) in
  let n = cur + delta in
  (* Drop exhausted owners instead of keeping a [domid -> 0] entry:
     domids are never reused, so on a host churning millions of VM
     lifecycles those dead entries would grow the map (and the GC live
     set, and every snapshot) without bound. [owned_count] reads a
     missing entry and a zero entry identically. *)
  t.owned <-
    (if n = 0 then IMap.remove domid t.owned else IMap.add domid n t.owned)

let owned_count t ~domid =
  Option.value ~default:0 (IMap.find_opt domid t.owned)

let node_count t = t.count
let generation t = t.generation

let dom0_node value =
  Node.make ~value ~perms:(Xs_perms.make ~owner:0 ~default:Xs_perms.Read ())

let create () =
  let leaf = dom0_node "" in
  let domain = leaf in
  let local = { leaf with Node.children = SMap.singleton "domain" domain } in
  let root =
    {
      (dom0_node "") with
      Node.children =
        SMap.of_seq
          (List.to_seq
             [ ("local", local); ("tool", leaf); ("vm", leaf) ]);
    }
  in
  let t =
    { root; generation = 0; count = 5; owned = IMap.empty; memo = None }
  in
  adjust_owned t 0 5;
  t

let rec lookup_node node = function
  | [] -> Some node
  | seg :: rest -> (
      match SMap.find_opt seg node.Node.children with
      | None -> None
      | Some child -> lookup_node child rest)

let lookup t path =
  match t.memo with
  | Some (p, r, node) when p == path && r == t.root -> Some node
  | _ ->
      if Xs_path.is_special path then None
      else (
        match lookup_node t.root (Xs_path.segments path) with
        | Some node as found ->
            t.memo <- Some (path, t.root, node);
            found
        | None -> None)

let exists t path = Option.is_some (lookup t path)

let read t ~caller path =
  match lookup t path with
  | None -> Error Xs_error.ENOENT
  | Some node ->
      if Xs_perms.can_read (Node.perms node) ~domid:caller then
        Ok (Node.value node)
      else Error Xs_error.EACCES

let directory t ~caller path =
  match lookup t path with
  | None -> Error Xs_error.ENOENT
  | Some node ->
      if Xs_perms.can_read (Node.perms node) ~domid:caller then
        Ok (List.map fst (Node.children node))
      else Error Xs_error.EACCES

let get_perms t ~caller path =
  match lookup t path with
  | None -> Error Xs_error.ENOENT
  | Some node ->
      if Xs_perms.can_read (Node.perms node) ~domid:caller then
        Ok (Node.perms node)
      else Error Xs_error.EACCES

(* Functional update along [segs]; [f] transforms the (optional) target
   node into its replacement. Counts created nodes so quotas and node
   totals stay exact. *)
let update t ~caller path ~(f : Node.t option -> (Node.t, Xs_error.t) result)
    =
  if Xs_path.is_special path then Error Xs_error.EINVAL
  else begin
    let created = ref [] in
    let rec go (node : Node.t) segs : (Node.t, Xs_error.t) result =
      match segs with
      | [] -> assert false
      | [ last ] -> (
          let existing = SMap.find_opt last node.Node.children in
          (match existing with
          | Some _ -> ()
          | None ->
              (* Creating: need write permission on the parent. *)
              if not (Xs_perms.can_write (Node.perms node) ~domid:caller)
              then raise (Xs_error.Error Xs_error.EACCES));
          match f existing with
          | Error e -> Error e
          | Ok replacement ->
              (* [Option.is_none], not polymorphic [= None]: [existing]
                 carries a whole subtree, and structural equality is a C
                 call the compiler can't see through. *)
              if Option.is_none existing then created := caller :: !created;
              Ok
                {
                  node with
                  Node.children =
                    SMap.add last replacement node.Node.children;
                })
      | seg :: rest -> (
          let child =
            match SMap.find_opt seg node.Node.children with
            | Some c -> c
            | None ->
                (* Implicit intermediate node owned by the caller. *)
                if not (Xs_perms.can_write (Node.perms node) ~domid:caller)
                then raise (Xs_error.Error Xs_error.EACCES);
                created := caller :: !created;
                Node.make ~value:""
                  ~perms:(Xs_perms.owned_default caller)
          in
          match go child rest with
          | Error e -> Error e
          | Ok child' ->
              Ok
                {
                  node with
                  Node.children = SMap.add seg child' node.Node.children;
                })
    in
    match Xs_path.segments path with
    | [] -> Error Xs_error.EINVAL
    | segs -> (
        match go t.root segs with
        | Error e -> Error e
        | Ok root' ->
            t.root <- root';
            t.memo <- None;
            t.generation <- t.generation + 1;
            List.iter
              (fun owner ->
                t.count <- t.count + 1;
                adjust_owned t owner 1)
              !created;
            Ok ()
        | exception Xs_error.Error e -> Error e)
  end

let write_generic t ~caller path value =
  update t ~caller path ~f:(fun existing ->
      match existing with
      | Some node ->
          if Xs_perms.can_write (Node.perms node) ~domid:caller then
            Ok { node with Node.value = value }
          else Error Xs_error.EACCES
      | None ->
          Ok (Node.make ~value ~perms:(Xs_perms.owned_default caller)))

(* Overwriting an existing node is the dominant write shape (device
   state machines and per-domain bookkeeping rewrite the same keys),
   and it needs none of [update]'s machinery: nothing is created, so no
   quota/ownership accounting, no per-level [result] boxing and no
   created-node list — just rebuild the spine. Any missing segment
   falls back to the generic path, which keeps the two observably
   identical (same permission checks, same errors). *)
exception Missing

exception Unchanged

let write_slow t ~caller path value =
  if Xs_path.is_special path then Error Xs_error.EINVAL
  else
    match Xs_path.segments path with
    | [] -> Error Xs_error.EINVAL
    | segs -> (
        let rec overwrite (node : Node.t) = function
          | [] -> assert false
          | [ last ] -> (
              match SMap.find_opt last node.Node.children with
              | None -> raise_notrace Missing
              | Some leaf ->
                  if Xs_perms.can_write (Node.perms leaf) ~domid:caller then
                    if String.equal (Node.value leaf) value then
                      (* Same-value refresh (clients re-assert keys they
                         already own, as oxenstored also special-cases):
                         the tree after the rebuild would be structurally
                         identical, so skip it. The write still counts —
                         generation bumps, watches fire at the server
                         layer — only the allocation disappears. *)
                      raise_notrace Unchanged
                    else
                      {
                        node with
                        Node.children =
                          SMap.add last
                            { leaf with Node.value = value }
                            node.Node.children;
                      }
                  else raise_notrace (Xs_error.Error Xs_error.EACCES))
          | seg :: rest -> (
              match SMap.find_opt seg node.Node.children with
              | None -> raise_notrace Missing
              | Some child ->
                  {
                    node with
                    Node.children =
                      SMap.add seg (overwrite child rest) node.Node.children;
                  })
        in
        match overwrite t.root segs with
        | root' ->
            t.root <- root';
            t.memo <- None;
            t.generation <- t.generation + 1;
            Ok ()
        | exception Unchanged ->
            t.generation <- t.generation + 1;
            Ok ()
        | exception Missing -> write_generic t ~caller path value
        | exception Xs_error.Error e -> Error e)

let write t ~caller path value =
  match t.memo with
  | Some (p, r, leaf)
    when p == path && r == t.root
         && Xs_perms.can_write (Node.perms leaf) ~domid:caller
         && String.equal (Node.value leaf) value ->
      (* Memoized same-value refresh: the tree would come out
         structurally identical, so only the generation advances. *)
      t.generation <- t.generation + 1;
      Ok ()
  | _ -> write_slow t ~caller path value

let mkdir t ~caller path =
  if exists t path then Ok () (* silent success, like the real daemon *)
  else
    update t ~caller path ~f:(fun existing ->
        match existing with
        | Some node -> Ok node
        | None ->
            Ok (Node.make ~value:"" ~perms:(Xs_perms.owned_default caller)))

let set_perms t ~caller path perms =
  let previous_owner = ref None in
  let result =
    update t ~caller path ~f:(fun existing ->
        match existing with
        | None -> Error Xs_error.ENOENT
        | Some node ->
            if caller = 0 || Xs_perms.owner (Node.perms node) = caller then begin
              previous_owner := Some (Xs_perms.owner (Node.perms node));
              Ok { node with Node.perms = perms }
            end
            else Error Xs_error.EACCES)
  in
  (match (result, !previous_owner) with
  | Ok (), Some old_owner ->
      let new_owner = Xs_perms.owner perms in
      if old_owner <> new_owner then begin
        adjust_owned t old_owner (-1);
        adjust_owned t new_owner 1
      end
  | _ -> ());
  result

let count_owners node =
  let rec go acc (n : Node.t) =
    let owner = Xs_perms.owner (Node.perms n) in
    let acc =
      IMap.add owner
        (1 + Option.value ~default:0 (IMap.find_opt owner acc))
        acc
    in
    SMap.fold (fun _ c acc -> go acc c) n.Node.children acc
  in
  go IMap.empty node

let rm t ~caller path =
  if Xs_path.is_special path then Error Xs_error.EINVAL
  else
    match Xs_path.segments path with
    | [] -> Error Xs_error.EINVAL
    | segs -> (
        match lookup t path with
        | None -> Error Xs_error.ENOENT
        | Some target ->
            let removable parent_node =
              Xs_perms.can_write (Node.perms parent_node) ~domid:caller
              || Xs_perms.can_write (Node.perms target) ~domid:caller
            in
            let rec go node = function
              | [] -> assert false
              | [ last ] ->
                  if not (removable node) then
                    raise (Xs_error.Error Xs_error.EACCES);
                  {
                    node with
                    Node.children = SMap.remove last node.Node.children;
                  }
              | seg :: rest ->
                  let child = SMap.find seg node.Node.children in
                  {
                    node with
                    Node.children =
                      SMap.add seg (go child rest) node.Node.children;
                  }
            in
            (match go t.root segs with
            | root' ->
                IMap.iter
                  (fun owner n -> adjust_owned t owner (-n))
                  (count_owners target);
                t.count <- t.count - Node.subtree_size target;
                t.root <- root';
                t.memo <- None;
                t.generation <- t.generation + 1;
                Ok ()
            | exception Xs_error.Error e -> Error e))

let iter t f =
  let rec go path node =
    List.iter
      (fun (name, child) ->
        let child_path = Xs_path.concat path name in
        f ~path:child_path ~value:(Node.value child)
          ~perms:(Node.perms child);
        go child_path child)
      (Node.children node)
  in
  go Xs_path.root t.root

(* Both O(1): the node tree is immutable and [owned] is persistent, so
   a snapshot is four words and restoring one shares all structure.
   Mutations on either side replace fields; they never leak across
   (pinned by the snapshot-independence test in test_xenstore.ml). *)
let snapshot t =
  {
    snap_root = t.root;
    snap_generation = t.generation;
    snap_count = t.count;
    snap_owned = t.owned;
  }

let of_snapshot s =
  {
    root = s.snap_root;
    generation = s.snap_generation;
    count = s.snap_count;
    owned = s.snap_owned;
    memo = None;
  }
