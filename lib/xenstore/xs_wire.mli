(** The XenStore binary wire protocol (xs_wire.h).

    Messages are a 16-byte little-endian header — operation, request id,
    transaction id, payload length — followed by a payload of
    NUL-separated strings. This codec is what a guest's xenbus ring
    carries; the simulation charges time per message, and the tests
    round-trip real byte buffers through it. *)

type op =
  | Debug
  | Directory
  | Read
  | Get_perms
  | Watch
  | Unwatch
  | Transaction_start
  | Transaction_end
  | Introduce
  | Release
  | Get_domain_path
  | Write
  | Mkdir
  | Rm
  | Set_perms
  | Watch_event
  | Error
  | Is_domain_introduced
  | Resume
  | Set_target

val op_to_int : op -> int
(** The numeric codes of the real protocol. *)

val op_of_int : int -> op option

type header = {
  op : op;
  req_id : int32;
  tx_id : int32;
  len : int;
}

val header_size : int
(** 16 bytes. *)

val max_payload : int
(** 4096 bytes, as in the real protocol. *)

exception Malformed of string

val pack : op -> req_id:int32 -> tx_id:int32 -> string list -> bytes
(** Payload strings are each NUL-terminated. Raises {!Malformed} when
    the payload would exceed {!max_payload}. *)

type scratch
(** A reusable pack buffer, for callers that consume each message
    before producing the next (as a xenbus ring slot does). *)

val scratch : unit -> scratch

val pack_into : scratch -> op -> req_id:int32 -> tx_id:int32 ->
  string list -> bytes
(** Like {!pack} but encodes into the scratch's buffer, growing it as
    needed, and returns that buffer without copying. The result may be
    longer than the message (the header's [len] bounds the payload) and
    is only valid until the next [pack_into] on the same scratch. *)

val unpack_header : bytes -> header
(** Reads the first 16 bytes. Raises {!Malformed} on short input or
    unknown operation. *)

val unpack : bytes -> header * string list
(** Full decode; splits the payload on NULs. *)

val payload_bytes : string list -> int
(** Encoded payload size, for cost accounting without packing. *)
