type op =
  | Debug
  | Directory
  | Read
  | Get_perms
  | Watch
  | Unwatch
  | Transaction_start
  | Transaction_end
  | Introduce
  | Release
  | Get_domain_path
  | Write
  | Mkdir
  | Rm
  | Set_perms
  | Watch_event
  | Error
  | Is_domain_introduced
  | Resume
  | Set_target

(* The numeric codes of the real protocol. Direct matches (compiled to
   jump tables) rather than an assoc list: every message packs one and
   unpacks one, so these sit on the wire hot path. *)
let op_to_int = function
  | Debug -> 0
  | Directory -> 1
  | Read -> 2
  | Get_perms -> 3
  | Watch -> 4
  | Unwatch -> 5
  | Transaction_start -> 6
  | Transaction_end -> 7
  | Introduce -> 8
  | Release -> 9
  | Get_domain_path -> 10
  | Write -> 11
  | Mkdir -> 12
  | Rm -> 13
  | Set_perms -> 14
  | Watch_event -> 15
  | Error -> 16
  | Is_domain_introduced -> 17
  | Resume -> 18
  | Set_target -> 19

let op_of_int = function
  | 0 -> Some Debug
  | 1 -> Some Directory
  | 2 -> Some Read
  | 3 -> Some Get_perms
  | 4 -> Some Watch
  | 5 -> Some Unwatch
  | 6 -> Some Transaction_start
  | 7 -> Some Transaction_end
  | 8 -> Some Introduce
  | 9 -> Some Release
  | 10 -> Some Get_domain_path
  | 11 -> Some Write
  | 12 -> Some Mkdir
  | 13 -> Some Rm
  | 14 -> Some Set_perms
  | 15 -> Some Watch_event
  | 16 -> Some Error
  | 17 -> Some Is_domain_introduced
  | 18 -> Some Resume
  | 19 -> Some Set_target
  | _ -> None

type header = {
  op : op;
  req_id : int32;
  tx_id : int32;
  len : int;
}

let header_size = 16
let max_payload = 4096

exception Malformed of string

let payload_bytes strings =
  List.fold_left (fun acc s -> acc + String.length s + 1) 0 strings

let fill buf op ~req_id ~tx_id strings ~len =
  Bytes.set_int32_le buf 0 (Int32.of_int (op_to_int op));
  Bytes.set_int32_le buf 4 req_id;
  Bytes.set_int32_le buf 8 tx_id;
  Bytes.set_int32_le buf 12 (Int32.of_int len);
  let pos = ref header_size in
  List.iter
    (fun s ->
      Bytes.blit_string s 0 buf !pos (String.length s);
      Bytes.set buf (!pos + String.length s) '\000';
      pos := !pos + String.length s + 1)
    strings

let pack op ~req_id ~tx_id strings =
  let len = payload_bytes strings in
  if len > max_payload then
    raise (Malformed (Printf.sprintf "payload too large: %d" len));
  let buf = Bytes.create (header_size + len) in
  fill buf op ~req_id ~tx_id strings ~len;
  buf

(* A reusable pack buffer for callers that consume each message before
   producing the next (a xenbus ring slot does exactly this). The
   returned bytes are the scratch itself — longer than the message; the
   header's [len] bounds what a reader may look at — and are only valid
   until the next [pack_into] on the same scratch. *)
type scratch = { mutable scratch_buf : Bytes.t }

let scratch () = { scratch_buf = Bytes.create 256 }

let pack_into scratch op ~req_id ~tx_id strings =
  let len = payload_bytes strings in
  if len > max_payload then
    raise (Malformed (Printf.sprintf "payload too large: %d" len));
  let need = header_size + len in
  if Bytes.length scratch.scratch_buf < need then
    scratch.scratch_buf <-
      Bytes.create (max need (2 * Bytes.length scratch.scratch_buf));
  let buf = scratch.scratch_buf in
  fill buf op ~req_id ~tx_id strings ~len;
  buf

let unpack_header buf =
  if Bytes.length buf < header_size then
    raise (Malformed "short header");
  let opcode = Int32.to_int (Bytes.get_int32_le buf 0) in
  match op_of_int opcode with
  | None -> raise (Malformed (Printf.sprintf "unknown op %d" opcode))
  | Some op ->
      {
        op;
        req_id = Bytes.get_int32_le buf 4;
        tx_id = Bytes.get_int32_le buf 8;
        len = Int32.to_int (Bytes.get_int32_le buf 12);
      }

let unpack buf =
  let header = unpack_header buf in
  if Bytes.length buf < header_size + header.len then
    raise (Malformed "truncated payload");
  if header.len > max_payload then raise (Malformed "oversized payload");
  (* Slice the NUL-terminated strings straight out of [buf]: each
     fragment is copied exactly once, with no intermediate payload
     string, no split list and no reversal. A well-formed payload ends
     with a NUL, so the scan stopping at [limit] drops the trailing
     empty fragment for free; an unterminated trailing fragment is kept
     as-is (same behaviour as splitting the copied payload). *)
  let limit = header_size + header.len in
  let rec strings pos =
    if pos >= limit then []
    else
      let stop =
        match Bytes.index_from_opt buf pos '\000' with
        | Some i when i < limit -> i
        | Some _ | None -> limit
      in
      let s = Bytes.sub_string buf pos (stop - pos) in
      s :: strings (stop + 1)
  in
  (header, strings header_size)
