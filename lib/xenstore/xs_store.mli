(** The XenStore database: a tree of nodes, each carrying a value,
    permissions and named children.

    Nodes are immutable; a store is a mutable handle onto the current
    root plus bookkeeping. Immutability makes transaction snapshots O(1)
    (exactly the trick the real oxenstored plays) and lets transactions
    run against private views.

    This module is pure bookkeeping — simulation-time costs are charged
    by {!Xs_server}, which also enforces quotas and fires watches. *)

module Node : sig
  type t

  val value : t -> string

  val perms : t -> Xs_perms.t

  val children : t -> (string * t) list
  (** Sorted by name. *)

  val subtree_size : t -> int
  (** Number of nodes including [t]. *)
end

type t

type 'a r = ('a, Xs_error.t) result

val create : unit -> t
(** A fresh store containing the conventional skeleton: [/], [/local],
    [/local/domain], [/tool] and [/vm], all owned by Dom0. *)

val generation : t -> int
(** Bumped on every successful mutation. *)

val node_count : t -> int

val owned_count : t -> domid:int -> int
(** Number of nodes whose permission owner is [domid]. *)

val exists : t -> Xs_path.t -> bool

val lookup : t -> Xs_path.t -> Node.t option

val read : t -> caller:int -> Xs_path.t -> string r
(** [Error ENOENT] when absent, [Error EACCES] when not readable by
    [caller]. No operation in this module raises; failures are
    returned as {!Xs_error.t} codes. *)

val write : t -> caller:int -> Xs_path.t -> string -> unit r
(** Creates the node (and any missing ancestors, owned by [caller]) if
    needed; requires write permission on the node or, when creating, on
    the nearest existing ancestor. Overwrites of an existing node take
    a specialized spine-rebuild path that skips the quota/ownership
    bookkeeping (nothing is created), and an overwrite with the value
    the node already holds skips the rebuild entirely (the generation
    still advances, so transactions and watches observe the write);
    creating writes go through {!write_generic}. *)

val write_generic : t -> caller:int -> Xs_path.t -> string -> unit r
(** The general functional-update implementation of {!write}: handles
    node creation and all accounting. [write] delegates to it whenever
    any path segment is missing; it is exported as the reference side
    of the bench pair pinning the overwrite fast path. *)

val mkdir : t -> caller:int -> Xs_path.t -> unit r
(** Like [write] with an empty value, but succeeds silently when the
    node already exists (matching the real daemon). *)

val rm : t -> caller:int -> Xs_path.t -> unit r
(** Removes the whole subtree. ENOENT when absent; EINVAL on the root. *)

val directory : t -> caller:int -> Xs_path.t -> string list r
(** Child names, sorted; [Error ENOENT] or [Error EACCES]. *)

val get_perms : t -> caller:int -> Xs_path.t -> Xs_perms.t r
(** [Error ENOENT] when absent (perms are readable by anyone). *)

val set_perms : t -> caller:int -> Xs_path.t -> Xs_perms.t -> unit r
(** Only the owner (or Dom0) may change permissions. *)

val iter :
  t ->
  (path:Xs_path.t -> value:string -> perms:Xs_perms.t -> unit) ->
  unit
(** Visit every node (except the root) in depth-first path order —
    what [xenstore-ls] prints. *)

type snapshot

val snapshot : t -> snapshot
(** O(1): the node tree is immutable and the ownership counts are a
    persistent map, so a snapshot is pure structural sharing — no
    copies, whatever the store size. *)

val of_snapshot : snapshot -> t
(** An independent store seeded from the snapshot; mutations do not
    affect the original. Also O(1) — restoring shares all structure. *)
