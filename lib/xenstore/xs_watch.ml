type event = { event_path : Xs_path.t; token : string }

type watch = {
  owner : int;
  path : Xs_path.t;
  token : string;
  deliver : event -> unit;
  seq : int; (* registration order; the dispatch order contract *)
}

(* One trie node per registered path prefix. [here] holds the watches
   whose path ends exactly at this node, newest first (matching the
   old list's push order); [children] is keyed by interned segments.
   Special paths (@introduceDomain/@releaseDomain) get parent-less
   bucket nodes outside the trie, so the same node/index machinery
   covers them without prefix semantics leaking in. *)
type node = {
  mutable here : watch list;
  children : (string, node) Hashtbl.t;
  parent : node option; (* None for the root and the special buckets *)
  seg : string; (* key of this node in [parent]'s children *)
}

(* Per-owner index: every watch of a domain with the node holding it,
   so quota checks are O(1) and release is O(own watches), not a scan
   of the registry. *)
type owner_slot = {
  mutable n : int;
  mutable entries : (node * watch) list;
}

type t = {
  root : node;
  specials : (string, node) Hashtbl.t;
  by_owner : (int, owner_slot) Hashtbl.t;
  mutable total : int;
  mutable next_seq : int;
}

let mk_node ?parent ?(seg = "") () =
  { here = []; children = Hashtbl.create 4; parent; seg }

let create () =
  {
    root = mk_node ();
    specials = Hashtbl.create 2;
    by_owner = Hashtbl.create 64;
    total = 0;
    next_seq = 0;
  }

let count t = t.total

let count_for t ~owner =
  match Hashtbl.find_opt t.by_owner owner with
  | Some slot -> slot.n
  | None -> 0

(* The node a path's watches live at, creating the spine on demand. *)
let node_for t path =
  if Xs_path.is_special path then begin
    let key = Xs_path.to_string path in
    match Hashtbl.find_opt t.specials key with
    | Some node -> node
    | None ->
        let node = mk_node ~seg:key () in
        Hashtbl.replace t.specials key node;
        node
  end
  else
    List.fold_left
      (fun node seg ->
        match Hashtbl.find_opt node.children seg with
        | Some child -> child
        | None ->
            let child = mk_node ~parent:node ~seg () in
            Hashtbl.replace node.children seg child;
            child)
      t.root (Xs_path.segments path)

(* Read-only lookup: [None] when no watch was ever registered there. *)
let find_node t path =
  if Xs_path.is_special path then
    Hashtbl.find_opt t.specials (Xs_path.to_string path)
  else
    let rec go node = function
      | [] -> Some node
      | seg :: rest -> (
          match Hashtbl.find_opt node.children seg with
          | None -> None
          | Some child -> go child rest)
    in
    go t.root (Xs_path.segments path)

(* Drop now-empty nodes bottom-up so a churny registry (guests come
   and go) does not leave an ever-growing skeleton behind. Special
   buckets have no parent and are never pruned (there are two). *)
let rec prune node =
  match node.parent with
  | Some parent when node.here = [] && Hashtbl.length node.children = 0 ->
      Hashtbl.remove parent.children node.seg;
      prune parent
  | _ -> ()

let slot_for t owner =
  match Hashtbl.find_opt t.by_owner owner with
  | Some slot -> slot
  | None ->
      let slot = { n = 0; entries = [] } in
      Hashtbl.replace t.by_owner owner slot;
      slot

let add t ~owner ~path ~token ~deliver =
  let w = { owner; path; token; deliver; seq = t.next_seq } in
  t.next_seq <- t.next_seq + 1;
  let node = node_for t path in
  node.here <- w :: node.here;
  let slot = slot_for t owner in
  slot.n <- slot.n + 1;
  slot.entries <- (node, w) :: slot.entries;
  t.total <- t.total + 1

let drop_from_owner t w =
  match Hashtbl.find_opt t.by_owner w.owner with
  | None -> ()
  | Some slot ->
      slot.entries <- List.filter (fun (_, w') -> w' != w) slot.entries;
      slot.n <- slot.n - 1;
      if slot.n = 0 then Hashtbl.remove t.by_owner w.owner

let remove t ~owner ~path ~token =
  match find_node t path with
  | None -> false
  | Some node ->
      let gone, kept =
        List.partition
          (fun w ->
            w.owner = owner
            && Xs_path.equal w.path path
            && String.equal w.token token)
          node.here
      in
      if gone = [] then false
      else begin
        node.here <- kept;
        prune node;
        List.iter (drop_from_owner t) gone;
        t.total <- t.total - List.length gone;
        true
      end

let remove_owner t ~owner =
  match Hashtbl.find_opt t.by_owner owner with
  | None -> 0
  | Some slot ->
      Hashtbl.remove t.by_owner owner;
      List.iter
        (fun (node, w) ->
          node.here <- List.filter (fun w' -> w' != w) node.here;
          prune node)
        slot.entries;
      t.total <- t.total - slot.n;
      slot.n

let matching t ~modified =
  (* Collect in one pass: a special modified path matches exactly its
     bucket; otherwise every node on the trie walk along [modified]'s
     segments holds, by construction, exactly the watches whose path
     is a prefix of (or equal to) [modified]. Cost: O(depth + hits),
     independent of the registry size. *)
  let hits =
    if Xs_path.is_special modified then
      match Hashtbl.find_opt t.specials (Xs_path.to_string modified) with
      | Some node -> node.here
      | None -> []
    else begin
      let acc = ref [] in
      let rec walk node segs =
        acc := List.rev_append node.here !acc;
        match segs with
        | [] -> ()
        | seg :: rest -> (
            match Hashtbl.find_opt node.children seg with
            | None -> ()
            | Some child -> walk child rest)
      in
      walk t.root (Xs_path.segments modified);
      !acc
    end
  in
  List.sort (fun a b -> Int.compare a.seq b.seq) hits
  |> List.map (fun w -> (w.path, w.token, w.deliver))
