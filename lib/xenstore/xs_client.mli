(** Convenience client over {!Xs_server} — the moral equivalent of
    libxs. Raises {!Xs_error.Error} instead of returning results, and
    adds the small helpers toolstacks lean on.

    Every operation below that talks to the daemon can raise
    {!Xs_error.Error} with the code the daemon answered ([EACCES] on a
    permission failure, [EQUOTA] when a node-creating request is over
    quota — natural or injected, see [lib/sim/fault.ml] — and so on);
    the codes worth special handling are called out per function. *)

type t

val connect : Xs_server.t -> domid:int -> t
(** A connection speaking as [domid] (0 for the toolstack and Dom0
    daemons, the guest's own domid for frontends). Permissions and
    quotas are enforced against this identity. *)

val domid : t -> int

val server : t -> Xs_server.t

val read : t -> ?tx:int -> string -> string
(** @raise Xs_error.Error [ENOENT] when the node does not exist,
    [EACCES] when it is not readable by this connection's domid. *)

val read_opt : t -> ?tx:int -> string -> string option
(** [read] with [ENOENT] mapped to [None]; other errors still raise
    {!Xs_error.Error}. *)

val write : t -> ?tx:int -> string -> string -> unit
(** Creates missing intermediate nodes implicitly, owned by the
    caller, as the real daemon does.
    @raise Xs_error.Error [EACCES] on a write-protected existing node,
    [EQUOTA] when creating the node would exceed the caller's quota,
    [EEXIST] when a toolstack name-registration write collides with a
    running guest's name. *)

val mkdir : t -> ?tx:int -> string -> unit
(** Silent success when the node already exists, like [XS_MKDIR].
    @raise Xs_error.Error [EACCES] or [EQUOTA]. *)

val rm : t -> ?tx:int -> string -> unit
(** Removes the node and its whole subtree.
    @raise Xs_error.Error [ENOENT] when the node does not exist,
    [EACCES] when neither the parent nor the target is writable by the
    caller, [EINVAL] on special paths. *)

val directory : t -> ?tx:int -> string -> string list
(** Child names of a node.
    @raise Xs_error.Error [ENOENT] or [EACCES]. *)

val set_perms : t -> ?tx:int -> string -> Xs_perms.t -> unit
(** @raise Xs_error.Error [ENOENT], or [EACCES] when the caller is
    neither Dom0 nor the node's owner. *)

val watch :
  t -> path:string -> token:string -> deliver:(Xs_watch.event -> unit) ->
  unit
(** Register a watch. [deliver] runs in a fresh simulation process per
    event, starting with the immediate synthetic firing the protocol
    mandates on registration. Never raises. *)

val unwatch : t -> path:string -> token:string -> unit
(** @raise Xs_error.Error [ENOENT] when no such [(path, token)] watch
    is registered by this caller. *)

val with_transaction : t -> (int -> unit) -> unit
(** Run the body in a transaction and commit. A commit conflict
    ([EAGAIN], natural or injected) is retried with exponential
    backoff up to the daemon's retry bound, re-running the body
    against a fresh snapshot each time (see DESIGN.md "Failure
    model").
    @raise Xs_error.Error [EAGAIN] when the retry bound is exhausted,
    [EBUSY] when the daemon has too many open transactions, or
    whatever error the body itself raised. *)

val get_domain_path : t -> int -> string
(** The daemon's [/local/domain/<domid>] answer; never raises. *)

val introduce : t -> int -> unit
(** Announce a domain to the daemon (fires the [@introduceDomain]
    special watch). Never raises. *)

val release : t -> int -> unit
(** Forget a domain: drops its watch registrations, aborts its open
    transactions and fires [@releaseDomain]. Never raises. *)

val write_many : t -> ?tx:int -> (string * string) list -> unit
(** One {!write} per pair, in order; raises like {!write} and stops at
    the first failure. *)

val scan_names : t -> string list
(** Every running guest's name ([libxl_name_to_domid]'s scan):
    equivalent to a {!directory} of [/local/domain] plus a {!read_opt}
    of each child's [name] node — same simulated charges, same
    errors — served from the daemon's name index (see
    {!Xs_server.scan_names}). *)
