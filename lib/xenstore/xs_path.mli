(** XenStore paths: absolute, slash-separated, validated.

    Mirrors the constraints of the real store: segment characters are
    restricted, segments are bounded, and the whole path is bounded
    (XENSTORE_ABS_PATH_MAX). *)

type t

exception Invalid of string

val root : t

val of_string : string -> t
(** Parses an absolute path like ["/local/domain/3/name"]. Raises
    {!Invalid} on relative paths, empty segments, illegal characters or
    oversized paths. A single ["/"] is the root. Special watch paths
    ["@introduceDomain"] and ["@releaseDomain"] are accepted. *)

val of_string_opt : string -> t option

val to_string : t -> string

val segments : t -> string list
(** Root has no segments. The segment list is cached in the path value
    (as is the canonical string), so [segments]/[to_string]/[compare]
    are allocation-free — store operations never re-split the path.
    Segments are interned (see {!intern}), so two paths sharing a
    segment share the same string value. *)

val intern : string -> string
(** The canonical (physically shared) copy of a segment string, per
    domain. Every path constructor interns its segments, so segment
    comparisons in the store and watch trie can test physical equality
    first ({!seg_equal}, {!seg_compare}). *)

val seg_equal : string -> string -> bool
(** [String.equal] with a pointer fast path for interned segments. *)

val seg_compare : string -> string -> int
(** [String.compare] with a pointer fast path for interned segments. *)

val is_special : t -> bool
(** True for the [@...] watch paths. *)

val depth : t -> int

val concat : t -> string -> t
(** [concat p seg] appends one validated segment.
    @raise Invalid on illegal characters, an empty or oversized
    segment, or when the result would exceed {!max_path_length}. *)

val ( / ) : t -> string -> t
(** Alias for {!concat}. *)

val parent : t -> t option
(** [None] for the root. *)

val basename : t -> string option

val is_prefix : t -> of_:t -> bool
(** [is_prefix p ~of_:q]: does [p] equal [q] or name an ancestor of
    [q]? The root is a prefix of everything non-special. *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val domain_path : int -> t
(** [/local/domain/<domid>] *)

val max_path_length : int

val max_segment_length : int
