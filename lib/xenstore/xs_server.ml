module Engine = Lightvm_sim.Engine
module Fault = Lightvm_sim.Fault
module Resource = Lightvm_sim.Resource
module Trace = Lightvm_trace.Trace

type request =
  | Read of Xs_path.t
  | Write of Xs_path.t * string
  | Mkdir of Xs_path.t
  | Rm of Xs_path.t
  | Directory of Xs_path.t
  | Get_perms of Xs_path.t
  | Set_perms of Xs_path.t * Xs_perms.t
  | Watch of Xs_path.t * string
  | Unwatch of Xs_path.t * string
  | Transaction_start
  | Transaction_end of bool
  | Get_domain_path of int
  | Introduce of int
  | Release of int

type response =
  | Ok_unit
  | Ok_value of string
  | Ok_list of string list
  | Ok_perms of Xs_perms.t
  | Ok_txid of int
  | Ok_path of string
  | Err of Xs_error.t

type counters = {
  mutable ops : int;
  mutable watch_events : int;
  mutable tx_commits : int;
  mutable tx_conflicts : int;
  mutable uniqueness_cmps : int;
  mutable busy_time : float;
}

(* Host-side index of /local/domain: child id -> its [name] node's
   (value, perms), or [None] when the domain directory has no name
   node. Map over strings so iteration order is the store's sorted
   directory order. See the "name index" comment below for the
   invariants. *)
module NMap = Map.Make (String)

type t = {
  profile : Xs_costs.profile;
  store : Xs_store.t;
  watches : Xs_watch.t;
  log : Xs_logging.t;
  mutex : Resource.t;
  txs : (int, int * Xs_transaction.t) Hashtbl.t; (* txid -> caller, tx *)
  mutable next_txid : int;
  quota_nodes : int;
  counters : counters;
  register_watch_cb : Xs_watch.event -> unit;
  mutable name_idx : (string * Xs_perms.t) option NMap.t;
  mutable name_idx_gen : int; (* store generation it mirrors; -1 = stale *)
}

let create ?(profile = Xs_costs.oxenstored) ?(quota_nodes = 1000)
    ?(register_watch_cb = fun _ -> ()) () =
  {
    profile;
    store = Xs_store.create ();
    watches = Xs_watch.create ();
    log =
      Xs_logging.create ~enabled:profile.Xs_costs.logging_enabled ();
    mutex = Resource.create 1;
    txs = Hashtbl.create 16;
    next_txid = 1;
    quota_nodes;
    counters =
      {
        ops = 0;
        watch_events = 0;
        tx_commits = 0;
        tx_conflicts = 0;
        uniqueness_cmps = 0;
        busy_time = 0.;
      };
    register_watch_cb;
    name_idx = NMap.empty;
    name_idx_gen = -1;
  }

let profile t = t.profile
let store t = t.store
let counters t = t.counters
let watch_count t = Xs_watch.count t.watches

let charge ?(category = "xs") t cost =
  t.counters.busy_time <- t.counters.busy_time +. cost;
  Xs_costs.charge ~category cost

let request_payload_bytes = function
  | Read p | Mkdir p | Rm p | Directory p | Get_perms p ->
      String.length (Xs_path.to_string p) + 1
  | Write (p, v) -> String.length (Xs_path.to_string p) + String.length v + 2
  | Set_perms (p, perms) ->
      String.length (Xs_path.to_string p)
      + String.length (Xs_perms.to_string perms)
      + 2
  | Watch (p, tok) | Unwatch (p, tok) ->
      String.length (Xs_path.to_string p) + String.length tok + 2
  | Transaction_start -> 1
  | Transaction_end _ -> 2
  | Get_domain_path _ | Introduce _ | Release _ -> 8

(* The access log records one line per request and one per reply. *)
let charge_logging t =
  let p = t.profile in
  let rotated = Xs_logging.log_access t.log ~lines:p.Xs_costs.log_lines_per_op in
  let cost =
    float_of_int p.Xs_costs.log_lines_per_op *. p.Xs_costs.log_line
  in
  let cost =
    if rotated then
      cost
      +. (float_of_int (Xs_logging.files t.log)
          *. p.Xs_costs.log_rotate_per_file)
    else cost
  in
  charge ~category:"xs.logging" t cost

(* Constant paths, parsed once — these sit on the per-request and
   per-creation hot paths. *)
let domain_dir = Xs_path.of_string "/local/domain"
let introduce_path = Xs_path.of_string "@introduceDomain"
let release_path = Xs_path.of_string "@releaseDomain"

(* Writing a guest's name triggers the daemon's uniqueness check: scan
   every running guest and compare names (paper Section 4.2). *)
let is_name_write path =
  match Xs_path.segments path with
  | [ "local"; "domain"; _; "name" ] -> true
  | _ -> false

(* --- name index --------------------------------------------------- *)
(* The modeled daemon scans /local/domain on every name write, and
   libxl's name resolution re-reads every guest's name several times
   per creation — together Θ(N) store walks per guest, Θ(N²) for a
   boot storm, which came to dominate the host wall clock of the scale
   experiments. The index caches, per /local/domain child, the (value,
   perms) of its [name] node so those scans read a sorted map instead
   of walking the tree once per guest.

   INVARIANT (modeled cost vs host cost, see fire_watches below): the
   index only ever replaces host-side tree walks — every simulated
   charge and counter the per-node walk would have made is still made,
   in the same order (see [uniqueness_scan] and [scan_names]).

   Consistency: every successful store mutation flows through
   [fire_watches] exactly once per modified path (plain ops, each
   transaction-commit path, and the Introduce/Release special events,
   which do not touch the store), so [note_modified] keeps the index
   exact incrementally; [name_idx_gen] tracks the store generation it
   mirrors and forces a full rebuild if they ever diverge. *)

let probe t path =
  match Xs_store.lookup t.store path with
  | None -> None
  | Some node -> Some (Xs_store.Node.value node, Xs_store.Node.perms node)

let refresh_domain t id =
  let dir = Xs_path.concat domain_dir id in
  match probe t dir with
  | None -> t.name_idx <- NMap.remove id t.name_idx
  | Some _ ->
      t.name_idx <-
        NMap.add id (probe t (Xs_path.concat dir "name")) t.name_idx

let note_modified t path =
  if t.name_idx_gen >= 0 then begin
    (match Xs_path.segments path with
    | "local" :: "domain" :: rest -> (
        match rest with
        | [] -> t.name_idx_gen <- -2 (* /local/domain replaced: rebuild *)
        | id :: _ -> refresh_domain t id)
    | [ "local" ] -> t.name_idx_gen <- -2 (* subtree may be gone *)
    | _ -> ());
    if t.name_idx_gen >= 0 then
      t.name_idx_gen <- Xs_store.generation t.store
  end

let ensure_index t =
  if t.name_idx_gen <> Xs_store.generation t.store then begin
    let idx =
      match Xs_store.directory t.store ~caller:0 domain_dir with
      | Error _ -> NMap.empty
      | Ok ids ->
          List.fold_left
            (fun idx id ->
              NMap.add id
                (probe t Xs_path.(concat (concat domain_dir id) "name"))
                idx)
            NMap.empty ids
    in
    t.name_idx <- idx;
    t.name_idx_gen <- Xs_store.generation t.store
  end

(* Identical modeled behaviour to the reference loop it replaces — the
   directory-entry charge, then per candidate a comparison counter tick
   and a per_name_cmp charge, stopping at the first collision in
   directory order (including its abort on a non-numeric child) — but
   reading the index instead of doing two store walks per guest. *)
let uniqueness_scan t path value =
  let p = t.profile in
  ensure_index t;
  if not (Xs_store.exists t.store domain_dir) then Ok ()
  else begin
    charge ~category:"xs.name_scan" t
      (float_of_int (NMap.cardinal t.name_idx) *. p.Xs_costs.per_dir_entry);
    let self =
      match Xs_path.segments path with
      | [ _; _; id; _ ] -> id
      | _ -> ""
    in
    let exception Stop of (unit, Xs_error.t) result in
    try
      NMap.iter
        (fun id entry ->
          if not (Xs_path.seg_equal id self) then begin
            t.counters.uniqueness_cmps <- t.counters.uniqueness_cmps + 1;
            charge ~category:"xs.name_scan" t p.Xs_costs.per_name_cmp;
            if int_of_string_opt id = None then raise_notrace (Stop (Ok ()))
            else
              match entry with
              | Some (existing, _) when existing = value && value <> "" ->
                  raise_notrace (Stop (Error Xs_error.EEXIST))
              | Some _ | None -> ()
          end)
        t.name_idx;
      Ok ()
    with Stop r -> r
  end

(* Fire watches for one modified path. INVARIANT (modeled cost vs host
   cost): the real xenstored scans its whole watch list on every fire,
   and that linear scan is precisely what the paper measures — so we
   charge [count × per_watch_check] simulated ns here, always. The
   host-side lookup below is a trie ([Xs_watch.matching], O(depth +
   hits)) purely so large-N experiments finish in reasonable wall
   clock; it must never influence the simulated clock. *)
let fire_watches t modified =
  note_modified t modified;
  let p = t.profile in
  charge ~category:"xs.watch" t
    (float_of_int (Xs_watch.count t.watches) *. p.Xs_costs.per_watch_check);
  let hits = Xs_watch.matching t.watches ~modified in
  List.iter
    (fun (_wpath, token, deliver) ->
      t.counters.watch_events <- t.counters.watch_events + 1;
      Trace.Counter.incr "xs.watch_fires";
      charge ~category:"xs.watch" t p.Xs_costs.watch_fire;
      let event = { Xs_watch.event_path = modified; token } in
      Engine.spawn ~name:"xs-watch-delivery" (fun () -> deliver event))
    hits

let check_quota t ~caller path =
  (* Fault point: a spurious EQUOTA on a node-creating request, as a
     real oxenstored returns when another domain's allocations race the
     caller past its quota. Injected only for Dom0 clients — the
     toolstack and backend daemons, which own the retry/rollback
     machinery — never for guest frontends, whose drivers treat store
     errors as fatal. Checked before the store so the injection
     schedule depends only on the request sequence, not on contents. *)
  if caller = 0 then
    if Fault.fire "xs.equota" then Error Xs_error.EQUOTA else Ok ()
  else if Xs_store.exists t.store path then Ok ()
  else if Xs_store.owned_count t.store ~domid:caller >= t.quota_nodes then
    Error Xs_error.EQUOTA
  else Ok ()

let lift = function Ok () -> Ok_unit | Error e -> Err e

let do_plain t ~caller req =
  let p = t.profile in
  match req with
  | Read path -> (
      match Xs_store.read t.store ~caller path with
      | Ok v -> Ok_value v
      | Error e -> Err e)
  | Directory path -> (
      match Xs_store.directory t.store ~caller path with
      | Ok entries ->
          charge ~category:"xs.dir" t
            (float_of_int (List.length entries) *. p.Xs_costs.per_dir_entry);
          Ok_list entries
      | Error e -> Err e)
  | Get_perms path -> (
      match Xs_store.get_perms t.store ~caller path with
      | Ok perms -> Ok_perms perms
      | Error e -> Err e)
  | Write (path, value) -> (
      match check_quota t ~caller path with
      | Error e -> Err e
      | Ok () -> (
          let unique =
            if is_name_write path then uniqueness_scan t path value
            else Ok ()
          in
          match unique with
          | Error e -> Err e
          | Ok () -> (
              match Xs_store.write t.store ~caller path value with
              | Ok () ->
                  fire_watches t path;
                  Ok_unit
              | Error e -> Err e)))
  | Mkdir path -> (
      match check_quota t ~caller path with
      | Error e -> Err e
      | Ok () -> (
          match Xs_store.mkdir t.store ~caller path with
          | Ok () ->
              fire_watches t path;
              Ok_unit
          | Error e -> Err e))
  | Rm path -> (
      match Xs_store.rm t.store ~caller path with
      | Ok () ->
          fire_watches t path;
          Ok_unit
      | Error e -> Err e)
  | Set_perms (path, perms) -> (
      match Xs_store.set_perms t.store ~caller path perms with
      | Ok () ->
          fire_watches t path;
          Ok_unit
      | Error e -> Err e)
  | Watch _ | Unwatch _ | Transaction_start | Transaction_end _
  | Get_domain_path _ | Introduce _ | Release _ ->
      Err Xs_error.EINVAL

let do_in_tx t ~caller tx req =
  match req with
  | Read path -> (
      match Xs_transaction.read tx ~caller path with
      | Ok v -> Ok_value v
      | Error e -> Err e)
  | Directory path -> (
      match Xs_transaction.directory tx ~caller path with
      | Ok entries -> Ok_list entries
      | Error e -> Err e)
  | Write (path, value) -> (
      match check_quota t ~caller path with
      | Error e -> Err e
      | Ok () -> lift (Xs_transaction.write tx ~caller path value))
  | Mkdir path -> lift (Xs_transaction.mkdir tx ~caller path)
  | Rm path -> lift (Xs_transaction.rm tx ~caller path)
  | Set_perms (path, perms) ->
      lift (Xs_transaction.set_perms tx ~caller path perms)
  | Get_perms path -> (
      match Xs_store.get_perms (Xs_transaction.view tx) ~caller path with
      | Ok perms -> Ok_perms perms
      | Error e -> Err e)
  | Watch _ | Unwatch _ | Transaction_start | Transaction_end _
  | Get_domain_path _ | Introduce _ | Release _ ->
      Err Xs_error.EINVAL

let end_transaction t tx commit =
  let p = t.profile in
  charge ~category:"xs.tx" t p.Xs_costs.tx_commit;
  if not commit then begin
    Xs_transaction.abort tx;
    Ok_unit
  end
  else begin
    charge ~category:"xs.tx" t
      (float_of_int (Xs_transaction.op_count tx)
      *. p.Xs_costs.tx_replay_per_op);
    (* Fault point: the snapshot is declared stale exactly as if a
       concurrent commit had invalidated the read set — the journal is
       discarded and the caller sees EAGAIN, the same path a genuine
       conflict takes. *)
    let commit_result =
      if Fault.fire "xs.eagain" then begin
        Xs_transaction.abort tx;
        Error Xs_error.EAGAIN
      end
      else Xs_transaction.commit tx ~into:t.store
    in
    match commit_result with
    | Ok modified ->
        t.counters.tx_commits <- t.counters.tx_commits + 1;
        List.iter (fun path -> fire_watches t path) modified;
        Ok_unit
    | Error e ->
        t.counters.tx_conflicts <- t.counters.tx_conflicts + 1;
        Err e
  end

let dispatch t ~caller ~tx req =
  let p = t.profile in
  match req with
  | Transaction_start ->
      charge ~category:"xs.tx" t p.Xs_costs.tx_start;
      let txid = t.next_txid in
      t.next_txid <- t.next_txid + 1;
      if Hashtbl.length t.txs > 256 then Err Xs_error.EBUSY
      else begin
        Hashtbl.replace t.txs txid
          (caller, Xs_transaction.start t.store ~id:txid);
        Ok_txid txid
      end
  | Transaction_end commit -> (
      match tx with
      | None -> Err Xs_error.EINVAL
      | Some txid -> (
          match Hashtbl.find_opt t.txs txid with
          | None -> Err Xs_error.EINVAL
          | Some (owner, transaction) ->
              if owner <> caller then Err Xs_error.EACCES
              else begin
                Hashtbl.remove t.txs txid;
                end_transaction t transaction commit
              end))
  | Get_domain_path domid ->
      Ok_path (Xs_path.to_string (Xs_path.domain_path domid))
  | Introduce domid ->
      fire_watches t introduce_path;
      ignore domid;
      Ok_unit
  | Release domid ->
      ignore (Xs_watch.remove_owner t.watches ~owner:domid);
      List.iter
        (fun (txid, (owner, transaction)) ->
          if owner = domid then begin
            Xs_transaction.abort transaction;
            Hashtbl.remove t.txs txid
          end)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.txs []);
      fire_watches t release_path;
      Ok_unit
  | Unwatch (path, token) ->
      if Xs_watch.remove t.watches ~owner:caller ~path ~token then Ok_unit
      else Err Xs_error.ENOENT
  | Watch _ -> Err Xs_error.EINVAL (* use the [watch] entry point *)
  | (Read _ | Write _ | Mkdir _ | Rm _ | Directory _ | Get_perms _
    | Set_perms _) as plain -> (
      match tx with
      | None -> do_plain t ~caller plain
      | Some txid -> (
          match Hashtbl.find_opt t.txs txid with
          | None -> Err Xs_error.EINVAL
          | Some (owner, transaction) ->
              if owner <> caller then Err Xs_error.EACCES
              else do_in_tx t ~caller transaction plain))

let with_daemon t f =
  Resource.with_resource t.mutex (fun () ->
      t.counters.ops <- t.counters.ops + 1;
      f ())

let request_kind = function
  | Read _ -> "read"
  | Write _ -> "write"
  | Mkdir _ -> "mkdir"
  | Rm _ -> "rm"
  | Directory _ -> "directory"
  | Get_perms _ -> "get_perms"
  | Set_perms _ -> "set_perms"
  | Watch _ -> "watch"
  | Unwatch _ -> "unwatch"
  | Transaction_start -> "transaction_start"
  | Transaction_end _ -> "transaction_end"
  | Get_domain_path _ -> "get_domain_path"
  | Introduce _ -> "introduce"
  | Release _ -> "release"

(* One span per dispatched request, plus the counters the paper cares
   about: ops by type, softirqs and privilege crossings implied by the
   request/ack message protocol. *)
let traced_request t ~caller req f =
  let payload_bytes = request_payload_bytes req in
  if not (Trace.enabled ()) then begin
    (* Requests are the host hot path at large guest counts (libxl's
       name scans issue O(guests) of them per creation), so skip the
       span/counter bookkeeping — including its attr and label
       allocations — entirely when tracing is off. The simulated
       charges are identical on both branches. *)
    charge ~category:"xs.message" t
      (Xs_costs.message_cost t.profile ~payload_bytes);
    charge_logging t;
    f ()
  end
  else begin
    let kind = request_kind req in
    Trace.Counter.incr ("xs.op." ^ kind);
    Trace.Counter.incr ~by:t.profile.Xs_costs.irqs_per_message "xs.softirqs";
    Trace.Counter.incr ~by:t.profile.Xs_costs.crossings_per_message
      "xs.crossings";
    let cmps_before = t.counters.uniqueness_cmps in
    let sp =
      Trace.Span.begin_ ~category:"xs"
        ~attrs:
          [
            ("caller", string_of_int caller);
            ("payload_bytes", string_of_int payload_bytes);
          ]
        kind
    in
    Fun.protect
      ~finally:(fun () ->
        let cmps = t.counters.uniqueness_cmps - cmps_before in
        if cmps > 0 then
          Trace.Span.add_attr sp "name_cmps" (string_of_int cmps);
        Trace.Span.end_ sp)
      (fun () ->
        charge ~category:"xs.message" t
          (Xs_costs.message_cost t.profile ~payload_bytes);
        charge_logging t;
        f ())
  end

let op t ~caller ?tx req =
  with_daemon t (fun () ->
      traced_request t ~caller req (fun () -> dispatch t ~caller ~tx req))

(* Bulk name resolution (libxl_name_to_domid's scan): modeled exactly
   as a Directory of /local/domain followed by one Read of every
   child's name node — the same message/logging charges, ops counts and
   directory-entry charge, in the same order — but served from the name
   index, skipping the per-request path construction, tree walks and
   response allocation that made this scan the host-side hot path at
   large guest counts. With tracing enabled the reference per-request
   loop runs instead, keeping one span per modeled request. *)
let scan_names t ~caller =
  if Trace.enabled () then begin
    let ids =
      match op t ~caller (Directory domain_dir) with
      | Ok_list ids -> ids
      | Err e -> raise (Xs_error.Error e)
      | _ -> raise (Xs_error.Error Xs_error.EINVAL)
    in
    List.filter_map
      (fun id ->
        match
          op t ~caller (Read Xs_path.(concat (concat domain_dir id) "name"))
        with
        | Ok_value v -> Some v
        | Err Xs_error.ENOENT -> None
        | Err e -> raise (Xs_error.Error e)
        | _ -> None)
      ids
  end
  else begin
    let p = t.profile in
    with_daemon t (fun () ->
        charge ~category:"xs.message" t
          (Xs_costs.message_cost p
             ~payload_bytes:
               (String.length (Xs_path.to_string domain_dir) + 1));
        charge_logging t;
        ensure_index t;
        match Xs_store.lookup t.store domain_dir with
        | None -> raise (Xs_error.Error Xs_error.ENOENT)
        | Some node ->
            if
              not
                (Xs_perms.can_read (Xs_store.Node.perms node) ~domid:caller)
            then raise (Xs_error.Error Xs_error.EACCES);
            charge ~category:"xs.dir" t
              (float_of_int (NMap.cardinal t.name_idx)
              *. p.Xs_costs.per_dir_entry));
    (* One modeled Read round-trip per directory entry: payload is
       "/local/domain/" ^ id ^ "/name" plus the trailing NUL. *)
    let base =
      String.length (Xs_path.to_string domain_dir)
      + String.length "/name" + 2
    in
    let names =
      NMap.fold
        (fun id entry acc ->
          with_daemon t (fun () ->
              charge ~category:"xs.message" t
                (Xs_costs.message_cost p
                   ~payload_bytes:(base + String.length id));
              charge_logging t);
          match entry with
          | Some (v, perms) ->
              if Xs_perms.can_read perms ~domid:caller then v :: acc
              else raise (Xs_error.Error Xs_error.EACCES)
          | None -> acc)
        t.name_idx []
    in
    List.rev names
  end

let watch t ~caller ~path ~token ~deliver =
  with_daemon t (fun () ->
      traced_request t ~caller
        (Watch (path, token))
        (fun () ->
          Xs_watch.add t.watches ~owner:caller ~path ~token ~deliver;
          (* Registering a watch immediately fires it once (protocol
             rule). *)
          t.counters.watch_events <- t.counters.watch_events + 1;
          Trace.Counter.incr "xs.watch_fires";
          charge ~category:"xs.watch" t t.profile.Xs_costs.watch_fire;
          Engine.spawn ~name:"xs-watch-initial" (fun () ->
              deliver { Xs_watch.event_path = path; token });
          Ok_unit))

let transaction t ~caller ?(max_retries = 8) f =
  let rec attempt n =
    match op t ~caller Transaction_start with
    | Ok_txid txid -> (
        let body_result = f txid in
        match body_result with
        | Error _ as e ->
            ignore (op t ~caller ~tx:txid (Transaction_end false));
            e
        | Ok v -> (
            match op t ~caller ~tx:txid (Transaction_end true) with
            | Ok_unit -> Ok v
            | Err Xs_error.EAGAIN when n < max_retries ->
                (* Bounded retry with exponential backoff: the caller
                   sleeps base * 2^n before re-reading the snapshot, so
                   conflicting writers decorrelate instead of livelocking
                   the daemon with immediate replays. Client-side wait —
                   the daemon mutex is not held and busy_time does not
                   accrue. Only taken on an actual conflict, so
                   conflict-free runs are unchanged. *)
                Xs_costs.charge ~category:"xs.backoff"
                  (t.profile.Xs_costs.tx_backoff_base
                  *. float_of_int (1 lsl Stdlib.min n 6));
                attempt (n + 1)
            | Err e -> Error e
            | _ -> Error Xs_error.EINVAL))
    | Err e -> Error e
    | _ -> Error Xs_error.EINVAL
  in
  attempt 0

(* ------------------------------------------------------------------ *)
(* Wire interface *)

let handle_packet t ~caller buf =
  let header, args = Xs_wire.unpack buf in
  let tx =
    if header.Xs_wire.tx_id = 0l then None
    else Some (Int32.to_int header.Xs_wire.tx_id)
  in
  let reply_to op payload =
    Xs_wire.pack op ~req_id:header.Xs_wire.req_id
      ~tx_id:header.Xs_wire.tx_id payload
  in
  let error e = reply_to Xs_wire.Error [ Xs_error.to_string e ] in
  let path_arg () =
    match args with
    | p :: _ -> Xs_path.of_string p
    | [] -> raise (Xs_wire.Malformed "missing path")
  in
  try
    let result =
      match header.Xs_wire.op with
      | Xs_wire.Read -> op t ~caller ?tx (Read (path_arg ()))
      | Xs_wire.Write -> (
          match args with
          | [ p; v ] -> op t ~caller ?tx (Write (Xs_path.of_string p, v))
          | [ p ] -> op t ~caller ?tx (Write (Xs_path.of_string p, ""))
          | _ -> Err Xs_error.EINVAL)
      | Xs_wire.Mkdir -> op t ~caller ?tx (Mkdir (path_arg ()))
      | Xs_wire.Rm -> op t ~caller ?tx (Rm (path_arg ()))
      | Xs_wire.Directory -> op t ~caller ?tx (Directory (path_arg ()))
      | Xs_wire.Get_perms -> op t ~caller ?tx (Get_perms (path_arg ()))
      | Xs_wire.Set_perms -> (
          match args with
          | [ p; perms ] -> (
              match Xs_perms.of_string perms with
              | Some perms ->
                  op t ~caller ?tx (Set_perms (Xs_path.of_string p, perms))
              | None -> Err Xs_error.EINVAL)
          | _ -> Err Xs_error.EINVAL)
      | Xs_wire.Watch -> (
          match args with
          | [ p; token ] ->
              watch t ~caller ~path:(Xs_path.of_string p) ~token
                ~deliver:t.register_watch_cb
          | _ -> Err Xs_error.EINVAL)
      | Xs_wire.Unwatch -> (
          match args with
          | [ p; token ] ->
              op t ~caller ?tx (Unwatch (Xs_path.of_string p, token))
          | _ -> Err Xs_error.EINVAL)
      | Xs_wire.Transaction_start -> op t ~caller Transaction_start
      | Xs_wire.Transaction_end ->
          op t ~caller ?tx (Transaction_end (args = [ "T" ]))
      | Xs_wire.Get_domain_path -> (
          match args with
          | [ d ] -> (
              match int_of_string_opt d with
              | Some domid -> op t ~caller (Get_domain_path domid)
              | None -> Err Xs_error.EINVAL)
          | _ -> Err Xs_error.EINVAL)
      | Xs_wire.Introduce -> (
          match args with
          | d :: _ -> (
              match int_of_string_opt d with
              | Some domid -> op t ~caller (Introduce domid)
              | None -> Err Xs_error.EINVAL)
          | _ -> Err Xs_error.EINVAL)
      | Xs_wire.Release -> (
          match args with
          | [ d ] -> (
              match int_of_string_opt d with
              | Some domid -> op t ~caller (Release domid)
              | None -> Err Xs_error.EINVAL)
          | _ -> Err Xs_error.EINVAL)
      | Xs_wire.Debug | Xs_wire.Watch_event | Xs_wire.Error
      | Xs_wire.Is_domain_introduced | Xs_wire.Resume
      | Xs_wire.Set_target ->
          Err Xs_error.EINVAL
    in
    match result with
    | Ok_unit -> reply_to header.Xs_wire.op [ "OK" ]
    | Ok_value v -> reply_to header.Xs_wire.op [ v ]
    | Ok_list entries -> reply_to header.Xs_wire.op entries
    | Ok_perms perms -> reply_to header.Xs_wire.op [ Xs_perms.to_string perms ]
    | Ok_txid txid -> reply_to header.Xs_wire.op [ string_of_int txid ]
    | Ok_path p -> reply_to header.Xs_wire.op [ p ]
    | Err e -> error e
  with
  | Xs_path.Invalid _ -> error Xs_error.EINVAL
  | Xs_wire.Malformed _ -> error Xs_error.EINVAL
