(** The xenstored daemon.

    A single-threaded server: concurrent callers serialise on an
    internal mutex (exactly the real daemon's bottleneck — under load,
    operations queue). Every operation charges simulated time for the
    message protocol, daemon-side work proportional to the real data
    structures touched, watch-registry scans, access logging and
    rotation stalls, and — for writes of guest names — the linear
    uniqueness scan over all running guests described in the paper.

    Must be called from inside a running {!Lightvm_sim.Engine}
    simulation. *)

type t

type request =
  | Read of Xs_path.t
  | Write of Xs_path.t * string
  | Mkdir of Xs_path.t
  | Rm of Xs_path.t
  | Directory of Xs_path.t
  | Get_perms of Xs_path.t
  | Set_perms of Xs_path.t * Xs_perms.t
  | Watch of Xs_path.t * string
  | Unwatch of Xs_path.t * string
  | Transaction_start
  | Transaction_end of bool  (** commit? *)
  | Get_domain_path of int
  | Introduce of int
  | Release of int

type response =
  | Ok_unit
  | Ok_value of string
  | Ok_list of string list
  | Ok_perms of Xs_perms.t
  | Ok_txid of int
  | Ok_path of string
  | Err of Xs_error.t

(** Cumulative instrumentation, readable at any time. *)
type counters = {
  mutable ops : int;
  mutable watch_events : int;
  mutable tx_commits : int;
  mutable tx_conflicts : int;
  mutable uniqueness_cmps : int;
  mutable busy_time : float;  (** simulated seconds inside the daemon *)
}

val create :
  ?profile:Xs_costs.profile ->
  ?quota_nodes:int ->
  ?register_watch_cb:(Xs_watch.event -> unit) ->
  unit ->
  t
(** Defaults: {!Xs_costs.oxenstored}, 1000-node per-domain quota. *)

val profile : t -> Xs_costs.profile

val store : t -> Xs_store.t

val counters : t -> counters

val watch_count : t -> int

val op : t -> caller:int -> ?tx:int -> request -> response
(** Perform one operation as domain [caller]. Blocks (simulated time)
    for queueing plus the operation's cost. [tx] routes reads and
    writes through an open transaction. Never raises: failures come
    back as [Err] — including injected ones (the [xs.equota] fault
    point can fail any node-creating request from Dom0, and
    [xs.eagain] can abort a [Transaction_end true]; see
    [lib/sim/fault.ml]). *)

val scan_names : t -> caller:int -> string list
(** Every running guest's name, in [/local/domain] directory order —
    the store traffic behind libxl's name resolution. Modeled exactly
    as one [Directory] of [/local/domain] plus one [Read] of each
    child's [name] node (identical charges, counters and log lines to
    issuing those requests through {!op}; children without a name node
    are skipped like their [ENOENT]), but answered from a maintained
    host-side name index, so the host cost is O(guests) map iteration
    rather than O(guests) store walks. Raises {!Xs_error.Error} exactly
    where the per-request loop would ([ENOENT]/[EACCES] on the
    directory, [EACCES] on an unreadable name node). *)

val watch :
  t ->
  caller:int ->
  path:Xs_path.t ->
  token:string ->
  deliver:(Xs_watch.event -> unit) ->
  response
(** Register a watch with a delivery callback (the wire protocol's
    WATCH_EVENT push, as a function). The callback runs in a fresh
    simulation process after the delivery cost has elapsed, starting
    with the synthetic initial event the protocol mandates on
    registration. Watches are not quota'd; registration always returns
    [Ok_unit]. *)

val transaction :
  t -> caller:int -> ?max_retries:int -> (int -> ('a, Xs_error.t) result) ->
  ('a, Xs_error.t) result
(** [transaction t ~caller f] runs [f txid], committing afterwards and
    retrying the whole body on [EAGAIN] (the paper's retried
    transactions) with exponential client-side backoff, up to
    [max_retries] (default 8) — after which [Error EAGAIN] is
    returned. An [Error] from the body itself aborts the transaction
    and is returned without retrying. Conflicts may be natural (a
    concurrent commit bumped the store generation) or injected via the
    [xs.eagain] fault point; both take the same retry path. *)

val handle_packet : t -> caller:int -> bytes -> bytes
(** Wire-level entry point: decode a {!Xs_wire} packet, perform the
    operation, encode the reply (with matching [req_id]/[tx_id]). Watch
    registrations through this interface deliver events to
    [register_watch_cb] given at {!create} (default: dropped). *)
