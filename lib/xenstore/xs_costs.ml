(* Simulated-time cost profiles for XenStore operations.

   The paper (Section 4.2) attributes XenStore slowness to: the
   request/ack message protocol (>= 2, usually 4 software interrupts per
   operation plus multiple privilege-domain crossings); linear scans
   (unique-name checks against all running guests); watch fan-out; failed
   transactions that are retried; and access-log rotation stalls.

   Each mechanism below has its own constant so the server can charge the
   *actual* amount of work its real data structures perform. Values are
   calibrated so that, with the operation counts our toolstacks issue,
   creation times land near the paper's: chaos+XS first VM ~15ms (Fig 9),
   xl+Debian first VM ~500ms growing to ~1.7s at 1000 guests (Figs 4/5),
   log-rotation spikes every couple hundred VMs. *)

type profile = {
  name : string;
  softirq : float; (* one software interrupt *)
  crossing : float; (* one privilege-domain crossing *)
  irqs_per_message : int; (* paper: "most often four" *)
  crossings_per_message : int;
  base_op : float; (* daemon-side dispatch of one request *)
  per_byte : float; (* payload marshalling *)
  per_dir_entry : float; (* DIRECTORY: per child listed *)
  per_name_cmp : float; (* uniqueness scan: per existing guest *)
  per_watch_check : float; (* per registered watch examined on a write *)
  watch_fire : float; (* queueing + delivering one watch event *)
  tx_start : float;
  tx_commit : float;
  tx_replay_per_op : float; (* validation cost per journaled op *)
  tx_backoff_base : float; (* client retry backoff: base * 2^attempt *)
  log_lines_per_op : int;
  log_line : float;
  log_rotate_per_file : float; (* rotation stall, per file in the ring *)
  logging_enabled : bool;
}

(* oxenstored: the OCaml implementation, "the faster of the two". *)
let oxenstored =
  {
    name = "oxenstored";
    softirq = 4.0e-6;
    crossing = 3.0e-6;
    irqs_per_message = 4;
    crossings_per_message = 4;
    base_op = 25.0e-6;
    per_byte = 8.0e-9;
    per_dir_entry = 0.6e-6;
    per_name_cmp = 45.0e-6; (* read + string compare per running guest *)
    per_watch_check = 2.0e-6;
    watch_fire = 30.0e-6;
    tx_start = 20.0e-6;
    tx_commit = 35.0e-6;
    tx_replay_per_op = 6.0e-6;
    tx_backoff_base = 50.0e-6;
    log_lines_per_op = 2;
    log_line = 1.5e-6;
    log_rotate_per_file = 9.0e-3; (* 20 files -> ~180ms spike *)
    logging_enabled = true;
  }

(* cxenstored: the C implementation; the paper notes "much higher
   overheads". Same mechanisms, slower constants (no immutable-tree
   fast paths, fsync-happy logging). *)
let cxenstored =
  {
    oxenstored with
    name = "cxenstored";
    base_op = 95.0e-6;
    per_dir_entry = 2.5e-6;
    per_name_cmp = 140.0e-6;
    per_watch_check = 5.5e-6;
    watch_fire = 85.0e-6;
    tx_start = 60.0e-6;
    tx_commit = 120.0e-6;
    tx_replay_per_op = 25.0e-6;
    tx_backoff_base = 150.0e-6;
    log_line = 5.0e-6;
  }

let message_cost p ~payload_bytes =
  (float_of_int p.irqs_per_message *. p.softirq)
  +. (float_of_int p.crossings_per_message *. p.crossing)
  +. p.base_op
  +. (float_of_int payload_bytes *. p.per_byte)

(* The uniform entry point for all simulated-time XenStore costs:
   advances the virtual clock and, when tracing is on, attributes the
   charge to [category] (see Trace.charge). *)
let charge ~category ?attrs dt = Lightvm_trace.Trace.charge ~category ?attrs dt
