(* Toolstack-side cost constants, calibrated against the paper:

   - Fig 4: first-guest create of 500 ms (Debian), 360 ms (Tinyx),
     80 ms (daytime unikernel) under xl.
   - Fig 5: under xl, device creation (hotplug scripts, udev) and the
     XenStore dominate; toolstack bookkeeping is the next slice.
   - Fig 9: chaos [XS] starts ~15 ms; chaos+noxs+split reaches ~4 ms
     with growth of only ~0.1 ms over 1000 guests.
   - Section 5.3: "launching and executing bash scripts is a slow
     process taking tens of milliseconds". *)

type t = {
  (* Phase 2: compute allocation. *)
  compute_alloc : float;
  (* Phase 6: configuration parsing (plus a per-byte term for real
     parsing of the config text). *)
  config_parse_base : float;
  config_parse_per_byte : float;
  (* xl/libxl bookkeeping per create: lock files, JSON state, event
     registration. chaos keeps only a small in-memory record. *)
  xl_bookkeeping : float;
  chaos_bookkeeping : float;
  (* xl-only extras: PV console setup and device-model checks. *)
  xl_console_setup : float;
  (* libxl's bzImage/pygrub handling for full Linux guests (fixed part
     on top of the size-proportional load). *)
  xl_pv_build_extra : float;
  (* How many times each toolstack resolves a domain name by scanning
     all guests (libxl_name_to_domid does a directory walk with one
     read per guest). *)
  xl_name_scans : int;
  chaos_name_scans : int;
  (* Device hotplug (Section 5.3). *)
  hotplug_script_vif : float;
  hotplug_script_vbd : float;
  udev_settle : float;
  xendevd_per_device : float;
  (* Failure handling: the toolstack's watchdog on a wedged hotplug
     script (xl's real default is tens of seconds; scaled down so fault
     experiments stay in the creation-time regime), and xendevd's
     requeue-on-failure behaviour. *)
  hotplug_timeout : float;
  xendevd_requeue_delay : float;
  xendevd_requeue_limit : int;
  (* Backend work. *)
  backend_ioctl : float; (* noxs device pre-creation ioctl *)
  backend_connect_work : float; (* Dom0 CPU per device handshake *)
  (* Toolstack floor on guest memory without the paper's patch. *)
  min_mem_mb : float;
  (* Checkpointing (Section 6.2): ramdisk dump/read rates and the
     standard toolstack's fixed save/restore bookkeeping. *)
  save_dump_mbps : float;
  restore_read_mbps : float;
  xl_save_overhead : float;
  xl_restore_overhead : float;
  chaos_save_overhead : float;
  chaos_restore_overhead : float;
  (* noxs device teardown is not yet optimized (Section 6.2). *)
  noxs_device_destroy : float;
  (* Migration. *)
  migration_bw_mbps : float; (* host-to-host link, MB/s (1 Gbps ~ 117) *)
  migration_rtt : float;
  migration_handshake_rtts : int; (* connection setup + config + acks *)
  migration_daemon_overhead : float;
}

let default =
  {
    compute_alloc = 0.4e-3;
    config_parse_base = 0.5e-3;
    config_parse_per_byte = 1.0e-6;
    xl_bookkeeping = 28.0e-3;
    chaos_bookkeeping = 1.6e-3;
    xl_console_setup = 9.0e-3;
    xl_pv_build_extra = 115.0e-3;
    xl_name_scans = 5;
    chaos_name_scans = 0;
    hotplug_script_vif = 42.0e-3;
    hotplug_script_vbd = 160.0e-3;
    udev_settle = 14.0e-3;
    xendevd_per_device = 0.45e-3;
    hotplug_timeout = 250.0e-3;
    xendevd_requeue_delay = 1.0e-3;
    xendevd_requeue_limit = 3;
    backend_ioctl = 0.12e-3;
    backend_connect_work = 0.18e-3;
    min_mem_mb = 4.0;
    save_dump_mbps = 150.;
    restore_read_mbps = 260.;
    xl_save_overhead = 95.0e-3;
    xl_restore_overhead = 420.0e-3;
    chaos_save_overhead = 3.0e-3;
    chaos_restore_overhead = 4.0e-3;
    noxs_device_destroy = 4.5e-3;
    migration_bw_mbps = 117.;
    migration_rtt = 0.2e-3;
    migration_handshake_rtts = 3;
    migration_daemon_overhead = 2.0e-3;
  }

(* A wide-area link: 1 Gbps with a 10 ms RTT — Section 7.1 reports
   migrating a ClickOS VM over such a link in ~150 ms. *)
let wan = { default with migration_rtt = 10.0e-3 }

(* The uniform entry point for all toolstack-side simulated-time costs:
   advances the virtual clock and, when tracing is on, attributes the
   charge to [category] (see Trace.charge). *)
let charge ~category ?attrs dt = Lightvm_trace.Trace.charge ~category ?attrs dt
