(** Live(ish) migration, Section 5.1/6.2.

    chaos opens a TCP connection to the migration daemon on the remote
    host and sends the guest's configuration so the daemon pre-creates
    the domain and its devices; the source then suspends the guest and
    streams its memory; the destination resumes it. *)

exception Migration_failed of string
(** The memory stream was corrupted (fault point [migrate.corrupt]) on
    every one of the bounded retransfer attempts. By this point the
    source domain has already been destroyed at suspend, so the guest
    is lost — the same failure mode as [xl migrate] dying mid-stream.
    Only possible under an installed fault injector. *)

type stats = {
  total : float;  (** wall-clock migration time *)
  precreate : float;  (** remote domain + device pre-creation *)
  suspend : float;  (** source-side quiesce + save *)
  transfer : float;  (** memory stream, including any retransfers *)
  resume : float;  (** destination-side restore + reconnect *)
}

val migrate :
  src:Toolstack.t ->
  dst:Toolstack.t ->
  Create.created ->
  Create.created * stats
(** Returns the VM handle on the destination host. Both hosts should
    run the same toolstack mode.

    A corrupted stream is retransmitted in full up to 3 times (each
    adding one transfer's worth of virtual time plus a NACK round
    trip) before the migration is abandoned.

    @raise Create.Create_failed when the destination cannot host the
    guest (e.g. out of memory pre-creating the domain).
    @raise Migration_failed when the stream stays corrupted through
    every retransfer attempt. *)
