module Engine = Lightvm_sim.Engine
module Xen = Lightvm_hv.Xen
module Params = Lightvm_hv.Params
module Xs_client = Lightvm_xenstore.Xs_client
module Xs_error = Lightvm_xenstore.Xs_error
module Guest = Lightvm_guest.Guest
module Image = Lightvm_guest.Image

type saved = {
  sv_config : Vmconfig.t;
  sv_image : Image.t;
  sv_mem_mb : float;
}

let saved_name s = s.sv_config.Vmconfig.name
let saved_mem_mb s = s.sv_mem_mb

let is_xl ts = (Toolstack.mode ts).Mode.impl = Mode.Xl

let uses_xenstore ts =
  (Toolstack.mode ts).Mode.registry = Mode.Xenstore

(* Ask the guest to suspend and wait for it to quiesce. *)
let trigger_suspend ts (created : Create.created) =
  let env = Toolstack.env ts in
  let domid = created.Create.domid in
  if uses_xenstore ts then
    (* Classic path: write the control node; the guest's xenbus driver
       reacts; several store round-trips. *)
    Xs_client.write env.Create.xs
      (Printf.sprintf "/local/domain/%d/control/shutdown" domid)
      "suspend"
  else begin
    (* noxs: an ioctl to the sysctl back-end flips the shared page and
       kicks the event channel. *)
    let costs = Xen.costs env.Create.xen in
    Xen.consume_dom0 env.Create.xen 60.0e-6;
    Xen.hypercall ~op:"evtchn_op" env.Create.xen ~cost:costs.Params.evtchn_op
  end;
  (* Guest-side quiesce: save internal state, unbind channels/pages. *)
  Guest.shutdown created.Create.guest;
  ignore (Xen.shutdown env.Create.xen ~domid ~reason:Lightvm_hv.Domain.Suspend)

let detach_and_destroy ts (created : Create.created) =
  Create.destroy (Toolstack.env ts) created;
  Toolstack.unregister_vm ts ~domid:created.Create.domid

let make_saved (created : Create.created) =
  {
    sv_config = created.Create.config;
    sv_image = created.Create.guest |> Guest.image;
    sv_mem_mb =
      (match Vmconfig.image created.Create.config with
      | Some img -> img.Image.mem_mb
      | None -> created.Create.config.Vmconfig.memory_mb);
  }

let save ts created =
  let env = Toolstack.env ts in
  let costs = Toolstack.costs ts in
  trigger_suspend ts created;
  (* Toolstack bookkeeping around the save. *)
  Costs.charge ~category:"checkpoint.save_overhead"
    (if is_xl ts then costs.Costs.xl_save_overhead
     else costs.Costs.chaos_save_overhead);
  (* Dump guest memory to the ramdisk. *)
  let mem_mb = Create.effective_mem_mb env created.Create.config in
  Costs.charge ~category:"checkpoint.dump" (mem_mb /. costs.Costs.save_dump_mbps);
  let saved = { (make_saved created) with sv_mem_mb = mem_mb } in
  detach_and_destroy ts created;
  saved

(* A restored guest does not reboot its kernel: frontends reconnect and
   execution continues. *)
let restored_image (img : Image.t) =
  {
    img with
    Image.name = img.Image.name;
    kernel_init_work = 0.25e-3;
    app_init_work = 0.1e-3;
    kernel_mb = 0.; (* no image build on restore *)
  }

let rebuild ts saved ~skip_read =
  let env = Toolstack.env ts in
  let costs = Toolstack.costs ts in
  Costs.charge ~category:"checkpoint.restore_overhead"
    (if is_xl ts then costs.Costs.xl_restore_overhead
     else costs.Costs.chaos_restore_overhead);
  if not skip_read then
    (* Read the dump back from the ramdisk. *)
    Costs.charge ~category:"checkpoint.read"
      (saved.sv_mem_mb /. costs.Costs.restore_read_mbps);
  (* Rebuild the domain and devices through the normal create pipeline,
     with a "restored" image so the guest reconnects instead of
     rebooting. *)
  let image = restored_image saved.sv_image in
  let created = Create.create_with_image env saved.sv_config ~image in
  Toolstack.register_vm ts created;
  created

let restore ts saved = rebuild ts saved ~skip_read:false

let suspend_for_transfer ts created =
  trigger_suspend ts created;
  let costs = Toolstack.costs ts in
  Costs.charge ~category:"checkpoint.save_overhead"
    (if is_xl ts then costs.Costs.xl_save_overhead
     else costs.Costs.chaos_save_overhead);
  let env = Toolstack.env ts in
  let mem_mb = Create.effective_mem_mb env created.Create.config in
  let saved = { (make_saved created) with sv_mem_mb = mem_mb } in
  detach_and_destroy ts created;
  saved

let resume_from_transfer ts saved = rebuild ts saved ~skip_read:true
