(** Dom0 back-end drivers (netback/blkback).

    Two bring-up paths, matching Figure 7:

    - {b XenStore}: the toolstack writes the backend directory; the
      back-end watches the frontend's state node and completes the
      handshake (read ring/event-channel, map, bind, flip to Connected)
      when the guest publishes its half.
    - {b noxs}: the toolstack issues a pre-creation ioctl; the back-end
      synchronously allocates the device control page and an unbound
      event channel, and returns their identifiers for the hypervisor's
      device page. The handshake then runs over shared memory when the
      guest kicks the event channel. *)

type t

exception Alloc_failed of string
(** A backend resource allocation (grant-table slot or event channel)
    failed during {!precreate_device}. Raised only at the fault points
    [gnttab.alloc] / [evtchn.alloc] (see [Lightvm_sim.Fault]); the
    backend releases anything it had already allocated for the device
    before raising, so the caller only has to undo fully pre-created
    devices. *)

val create :
  xen:Lightvm_hv.Xen.t ->
  xs:Lightvm_xenstore.Xs_client.t option ->
  ctrl:Lightvm_guest.Ctrl.t ->
  costs:Costs.t ->
  t

val ctrl : t -> Lightvm_guest.Ctrl.t

val fresh_mac : t -> string
(** Xen-prefixed MAC (00:16:3e:...), sequential. *)

val watch_device :
  t -> domid:int -> Lightvm_guest.Device.config -> unit
(** XenStore path: register the persistent frontend-state watch for a
    device whose backend directory the toolstack just created. *)

val precreate_device :
  t -> domid:int -> Lightvm_guest.Device.config -> int * int
(** noxs path (the ioctl): returns [(grant_ref, evtchn_port)] to be
    written into the domain's device page.

    @raise Alloc_failed under injected grant-table or event-channel
    allocation failure; partially-allocated resources are released
    first. *)

val destroy_device :
  t -> domid:int -> Lightvm_guest.Device.config -> grant_ref:int -> unit
(** noxs teardown of a live device (unoptimized, per Section 6.2):
    charges the destroy cost and unregisters the control page. *)

val abort_precreated :
  t ->
  domid:int ->
  Lightvm_guest.Device.config ->
  grant_ref:int ->
  port:int ->
  unit
(** Rollback of a {!precreate_device} whose guest never booted: closes
    the unbound event channel, unregisters the control page and revokes
    the grant. All three are owned by the backend domain, so destroying
    the guest would not reclaim them — the creation pipeline calls this
    for every pre-created device when a create fails mid-way. *)

val connected_count : t -> int
(** Devices brought to Connected so far (both paths). *)
