(** The chaos daemon's shell pool (split toolstack, Figure 8).

    The daemon keeps a configurable number of pre-created VM shells per
    flavor (memory x vcpus x devices). [take] hands one out and kicks a
    background refill, so steady-state creations never pay for phases
    1-5. *)

type 'a t

val create : target:int -> make:(unit -> 'a) -> 'a t
(** [target] is the low-water mark the daemon maintains.
    @raise Invalid_argument when [target < 1]. *)

val prefill : 'a t -> unit
(** Synchronously build shells up to [target] (daemon start-up). *)

val size : 'a t -> int

val target : 'a t -> int

val set_target : 'a t -> int -> unit
(** Move the low-water mark (the serverless autoscaler's knob). Raising
    it takes effect on the next [take]/[prefill]; lowering it stops the
    background refill at the new mark but does not destroy queued
    shells — drain surplus with {!take_surplus} and tear each shell
    down through the toolstack.
    @raise Invalid_argument on a negative target. *)

val take_surplus : 'a t -> 'a option
(** Pop one shell iff the pool currently holds more than [target]
    (scale-down): [None] once the pool is at or below the mark. *)

val take : 'a t -> 'a
(** Pop a shell; falls back to building one synchronously when the
    pool is empty (and still triggers the background refill). Whatever
    [make] raises (e.g. {!Create.Create_failed} for shell pools)
    propagates from the synchronous fallback; background refill
    failures are contained in the refill process. *)

val made_total : 'a t -> int
(** Shells built over the pool's lifetime (for tests). *)

val takes : 'a t -> int
(** {!take} calls over the pool's lifetime. *)

val hits : 'a t -> int
(** {!take} calls served from a queued shell (no synchronous build).
    [hits / takes] is the warm-pool hit rate the serverless experiments
    report. *)
