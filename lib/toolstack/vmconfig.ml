type t = {
  name : string;
  kernel : string;
  memory_mb : float;
  vcpus : int;
  vifs : string list;
  disks : string list;
  on_crash : string;
  extra : (string * string) list;
}

type value =
  | Str of string
  | Num of float
  | Lst of string list

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* ------------------------------------------------------------------ *)
(* Single-pass lexing: one cursor walk over the raw text, working on
   [(start, end)] ranges of the original string. No per-line
   substrings, no re-strip copies, no item buffers — the only
   allocations are the final key/value strings themselves. *)

let is_space c = c = ' ' || c = '\t' || c = '\r'

(* Trim the range [a, b) of [s] on both sides. *)
let trim s a b =
  let a = ref a and b = ref b in
  while !a < !b && is_space s.[!a] do incr a done;
  while !b > !a && is_space s.[!b - 1] do decr b done;
  (!a, !b)

(* [a, b) spans the value including its quotes. *)
let parse_quoted line s a b =
  if b - a < 2 || s.[b - 1] <> s.[a] then fail line "unterminated string"
  else String.sub s (a + 1) (b - a - 2)

(* [a, b) spans the bracketed list. Items split on commas outside
   quotes, so specs like 'ramdisk,xvda,w' stay intact. *)
let parse_list line s a b =
  if b - a < 2 || s.[a] <> '[' || s.[b - 1] <> ']' then
    fail line "malformed list";
  let ia, ib = trim s (a + 1) (b - 1) in
  if ia >= ib then []
  else begin
    let ranges = ref [] in
    let start = ref ia in
    let in_quote = ref false and quote = ref ' ' in
    for i = ia to ib - 1 do
      match s.[i] with
      | ('"' | '\'') as c when not !in_quote ->
          in_quote := true;
          quote := c
      | c when !in_quote && c = !quote -> in_quote := false
      | ',' when not !in_quote ->
          ranges := (!start, i) :: !ranges;
          start := i + 1
      | _ -> ()
    done;
    if !in_quote then fail line "unterminated string in list";
    ranges := (!start, ib) :: !ranges;
    (* [ranges] is reversed, so [rev_map] restores item order. *)
    List.rev_map
      (fun (a, b) ->
        let a, b = trim s a b in
        if b - a >= 2 && (s.[a] = '"' || s.[a] = '\'') then
          parse_quoted line s a b
        else
          fail line ("list items must be quoted: " ^ String.sub s a (b - a)))
      !ranges
  end

(* [a, b) is the already-trimmed, non-empty value range. *)
let parse_value line s a b =
  if s.[a] = '[' then Lst (parse_list line s a b)
  else if s.[a] = '"' || s.[a] = '\'' then Str (parse_quoted line s a b)
  else begin
    (* Bare integers dominate (memory, vcpus): read them in place
       rather than paying a substring plus the strtod round trip.
       Anything else — floats, hex, underscores — falls back. *)
    let digits a0 =
      let rec go i acc =
        if i >= b then Some acc
        else
          let c = s.[i] in
          if c >= '0' && c <= '9' then
            go (i + 1) ((acc * 10) + (Char.code c - Char.code '0'))
          else None
      in
      if a0 >= b then None else go a0 0
    in
    let quick =
      if b - a > 15 then None
      else if s.[a] = '-' then
        match digits (a + 1) with
        | Some v -> Some (float_of_int (-v))
        | None -> None
      else
        match digits a with
        | Some v -> Some (float_of_int v)
        | None -> None
    in
    match quick with
    | Some f -> Num f
    | None -> (
        let raw = String.sub s a (b - a) in
        match float_of_string_opt raw with
        | Some f -> Num f
        | None -> fail line ("cannot parse value: " ^ raw))
  end

(* Compare the range [a, b) of [s] against a literal without building
   the key string (it is only materialised for unknown keys). *)
let range_eq s a b lit =
  let n = String.length lit in
  b - a = n
  &&
  let rec go i = i >= n || (s.[a + i] = lit.[i] && go (i + 1)) in
  go 0

(* ------------------------------------------------------------------ *)

let default =
  {
    name = "";
    kernel = "";
    memory_mb = 4.;
    vcpus = 1;
    vifs = [];
    disks = [];
    on_crash = "destroy";
    extra = [];
  }

let parse text =
  let n = String.length text in
  (* Mutable accumulator instead of a record copy per key; [extra]
     accumulates reversed and is reversed once at the end. *)
  let name = ref default.name and kernel = ref default.kernel in
  let memory_mb = ref default.memory_mb and vcpus = ref default.vcpus in
  let vifs = ref default.vifs and disks = ref default.disks in
  let on_crash = ref default.on_crash in
  let extra = ref [] in
  try
    let i = ref 0 and line = ref 1 in
    while !i < n do
      let ls = !i in
      let eol =
        match String.index_from_opt text ls '\n' with
        | Some j -> j
        | None -> n
      in
      (* Content ends at the first [#] outside quotes. *)
      let ce =
        let stop = ref (-1) in
        let j = ref ls in
        let in_quote = ref false and quote = ref ' ' in
        while !stop < 0 && !j < eol do
          (match text.[!j] with
          | ('"' | '\'') as c when not !in_quote ->
              in_quote := true;
              quote := c
          | c when !in_quote && c = !quote -> in_quote := false
          | '#' when not !in_quote -> stop := !j
          | _ -> ());
          incr j
        done;
        if !stop >= 0 then !stop else eol
      in
      let a, b = trim text ls ce in
      if a < b then begin
        let eq =
          let rec find j = if j >= b then -1 else if text.[j] = '=' then j else find (j + 1) in
          find a
        in
        if eq < 0 then fail !line "expected key = value";
        let ka, kb = trim text a eq in
        if ka >= kb then fail !line "empty key";
        let va, vb = trim text (eq + 1) b in
        if va >= vb then fail !line "missing value";
        let value = parse_value !line text va vb in
        let keq lit = range_eq text ka kb lit in
        let expects what lit = fail !line (lit ^ " expects a " ^ what) in
        if keq "name" then (
          match value with
          | Str s -> name := s
          | _ -> expects "string" "name")
        else if keq "kernel" then (
          match value with
          | Str s -> kernel := s
          | _ -> expects "string" "kernel")
        else if keq "memory" then (
          match value with
          | Num f -> memory_mb := f
          | _ -> expects "number" "memory")
        else if keq "vcpus" then (
          match value with
          | Num f -> vcpus := int_of_float f
          | _ -> expects "number" "vcpus")
        else if keq "vif" then (
          match value with
          | Lst items -> vifs := items
          | _ -> expects "list" "vif")
        else if keq "disk" then (
          match value with
          | Lst items -> disks := items
          | _ -> expects "list" "disk")
        else if keq "on_crash" then (
          match value with
          | Str s -> on_crash := s
          | _ -> expects "string" "on_crash")
        else if keq "maxmem" && (match value with Num _ -> true | _ -> false)
        then () (* accepted and ignored, as xl does *)
        else begin
          let key = String.sub text ka (kb - ka) in
          match value with
          | Str s -> extra := (key, s) :: !extra
          | Num f -> extra := (key, Printf.sprintf "%g" f) :: !extra
          | Lst items -> extra := (key, String.concat ";" items) :: !extra
        end
      end;
      i := eol + 1;
      incr line
    done;
    if !name = "" then Error "missing required key: name"
    else if !kernel = "" then Error "missing required key: kernel"
    else
      Ok
        {
          name = !name;
          kernel = !kernel;
          memory_mb = !memory_mb;
          vcpus = !vcpus;
          vifs = !vifs;
          disks = !disks;
          on_crash = !on_crash;
          extra = List.rev !extra;
        }
  with Parse_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s" line msg)

let to_string cfg =
  let b = Buffer.create 256 in
  let quoted_list items =
    "[" ^ String.concat ", " (List.map (Printf.sprintf "'%s'") items) ^ "]"
  in
  Buffer.add_string b (Printf.sprintf "name = \"%s\"\n" cfg.name);
  Buffer.add_string b (Printf.sprintf "kernel = \"%s\"\n" cfg.kernel);
  Buffer.add_string b (Printf.sprintf "memory = %g\n" cfg.memory_mb);
  Buffer.add_string b (Printf.sprintf "vcpus = %d\n" cfg.vcpus);
  if cfg.vifs <> [] then
    Buffer.add_string b (Printf.sprintf "vif = %s\n" (quoted_list cfg.vifs));
  if cfg.disks <> [] then
    Buffer.add_string b
      (Printf.sprintf "disk = %s\n" (quoted_list cfg.disks));
  Buffer.add_string b (Printf.sprintf "on_crash = \"%s\"\n" cfg.on_crash);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s = \"%s\"\n" k v))
    cfg.extra;
  Buffer.contents b

let devices cfg =
  let module Device = Lightvm_guest.Device in
  List.mapi
    (fun i detail ->
      let bridge =
        match String.index_opt detail '=' with
        | Some j when String.sub detail 0 j = "bridge" ->
            String.sub detail (j + 1) (String.length detail - j - 1)
        | _ -> "xenbr0"
      in
      Device.vif ~bridge ~devid:i ())
    cfg.vifs
  @ List.mapi
      (fun i spec -> Device.vbd ~target:spec ~devid:i ())
      cfg.disks

let image cfg = Lightvm_guest.Image.find cfg.kernel

let make ?(memory_mb = 4.) ?(vcpus = 1) ?(vifs = []) ?(disks = [])
    ?(on_crash = "destroy") ~name ~kernel () =
  { name; kernel; memory_mb; vcpus; vifs; disks; on_crash; extra = [] }

let for_image ?(nics = 1) ?(disks = 0) ~name img =
  let module Image = Lightvm_guest.Image in
  let vifs = List.init nics (fun _ -> "bridge=xenbr0") in
  let disk_specs = List.init disks (fun i ->
      Printf.sprintf "ramdisk,xvd%c,w" (Char.chr (Char.code 'a' + i)))
  in
  make ~memory_mb:img.Image.mem_mb ~vcpus:1 ~vifs ~disks:disk_specs
    ~name ~kernel:img.Image.name ()
