module Fault = Lightvm_sim.Fault
module Xen = Lightvm_hv.Xen
module Device = Lightvm_guest.Device

exception Timeout of string

let estimate kind ~costs (dev : Device.config) =
  match kind with
  | Mode.Xendevd -> costs.Costs.xendevd_per_device
  | Mode.Script ->
      match dev.Device.kind with
      | Device.Vif -> costs.Costs.hotplug_script_vif +. costs.Costs.udev_settle
      | Device.Vbd -> costs.Costs.hotplug_script_vbd +. costs.Costs.udev_settle
      | Device.Sysctl -> 0. (* no user-space setup: pure shared memory *)

(* One setup attempt. A hang (fault point "hotplug.hang") models a
   wedged script or a lost udev event: the device never comes up and
   the toolstack's watchdog fires after [hotplug_timeout] — the caller
   waits out the timeout but the script burns no Dom0 CPU. *)
let attempt kind ~xen ~costs dev =
  if Fault.fire "hotplug.hang" then begin
    Costs.charge ~category:"devices.hotplug_timeout"
      costs.Costs.hotplug_timeout;
    false
  end
  else begin
    Xen.consume_dom0 xen (estimate kind ~costs dev);
    true
  end

let run kind ~xen ~costs dev =
  match kind with
  | Mode.Script ->
      (* xl forks the script once; a hang is fatal to the creation. *)
      if not (attempt kind ~xen ~costs dev) then
        raise
          (Timeout
             (Printf.sprintf "hotplug script timed out (%s%d)"
                (Device.kind_to_string dev.Device.kind)
                dev.Device.devid))
  | Mode.Xendevd ->
      (* Graceful degradation: xendevd treats a failed setup as a lost
         udev event and requeues it (bounded), so a transient hang
         costs one timeout + requeue delay instead of failing the
         creation. *)
      let rec go n =
        if attempt kind ~xen ~costs dev then ()
        else if n < costs.Costs.xendevd_requeue_limit then begin
          Costs.charge ~category:"devices.requeue"
            costs.Costs.xendevd_requeue_delay;
          go (n + 1)
        end
        else
          raise
            (Timeout
               (Printf.sprintf
                  "xendevd: device setup failed after %d requeues (%s%d)" n
                  (Device.kind_to_string dev.Device.kind)
                  dev.Device.devid))
      in
      go 0
