module Engine = Lightvm_sim.Engine
module Fault = Lightvm_sim.Fault

exception Migration_failed of string

(* Retransfer attempts before giving up on a corrupted stream. *)
let max_transfer_attempts = 3

type stats = {
  total : float;
  precreate : float;
  suspend : float;
  transfer : float;
  resume : float;
}

let migrate ~src ~dst (created : Create.created) =
  let costs = Toolstack.costs src in
  let t0 = Engine.now () in
  (* 1. Open the TCP connection and ship the configuration (several
     round trips: SYN, config, acknowledgements). *)
  let config_text = Vmconfig.to_string created.Create.config in
  Costs.charge ~category:"migrate.handshake"
    ((float_of_int costs.Costs.migration_handshake_rtts
      *. costs.Costs.migration_rtt)
    +. (float_of_int (String.length config_text)
        /. (costs.Costs.migration_bw_mbps *. 1.0e6)));
  Costs.charge ~category:"migrate.daemon"
    costs.Costs.migration_daemon_overhead;
  (* 2. Suspend at the source (the destination's pre-creation happens
     while the source works, so only the longer of the two gates the
     migration; the daemon path is modelled sequentially here and its
     pre-creation cost is what the destination pipeline charges at
     resume). *)
  let t_suspend0 = Engine.now () in
  let saved = Checkpoint.suspend_for_transfer src created in
  let t_suspend = Engine.now () -. t_suspend0 in
  (* 3. Stream guest memory over the wire. A corrupted stream (fault
     point "migrate.corrupt") is caught by the receiver's checksum and
     retransmitted whole, at most [max_transfer_attempts] times; past
     that the migration fails — note the source was already destroyed
     at suspend, so the guest is lost, exactly the xl failure mode. *)
  let t_transfer0 = Engine.now () in
  let mem_mb = Checkpoint.saved_mem_mb saved in
  let rec stream attempt =
    Costs.charge ~category:"migrate.transfer"
      (mem_mb /. costs.Costs.migration_bw_mbps);
    if Fault.fire "migrate.corrupt" then
      if attempt < max_transfer_attempts then begin
        (* Receiver NACK + sender restart: one extra round trip. *)
        Costs.charge ~category:"migrate.handshake" costs.Costs.migration_rtt;
        stream (attempt + 1)
      end
      else
        raise
          (Migration_failed
             (Printf.sprintf "stream corrupted %d times; giving up"
                max_transfer_attempts))
  in
  stream 1;
  let t_transfer = Engine.now () -. t_transfer0 in
  (* 4. Resume on the destination (pre-creation + reconnect). *)
  let t_resume0 = Engine.now () in
  let resumed = Checkpoint.resume_from_transfer dst saved in
  let t_resume = Engine.now () -. t_resume0 in
  ( resumed,
    {
      total = Engine.now () -. t0;
      precreate = 0.;
      suspend = t_suspend;
      transfer = t_transfer;
      resume = t_resume;
    } )
