(** The VM creation pipeline of Figure 8, instrumented like Figure 5.

    Creation runs nine steps: (1) hypervisor reservation, (2) compute
    allocation, (3) memory reservation, (4) memory preparation,
    (5) device pre-creation — the {e prepare} phase — then
    (6) configuration parsing, (7) device initialization, (8) image
    build, (9) VM boot — the {e execute} phase. Without the split
    toolstack both phases run inline at [chaos create]/[xl create]
    time; with it, prepare runs in the background daemon and only
    execute is on the critical path.

    Every step attributes its simulated time to one of the paper's
    Figure 5 categories. *)

type category =
  | Cat_parse
  | Cat_hypervisor
  | Cat_xenstore
  | Cat_devices
  | Cat_load
  | Cat_toolstack

val categories : category list

val category_name : category -> string

type breakdown

val breakdown_create : unit -> breakdown

val breakdown_get : breakdown -> category -> float

val breakdown_total : breakdown -> float

(** Everything the pipeline needs from the host. *)
type env = {
  xen : Lightvm_hv.Xen.t;
  xs_server : Lightvm_xenstore.Xs_server.t;
  xs : Lightvm_xenstore.Xs_client.t;  (** Dom0's connection *)
  ctrl : Lightvm_guest.Ctrl.t;
  backend : Backend.t;
  mode : Mode.t;
  costs : Costs.t;
  shells : int ref;  (** shells prepared so far (names shell-1, -2, …) *)
}

(** A pre-created VM shell (output of the prepare phase). *)
type shell

val shell_domid : shell -> int

val shell_matches :
  shell -> mem_mb:float -> vcpus:int -> nics:int -> disks:int -> bool

(** A fully created VM. *)
type created = {
  domid : int;
  vm_name : string;
  config : Vmconfig.t;
  guest : Lightvm_guest.Guest.t;
  devices : Lightvm_guest.Device.config list;
  noxs_grants : (Lightvm_guest.Device.config * int) list;
      (** control-page grant per device, noxs mode only *)
  create_time : float;  (** toolstack time for the on-path phases *)
  breakdown : breakdown;
}

exception Create_failed of string
(** The single failure exit of the pipeline. Lower-level aborts
    ([Backend.Alloc_failed], [Hotplug.Timeout]) and injected faults
    (the [create.phase1]..[create.phase9] points, plus [evtchn.alloc],
    [gnttab.alloc] and [hotplug.hang] firing inside phases 5 and 7 —
    see [lib/sim/fault.ml]) are all normalised to it, so callers have
    one retry/cleanup contract. By the time it reaches the caller the
    partially-built domain has been rolled back: devices pre-created
    in phase 5 are torn down (backend nodes and watches, or noxs
    grants/ctrl pages/event channels), the [/local/domain/<domid>]
    subtree, xl's [/vm/<domid>] registration and shutdown watch are
    removed, and the domain is destroyed — a failed creation leaks
    nothing ([Lightvm.Host.check_leak] asserts this; see DESIGN.md
    "Failure model"). *)

val effective_mem_mb : env -> Vmconfig.t -> float
(** Applies the 4 MB toolstack floor unless the mode carries the
    paper's footnote-1 patch. *)

val prepare :
  env -> mem_mb:float -> vcpus:int -> nics:int -> disks:int ->
  ?breakdown:breakdown -> unit -> shell
(** Phases 1-5.
    @raise Create_failed on out-of-memory, an allocation failure or an
    injected fault; the partial shell is rolled back first. *)

val discard_shell : env -> shell -> unit
(** Tear down a pre-created shell that will never be executed (pool
    scale-down): releases the domain and everything {!prepare} acquired
    for it, restoring the host's resource counts exactly. The shell
    must not be reused afterwards. *)

val execute :
  env -> shell -> ?config_text:string ->
  ?image_override:Lightvm_guest.Image.t -> Vmconfig.t ->
  ?breakdown:breakdown -> unit -> created
(** Phases 6-9. The guest's boot process is spawned; use
    [Guest.wait_ready created.guest] to block until it is up.
    [image_override] bypasses the kernel-name lookup (restore path).
    @raise Create_failed on a config parse error, unknown kernel,
    hotplug timeout or injected fault; the shell {e and} everything
    this call built are rolled back first, so the shell must not be
    reused. *)

val create :
  env -> ?config_text:string -> ?image_override:Lightvm_guest.Image.t ->
  Vmconfig.t -> created
(** prepare + execute inline (the non-split path).
    @raise Create_failed as {!prepare} and {!execute} do. *)

val create_with_image :
  env -> Vmconfig.t -> image:Lightvm_guest.Image.t -> created
(** [create] with an explicit image (used by restore, which boots a
    quiesced image rather than a fresh kernel). *)

val destroy : env -> created -> unit
(** Tear down devices, registry state and the domain. *)
