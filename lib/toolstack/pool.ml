module Engine = Lightvm_sim.Engine

type 'a t = {
  mutable target : int;
  make : unit -> 'a;
  shells : 'a Queue.t;
  mutable refilling : bool;
  mutable made : int;
  mutable takes : int;
  mutable hits : int;
}

let create ~target ~make =
  if target < 1 then invalid_arg "Pool.create: target < 1";
  {
    target;
    make;
    shells = Queue.create ();
    refilling = false;
    made = 0;
    takes = 0;
    hits = 0;
  }

let build t =
  let shell = t.make () in
  t.made <- t.made + 1;
  shell

let prefill t =
  while Queue.length t.shells < t.target do
    Queue.add (build t) t.shells
  done

let size t = Queue.length t.shells
let target t = t.target

let set_target t n =
  if n < 0 then invalid_arg "Pool.set_target: negative target";
  t.target <- n

let take_surplus t =
  if Queue.length t.shells > t.target then Queue.take_opt t.shells else None

let rec refill_loop t =
  if Queue.length t.shells < t.target then begin
    match build t with
    | shell ->
        Queue.add shell t.shells;
        refill_loop t
    | exception _ ->
        (* Background refills must not crash the daemon (e.g. the host
           ran out of memory); creation paths will surface the error
           when a synchronous build fails. *)
        t.refilling <- false
  end
  else t.refilling <- false

let kick_refill t =
  if not t.refilling then begin
    t.refilling <- true;
    Engine.spawn ~name:"chaos-daemon-refill" (fun () -> refill_loop t)
  end

let take t =
  t.takes <- t.takes + 1;
  match Queue.take_opt t.shells with
  | Some shell ->
      t.hits <- t.hits + 1;
      kick_refill t;
      shell
  | None ->
      kick_refill t;
      build t

let made_total t = t.made
let takes t = t.takes
let hits t = t.hits
