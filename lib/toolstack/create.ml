module Engine = Lightvm_sim.Engine
module Fault = Lightvm_sim.Fault
module Xen = Lightvm_hv.Xen
module Domain = Lightvm_hv.Domain
module Devpage = Lightvm_hv.Devpage
module Params = Lightvm_hv.Params
module Xs_server = Lightvm_xenstore.Xs_server
module Xs_client = Lightvm_xenstore.Xs_client
module Xs_error = Lightvm_xenstore.Xs_error
module Device = Lightvm_guest.Device
module Guest = Lightvm_guest.Guest
module Image = Lightvm_guest.Image
module Ctrl = Lightvm_guest.Ctrl
module Xenbus_front = Lightvm_guest.Xenbus_front
module Trace = Lightvm_trace.Trace

type category =
  | Cat_parse
  | Cat_hypervisor
  | Cat_xenstore
  | Cat_devices
  | Cat_load
  | Cat_toolstack

let categories =
  [ Cat_parse; Cat_hypervisor; Cat_xenstore; Cat_devices; Cat_load;
    Cat_toolstack ]

let category_name = function
  | Cat_parse -> "config"
  | Cat_hypervisor -> "hypervisor"
  | Cat_xenstore -> "xenstore"
  | Cat_devices -> "devices"
  | Cat_load -> "load"
  | Cat_toolstack -> "toolstack"

let category_index = function
  | Cat_parse -> 0
  | Cat_hypervisor -> 1
  | Cat_xenstore -> 2
  | Cat_devices -> 3
  | Cat_load -> 4
  | Cat_toolstack -> 5

type breakdown = float array

let breakdown_create () = Array.make 6 0.

let breakdown_get b cat = b.(category_index cat)

let breakdown_total b = Array.fold_left ( +. ) 0. b

(* Attribute the wall-clock (simulated) duration of [f] to [cat]. The
   measurement comes from the tracer, so the Fig 5 breakdown is a
   consumer of trace data: when tracing is on each measured slice also
   lands in the span ring under the category's name. *)
let timed (b : breakdown option) cat f =
  match b with
  | None -> f ()
  | Some b ->
      let r, dt =
        Trace.timed ~category:(category_name cat) (category_name cat) f
      in
      b.(category_index cat) <- b.(category_index cat) +. dt;
      r

(* One span per pipeline phase (category "create"); a no-op unless
   tracing is enabled. *)
let phase ?(attrs = []) name f = Trace.Span.with_ ~attrs ~category:"create" name f

type env = {
  xen : Xen.t;
  xs_server : Xs_server.t;
  xs : Xs_client.t;
  ctrl : Ctrl.t;
  backend : Backend.t;
  mode : Mode.t;
  costs : Costs.t;
  shells : int ref;
}

type shell = {
  s_domid : int;
  s_mem_mb : float;
  s_vcpus : int;
  s_nics : int;
  s_disks : int;
  s_devices : (Device.config * (int * int) option) list;
      (* (device, (ctrl grant, evtchn port)) — the pair is present in
         noxs mode *)
}

let shell_domid s = s.s_domid

let shell_matches s ~mem_mb ~vcpus ~nics ~disks =
  s.s_mem_mb = mem_mb && s.s_vcpus = vcpus && s.s_nics = nics
  && s.s_disks = disks

type created = {
  domid : int;
  vm_name : string;
  config : Vmconfig.t;
  guest : Guest.t;
  devices : Device.config list;
  noxs_grants : (Device.config * int) list;
  create_time : float;
  breakdown : breakdown;
}

exception Create_failed of string

(* Injected phase failure (fault point "create.phaseN"): the phase's
   dominant operation reports an error after the toolstack has already
   committed to the phase, so the caller must roll back. *)
let inject_phase n =
  if Fault.fire (Printf.sprintf "create.phase%d" n) then
    raise (Create_failed (Printf.sprintf "injected fault: phase %d failed" n))

(* Lower layers report their own failures; the pipeline presents every
   abort to callers as [Create_failed] so the retry/cleanup contract has
   a single exception to document. *)
let as_create_failed = function
  | Backend.Alloc_failed msg | Hotplug.Timeout msg -> Create_failed msg
  | e -> e

let effective_mem_mb env (cfg : Vmconfig.t) =
  if env.mode.Mode.min_mem_patch then cfg.Vmconfig.memory_mb
  else Float.max cfg.Vmconfig.memory_mb env.costs.Costs.min_mem_mb

let is_xl env = env.mode.Mode.impl = Mode.Xl

let uses_xenstore env = env.mode.Mode.registry = Mode.Xenstore

(* Scan all running guests for a name (libxl_name_to_domid): a
   directory listing plus one read per guest, each a full round-trip to
   the daemon. This is one of the scalability killers of the standard
   toolstack — [Xs_client.scan_names] models exactly that request
   sequence (same charges and counters) while the host serves it from
   the daemon's name index, so a 10k-guest boot storm doesn't also take
   Θ(N²) host time. *)
let scan_domain_names env = Xs_client.scan_names env.xs

(* ------------------------------------------------------------------ *)
(* Rollback *)

let device_watch_token ~domid (dev : Device.config) =
  Printf.sprintf "be-%d-%s-%d" domid
    (Device.kind_to_string dev.Device.kind)
    dev.Device.devid

(* Undo a partially-built domain. Arguments say exactly how far the
   pipeline got — the rollback must release precisely what was acquired,
   nothing more, so that a failure early in the pipeline (e.g. the
   pre-existing out-of-memory abort in phase 4) performs the same
   operations it always did:

   - [devices]: devices whose phase-5 pre-creation started (backend
     directory + watch under XenStore; grant + ctrl page + event channel
     under noxs). May include a half-built last device — every step
     tolerates "was never created".
   - [skeleton]: the /local/domain/<domid> subtree exists (phase 4).
   - [xl_nodes]/[xl_watch]: xl's name registration, /vm/<domid> subtree
     and shutdown watch exist (phase 7, xl only).

   Frontend entries (phase 7) live under the domain subtree and are
   removed with it; guest-owned frames, event channels and the device
   page are released by [Xen.destroy]. Dom0-owned resources are not —
   hence the explicit per-device teardown. *)
let rollback env ~domid ~skeleton ~devices ~xl_nodes ~xl_watch =
  phase
    ~attrs:[ ("domid", string_of_int domid) ]
    "rollback"
    (fun () ->
      if uses_xenstore env then begin
        List.iter
          (fun ((dev : Device.config), _) ->
            let fe = Device.frontend_dir ~domid dev in
            (try
               Xs_client.unwatch env.xs ~path:(fe ^ "/state")
                 ~token:(device_watch_token ~domid dev)
             with Xs_error.Error _ -> ());
            (* Remove the per-guest level, not just the device node:
               the first backend write implicitly created
               .../backend/<kind>/<domid>, which would otherwise leak
               one empty directory per failed creation. *)
            try Xs_client.rm env.xs (Device.backend_domain_dir ~domid dev)
            with Xs_error.Error _ -> ())
          devices;
        (if xl_watch then
           try
             Xs_client.unwatch env.xs
               ~path:(Printf.sprintf "/local/domain/%d/control/shutdown" domid)
               ~token:(Printf.sprintf "xl-shutdown-%d" domid)
           with Xs_error.Error _ -> ());
        (if xl_nodes then
           try Xs_client.rm env.xs (Printf.sprintf "/vm/%d" domid)
           with Xs_error.Error _ -> ());
        if skeleton then begin
          (try Xs_client.rm env.xs (Printf.sprintf "/local/domain/%d" domid)
           with Xs_error.Error _ -> ());
          Xs_client.release env.xs domid
        end
      end
      else
        List.iter
          (fun (dev, ids) ->
            match ids with
            | Some (gref, port) ->
                Backend.abort_precreated env.backend ~domid dev
                  ~grant_ref:gref ~port
            | None -> ())
          devices;
      ignore (Xen.destroy env.xen ~domid))

(* ------------------------------------------------------------------ *)
(* Prepare: phases 1-5 *)

let prepare env ~mem_mb ~vcpus ~nics ~disks ?breakdown () =
  let b = breakdown in
  (* The counter lives in [env], not at module level: a process-global
     counter would be shared mutable state across worker domains and
     would make shell names depend on whatever ran earlier in the
     process. *)
  incr env.shells;
  let shell_name = Printf.sprintf "chaos-shell-%d" !(env.shells) in
  let mode_attr = ("mode", Mode.name env.mode) in
  (* Phase 1: hypervisor reservation. The domid only exists once the
     reservation succeeds, so it is attached to the span after the fact. *)
  let sp1 =
    Trace.Span.begin_ ~attrs:[ mode_attr ] ~category:"create" "phase1:reserve"
  in
  let dom =
    Fun.protect
      ~finally:(fun () -> Trace.Span.end_ sp1)
      (fun () ->
        let dom =
          timed b Cat_hypervisor (fun () ->
              inject_phase 1;
              match
                Xen.create_domain env.xen ~name:shell_name ~vcpus ~mem_mb
              with
              | Ok dom -> dom
              | Error Xen.ENOMEM -> raise (Create_failed "out of memory")
              | Error _ -> raise (Create_failed "domain creation failed"))
        in
        Trace.Span.add_attr sp1 "domid" (string_of_int (Domain.domid dom));
        dom)
  in
  let domid = Domain.domid dom in
  Domain.set_shell dom true;
  let attrs = [ ("domid", string_of_int domid); mode_attr ] in
  (* From here on the domain exists, so any failure — injected or
     natural — must release what has been acquired. The two refs record
     how far we got; the handler below rolls back exactly that. *)
  let skeleton = ref false in
  let precreated = ref [] in
  try
    (* Phase 2: compute allocation. *)
    phase ~attrs "phase2:compute_alloc" (fun () ->
        timed b Cat_toolstack (fun () ->
            inject_phase 2;
            Costs.charge ~category:"toolstack.compute_alloc"
              env.costs.Costs.compute_alloc));
    (* Phase 3: memory reservation (set maxmem). *)
    phase ~attrs "phase3:set_maxmem" (fun () ->
        timed b Cat_hypervisor (fun () ->
            inject_phase 3;
            Xen.hypercall ~op:"set_maxmem" env.xen ~cost:8.0e-6));
    (* Phase 4: memory preparation, plus the domain's XenStore skeleton. *)
    phase ~attrs "phase4:populate" (fun () ->
        timed b Cat_hypervisor (fun () ->
            inject_phase 4;
            match Xen.populate_memory env.xen ~domid with
            | Ok () -> ()
            | Error _ ->
                raise (Create_failed "out of memory populating guest RAM"));
        if uses_xenstore env then
          timed b Cat_xenstore (fun () ->
              let dompath = Printf.sprintf "/local/domain/%d" domid in
              skeleton := true;
              Xs_client.mkdir env.xs dompath;
              (* The guest owns its domain directory (libxl sets this so
                 the domain can populate its own subtree). *)
              Xs_client.set_perms env.xs dompath
                (Lightvm_xenstore.Xs_perms.make ~owner:domid ());
              Xs_client.mkdir env.xs (dompath ^ "/device");
              Xs_client.mkdir env.xs (dompath ^ "/control")));
    (* Phase 5: device pre-creation. Under noxs every guest also gets
       the sysctl pseudo-device for power operations (Section 5.1). *)
    let devices =
      List.init nics (fun i -> Device.vif ~devid:i ())
      @ List.init disks (fun i -> Device.vbd ~devid:i ())
      @ (if uses_xenstore env then [] else [ Device.sysctl () ])
    in
    let s_devices =
      phase ~attrs "phase5:precreate_devices" (fun () ->
          inject_phase 5;
          List.map
            (fun dev ->
              if uses_xenstore env then begin
                precreated := (dev, None) :: !precreated;
                timed b Cat_xenstore (fun () ->
                    (* Backend directory skeleton + the backend's watch.
                       The guest's frontend must be able to read the
                       backend's nodes (state, mac). *)
                    let be = Device.backend_dir ~domid dev in
                    let guest_readable =
                      Lightvm_xenstore.Xs_perms.make ~owner:0
                        ~acl:[ (domid, Lightvm_xenstore.Xs_perms.Read) ]
                        ()
                    in
                    Xs_client.mkdir env.xs be;
                    Xs_client.set_perms env.xs be guest_readable;
                    Xs_client.write env.xs (be ^ "/frontend-id")
                      (string_of_int domid);
                    Xs_client.set_perms env.xs (be ^ "/frontend-id")
                      guest_readable;
                    Xs_client.write env.xs (be ^ "/state")
                      (Xenbus_front.state_to_wire Xenbus_front.Init_wait);
                    Xs_client.set_perms env.xs (be ^ "/state") guest_readable;
                    Backend.watch_device env.backend ~domid dev);
                timed b Cat_devices (fun () ->
                    Hotplug.run env.mode.Mode.hotplug ~xen:env.xen
                      ~costs:env.costs dev);
                (dev, None)
              end
              else begin
                let ids =
                  timed b Cat_devices (fun () ->
                      Backend.precreate_device env.backend ~domid dev)
                in
                precreated := (dev, Some ids) :: !precreated;
                timed b Cat_devices (fun () ->
                    Hotplug.run env.mode.Mode.hotplug ~xen:env.xen
                      ~costs:env.costs dev);
                (dev, Some ids)
              end)
            devices)
    in
    { s_domid = domid; s_mem_mb = mem_mb; s_vcpus = vcpus; s_nics = nics;
      s_disks = disks; s_devices }
  with e ->
    rollback env ~domid ~skeleton:!skeleton ~devices:!precreated
      ~xl_nodes:false ~xl_watch:false;
    raise (as_create_failed e)

(* Retire an unused shell: the inverse of a completed [prepare], i.e.
   exactly the rollback [execute] performs before xl's phase-7 state
   exists. Releases the domain, its frames, the XenStore skeleton and
   backend directories (or the noxs pre-created device resources), so a
   pool scale-down restores the host's resource counts bit-exactly. *)
let discard_shell env (shell : shell) =
  rollback env ~domid:shell.s_domid ~skeleton:(uses_xenstore env)
    ~devices:shell.s_devices ~xl_nodes:false ~xl_watch:false

(* ------------------------------------------------------------------ *)
(* Execute: phases 6-9 *)

let xl_extra_entries domid =
  let dompath = Printf.sprintf "/local/domain/%d" domid in
  let vmpath = Printf.sprintf "/vm/%d" domid in
  [
    (vmpath ^ "/uuid", Printf.sprintf "0000-%04d" domid);
    (vmpath ^ "/image/ostype", "linux");
    (dompath ^ "/vm", vmpath);
    (dompath ^ "/domid", string_of_int domid);
    (dompath ^ "/memory/target", "0");
    (dompath ^ "/memory/static-max", "0");
    (dompath ^ "/console/ring-ref", "0");
    (dompath ^ "/console/port", "0");
    (dompath ^ "/console/limit", "65536");
    (dompath ^ "/console/type", "xenconsoled");
    (dompath ^ "/store/port", "1");
    (dompath ^ "/cpu/0/availability", "online");
  ]

let init_device_xenstore env ~domid (dev : Device.config) =
  (* Frontend entries, written atomically in a transaction, as libxl
     does ("atomicity is ensured via transactions"). The frontend nodes
     are handed to the guest so its driver can publish the ring. *)
  let fe = Device.frontend_dir ~domid dev in
  let be = Device.backend_dir ~domid dev in
  let mac = Backend.fresh_mac env.backend in
  let guest_owned = Lightvm_xenstore.Xs_perms.make ~owner:domid () in
  let guest_readable =
    Lightvm_xenstore.Xs_perms.make ~owner:0
      ~acl:[ (domid, Lightvm_xenstore.Xs_perms.Read) ]
      ()
  in
  Xs_client.with_transaction env.xs (fun tx ->
      Xs_client.write_many env.xs ~tx
        [
          (fe ^ "/backend", be);
          (fe ^ "/backend-id",
           string_of_int dev.Device.backend_domid);
          (fe ^ "/state",
           Xenbus_front.state_to_wire Xenbus_front.Initialising);
          (fe ^ "/handle", string_of_int dev.Device.devid);
        ];
      List.iter
        (fun node -> Xs_client.set_perms env.xs ~tx node guest_owned)
        [ fe; fe ^ "/backend"; fe ^ "/backend-id"; fe ^ "/state";
          fe ^ "/handle" ];
      Xs_client.write env.xs ~tx (be ^ "/mac") mac;
      Xs_client.set_perms env.xs ~tx (be ^ "/mac") guest_readable)

let init_device_noxs env ~domid (dev : Device.config) ids =
  let gref, port =
    match ids with
    | Some ids -> ids
    | None ->
        (* Shell was prepared without this device (should not happen if
           pool flavors match). *)
        Backend.precreate_device env.backend ~domid dev
  in
  (* One hypercall writes the entry into the domain's device page. *)
  let costs = Xen.costs env.xen in
  Xen.hypercall ~op:"devpage_op" env.xen ~cost:costs.Params.devpage_op;
  (match
     Devpage.write_entry (Xen.devpage env.xen) ~caller:0 ~domid
       {
         Devpage.kind = Device.devpage_kind dev.Device.kind;
         devid = dev.Device.devid;
         backend_domid = dev.Device.backend_domid;
         grant_ref = gref;
         evtchn_port = port;
       }
   with
  | Ok () -> ()
  | Error _ -> raise (Create_failed "device page write failed"));
  (dev, gref)

let execute env shell ?config_text ?image_override (cfg : Vmconfig.t)
    ?breakdown () =
  let b = breakdown in
  let t0 = Engine.now () in
  let domid = shell.s_domid in
  let dom =
    match Xen.domain env.xen ~domid with
    | Some dom -> dom
    | None -> raise (Create_failed "shell domain vanished")
  in
  let attrs =
    [ ("domid", string_of_int domid); ("mode", Mode.name env.mode) ]
  in
  (* The shell arrives here owning phases 1-5's resources (under the
     split toolstack it was prepared long ago by the pool daemon), so
     any failure in phases 6-9 must release all of them plus whatever
     phase 7 added. *)
  let xl_nodes = ref false in
  let xl_watch = ref false in
  try
  (* Phase 6: toolstack bookkeeping (libxl: lock files, JSON state,
     event machinery; chaos: a small in-memory record) and
     configuration parsing. *)
  let cfg =
    phase ~attrs "phase6:parse" (fun () ->
        timed b Cat_toolstack (fun () ->
            inject_phase 6;
            Costs.charge ~category:"toolstack.bookkeeping"
              (if is_xl env then env.costs.Costs.xl_bookkeeping
               else env.costs.Costs.chaos_bookkeeping));
        timed b Cat_parse (fun () ->
            match config_text with
            | None ->
                Costs.charge ~category:"toolstack.config_parse"
                  env.costs.Costs.config_parse_base;
                cfg
            | Some text ->
                Costs.charge ~category:"toolstack.config_parse"
                  (env.costs.Costs.config_parse_base
                  +. (float_of_int (String.length text)
                      *. env.costs.Costs.config_parse_per_byte));
                (match Vmconfig.parse text with
                | Ok parsed -> parsed
                | Error msg ->
                    raise (Create_failed ("config parse error: " ^ msg)))))
  in
  (* Phase 7: device initialization. *)
  let noxs_grants =
    phase ~attrs "phase7:init_devices" (fun () ->
        inject_phase 7;
        Domain.set_name dom cfg.Vmconfig.name;
        Domain.set_shell dom false;
        if uses_xenstore env then begin
          (* libxl resolves names by scanning every guest, several
             times per command. *)
          timed b Cat_xenstore (fun () ->
              for i = 1 to
                (if is_xl env then env.costs.Costs.xl_name_scans
                 else env.costs.Costs.chaos_name_scans)
              do
                let names = scan_domain_names env in
                if i = 1 && List.mem cfg.Vmconfig.name names then
                  raise
                    (Create_failed
                       ("domain already exists: " ^ cfg.Vmconfig.name))
              done;
              (* xl registers the guest name in the store, which
                 triggers the daemon's uniqueness scan over every
                 running guest. chaos leans on the paper's observation
                 that "the name ... is kept in the XenStore but is not
                 needed during boot": it keeps the name in the
                 hypervisor record only. *)
              if is_xl env then begin
                xl_nodes := true;
                Xs_client.write env.xs
                  (Printf.sprintf "/local/domain/%d/name" domid)
                  cfg.Vmconfig.name
              end;
              if is_xl env then begin
                Xs_client.write_many env.xs (xl_extra_entries domid);
                (* The xl daemon watches every guest's shutdown node to
                   track domain lifecycle — one more registry entry per
                   VM that every later write must be checked against. *)
                xl_watch := true;
                Xs_client.watch env.xs
                  ~path:(Printf.sprintf "/local/domain/%d/control/shutdown"
                           domid)
                  ~token:(Printf.sprintf "xl-shutdown-%d" domid)
                  ~deliver:(fun _ -> ())
              end)
        end;
        let noxs_grants =
          if uses_xenstore env then begin
            timed b Cat_xenstore (fun () ->
                List.iter
                  (fun (dev, _) -> init_device_xenstore env ~domid dev)
                  shell.s_devices);
            []
          end
          else
            timed b Cat_devices (fun () ->
                List.map
                  (fun (dev, ids) -> init_device_noxs env ~domid dev ids)
                  shell.s_devices)
        in
        (if is_xl env then
           timed b Cat_toolstack (fun () ->
               Costs.charge ~category:"toolstack.console_setup"
                 env.costs.Costs.xl_console_setup));
        noxs_grants)
  in
  (* Phase 8: image build — parse the kernel image and lay it out in
     guest memory (linear in image size; Figure 2). *)
  let image =
    match image_override with
    | Some image -> image
    | None -> (
        match Vmconfig.image cfg with
        | Some image -> image
        | None ->
            raise
              (Create_failed ("unknown kernel image: " ^ cfg.Vmconfig.kernel)))
  in
  phase ~attrs "phase8:build" (fun () ->
      inject_phase 8;
      (if is_xl env then
         match image.Image.kind with
         | Image.Tinyx _ | Image.Debian ->
             timed b Cat_toolstack (fun () ->
                 Costs.charge ~category:"toolstack.pv_build"
                   env.costs.Costs.xl_pv_build_extra)
         | Image.Unikernel _ -> ());
      timed b Cat_load (fun () ->
          match
            Xen.load_image env.xen ~domid ~size_mb:image.Image.kernel_mb
          with
          | Ok () -> ()
          | Error _ -> raise (Create_failed "image load failed")));
  (* Phase 9: boot. *)
  phase ~attrs "phase9:boot" (fun () ->
      timed b Cat_hypervisor (fun () ->
          inject_phase 9;
          match Xen.unpause env.xen ~domid with
          | Ok () -> ()
          | Error _ -> raise (Create_failed "unpause failed")));
  let devices = List.map fst shell.s_devices in
  let registry =
    if uses_xenstore env then
      Guest.Xenbus (Xs_client.connect env.xs_server ~domid)
    else Guest.Noxs env.ctrl
  in
  let guest =
    Guest.start ~xen:env.xen ~registry ~domid ~image ~devices ()
  in
  let create_time = Engine.now () -. t0 in
  {
    domid;
    vm_name = cfg.Vmconfig.name;
    config = cfg;
    guest;
    devices;
    noxs_grants;
    create_time;
    breakdown =
      (match b with Some b -> b | None -> breakdown_create ());
  }
  with e ->
    rollback env ~domid ~skeleton:(uses_xenstore env)
      ~devices:shell.s_devices ~xl_nodes:!xl_nodes ~xl_watch:!xl_watch;
    raise (as_create_failed e)

let create_gen env ?config_text ?image_override cfg =
  let b = breakdown_create () in
  let t0 = Engine.now () in
  let mem_mb = effective_mem_mb env cfg in
  let shell =
    prepare env ~mem_mb ~vcpus:cfg.Vmconfig.vcpus
      ~nics:(List.length cfg.Vmconfig.vifs)
      ~disks:(List.length cfg.Vmconfig.disks)
      ~breakdown:b ()
  in
  let created =
    execute env shell ?config_text ?image_override cfg ~breakdown:b ()
  in
  { created with create_time = Engine.now () -. t0 }

let create env ?config_text ?image_override cfg =
  create_gen env ?config_text ?image_override cfg

let create_with_image env cfg ~image = create_gen env ~image_override:image cfg

(* ------------------------------------------------------------------ *)

let destroy env created =
  Guest.shutdown created.guest;
  let domid = created.domid in
  if uses_xenstore env then begin
    (* Remove the device watches and the domain's subtree. *)
    List.iter
      (fun dev ->
        let fe = Device.frontend_dir ~domid dev in
        let token =
          Printf.sprintf "be-%d-%s-%d" domid
            (Device.kind_to_string dev.Device.kind)
            dev.Device.devid
        in
        (try Xs_client.unwatch env.xs ~path:(fe ^ "/state") ~token
         with Xs_error.Error _ -> ());
        (if is_xl env then
           try
             Xs_client.unwatch env.xs
               ~path:(Printf.sprintf "/local/domain/%d/control/shutdown"
                        domid)
               ~token:(Printf.sprintf "xl-shutdown-%d" domid)
           with Xs_error.Error _ -> ());
        (* The per-guest level, not just the device node: the first
           backend write implicitly created .../backend/<kind>/<domid>,
           which would otherwise leak one directory per guest (the
           failure rollback already removes the same level). *)
        try Xs_client.rm env.xs (Device.backend_domain_dir ~domid dev)
        with Xs_error.Error _ -> ())
      created.devices;
    (try Xs_client.rm env.xs (Printf.sprintf "/local/domain/%d" domid)
     with Xs_error.Error _ -> ());
    Xs_client.release env.xs domid
  end
  else
    List.iter
      (fun (dev, gref) ->
        Backend.destroy_device env.backend ~domid dev ~grant_ref:gref)
      created.noxs_grants;
  (match Xen.destroy env.xen ~domid with
  | Ok () -> ()
  | Error _ -> ());
  (* The backend's control-page grants can only be freed once the dying
     guest's foreign mappings are gone, i.e. after the domain destroy.
     They are Dom0-owned, so [Xen.destroy] itself never reclaims them;
     the gnttab free is part of the [noxs_device_destroy] work already
     charged by [Backend.destroy_device] above. *)
  if not (uses_xenstore env) then
    List.iter
      (fun ((dev : Device.config), gref) ->
        ignore
          (Lightvm_hv.Gnttab.end_access (Xen.gnttab env.xen)
             ~owner:dev.Device.backend_domid gref))
      created.noxs_grants
