(** Save/restore (checkpointing), Section 6.2.

    Saving suspends the guest — via XenStore control nodes on the
    classic path, or via the sysctl pseudo-device's shared page and
    event channel under noxs — then dumps its memory to the ramdisk and
    tears the domain down. Restoring rebuilds the domain and devices,
    reads the dump back, and resumes the guest (device frontends
    reconnect, but the kernel does not reboot). *)

type saved

val saved_name : saved -> string

val saved_mem_mb : saved -> float

val save : Toolstack.t -> Create.created -> saved
(** Blocks for the save duration; the domain is gone afterwards. *)

val restore : Toolstack.t -> saved -> Create.created
(** Blocks until the toolstack hands off to the resumed guest. The
    domain is rebuilt through the normal creation pipeline.
    @raise Create.Create_failed as {!Create.create} does (out of
    memory, injected fault); the partial domain is rolled back and the
    saved image remains valid for another attempt. *)

val suspend_for_transfer : Toolstack.t -> Create.created -> saved
(** Migration helper: quiesce and detach the guest, leaving the memory
    image ready to stream (no ramdisk dump). The source domain is
    destroyed. *)

val resume_from_transfer :
  Toolstack.t -> saved -> Create.created
(** Migration helper: finish an incoming migration on a host where the
    domain shell was pre-created (memory transfer is charged by the
    caller).
    @raise Create.Create_failed as {!restore} does. *)
