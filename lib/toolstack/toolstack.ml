module Xen = Lightvm_hv.Xen
module Xs_server = Lightvm_xenstore.Xs_server
module Xs_client = Lightvm_xenstore.Xs_client
module Ctrl = Lightvm_guest.Ctrl
module Engine = Lightvm_sim.Engine

type t = {
  env : Create.env;
  pool_target : int;
  pools : (string, Create.shell Pool.t) Hashtbl.t;
  live : (int, Create.created) Hashtbl.t;
}

let make ~xen ~mode ?xs_profile ?(costs = Costs.default)
    ?(pool_target = 8) () =
  let xs_server =
    match xs_profile with
    | Some profile -> Xs_server.create ~profile ()
    | None -> Xs_server.create ()
  in
  let xs = Xs_client.connect xs_server ~domid:0 in
  let ctrl = Ctrl.create () in
  let backend =
    Backend.create ~xen
      ~xs:(if mode.Mode.registry = Mode.Xenstore then Some xs else None)
      ~ctrl ~costs
  in
  let env =
    { Create.xen; xs_server; xs; ctrl; backend; mode; costs;
      shells = ref 0 }
  in
  { env; pool_target; pools = Hashtbl.create 8; live = Hashtbl.create 64 }

let env t = t.env
let xen t = t.env.Create.xen
let mode t = t.env.Create.mode
let costs t = t.env.Create.costs
let xs_server t = t.env.Create.xs_server

let flavor_key ~mem_mb ~vcpus ~nics ~disks =
  Printf.sprintf "%gMB-%dvcpu-%dnic-%ddisk" mem_mb vcpus nics disks

let flavor_of_config t (cfg : Vmconfig.t) =
  let mem_mb = Create.effective_mem_mb t.env cfg in
  ( mem_mb,
    cfg.Vmconfig.vcpus,
    List.length cfg.Vmconfig.vifs,
    List.length cfg.Vmconfig.disks )

let pool_for t (cfg : Vmconfig.t) =
  let mem_mb, vcpus, nics, disks = flavor_of_config t cfg in
  let key = flavor_key ~mem_mb ~vcpus ~nics ~disks in
  match Hashtbl.find_opt t.pools key with
  | Some pool -> pool
  | None ->
      let pool =
        Pool.create ~target:t.pool_target ~make:(fun () ->
            Create.prepare t.env ~mem_mb ~vcpus ~nics ~disks ())
      in
      Hashtbl.replace t.pools key pool;
      pool

let register_vm t created = Hashtbl.replace t.live created.Create.domid created

let unregister_vm t ~domid = Hashtbl.remove t.live domid

let create_vm t ?config_text ?image_override cfg =
  match
    if (mode t).Mode.split then begin
      let t0 = Engine.now () in
      let b = Create.breakdown_create () in
      let shell = Pool.take (pool_for t cfg) in
      let created =
        Create.execute t.env shell ?config_text ?image_override cfg
          ~breakdown:b ()
      in
      { created with Create.create_time = Engine.now () -. t0 }
    end
    else Create.create t.env ?config_text ?image_override cfg
  with
  | created ->
      register_vm t created;
      Ok created
  | exception Create.Create_failed msg -> Error msg
  | exception Lightvm_xenstore.Xs_error.Error e ->
      Error (Lightvm_xenstore.Xs_error.to_string e)

let create_vm_exn t ?config_text ?image_override cfg =
  match create_vm t ?config_text ?image_override cfg with
  | Ok created -> created
  | Error msg -> raise (Create.Create_failed msg)

let destroy_vm t created =
  Create.destroy t.env created;
  unregister_vm t ~domid:created.Create.domid

let vm t ~domid = Hashtbl.find_opt t.live domid

let vms t =
  List.sort
    (fun a b -> compare a.Create.domid b.Create.domid)
    (Hashtbl.fold (fun _ v acc -> v :: acc) t.live [])

let vm_count t = Hashtbl.length t.live

let prefill_pool t cfg =
  if (mode t).Mode.split then Pool.prefill (pool_for t cfg)

let pool_size t cfg =
  if (mode t).Mode.split then Pool.size (pool_for t cfg) else 0

let pool_target t cfg =
  if (mode t).Mode.split then Pool.target (pool_for t cfg) else 0

(* Scale the flavor's pool: raising the target leaves refilling to the
   next take (or an explicit [prefill_pool]); lowering it retires the
   surplus shells immediately through the full prepare-inverse, so no
   domain, frame or store node outlives the scale-down. *)
let set_pool_target t cfg target =
  if (mode t).Mode.split then begin
    let pool = pool_for t cfg in
    Pool.set_target pool target;
    let rec drain () =
      match Pool.take_surplus pool with
      | None -> ()
      | Some shell ->
          Create.discard_shell t.env shell;
          drain ()
    in
    drain ()
  end

let pool_stats t cfg =
  if (mode t).Mode.split then
    let pool = pool_for t cfg in
    (Pool.hits pool, Pool.takes pool)
  else (0, 0)

let shell_count t =
  Hashtbl.fold (fun _ pool acc -> acc + Pool.size pool) t.pools 0
