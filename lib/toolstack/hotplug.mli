(** Device hotplug in Dom0 (Section 5.3).

    With standard Xen, creating a virtual device runs user-configured
    bash scripts (forked by xl or by udevd) to add the vif to the
    bridge or set up the block device — tens of milliseconds. xendevd
    replaces this with a pre-compiled daemon reacting to udev events
    without forking. *)

exception Timeout of string
(** Device setup never completed: a hung script (fault point
    [hotplug.hang]) outlived the toolstack's watchdog
    ([Costs.hotplug_timeout]), or — under xendevd — the setup kept
    failing through every requeue. The device is not set up; the
    creation pipeline rolls the domain back. *)

val run :
  Mode.hotplug_kind ->
  xen:Lightvm_hv.Xen.t ->
  costs:Costs.t ->
  Lightvm_guest.Device.config ->
  unit
(** Perform the setup for one device, charging Dom0 CPU. Blocks for the
    script/daemon duration.

    Failure behaviour differs by kind, mirroring the real daemons:
    - [Script] (xl): one attempt; a hang waits out the watchdog and
      raises {!Timeout}.
    - [Xendevd]: a failed attempt is requeued like a lost udev event
      (after [Costs.xendevd_requeue_delay]), up to
      [Costs.xendevd_requeue_limit] retries, so transient faults
      degrade creation time instead of failing it; only a persistent
      fault raises {!Timeout}.

    @raise Timeout as described above; only possible under an
    installed fault injector. *)

val estimate :
  Mode.hotplug_kind -> costs:Costs.t -> Lightvm_guest.Device.config ->
  float
(** The cost that one fault-free {!run} attempt will charge (for tests
    and documentation). *)
