(** Host-level toolstack facade: one value bundling the hypervisor, the
    XenStore daemon, Dom0 backends and the selected toolstack mode, with
    VM bookkeeping and the shell pools of the split toolstack. *)

type t

val make :
  xen:Lightvm_hv.Xen.t ->
  mode:Mode.t ->
  ?xs_profile:Lightvm_xenstore.Xs_costs.profile ->
  ?costs:Costs.t ->
  ?pool_target:int ->
  unit ->
  t
(** Build the control plane on a booted hypervisor. [pool_target] is
    the number of shells per flavor the chaos daemon maintains when the
    mode has the split toolstack (default 8). *)

val env : t -> Create.env

val xen : t -> Lightvm_hv.Xen.t

val mode : t -> Mode.t

val costs : t -> Costs.t

val xs_server : t -> Lightvm_xenstore.Xs_server.t

val create_vm :
  t -> ?config_text:string ->
  ?image_override:Lightvm_guest.Image.t ->
  Vmconfig.t -> (Create.created, string) result
(** Full creation via the mode's path. In split mode, takes a shell
    from the pool (background-refilled) so [create_time] covers only
    the execute phase. [Error msg] is a caught {!Create.Create_failed}
    — out of memory, hotplug timeout, or an injected fault — and
    implies the partial domain was already rolled back (nothing to
    clean up, the VM is not registered). *)

val create_vm_exn :
  t -> ?config_text:string ->
  ?image_override:Lightvm_guest.Image.t ->
  Vmconfig.t -> Create.created
(** {!create_vm} for callers that treat failure as fatal.
    @raise Create.Create_failed under the same conditions (and with
    the same already-rolled-back guarantee). *)

val destroy_vm : t -> Create.created -> unit

val vm : t -> domid:int -> Create.created option

val vms : t -> Create.created list
(** Live VMs by ascending domid. *)

val vm_count : t -> int

val prefill_pool : t -> Vmconfig.t -> unit
(** Warm the pool for this config's flavor up to the pool target
    (no-op unless the mode is split). *)

val pool_size : t -> Vmconfig.t -> int

val pool_target : t -> Vmconfig.t -> int
(** Current low-water mark of this config's flavor pool ([0] when the
    mode is not split). *)

val set_pool_target : t -> Vmconfig.t -> int -> unit
(** Autoscaler hook: move the flavor pool's low-water mark. Raising it
    takes effect on the next take or {!prefill_pool}; lowering it
    immediately retires every surplus shell through
    {!Create.discard_shell}, releasing the shells' domains and store
    state (no-op unless the mode is split).
    @raise Invalid_argument on a negative target. *)

val pool_stats : t -> Vmconfig.t -> int * int
(** [(hits, takes)] of this config's flavor pool since host creation:
    [takes] counts shell requests, [hits] the ones served from a
    pre-created shell. [(0, 0)] unless the mode is split. *)

val shell_count : t -> int
(** Total pre-created shells across all flavors (these exist as paused
    domains, so they show up in the hypervisor's domain count). *)

val register_vm : t -> Create.created -> unit
(** Used by restore/migration to adopt an incoming VM. *)

val unregister_vm : t -> domid:int -> unit
