module Engine = Lightvm_sim.Engine
module Fault = Lightvm_sim.Fault
module Xen = Lightvm_hv.Xen
module Evtchn = Lightvm_hv.Evtchn
module Gnttab = Lightvm_hv.Gnttab
module Params = Lightvm_hv.Params
module Xs_client = Lightvm_xenstore.Xs_client
module Xs_error = Lightvm_xenstore.Xs_error
module Device = Lightvm_guest.Device
module Ctrl = Lightvm_guest.Ctrl
module Xenbus_front = Lightvm_guest.Xenbus_front

type t = {
  xen : Xen.t;
  xs : Xs_client.t option;
  ctrl : Ctrl.t;
  costs : Costs.t;
  mutable mac_counter : int;
  mutable connected : int;
  mutable next_ctrl_frame : int;
}

exception Alloc_failed of string

let create ~xen ~xs ~ctrl ~costs =
  { xen; xs; ctrl; costs; mac_counter = 0; connected = 0;
    next_ctrl_frame = 0x1000 }

let ctrl t = t.ctrl

let fresh_mac t =
  t.mac_counter <- t.mac_counter + 1;
  let n = t.mac_counter in
  Printf.sprintf "00:16:3e:%02x:%02x:%02x"
    ((n lsr 16) land 0xff)
    ((n lsr 8) land 0xff)
    (n land 0xff)

(* ------------------------------------------------------------------ *)
(* XenStore path *)

let complete_handshake t ~domid (dev : Device.config) xs =
  (* Runs on a watch event: the frontend has published its half. *)
  let fe = Device.frontend_dir ~domid dev in
  let be = Device.backend_dir ~domid dev in
  match Xs_client.read_opt xs (be ^ "/state") with
  | Some s
    when Xenbus_front.state_of_wire s = Some Xenbus_front.Connected ->
      () (* already connected; spurious event *)
  | Some _ | None -> (
      match
        ( Xs_client.read_opt xs (fe ^ "/ring-ref"),
          Xs_client.read_opt xs (fe ^ "/event-channel") )
      with
      | Some gref, Some port ->
          let costs = Xen.costs t.xen in
          (* Map the ring and bind the channel. *)
          Xen.hypercall ~op:"gnttab_op" t.xen ~cost:costs.Params.gnttab_op;
          ignore
            (Gnttab.map (Xen.gnttab t.xen) ~grantee:dev.Device.backend_domid
               ~owner:domid (int_of_string gref));
          Xen.hypercall ~op:"evtchn_op" t.xen ~cost:costs.Params.evtchn_op;
          ignore
            (Evtchn.bind_interdomain (Xen.evtchn t.xen)
               ~domid:dev.Device.backend_domid ~remote:domid
               ~remote_port:(int_of_string port));
          (* Backend-side driver work on a Dom0 core. *)
          Xen.consume_dom0 t.xen t.costs.Costs.backend_connect_work;
          (* The daemon degrades gracefully under store pressure: a
             quota rejection (natural or injected, see lib/sim/fault.ml)
             is retried after a backoff rather than wedging the device —
             a frontend blocked on this write would otherwise never see
             Connected. Unbounded on purpose: real netback loops until
             the store accepts, and any fault probability < 1 terminates. *)
          let rec publish_connected attempt =
            try
              Xs_client.write xs (be ^ "/state")
                (Xenbus_front.state_to_wire Xenbus_front.Connected)
            with Xs_error.Error Xs_error.EQUOTA ->
              Costs.charge ~category:"devices.requeue"
                (t.costs.Costs.xendevd_requeue_delay
                *. float_of_int (1 lsl Stdlib.min attempt 6));
              publish_connected (attempt + 1)
          in
          publish_connected 0;
          t.connected <- t.connected + 1
      | _ -> () (* frontend not ready yet; wait for the next event *))

let watch_device t ~domid (dev : Device.config) =
  match t.xs with
  | None -> invalid_arg "Backend.watch_device: no XenStore connection"
  | Some xs ->
      let fe = Device.frontend_dir ~domid dev in
      let token =
        Printf.sprintf "be-%d-%s-%d" domid
          (Device.kind_to_string dev.Device.kind)
          dev.Device.devid
      in
      (* The watch stays registered for the device's lifetime (the real
         netback keeps watching for Closing) — the registry grows with
         the number of running guests. *)
      Xs_client.watch xs ~path:(fe ^ "/state") ~token
        ~deliver:(fun _event ->
          match Xs_client.read_opt xs (fe ^ "/state") with
          | Some s
            when Xenbus_front.state_of_wire s
                 = Some Xenbus_front.Initialised ->
              complete_handshake t ~domid dev xs
          | Some _ | None -> ())

(* ------------------------------------------------------------------ *)
(* noxs path *)

let precreate_device t ~domid (dev : Device.config) =
  (* The ioctl into the noxs kernel module plus backend-side setup. *)
  Xen.consume_dom0 t.xen t.costs.Costs.backend_ioctl;
  let costs = Xen.costs t.xen in
  (* Allocate the device control page and grant it to the guest. *)
  t.next_ctrl_frame <- t.next_ctrl_frame + 1;
  Xen.hypercall ~op:"gnttab_op" t.xen ~cost:costs.Params.gnttab_op;
  (* Fault point: the hypercall did its work but the backend's grant
     table is full. Nothing allocated yet, so nothing to undo. *)
  if Fault.fire "gnttab.alloc" then
    raise (Alloc_failed "grant table full pre-creating device");
  let gref =
    Gnttab.grant_access (Xen.gnttab t.xen)
      ~owner:dev.Device.backend_domid ~grantee:domid
      ~frame:t.next_ctrl_frame
  in
  let page =
    Ctrl.register t.ctrl ~backend_domid:dev.Device.backend_domid
      ~grant_ref:gref ~mac:(fresh_mac t)
  in
  (* Unbound event channel for the frontend to bind. *)
  Xen.hypercall ~op:"evtchn_op" t.xen ~cost:costs.Params.evtchn_op;
  (* Fault point: out of event channels. The grant and control page
     were already allocated — release them before reporting, so a
     failed pre-creation never leaks Dom0-owned resources (Xen.destroy
     of the guest would not reclaim them). *)
  if Fault.fire "evtchn.alloc" then begin
    Ctrl.unregister t.ctrl ~backend_domid:dev.Device.backend_domid
      ~grant_ref:gref;
    ignore (Gnttab.end_access (Xen.gnttab t.xen) ~owner:dev.Device.backend_domid gref);
    raise (Alloc_failed "out of event channels pre-creating device")
  end;
  let port =
    Evtchn.alloc_unbound (Xen.evtchn t.xen)
      ~domid:dev.Device.backend_domid ~remote:domid
  in
  (* When the guest kicks, finish the handshake over shared memory. *)
  Evtchn.set_handler (Xen.evtchn t.xen) ~domid:dev.Device.backend_domid
    ~port (fun () ->
      if Ctrl.front_state page = Ctrl.Front_ready
         && Ctrl.back_state page <> Ctrl.Connected
      then begin
        Xen.consume_dom0 t.xen t.costs.Costs.backend_connect_work;
        Ctrl.set_back_state page Ctrl.Connected;
        t.connected <- t.connected + 1;
        match Ctrl.front_port page with
        | Some fport ->
            ignore (Evtchn.notify (Xen.evtchn t.xen) ~domid ~port:fport)
        | None -> ()
      end);
  (gref, port)

let destroy_device t ~domid (dev : Device.config) ~grant_ref =
  ignore domid;
  (* Not yet optimized in the noxs prototype (Section 6.2). *)
  Xen.consume_dom0 t.xen t.costs.Costs.noxs_device_destroy;
  Ctrl.unregister t.ctrl ~backend_domid:dev.Device.backend_domid
    ~grant_ref

let abort_precreated t ~domid (dev : Device.config) ~grant_ref ~port =
  ignore domid;
  (* Tearing down a pre-created device whose guest never booted. All
     three resources are owned by the backend domain, so destroying the
     guest would not release them — this is the cleanup the creation
     rollback runs. Same (unoptimized) cost as a live-device destroy. *)
  Xen.consume_dom0 t.xen t.costs.Costs.noxs_device_destroy;
  ignore
    (Evtchn.close (Xen.evtchn t.xen) ~domid:dev.Device.backend_domid ~port);
  Ctrl.unregister t.ctrl ~backend_domid:dev.Device.backend_domid ~grant_ref;
  ignore
    (Gnttab.end_access (Xen.gnttab t.xen) ~owner:dev.Device.backend_domid
       grant_ref)

let connected_count t = t.connected
