module Engine = Lightvm_sim.Engine

type t = {
  capacity_pps : float;
  latency : float;
  queue_slots : int;
  handlers : (int, Packet.t -> unit) Hashtbl.t;
  partitions : (int, int) Hashtbl.t; (* port -> partition, when declared *)
  fdb : (int, int) Hashtbl.t; (* mac -> port (identical here) *)
  mutable tokens : float;
  mutable last_refill : float;
  mutable forwarded : int;
  mutable dropped : int;
  mutable dropped_broadcast : int;
}

let default_latency = 30.0e-6

let create ?(capacity_pps = 300_000.) ?(latency = default_latency)
    ?(queue_slots = 2048) () =
  {
    capacity_pps;
    latency;
    queue_slots;
    handlers = Hashtbl.create 64;
    partitions = Hashtbl.create 64;
    fdb = Hashtbl.create 64;
    tokens = float_of_int queue_slots;
    last_refill = 0.;
    forwarded = 0;
    dropped = 0;
    dropped_broadcast = 0;
  }

let attach ?partition t ~port ~handler =
  Hashtbl.replace t.handlers port handler;
  match partition with
  | Some p -> Hashtbl.replace t.partitions port p
  | None -> Hashtbl.remove t.partitions port

let detach t ~port =
  Hashtbl.remove t.handlers port;
  Hashtbl.remove t.partitions port;
  Hashtbl.remove t.fdb port

let refill t =
  let now = Engine.now () in
  let elapsed = now -. t.last_refill in
  if elapsed > 0. then begin
    t.tokens <-
      Float.min
        (float_of_int t.queue_slots)
        (t.tokens +. (elapsed *. t.capacity_pps));
    t.last_refill <- now
  end

(* Delivery is the partition boundary of a partitioned run: a port
   attached with a partition id receives its packets via [Engine.post],
   so the handler runs inside the port's own partition. The forwarding
   latency is exactly the conservative-sync lookahead (see
   DESIGN.md "Parallel simulation"), which is what makes every
   cross-partition post legal. Timing is identical in both modes: the
   handler process starts [latency] after the send. *)
let deliver t port pkt =
  match Hashtbl.find_opt t.handlers port with
  | None -> ()
  | Some handler ->
      let start () =
        Engine.spawn ~name:"switch-delivery" (fun () -> handler pkt)
      in
      (match Hashtbl.find_opt t.partitions port with
      | Some p when p <> Engine.current_partition () ->
          Engine.post ~partition:p ~delay:t.latency start
      | Some _ | None -> ignore (Engine.after t.latency start))

let send t (pkt : Packet.t) =
  refill t;
  (* Learn the source. *)
  Hashtbl.replace t.fdb pkt.Packet.src pkt.Packet.src;
  (* Under overload, broadcasts are the first casualties: they fan out
     to every port, so the bridge sheds them as soon as the bucket runs
     low, while unicasts only drop when it is fully empty. *)
  let cost, is_bcast =
    match pkt.Packet.dst with
    | Packet.Broadcast ->
        (float_of_int (max 1 (Hashtbl.length t.handlers - 1)), true)
    | Packet.Addr _ -> (1., false)
  in
  let threshold =
    if is_bcast then 0.25 *. float_of_int t.queue_slots else 0.
  in
  if t.tokens -. cost < threshold then begin
    t.dropped <- t.dropped + 1;
    if is_bcast then t.dropped_broadcast <- t.dropped_broadcast + 1
  end
  else begin
    t.tokens <- t.tokens -. cost;
    t.forwarded <- t.forwarded + 1;
    match pkt.Packet.dst with
    | Packet.Broadcast ->
        Hashtbl.iter
          (fun port _ -> if port <> pkt.Packet.src then deliver t port pkt)
          t.handlers
    | Packet.Addr dst -> (
        match Hashtbl.find_opt t.fdb dst with
        | Some port -> deliver t port pkt
        | None ->
            (* Unknown unicast: flood. *)
            Hashtbl.iter
              (fun port _ ->
                if port <> pkt.Packet.src then deliver t port pkt)
              t.handlers)
  end

let learned t = Hashtbl.length t.fdb
let ports t = Hashtbl.length t.handlers
let forwarded t = t.forwarded
let dropped t = t.dropped
let dropped_broadcast t = t.dropped_broadcast
