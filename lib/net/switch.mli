(** A learning software bridge (the Linux bridge / Open vSwitch in
    Dom0).

    Ports deliver packets to callbacks. The bridge learns source
    addresses, floods unknown destinations and broadcasts, and has a
    finite packets-per-second capacity enforced by a token bucket —
    when offered load exceeds it, packets drop. Broadcasts (ARP) are
    dropped first, reproducing the overload behaviour in the paper's
    just-in-time instantiation experiment ("our Linux bridge is
    overloaded and starts dropping packets (mostly ARP packets)"). *)

type t

val default_latency : float
(** The default forwarding latency (30 us). Partitioned experiments use
    this as the conservative-sync lookahead, so every switch-carried
    message legally crosses partitions (see
    {!Lightvm_sim.Engine.run_partitioned}). *)

val create :
  ?capacity_pps:float -> ?latency:float -> ?queue_slots:int -> unit -> t
(** Defaults: 300k pps, {!default_latency} forwarding latency, 2048
    burst slots. *)

val attach :
  ?partition:int -> t -> port:int -> handler:(Packet.t -> unit) -> unit
(** Attach an endpoint; replaces any previous handler on that port.
    [partition] declares which partition of a
    {!Lightvm_sim.Engine.run_partitioned} owns the port: its packets
    are then delivered via {!Lightvm_sim.Engine.post}, so the handler
    runs inside that partition. Delivery timing is identical with or
    without a partition (the forwarding latency), and a partition
    declared to a plain run is ignored. *)

val detach : t -> port:int -> unit

val send : t -> Packet.t -> unit
(** Inject a packet at its source port. Delivery happens after the
    forwarding latency; drops are silent (counted). The switch itself
    (token bucket, learning table, counters) is shared state: in a
    partitioned run, call [send] only from one partition per switch —
    the cluster sends from partition 0, the toolstack's home. *)

val learned : t -> int
(** Size of the forwarding database. *)

val ports : t -> int

val forwarded : t -> int

val dropped : t -> int

val dropped_broadcast : t -> int
