module Engine = Lightvm_sim.Engine
module Image = Lightvm_guest.Image
module Switch = Lightvm_net.Switch
module Packet = Lightvm_net.Packet
module Migrate = Lightvm_toolstack.Migrate

type t = {
  nodes : Vmm.t array;
  partitioned : bool;
  racks : int;
  hosts_per_rack : int;
  sched : Scheduler.t;
  net : Switch.t;
  rx : int array;  (* control-plane packets delivered per host port *)
  mutable seq : int;  (* packet sequence numbers *)
  mutable lost : Vmm.resources;  (* footprint freed by lost guests *)
}

let host_count t = Array.length t.nodes

let host t i =
  if i < 0 || i >= Array.length t.nodes then
    invalid_arg (Printf.sprintf "Cluster.host: no host %d" i);
  t.nodes.(i)

let hosts t = Array.to_list t.nodes

let rack_of t i =
  ignore (host t i);
  i / t.hosts_per_rack

let policy t = Scheduler.policy t.sched
let switch t = t.net
let partitioned t = t.partitioned

let partition_of t i =
  ignore (host t i);
  if t.partitioned then i + 1 else 0

let vm_count t =
  Array.fold_left (fun acc h -> acc + Vmm.vm_count h) 0 t.nodes

let views t =
  Array.to_list
    (Array.mapi
       (fun i h ->
         {
           Scheduler.hv_id = i;
           hv_rack = i / t.hosts_per_rack;
           hv_vms = Vmm.vm_count h;
           hv_free_kb = (Vmm.host_info h).Vmm.hi_free_mem_kb;
         })
       t.nodes)

(* Warm one host: a full create+boot+destroy cycle through its own API.
   The first creation materialises shared store directories (/vm, the
   backend kind levels) that persist for the host's lifetime; doing it
   on every host up front makes resource snapshots comparable across
   hosts and migration-invariant (a fresh destination would otherwise
   gain those directories mid-migration and read as a phantom). *)
let warm h =
  match Vmm.vm_create h (Vmm.vm_request Image.daytime) with
  | Error e ->
      invalid_arg ("Cluster.create: warm-up failed: " ^ Vmm.error_to_string e)
  | Ok vi ->
      let domid = vi.Vmm.vi_domid in
      (match Vmm.vm_boot h ~domid with Ok () | Error _ -> ());
      ignore (Vmm.vm_delete h ~domid)

let create ~hosts:n ?(racks = 1) ?(partitioned = false) ?platform ?mode
    ?xs_profile ?costs ?pool_target ~policy () =
  if n < 1 then invalid_arg "Cluster.create: hosts must be >= 1";
  if racks < 1 || racks > n then
    invalid_arg "Cluster.create: racks must be in 1..hosts";
  if partitioned && Engine.partition_count () < n then
    invalid_arg
      "Cluster.create: partitioned cluster needs run_partitioned with at \
       least one partition per host";
  let nodes =
    Array.init n (fun i ->
        Vmm.create ~host_id:i ?platform ?mode ?xs_profile ?costs ?pool_target
          ())
  in
  let net = Switch.create () in
  let rx = Array.make n 0 in
  (* Host [i] owns switch port [i]; in a partitioned run it also owns
     partition [i + 1] (partition 0 is the toolstack/control plane where
     [create] itself runs), so deliveries to its port execute on its
     partition. The rx counters are per-port and therefore disjoint
     across partitions. *)
  Array.iteri
    (fun i _ ->
      Switch.attach
        ?partition:(if partitioned then Some (i + 1) else None)
        net ~port:i
        ~handler:(fun _ -> rx.(i) <- rx.(i) + 1))
    nodes;
  (* Warm cycles run here, sequentially in the calling process (partition
     0), strictly before any per-partition workload starts — so host
     state is never touched from two partitions in the same window. *)
  Array.iter warm nodes;
  {
    nodes;
    partitioned;
    racks;
    hosts_per_rack = (n + racks - 1) / racks;
    sched = Scheduler.make policy;
    net;
    rx;
    seq = 0;
    lost = Vmm.zero_resources;
  }

(* ------------------------------------------------------------------ *)
(* Placement *)

type placement = { pl_host : int; pl_vm : Vmm.vm_info }

type error =
  | No_capacity of string
  | Api of { host : int; err : Vmm.error }

let error_to_string = function
  | No_capacity msg -> "no capacity: " ^ msg
  | Api { host; err } ->
      Printf.sprintf "host %d: %s" host (Vmm.error_to_string err)

(* Control-plane traffic: announce an operation on the switch. Delivery
   is asynchronous (forwarding latency), so sending never blocks the
   caller and cannot perturb lifecycle timings. *)
let announce t ~src ~dst payload =
  t.seq <- t.seq + 1;
  Switch.send t.net
    (Packet.make ~src ~dst:(Packet.Addr dst) ~kind:Packet.Tcp ~payload
       ~seq:t.seq ())

let launch t req =
  let mem_kb =
    int_of_float (ceil (req.Vmm.req_image.Image.mem_mb *. 1024.))
  in
  match Scheduler.place t.sched ~hosts:(views t) ~mem_kb with
  | Error msg -> Error (No_capacity msg)
  | Ok id -> (
      (* The control plane (using the destination's own port as its
         ingress) tells host [id] to create the VM. *)
      announce t ~src:id ~dst:id "vm.create";
      match Vmm.vm_create t.nodes.(id) req with
      | Error err -> Error (Api { host = id; err })
      | Ok vi -> Ok { pl_host = id; pl_vm = vi })

let prefill_pools t image ~nics ~disks =
  Array.iter (fun h -> Vmm.prefill_pool h image ~nics ~disks) t.nodes

(* ------------------------------------------------------------------ *)
(* Resource accounting *)

let live_resources t =
  Array.fold_left
    (fun acc h -> Vmm.add_resources acc (Vmm.resources h))
    Vmm.zero_resources t.nodes

let lost_resources t = t.lost

let resources t = Vmm.add_resources (live_resources t) t.lost

let check_leak t ~before =
  match Vmm.diff_resources ~before ~after:(resources t) with
  | [] -> Ok ()
  | leaks -> Error (String.concat ", " leaks)

(* ------------------------------------------------------------------ *)
(* Migration *)

let migrate_vm t ~src ~dst ~domid =
  let s = host t src and d = host t dst in
  if src = dst then invalid_arg "Cluster.migrate_vm: src = dst";
  announce t ~src ~dst "vm.send-migration";
  let pair_before = Vmm.add_resources (Vmm.resources s) (Vmm.resources d) in
  match Vmm.vm_migrate ~src:s ~dst:d ~domid with
  | Ok (vi, stats) ->
      (* Block until the resumed guest is up again: the move is only
         done once the guest runs, and it leaves the cluster settled —
         no frontend reconnects still in flight to smear the resource
         snapshots of whatever operation comes next. *)
      ignore (Vmm.vm_boot d ~domid:vi.Vmm.vi_domid);
      let vi =
        match Vmm.vm_info d ~domid:vi.Vmm.vi_domid with
        | Ok fresh -> fresh
        | Error _ -> vi
      in
      Ok (vi, stats)
  | Error (Vmm.Vm_migration_failed _ as err) ->
      (* The guest is gone from both sides; whatever footprint vanished
         from the pair is a modeled loss, not a leak. Migration runs
         inline on this fiber, so nothing else touched the pair. *)
      let pair_after =
        Vmm.add_resources (Vmm.resources s) (Vmm.resources d)
      in
      t.lost <-
        Vmm.add_resources t.lost (Vmm.sub_resources pair_before pair_after);
      Error (Api { host = src; err })
  | Error err -> Error (Api { host = src; err })

type move_report = {
  mv_attempted : int;
  mv_moved : int;
  mv_lost : int;
  mv_stranded : int;
  mv_seconds : float;
}

let drain t ~host:src =
  ignore (host t src);
  let t0 = Engine.now () in
  let attempted = ref 0 and moved = ref 0 and lost = ref 0 in
  let stranded = ref 0 in
  let victims = Vmm.vm_list t.nodes.(src) in
  List.iter
    (fun (vi : Vmm.vm_info) ->
      let mem_kb = int_of_float (ceil (vi.Vmm.vi_memory_mb *. 1024.)) in
      let others =
        List.filter (fun v -> v.Scheduler.hv_id <> src) (views t)
      in
      match Scheduler.place t.sched ~hosts:others ~mem_kb with
      | Error _ -> incr stranded
      | Ok dst -> (
          incr attempted;
          match migrate_vm t ~src ~dst ~domid:vi.Vmm.vi_domid with
          | Ok _ -> incr moved
          | Error (Api { err = Vmm.Vm_migration_failed _; _ }) -> incr lost
          | Error _ -> incr stranded))
    victims;
  {
    mv_attempted = !attempted;
    mv_moved = !moved;
    mv_lost = !lost;
    mv_stranded = !stranded;
    mv_seconds = Engine.now () -. t0;
  }

let rebalance t ?max_moves () =
  let t0 = Engine.now () in
  let bound = match max_moves with Some m -> m | None -> 4 * vm_count t in
  let attempted = ref 0 and moved = ref 0 and lost = ref 0 in
  let stranded = ref 0 in
  let continue = ref true in
  while !continue && !attempted < bound do
    let counts = Array.map Vmm.vm_count t.nodes in
    let hi = ref 0 and lo = ref 0 in
    Array.iteri
      (fun i c ->
        if c > counts.(!hi) then hi := i;
        if c < counts.(!lo) then lo := i)
      counts;
    if counts.(!hi) - counts.(!lo) <= 1 then continue := false
    else
      match Vmm.vm_list t.nodes.(!hi) with
      | [] -> continue := false
      | vi :: _ -> (
          (* vm_list is domid-ascending: the oldest VM moves first. *)
          incr attempted;
          match migrate_vm t ~src:!hi ~dst:!lo ~domid:vi.Vmm.vi_domid with
          | Ok _ -> incr moved
          | Error (Api { err = Vmm.Vm_migration_failed _; _ }) -> incr lost
          | Error _ ->
              incr stranded;
              continue := false)
  done;
  {
    mv_attempted = !attempted;
    mv_moved = !moved;
    mv_lost = !lost;
    mv_stranded = !stranded;
    mv_seconds = Engine.now () -. t0;
  }
