(** The per-host VM lifecycle API.

    One [Vmm.t] is the management endpoint of one simulated host —
    hypervisor, XenStore daemon, Dom0 backends and toolstack — exposed
    through a cloud-hypervisor-shaped surface: [ping], [vm_create],
    [vm_boot], [vm_pause]/[vm_resume], [vm_delete], [vm_info],
    [vm_counters], [host_info], plus [vm_snapshot]/[vm_restore] and
    [vm_migrate] (the [vm.send-migration] analogue). Every operation
    takes and returns typed records and reports failure as a structured
    {!type-error} instead of letting toolstack exceptions escape.

    This module is the {e only} public entry point for VM lifecycle
    operations: experiments, the CLI, the bench harness and the cluster
    control plane all go through it ([Lightvm.Host] survives as a thin
    deprecated shim on top). The API layer itself charges no simulated
    time — costs are exactly the underlying toolstack's, so lifecycle
    timings are bit-identical to direct toolstack calls. *)

type t
(** A host's management endpoint. *)

val api_version : string
(** Reported by {!ping}, in the style of cloud-hypervisor's
    [VmmPingResponse]. *)

val create :
  ?host_id:int ->
  ?platform:Lightvm_hv.Params.platform ->
  ?mode:Lightvm_toolstack.Mode.t ->
  ?xs_profile:Lightvm_xenstore.Xs_costs.profile ->
  ?costs:Lightvm_toolstack.Costs.t ->
  ?pool_target:int ->
  unit ->
  t
(** Boot a host inside a running simulation and return its endpoint.
    Defaults: host 0, the paper's 4-core Xeon, full LightVM mode (chaos
    + noxs + split toolstack, xendevd, min-memory patch), oxenstored
    cost profile, default toolstack costs. [host_id] only labels the
    endpoint (cluster position); it does not affect behaviour. *)

(** {1 Requests, responses and errors} *)

(** Lifecycle state of a VM as the API reports it. [Created] is a VM
    whose creation pipeline completed but whose guest has not been
    awaited via {!vm_boot} yet (its boot process is already running in
    the background, as the pipeline spawns it). *)
type vm_state = Created | Running | Paused

val vm_state_name : vm_state -> string

(** Structured failures. Lower-level toolstack exceptions
    ([Create_failed], [Migration_failed]) are caught at the API
    boundary and normalised to these; no lifecycle call raises. *)
type error =
  | Vm_not_found of int  (** no VM with that domid on this host *)
  | Vm_bad_state of {
      domid : int;
      state : vm_state;
      op : string;  (** the operation that was attempted *)
    }  (** e.g. booting a paused VM *)
  | Vm_create_failed of string
      (** the creation pipeline failed (out of memory, hotplug timeout
          or an injected fault); the partial domain was already rolled
          back, nothing to clean up *)
  | Vm_migration_failed of string
      (** the guest was lost mid-migration: the source domain is
          destroyed at suspend time, so a stream corrupted past every
          retransfer attempt (or a destination that cannot host the
          guest) loses the VM — the [xl migrate] failure mode *)

val error_to_string : error -> string

type vm_create_request = {
  req_name : string option;
      (** VM name; default ["<image>-<k>"] from the host's counter *)
  req_image : Lightvm_guest.Image.t;
  req_nics : int;
  req_disks : int;
  req_config_text : string option;
      (** raw xl-style config text, parsed by the pipeline's config
          phase (overrides nothing else; mirrors passing a file to
          [chaos create]) *)
}

val vm_request :
  ?name:string ->
  ?nics:int ->
  ?disks:int ->
  ?config_text:string ->
  Lightvm_guest.Image.t ->
  vm_create_request
(** Build a request. Defaults: generated name, 1 nic, 0 disks. *)

type vm_info = {
  vi_domid : int;
  vi_name : string;
  vi_state : vm_state;
  vi_image : string;  (** image name *)
  vi_memory_mb : float;  (** configured guest memory *)
  vi_vcpus : int;
  vi_nics : int;
  vi_disks : int;
}

type vm_counters = {
  vc_create_s : float;
      (** toolstack time for the on-path creation phases *)
  vc_boot_s : float;  (** guest boot time; [0.] until {!vm_boot} *)
  vc_breakdown : (string * float) list;
      (** per-category creation-time attribution (the paper's Figure 5
          categories), as [(category, seconds)] in canonical order *)
}

type ping = {
  pg_version : string;
  pg_host_id : int;
  pg_vm_count : int;
}

type host_info = {
  hi_host_id : int;
  hi_platform : string;
  hi_mode : string;
  hi_vm_count : int;
  hi_shell_count : int;
      (** pre-created split-toolstack shells (paused domains) *)
  hi_free_mem_kb : int;
  hi_total_mem_kb : int;
  hi_guest_mem_kb : int;
      (** memory held by guests, excluding Dom0/Xen *)
}

(** {1 The lifecycle API} *)

val ping : t -> ping
(** Liveness probe; free (charges no simulated time). *)

val host_info : t -> host_info

val vm_create : t -> vm_create_request -> (vm_info, error) result
(** Run the full creation pipeline for the request (in split mode,
    taking a pre-created shell from the pool). On [Ok] the VM is
    registered in state [Created] and its guest boot process is
    running; on [Error (Vm_create_failed _)] the partial domain was
    already rolled back. *)

val vm_boot : t -> domid:int -> (unit, error) result
(** Block until the guest has finished booting and mark it [Running].
    Idempotent once booted; [Error (Vm_bad_state _)] on a paused VM. *)

val vm_pause : t -> domid:int -> (unit, error) result
(** Pause the domain (one hypercall, the Section 2 freeze/thaw
    requirement). *)

val vm_resume : t -> domid:int -> (unit, error) result

val vm_delete : t -> domid:int -> (unit, error) result
(** Tear down devices, registry state and the domain. Works from any
    state (running, paused or never-awaited). *)

val vm_info : t -> domid:int -> (vm_info, error) result

val vm_counters : t -> domid:int -> (vm_counters, error) result

val vm_list : t -> vm_info list
(** Live VMs by ascending domid. *)

val vm_count : t -> int

(** {1 Snapshot, restore, migration} *)

val vm_snapshot :
  t -> domid:int -> (Lightvm_toolstack.Checkpoint.saved, error) result
(** Suspend the guest, dump its memory to the ramdisk and destroy the
    domain (the [vm.snapshot] + delete flow): on [Ok] the VM is gone
    from this host and the returned handle restores it. *)

val vm_restore :
  t -> Lightvm_toolstack.Checkpoint.saved -> (vm_info, error) result
(** Rebuild the domain through the creation pipeline and reconnect the
    quiesced guest. The restored VM is registered in state [Created];
    use {!vm_boot} to await frontend reconnection. *)

val vm_migrate :
  src:t -> dst:t -> domid:int -> (vm_info * Lightvm_toolstack.Migrate.stats, error) result
(** Live(ish) migration between two endpoints, built on
    [Lightvm_toolstack.Migrate]: ship the config, suspend at the
    source, stream memory, resume at the destination. On [Ok] the VM is
    registered on [dst] (state [Created]; {!vm_boot} awaits resume) and
    gone from [src]. On [Error (Vm_migration_failed _)] the guest is
    lost: already destroyed at the source, never resumed at the
    destination (the caller can aggregate the loss —
    see [Cluster.check_leak]). *)

(** {1 Host plumbing}

    Escape hatches for the layers below and around the API: the
    cluster control plane, experiments that instrument hypervisor
    internals, and the resource-leak invariant checks. *)

val xen : t -> Lightvm_hv.Xen.t

val toolstack : t -> Lightvm_toolstack.Toolstack.t

val mode : t -> Lightvm_toolstack.Mode.t

val platform : t -> Lightvm_hv.Params.platform

val host_id : t -> int

val guest_mem_kb : t -> int
(** Memory held by guests (excluding Dom0/Xen), for the Fig 14
    accounting. *)

val prefill_pool :
  t -> Lightvm_guest.Image.t -> nics:int -> disks:int -> unit
(** Warm the split-toolstack shell pool for this image's flavor up to
    the pool target (no-op unless the mode is split). *)

val pool_size : t -> Lightvm_guest.Image.t -> nics:int -> disks:int -> int
(** Pre-created shells currently queued for this image's flavor. *)

val pool_target :
  t -> Lightvm_guest.Image.t -> nics:int -> disks:int -> int
(** The flavor pool's current low-water mark ([0] unless split). *)

val set_pool_target :
  t -> Lightvm_guest.Image.t -> nics:int -> disks:int -> int -> unit
(** Autoscaler hook: move the flavor pool's low-water mark. Lowering it
    immediately retires surplus shells (their domains, frames and store
    state are released exactly — see {!Lightvm_toolstack.Toolstack.
    set_pool_target}); raising it takes effect on the next take or
    {!prefill_pool}.
    @raise Invalid_argument on a negative target. *)

val pool_stats :
  t -> Lightvm_guest.Image.t -> nics:int -> disks:int -> int * int
(** [(hits, takes)] for this image's flavor pool: shell requests served
    from a pre-created shell vs total. The serverless experiments
    report [hits / takes] as the warm-pool hit rate. *)

(** {1 Resource accounting}

    A snapshot of every countable resource a VM creation acquires:
    guest domains, allocated frames, event-channel endpoints,
    grant-table entries, noxs control pages, XenStore nodes and
    watches. Two snapshots are comparable with [( = )]; they also form
    a commutative group under {!add_resources}/{!sub_resources}, which
    is what lets the cluster layer aggregate hosts and account for
    guests lost in failed migrations. *)

type resources = {
  r_domains : int;
  r_mem_kb : int;
  r_evtchns : int;
  r_grants : int;
  r_ctrl_pages : int;
  r_xs_nodes : int;
  r_xs_watches : int;
}

val resources : t -> resources
(** The host's current resource counts. Deterministic: a pure function
    of the simulation state, usable inside digest-pinned experiments. *)

val zero_resources : resources

val add_resources : resources -> resources -> resources

val sub_resources : resources -> resources -> resources

val diff_resources : before:resources -> after:resources -> string list
(** Human-readable list of counters that changed, empty when none did. *)

val check_leak : t -> before:resources -> (unit, string) result
(** Post-failure invariant check (see DESIGN.md "Failure model"): [Ok]
    when the host's resource counts match [before] exactly, [Error s]
    naming every leaked counter otherwise. Call with a snapshot taken
    before a creation attempt to assert that a failed create released
    everything it had acquired. *)
