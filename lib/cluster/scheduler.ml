type policy = Binpack | Spread | Pool_everywhere

let policies = [ Binpack; Spread; Pool_everywhere ]

let policy_name = function
  | Binpack -> "binpack"
  | Spread -> "spread"
  | Pool_everywhere -> "pool-everywhere"

let parse_policy s =
  match List.find_opt (fun p -> policy_name p = s) policies with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown policy %S (expected %s)" s
           (String.concat ", " (List.map policy_name policies)))

type host_view = {
  hv_id : int;
  hv_rack : int;
  hv_vms : int;
  hv_free_kb : int;
}

type t = { pol : policy; mutable cursor : int }

let make pol = { pol; cursor = 0 }

let policy t = t.pol

(* Pick the view minimising [key] (hosts can arrive in any order, so
   the id is always the last tie-breaker). *)
let min_by key feasible =
  List.fold_left
    (fun best h ->
      match best with
      | None -> Some h
      | Some b -> if compare (key h) (key b) < 0 then Some h else best)
    None feasible

let place t ~hosts ~mem_kb =
  let feasible = List.filter (fun h -> h.hv_free_kb >= mem_kb) hosts in
  match feasible with
  | [] ->
      Error
        (Printf.sprintf "no host with %d kB free (cluster of %d)" mem_kb
           (List.length hosts))
  | _ -> (
      match t.pol with
      | Binpack ->
          (* Tightest fit: least free memory, then lowest id. *)
          let chosen =
            min_by (fun h -> (h.hv_free_kb, h.hv_id)) feasible
          in
          Ok (Option.get chosen).hv_id
      | Spread ->
          (* Least-loaded rack first (failure-domain spreading), then
             least-loaded host, then most free memory, then id. *)
          let rack_vms rack =
            List.fold_left
              (fun acc h -> if h.hv_rack = rack then acc + h.hv_vms else acc)
              0 hosts
          in
          let chosen =
            min_by
              (fun h -> (rack_vms h.hv_rack, h.hv_vms, -h.hv_free_kb, h.hv_id))
              feasible
          in
          Ok (Option.get chosen).hv_id
      | Pool_everywhere ->
          (* Round-robin over host ids, skipping infeasible hosts: the
             cursor walks the id space so consecutive VMs land on
             consecutive warm pools. *)
          let sorted =
            List.sort (fun a b -> compare a.hv_id b.hv_id) feasible
          in
          let chosen =
            match List.find_opt (fun h -> h.hv_id >= t.cursor) sorted with
            | Some h -> h
            | None -> List.hd sorted
          in
          t.cursor <- chosen.hv_id + 1;
          Ok chosen.hv_id)
