module Engine = Lightvm_sim.Engine
module Params = Lightvm_hv.Params
module Xen = Lightvm_hv.Xen
module Image = Lightvm_guest.Image
module Guest = Lightvm_guest.Guest
module Mode = Lightvm_toolstack.Mode
module Vmconfig = Lightvm_toolstack.Vmconfig
module Toolstack = Lightvm_toolstack.Toolstack
module Create = Lightvm_toolstack.Create
module Checkpoint = Lightvm_toolstack.Checkpoint
module Migrate = Lightvm_toolstack.Migrate

let api_version = "lightvm-vmm/0.1"

type vm_state = Created | Running | Paused

let vm_state_name = function
  | Created -> "created"
  | Running -> "running"
  | Paused -> "paused"

type error =
  | Vm_not_found of int
  | Vm_bad_state of { domid : int; state : vm_state; op : string }
  | Vm_create_failed of string
  | Vm_migration_failed of string

let error_to_string = function
  | Vm_not_found domid -> Printf.sprintf "no such VM: domid %d" domid
  | Vm_bad_state { domid; state; op } ->
      Printf.sprintf "%s: domid %d is %s" op domid (vm_state_name state)
  | Vm_create_failed msg -> "create failed: " ^ msg
  | Vm_migration_failed msg -> "migration failed: " ^ msg

type vm_create_request = {
  req_name : string option;
  req_image : Image.t;
  req_nics : int;
  req_disks : int;
  req_config_text : string option;
}

let vm_request ?name ?(nics = 1) ?(disks = 0) ?config_text image =
  {
    req_name = name;
    req_image = image;
    req_nics = nics;
    req_disks = disks;
    req_config_text = config_text;
  }

type vm_info = {
  vi_domid : int;
  vi_name : string;
  vi_state : vm_state;
  vi_image : string;
  vi_memory_mb : float;
  vi_vcpus : int;
  vi_nics : int;
  vi_disks : int;
}

type vm_counters = {
  vc_create_s : float;
  vc_boot_s : float;
  vc_breakdown : (string * float) list;
}

type ping = { pg_version : string; pg_host_id : int; pg_vm_count : int }

type host_info = {
  hi_host_id : int;
  hi_platform : string;
  hi_mode : string;
  hi_vm_count : int;
  hi_shell_count : int;
  hi_free_mem_kb : int;
  hi_total_mem_kb : int;
  hi_guest_mem_kb : int;
}

(* Per-VM API-side bookkeeping. [created] is the pipeline handle;
   [awaited] distinguishes a VM whose guest has been waited for (so a
   resume returns it to [Running] rather than [Created]). *)
type vm_record = {
  created : Create.created;
  t_created : float;  (* Engine.now at registration, for boot_s *)
  mutable state : vm_state;
  mutable awaited : bool;
  mutable boot_s : float;
}

type t = {
  host_id : int;
  xen : Xen.t;
  ts : Toolstack.t;
  mutable counter : int;
  vms : (int, vm_record) Hashtbl.t;
}

let create ?(host_id = 0) ?(platform = Params.xeon_e5_1630)
    ?(mode = Mode.lightvm) ?xs_profile ?costs ?pool_target () =
  let xen = Xen.boot ~platform () in
  let ts = Toolstack.make ~xen ~mode ?xs_profile ?costs ?pool_target () in
  { host_id; xen; ts; counter = 0; vms = Hashtbl.create 64 }

let xen t = t.xen
let toolstack t = t.ts
let mode t = Toolstack.mode t.ts
let platform t = Xen.platform t.xen
let host_id t = t.host_id
let vm_count t = Toolstack.vm_count t.ts

let fresh_name t image =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s-%d" image.Image.name t.counter

let config_for t ?name ?(nics = 1) ?(disks = 0) image =
  let name = match name with Some n -> n | None -> fresh_name t image in
  Vmconfig.for_image ~nics ~disks ~name image

let override_for image =
  (* Images built on the fly (inflated or Tinyx-custom) are not in the
     static registry; hand them to the pipeline directly. Physical
     equality suffices — registry images are shared values — and avoids
     a deep structural compare on every single VM creation. *)
  match Image.find image.Image.name with
  | Some registered when registered == image -> None
  | _ -> Some image

let adopt_record (created : Create.created) =
  (* A VM registered behind the API's back (restore or an incoming
     migration through the toolstack plumbing): synthesise its record
     from the guest's own state so every endpoint still works on it. *)
  let booted = Guest.booted created.Create.guest in
  {
    created;
    t_created = Engine.now ();
    state = (if booted then Running else Created);
    awaited = booted;
    boot_s = (if booted then Guest.boot_time created.Create.guest else 0.);
  }

(* The toolstack registry is the source of truth for which domains are
   alive; the API table only carries lifecycle state on top of it. A
   domid the toolstack no longer knows is dropped, an unknown one is
   adopted. *)
let lookup t ~domid =
  match Toolstack.vm t.ts ~domid with
  | None ->
      Hashtbl.remove t.vms domid;
      Error (Vm_not_found domid)
  | Some created -> (
      match Hashtbl.find_opt t.vms domid with
      | Some r when r.created == created -> Ok r
      | _ ->
          let r = adopt_record created in
          Hashtbl.replace t.vms domid r;
          Ok r)

let info_of (r : vm_record) =
  let cfg = r.created.Create.config in
  {
    vi_domid = r.created.Create.domid;
    vi_name = r.created.Create.vm_name;
    vi_state = r.state;
    vi_image = cfg.Vmconfig.kernel;
    vi_memory_mb = cfg.Vmconfig.memory_mb;
    vi_vcpus = cfg.Vmconfig.vcpus;
    vi_nics = List.length cfg.Vmconfig.vifs;
    vi_disks = List.length cfg.Vmconfig.disks;
  }

let register t (created : Create.created) =
  let r =
    {
      created;
      t_created = Engine.now ();
      state = Created;
      awaited = false;
      boot_s = 0.;
    }
  in
  Hashtbl.replace t.vms created.Create.domid r;
  r

(* ------------------------------------------------------------------ *)
(* The lifecycle API *)

let ping t =
  { pg_version = api_version; pg_host_id = t.host_id;
    pg_vm_count = Toolstack.vm_count t.ts }

let guest_mem_kb t =
  List.fold_left
    (fun acc dom ->
      let domid = Lightvm_hv.Domain.domid dom in
      if domid = 0 then acc else acc + Xen.domain_mem_kb t.xen ~domid)
    0
    (Xen.domains t.xen)

let host_info t =
  {
    hi_host_id = t.host_id;
    hi_platform = (Xen.platform t.xen).Params.name;
    hi_mode = Mode.name (Toolstack.mode t.ts);
    hi_vm_count = Toolstack.vm_count t.ts;
    hi_shell_count = Toolstack.shell_count t.ts;
    hi_free_mem_kb = Xen.free_mem_kb t.xen;
    hi_total_mem_kb = Xen.total_mem_kb t.xen;
    hi_guest_mem_kb = guest_mem_kb t;
  }

let vm_create t req =
  let cfg =
    config_for t ?name:req.req_name ~nics:req.req_nics ~disks:req.req_disks
      req.req_image
  in
  match
    Toolstack.create_vm t.ts ?config_text:req.req_config_text
      ?image_override:(override_for req.req_image) cfg
  with
  | Error msg -> Error (Vm_create_failed msg)
  | Ok created -> Ok (info_of (register t created))

let vm_boot t ~domid =
  match lookup t ~domid with
  | Error err -> Error err
  | Ok r -> (
      match r.state with
      | Paused -> Error (Vm_bad_state { domid; state = Paused; op = "vm.boot" })
      | Running -> Ok ()
      | Created ->
          Guest.wait_ready r.created.Create.guest;
          if not r.awaited then begin
            (* [t_created] is stamped when the creation call returns, so
               this is exactly the guest-boot wait. *)
            r.boot_s <- Engine.now () -. r.t_created;
            r.awaited <- true
          end;
          r.state <- Running;
          Ok ())

let hv_err ~domid ~op = function
  | Xen.ENOENT -> Vm_not_found domid
  | Xen.ENOMEM -> Vm_create_failed (op ^ ": out of memory")
  | Xen.EINVAL -> Vm_create_failed (op ^ ": invalid domain state")

let vm_pause t ~domid =
  match lookup t ~domid with
  | Error err -> Error err
  | Ok r -> (
      match r.state with
      | Paused ->
          Error (Vm_bad_state { domid; state = Paused; op = "vm.pause" })
      | Created | Running -> (
          match Xen.pause t.xen ~domid with
          | Ok () ->
              r.state <- Paused;
              Ok ()
          | Error e -> Error (hv_err ~domid ~op:"vm.pause" e)))

let vm_resume t ~domid =
  match lookup t ~domid with
  | Error err -> Error err
  | Ok r -> (
      match r.state with
      | (Created | Running) as state ->
          Error (Vm_bad_state { domid; state; op = "vm.resume" })
      | Paused -> (
          match Xen.unpause t.xen ~domid with
          | Ok () ->
              r.state <- (if r.awaited then Running else Created);
              Ok ()
          | Error e -> Error (hv_err ~domid ~op:"vm.resume" e)))

let vm_delete t ~domid =
  match lookup t ~domid with
  | Error err -> Error err
  | Ok r ->
      (* Destroy works from any state — a paused domain is torn down
         exactly like a running one (that is how pool shells die). *)
      Toolstack.destroy_vm t.ts r.created;
      Hashtbl.remove t.vms domid;
      Ok ()

let vm_info t ~domid = Result.map info_of (lookup t ~domid)

let vm_counters t ~domid =
  Result.map
    (fun r ->
      {
        vc_create_s = r.created.Create.create_time;
        vc_boot_s = r.boot_s;
        vc_breakdown =
          List.map
            (fun c ->
              ( Create.category_name c,
                Create.breakdown_get r.created.Create.breakdown c ))
            Create.categories;
      })
    (lookup t ~domid)

let vm_list t =
  List.filter_map
    (fun (c : Create.created) ->
      match lookup t ~domid:c.Create.domid with
      | Ok r -> Some (info_of r)
      | Error _ -> None)
    (Toolstack.vms t.ts)

(* ------------------------------------------------------------------ *)
(* Snapshot, restore, migration *)

let vm_snapshot t ~domid =
  match lookup t ~domid with
  | Error e -> Error e
  | Ok r ->
      let saved = Checkpoint.save t.ts r.created in
      Hashtbl.remove t.vms domid;
      Ok saved

let vm_restore t saved =
  match Checkpoint.restore t.ts saved with
  | created -> Ok (info_of (register t created))
  | exception Create.Create_failed msg -> Error (Vm_create_failed msg)

let vm_migrate ~src ~dst ~domid =
  match lookup src ~domid with
  | Error e -> Error e
  | Ok r -> (
      match Migrate.migrate ~src:src.ts ~dst:dst.ts r.created with
      | resumed, stats ->
          Hashtbl.remove src.vms domid;
          Ok (info_of (register dst resumed), stats)
      | exception Migrate.Migration_failed msg ->
          (* The source domain was destroyed at suspend; drop it. *)
          Hashtbl.remove src.vms domid;
          Error (Vm_migration_failed msg)
      | exception Create.Create_failed msg ->
          (* Destination could not resume the guest. The source was
             already destroyed at suspend here too: same loss mode. *)
          Hashtbl.remove src.vms domid;
          Error (Vm_migration_failed msg))

let prefill_pool t image ~nics ~disks =
  Toolstack.prefill_pool t.ts
    (config_for t ~name:"pool-template" ~nics ~disks image)

let pool_size t image ~nics ~disks =
  Toolstack.pool_size t.ts
    (config_for t ~name:"pool-template" ~nics ~disks image)

let pool_target t image ~nics ~disks =
  Toolstack.pool_target t.ts
    (config_for t ~name:"pool-template" ~nics ~disks image)

let set_pool_target t image ~nics ~disks target =
  Toolstack.set_pool_target t.ts
    (config_for t ~name:"pool-template" ~nics ~disks image)
    target

let pool_stats t image ~nics ~disks =
  Toolstack.pool_stats t.ts
    (config_for t ~name:"pool-template" ~nics ~disks image)

(* ------------------------------------------------------------------ *)
(* Resource accounting *)

type resources = {
  r_domains : int;  (* guest domains, shells included *)
  r_mem_kb : int;  (* frames allocated, all owners *)
  r_evtchns : int;  (* open event-channel endpoints *)
  r_grants : int;  (* outstanding grant-table entries *)
  r_ctrl_pages : int;  (* registered noxs control pages *)
  r_xs_nodes : int;  (* XenStore nodes *)
  r_xs_watches : int;  (* registered XenStore watches *)
}

let zero_resources =
  {
    r_domains = 0;
    r_mem_kb = 0;
    r_evtchns = 0;
    r_grants = 0;
    r_ctrl_pages = 0;
    r_xs_nodes = 0;
    r_xs_watches = 0;
  }

let add_resources a b =
  {
    r_domains = a.r_domains + b.r_domains;
    r_mem_kb = a.r_mem_kb + b.r_mem_kb;
    r_evtchns = a.r_evtchns + b.r_evtchns;
    r_grants = a.r_grants + b.r_grants;
    r_ctrl_pages = a.r_ctrl_pages + b.r_ctrl_pages;
    r_xs_nodes = a.r_xs_nodes + b.r_xs_nodes;
    r_xs_watches = a.r_xs_watches + b.r_xs_watches;
  }

let sub_resources a b =
  {
    r_domains = a.r_domains - b.r_domains;
    r_mem_kb = a.r_mem_kb - b.r_mem_kb;
    r_evtchns = a.r_evtchns - b.r_evtchns;
    r_grants = a.r_grants - b.r_grants;
    r_ctrl_pages = a.r_ctrl_pages - b.r_ctrl_pages;
    r_xs_nodes = a.r_xs_nodes - b.r_xs_nodes;
    r_xs_watches = a.r_xs_watches - b.r_xs_watches;
  }

let resources t =
  let env = Toolstack.env t.ts in
  {
    r_domains = Xen.guest_count t.xen;
    r_mem_kb = Xen.used_mem_kb t.xen;
    r_evtchns = Lightvm_hv.Evtchn.count (Xen.evtchn t.xen);
    r_grants = Lightvm_hv.Gnttab.count (Xen.gnttab t.xen);
    r_ctrl_pages = Lightvm_guest.Ctrl.count env.Create.ctrl;
    r_xs_nodes =
      Lightvm_xenstore.Xs_store.node_count
        (Lightvm_xenstore.Xs_server.store env.Create.xs_server);
    r_xs_watches = Lightvm_xenstore.Xs_server.watch_count env.Create.xs_server;
  }

let diff_resources ~before ~after =
  let d name get acc =
    let b = get before and a = get after in
    if a = b then acc
    else Printf.sprintf "%s %+d (%d -> %d)" name (a - b) b a :: acc
  in
  List.rev
    ([]
    |> d "domains" (fun r -> r.r_domains)
    |> d "mem_kb" (fun r -> r.r_mem_kb)
    |> d "evtchns" (fun r -> r.r_evtchns)
    |> d "grants" (fun r -> r.r_grants)
    |> d "ctrl_pages" (fun r -> r.r_ctrl_pages)
    |> d "xs_nodes" (fun r -> r.r_xs_nodes)
    |> d "xs_watches" (fun r -> r.r_xs_watches))

let check_leak t ~before =
  match diff_resources ~before ~after:(resources t) with
  | [] -> Ok ()
  | leaks -> Error (String.concat ", " leaks)
