(** Placement policies for the cluster control plane.

    A scheduler picks the host for each new VM from a snapshot of
    per-host state ({!host_view}) supplied by the control plane.
    Everything is deterministic: the decision is a pure function of the
    views (plus, for the round-robin policy, an explicit cursor carried
    in {!type-t}), so equal request sequences place identically on every
    run — the property the cluster experiments' digests pin. *)

(** A policy name, as selected on the CLI. *)
type policy =
  | Binpack
      (** tightest feasible fit: the host with the least free memory
          that still fits the VM (lowest id on ties) — maximises
          density, fills host 0 first on an empty cluster *)
  | Spread
      (** failure-domain-aware balancing: the host in the least-loaded
          rack, least-loaded (then most-free, then lowest-id) within
          it — never co-locates two VMs in one rack while an empty
          rack still has capacity *)
  | Pool_everywhere
      (** the paper's split-toolstack deployment: shell pools are
          prefilled on {e every} host and VMs round-robin across them,
          so each creation finds a warm shell locally *)

val policies : policy list

val policy_name : policy -> string

val parse_policy : string -> (policy, string) result
(** Inverse of {!policy_name} for CLI parsing; the error lists the
    valid names. *)

(** What the scheduler sees of one host. *)
type host_view = {
  hv_id : int;  (** host index in the cluster *)
  hv_rack : int;  (** failure domain *)
  hv_vms : int;  (** VMs currently placed there *)
  hv_free_kb : int;  (** free host memory *)
}

type t
(** A scheduler instance: the policy plus its mutable cursor state
    (only {!Pool_everywhere} has any). *)

val make : policy -> t

val policy : t -> policy

val place : t -> hosts:host_view list -> mem_kb:int -> (int, string) result
(** Pick the host for a VM needing [mem_kb] of free memory. [Ok id] is
    the chosen host's [hv_id]; [Error _] means no host has that much
    memory free. Hosts may be passed in any order — ties are broken on
    [hv_id], never on list position. *)
