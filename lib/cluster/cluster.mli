(** The replicated-host control plane.

    A cluster is N identical hosts — each a full {!Vmm} endpoint —
    wired to a modeled top-of-rack switch, plus a {!Scheduler} that
    decides placement and a migration engine built on the toolstack's
    live migration. Hosts are grouped into racks (failure domains) that
    the spread policy respects.

    {b Determinism.} Cluster construction, placement, migration and
    rebalancing are all pure functions of the constructor arguments and
    the call sequence: host iteration is always in id order, migration
    victims are chosen by lowest domid, and the only randomness in the
    system stays inside the caller's explicitly-seeded fault injector.
    Equal seeds therefore give bit-identical cluster timelines for any
    [--jobs] (the cluster experiments pin this with digests).

    {b Loss accounting.} A migration that fails past every retransfer
    attempt loses the guest (see {!Vmm.vm_migrate}); that is a modeled
    outcome, not a resource leak. The cluster keeps a running total of
    the footprint freed by lost guests and {!resources} reports
    {e accounted} resources — live plus lost — so {!check_leak} stays
    an exact equality even across failed migrations. *)

type t

val create :
  hosts:int ->
  ?racks:int ->
  ?partitioned:bool ->
  ?platform:Lightvm_hv.Params.platform ->
  ?mode:Lightvm_toolstack.Mode.t ->
  ?xs_profile:Lightvm_xenstore.Xs_costs.profile ->
  ?costs:Lightvm_toolstack.Costs.t ->
  ?pool_target:int ->
  policy:Scheduler.policy ->
  unit ->
  t
(** Boot [hosts] identical hosts (defaults as {!Vmm.create}) inside a
    running simulation, split into [racks] contiguous failure domains
    (default 1), and attach each to the switch on the port matching its
    id. Every host is warmed with one create+destroy cycle so that the
    shared store directories the first creation materialises exist
    everywhere — without this, resource snapshots would differ between
    a host that has hosted a VM and one that has not, and migration
    would look like a phantom on a fresh destination (see DESIGN.md
    "Failure model").

    [partitioned] (default [false]) declares host [i] the owner of
    partition [i + 1] of the enclosing {!Lightvm_sim.Engine.run_partitioned}
    (partition 0 is the control plane, where [create] runs): the host's
    switch port then delivers into its partition, and callers dispatch
    per-host work there with {!Lightvm_sim.Engine.spawn_in} on
    {!partition_of}. Timelines are bit-identical to an unpartitioned
    cluster as long as per-host work touches only that host's state and
    cross-host effects travel via the switch or completion posts (see
    DESIGN.md "Parallel simulation").

    @raise Invalid_argument when [hosts < 1], [racks] is not in
    [1..hosts], or [partitioned] is set outside a [run_partitioned]
    with at least [hosts] partitions. *)

val host_count : t -> int

val host : t -> int -> Vmm.t
(** The lifecycle endpoint of host [i].
    @raise Invalid_argument when [i] is out of range. *)

val hosts : t -> Vmm.t list
(** All endpoints, by ascending host id. *)

val rack_of : t -> int -> int
(** The failure domain of host [i] (contiguous blocks of
    [hosts / racks] rounded up). *)

val policy : t -> Scheduler.policy

val switch : t -> Lightvm_net.Switch.t
(** The modeled top-of-rack switch (control-plane traffic statistics
    live here). Shared state: in a partitioned run, send only from
    partition 0 (see {!Lightvm_net.Switch.send}). *)

val partitioned : t -> bool

val partition_of : t -> int -> int
(** The simulation partition host [i] runs in: [i + 1] for a
    partitioned cluster, [0] (everything shares the global partition)
    otherwise.
    @raise Invalid_argument when [i] is out of range. *)

val vm_count : t -> int
(** Live VMs across all hosts. *)

val views : t -> Scheduler.host_view list
(** The scheduler's current picture of the cluster, by host id. *)

(** {1 Placement} *)

type placement = {
  pl_host : int;  (** chosen host id *)
  pl_vm : Vmm.vm_info;
}

type error =
  | No_capacity of string  (** the scheduler found no feasible host *)
  | Api of { host : int; err : Vmm.error }
      (** a host-level API call failed *)

val error_to_string : error -> string

val announce : t -> src:int -> dst:int -> string -> unit
(** Send one control-plane packet on the switch (source and destination
    are host ports). Delivery is asynchronous after the forwarding
    latency, so announcing never blocks the caller or perturbs
    lifecycle timings. {!launch} announces automatically; callers that
    plan placements themselves (the partitioned experiment) use this to
    keep the control-plane traffic model identical. Call from
    partition 0 only in a partitioned run. *)

val launch : t -> Vmm.vm_create_request -> (placement, error) result
(** Place the request with the scheduler, then create the VM through
    the chosen host's {!Vmm} endpoint (announcing the placement on the
    switch). The guest's boot is in flight on return; await it with
    [Vmm.vm_boot (Cluster.host t pl.pl_host) ~domid:pl.pl_vm.vi_domid]. *)

val prefill_pools : t -> Lightvm_guest.Image.t -> nics:int -> disks:int -> unit
(** Warm the split-toolstack shell pool on {e every} host (the
    [Pool_everywhere] deployment; no-op in non-split modes). *)

(** {1 Migration, drain, rebalance} *)

val migrate_vm :
  t ->
  src:int ->
  dst:int ->
  domid:int ->
  (Vmm.vm_info * Lightvm_toolstack.Migrate.stats, error) result
(** Live-migrate one VM between two hosts over the modeled network and
    block until the resumed guest is running again on [dst] (its
    frontends reconnected), so the cluster is settled on return and the
    returned [vm_info] reflects the running guest. On
    [Error (Api { err = Vm_migration_failed _; _ })] the guest is lost;
    its freed footprint is added to {!lost_resources} so the loss is
    accounted, not leaked.
    @raise Invalid_argument when [src] or [dst] is out of range or
    [src = dst]. *)

(** Outcome of a multi-VM operation ({!drain} or {!rebalance}). *)
type move_report = {
  mv_attempted : int;  (** migrations tried *)
  mv_moved : int;  (** completed *)
  mv_lost : int;  (** guests lost to terminally-corrupted streams *)
  mv_stranded : int;  (** left in place (no feasible destination) *)
  mv_seconds : float;  (** simulated time the whole operation took *)
}

val drain : t -> host:int -> move_report
(** Evacuate every VM from [host], destinations chosen by the
    scheduler among the other hosts (lowest domid first, so the order
    is deterministic). The host itself stays up — refill it by
    launching or rebalancing. *)

val rebalance : t -> ?max_moves:int -> unit -> move_report
(** Move VMs one at a time from the fullest host to the emptiest
    (lowest-domid victim) until the spread between any two hosts is at
    most one VM, or [max_moves] migrations have been attempted
    (default [4 * vm_count], a safety bound — the loop converges long
    before it on any real imbalance). *)

(** {1 Cluster-wide resource accounting} *)

val resources : t -> Vmm.resources
(** Accounted resources: the componentwise sum of every host's
    {!Vmm.resources} plus {!lost_resources}. Two snapshots around any
    self-contained workload (everything created was destroyed, losses
    only via failed migrations) must be equal — that is the cluster
    no-leak invariant. *)

val lost_resources : t -> Vmm.resources
(** Cumulative footprint of guests lost in failed migrations, measured
    as the resources the loss actually freed (source and destination
    inspected around the failing migration). *)

val check_leak : t -> before:Vmm.resources -> (unit, string) result
(** [Ok] when accounted {!resources} match [before] exactly, [Error s]
    naming every counter that drifted. A VM in flight between hosts
    when [before] was taken never trips this: migration moves its
    footprint between addends of the same sum, and a lost guest moves
    it into {!lost_resources}. *)
