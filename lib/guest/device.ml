type kind = Vif | Vbd | Sysctl

type config = {
  kind : kind;
  devid : int;
  backend_domid : int;
  detail : string;
}

let vif ?(backend_domid = 0) ?(bridge = "xenbr0") ~devid () =
  { kind = Vif; devid; backend_domid; detail = "bridge=" ^ bridge }

let vbd ?(backend_domid = 0) ?(target = "ramdisk") ~devid () =
  { kind = Vbd; devid; backend_domid; detail = "target=" ^ target }

let sysctl ?(backend_domid = 0) () =
  { kind = Sysctl; devid = 0; backend_domid; detail = "power" }

let kind_to_string = function
  | Vif -> "vif"
  | Vbd -> "vbd"
  | Sysctl -> "sysctl"

let devpage_kind = function
  | Vif -> Lightvm_hv.Devpage.Vif
  | Vbd -> Lightvm_hv.Devpage.Vbd
  | Sysctl -> Lightvm_hv.Devpage.Sysctl

let frontend_dir ~domid c =
  Printf.sprintf "/local/domain/%d/device/%s/%d" domid
    (kind_to_string c.kind) c.devid

let backend_dir ~domid c =
  Printf.sprintf "/local/domain/%d/backend/%s/%d/%d" c.backend_domid
    (kind_to_string c.kind) domid c.devid

let backend_domain_dir ~domid c =
  Printf.sprintf "/local/domain/%d/backend/%s/%d" c.backend_domid
    (kind_to_string c.kind) domid

let equal a b = a = b

let pp fmt c =
  Format.fprintf fmt "%s%d(be=%d,%s)" (kind_to_string c.kind) c.devid
    c.backend_domid c.detail
