module Engine = Lightvm_sim.Engine
module Xs_client = Lightvm_xenstore.Xs_client
module Xs_watch = Lightvm_xenstore.Xs_watch
module Xen = Lightvm_hv.Xen
module Evtchn = Lightvm_hv.Evtchn
module Gnttab = Lightvm_hv.Gnttab
module Params = Lightvm_hv.Params

type xenbus_state =
  | Initialising
  | Init_wait
  | Initialised
  | Connected
  | Closing
  | Closed

let state_to_wire = function
  | Initialising -> "1"
  | Init_wait -> "2"
  | Initialised -> "3"
  | Connected -> "4"
  | Closing -> "5"
  | Closed -> "6"

let state_of_wire = function
  | "1" -> Some Initialising
  | "2" -> Some Init_wait
  | "3" -> Some Initialised
  | "4" -> Some Connected
  | "5" -> Some Closing
  | "6" -> Some Closed
  | _ -> None

exception Connect_failed of string

(* Guest-side CPU for the whole xenbus dance: interrupt handling and
   the xenbus state machine for ~10 store round-trips. Under core
   contention this work stretches with the scheduling share, which is
   exactly what backs up the paper's overloaded-host experiment
   (Fig 17): a booting guest on a crowded core takes far longer to get
   through its XenStore handshake. *)
let guest_side_work = 3.2e-3

let connect ~xs ~xen ~domid (dev : Device.config) =
  Xen.consume_guest xen ~domid (0.5 *. guest_side_work);
  let fe = Device.frontend_dir ~domid dev in
  let be = Device.backend_dir ~domid dev in
  (* 1. Discover the backend from our frontend directory. *)
  let backend_path = Xs_client.read xs (fe ^ "/backend") in
  if backend_path <> be then
    raise
      (Connect_failed
         (Printf.sprintf "backend path mismatch: %s vs %s" backend_path be));
  let backend_id =
    int_of_string (Xs_client.read xs (fe ^ "/backend-id"))
  in
  (* 2. Allocate the shared ring and event channel. *)
  let costs = Xen.costs xen in
  let gnt = Xen.gnttab xen in
  let ring_gref =
    Xen.hypercall ~op:"gnttab_op" xen ~cost:costs.Params.gnttab_op;
    Gnttab.grant_access gnt ~owner:domid ~grantee:backend_id ~frame:0
  in
  let port =
    Xen.hypercall ~op:"evtchn_op" xen ~cost:costs.Params.evtchn_op;
    Evtchn.alloc_unbound (Xen.evtchn xen) ~domid ~remote:backend_id
  in
  (* 3. Publish them and flip to Initialised. *)
  Xs_client.write_many xs
    [
      (fe ^ "/ring-ref", string_of_int ring_gref);
      (fe ^ "/event-channel", string_of_int port);
      (fe ^ "/state", state_to_wire Initialised);
    ];
  (* 4. Wait for the backend to connect (watch on its state node). *)
  let connected = Engine.Ivar.create () in
  let state_path = be ^ "/state" in
  let token = Printf.sprintf "fe-%d-%s-%d" domid
      (Device.kind_to_string dev.Device.kind) dev.Device.devid in
  Xs_client.watch xs ~path:state_path ~token ~deliver:(fun _event ->
      match Xs_client.read_opt xs state_path with
      | Some wire when state_of_wire wire = Some Connected ->
          if not (Engine.Ivar.is_full connected) then
            Engine.Ivar.fill connected ()
      | Some _ | None -> ());
  Engine.Ivar.read connected;
  Xs_client.unwatch xs ~path:state_path ~token;
  (* 5. Read back what the backend published and go Connected. *)
  ignore (Xs_client.read_opt xs (be ^ "/mac"));
  Xs_client.write xs (fe ^ "/state") (state_to_wire Connected);
  Xen.consume_guest xen ~domid (0.5 *. guest_side_work)

let disconnect ~xs ~domid dev =
  let fe = Device.frontend_dir ~domid dev in
  Xs_client.write xs (fe ^ "/state") (state_to_wire Closed)
