(** Virtual device configurations shared by toolstack and guests. *)

type kind = Vif | Vbd | Sysctl

type config = {
  kind : kind;
  devid : int;
  backend_domid : int;  (** Dom0 in all paper experiments *)
  detail : string;  (** e.g. ["bridge=xenbr0"] or a disk spec *)
}

val vif : ?backend_domid:int -> ?bridge:string -> devid:int -> unit -> config

val vbd : ?backend_domid:int -> ?target:string -> devid:int -> unit -> config

val sysctl : ?backend_domid:int -> unit -> config
(** The noxs power-management pseudo-device (Section 5.1): its shared
    page and event channel carry suspend/shutdown requests. *)

val kind_to_string : kind -> string

val devpage_kind : kind -> Lightvm_hv.Devpage.kind

val frontend_dir : domid:int -> config -> string
(** XenStore frontend directory, e.g.
    [/local/domain/5/device/vif/0]. *)

val backend_dir : domid:int -> config -> string
(** XenStore backend directory, e.g. [/local/domain/0/backend/vif/5/0]. *)

val backend_domain_dir : domid:int -> config -> string
(** The per-guest level above {!backend_dir}, e.g.
    [/local/domain/0/backend/vif/5]. Created implicitly by the first
    write under it; rollback removes this whole level so a failed
    creation leaves no empty parent behind. *)

val equal : config -> config -> bool

val pp : Format.formatter -> config -> unit
