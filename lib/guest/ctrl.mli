(** Device control pages (noxs, Section 5.1).

    Under noxs, front- and back-end exchange device information — state,
    MAC address, ring details — through a shared page referenced by the
    grant in the VM's device page, instead of through XenStore entries.
    This module is that shared memory: a registry of structured pages
    keyed by [(backend_domid, grant_ref)], with write-once connection
    rendezvous for the two sides. *)

type state = Init | Front_ready | Connected | Closing | Closed

type page

type t

val create : unit -> t

val register :
  t -> backend_domid:int -> grant_ref:int -> mac:string -> page
(** Called by the back-end when pre-creating a device. *)

val find : t -> backend_domid:int -> grant_ref:int -> page option

val unregister : t -> backend_domid:int -> grant_ref:int -> unit

val mac : page -> string

val front_state : page -> state

val back_state : page -> state

val set_front_state : page -> state -> unit

val set_back_state : page -> state -> unit
(** Setting [Connected] wakes anyone blocked in {!await_connected}. *)

val set_front_port : page -> int -> unit

val front_port : page -> int option

val await_connected : page -> unit
(** Block (simulated time) until the back-end reports [Connected]. *)

val count : t -> int
(** Registered control pages. For leak accounting — see
    [Lightvm.Host.resources]. *)

val state_to_string : state -> string
