module Xen = Lightvm_hv.Xen
module Devpage = Lightvm_hv.Devpage
module Evtchn = Lightvm_hv.Evtchn
module Gnttab = Lightvm_hv.Gnttab
module Params = Lightvm_hv.Params

exception Connect_failed of string

let map_device_page ~xen ~domid =
  let costs = Xen.costs xen in
  (* One hypercall to get the page address, one to map it. *)
  Xen.hypercall ~op:"devpage_op" xen ~cost:costs.Params.devpage_op;
  Xen.hypercall ~op:"devpage_op" xen ~cost:costs.Params.devpage_op;
  match Devpage.read (Xen.devpage xen) ~caller:domid ~domid with
  | Ok entries -> entries
  | Error _ -> raise (Connect_failed "no device page")

let find_entry ~xen ~domid (dev : Device.config) =
  match
    Devpage.find (Xen.devpage xen) ~caller:domid ~domid
      ~kind:(Device.devpage_kind dev.Device.kind)
      ~devid:dev.Device.devid
  with
  | Ok entry -> entry
  | Error _ ->
      raise
        (Connect_failed
           (Printf.sprintf "no device page entry for %s%d"
              (Device.kind_to_string dev.Device.kind)
              dev.Device.devid))

(* Guest-side CPU for noxs bring-up: a handful of hypercalls and shared
   memory pokes — more than an order of magnitude less guest work than
   the xenbus dance. *)
let guest_side_work = 0.06e-3

let connect ~xen ~ctrl ~domid (dev : Device.config) =
  Xen.consume_guest xen ~domid guest_side_work;
  let costs = Xen.costs xen in
  let entry = find_entry ~xen ~domid dev in
  (* Map the device control page shared by the backend. *)
  Xen.hypercall ~op:"gnttab_op" xen ~cost:costs.Params.gnttab_op;
  (match
     Gnttab.map (Xen.gnttab xen) ~grantee:domid
       ~owner:entry.Devpage.backend_domid entry.Devpage.grant_ref
   with
  | Ok _frame -> ()
  | Error _ -> raise (Connect_failed "control page grant map failed"));
  let page =
    match
      Ctrl.find ctrl ~backend_domid:entry.Devpage.backend_domid
        ~grant_ref:entry.Devpage.grant_ref
    with
    | Some page -> page
    | None -> raise (Connect_failed "no control page registered")
  in
  (* Bind to the backend's event channel. *)
  Xen.hypercall ~op:"evtchn_op" xen ~cost:costs.Params.evtchn_op;
  let port =
    match
      Evtchn.bind_interdomain (Xen.evtchn xen) ~domid
        ~remote:entry.Devpage.backend_domid
        ~remote_port:entry.Devpage.evtchn_port
    with
    | Ok port -> port
    | Error _ -> raise (Connect_failed "event channel bind failed")
  in
  (* Exchange setup info through the control page and kick the
     backend. *)
  Ctrl.set_front_port page port;
  Ctrl.set_front_state page Ctrl.Front_ready;
  ignore (Evtchn.notify (Xen.evtchn xen) ~domid ~port);
  Ctrl.await_connected page;
  Ctrl.set_front_state page Ctrl.Connected

let disconnect ~xen ~ctrl ~domid (dev : Device.config) =
  match find_entry ~xen ~domid dev with
  | entry -> (
      match
        Ctrl.find ctrl ~backend_domid:entry.Devpage.backend_domid
          ~grant_ref:entry.Devpage.grant_ref
      with
      | Some page -> Ctrl.set_front_state page Ctrl.Closed
      | None -> ())
  | exception Connect_failed _ -> ()
