module Engine = Lightvm_sim.Engine

type state = Init | Front_ready | Connected | Closing | Closed

type page = {
  mac : string;
  mutable front_state : state;
  mutable back_state : state;
  mutable front_port : int option;
  connected : unit Engine.Ivar.t;
}

type t = { pages : (int * int, page) Hashtbl.t }

let create () = { pages = Hashtbl.create 32 }

let register t ~backend_domid ~grant_ref ~mac =
  let page =
    {
      mac;
      front_state = Init;
      back_state = Init;
      front_port = None;
      connected = Engine.Ivar.create ();
    }
  in
  Hashtbl.replace t.pages (backend_domid, grant_ref) page;
  page

let find t ~backend_domid ~grant_ref =
  Hashtbl.find_opt t.pages (backend_domid, grant_ref)

let unregister t ~backend_domid ~grant_ref =
  Hashtbl.remove t.pages (backend_domid, grant_ref)

let mac page = page.mac
let front_state page = page.front_state
let back_state page = page.back_state
let set_front_state page s = page.front_state <- s

let set_back_state page s =
  page.back_state <- s;
  if s = Connected && not (Engine.Ivar.is_full page.connected) then
    Engine.Ivar.fill page.connected ()

let set_front_port page port = page.front_port <- Some port
let front_port page = page.front_port

let await_connected page = Engine.Ivar.read page.connected

let state_to_string = function
  | Init -> "init"
  | Front_ready -> "front-ready"
  | Connected -> "connected"
  | Closing -> "closing"
  | Closed -> "closed"

let count t = Hashtbl.length t.pages
