(** Open-loop arrival processes for the serverless traffic generator
    (DESIGN.md section 12).

    Three request-interarrival models, each driven by one explicit
    {!Lightvm_sim.Rng} splitmix stream so a run is a pure function of
    its seed: a homogeneous Poisson process, a diurnal sinusoid
    (non-homogeneous Poisson thinned against its peak rate) and a
    two-state MMPP (Markov-modulated Poisson: calm/burst phases with
    exponentially distributed sojourns). At the default 2000 req/s a
    simulated day is ~170 million requests — the generator allocates
    nothing per arrival beyond the draws themselves. *)

type process =
  | Poisson of { rate : float }  (** arrivals/second *)
  | Diurnal of {
      base : float;  (** mean arrivals/second over a full period *)
      amplitude : float;
          (** relative swing in [\[0, 1\]]: the instantaneous rate is
              [base * (1 + amplitude * sin (2 pi t / period))] *)
      period : float;  (** seconds per "day" *)
    }
  | Mmpp of {
      calm_rate : float;
      burst_rate : float;
      mean_calm : float;  (** mean seconds spent calm per visit *)
      mean_burst : float;  (** mean seconds per burst *)
    }

val name : process -> string
(** ["poisson"], ["diurnal"] or ["mmpp"]. *)

val describe : process -> string
(** One-line summary with the numeric parameters. *)

val of_flag :
  rate:float -> period:float -> string -> (process, string) result
(** Parse a [--arrival] flag value (["poisson"], ["diurnal"],
    ["mmpp"]) into a process with conventional shapes at mean rate
    [rate]: diurnal swings +/-60% of [rate] over [period]; mmpp
    alternates calm at [rate]/2 with bursts at 4x[rate] (roughly one
    fifth of the time), preserving the mean. *)

val mean_rate : process -> float
(** Long-run arrivals/second (exact for poisson and diurnal, the
    stationary rate for mmpp). *)

type gen
(** A stateful arrival generator: owns its position in virtual time and
    in the modulating state, draws from the stream it was created
    with. *)

val generator : process -> rng:Lightvm_sim.Rng.t -> gen

val next_gap : gen -> float
(** Seconds from the previous arrival (or from t = 0) to the next one.
    Always finite and non-negative; the caller sleeps the gap and fires
    the request. *)
