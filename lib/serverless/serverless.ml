module Engine = Lightvm_sim.Engine
module Rng = Lightvm_sim.Rng
module Quantiles = Lightvm_metrics.Quantiles
module Series = Lightvm_metrics.Series
module Image = Lightvm_guest.Image
module Xen = Lightvm_hv.Xen
module Vmm = Lightvm_cluster.Vmm
module Machine = Lightvm_container.Machine
module Docker = Lightvm_container.Docker
module Layers = Lightvm_container.Layers

type policy = Cold_boot | Warm_pool | Container

let policy_name = function
  | Cold_boot -> "coldboot"
  | Warm_pool -> "warmpool"
  | Container -> "container"

let policy_of_string = function
  | "coldboot" -> Ok Cold_boot
  | "warmpool" -> Ok Warm_pool
  | "container" -> Ok Container
  | s ->
      Error
        (Printf.sprintf
           "unknown policy %S (expected coldboot, warmpool or container)" s)

type autoscaler = {
  min_target : int;
  max_target : int;
  interval : float;
  idle_rounds : int;
}

let default_autoscaler =
  { min_target = 4; max_target = 64; interval = 0.25; idle_rounds = 3 }

type config = {
  arrival : Arrival.process;
  duration : float;
  service_mean : float;
  concurrency : int;
  policy : policy;
  autoscaler : autoscaler;
  seed : int64;
}

let default_config ?arrival ?(duration = 5.) policy =
  let arrival =
    match arrival with
    | Some a -> a
    | None -> Arrival.Poisson { rate = 2000. }
  in
  {
    arrival;
    duration;
    service_mean = 0.001;
    concurrency = 12;
    policy;
    autoscaler = default_autoscaler;
    seed = 42L;
  }

type stats = {
  requests : int;
  completed : int;
  failures : int;
  latency : Quantiles.t;
  queue_depth : Series.t;
  pool_hits : int;
  pool_takes : int;
  peak_target : int;
  makespan : float;
}

let hit_rate s =
  if s.pool_takes = 0 then 0.
  else float_of_int s.pool_hits /. float_of_int s.pool_takes

let percentile_note ~label s =
  let us v = 1e6 *. v in
  let q p =
    if Quantiles.count s.latency = 0 then 0. else Quantiles.quantile s.latency p
  in
  let mean =
    if Quantiles.count s.latency = 0 then 0. else Quantiles.mean s.latency
  in
  Printf.sprintf
    "%s: %d req (%d ok, %d failed); p50 %.0f us, p99 %.0f us, p999 %.0f us, \
     mean %.0f us; pool hit rate %.3f; makespan %.3f s"
    label s.requests s.completed s.failures
    (us (q 0.50))
    (us (q 0.99))
    (us (q 0.999))
    (us mean) (hit_rate s) s.makespan

(* The policy-independent open-loop dispatcher. One arrival process
   sleeps the generator's gaps and fires requests; [concurrency] slots
   gate admission; a request that finds no free slot waits in FIFO
   order. Each admitted request runs in its own simulation process so
   service overlaps naturally; on release it hands its slot to the head
   of the queue. Arrivals stop after [duration] but the backlog drains
   to empty before the stats are cut, so overloaded configurations
   report the full sojourn tail rather than truncating it. *)
let run_open_loop ?control ~gen ~service_rng ~duration ~concurrency
    ~service_mean ~sample_every ~invoke ~pool_stats () =
  if concurrency < 1 then
    invalid_arg "Serverless.run_open_loop: concurrency must be >= 1";
  let start = Engine.now () in
  let t_end = start +. duration in
  let latency = Quantiles.create () in
  let queue_depth = Series.create ~unit_label:"requests" ~name:"queue-depth" () in
  let queue : (int * float * float) Queue.t = Queue.create () in
  let free = ref concurrency in
  let requests = ref 0 in
  let completed = ref 0 in
  let failures = ref 0 in
  let arrivals_done = ref false in
  let finished = ref false in
  let all_done = Engine.Ivar.create () in
  let in_system () = Queue.length queue + (concurrency - !free) in
  let check_done () =
    if
      !arrivals_done
      && Queue.is_empty queue
      && !free = concurrency
      && not (Engine.Ivar.is_full all_done)
    then Engine.Ivar.fill all_done ()
  in
  let rec start_request (idx, arrived, service_s) =
    decr free;
    Engine.spawn
      ~name:(Printf.sprintf "fn-%d" idx)
      (fun () ->
        (if invoke idx service_s then begin
           Quantiles.add latency (Engine.now () -. arrived);
           incr completed
         end
         else incr failures);
        incr free;
        (match Queue.take_opt queue with
        | Some next -> start_request next
        | None -> ());
        check_done ())
  in
  Engine.spawn ~name:"arrivals" (fun () ->
      let idx = ref 0 in
      let rec loop () =
        let gap = Arrival.next_gap gen in
        Engine.sleep gap;
        if Engine.now () <= t_end then begin
          let req = (!idx, Engine.now (), Rng.exponential service_rng ~mean:service_mean) in
          incr idx;
          incr requests;
          if !free > 0 then start_request req else Queue.add req queue;
          loop ()
        end
        else begin
          arrivals_done := true;
          check_done ()
        end
      in
      loop ());
  Engine.spawn ~name:"sampler" (fun () ->
      let rec loop () =
        if not !finished then begin
          Series.add queue_depth
            ~x:(Engine.now () -. start)
            ~y:(float_of_int (in_system ()));
          Engine.sleep sample_every;
          loop ()
        end
      in
      loop ());
  (match control with
  | None -> ()
  | Some (interval, decide) ->
      Engine.spawn ~name:"autoscaler" (fun () ->
          let rec loop () =
            if not !finished then begin
              Engine.sleep interval;
              if not !finished then begin
                decide (in_system ());
                loop ()
              end
            end
          in
          loop ()));
  Engine.Ivar.read all_done;
  finished := true;
  let makespan = Engine.now () -. start in
  Series.add queue_depth ~x:makespan ~y:0.;
  let pool_hits, pool_takes = pool_stats () in
  {
    requests = !requests;
    completed = !completed;
    failures = !failures;
    latency;
    queue_depth;
    pool_hits;
    pool_takes;
    peak_target = 0;
    makespan;
  }

(* Function instances are minipython unikernels with no vifs or vbds:
   the flavor must match what the warm pool prefills, and a serverless
   instance that lives milliseconds has no use for hotplug. *)
let fn_image = Image.minipython

let vm_invoke host idx service_s =
  let name = Printf.sprintf "fn-%d" idx in
  match Vmm.vm_create host (Vmm.vm_request ~name ~nics:0 ~disks:0 fn_image) with
  | Error _ -> false
  | Ok vi ->
      let domid = vi.Vmm.vi_domid in
      (match Vmm.vm_boot host ~domid with Ok () | Error _ -> ());
      Xen.consume_guest (Vmm.xen host) ~domid service_s;
      (match Vmm.vm_delete host ~domid with Ok () | Error _ -> ());
      true

let container_invoke eng idx service_s =
  match
    Docker.run eng ~image:Layers.micropython_image
      ~name:(Printf.sprintf "fn-%d" idx) ()
  with
  | Error _ -> false
  | Ok c ->
      Engine.sleep service_s;
      Docker.stop eng c;
      true

let warm_pool host ~target =
  Vmm.set_pool_target host fn_image ~nics:0 ~disks:0 target;
  Vmm.prefill_pool host fn_image ~nics:0 ~disks:0

let run_node cfg host =
  let root = Rng.create cfg.seed in
  let arrival_rng = Rng.split root in
  let service_rng = Rng.split root in
  let gen = Arrival.generator cfg.arrival ~rng:arrival_rng in
  let sample_every = Float.max (cfg.duration /. 50.) 1e-3 in
  let core ?control ~invoke ~pool_stats () =
    run_open_loop ?control ~gen ~service_rng ~duration:cfg.duration
      ~concurrency:cfg.concurrency ~service_mean:cfg.service_mean
      ~sample_every ~invoke ~pool_stats ()
  in
  match cfg.policy with
  | Cold_boot ->
      core ~invoke:(vm_invoke host) ~pool_stats:(fun () -> (0, 0)) ()
  | Container ->
      let eng = Docker.create (Machine.create ~platform:(Vmm.platform host) ()) in
      core ~invoke:(container_invoke eng) ~pool_stats:(fun () -> (0, 0)) ()
  | Warm_pool ->
      let a = cfg.autoscaler in
      if a.min_target < 1 || a.max_target < a.min_target then
        invalid_arg "Serverless.run_node: bad autoscaler targets";
      let pool_target () = Vmm.pool_target host fn_image ~nics:0 ~disks:0 in
      let set_target t = Vmm.set_pool_target host fn_image ~nics:0 ~disks:0 t in
      let pool_stats () = Vmm.pool_stats host fn_image ~nics:0 ~disks:0 in
      warm_pool host ~target:a.min_target;
      let hits0, takes0 = pool_stats () in
      let peak = ref (pool_target ()) in
      let idle = ref 0 in
      let decide depth =
        let target = pool_target () in
        if depth > cfg.concurrency && target < a.max_target then begin
          (* backlog: double the pool, building the new shells now (the
             autoscaler process pays the dom0 time, as a real control
             loop would) *)
          idle := 0;
          let target' = min a.max_target (max 1 (2 * target)) in
          set_target target';
          Vmm.prefill_pool host fn_image ~nics:0 ~disks:0;
          if target' > !peak then peak := target'
        end
        else if depth = 0 then begin
          incr idle;
          if !idle >= a.idle_rounds && target > a.min_target then begin
            idle := 0;
            set_target (max a.min_target (target / 2))
          end
        end
        else idle := 0
      in
      let stats =
        core
          ~control:(a.interval, decide)
          ~invoke:(vm_invoke host)
          ~pool_stats:(fun () ->
            let hits, takes = pool_stats () in
            (hits - hits0, takes - takes0))
          ()
      in
      { stats with peak_target = !peak }

(* Erlang C: the probability an M/M/k arrival waits, and from it the
   mean wait E[Wq] = C(k, a) / (k mu - lambda). Computed with the
   running-term recurrence a^n/n! to stay finite for any reasonable
   k. *)
let erlang_c_wait ~rate ~service_mean ~servers =
  if servers < 1 then invalid_arg "Serverless.erlang_c_wait: servers";
  let a = rate *. service_mean in
  let k = float_of_int servers in
  if a >= k then
    invalid_arg "Serverless.erlang_c_wait: unstable system (rate >= capacity)";
  let rho = a /. k in
  let sum = ref 0. in
  let term = ref 1. in
  for n = 0 to servers - 1 do
    sum := !sum +. !term;
    term := !term *. a /. float_of_int (n + 1)
  done;
  let tail = !term /. (1. -. rho) in
  let p_wait = tail /. (!sum +. tail) in
  p_wait *. service_mean /. (k *. (1. -. rho))
