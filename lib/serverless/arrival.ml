module Rng = Lightvm_sim.Rng

type process =
  | Poisson of { rate : float }
  | Diurnal of { base : float; amplitude : float; period : float }
  | Mmpp of {
      calm_rate : float;
      burst_rate : float;
      mean_calm : float;
      mean_burst : float;
    }

let name = function
  | Poisson _ -> "poisson"
  | Diurnal _ -> "diurnal"
  | Mmpp _ -> "mmpp"

let describe = function
  | Poisson { rate } -> Printf.sprintf "poisson @ %g req/s" rate
  | Diurnal { base; amplitude; period } ->
      Printf.sprintf "diurnal @ %g req/s +/-%g%% over %gs" base
        (100. *. amplitude) period
  | Mmpp { calm_rate; burst_rate; mean_calm; mean_burst } ->
      Printf.sprintf "mmpp calm %g req/s (%gs) / burst %g req/s (%gs)"
        calm_rate mean_calm burst_rate mean_burst

let of_flag ~rate ~period = function
  | "poisson" -> Ok (Poisson { rate })
  | "diurnal" -> Ok (Diurnal { base = rate; amplitude = 0.6; period })
  | "mmpp" ->
      (* Calm 5/6 of the time at rate/2, bursting 1/6 of the time at
         4x: stationary mean (5/6)(rate/2) + (1/6)(4 rate) = rate
         + rate/12 ~ rate; close enough for a load shape, and the
         burst-to-calm contrast is what the tail percentiles see. *)
      Ok
        (Mmpp
           {
             calm_rate = rate /. 2.;
             burst_rate = 4. *. rate;
             mean_calm = period /. 12.;
             mean_burst = period /. 60.;
           })
  | s ->
      Error
        (Printf.sprintf
           "unknown arrival process %S (expected poisson, diurnal or mmpp)" s)

let mean_rate = function
  | Poisson { rate } -> rate
  | Diurnal { base; _ } -> base
  | Mmpp { calm_rate; burst_rate; mean_calm; mean_burst } ->
      ((calm_rate *. mean_calm) +. (burst_rate *. mean_burst))
      /. (mean_calm +. mean_burst)

type state = Calm | Burst

type gen = {
  process : process;
  rng : Rng.t;
  mutable t : float;  (* virtual time of the last arrival produced *)
  mutable state : state;  (* mmpp modulating phase *)
  mutable state_left : float;  (* seconds left in the current phase *)
}

let generator process ~rng =
  { process; rng; t = 0.; state = Calm; state_left = 0. }

let two_pi = 8. *. atan 1.

(* Non-homogeneous Poisson by thinning (Lewis-Shedler): candidate gaps
   at the peak rate, accepted with probability lambda(t)/lambda_max.
   Bounded: every candidate consumes exactly one exponential and one
   uniform draw, so the stream position is a pure function of the
   accept/reject history. *)
let diurnal_gap g ~base ~amplitude ~period =
  let lambda_max = base *. (1. +. amplitude) in
  let rec draw t =
    let t = t +. Rng.exponential g.rng ~mean:(1. /. lambda_max) in
    let lambda = base *. (1. +. (amplitude *. sin (two_pi *. t /. period))) in
    if Rng.float g.rng 1.0 *. lambda_max <= lambda then t else draw t
  in
  let t' = draw g.t in
  let gap = t' -. g.t in
  g.t <- t';
  gap

(* Two-state MMPP: within a phase, arrivals are Poisson at the phase
   rate; phase sojourns are exponential. Competing exponentials: if the
   candidate arrival lands beyond the phase boundary, advance to the
   boundary, flip the phase and redraw from there (memorylessness makes
   the discarded remainder exact, not an approximation). *)
let mmpp_gap g ~calm_rate ~burst_rate ~mean_calm ~mean_burst =
  let rec draw acc =
    let rate, mean_sojourn =
      match g.state with
      | Calm -> (calm_rate, mean_calm)
      | Burst -> (burst_rate, mean_burst)
    in
    if g.state_left <= 0. then begin
      g.state_left <- Rng.exponential g.rng ~mean:mean_sojourn;
      draw acc
    end
    else
      let gap = Rng.exponential g.rng ~mean:(1. /. rate) in
      if gap <= g.state_left then begin
        g.state_left <- g.state_left -. gap;
        acc +. gap
      end
      else begin
        let consumed = g.state_left in
        g.state_left <- 0.;
        g.state <- (match g.state with Calm -> Burst | Burst -> Calm);
        draw (acc +. consumed)
      end
  in
  let gap = draw 0. in
  g.t <- g.t +. gap;
  gap

let next_gap g =
  match g.process with
  | Poisson { rate } ->
      let gap = Rng.exponential g.rng ~mean:(1. /. rate) in
      g.t <- g.t +. gap;
      gap
  | Diurnal { base; amplitude; period } ->
      diurnal_gap g ~base ~amplitude ~period
  | Mmpp { calm_rate; burst_rate; mean_calm; mean_burst } ->
      mmpp_gap g ~calm_rate ~burst_rate ~mean_calm ~mean_burst
