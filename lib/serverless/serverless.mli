(** Open-loop serverless traffic onto an autoscaling VM pool
    (ROADMAP item 2; DESIGN.md section 12).

    The paper's Lambda use case (Figs 17/18) runs closed-loop — the
    next request waits for the previous. This module is the open-loop
    production regime: an {!Arrival} process fires function invocations
    at its own pace (at the default 2000 req/s a simulated day is ~170
    million requests); a FIFO dispatcher with [concurrency] instance
    slots admits them; each admitted request acquires a fresh VM (or
    container) through the configured {!policy}, runs its function body
    as guest CPU on the host's processor-sharing model, and releases
    the instance. Per-request latency (arrival to completion) streams
    into a {!Lightvm_metrics.Quantiles} accumulator so runs report
    p50/p99/p999, alongside a queue-depth-over-time series and the
    warm-pool hit rate.

    Determinism: every stochastic element (arrival gaps, service
    draws) comes from splitmix streams derived from [seed], and all
    simulation state is local to the calling partition, so a node's
    output is a pure function of its config — bit-identical whatever
    the [--jobs] count or partition mode (test/test_serverless.ml pins
    the matrix). *)

(** How an admitted request obtains its instance. *)
type policy =
  | Cold_boot
      (** full creation pipeline per request on a non-split host (the
          xl/chaos regime: every request pays create + boot) *)
  | Warm_pool
      (** the paper's split toolstack: requests take pre-created
          shells from {!Lightvm_toolstack.Pool}, a background daemon
          refills, and the {!autoscaler} moves the pool target with
          load *)
  | Container  (** Docker baseline: [docker run] per request *)

val policy_name : policy -> string

val policy_of_string : string -> (policy, string) result
(** Parses ["coldboot"], ["warmpool"] and ["container"]. *)

(** The {!Warm_pool} autoscaler (state machine in DESIGN.md section
    12): sampled every [interval] simulated seconds, doubles the pool
    target towards [max_target] while the dispatcher queue is deeper
    than the scale-up threshold, and halves it towards [min_target]
    after [idle_rounds] consecutive idle samples — surplus shells are
    retired immediately and completely
    ({!Lightvm_cluster.Vmm.set_pool_target}). *)
type autoscaler = {
  min_target : int;
  max_target : int;
  interval : float;  (** seconds between control decisions *)
  idle_rounds : int;  (** idle samples before scaling down *)
}

val default_autoscaler : autoscaler

type config = {
  arrival : Arrival.process;
  duration : float;
      (** seconds of open-loop arrivals; the run then drains the
          backlog, so the makespan exceeds [duration] under overload *)
  service_mean : float;
      (** mean of the exponential per-request function time, seconds *)
  concurrency : int;  (** dispatcher instance slots *)
  policy : policy;
  autoscaler : autoscaler;  (** consulted by {!Warm_pool} only *)
  seed : int64;
      (** root of the node's arrival and service streams; derive
          per-host seeds from it for fleets *)
}

val default_config :
  ?arrival:Arrival.process -> ?duration:float -> policy -> config
(** 2000 req/s Poisson for [duration] (default 5 s), 1 ms mean
    service, 12 slots, seed 42. *)

type stats = {
  requests : int;  (** arrivals admitted or queued *)
  completed : int;
  failures : int;
      (** failed instance acquisitions (injected cold-boot faults, out
          of memory, a wedged container engine); the request is
          consumed, not retried *)
  latency : Lightvm_metrics.Quantiles.t;
      (** arrival-to-completion seconds of completed requests *)
  queue_depth : Lightvm_metrics.Series.t;
      (** (simulated seconds, requests queued + in service) sampled
          over the run *)
  pool_hits : int;  (** shell takes served from the pool *)
  pool_takes : int;  (** total shell takes ([0] unless {!Warm_pool}) *)
  peak_target : int;  (** highest pool target the autoscaler reached *)
  makespan : float;  (** arrival start to last completion, seconds *)
}

val hit_rate : stats -> float
(** [pool_hits / pool_takes]; [0.] when there were no takes. *)

val percentile_note : label:string -> stats -> string
(** One-line digest-stable summary: p50/p99/p999 in microseconds, mean,
    completion counts and the pool hit rate. *)

val warm_pool : Lightvm_cluster.Vmm.t -> target:int -> unit
(** Set the function-instance flavor's pool target on a split-toolstack
    host and synchronously prefill it (the flavor is the same one
    {!run_node} creates from, so takes hit). Prefilling never parks a
    background process, so a host warmed this way can be captured into
    a checkpoint prefix image and forked across cells. *)

val run_node : config -> Lightvm_cluster.Vmm.t -> stats
(** Drive one node's full open-loop run against [host] from inside a
    running simulation (the caller owns the enclosing
    {!Lightvm_sim.Engine.run} and the host's partition). The host must
    match the policy: a split-toolstack mode for {!Warm_pool}, any mode
    for {!Cold_boot} (its creations bypass the pool only if the mode is
    not split — pass a non-split host for a true cold baseline).
    {!Container} ignores [host]'s toolstack and runs a Docker engine on
    an equivalent machine. Blocks until the backlog has drained. *)

(** {1 Queueing core}

    The policy-independent dispatcher, exposed so tests can check the
    measured waiting behaviour against M/M/k theory without any VM
    plumbing in the loop. *)

val run_open_loop :
  ?control:float * (int -> unit) ->
  gen:Arrival.gen ->
  service_rng:Lightvm_sim.Rng.t ->
  duration:float ->
  concurrency:int ->
  service_mean:float ->
  sample_every:float ->
  invoke:(int -> float -> bool) ->
  pool_stats:(unit -> int * int) ->
  unit ->
  stats
(** [invoke idx service_s] performs one admitted request (acquire,
    serve, release) and reports success; [pool_stats ()] is sampled
    once at the end for the hit-rate fields. [control] is an optional
    [(interval, decide)] loop given the instantaneous system depth
    (queued + in service) every [interval] seconds — the autoscaler
    plugs in here. [run_node] is this with the policy's invoke. *)

val erlang_c_wait : rate:float -> service_mean:float -> servers:int -> float
(** Analytic M/M/k mean waiting time (Erlang C), seconds — the
    reference the sanity test compares measured means against.
    Requires a stable system ([rate * service_mean < servers]). *)
