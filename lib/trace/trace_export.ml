module Table = Lightvm_metrics.Table

(* ------------------------------------------------------------------ *)
(* Chrome trace_event JSON (load in chrome://tracing or Perfetto) *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let usec t = t *. 1e6

let span_event buf (sp : Trace.span) =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%d"
       (escape sp.Trace.sp_name)
       (escape sp.Trace.sp_category)
       (usec sp.Trace.sp_start)
       (usec (Trace.duration sp))
       sp.Trace.sp_tid);
  (match sp.Trace.sp_attrs with
  | [] -> ()
  | attrs ->
      Buffer.add_string buf ",\"args\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)))
        attrs;
      Buffer.add_char buf '}');
  Buffer.add_char buf '}'

let counter_event buf ~ts name value =
  Buffer.add_string buf
    (Printf.sprintf
       "{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%.3f,\"pid\":0,\"args\":{\"value\":%d}}"
       (escape name) (usec ts) value)

let to_chrome_json () =
  let spans = Trace.spans () in
  let t_last =
    List.fold_left (fun acc sp -> Float.max acc sp.Trace.sp_end) 0. spans
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let sep () =
    if !first then first := false else Buffer.add_string buf ",\n"
  in
  List.iter
    (fun sp ->
      sep ();
      span_event buf sp)
    spans;
  List.iter
    (fun (name, value) ->
      sep ();
      counter_event buf ~ts:t_last name value)
    (Trace.Counter.all ());
  Buffer.add_string buf "],\"displayTimeUnit\":\"ms\"}";
  Buffer.contents buf

let write_chrome_json path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_chrome_json ()))

(* ------------------------------------------------------------------ *)
(* Plain-text top-down summaries *)

let ms t = t *. 1e3

type row = {
  mutable n : int;
  mutable total : float;
  mutable self : float;
}

let summary_table () =
  let by_cat : (string, row) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun sp ->
      let r =
        match Hashtbl.find_opt by_cat sp.Trace.sp_category with
        | Some r -> r
        | None ->
            let r = { n = 0; total = 0.; self = 0. } in
            Hashtbl.replace by_cat sp.Trace.sp_category r;
            r
      in
      r.n <- r.n + 1;
      r.total <- r.total +. Trace.duration sp;
      r.self <- r.self +. sp.Trace.sp_self)
    (Trace.spans ());
  let rows = Hashtbl.fold (fun cat r acc -> (cat, r) :: acc) by_cat [] in
  let rows =
    List.sort (fun (_, a) (_, b) -> compare b.self a.self) rows
  in
  let grand_self = List.fold_left (fun acc (_, r) -> acc +. r.self) 0. rows in
  let table =
    Table.create ~title:"Trace summary: time attribution by span category"
      ~columns:[ "category"; "spans"; "total ms"; "self ms"; "self %" ]
  in
  List.iter
    (fun (cat, r) ->
      Table.add_row table
        [
          cat;
          string_of_int r.n;
          Printf.sprintf "%.3f" (ms r.total);
          Printf.sprintf "%.3f" (ms r.self);
          (if grand_self > 0. then
             Printf.sprintf "%.1f" (100. *. r.self /. grand_self)
           else "-");
        ])
    rows;
  table

let charged_table () =
  let table =
    Table.create ~title:"Trace summary: virtual time charged by category"
      ~columns:[ "category"; "charged ms" ]
  in
  List.iter
    (fun (cat, t) ->
      Table.add_row table [ cat; Printf.sprintf "%.3f" (ms t) ])
    (Trace.charged ());
  table

let counters_table () =
  let table =
    Table.create ~title:"Trace counters" ~columns:[ "counter"; "count" ]
  in
  List.iter
    (fun (name, v) -> Table.add_row table [ name; string_of_int v ])
    (Trace.Counter.all ());
  table
