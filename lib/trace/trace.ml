module Engine = Lightvm_sim.Engine

type attr = string * string

type span = {
  sp_name : string;
  sp_category : string;
  sp_start : float;
  sp_end : float;
  sp_self : float;
  sp_tid : int;
  sp_depth : int;
  sp_seq : int;
  sp_attrs : attr list;
}

let duration sp = sp.sp_end -. sp.sp_start

(* One open span per stack frame; [f_child] accumulates the wall time of
   completed children so [sp_self] can be computed without a second pass
   over the ring. *)
type frame = {
  f_name : string;
  f_category : string;
  f_start : float;
  f_tid : int;
  f_depth : int;
  mutable f_attrs : attr list;
  mutable f_child : float;
}

type handle =
  | Disabled
  | Open of frame

let default_capacity = 65536

type state = {
  mutable enabled : bool;
  mutable ring : span array;
  mutable capacity : int;
  mutable head : int; (* index of the oldest retained span *)
  mutable len : int;
  mutable seq : int; (* completed spans ever, = next sp_seq *)
  mutable evicted : int;
  counters : (string, int ref) Hashtbl.t;
  charged : (string, float ref) Hashtbl.t;
  stacks : (int, frame list ref) Hashtbl.t; (* tid -> open spans *)
}

let dummy_span =
  {
    sp_name = "";
    sp_category = "";
    sp_start = 0.;
    sp_end = 0.;
    sp_self = 0.;
    sp_tid = 0;
    sp_depth = 0;
    sp_seq = -1;
    sp_attrs = [];
  }

let state =
  {
    enabled = false;
    ring = [||];
    capacity = default_capacity;
    head = 0;
    len = 0;
    seq = 0;
    evicted = 0;
    counters = Hashtbl.create 64;
    charged = Hashtbl.create 16;
    stacks = Hashtbl.create 16;
  }

let enabled () = state.enabled

let now () = if Engine.running () then Engine.now () else 0.

let reset () =
  state.head <- 0;
  state.len <- 0;
  state.seq <- 0;
  state.evicted <- 0;
  Array.fill state.ring 0 (Array.length state.ring) dummy_span;
  Hashtbl.reset state.counters;
  Hashtbl.reset state.charged;
  Hashtbl.reset state.stacks

module Counter = struct
  let incr ?(by = 1) name =
    if state.enabled then
      match Hashtbl.find_opt state.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace state.counters name (ref by)

  let value name =
    match Hashtbl.find_opt state.counters name with
    | Some r -> !r
    | None -> 0

  let all () =
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, !v) :: acc) state.counters [])
end

(* Engine hooks: count process lifecycle events while tracing is on. *)
let hooks =
  {
    Engine.on_spawn =
      (fun ~pid:_ ~name:_ -> Counter.incr "sim.process_spawns");
    on_park = (fun ~pid:_ -> Counter.incr "sim.process_parks");
    on_wake = (fun ~pid:_ -> Counter.incr "sim.process_wakes");
  }

let enable ?capacity () =
  (match capacity with
  | Some c when c <= 0 -> invalid_arg "Trace.enable: capacity must be > 0"
  | Some c -> state.capacity <- c
  | None -> state.capacity <- default_capacity);
  if Array.length state.ring <> state.capacity then
    state.ring <- Array.make state.capacity dummy_span;
  state.enabled <- true;
  Engine.set_trace_hooks (Some hooks);
  reset ()

let disable () =
  state.enabled <- false;
  Engine.set_trace_hooks None

let record sp =
  if state.capacity = 0 then ()
  else if state.len < state.capacity then begin
    state.ring.((state.head + state.len) mod state.capacity) <- sp;
    state.len <- state.len + 1
  end
  else begin
    (* Full: overwrite the oldest so the ring keeps the newest spans. *)
    state.ring.(state.head) <- sp;
    state.head <- (state.head + 1) mod state.capacity;
    state.evicted <- state.evicted + 1
  end

let spans () =
  List.init state.len (fun i ->
      state.ring.((state.head + i) mod state.capacity))

let span_count () = state.seq

let evicted () = state.evicted

let stack_for tid =
  match Hashtbl.find_opt state.stacks tid with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.replace state.stacks tid r;
      r

module Span = struct
  type t = handle

  let begin_ ?(attrs = []) ~category name =
    if not state.enabled then Disabled
    else begin
      let tid = Engine.self_pid () in
      let stack = stack_for tid in
      let frame =
        {
          f_name = name;
          f_category = category;
          f_start = now ();
          f_tid = tid;
          f_depth = List.length !stack;
          f_attrs = attrs;
          f_child = 0.;
        }
      in
      stack := frame :: !stack;
      Open frame
    end

  let add_attr h key value =
    match h with
    | Disabled -> ()
    | Open f -> f.f_attrs <- (key, value) :: f.f_attrs

  let finish f =
    let t_end = now () in
    let dur = t_end -. f.f_start in
    let stack = stack_for f.f_tid in
    (* Pop up to and including this frame; tolerates ends arriving out
       of order (a parent ended before a child, e.g. across processes)
       by discarding the orphans above it. *)
    let rec pop = function
      | [] -> []
      | g :: rest -> if g == f then rest else pop rest
    in
    stack := pop !stack;
    (match !stack with
    | parent :: _ -> parent.f_child <- parent.f_child +. dur
    | [] -> ());
    let sp =
      {
        sp_name = f.f_name;
        sp_category = f.f_category;
        sp_start = f.f_start;
        sp_end = t_end;
        sp_self = dur -. f.f_child;
        sp_tid = f.f_tid;
        sp_depth = f.f_depth;
        sp_seq = state.seq;
        sp_attrs = List.rev f.f_attrs;
      }
    in
    state.seq <- state.seq + 1;
    record sp;
    sp

  let end_ h = match h with Disabled -> () | Open f -> ignore (finish f)

  let with_ ?attrs ~category name f =
    let h = begin_ ?attrs ~category name in
    match f () with
    | r ->
        end_ h;
        r
    | exception e ->
        end_ h;
        raise e
end

(* Measure [f] on the virtual clock whether or not tracing is enabled;
   emit the span only when it is. This is the single timing source for
   consumers such as [Create.breakdown]: the duration they account is
   exactly the span's. *)
let timed ?attrs ~category name f =
  if not state.enabled then begin
    let t0 = Engine.now () in
    let r = f () in
    (r, Engine.now () -. t0)
  end
  else begin
    match Span.begin_ ?attrs ~category name with
    | Disabled ->
        let t0 = Engine.now () in
        let r = f () in
        (r, Engine.now () -. t0)
    | Open frame -> (
        match f () with
        | r ->
            let sp = Span.finish frame in
            (r, duration sp)
        | exception e ->
            ignore (Span.finish frame);
            raise e)
  end

let charge ~category ?(attrs = []) dt =
  ignore attrs;
  if state.enabled && dt > 0. then begin
    (match Hashtbl.find_opt state.charged category with
    | Some r -> r := !r +. dt
    | None -> Hashtbl.replace state.charged category (ref dt))
  end;
  Engine.sleep dt

let charged () =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, !v) :: acc) state.charged [])
