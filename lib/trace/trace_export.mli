(** Exporters over the recorded trace (see {!Trace}).

    [to_chrome_json] renders the span ring and counters in the Chrome
    [trace_event] format — an object with a [traceEvents] array of
    complete ("ph":"X") span events (timestamps in microseconds of
    virtual time, one thread per simulation process) and counter
    ("ph":"C") events — loadable in [chrome://tracing] or Perfetto.

    The table exporters render plain-text top-down summaries via
    {!Lightvm_metrics.Table}. *)

val to_chrome_json : unit -> string

val write_chrome_json : string -> unit
(** [write_chrome_json path] writes {!to_chrome_json} output to [path]. *)

val summary_table : unit -> Lightvm_metrics.Table.t
(** Per-category span count, total and self time (total minus child
    spans), sorted by self time — the top-down attribution view. *)

val charged_table : unit -> Lightvm_metrics.Table.t
(** Virtual time routed through [Trace.charge], per category. *)

val counters_table : unit -> Lightvm_metrics.Table.t
