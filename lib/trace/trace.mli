(** Span-and-counter tracing for the simulated host.

    Spans are begin/end intervals on the {e virtual} clock, tagged with
    a category and key/value attributes; nesting is tracked per
    simulation process (see {!Lightvm_sim.Engine.self_pid}) and
    completed spans land in a bounded ring buffer that evicts the
    oldest entries. Counters are monotonic event tallies (hypercalls,
    softirqs, XenStore ops by type, …). Both are global, matching the
    one-engine-at-a-time simulation model.

    When disabled (the default) every entry point is a near-zero-cost
    no-op and, crucially, {e nothing charges the virtual clock}, so
    experiment results are identical with tracing on or off. Exporters
    live in {!Trace_export}. *)

type attr = string * string

type span = {
  sp_name : string;
  sp_category : string;
  sp_start : float; (* virtual seconds *)
  sp_end : float;
  sp_self : float; (* duration minus time spent in child spans *)
  sp_tid : int; (* simulation process id *)
  sp_depth : int; (* nesting depth within that process at begin time *)
  sp_seq : int; (* completion order, monotonic from 0 *)
  sp_attrs : attr list;
}

val duration : span -> float

val enabled : unit -> bool

val enable : ?capacity:int -> unit -> unit
(** Turn tracing on and clear all recorded state. [capacity] bounds the
    span ring buffer (default 65536 spans); when full, recording a new
    span evicts the oldest. *)

val disable : unit -> unit
(** Turn tracing off; recorded spans and counters remain readable. *)

val reset : unit -> unit
(** Clear spans, counters and charge totals without toggling [enabled]. *)

val spans : unit -> span list
(** Retained spans, oldest first. *)

val span_count : unit -> int
(** Completed spans ever recorded (including evicted ones). *)

val evicted : unit -> int
(** How many spans the ring has dropped to stay within capacity. *)

module Span : sig
  type t

  val begin_ : ?attrs:attr list -> category:string -> string -> t

  val add_attr : t -> string -> string -> unit
  (** Attach an attribute discovered after [begin_] (e.g. a result
      size). No-op on a disabled span. *)

  val end_ : t -> unit

  val with_ : ?attrs:attr list -> category:string -> string -> (unit -> 'a) -> 'a
  (** [with_ ~category name f] wraps [f] in a span; the span is ended on
      both normal return and exception. *)
end

module Counter : sig
  val incr : ?by:int -> string -> unit
  (** No-op while tracing is disabled. *)

  val value : string -> int

  val all : unit -> (string * int) list
  (** Sorted by name. *)
end

val timed :
  ?attrs:attr list -> category:string -> string -> (unit -> 'a) -> 'a * float
(** [timed ~category name f] measures [f] on the virtual clock {e
    whether or not} tracing is enabled, and additionally records the
    span when it is. Returns [(result, duration)]. This is the single
    timing source for consumers that need durations unconditionally,
    e.g. the creation-time breakdown of Fig 5. *)

val charge : category:string -> ?attrs:attr list -> float -> unit
(** [charge ~category dt] advances the calling process's virtual clock
    by [dt] (exactly like [Engine.sleep dt]) and, when tracing is
    enabled, attributes the charge to [category]. The uniform entry
    point for all simulated-time costs; see [Costs.charge] and
    [Xs_costs.charge]. *)

val charged : unit -> (string * float) list
(** Total virtual seconds charged per category, sorted by name. *)
