(** Versioned serializer for quiesced simulation state.

    An image is the [Marshal] encoding (with closures) of one value —
    by convention [(Engine.saved, model roots)] — so the sharing
    between heap thunks and the model objects they close over is
    preserved: a thawed heap wakes up pointing at the thawed model.
    Marshalling is deterministic, and {!Engine.resume} replays a thawed
    image bit-identically to the unbroken run, which is what makes
    snapshot-based experiment prefix caching digest-safe.

    Quiesce points: a simulation can be frozen only when its heaps hold
    plain event thunks. A parked effect continuation (a process blocked
    in [sleep]/[Ivar.read] with its wakeup pending, a warm-pool refill
    daemon, a guest with a finite idle tick period) is a custom block
    [Marshal] cannot encode — {!freeze} reports it as {!Not_quiesced}
    instead of producing a broken image.

    Closure images are only meaningful inside the executable that
    produced them. {!save} stamps the file with a magic string, the
    {!format_version}, the producing executable's digest and the
    producing config (plus its digest); {!load} refuses mismatches with
    a structured {!error} instead of deserializing garbage. *)

type error =
  | Not_quiesced of string
      (** The run holds unmarshalable state (typically a parked effect
          continuation): not a legal checkpoint. *)
  | Bad_magic  (** Not a lightvm snapshot file. *)
  | Version_mismatch of { found : int; expected : int }
      (** Snapshot written by an incompatible format version. *)
  | Binary_mismatch
      (** Snapshot written by a different executable build. *)
  | Config_mismatch of { found : string; expected : string }
      (** Snapshot's producing config differs from the expected one. *)
  | Io_error of string  (** File-system or decode failure. *)

val error_to_string : error -> string

val format_version : int
(** Current on-disk format version; bumped whenever the header record
    or payload shape changes. *)

val freeze : 'a -> (string, error) result
(** Marshal a payload (closures included) to bytes in memory. *)

val thaw : string -> ('a, error) result
(** Inverse of {!freeze}. As with [Marshal], the result type is not
    checked: only thaw bytes produced by this process's own {!freeze},
    or loaded through {!load}'s header checks, at the type they were
    frozen at. *)

val fork : 'a -> ('a, error) result
(** [freeze] then [thaw]: a deep, sharing-preserving copy. This is how
    experiment prefix caching hands each curve its own independent copy
    of a booted simulation — forks share no mutable state, so variants
    can run concurrently on different domains. *)

val save : path:string -> config:string -> 'a -> (unit, error) result
(** Freeze and write to [path] with the versioned header. [config]
    describes the producing configuration (family, counts, seeds …) and
    is stored in the clear plus digested. *)

val save_bytes : path:string -> config:string -> string -> (unit, error) result
(** {!save} for an already-{!freeze}d image — the prefix cache stores
    frozen bytes, so writing one to disk must not re-marshal. *)

val load_bytes :
  ?expect_config:string -> path:string -> unit -> (string * string, error) result
(** {!load} without the final {!thaw}: validates the header and returns
    [(config, frozen bytes)]. The caller thaws at the type the [config]
    key implies. *)

val inspect : path:string -> (string, error) result
(** Validate a snapshot's header (magic, version, binary digest) and
    return its producing config without touching the payload. *)

val load : ?expect_config:string -> path:string -> unit -> (string * 'a, error) result
(** Read back a {!save}d image: validates the header, then thaws the
    payload. With [expect_config], additionally refuses a snapshot
    whose stored config differs ({!Config_mismatch}). Returns the
    stored config alongside the payload. *)
