(* Fixed-size worker pool on raw Domain.spawn + Mutex/Condition.

   Jobs are independent closures (typically whole simulations — each
   Engine.run is single-domain and deterministic, so parallelism lives
   across simulations, never inside one). Results come back in
   submission order regardless of completion order, which keeps every
   consumer's output bit-identical to a sequential run. *)

type outcome =
  | Pending
  | Done
  | Failed of exn * Printexc.raw_backtrace

(* One cell per submitted job; the worker writes the slot and flips the
   outcome under the promise lock, the submitter waits on the
   condition. *)
type promise = {
  p_lock : Mutex.t;
  p_cond : Condition.t;
  mutable p_state : outcome;
}

type t = {
  lock : Mutex.t;
  work_ready : Condition.t; (* queue non-empty or pool closed *)
  queue : (unit -> unit) Queue.t;
  mutable closed : bool;
  mutable workers : unit Domain.t array;
}

let default_cap = 8

let default_jobs () =
  max 1 (min (Domain.recommended_domain_count ()) default_cap)

(* The simulations allocate mostly short-lived closures, continuations
   and heap slots; under the default GC parameters (256k-word minor
   heap, space_overhead 120) a long DES run spends a visible fraction
   of its time in minor collections and promotes scratch that dies
   moments later. Give every simulation domain a larger minor heap and
   a lazier major GC. Settings are only ever raised, never lowered, so
   a caller that tuned its environment harder keeps its knobs. *)
let sim_minor_heap_words = 4 * 1024 * 1024 (* 32 MB on 64-bit *)

let sim_space_overhead = 200

let tune_gc () =
  let c = Gc.get () in
  if
    c.Gc.minor_heap_size < sim_minor_heap_words
    || c.Gc.space_overhead < sim_space_overhead
  then
    Gc.set
      {
        c with
        Gc.minor_heap_size = max c.Gc.minor_heap_size sim_minor_heap_words;
        space_overhead = max c.Gc.space_overhead sim_space_overhead;
      }

let rec worker_loop t =
  Mutex.lock t.lock;
  let rec take () =
    match Queue.take_opt t.queue with
    | Some job -> Some job
    | None ->
        if t.closed then None
        else begin
          Condition.wait t.work_ready t.lock;
          take ()
        end
  in
  match take () with
  | None -> Mutex.unlock t.lock
  | Some job ->
      Mutex.unlock t.lock;
      job ();
      worker_loop t

let create ~workers =
  if workers < 1 then invalid_arg "Sim.Pool.create: workers < 1";
  let t =
    {
      lock = Mutex.create ();
      work_ready = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init workers
      (fun _ ->
        Domain.spawn (fun () ->
            tune_gc ();
            worker_loop t));
  t

let submit t f =
  let p =
    { p_lock = Mutex.create (); p_cond = Condition.create ();
      p_state = Pending }
  in
  let slot = ref None in
  let job () =
    let state =
      match f () with
      | v ->
          slot := Some v;
          Done
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock p.p_lock;
    p.p_state <- state;
    Condition.signal p.p_cond;
    Mutex.unlock p.p_lock
  in
  Mutex.lock t.lock;
  if t.closed then begin
    Mutex.unlock t.lock;
    invalid_arg "Sim.Pool.submit: pool is shut down"
  end;
  Queue.add job t.queue;
  Condition.signal t.work_ready;
  Mutex.unlock t.lock;
  (p, slot)

let await (p, slot) =
  Mutex.lock p.p_lock;
  while (match p.p_state with Pending -> true | _ -> false) do
    Condition.wait p.p_cond p.p_lock
  done;
  let state = p.p_state in
  Mutex.unlock p.p_lock;
  match state with
  | Done -> (
      match !slot with Some v -> Ok v | None -> assert false)
  | Failed (e, bt) -> Error (e, bt)
  | Pending -> assert false

let shutdown t =
  Mutex.lock t.lock;
  t.closed <- true;
  Condition.broadcast t.work_ready;
  Mutex.unlock t.lock;
  Array.iter Domain.join t.workers

let run ?jobs thunks =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  let n = List.length thunks in
  if jobs <= 1 || n <= 1 then List.map (fun f -> f ()) thunks
  else begin
    let t = create ~workers:(min jobs n) in
    let outcomes =
      Fun.protect
        ~finally:(fun () -> shutdown t)
        (fun () ->
          let promises = List.map (submit t) thunks in
          List.map await promises)
    in
    (* Re-raise the first failure in submission order, after every job
       has finished (a failed job never aborts its siblings mid-run). *)
    List.map
      (function
        | Ok v -> v
        | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
      outcomes
  end

let map ?jobs f items = run ?jobs (List.map (fun x () -> f x) items)
