(** Discrete-event simulation engine.

    Simulation activities are ordinary OCaml functions that run as
    cooperative processes on top of OCaml 5 effect handlers: calling a
    blocking primitive ([sleep], [await], [suspend], [Cpu.consume], …)
    performs an effect that captures the continuation and parks it until
    the corresponding event fires on the virtual clock. Engine state is
    domain-local: each domain can drive at most one engine at a time, and
    engines on different domains are fully independent (this is what lets
    {!Pool} run simulations in parallel). All primitives below must be
    called from within [run] on the same domain.

    Determinism: events at equal times fire in scheduling order, and all
    randomness flows through explicit {!Rng.t} values, so a run is a pure
    function of its inputs. *)

type token
(** Handle for a scheduled callback; see {!cancel}. *)

val run : ?until:float -> (unit -> unit) -> float
(** [run main] executes [main] as the initial process at virtual time 0
    and drives the event loop until the queue is empty (or [until] is
    reached, whichever comes first). Returns the final clock value.
    Exceptions raised by any process abort the run and propagate.
    Processes still blocked when the queue drains are dropped — a
    simulation ends when no more events can fire. *)

val run_partitioned :
  ?jobs:int ->
  ?adaptive:bool ->
  lookahead:float ->
  partitions:int ->
  (unit -> unit) ->
  float
(** Conservative-synchronization parallel run: [partitions] host
    partitions plus partition 0 (dom0/global, where [main] starts),
    each with its own heap, clock and pid space. The coordinator
    repeatedly opens the window [T, T + lookahead) — [T] the earliest
    pending event anywhere — and every partition with events in the
    window executes them, on up to [jobs] worker domains ([jobs <= 1]
    runs the windows inline, in partition order: the deterministic
    reference schedule). Cross-partition events travel via {!post}
    (delay >= lookahead, enforced) and are merged at the window barrier
    in (time, source partition, per-source order) — so the run is
    bit-identical for every [jobs]. [stop] from any partition ends the
    run at the round boundary. Returns the largest partition clock.
    Tracing hooks only observe windows run on the calling domain; use
    [jobs:1] when tracing.

    [adaptive] (default [true]) sizes windows from the observed
    cross-partition traffic density: a round whose base window holds
    events of only one partition grows to absorb the consecutive
    single-active fixed-lookahead rounds that would follow it — one
    barrier instead of one per lookahead — and shrinks back to the
    fixed window as soon as a second partition has work. Growth stops
    at the earliest foreign event and at the first cross-partition
    send's virtual round boundary, so every event still executes in
    the virtual fixed round it would have executed in and sends merge
    in the same batches: output is bit-identical with [adaptive] on or
    off (pinned by the qcheck matrix in test/test_partition.ml). *)

(** {2 Checkpoint / resume}

    A quiesced simulation — no parked effect continuations, only plain
    event thunks in the heap(s) — can be captured as a {!saved} value
    and resumed later, any number of times. The contract: resuming a
    captured prefix with a suffix [main] produces bit-identical model
    state and output to the unbroken run that executed the prefix and
    suffix in one simulation (the suffix runs at the restored clock
    before any same-time image event, exactly as the unbroken run's
    prefix process continues inline into its suffix; relative event
    order, per-partition clocks and cross-partition merge batches are
    all preserved, for every [jobs] count and with [adaptive] on or
    off). {!Checkpoint} turns a [saved] value plus the model roots it
    references into bytes on disk. *)

type saved
(** Captured engine state: per-partition clocks, pid/outbox counters
    and live heap entries in pop order. The thunks are ordinary
    closures over model state; a [saved] value is only as quiesced as
    the run that produced it (see {!Checkpoint.freeze}). *)

val run_capture : ?until:float -> (unit -> unit) -> float * saved
(** {!run}, additionally capturing the engine state at exit (after
    [stop] or queue drain). A capture taken from a [~until]-bounded run
    resumes unbounded. *)

val run_partitioned_capture :
  ?jobs:int ->
  ?adaptive:bool ->
  lookahead:float ->
  partitions:int ->
  (unit -> unit) ->
  float * saved
(** {!run_partitioned}, additionally capturing every partition's state
    at exit. Outboxes are always empty at round barriers, so the heaps
    and clocks are the whole synchronization state. *)

val resume : ?jobs:int -> ?adaptive:bool -> saved -> (unit -> unit) -> float
(** [resume saved main] rebuilds the engine(s) from [saved] and runs
    [main] as the suffix process in partition 0 at the restored clock.
    Plain captures resume on a plain engine; partitioned captures
    resume under the same lookahead with [jobs] workers. Returns the
    final (largest) clock. A [saved] value may be resumed any number of
    times, but the closures it holds share model state: to fork
    independent variants, deep-copy the image first
    ({!Checkpoint.fork}). *)

val resume_capture :
  ?jobs:int -> ?adaptive:bool -> saved -> (unit -> unit) -> float * saved
(** {!resume} that captures again at exit — the chaining primitive for
    incremental prefixes (boot to N, snapshot, extend to M, snapshot). *)

val saved_partitions : saved -> int option
(** [None] for a plain capture, [Some n] for a partitioned capture with
    [n] host partitions. *)

val current_partition : unit -> int
(** The partition the calling process/callback runs in; 0 outside
    partitioned runs (everything is the global partition). *)

val partition_count : unit -> int
(** Number of host partitions of the enclosing {!run_partitioned} (not
    counting partition 0); 0 in a plain {!run}. *)

val post : partition:int -> delay:float -> (unit -> unit) -> unit
(** Schedule a callback in another partition after [delay] of simulated
    time. Same-partition posts (and posts in plain runs) are exactly
    [after delay]. Cross-partition posts require [delay >=] the run's
    lookahead and are delivered at the next window barrier;
    [Invalid_argument] otherwise — the switch's modeled latency is the
    lookahead, so in-model traffic always qualifies. *)

val spawn_in :
  ?name:string -> partition:int -> delay:float -> (unit -> unit) -> unit
(** [post] whose callback starts [f] as a fresh process in the target
    partition (pid allocated from that partition's counter). *)

val running : unit -> bool

val now : unit -> float
(** Current virtual time in seconds. *)

val sleep : float -> unit
(** Block the calling process for a (non-negative) duration. *)

val yield : unit -> unit
(** Reschedule the calling process behind events already due now. *)

val stop : unit -> unit
(** Terminate the event loop after the current event: pending events
    (including other processes' wakeups) are discarded. The way to end
    a simulation that still has periodic background activity. *)

val spawn : ?name:string -> (unit -> unit) -> unit
(** Start a new process at the current time. [name] labels error
    messages. *)

val self_pid : unit -> int
(** Small integer id of the calling simulation process; pids are
    allocated in spawn order starting from 1 ([main] is 1) and reset on
    each {!run}. Returns 0 from non-process callbacks ({!after}/{!at}
    thunks) and outside any simulation. *)

val self_name : unit -> string
(** Name of the calling process ("engine" outside any process). *)

(** Lifecycle callbacks for an external tracer: [on_spawn] fires when a
    process first executes, [on_park] when it blocks on {!suspend} (and
    everything built on it), [on_wake] when its resume function is
    called. The engine never depends on the tracer; hooks default to
    [None]. *)
type trace_hooks = {
  on_spawn : pid:int -> name:string -> unit;
  on_park : pid:int -> unit;
  on_wake : pid:int -> unit;
}

val set_trace_hooks : trace_hooks option -> unit
(** Install (or clear) the hooks for the calling domain only: worker
    domains spawned by {!Pool} start with no hooks, so tracing a
    sequential run never races with parallel workers. *)

val after : float -> (unit -> unit) -> token
(** Run a callback (not a blocking process) after a delay. The callback
    must not block; to start blocking work from a callback, [spawn]. *)

val at : float -> (unit -> unit) -> token
(** Like {!after} with an absolute timestamp (>= now). *)

val cancel : token -> unit

val suspend : (('a -> unit) -> unit) -> 'a
(** [suspend register] blocks the calling process and hands [register] a
    one-shot [resume] function. Calling [resume v] (from a callback or
    another process, at any later virtual time) schedules the process to
    continue with value [v]. This is the primitive from which all other
    blocking constructs are built. In a partitioned run [resume] must be
    called from the process's own partition (raises [Invalid_argument]
    otherwise): to wake a process across partitions, [post] a callback
    into its partition and resume from there. *)

type process_local = ..
(** Values a process carries across suspensions, inherited by the
    processes it spawns. An open variant: each client declares its own
    constructor (e.g. the fault injector's current stream set). *)

val with_process_local : process_local -> (unit -> 'a) -> 'a
(** Push a value onto the calling process's local stack for the extent
    of [f]. Unlike domain-local state, the value survives suspensions
    (it travels with the continuation, even across worker domains in a
    partitioned run) and is captured by [spawn] — children inherit the
    spawning process's locals. Usable outside a simulation too, where
    it is plain dynamic scoping. *)

val find_process_local : (process_local -> 'a option) -> 'a option
(** First match in the calling process's locals, innermost first. *)

(** Write-once cells for inter-process synchronisation. *)
module Ivar : sig
  type 'a t

  val create : unit -> 'a t

  val fill : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] when already filled. *)

  val read : 'a t -> 'a
  (** Blocks the calling process until filled. *)

  val peek : 'a t -> 'a option

  val is_full : 'a t -> bool
end

val wait_all : unit Ivar.t list -> unit
(** Block until every ivar in the list is filled. *)
