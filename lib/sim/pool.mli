(** Fixed-size worker pool over OCaml 5 domains (stdlib only:
    [Domain.spawn] + [Mutex]/[Condition] around a shared work queue).

    Each job is an independent closure — typically one whole simulation
    ({!Engine.run} is single-domain, and engine state is domain-local),
    so parallelism is across simulations: whole experiments, or the
    per-mode/per-curve sweeps inside one. Results are returned in
    submission order regardless of completion order, which keeps
    consumers' output bit-identical to a sequential run whatever the
    worker count. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] capped at 8 (and at least 1):
    the simulations are CPU-bound, so oversubscribing domains only adds
    scheduling noise. *)

val create : workers:int -> t
(** Spawn [workers] domains blocked on the queue. Each worker tunes its
    GC with {!tune_gc} before taking work. *)

val tune_gc : unit -> unit
(** Raise the calling domain's GC knobs to the simulation profile — a
    larger minor heap ([4M] words) and a lazier major GC
    ([space_overhead >= 200]) — so allocation-heavy event loops spend
    less time collecting scratch that is about to die. Knobs are only
    ever raised, never lowered; applied automatically on pool workers,
    and meant to be called once from a driver's main entry point for
    the sequential path. *)

val run : ?jobs:int -> (unit -> 'a) list -> 'a list
(** [run ~jobs thunks] executes every thunk and returns their results
    in input order. With [jobs <= 1] (or a single thunk) everything runs
    sequentially on the calling domain — no domains are spawned — so
    [run ~jobs:1] is the reference behaviour parallel runs must match.
    Otherwise a temporary pool of [min jobs (length thunks)] workers is
    created and shut down around the batch. If a thunk raises, every
    other job still runs to completion, then the first failure (in
    submission order) is re-raised with its original backtrace. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f items = run ~jobs (List.map (fun x () -> f x) items)]. *)

(** {1 Lower-level interface} *)

type promise
(** A handle for one submitted job (see {!submit}/{!await}). *)

val submit :
  t -> (unit -> 'a) -> promise * 'a option ref
(** Enqueue a job; the paired ref holds the result once the promise
    completes. Raises [Invalid_argument] after {!shutdown}. *)

val await :
  promise * 'a option ref ->
  ('a, exn * Printexc.raw_backtrace) result
(** Block the calling (OS) thread until the job finishes. *)

val shutdown : t -> unit
(** Close the queue, let the workers drain it, and join them. *)
