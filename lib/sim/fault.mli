(** Deterministic fault injection.

    A {e fault point} is a named site in the simulated control plane
    where a failure can be injected: XenStore transaction conflicts and
    quota errors, per-phase failures in the 9-phase creation pipeline,
    hotplug script hangs, event-channel / grant-table allocation
    failures, migration stream corruption. The full registry is
    {!points}; code declares a site by calling {!fire} with its name.

    A {e spec} assigns a schedule to a subset of points — either a
    per-check Bernoulli probability ([name:0.05]) or a deterministic
    period ([name:@k], fire on every k-th check). An {e injector}
    ({!type-t}) is a spec plus one independent {!Rng} stream per
    configured point, all derived from a single seed.

    Determinism invariant: faults consume only [Rng] state derived from
    the injector seed — never host entropy, wall-clock time or
    scheduling order across domains. A point that is not configured (or
    when no injector is installed) costs nothing and consumes no RNG
    state, so a run under the empty spec is bit-identical to a run with
    no fault layer at all. Two runs with equal [(seed, spec)] inject
    the same faults at the same checks.

    Injectors are installed per {e simulation process}
    ({!with_injector}): the current injector travels with a process
    across suspensions and is inherited by the processes it spawns, so
    a fault stream follows the workload it was installed around — not
    the worker domain that happens to execute it. Parallel experiment
    jobs and the partitions of a {!Engine.run_partitioned} therefore
    each own their streams, and results stay independent of [--jobs];
    {!derive} builds the per-partition injectors. *)

type spec
(** A parsed fault specification: a finite map from point name to
    schedule. Immutable. *)

type t
(** An injector: a {!type-spec} instantiated with per-point RNG streams and
    check/injection counters. Mutable (counters and RNG state advance
    on each configured check). *)

val points : (string * string) list
(** The registry of valid fault points as [(name, description)] pairs,
    in canonical order. {!parse_spec} rejects names not listed here. *)

val empty_spec : spec
(** The spec that configures no points. Running under [empty_spec] is
    observationally identical to running without an injector. *)

val spec_is_empty : spec -> bool

val parse_spec : string -> (spec, string) result
(** [parse_spec s] parses a comma-separated list of entries:

    - [name:P] with [0 <= P <= 1] — Bernoulli with probability [P];
    - [name:@K] with [K >= 1] — deterministically fire every [K]-th
      check of that point;
    - [name] alone — shorthand for [name:1] (always fire).

    [name] must match a registered point exactly, or be a prefix
    wildcard [prefix*] (e.g. [create.*]) expanding to every registered
    point with that prefix. The empty string parses to {!empty_spec}.
    Later entries override earlier ones for the same point. Returns
    [Error msg] on unknown names, wildcards matching nothing, or
    malformed schedules; never raises. *)

val spec_to_string : spec -> string
(** Canonical rendering (points in registry order), re-parseable by
    {!parse_spec}. [spec_to_string empty_spec = ""]. *)

val scale : spec -> float -> spec
(** [scale spec f] multiplies every Bernoulli probability by [f]
    (clamped to [1.0]) and divides every deterministic period by [f]
    (rounded up, floored at 1). [scale spec 0.0 = empty_spec].
    Requires [f >= 0]. Used by the [reliability] experiment family to
    sweep rising fault rates from one base spec. *)

val create : ?seed:int64 -> spec -> t
(** Build an injector. Each configured point gets an independent
    splitmix64 stream derived from [(seed, point name)] only, so the
    same [(seed, spec)] always yields the same fault sequence, whatever
    else the simulation does. [seed] defaults to [0L]. *)

val seed : t -> int64

val spec : t -> spec

val derive : t -> salt:int -> t
(** A fresh injector with the same spec whose streams are derived from
    [(seed t, salt)]: deterministic, and independent across salts. Used
    to give each partition of a partitioned cluster run its own fault
    streams (salt = host index), so injection depends only on the
    host's own workload, never on cross-host interleaving. Counters
    start at zero; the parent's are not shared. *)

val with_injector : t -> (unit -> 'a) -> 'a
(** [with_injector t f] installs [t] as the current injector for the
    extent of [f] (restoring the previous one after, even on
    exceptions). Inside a simulation the installation is per-process —
    it survives the process's suspensions and is inherited by processes
    spawned within the extent (see {!Engine.with_process_local});
    outside it is ordinary dynamic scoping on the calling domain.
    Nesting is allowed; the innermost wins. *)

val active : unit -> bool
(** Whether the calling process currently has an injector installed
    with a non-empty spec. *)

val fire : string -> bool
(** [fire name] declares one check of fault point [name] at the calling
    site and returns whether a fault fires. Returns [false] — without
    consuming RNG state, counting, or any other side effect — when no
    injector is installed for the calling process or the point is not
    configured in its spec. [name] must be a registered point: passing
    an unregistered name raises [Invalid_argument] (even uninstalled),
    so typos fail loudly in tests rather than silently never firing. *)

val counts : t -> (string * (int * int)) list
(** Per-point [(checks, injected)] counters for every {e configured}
    point, in registry order. Deterministic given [(seed, spec)] and
    the simulated workload. *)

val injected_total : t -> int
(** Total faults injected across all points. *)
