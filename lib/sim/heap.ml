type 'a entry = {
  time : float;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
  mutable departed : bool;
      (* returned by [pop]; cancelling it afterwards must not touch the
         live count *)
}

(* Slots beyond [len] hold [None]; a popped slot is reset to [None] so
   the heap never retains a payload it no longer owns. An earlier
   version kept a dummy entry built with [Obj.magic 0] as the array
   filler, which is undefined behaviour waiting to happen (flambda is
   free to propagate type information through it); the option array is
   the safe sentinel and costs nothing on the hot path because entries
   are boxed either way. *)
type 'a t = {
  mutable data : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () = { data = [||]; len = 0; next_seq = 0; live = 0 }

let size t = t.live

let is_empty t = t.live = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let get t i =
  match t.data.(i) with
  | Some e -> e
  | None -> assert false (* i < len by construction *)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt (get t i) (get t parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && lt (get t l) (get t !smallest) then smallest := l;
  if r < t.len && lt (get t r) (get t !smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let ensure_capacity t =
  let cap = Array.length t.data in
  if t.len >= cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let fresh = Array.make ncap None in
    Array.blit t.data 0 fresh 0 t.len;
    t.data <- fresh
  end

(* Drop every cancelled entry and re-establish the heap invariant
   (Floyd heapify). Pop order is a pure function of the [(time, seq)]
   keys, so compaction never changes what a simulation observes. *)
let compact t =
  let kept = ref 0 in
  for i = 0 to t.len - 1 do
    let e = get t i in
    if not e.cancelled then begin
      t.data.(!kept) <- t.data.(i);
      incr kept
    end
  done;
  for i = !kept to t.len - 1 do
    t.data.(i) <- None
  done;
  t.len <- !kept;
  for i = (t.len / 2) - 1 downto 0 do
    sift_down t i
  done

(* Cancel-heavy workloads (timeouts that almost always get cancelled,
   long pause/resume churn) would otherwise grow [data] without bound:
   cancelled entries are only reclaimed when they reach the top. Once
   more than half of the stored entries are dead, sweep them eagerly. *)
let maybe_compact t =
  if t.len >= 64 && t.len - t.live > t.len / 2 then compact t

let push t ~time payload =
  let entry =
    { time; seq = t.next_seq; payload; cancelled = false; departed = false }
  in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t;
  t.data.(t.len) <- Some entry;
  t.len <- t.len + 1;
  t.live <- t.live + 1;
  sift_up t (t.len - 1);
  entry

let pop_any t =
  if t.len = 0 then None
  else begin
    let top = get t 0 in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      t.data.(t.len) <- None;
      sift_down t 0
    end
    else t.data.(0) <- None;
    Some top
  end

let rec pop t =
  match pop_any t with
  | None -> None
  | Some entry ->
      if entry.cancelled then pop t
      else begin
        entry.departed <- true;
        t.live <- t.live - 1;
        Some (entry.time, entry.payload)
      end

let rec peek_time t =
  if t.len = 0 then None
  else begin
    let top = get t 0 in
    if top.cancelled then begin
      ignore (pop_any t);
      peek_time t
    end
    else Some top.time
  end

(* Non-destructive snapshot of the live entries in pop order. The
   order is the same (time, seq) key [pop] uses, so re-pushing the
   returned pairs into a fresh heap — in array order, with fresh
   sequence numbers — reproduces the exact pop order of this heap.
   That is the contract checkpoint/restore relies on. *)
let entries t =
  let out = ref [] in
  for i = 0 to t.len - 1 do
    let e = get t i in
    if not e.cancelled then out := e :: !out
  done;
  let arr = Array.of_list !out in
  Array.sort
    (fun a b ->
      match Float.compare a.time b.time with
      | 0 -> Int.compare a.seq b.seq
      | c -> c)
    arr;
  Array.map (fun e -> (e.time, e.payload)) arr

let cancel t entry =
  if not (entry.cancelled || entry.departed) then begin
    entry.cancelled <- true;
    t.live <- t.live - 1;
    maybe_compact t
  end

let cancelled entry = entry.cancelled
