(* 4-ary index heap. The ordering keys live in two parallel unboxed
   arrays — [times : float array] (flat float array, no per-element
   boxing) and [seqs : int array] — so a sift touches only contiguous
   scalar arrays; the payloads sit in a side table of slim handles that
   the comparison loop never reads. With 4 children per node the tree
   is half as deep as a binary heap and the children of [i] occupy the
   adjacent slots [4i+1 .. 4i+4], which is the cache-friendly part.

   The handle a caller gets back from [push] carries only the payload
   and a state word (live / cancelled / departed); cancellation flips
   the state without touching the arrays, exactly like the old boxed
   heap's [cancelled] flag. Pop order is the same pure function of the
   [(time, seq)] keys as before, so digests — and the [entries]
   pop-order contract checkpoint/restore depends on — are unchanged. *)

let state_live = 0
let state_cancelled = 1
let state_departed = 2

type 'a entry = { payload : 'a; mutable state : int }

(* Payload slots beyond [len] hold [None]; a popped slot is reset to
   [None] so the heap never retains a payload it no longer owns. An
   earlier version kept a dummy entry built with [Obj.magic 0] as the
   array filler, which is undefined behaviour waiting to happen
   (flambda is free to propagate type information through it); the
   option array is the safe sentinel and costs nothing on the hot path
   because the sift loops only read [times]/[seqs]. *)
type 'a t = {
  mutable times : float array;
  mutable seqs : int array;
  mutable ents : 'a entry option array;
  mutable len : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () =
  { times = [||]; seqs = [||]; ents = [||]; len = 0; next_seq = 0; live = 0 }

let size t = t.live

let is_empty t = t.live = 0

let capacity t = Array.length t.ents

let get t i =
  match t.ents.(i) with
  | Some e -> e
  | None -> assert false (* i < len by construction *)

(* Arrays only ever grew before this heap existed; a long-lived forked
   prefix image that drains from 10k guests to a handful would retain
   the peak-sized arrays forever. Halve once occupancy falls to a
   quarter of capacity (growth doubles at full, so the two policies
   leave a 2x hysteresis band and cannot thrash), and never shrink
   below a floor that keeps small heaps allocation-quiet. *)
let shrink_floor = 1024

let resize t ncap =
  let ntimes = Array.make ncap 0.0 in
  let nseqs = Array.make ncap 0 in
  let nents = Array.make ncap None in
  Array.blit t.times 0 ntimes 0 t.len;
  Array.blit t.seqs 0 nseqs 0 t.len;
  Array.blit t.ents 0 nents 0 t.len;
  t.times <- ntimes;
  t.seqs <- nseqs;
  t.ents <- nents

let maybe_shrink t =
  let cap = Array.length t.ents in
  if cap > shrink_floor && t.len <= cap / 4 then
    resize t (max shrink_floor (cap / 2))

let ensure_capacity t =
  let cap = Array.length t.ents in
  if t.len >= cap then resize t (if cap = 0 then 16 else 2 * cap)

(* Hole-based sift: bubble an empty slot through the arrays and write
   the moving key exactly once at its final position, instead of
   swapping three arrays at every level. *)
let sift_down_from t i time seq ent =
  let times = t.times and seqs = t.seqs and ents = t.ents in
  let len = t.len in
  let i = ref i in
  let continue = ref true in
  while !continue do
    let base = (!i * 4) + 1 in
    if base >= len then continue := false
    else begin
      let m = ref base in
      let mt = ref times.(base) in
      let ms = ref seqs.(base) in
      let last = if base + 3 < len - 1 then base + 3 else len - 1 in
      for c = base + 1 to last do
        let ct = times.(c) in
        if ct < !mt || (ct = !mt && seqs.(c) < !ms) then begin
          m := c;
          mt := ct;
          ms := seqs.(c)
        end
      done;
      if !mt < time || (!mt = time && !ms < seq) then begin
        times.(!i) <- !mt;
        seqs.(!i) <- !ms;
        ents.(!i) <- ents.(!m);
        i := !m
      end
      else continue := false
    end
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  ents.(!i) <- ent

(* Drop every cancelled entry and re-establish the heap invariant
   (Floyd heapify, over the 4-ary shape). Pop order is a pure function
   of the [(time, seq)] keys, so compaction never changes what a
   simulation observes. *)
let compact t =
  let kept = ref 0 in
  for i = 0 to t.len - 1 do
    let e = get t i in
    if e.state <> state_cancelled then begin
      let k = !kept in
      if k <> i then begin
        t.times.(k) <- t.times.(i);
        t.seqs.(k) <- t.seqs.(i);
        t.ents.(k) <- t.ents.(i)
      end;
      incr kept
    end
  done;
  for i = !kept to t.len - 1 do
    t.ents.(i) <- None
  done;
  t.len <- !kept;
  if t.len > 1 then
    for i = (t.len - 2) / 4 downto 0 do
      sift_down_from t i t.times.(i) t.seqs.(i) t.ents.(i)
    done;
  maybe_shrink t

(* Cancel-heavy workloads (timeouts that almost always get cancelled,
   long pause/resume churn) would otherwise grow the arrays without
   bound: cancelled entries are only reclaimed when they reach the top.
   Once more than half of the stored entries are dead, sweep them
   eagerly. *)
let maybe_compact t =
  if t.len >= 64 && t.len - t.live > t.len / 2 then compact t

let push t ~time payload =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let entry = { payload; state = state_live } in
  ensure_capacity t;
  let times = t.times and seqs = t.seqs and ents = t.ents in
  let i = ref t.len in
  t.len <- t.len + 1;
  t.live <- t.live + 1;
  let continue = ref true in
  while !continue && !i > 0 do
    let p = (!i - 1) / 4 in
    let pt = times.(p) in
    if time < pt || (time = pt && seq < seqs.(p)) then begin
      times.(!i) <- pt;
      seqs.(!i) <- seqs.(p);
      ents.(!i) <- ents.(p);
      i := p
    end
    else continue := false
  done;
  times.(!i) <- time;
  seqs.(!i) <- seq;
  ents.(!i) <- Some entry;
  entry

(* Remove the root whatever its state and hand it back; the caller
   decides whether it was a live pop or a lazy-cancel discard. *)
let drop_top t =
  let e = get t 0 in
  let n = t.len - 1 in
  t.len <- n;
  if n > 0 then begin
    let lt = t.times.(n) and ls = t.seqs.(n) and le = t.ents.(n) in
    t.ents.(n) <- None;
    sift_down_from t 0 lt ls le
  end
  else t.ents.(0) <- None;
  maybe_shrink t;
  e

let rec pop t =
  if t.len = 0 then None
  else begin
    let time = t.times.(0) in
    let e = drop_top t in
    if e.state = state_cancelled then pop t
    else begin
      e.state <- state_departed;
      t.live <- t.live - 1;
      Some (time, e.payload)
    end
  end

let rec pop_payload t =
  if t.len = 0 then invalid_arg "Heap.pop_payload: empty heap";
  let e = drop_top t in
  if e.state = state_cancelled then pop_payload t
  else begin
    e.state <- state_departed;
    t.live <- t.live - 1;
    e.payload
  end

let rec next_time t =
  if t.len = 0 then invalid_arg "Heap.next_time: no live entries";
  let e = get t 0 in
  if e.state = state_cancelled then begin
    ignore (drop_top t);
    next_time t
  end
  else t.times.(0)

let rec peek_time t =
  if t.len = 0 then None
  else begin
    let e = get t 0 in
    if e.state = state_cancelled then begin
      ignore (drop_top t);
      peek_time t
    end
    else Some t.times.(0)
  end

(* Non-destructive snapshot of the live entries in pop order. The
   order is the same (time, seq) key [pop] uses, so re-pushing the
   returned pairs into a fresh heap — in array order, with fresh
   sequence numbers — reproduces the exact pop order of this heap.
   That is the contract checkpoint/restore relies on. *)
let entries t =
  let out = ref [] in
  for i = 0 to t.len - 1 do
    let e = get t i in
    if e.state = state_live then
      out := (t.times.(i), t.seqs.(i), e.payload) :: !out
  done;
  let arr = Array.of_list !out in
  Array.sort
    (fun (t1, s1, _) (t2, s2, _) ->
      match Float.compare t1 t2 with 0 -> Int.compare s1 s2 | c -> c)
    arr;
  Array.map (fun (time, _, payload) -> (time, payload)) arr

let cancel t entry =
  if entry.state = state_live then begin
    entry.state <- state_cancelled;
    t.live <- t.live - 1;
    maybe_compact t
  end

let cancelled entry = entry.state = state_cancelled
