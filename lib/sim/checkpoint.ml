(* Versioned serializer for quiesced simulation state.

   An image is the Marshal encoding (with [Closures]) of one value —
   typically [(Engine.saved, model roots)] — so every bit of sharing
   between heap thunks and the model objects they close over is
   preserved: a thawed heap wakes up pointing at the thawed model, not
   at a second copy. Closure marshalling ties the bytes to the exact
   producing binary; the on-disk header records the executable digest
   (plus a format version and the producing config) and [load] refuses
   anything that does not match, instead of deserializing garbage. *)

type error =
  | Not_quiesced of string
  | Bad_magic
  | Version_mismatch of { found : int; expected : int }
  | Binary_mismatch
  | Config_mismatch of { found : string; expected : string }
  | Io_error of string

let error_to_string = function
  | Not_quiesced msg ->
      "simulation is not quiesced (unmarshalable state in the image): " ^ msg
  | Bad_magic -> "not a lightvm snapshot (bad magic)"
  | Version_mismatch { found; expected } ->
      Printf.sprintf "snapshot format version %d, this binary expects %d"
        found expected
  | Binary_mismatch ->
      "snapshot was produced by a different binary (closure images are \
       only valid in the executable that wrote them)"
  | Config_mismatch { found; expected } ->
      Printf.sprintf "snapshot config mismatch: file has %S, expected %S"
        found expected
  | Io_error msg -> "snapshot i/o error: " ^ msg

(* The trailing byte doubles as a container version, distinct from
   [format_version] which covers the header record and payload shape. *)
let magic = "LVMSNAP\x01"

let format_version = 1

type header = {
  h_version : int;
  h_binary : Digest.t; (* of the producing executable *)
  h_config : string; (* producing config, in the clear *)
  h_config_digest : Digest.t; (* of [h_config]: header integrity *)
}

let self_digest = lazy (Digest.file Sys.executable_name)

let freeze payload =
  match Marshal.to_string payload [ Marshal.Closures ] with
  | bytes -> Ok bytes
  | exception Invalid_argument msg -> Error (Not_quiesced msg)
  | exception Failure msg -> Error (Not_quiesced msg)

let thaw bytes =
  match Marshal.from_string bytes 0 with
  | v -> Ok v
  | exception Invalid_argument msg -> Error (Io_error msg)
  | exception Failure msg -> Error (Io_error msg)

let fork payload = Result.bind (freeze payload) thaw

let save_bytes ~path ~config bytes =
  try
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc magic;
        output_value oc
          {
            h_version = format_version;
            h_binary = Lazy.force self_digest;
            h_config = config;
            h_config_digest = Digest.string config;
          };
        output_string oc bytes);
    Ok ()
  with Sys_error msg -> Error (Io_error msg)

let save ~path ~config payload =
  match freeze payload with
  | Error err -> Error err
  | Ok bytes -> save_bytes ~path ~config bytes

let read_header ic =
  let m = Bytes.create (String.length magic) in
  match really_input ic m 0 (String.length magic) with
  | exception End_of_file -> Error Bad_magic
  | () -> (
      if not (String.equal (Bytes.to_string m) magic) then Error Bad_magic
      else
        match (input_value ic : header) with
        | exception _ -> Error (Io_error "truncated or corrupt header")
        | h ->
            if h.h_version <> format_version then
              Error
                (Version_mismatch
                   { found = h.h_version; expected = format_version })
            else if not (Digest.equal h.h_config_digest (Digest.string h.h_config))
            then Error (Io_error "corrupt header (config digest)")
            else if not (Digest.equal h.h_binary (Lazy.force self_digest)) then
              Error Binary_mismatch
            else Ok h)

let with_in path f =
  match open_in_bin path with
  | exception Sys_error msg -> Error (Io_error msg)
  | ic -> Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let inspect ~path =
  with_in path (fun ic ->
      Result.map (fun h -> h.h_config) (read_header ic))

let load_bytes ?expect_config ~path () =
  with_in path (fun ic ->
      match read_header ic with
      | Error err -> Error err
      | Ok h -> (
          match expect_config with
          | Some c when not (String.equal c h.h_config) ->
              Error (Config_mismatch { found = h.h_config; expected = c })
          | _ -> (
              match In_channel.input_all ic with
              | exception Sys_error msg -> Error (Io_error msg)
              | bytes -> Ok (h.h_config, bytes))))

let load ?expect_config ~path () =
  match load_bytes ?expect_config ~path () with
  | Error err -> Error err
  | Ok (config, bytes) -> Result.map (fun v -> (config, v)) (thaw bytes)
