type eng = {
  mutable clock : float;
  heap : (unit -> unit) Heap.t;
  mutable stopped : bool;
  mutable horizon : float; (* [run ~until]; infinity when unbounded *)
}

type token = (unit -> unit) Heap.entry * eng

(* Process identity, for tracers: every [exec]'d process (the initial
   [main] and every [spawn]) gets a small integer id; callbacks run as
   pid 0 ("engine"). The hooks fire on process lifecycle transitions so
   an external tracer can count spawns/parks/wakes without the engine
   depending on it. *)
type trace_hooks = {
  on_spawn : pid:int -> name:string -> unit;
  on_park : pid:int -> unit;
  on_wake : pid:int -> unit;
}

(* All engine bookkeeping is domain-local: each domain can drive (at
   most) one simulation, and simulations on different domains never
   share state, which is what lets Pool run independent experiments in
   parallel with bit-identical results. *)
type dls = {
  mutable current : eng option;
  mutable next_pid : int;
  mutable current_pid : int;
  mutable current_pname : string;
  mutable hooks : trace_hooks option;
}

let dls_key =
  Domain.DLS.new_key (fun () ->
      {
        current = None;
        next_pid = 1;
        current_pid = 0;
        current_pname = "engine";
        hooks = None;
      })

let dls () = Domain.DLS.get dls_key

let set_trace_hooks h = (dls ()).hooks <- h

let self_pid () = (dls ()).current_pid

let self_name () = (dls ()).current_pname

let get_eng () =
  match (dls ()).current with
  | Some e -> e
  | None -> invalid_arg "Sim.Engine: no simulation is running"

let running () = (dls ()).current <> None

let now () = (get_eng ()).clock

let schedule_at eng time thunk =
  if time < eng.clock then
    invalid_arg
      (Printf.sprintf "Sim.Engine: scheduling in the past (%g < %g)" time
         eng.clock);
  Heap.push eng.heap ~time thunk

let at time thunk =
  let eng = get_eng () in
  (schedule_at eng time thunk, eng)

let after delay thunk =
  let eng = get_eng () in
  if delay < 0. then invalid_arg "Sim.Engine.after: negative delay";
  (schedule_at eng (eng.clock +. delay) thunk, eng)

let cancel (entry, eng) = Heap.cancel eng.heap entry

type _ Effect.t +=
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let suspend register = Effect.perform (Suspend register)

(* Run [f] with the process identity set to [pid]/[name]; restores the
   caller's identity on return (also on exception), so identity always
   reflects whichever process the scheduler is actually executing. *)
let as_process pid name f =
  let st = dls () in
  let saved_pid = st.current_pid and saved_name = st.current_pname in
  st.current_pid <- pid;
  st.current_pname <- name;
  Fun.protect
    ~finally:(fun () ->
      st.current_pid <- saved_pid;
      st.current_pname <- saved_name)
    f

(* Each process (the initial [main] and every [spawn]) runs under its own
   deep handler. A blocked process is represented solely by its captured
   continuation, stashed wherever [register] put the resume function. *)
let exec name f =
  let open Effect.Deep in
  let st = dls () in
  let pid = st.next_pid in
  st.next_pid <- pid + 1;
  (match st.hooks with Some h -> h.on_spawn ~pid ~name | None -> ());
  as_process pid name (fun () ->
      match_with f ()
        {
          retc = (fun () -> ());
          exnc =
            (fun e ->
              (match e with
              | Stack_overflow | Out_of_memory -> ()
              | _ ->
                  Printf.eprintf "Sim process %S raised: %s\n%!" name
                    (Printexc.to_string e));
              raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Suspend register ->
                  Some
                    (fun (k : (a, unit) continuation) ->
                      (match st.hooks with
                      | Some h -> h.on_park ~pid
                      | None -> ());
                      let fired = ref false in
                      register (fun v ->
                          if !fired then
                            invalid_arg
                              "Sim.Engine: one-shot resume called twice";
                          fired := true;
                          let eng = get_eng () in
                          (match (dls ()).hooks with
                          | Some h -> h.on_wake ~pid
                          | None -> ());
                          ignore
                            (schedule_at eng eng.clock (fun () ->
                                 as_process pid name (fun () ->
                                     continue k v)))))
              | _ -> None);
        })

let spawn ?(name = "anonymous") f =
  let eng = get_eng () in
  ignore (schedule_at eng eng.clock (fun () -> exec name f))

(* Sleeping is the single hottest engine operation (every simulated
   cost charge is a sleep), so the common case — nothing else is
   scheduled to run before we would wake — advances the clock in place
   instead of parking through the heap. This is observably equivalent:
   the suspend path would push a wake entry whose (time, seq) key beats
   every later push, so when no existing entry has time <= wake the pop
   order is exactly "resume this task next". The fast path is skipped
   when process-lifecycle hooks are installed (tracers count park/wake
   transitions), after [stop] (a parked task must never resume), and
   when waking would cross the [run ~until] horizon (the park-forever
   behaviour is the contract there). *)
let sleep delay =
  if delay < 0. then invalid_arg "Sim.Engine.sleep: negative delay"
  else if delay = 0. then ()
  else begin
    let st = dls () in
    let eng =
      match st.current with
      | Some e -> e
      | None -> invalid_arg "Sim.Engine: no simulation is running"
    in
    let wake = eng.clock +. delay in
    let idle =
      match Heap.peek_time eng.heap with
      | None -> true
      | Some t -> t > wake
    in
    if idle && st.hooks = None && (not eng.stopped) && wake <= eng.horizon
    then eng.clock <- wake
    else suspend (fun resume -> ignore (after delay (fun () -> resume ())))
  end

let yield () = suspend (fun resume -> ignore (after 0. (fun () -> resume ())))

let stop () = (get_eng ()).stopped <- true

let run ?until main =
  let st = dls () in
  (match st.current with
  | Some _ -> invalid_arg "Sim.Engine.run: a simulation is already running"
  | None -> ());
  let horizon = match until with Some t -> t | None -> infinity in
  let eng = { clock = 0.; heap = Heap.create (); stopped = false; horizon } in
  st.current <- Some eng;
  st.next_pid <- 1;
  Fun.protect
    ~finally:(fun () -> st.current <- None)
    (fun () ->
      ignore (schedule_at eng 0. (fun () -> exec "main" main));
      let rec loop () =
        if eng.stopped then ()
        else
        match Heap.pop eng.heap with
        | None -> ()
        | Some (time, thunk) ->
            if time > horizon then eng.clock <- horizon
            else begin
              eng.clock <- time;
              thunk ();
              loop ()
            end
      in
      loop ();
      eng.clock)

module Ivar = struct
  type 'a state =
    | Empty of ('a -> unit) list
    | Full of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Sim.Engine.Ivar.fill: already filled"
    | Empty waiters ->
        t.state <- Full v;
        (* Wake in arrival order for determinism. *)
        List.iter (fun resume -> resume v) (List.rev waiters)

  let read t =
    match t.state with
    | Full v -> v
    | Empty _ ->
        suspend (fun resume ->
            match t.state with
            | Full v -> resume v
            | Empty waiters -> t.state <- Empty (resume :: waiters))

  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let is_full t = match t.state with Full _ -> true | Empty _ -> false
end

let wait_all ivars = List.iter Ivar.read ivars
