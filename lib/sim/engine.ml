type out_msg = {
  out_time : float;
  out_seq : int; (* per-source posting order *)
  out_target : int;
  out_thunk : unit -> unit;
}

type eng = {
  mutable clock : float;
  heap : (unit -> unit) Heap.t;
  mutable stopped : bool;
  mutable horizon : float; (* [run ~until]; infinity when unbounded *)
  mutable wend : float;
      (* current synchronization-window end for partitioned runs;
         infinity for plain runs and between windows *)
  mutable next_pid : int;
      (* per-engine so pid allocation is independent of how partitions
         interleave across worker domains *)
  mutable out_seq : int;
  mutable outbox : out_msg list; (* reversed; merged at the barrier *)
}

let fresh_eng ?(horizon = infinity) () =
  {
    clock = 0.;
    heap = Heap.create ();
    stopped = false;
    horizon;
    wend = infinity;
    next_pid = 1;
    out_seq = 0;
    outbox = [];
  }

type token = (unit -> unit) Heap.entry * eng

(* Process identity, for tracers: every [exec]'d process (the initial
   [main] and every [spawn]) gets a small integer id; callbacks run as
   pid 0 ("engine"). The hooks fire on process lifecycle transitions so
   an external tracer can count spawns/parks/wakes without the engine
   depending on it. *)
type trace_hooks = {
  on_spawn : pid:int -> name:string -> unit;
  on_park : pid:int -> unit;
  on_wake : pid:int -> unit;
}

(* A partitioned run: one engine per partition (index 0 is the
   dom0/global partition, 1..n the declared partitions), coupled only
   through [post]ed cross-partition messages. *)
type pctx = {
  engs : eng array;
  lookahead : float;
}

(* Values a process can carry across suspensions (see
   [with_process_local]): an open extensible variant so clients (the
   fault injector) add their own cases without the engine knowing. *)
type process_local = ..

(* All engine bookkeeping is domain-local: a domain drives (at most)
   one engine at a time, and engines on different domains never share
   state, which is what lets Pool run independent experiments in
   parallel with bit-identical results. Partitioned runs move a
   partition's engine from domain to domain between windows, so nothing
   below may close over the [dls] record itself — closures that outlive
   the current event (continuations, resume functions, spawned thunks)
   always re-read [dls ()] at execution time. *)
type dls = {
  mutable current : eng option;
  mutable pctx : pctx option;
  mutable cur_idx : int; (* partition index the domain is executing *)
  mutable current_pid : int;
  mutable current_pname : string;
  mutable plocals : process_local list;
  mutable hooks : trace_hooks option;
}

let dls_key =
  Domain.DLS.new_key (fun () ->
      {
        current = None;
        pctx = None;
        cur_idx = 0;
        current_pid = 0;
        current_pname = "engine";
        plocals = [];
        hooks = None;
      })

let dls () = Domain.DLS.get dls_key

let set_trace_hooks h = (dls ()).hooks <- h

let self_pid () = (dls ()).current_pid

let self_name () = (dls ()).current_pname

let get_eng () =
  match (dls ()).current with
  | Some e -> e
  | None -> invalid_arg "Sim.Engine: no simulation is running"

let running () = (dls ()).current <> None

let now () = (get_eng ()).clock

let current_partition () = (dls ()).cur_idx

let partition_count () =
  match (dls ()).pctx with
  | None -> 0
  | Some ctx -> Array.length ctx.engs - 1

let schedule_at eng time thunk =
  if time < eng.clock then
    invalid_arg
      (Printf.sprintf "Sim.Engine: scheduling in the past (%g < %g)" time
         eng.clock);
  Heap.push eng.heap ~time thunk

let at time thunk =
  let eng = get_eng () in
  (schedule_at eng time thunk, eng)

let after delay thunk =
  let eng = get_eng () in
  if delay < 0. then invalid_arg "Sim.Engine.after: negative delay";
  (schedule_at eng (eng.clock +. delay) thunk, eng)

let cancel (entry, eng) = Heap.cancel eng.heap entry

type _ Effect.t +=
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let suspend register = Effect.perform (Suspend register)

(* Run [f] with the process identity (and its process-local values) set
   to [pid]/[name]/[plocals]; restores the caller's identity on return
   (also on exception), so identity always reflects whichever process
   the scheduler is actually executing. Reads [dls ()] fresh on both
   sides: between a park and a resume the process may have moved to a
   different worker domain. *)
let as_process pid name plocals f =
  let st = dls () in
  let saved_pid = st.current_pid
  and saved_name = st.current_pname
  and saved_plocals = st.plocals in
  st.current_pid <- pid;
  st.current_pname <- name;
  st.plocals <- plocals;
  Fun.protect
    ~finally:(fun () ->
      let st = dls () in
      st.current_pid <- saved_pid;
      st.current_pname <- saved_name;
      st.plocals <- saved_plocals)
    f

let with_process_local local f =
  let st = dls () in
  let saved = st.plocals in
  st.plocals <- local :: saved;
  Fun.protect ~finally:(fun () -> (dls ()).plocals <- saved) f

let find_process_local sel =
  let rec go = function
    | [] -> None
    | l :: rest -> ( match sel l with Some _ as r -> r | None -> go rest)
  in
  go (dls ()).plocals

(* Each process (the initial [main] and every [spawn]) runs under its own
   deep handler. A blocked process is represented solely by its captured
   continuation, stashed wherever [register] put the resume function. *)
let exec ?(plocals = []) name f =
  let open Effect.Deep in
  let eng = get_eng () in
  let pid = eng.next_pid in
  eng.next_pid <- pid + 1;
  (match (dls ()).hooks with Some h -> h.on_spawn ~pid ~name | None -> ());
  as_process pid name plocals (fun () ->
      match_with f ()
        {
          retc = (fun () -> ());
          exnc =
            (fun e ->
              (match e with
              | Stack_overflow | Out_of_memory -> ()
              | _ ->
                  Printf.eprintf "Sim process %S raised: %s\n%!" name
                    (Printexc.to_string e));
              raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Suspend register ->
                  Some
                    (fun (k : (a, unit) continuation) ->
                      let st = dls () in
                      (match st.hooks with
                      | Some h -> h.on_park ~pid
                      | None -> ());
                      (* The process's home partition and its local
                         values at park time travel with the
                         continuation. *)
                      let home = get_eng () in
                      let pl = st.plocals in
                      let fired = ref false in
                      register (fun v ->
                          if !fired then
                            invalid_arg
                              "Sim.Engine: one-shot resume called twice";
                          fired := true;
                          let cur = get_eng () in
                          if cur != home then
                            invalid_arg
                              "Sim.Engine: cross-partition resume — wake \
                               a process from its own partition (via \
                               [post]) instead";
                          (match (dls ()).hooks with
                          | Some h -> h.on_wake ~pid
                          | None -> ());
                          ignore
                            (schedule_at home home.clock (fun () ->
                                 as_process pid name pl (fun () ->
                                     continue k v)))))
              | _ -> None);
        })

let spawn ?(name = "anonymous") f =
  let eng = get_eng () in
  let pl = (dls ()).plocals in
  ignore
    (schedule_at eng eng.clock (fun () -> exec ~plocals:pl name f))

(* Cross-partition scheduling. Within a partition (or outside any
   partitioned run) this is just [after]. Across partitions the thunk
   goes to the source engine's outbox and is merged into the target's
   heap at the end of the window, so the delay must cover the lookahead
   — otherwise the target may already have advanced past the arrival
   time. Merging sorts by (time, source partition, per-source posting
   order), making cross-partition delivery order a pure function of the
   workload, independent of [--jobs]. *)
let post ~partition ~delay thunk =
  if delay < 0. then invalid_arg "Sim.Engine.post: negative delay";
  let st = dls () in
  match st.pctx with
  | None -> ignore (after delay thunk)
  | Some ctx ->
      if partition < 0 || partition >= Array.length ctx.engs then
        invalid_arg
          (Printf.sprintf "Sim.Engine.post: unknown partition %d" partition);
      if partition = st.cur_idx then ignore (after delay thunk)
      else begin
        if delay < ctx.lookahead then
          invalid_arg
            (Printf.sprintf
               "Sim.Engine.post: cross-partition delay %g below the \
                lookahead %g"
               delay ctx.lookahead);
        let eng = get_eng () in
        eng.outbox <-
          {
            out_time = eng.clock +. delay;
            out_seq = eng.out_seq;
            out_target = partition;
            out_thunk = thunk;
          }
          :: eng.outbox;
        eng.out_seq <- eng.out_seq + 1
      end

let spawn_in ?(name = "anonymous") ~partition ~delay f =
  post ~partition ~delay (fun () -> exec name f)

(* Sleeping is the single hottest engine operation (every simulated
   cost charge is a sleep), so the common case — nothing else is
   scheduled to run before we would wake — advances the clock in place
   instead of parking through the heap. This is observably equivalent:
   the suspend path would push a wake entry whose (time, seq) key beats
   every later push, so when no existing entry has time <= wake the pop
   order is exactly "resume this task next". The fast path is skipped
   when process-lifecycle hooks are installed (tracers count park/wake
   transitions), after [stop] (a parked task must never resume), when
   waking would cross the [run ~until] horizon (the park-forever
   behaviour is the contract there), and when waking would cross the
   current synchronization window (the wake entry must stay in the heap
   so the next window's start time accounts for it). *)
let sleep delay =
  if delay < 0. then invalid_arg "Sim.Engine.sleep: negative delay"
  else if delay = 0. then ()
  else begin
    let st = dls () in
    let eng =
      match st.current with
      | Some e -> e
      | None -> invalid_arg "Sim.Engine: no simulation is running"
    in
    let wake = eng.clock +. delay in
    let idle =
      match Heap.peek_time eng.heap with
      | None -> true
      | Some t -> t > wake
    in
    if
      idle && st.hooks = None
      && (not eng.stopped)
      && wake <= eng.horizon
      && wake < eng.wend
    then eng.clock <- wake
    else suspend (fun resume -> ignore (after delay (fun () -> resume ())))
  end

let yield () = suspend (fun resume -> ignore (after 0. (fun () -> resume ())))

let stop () = (get_eng ()).stopped <- true

let run ?until main =
  let st = dls () in
  (match st.current with
  | Some _ -> invalid_arg "Sim.Engine.run: a simulation is already running"
  | None -> ());
  let horizon = match until with Some t -> t | None -> infinity in
  let eng = fresh_eng ~horizon () in
  st.current <- Some eng;
  Fun.protect
    ~finally:(fun () -> (dls ()).current <- None)
    (fun () ->
      ignore (schedule_at eng 0. (fun () -> exec "main" main));
      let rec loop () =
        if eng.stopped then ()
        else
        match Heap.pop eng.heap with
        | None -> ()
        | Some (time, thunk) ->
            if time > horizon then eng.clock <- horizon
            else begin
              eng.clock <- time;
              thunk ();
              loop ()
            end
      in
      loop ();
      eng.clock)

(* ------------------------------------------------------------------ *)
(* Partitioned runs: conservative-synchronization parallel DES.

   Each round, the coordinator takes T = the earliest pending event
   across all partitions and opens the window [T, T + lookahead): every
   partition with an event in the window executes exactly those events
   (in its own (time, seq) order), possibly on different worker
   domains. Cross-partition messages carry at least [lookahead] of
   modeled delay ([post] enforces it), so anything produced inside the
   window arrives at or after its end — no partition can ever receive
   an event in its past, and no rollback is needed. At the barrier the
   collected messages are merged into the target heaps in (time, source
   partition, per-source order), which the heap's (time, seq) tiebreak
   then preserves: the merged schedule, and hence the whole run, is
   bit-identical whatever the worker count. *)

let run_window ctx idx wend =
  let st = dls () in
  (match st.current with
  | Some _ ->
      invalid_arg "Sim.Engine: a simulation is already running on this domain"
  | None -> ());
  let eng = ctx.engs.(idx) in
  st.current <- Some eng;
  st.pctx <- Some ctx;
  st.cur_idx <- idx;
  Fun.protect
    ~finally:(fun () ->
      let st = dls () in
      st.current <- None;
      st.pctx <- None;
      st.cur_idx <- 0;
      eng.wend <- infinity)
    (fun () ->
      eng.wend <- wend;
      let rec loop () =
        if eng.stopped then ()
        else
          match Heap.peek_time eng.heap with
          | Some t when t < wend -> (
              match Heap.pop eng.heap with
              | None -> ()
              | Some (time, thunk) ->
                  eng.clock <- time;
                  thunk ();
                  loop ())
          | Some _ | None -> ()
      in
      loop ())

let run_partitioned ?jobs ~lookahead ~partitions main =
  if not (lookahead > 0.) then
    invalid_arg "Sim.Engine.run_partitioned: lookahead must be positive";
  if partitions < 0 then
    invalid_arg "Sim.Engine.run_partitioned: negative partition count";
  let st = dls () in
  (match st.current with
  | Some _ -> invalid_arg "Sim.Engine.run: a simulation is already running"
  | None -> ());
  let jobs = match jobs with Some j -> max 1 j | None -> 1 in
  let ctx =
    { engs = Array.init (partitions + 1) (fun _ -> fresh_eng ()); lookahead }
  in
  ignore (Heap.push ctx.engs.(0).heap ~time:0. (fun () -> exec "main" main));
  let n = Array.length ctx.engs in
  let pool =
    if jobs > 1 && partitions > 0 then
      Some (Pool.create ~workers:(min jobs n))
    else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      (* src partition index is implied by array order; per-source
         message order by out_seq. *)
      let compare_msg (t1, s1, q1, _) (t2, s2, q2, _) =
        match Float.compare t1 t2 with
        | 0 -> ( match Int.compare s1 s2 with 0 -> Int.compare q1 q2 | c -> c)
        | c -> c
      in
      let rec round () =
        if Array.exists (fun e -> e.stopped) ctx.engs then ()
        else begin
          let next = ref infinity in
          Array.iter
            (fun e ->
              match Heap.peek_time e.heap with
              | Some t when t < !next -> next := t
              | _ -> ())
            ctx.engs;
          if !next = infinity then ()
          else begin
            let wend = !next +. lookahead in
            let active = ref [] in
            for idx = n - 1 downto 0 do
              match Heap.peek_time ctx.engs.(idx).heap with
              | Some t when t < wend -> active := idx :: !active
              | _ -> ()
            done;
            (match pool with
            | None -> List.iter (fun idx -> run_window ctx idx wend) !active
            | Some p ->
                !active
                |> List.map (fun idx ->
                       Pool.submit p (fun () -> run_window ctx idx wend))
                |> List.iter (fun pr ->
                       match Pool.await pr with
                       | Ok () -> ()
                       | Error (e, bt) ->
                           Printexc.raise_with_backtrace e bt));
            (* Barrier: deterministically merge the windows' outboxes. *)
            let msgs = ref [] in
            Array.iteri
              (fun src e ->
                List.iter
                  (fun m ->
                    msgs :=
                      (m.out_time, src, m.out_seq, m) :: !msgs)
                  e.outbox;
                e.outbox <- [])
              ctx.engs;
            List.iter
              (fun (_, _, _, m) ->
                ignore
                  (schedule_at ctx.engs.(m.out_target) m.out_time m.out_thunk))
              (List.sort compare_msg !msgs);
            round ()
          end
        end
      in
      round ();
      Array.fold_left (fun acc e -> Float.max acc e.clock) 0. ctx.engs)

module Ivar = struct
  type 'a state =
    | Empty of ('a -> unit) list
    | Full of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Sim.Engine.Ivar.fill: already filled"
    | Empty waiters ->
        t.state <- Full v;
        (* Wake in arrival order for determinism. *)
        List.iter (fun resume -> resume v) (List.rev waiters)

  let read t =
    match t.state with
    | Full v -> v
    | Empty _ ->
        suspend (fun resume ->
            match t.state with
            | Full v -> resume v
            | Empty waiters -> t.state <- Empty (resume :: waiters))

  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let is_full t = match t.state with Full _ -> true | Empty _ -> false
end

let wait_all ivars = List.iter Ivar.read ivars
