type out_msg = {
  out_time : float;
  out_src : int; (* source partition index *)
  out_seq : int; (* per-source posting order *)
  out_target : int;
  out_thunk : unit -> unit;
}

type eng = {
  mutable clock : float;
  heap : (unit -> unit) Heap.t;
  mutable stopped : bool;
  mutable horizon : float; (* [run ~until]; infinity when unbounded *)
  mutable wend : float;
      (* current synchronization-window end for partitioned runs;
         infinity for plain runs and between windows *)
  mutable vwend : float;
      (* end of the current *virtual* fixed-lookahead round. In a
         classic window this equals [wend]; in an adaptively grown
         window it tracks where each fixed-window round boundary would
         have fallen, so cross-partition sends are batched exactly as
         the fixed-window protocol would batch them (see
         [run_partitioned]) *)
  mutable next_pid : int;
      (* per-engine so pid allocation is independent of how partitions
         interleave across worker domains *)
  mutable out_seq : int;
  mutable outbox : out_msg list; (* reversed; merged at the barrier *)
}

let fresh_eng ?(horizon = infinity) () =
  {
    clock = 0.;
    heap = Heap.create ();
    stopped = false;
    horizon;
    wend = infinity;
    vwend = infinity;
    next_pid = 1;
    out_seq = 0;
    outbox = [];
  }

type token = (unit -> unit) Heap.entry * eng

(* Process identity, for tracers: every [exec]'d process (the initial
   [main] and every [spawn]) gets a small integer id; callbacks run as
   pid 0 ("engine"). The hooks fire on process lifecycle transitions so
   an external tracer can count spawns/parks/wakes without the engine
   depending on it. *)
type trace_hooks = {
  on_spawn : pid:int -> name:string -> unit;
  on_park : pid:int -> unit;
  on_wake : pid:int -> unit;
}

(* A partitioned run: one engine per partition (index 0 is the
   dom0/global partition, 1..n the declared partitions), coupled only
   through [post]ed cross-partition messages. *)
type pctx = {
  engs : eng array;
  lookahead : float;
}

(* Values a process can carry across suspensions (see
   [with_process_local]): an open extensible variant so clients (the
   fault injector) add their own cases without the engine knowing. *)
type process_local = ..

(* All engine bookkeeping is domain-local: a domain drives (at most)
   one engine at a time, and engines on different domains never share
   state, which is what lets Pool run independent experiments in
   parallel with bit-identical results. Partitioned runs move a
   partition's engine from domain to domain between windows, so nothing
   below may close over the [dls] record itself — closures that outlive
   the current event (continuations, resume functions, spawned thunks)
   always re-read [dls ()] at execution time. *)
type dls = {
  mutable current : eng option;
  mutable pctx : pctx option;
  mutable cur_idx : int; (* partition index the domain is executing *)
  mutable current_pid : int;
  mutable current_pname : string;
  mutable plocals : process_local list;
  mutable hooks : trace_hooks option;
}

let dls_key =
  Domain.DLS.new_key (fun () ->
      {
        current = None;
        pctx = None;
        cur_idx = 0;
        current_pid = 0;
        current_pname = "engine";
        plocals = [];
        hooks = None;
      })

let dls () = Domain.DLS.get dls_key

let set_trace_hooks h = (dls ()).hooks <- h

let self_pid () = (dls ()).current_pid

let self_name () = (dls ()).current_pname

let get_eng () =
  match (dls ()).current with
  | Some e -> e
  | None -> invalid_arg "Sim.Engine: no simulation is running"

let running () = (dls ()).current <> None

let now () = (get_eng ()).clock

let current_partition () = (dls ()).cur_idx

let partition_count () =
  match (dls ()).pctx with
  | None -> 0
  | Some ctx -> Array.length ctx.engs - 1

let schedule_at eng time thunk =
  if time < eng.clock then
    invalid_arg
      (Printf.sprintf "Sim.Engine: scheduling in the past (%g < %g)" time
         eng.clock);
  Heap.push eng.heap ~time thunk

let at time thunk =
  let eng = get_eng () in
  (schedule_at eng time thunk, eng)

let after delay thunk =
  let eng = get_eng () in
  if delay < 0. then invalid_arg "Sim.Engine.after: negative delay";
  (schedule_at eng (eng.clock +. delay) thunk, eng)

let cancel (entry, eng) = Heap.cancel eng.heap entry

type _ Effect.t +=
  | Suspend : (('a -> unit) -> unit) -> 'a Effect.t

let suspend register = Effect.perform (Suspend register)

(* Run [f] with the process identity (and its process-local values) set
   to [pid]/[name]/[plocals]; restores the caller's identity on return
   (also on exception), so identity always reflects whichever process
   the scheduler is actually executing. Reads [dls ()] fresh on both
   sides: between a park and a resume the process may have moved to a
   different worker domain. *)
let as_process pid name plocals f =
  let st = dls () in
  let saved_pid = st.current_pid
  and saved_name = st.current_pname
  and saved_plocals = st.plocals in
  st.current_pid <- pid;
  st.current_pname <- name;
  st.plocals <- plocals;
  Fun.protect
    ~finally:(fun () ->
      let st = dls () in
      st.current_pid <- saved_pid;
      st.current_pname <- saved_name;
      st.plocals <- saved_plocals)
    f

let with_process_local local f =
  let st = dls () in
  let saved = st.plocals in
  st.plocals <- local :: saved;
  Fun.protect ~finally:(fun () -> (dls ()).plocals <- saved) f

let find_process_local sel =
  let rec go = function
    | [] -> None
    | l :: rest -> ( match sel l with Some _ as r -> r | None -> go rest)
  in
  go (dls ()).plocals

(* Each process (the initial [main] and every [spawn]) runs under its own
   deep handler. A blocked process is represented solely by its captured
   continuation, stashed wherever [register] put the resume function. *)
let exec ?(plocals = []) name f =
  let open Effect.Deep in
  let eng = get_eng () in
  let pid = eng.next_pid in
  eng.next_pid <- pid + 1;
  (match (dls ()).hooks with Some h -> h.on_spawn ~pid ~name | None -> ());
  as_process pid name plocals (fun () ->
      match_with f ()
        {
          retc = (fun () -> ());
          exnc =
            (fun e ->
              (match e with
              | Stack_overflow | Out_of_memory -> ()
              | _ ->
                  Printf.eprintf "Sim process %S raised: %s\n%!" name
                    (Printexc.to_string e));
              raise e);
          effc =
            (fun (type a) (eff : a Effect.t) ->
              match eff with
              | Suspend register ->
                  Some
                    (fun (k : (a, unit) continuation) ->
                      let st = dls () in
                      (match st.hooks with
                      | Some h -> h.on_park ~pid
                      | None -> ());
                      (* The process's home partition and its local
                         values at park time travel with the
                         continuation. *)
                      let home = get_eng () in
                      let pl = st.plocals in
                      let fired = ref false in
                      register (fun v ->
                          if !fired then
                            invalid_arg
                              "Sim.Engine: one-shot resume called twice";
                          fired := true;
                          let cur = get_eng () in
                          if cur != home then
                            invalid_arg
                              "Sim.Engine: cross-partition resume — wake \
                               a process from its own partition (via \
                               [post]) instead";
                          (match (dls ()).hooks with
                          | Some h -> h.on_wake ~pid
                          | None -> ());
                          ignore
                            (schedule_at home home.clock (fun () ->
                                 as_process pid name pl (fun () ->
                                     continue k v)))))
              | _ -> None);
        })

let spawn ?(name = "anonymous") f =
  let eng = get_eng () in
  let pl = (dls ()).plocals in
  ignore
    (schedule_at eng eng.clock (fun () -> exec ~plocals:pl name f))

(* Cross-partition scheduling. Within a partition (or outside any
   partitioned run) this is just [after]. Across partitions the thunk
   goes to the source engine's outbox and is merged into the target's
   heap at the end of the window, so the delay must cover the lookahead
   — otherwise the target may already have advanced past the arrival
   time. Merging sorts by (time, source partition, per-source posting
   order), making cross-partition delivery order a pure function of the
   workload, independent of [--jobs]. *)
let post ~partition ~delay thunk =
  if delay < 0. then invalid_arg "Sim.Engine.post: negative delay";
  let st = dls () in
  match st.pctx with
  | None -> ignore (after delay thunk)
  | Some ctx ->
      if partition < 0 || partition >= Array.length ctx.engs then
        invalid_arg
          (Printf.sprintf "Sim.Engine.post: unknown partition %d" partition);
      if partition = st.cur_idx then ignore (after delay thunk)
      else begin
        if delay < ctx.lookahead then
          invalid_arg
            (Printf.sprintf
               "Sim.Engine.post: cross-partition delay %g below the \
                lookahead %g"
               delay ctx.lookahead);
        let eng = get_eng () in
        eng.outbox <-
          {
            out_time = eng.clock +. delay;
            out_src = st.cur_idx;
            out_seq = eng.out_seq;
            out_target = partition;
            out_thunk = thunk;
          }
          :: eng.outbox;
        eng.out_seq <- eng.out_seq + 1;
        (* An adaptively grown window must close at the end of the
           virtual round that produced the first send, so the message
           is merged in exactly the batch the fixed-window protocol
           would merge it in. In a classic window [vwend = wend] and
           this clamp is a no-op. *)
        eng.wend <- Float.min eng.wend eng.vwend
      end

let spawn_in ?(name = "anonymous") ~partition ~delay f =
  post ~partition ~delay (fun () -> exec name f)

(* Sleeping is the single hottest engine operation (every simulated
   cost charge is a sleep), so the common case — nothing else is
   scheduled to run before we would wake — advances the clock in place
   instead of parking through the heap. This is observably equivalent:
   the suspend path would push a wake entry whose (time, seq) key beats
   every later push, so when no existing entry has time <= wake the pop
   order is exactly "resume this task next". The fast path is skipped
   when process-lifecycle hooks are installed (tracers count park/wake
   transitions), after [stop] (a parked task must never resume), when
   waking would cross the [run ~until] horizon (the park-forever
   behaviour is the contract there), and when waking would cross the
   current synchronization window (the wake entry must stay in the heap
   so the next window's start time accounts for it). The window bound
   is the *virtual* fixed-lookahead round end [vwend], not the possibly
   grown [wend]: an adaptively grown window relies on the heap's peek
   times to reconstruct where every fixed-window round boundary would
   have fallen, so a sleep crossing a virtual boundary must surface as
   a heap entry exactly as it would under fixed windows. *)
let sleep delay =
  if delay < 0. then invalid_arg "Sim.Engine.sleep: negative delay"
  else if delay = 0. then ()
  else begin
    let st = dls () in
    let eng =
      match st.current with
      | Some e -> e
      | None -> invalid_arg "Sim.Engine: no simulation is running"
    in
    let wake = eng.clock +. delay in
    let idle =
      Heap.is_empty eng.heap || Heap.next_time eng.heap > wake
    in
    if
      idle && st.hooks = None
      && (not eng.stopped)
      && wake <= eng.horizon
      && wake < eng.vwend
    then eng.clock <- wake
    else suspend (fun resume -> ignore (after delay (fun () -> resume ())))
  end

let yield () = suspend (fun resume -> ignore (after 0. (fun () -> resume ())))

let stop () = (get_eng ()).stopped <- true

(* ------------------------------------------------------------------ *)
(* Checkpointable engine state. A quiesced engine is fully described by
   its clock, its pid/outbox counters and the live heap entries in pop
   order: re-pushing those entries into a fresh heap (fresh sequence
   numbers, same relative order) reproduces the exact pop order, and a
   suffix scheduled *first* at the restored clock runs before any
   same-time image entry — exactly as the unbroken run's prefix process
   continues inline into the suffix. The thunks are ordinary closures;
   [Checkpoint] marshals them (together with whatever model state they
   reach) to freeze a run to bytes. A simulation with parked effect
   continuations in its heap cannot be marshalled — that is the
   quiesce-point condition [Checkpoint] reports as [Not_quiesced]. *)

type saved_eng = {
  sv_clock : float;
  sv_next_pid : int;
  sv_out_seq : int;
  sv_events : (float * (unit -> unit)) array; (* live entries, pop order *)
}

type saved = {
  sv_lookahead : float option;
      (* [None] for a plain run; [Some l] for a partitioned run with
         conservative-sync lookahead [l] *)
  sv_engs : saved_eng array; (* one per partition; plain runs have one *)
}

let harvest eng =
  {
    sv_clock = eng.clock;
    sv_next_pid = eng.next_pid;
    sv_out_seq = eng.out_seq;
    sv_events = Heap.entries eng.heap;
  }

let saved_partitions s =
  match s.sv_lookahead with
  | None -> None
  | Some _ -> Some (Array.length s.sv_engs - 1)

let restore_eng sv =
  let eng = fresh_eng () in
  eng.clock <- sv.sv_clock;
  eng.next_pid <- sv.sv_next_pid;
  eng.out_seq <- sv.sv_out_seq;
  eng

let repush eng sv =
  Array.iter
    (fun (time, thunk) -> ignore (Heap.push eng.heap ~time thunk))
    sv.sv_events

let run_eng ?until main =
  let st = dls () in
  (match st.current with
  | Some _ -> invalid_arg "Sim.Engine.run: a simulation is already running"
  | None -> ());
  let horizon = match until with Some t -> t | None -> infinity in
  let eng = fresh_eng ~horizon () in
  st.current <- Some eng;
  Fun.protect
    ~finally:(fun () -> (dls ()).current <- None)
    (fun () ->
      ignore (schedule_at eng 0. (fun () -> exec "main" main));
      (* Peek ([next_time]) before popping: an event beyond the horizon
         must stay in the heap, not be popped and dropped — a capture
         taken from a [~until]-bounded run resumes unbounded and still
         owes that event. The loop allocates nothing per event:
         [is_empty]/[next_time]/[pop_payload] replace the option- and
         pair-returning heap API on this hot path. *)
      let rec loop () =
        if eng.stopped || Heap.is_empty eng.heap then ()
        else begin
          let time = Heap.next_time eng.heap in
          if time > horizon then eng.clock <- horizon
          else begin
            let thunk = Heap.pop_payload eng.heap in
            eng.clock <- time;
            thunk ();
            loop ()
          end
        end
      in
      loop ();
      eng)

let run ?until main = (run_eng ?until main).clock

let run_capture ?until main =
  let eng = run_eng ?until main in
  (eng.clock, { sv_lookahead = None; sv_engs = [| harvest eng |] })

(* Resume a plain run: the suffix main is scheduled *before* the image
   events are re-pushed, so at the restored clock it wins every
   same-time tie — matching the unbroken run, where the prefix process
   continues inline into the suffix while those entries wait in the
   heap. *)
let resume_plain sv main =
  let st = dls () in
  (match st.current with
  | Some _ ->
      invalid_arg "Sim.Engine.resume: a simulation is already running"
  | None -> ());
  let eng = restore_eng sv.sv_engs.(0) in
  ignore (schedule_at eng eng.clock (fun () -> exec "main" main));
  repush eng sv.sv_engs.(0);
  st.current <- Some eng;
  Fun.protect
    ~finally:(fun () -> (dls ()).current <- None)
    (fun () ->
      let rec loop () =
        if eng.stopped || Heap.is_empty eng.heap then ()
        else begin
          let time = Heap.next_time eng.heap in
          let thunk = Heap.pop_payload eng.heap in
          eng.clock <- time;
          thunk ();
          loop ()
        end
      in
      loop ();
      eng)

(* ------------------------------------------------------------------ *)
(* Partitioned runs: conservative-synchronization parallel DES.

   Each round, the coordinator takes T = the earliest pending event
   across all partitions and opens the window [T, T + lookahead): every
   partition with an event in the window executes exactly those events
   (in its own (time, seq) order), possibly on different worker
   domains. Cross-partition messages carry at least [lookahead] of
   modeled delay ([post] enforces it), so anything produced inside the
   window arrives at or after its end — no partition can ever receive
   an event in its past, and no rollback is needed. At the barrier the
   collected messages are merged into the target heaps in (time, source
   partition, per-source order), which the heap's (time, seq) tiebreak
   then preserves: the merged schedule, and hence the whole run, is
   bit-identical whatever the worker count. *)

(* Run partition [idx] for one window. A classic window executes every
   event in [eng.clock, wend); [grow = Some limit] marks an adaptively
   grown window (see [drive_rounds]): [wend] is then the end of the
   *first* virtual fixed-lookahead round and the window keeps absorbing
   later virtual rounds — advancing [eng.vwend] to [t + lookahead] for
   each first event [t] past the current virtual boundary — for as long
   as the outbox is empty (a send pins the merge batch to its virtual
   round) and the next virtual round would still be single-active
   ([t + lookahead <= limit], the earliest foreign event). Every event
   executed this way runs in exactly the virtual round the fixed-window
   protocol would have run it in, so the grown window is bit-identical
   to the sequence of fixed windows it replaces. *)
let run_window ?grow ctx idx wend =
  let st = dls () in
  (match st.current with
  | Some _ ->
      invalid_arg "Sim.Engine: a simulation is already running on this domain"
  | None -> ());
  let eng = ctx.engs.(idx) in
  st.current <- Some eng;
  st.pctx <- Some ctx;
  st.cur_idx <- idx;
  Fun.protect
    ~finally:(fun () ->
      let st = dls () in
      st.current <- None;
      st.pctx <- None;
      st.cur_idx <- 0;
      eng.wend <- infinity;
      eng.vwend <- infinity)
    (fun () ->
      eng.wend <- (match grow with None -> wend | Some _ -> infinity);
      eng.vwend <- wend;
      (* Admit the next event at [t], advancing the virtual round
         boundary when growing; [false] closes the window. *)
      let admit t =
        t < eng.vwend
        ||
        match grow with
        | None -> false
        | Some limit -> (
            match eng.outbox with
            | _ :: _ -> false (* batch closed by a send *)
            | [] ->
                t +. ctx.lookahead <= limit
                && begin
                     eng.vwend <- t +. ctx.lookahead;
                     true
                   end)
      in
      let rec loop () =
        if eng.stopped || Heap.is_empty eng.heap then ()
        else begin
          let t = Heap.next_time eng.heap in
          if t < eng.wend && admit t then begin
            let thunk = Heap.pop_payload eng.heap in
            eng.clock <- t;
            thunk ();
            loop ()
          end
        end
      in
      loop ())

(* The round loop shared by [run_partitioned] and [resume]: open a
   window at the earliest pending event, run every partition with work
   in it (possibly on worker domains), then deterministically merge the
   outboxes. With [adaptive] (the default), a round whose base window
   [T, T + lookahead) contains events of only one partition — the
   observed cross-partition traffic is sparse there — is handed to
   [run_window ~grow]: the single active partition absorbs consecutive
   single-active virtual rounds in one window instead of paying a
   barrier per lookahead. The growth rules above make the executed
   schedule — and hence every digest — bit-identical to fixed windows;
   rounds where two or more partitions have work (dense traffic) shrink
   back to the classic window. *)
let drive_rounds ?jobs ~adaptive ctx =
  let jobs = match jobs with Some j -> max 1 j | None -> 1 in
  let n = Array.length ctx.engs in
  let pool =
    if jobs > 1 && n > 1 then Some (Pool.create ~workers:(min jobs n))
    else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Pool.shutdown pool)
    (fun () ->
      (* Messages carry their source partition and per-source posting
         order; the sort key (time, src, seq) reads the record fields
         directly, no key tuples. The batch is gathered into a scratch
         array reused across barriers — a barrier with no messages (the
         overwhelmingly common round) allocates nothing. *)
      let compare_msg a b =
        match Float.compare a.out_time b.out_time with
        | 0 -> (
            match Int.compare a.out_src b.out_src with
            | 0 -> Int.compare a.out_seq b.out_seq
            | c -> c)
        | c -> c
      in
      let dummy_msg =
        { out_time = 0.; out_src = 0; out_seq = 0; out_target = 0;
          out_thunk = ignore }
      in
      let scratch = ref [||] in
      let merge_outboxes () =
        let total =
          Array.fold_left
            (fun acc e -> acc + List.length e.outbox)
            0 ctx.engs
        in
        if total > 0 then begin
          if Array.length !scratch < total then
            scratch :=
              Array.make (max total (2 * Array.length !scratch)) dummy_msg;
          let buf = !scratch in
          let k = ref 0 in
          Array.iter
            (fun e ->
              List.iter
                (fun m ->
                  buf.(!k) <- m;
                  incr k)
                e.outbox;
              e.outbox <- [])
            ctx.engs;
          (* Sort just the filled prefix. Insertion sort is
             allocation-free and fast at typical batch sizes; large
             bursts (mass migrations) pay one temporary array. The key
             is a total order (src/seq unique), so both sorts agree. *)
          if total <= 32 then
            for i = 1 to total - 1 do
              let m = buf.(i) in
              let j = ref (i - 1) in
              while !j >= 0 && compare_msg buf.(!j) m > 0 do
                buf.(!j + 1) <- buf.(!j);
                decr j
              done;
              buf.(!j + 1) <- m
            done
          else begin
            let tmp = Array.sub buf 0 total in
            Array.sort compare_msg tmp;
            Array.blit tmp 0 buf 0 total
          end;
          for i = 0 to total - 1 do
            let m = buf.(i) in
            ignore
              (schedule_at ctx.engs.(m.out_target) m.out_time m.out_thunk);
            buf.(i) <- dummy_msg
          done
        end
      in
      let rec round () =
        if Array.exists (fun e -> e.stopped) ctx.engs then ()
        else begin
          let next = ref infinity and imin = ref 0 in
          Array.iteri
            (fun i e ->
              if not (Heap.is_empty e.heap) then begin
                let t = Heap.next_time e.heap in
                if t < !next then begin
                  next := t;
                  imin := i
                end
              end)
            ctx.engs;
          if !next = infinity then ()
          else begin
            let wend = !next +. ctx.lookahead in
            (* Earliest event outside the leading partition: the base
               window is single-active iff it stays clear of it. *)
            let min2 = ref infinity in
            Array.iteri
              (fun i e ->
                if i <> !imin && not (Heap.is_empty e.heap) then begin
                  let t = Heap.next_time e.heap in
                  if t < !min2 then min2 := t
                end)
              ctx.engs;
            if adaptive && !min2 >= wend then
              (* One partition, one window: no worker handoff. *)
              run_window ~grow:!min2 ctx !imin wend
            else begin
              let active = ref [] in
              for idx = n - 1 downto 0 do
                let h = ctx.engs.(idx).heap in
                if (not (Heap.is_empty h)) && Heap.next_time h < wend then
                  active := idx :: !active
              done;
              match pool with
              | None -> List.iter (fun idx -> run_window ctx idx wend) !active
              | Some p ->
                  !active
                  |> List.map (fun idx ->
                         Pool.submit p (fun () -> run_window ctx idx wend))
                  |> List.iter (fun pr ->
                         match Pool.await pr with
                         | Ok () -> ()
                         | Error (e, bt) ->
                             Printexc.raise_with_backtrace e bt)
            end;
            (* Barrier: deterministically merge the windows' outboxes. *)
            merge_outboxes ();
            round ()
          end
        end
      in
      round ())

let check_partitioned_args ~lookahead ~partitions =
  if not (lookahead > 0.) then
    invalid_arg "Sim.Engine.run_partitioned: lookahead must be positive";
  if partitions < 0 then
    invalid_arg "Sim.Engine.run_partitioned: negative partition count";
  match (dls ()).current with
  | Some _ -> invalid_arg "Sim.Engine.run: a simulation is already running"
  | None -> ()

let max_clock ctx =
  Array.fold_left (fun acc e -> Float.max acc e.clock) 0. ctx.engs

let run_partitioned_ctx ?jobs ~adaptive ~lookahead ~partitions main =
  check_partitioned_args ~lookahead ~partitions;
  let ctx =
    { engs = Array.init (partitions + 1) (fun _ -> fresh_eng ()); lookahead }
  in
  ignore (Heap.push ctx.engs.(0).heap ~time:0. (fun () -> exec "main" main));
  drive_rounds ?jobs ~adaptive ctx;
  ctx

let run_partitioned ?jobs ?(adaptive = true) ~lookahead ~partitions main =
  max_clock (run_partitioned_ctx ?jobs ~adaptive ~lookahead ~partitions main)

let run_partitioned_capture ?jobs ?(adaptive = true) ~lookahead ~partitions
    main =
  let ctx = run_partitioned_ctx ?jobs ~adaptive ~lookahead ~partitions main in
  ( max_clock ctx,
    { sv_lookahead = Some lookahead; sv_engs = Array.map harvest ctx.engs } )

(* Resume a partitioned run. As in [resume_plain], the suffix main is
   pushed into partition 0 before that partition's image events, so it
   wins same-time ties exactly as the unbroken run's inline
   continuation would. *)
let resume_pctx ?jobs ~adaptive ~lookahead sv main =
  check_partitioned_args ~lookahead
    ~partitions:(Array.length sv.sv_engs - 1);
  let ctx = { engs = Array.map restore_eng sv.sv_engs; lookahead } in
  let e0 = ctx.engs.(0) in
  ignore
    (Heap.push e0.heap ~time:e0.clock (fun () -> exec "main" main));
  Array.iteri (fun i sve -> repush ctx.engs.(i) sve) sv.sv_engs;
  drive_rounds ?jobs ~adaptive ctx;
  ctx

let resume ?jobs ?(adaptive = true) sv main =
  match sv.sv_lookahead with
  | None -> (resume_plain sv main).clock
  | Some lookahead -> max_clock (resume_pctx ?jobs ~adaptive ~lookahead sv main)

let resume_capture ?jobs ?(adaptive = true) sv main =
  match sv.sv_lookahead with
  | None ->
      let eng = resume_plain sv main in
      (eng.clock, { sv_lookahead = None; sv_engs = [| harvest eng |] })
  | Some lookahead ->
      let ctx = resume_pctx ?jobs ~adaptive ~lookahead sv main in
      ( max_clock ctx,
        { sv_lookahead = Some lookahead; sv_engs = Array.map harvest ctx.engs }
      )

module Ivar = struct
  type 'a state =
    | Empty of ('a -> unit) list
    | Full of 'a

  type 'a t = { mutable state : 'a state }

  let create () = { state = Empty [] }

  let fill t v =
    match t.state with
    | Full _ -> invalid_arg "Sim.Engine.Ivar.fill: already filled"
    | Empty waiters ->
        t.state <- Full v;
        (* Wake in arrival order for determinism. *)
        List.iter (fun resume -> resume v) (List.rev waiters)

  let read t =
    match t.state with
    | Full v -> v
    | Empty _ ->
        suspend (fun resume ->
            match t.state with
            | Full v -> resume v
            | Empty waiters -> t.state <- Empty (resume :: waiters))

  let peek t = match t.state with Full v -> Some v | Empty _ -> None

  let is_full t = match t.state with Full _ -> true | Empty _ -> false
end

let wait_all ivars = List.iter Ivar.read ivars
