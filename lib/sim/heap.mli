(** Growable 4-ary index min-heap keyed by [(time, seq)].

    The ordering keys live in parallel unboxed arrays (a flat
    [float array] of times plus an [int array] of sequence numbers);
    payloads sit in a side table the comparison loops never touch, so a
    sift is pure scalar-array traffic and allocates nothing. Ties on
    [time] are broken by the monotonically increasing sequence number
    assigned at insertion, which makes event ordering — and hence every
    simulation — fully deterministic. Cancellation is lazy: a cancelled
    entry stays in the heap and is skipped on [pop] — until cancelled
    entries outnumber live ones, at which point the heap compacts them
    away so cancel-heavy runs don't leak slots. Pop order is a pure
    function of the [(time, seq)] keys, so compaction is invisible to
    callers. The backing arrays also shrink once occupancy falls to a
    quarter of capacity (never below a fixed floor), so a long-lived
    heap drained after a large peak does not retain peak-sized
    storage. *)

type 'a t

type 'a entry

val create : unit -> 'a t

val size : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val is_empty : 'a t -> bool

val capacity : 'a t -> int
(** Current length of the backing arrays (grows by doubling, shrinks by
    halving at quarter occupancy down to a fixed floor). Exposed for
    tests and diagnostics. *)

val push : 'a t -> time:float -> 'a -> 'a entry

val pop : 'a t -> (float * 'a) option
(** Smallest live entry by [(time, seq)], or [None] if the heap holds
    only cancelled entries or nothing. *)

val pop_payload : 'a t -> 'a
(** [pop] for the engine hot path: returns the smallest live entry's
    payload without allocating the [(time * 'a) option] box. The caller
    must have checked {!is_empty} (or read {!next_time}) first.

    @raise Invalid_argument on a heap with no live entries. *)

val peek_time : 'a t -> float option

val next_time : 'a t -> float
(** Allocation-free {!peek_time}: the time of the smallest live entry.
    The caller must check {!is_empty} first — there is no sentinel
    value, because [infinity] is a legal event time for a heap user
    with an unbounded horizon.

    @raise Invalid_argument on a heap with no live entries. *)

val entries : 'a t -> (float * 'a) array
(** Non-destructive snapshot of the live entries, in pop order (the
    [(time, seq)] key). Re-pushing the pairs into a fresh heap in array
    order reproduces this heap's exact pop order — the contract
    sim-state checkpoint/restore is built on. *)

val cancel : 'a t -> 'a entry -> unit
(** Idempotent. A cancelled entry is never returned by [pop];
    cancelling an entry [pop] already returned is a no-op. *)

val cancelled : 'a entry -> bool
