(** Growable binary min-heap keyed by [(time, seq)].

    Ties on [time] are broken by the monotonically increasing sequence
    number assigned at insertion, which makes event ordering — and hence
    every simulation — fully deterministic. Cancellation is lazy: a
    cancelled entry stays in the heap and is skipped on [pop] — until
    cancelled entries outnumber live ones, at which point the heap
    compacts them away so cancel-heavy runs don't leak slots. Pop order
    is a pure function of the [(time, seq)] keys, so compaction is
    invisible to callers. *)

type 'a t

type 'a entry

val create : unit -> 'a t

val size : 'a t -> int
(** Number of live (non-cancelled) entries. *)

val is_empty : 'a t -> bool

val push : 'a t -> time:float -> 'a -> 'a entry

val pop : 'a t -> (float * 'a) option
(** Smallest live entry by [(time, seq)], or [None] if the heap holds
    only cancelled entries or nothing. *)

val peek_time : 'a t -> float option

val entries : 'a t -> (float * 'a) array
(** Non-destructive snapshot of the live entries, in pop order (the
    [(time, seq)] key). Re-pushing the pairs into a fresh heap in array
    order reproduces this heap's exact pop order — the contract
    sim-state checkpoint/restore is built on. *)

val cancel : 'a t -> 'a entry -> unit
(** Idempotent. A cancelled entry is never returned by [pop];
    cancelling an entry [pop] already returned is a no-op. *)

val cancelled : 'a entry -> bool
