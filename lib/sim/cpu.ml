type job = {
  mutable remaining : float; (* reference-speed seconds still to serve *)
  done_ : unit Engine.Ivar.t;
}

type core = {
  mutable jobs : job list; (* insertion order *)
  mutable last : float; (* clock at last advance *)
  mutable event : Engine.token option;
  mutable busy : float; (* cumulative busy seconds *)
}

type t = { speed : float; cores : core array }

let epsilon = 1e-12

let create ?(speed = 1.0) ~ncores () =
  if ncores < 1 then invalid_arg "Sim.Cpu.create: ncores < 1";
  if speed <= 0. then invalid_arg "Sim.Cpu.create: speed <= 0";
  {
    speed;
    cores =
      Array.init ncores (fun _ ->
          { jobs = []; last = 0.; event = None; busy = 0. });
  }

let ncores t = Array.length t.cores

let advance t core =
  let now = Engine.now () in
  let n = List.length core.jobs in
  if n > 0 then begin
    let elapsed = now -. core.last in
    if elapsed > 0. then begin
      core.busy <- core.busy +. elapsed;
      let served = elapsed *. t.speed /. float_of_int n in
      List.iter (fun j -> j.remaining <- j.remaining -. served) core.jobs
    end
  end;
  core.last <- now

let rec reschedule t core =
  (match core.event with
  | Some tok ->
      Engine.cancel tok;
      core.event <- None
  | None -> ());
  let finished, active =
    List.partition (fun j -> j.remaining <= epsilon) core.jobs
  in
  core.jobs <- active;
  List.iter (fun j -> Engine.Ivar.fill j.done_ ()) finished;
  match active with
  | [] -> ()
  | jobs ->
      let min_rem =
        List.fold_left (fun acc j -> min acc j.remaining) infinity jobs
      in
      let n = float_of_int (List.length jobs) in
      let dt = min_rem *. n /. t.speed in
      let now = Engine.now () in
      if now +. dt <= now then begin
        (* The leader's residual work is below one ulp of the clock:
           the absolute [epsilon] threshold stops catching float
           residue once the clock is large (ulp grows with magnitude),
           and a timer at [now +. dt = now] would fire at a frozen
           clock, serve an elapsed time of zero and reschedule itself
           forever. Finishing the job immediately is within float
           resolution of finishing it on time. *)
        List.iter
          (fun j -> if j.remaining <= min_rem then j.remaining <- 0.)
          jobs;
        reschedule t core
      end
      else begin
        let tok =
          Engine.after dt (fun () ->
              advance t core;
              reschedule t core)
        in
        core.event <- Some tok
      end

let consume_async t ~core work =
  if core < 0 || core >= Array.length t.cores then
    invalid_arg "Sim.Cpu: core index out of range";
  let c = t.cores.(core) in
  let done_ = Engine.Ivar.create () in
  if work <= 0. then Engine.Ivar.fill done_ ()
  else begin
    advance t c;
    c.jobs <- c.jobs @ [ { remaining = work; done_ } ];
    reschedule t c
  end;
  done_

let consume t ~core work = Engine.Ivar.read (consume_async t ~core work)

let load t ~core = List.length t.cores.(core).jobs

let total_load t =
  Array.fold_left (fun acc c -> acc + List.length c.jobs) 0 t.cores

let busiest_load t =
  Array.fold_left (fun acc c -> max acc (List.length c.jobs)) 0 t.cores

let pick_least_loaded t ~cores =
  match cores with
  | [] -> invalid_arg "Sim.Cpu.pick_least_loaded: no cores given"
  | first :: rest ->
      List.fold_left
        (fun best c ->
          if load t ~core:c < load t ~core:best then c else best)
        first rest

let busy_seconds t =
  let now = Engine.now () in
  Array.fold_left
    (fun acc c ->
      let extra = if c.jobs <> [] then now -. c.last else 0. in
      acc +. c.busy +. extra)
    0. t.cores

let utilization t ~since =
  let now = Engine.now () in
  let span = now -. since in
  if span <= 0. then 0.
  else busy_seconds t /. (span *. float_of_int (Array.length t.cores))

let reset_stats t =
  Array.iter
    (fun c ->
      c.busy <- 0.;
      c.last <- Engine.now ())
    t.cores
