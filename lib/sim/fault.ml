(* Deterministic fault injection. See fault.mli for the model.

   Everything here is a pure function of (seed, spec) and the sequence
   of fire calls the simulation makes: per-point RNG streams are
   derived from the seed and the point *name* (not registration order,
   not wall clock), and unconfigured points touch no state at all. *)

type schedule =
  | Prob of float (* Bernoulli per check *)
  | Every of int (* deterministic: every k-th check *)

let points =
  [
    ("xs.eagain", "forced XenStore transaction-commit conflict (EAGAIN)");
    ("xs.equota", "spurious XenStore quota failure on node creation (EQUOTA)");
    ("create.phase1", "create pipeline: domain creation hypercall fails");
    ("create.phase2", "create pipeline: memory reservation computation fails");
    ("create.phase3", "create pipeline: set_maxmem fails");
    ("create.phase4", "create pipeline: memory populate / XS skeleton fails");
    ("create.phase5", "create pipeline: device pre-creation fails");
    ("create.phase6", "create pipeline: config parse fails");
    ("create.phase7", "create pipeline: device init fails");
    ("create.phase8", "create pipeline: kernel image load fails");
    ("create.phase9", "create pipeline: boot/unpause fails");
    ("hotplug.hang", "hotplug script hangs until the toolstack timeout");
    ("evtchn.alloc", "event-channel allocation failure");
    ("gnttab.alloc", "grant-table allocation failure");
    ("migrate.corrupt", "migration stream corrupted in transfer");
  ]

let point_index =
  lazy
    (let h = Hashtbl.create 31 in
     List.iteri (fun i (name, _) -> Hashtbl.replace h name i) points;
     h)

let index_of name = Hashtbl.find_opt (Lazy.force point_index) name
let is_point name = index_of name <> None

(* Spec: configured points in registry order (canonical form). *)
type spec = (string * schedule) list

let empty_spec = []
let spec_is_empty s = s = []

let schedule_to_string = function
  | Prob p -> Printf.sprintf "%g" p
  | Every k -> Printf.sprintf "@%d" k

let spec_to_string s =
  String.concat ","
    (List.map (fun (n, sch) -> n ^ ":" ^ schedule_to_string sch) s)

let canonicalise entries =
  (* Later entries override earlier ones; output in registry order. *)
  let tbl = Hashtbl.create 31 in
  List.iter (fun (n, sch) -> Hashtbl.replace tbl n sch) entries;
  List.filter_map
    (fun (n, _) ->
      match Hashtbl.find_opt tbl n with
      | Some sch -> Some (n, sch)
      | None -> None)
    points

let parse_schedule ~entry s =
  let fail fmt = Printf.ksprintf (fun m -> Error m) fmt in
  if s = "" then fail "fault spec %S: empty schedule" entry
  else if s.[0] = '@' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some k when k >= 1 -> Ok (Every k)
    | Some _ | None ->
        fail "fault spec %S: period must be an integer >= 1" entry
  else
    match float_of_string_opt s with
    | Some p when p >= 0.0 && p <= 1.0 -> Ok (Prob p)
    | Some _ -> fail "fault spec %S: probability must be in [0, 1]" entry
    | None -> fail "fault spec %S: bad schedule %S" entry s

let expand_name ~entry name =
  let n = String.length name in
  if n > 0 && name.[n - 1] = '*' then begin
    let prefix = String.sub name 0 (n - 1) in
    match
      List.filter_map
        (fun (p, _) ->
          if String.length p >= String.length prefix
             && String.sub p 0 (String.length prefix) = prefix
          then Some p
          else None)
        points
    with
    | [] ->
        Error
          (Printf.sprintf "fault spec %S: wildcard %S matches no fault point"
             entry name)
    | l -> Ok l
  end
  else if is_point name then Ok [ name ]
  else
    Error
      (Printf.sprintf
         "fault spec %S: unknown fault point %S (see `points` in fault.mli)"
         entry name)

let parse_spec s =
  let entries =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun e -> e <> "")
  in
  let rec go acc = function
    | [] -> Ok (canonicalise (List.rev acc))
    | entry :: rest -> (
        let name, sched_src =
          match String.index_opt entry ':' with
          | Some i ->
              ( String.sub entry 0 i,
                String.sub entry (i + 1) (String.length entry - i - 1) )
          | None -> (entry, "1")
        in
        match expand_name ~entry name with
        | Error _ as e -> e
        | Ok names -> (
            match parse_schedule ~entry sched_src with
            | Error _ as e -> e
            | Ok sch -> go (List.rev_map (fun n -> (n, sch)) names @ acc) rest))
  in
  go [] entries

let scale s f =
  if f < 0.0 then invalid_arg "Fault.scale: negative factor";
  if f = 0.0 then empty_spec
  else
    List.map
      (fun (n, sch) ->
        match sch with
        | Prob p -> (n, Prob (Float.min 1.0 (p *. f)))
        | Every k ->
            (n, Every (Stdlib.max 1 (int_of_float (ceil (float_of_int k /. f))))))
      s

(* One configured point inside an injector. *)
type stream = {
  sched : schedule;
  rng : Rng.t;
  mutable checks : int;
  mutable injected : int;
}

type t = {
  seed : int64;
  spec : spec;
  streams : (string, stream) Hashtbl.t;
}

(* FNV-1a 64-bit over the point name: a stable, order-independent way
   to derive one seed per point from the injector seed. *)
let fnv1a name =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    name;
  !h

let create ?(seed = 0L) spec =
  let streams = Hashtbl.create 31 in
  List.iter
    (fun (name, sched) ->
      Hashtbl.replace streams name
        {
          sched;
          rng = Rng.create (Int64.logxor seed (fnv1a name));
          checks = 0;
          injected = 0;
        })
    spec;
  { seed; spec; streams }

let seed t = t.seed
let spec t = t.spec

(* Per-host injectors in partitioned cluster runs: mix a stable salt
   into the seed so each host draws from an independent stream that
   depends only on (parent seed, salt) — never on which worker domain
   runs the host or how windows interleave. The multiplier is the
   splitmix64 golden-gamma constant. *)
let derive t ~salt =
  create
    ~seed:
      (Int64.add t.seed
         (Int64.mul 0x9E3779B97F4A7C15L (Int64.of_int (salt + 1))))
    t.spec

(* The current injector is process-local, not domain-local: a
   simulation process carries it across suspensions and passes it to
   the processes it spawns. That is what keeps fault streams attached
   to the workload (a host's creation pipeline, a drain loop) rather
   than to whichever worker domain happens to execute it — the
   prerequisite for bit-identical partitioned runs at any [--jobs].
   Outside a simulation the same mechanism degrades to plain dynamic
   scoping, and Pool workers still start clean (fresh domains have
   empty process-local stacks). *)
type Engine.process_local += Injector of t

let with_injector t f = Engine.with_process_local (Injector t) f

let installed () =
  Engine.find_process_local (function Injector t -> Some t | _ -> None)

let active () =
  match installed () with
  | Some t -> not (spec_is_empty t.spec)
  | None -> false

let fire name =
  if not (is_point name) then
    invalid_arg (Printf.sprintf "Fault.fire: unregistered point %S" name);
  match installed () with
  | None -> false
  | Some t -> (
      match Hashtbl.find_opt t.streams name with
      | None -> false
      | Some s ->
          s.checks <- s.checks + 1;
          let hit =
            match s.sched with
            | Prob p -> Rng.bool s.rng p
            | Every k -> s.checks mod k = 0
          in
          if hit then s.injected <- s.injected + 1;
          hit)

let counts t =
  List.filter_map
    (fun (name, _) ->
      match Hashtbl.find_opt t.streams name with
      | Some s -> Some (name, (s.checks, s.injected))
      | None -> None)
    points

let injected_total t =
  Hashtbl.fold (fun _ s acc -> acc + s.injected) t.streams 0
