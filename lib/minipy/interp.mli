(** Tree-walking evaluator with step accounting.

    Steps count every expression node evaluated and statement executed,
    so callers (the Lambda compute service) can convert interpreter
    work into simulated CPU time. *)

exception Runtime_error of string

exception Step_limit_exceeded

type outcome = {
  stdout : string list;  (** lines printed, in order *)
  result : Value.t;  (** value of the last expression statement *)
  steps : int;
}

val run : ?max_steps:int -> ?cache:bool -> string -> (outcome, string) result
(** Parse + evaluate a program. All errors (lex, parse, runtime, step
    limit) are rendered into the [Error] string. [cache] (default
    [true]) keeps parsed programs in a per-domain compiled-program
    cache so repeated runs of the same source skip lex+parse entirely;
    step counts are identical either way (parsing never ticks). *)

val run_exn : ?max_steps:int -> ?cache:bool -> string -> outcome

val builtin_names : string list
