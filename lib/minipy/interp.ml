open Value

exception Runtime_error of string

exception Step_limit_exceeded

exception Return_exc of Value.t

exception Break_exc

exception Continue_exc

type outcome = {
  stdout : string list;
  result : Value.t;
  steps : int;
}

type env = {
  globals : (string, Value.t) Hashtbl.t;
  mutable locals : (string, Value.t) Hashtbl.t option; (* None at toplevel *)
  mutable steps : int;
  max_steps : int;
  mutable out : string list; (* reversed *)
  mutable last : Value.t;
}

let builtin_names =
  [ "print"; "range"; "len"; "abs"; "str"; "int"; "float"; "min"; "max";
    "sum" ]

let err fmt = Printf.ksprintf (fun msg -> raise (Runtime_error msg)) fmt

let is_builtin = function
  | "print" | "range" | "len" | "abs" | "str" | "int" | "float" | "min"
  | "max" | "sum" ->
      true
  | _ -> false

let tick env =
  env.steps <- env.steps + 1;
  if env.steps > env.max_steps then raise Step_limit_exceeded

let lookup env name =
  let local =
    match env.locals with
    | Some tbl -> Hashtbl.find_opt tbl name
    | None -> None
  in
  match local with
  | Some v -> v
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some v -> v
      | None ->
          if is_builtin name then Str ("<builtin " ^ name ^ ">")
          else err "name '%s' is not defined" name)

let bind env name value =
  match env.locals with
  | Some tbl -> Hashtbl.replace tbl name value
  | None -> Hashtbl.replace env.globals name value

(* ------------------------------------------------------------------ *)
(* Arithmetic *)

let as_float = function
  | Int k -> float_of_int k
  | Float f -> f
  | Bool b -> if b then 1. else 0.
  | v -> err "expected a number, got %s" (Value.type_name v)

let arith op a b =
  match (op, a, b) with
  | Ast.Add, Int x, Int y -> Int (x + y)
  | Ast.Sub, Int x, Int y -> Int (x - y)
  | Ast.Mul, Int x, Int y -> Int (x * y)
  | Ast.Add, Str x, Str y -> Str (x ^ y)
  | Ast.Mul, Str s, Int k | Ast.Mul, Int k, Str s ->
      Str (String.concat "" (List.init (max 0 k) (fun _ -> s)))
  | Ast.Add, List xs, List ys -> List (ref (Array.append !xs !ys))
  | Ast.Mod, Int x, Int y ->
      if y = 0 then err "integer modulo by zero"
      else Int (((x mod y) + y) mod y)
  | Ast.Floordiv, Int x, Int y ->
      if y = 0 then err "integer division by zero"
      else Int (int_of_float (Float.floor (float_of_int x /. float_of_int y)))
  | Ast.Pow, Int x, Int y when y >= 0 ->
      let rec pow acc b e =
        if e = 0 then acc
        else if e land 1 = 1 then pow (acc * b) (b * b) (e lsr 1)
        else pow acc (b * b) (e lsr 1)
      in
      Int (pow 1 x y)
  | Ast.Div, _, _ ->
      let y = as_float b in
      if y = 0. then err "division by zero" else Float (as_float a /. y)
  | Ast.Floordiv, _, _ ->
      let y = as_float b in
      if y = 0. then err "division by zero"
      else Float (Float.floor (as_float a /. y))
  | Ast.Mod, _, _ ->
      let x = as_float a and y = as_float b in
      if y = 0. then err "modulo by zero"
      else Float (x -. (y *. Float.floor (x /. y)))
  | Ast.Pow, _, _ -> Float (Float.pow (as_float a) (as_float b))
  | (Ast.Add | Ast.Sub | Ast.Mul), _, _ -> (
      match (a, b) with
      | (Int _ | Float _ | Bool _), (Int _ | Float _ | Bool _) ->
          let x = as_float a and y = as_float b in
          Float
            (match op with
            | Ast.Add -> x +. y
            | Ast.Sub -> x -. y
            | Ast.Mul -> x *. y
            | _ -> assert false)
      | _ ->
          err "unsupported operand types for %s: %s and %s"
            (Ast.binop_name op) (Value.type_name a) (Value.type_name b))

let compare_values op a b =
  let num_cmp x y =
    match op with
    | Ast.Lt -> x < y
    | Ast.Le -> x <= y
    | Ast.Gt -> x > y
    | Ast.Ge -> x >= y
    | Ast.Eq -> x = y
    | Ast.Ne -> x <> y
  in
  match (op, a, b) with
  | (Ast.Eq | Ast.Ne), _, _ ->
      let eq = Value.equal a b in
      Bool (if op = Ast.Eq then eq else not eq)
  | _, Str x, Str y -> Bool (num_cmp (compare x y) 0)
  | _, (Int _ | Float _ | Bool _), (Int _ | Float _ | Bool _) ->
      Bool (num_cmp (compare (as_float a) (as_float b)) 0)
  | _ ->
      err "cannot order %s and %s" (Value.type_name a) (Value.type_name b)

(* ------------------------------------------------------------------ *)
(* Builtins *)

let list_index items i =
  let n = Array.length !items in
  let i = if i < 0 then i + n else i in
  if i < 0 || i >= n then err "list index out of range" else i

let rec builtin env name args =
  match (name, args) with
  | "print", args ->
      env.out <-
        String.concat " " (List.map Value.to_string args) :: env.out;
      None_v
  | "range", [ Int stop ] ->
      List (ref (Array.init (max 0 stop) (fun i -> Int i)))
  | "range", [ Int start; Int stop ] ->
      List (ref (Array.init (max 0 (stop - start)) (fun i -> Int (start + i))))
  | "range", [ Int start; Int stop; Int step ] ->
      if step = 0 then err "range() step must not be zero"
      else begin
        let count =
          if step > 0 then max 0 ((stop - start + step - 1) / step)
          else max 0 ((start - stop - step - 1) / -step)
        in
        List (ref (Array.init count (fun i -> Int (start + (i * step)))))
      end
  | "len", [ Str s ] -> Int (String.length s)
  | "len", [ List items ] -> Int (Array.length !items)
  | "abs", [ Int k ] -> Int (abs k)
  | "abs", [ v ] -> Float (Float.abs (as_float v))
  | "str", [ v ] -> Str (Value.to_string v)
  | "int", [ Int k ] -> Int k
  | "int", [ Float f ] -> Int (int_of_float (Float.trunc f))
  | "int", [ Str s ] -> (
      match int_of_string_opt (String.trim s) with
      | Some k -> Int k
      | None -> err "invalid literal for int(): %s" s)
  | "int", [ Bool b ] -> Int (if b then 1 else 0)
  | "float", [ v ] -> Float (as_float v)
  | "float", [] -> Float 0.
  | ("min" | "max"), [ List items ] when Array.length !items > 0 ->
      Array.fold_left
        (fun acc v ->
          let keep =
            match compare_values Ast.Lt v acc with
            | Bool b -> if name = "min" then b else not b
            | _ -> false
          in
          if keep then v else acc)
        !items.(0) !items
  | ("min" | "max"), (_ :: _ :: _ as vs) ->
      builtin_reduce env name vs
  | "sum", [ List items ] ->
      Array.fold_left (fun acc v -> arith Ast.Add acc v) (Int 0) !items
  | _, _ -> err "bad arguments to builtin %s()" name

and builtin_reduce env name vs =
  builtin env name [ List (ref (Array.of_list vs)) ]

(* ------------------------------------------------------------------ *)
(* Evaluation *)

let rec eval env (e : Ast.expr) : Value.t =
  tick env;
  match e with
  | Ast.Int_lit k -> Int k
  | Ast.Float_lit f -> Float f
  | Ast.Str_lit s -> Str s
  | Ast.Bool_lit b -> Bool b
  | Ast.None_lit -> None_v
  | Ast.Name n -> lookup env n
  | Ast.List_lit items -> List (ref (Array.of_list (List.map (eval env) items)))
  | Ast.Binop (op, a, b) -> arith op (eval env a) (eval env b)
  | Ast.Neg e -> (
      match eval env e with
      | Int k -> Int (-k)
      | Float f -> Float (-.f)
      | v -> err "cannot negate %s" (Value.type_name v))
  | Ast.Not e -> Bool (not (Value.truthy (eval env e)))
  | Ast.Compare (a, op, b) -> compare_values op (eval env a) (eval env b)
  | Ast.And (a, b) ->
      let va = eval env a in
      if Value.truthy va then eval env b else va
  | Ast.Or (a, b) ->
      let va = eval env a in
      if Value.truthy va then va else eval env b
  | Ast.Index (e, i) -> (
      match (eval env e, eval env i) with
      | List items, Int i -> !items.(list_index items i)
      | Str s, Int i ->
          let n = String.length s in
          let i = if i < 0 then i + n else i in
          if i < 0 || i >= n then err "string index out of range"
          else Str (String.make 1 s.[i])
      | v, _ -> err "%s is not indexable" (Value.type_name v))
  | Ast.Method_call (obj, meth, args) -> (
      let v = eval env obj in
      let args = List.map (eval env) args in
      match (v, meth, args) with
      | List items, "append", [ x ] ->
          items := Array.append !items [| x |];
          None_v
      | List items, "pop", [] ->
          let n = Array.length !items in
          if n = 0 then err "pop from empty list"
          else begin
            let last = !items.(n - 1) in
            items := Array.sub !items 0 (n - 1);
            last
          end
      | Str s, "upper", [] -> Str (String.uppercase_ascii s)
      | Str s, "lower", [] -> Str (String.lowercase_ascii s)
      | Str s, "strip", [] -> Str (String.trim s)
      | _ -> err "%s has no method %s" (Value.type_name v) meth)
  | Ast.Call (fname, args) -> (
      let args = List.map (eval env) args in
      if is_builtin fname
         && Option.is_none (Hashtbl.find_opt env.globals fname)
      then builtin env fname args
      else
        match lookup env fname with
        | Func f -> call_function env f args
        | v -> err "%s is not callable" (Value.type_name v))

and call_function env f args =
  if List.length args <> List.length f.params then
    err "%s() takes %d arguments (%d given)" f.fname
      (List.length f.params) (List.length args);
  let frame = Hashtbl.create 8 in
  List.iter2 (fun p a -> Hashtbl.replace frame p a) f.params args;
  let saved = env.locals in
  env.locals <- Some frame;
  let result =
    try
      exec_block env f.body;
      None_v
    with
    | Return_exc v -> v
    | e ->
        env.locals <- saved;
        raise e
  in
  env.locals <- saved;
  result

and assign env target value =
  match target with
  | Ast.Target_name n -> bind env n value
  | Ast.Target_index (e, i) -> (
      match (eval env e, eval env i) with
      | List items, Int i -> !items.(list_index items i) <- value
      | v, _ -> err "cannot index-assign %s" (Value.type_name v))

and read_target env = function
  | Ast.Target_name n -> lookup env n
  | Ast.Target_index (e, i) -> eval env (Ast.Index (e, i))

and exec env (s : Ast.stmt) =
  tick env;
  match s with
  | Ast.Pass -> ()
  | Ast.Expr_stmt e -> env.last <- eval env e
  | Ast.Assign (t, e) -> assign env t (eval env e)
  | Ast.Aug_assign (t, op, e) ->
      let current = read_target env t in
      assign env t (arith op current (eval env e))
  | Ast.Return e ->
      raise (Return_exc (match e with None -> None_v | Some e -> eval env e))
  | Ast.Break -> raise Break_exc
  | Ast.Continue -> raise Continue_exc
  | Ast.Def (name, params, body) ->
      bind env name (Func { fname = name; params; body })
  | Ast.If (branches, else_body) ->
      let rec try_branches = function
        | [] -> exec_block env else_body
        | (cond, body) :: rest ->
            if Value.truthy (eval env cond) then exec_block env body
            else try_branches rest
      in
      try_branches branches
  | Ast.While (cond, body) ->
      let rec loop () =
        if Value.truthy (eval env cond) then begin
          (match exec_block env body with
          | () -> ()
          | exception Continue_exc -> ());
          loop ()
        end
      in
      (try loop () with Break_exc -> ())
  | Ast.For (var, iter, body) -> (
      let items =
        match eval env iter with
        | List items -> Array.copy !items
        | Str s ->
            Array.init (String.length s) (fun i -> Str (String.make 1 s.[i]))
        | v -> err "%s is not iterable" (Value.type_name v)
      in
      try
        Array.iter
          (fun item ->
            bind env var item;
            try exec_block env body with Continue_exc -> ())
          items
      with Break_exc -> ())

and exec_block env stmts = List.iter (exec env) stmts

(* ------------------------------------------------------------------ *)

(* The compiled-program cache: the compute services (Fig 17/18) run the
   same small program once per request, and re-lexing/re-parsing it on
   every call dominated the interpreter's cost. Parsed programs are
   cached per domain (simulation workers never share one, so no locks)
   keyed by source text. Parsing consumes no interpreter steps, so a
   cached run's step count is identical to a fresh one's, and the AST
   is immutable after parse so sharing it across runs is safe. *)
let cache_key :
    (string, Ast.stmt list) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let cache_limit = 256

let compile ~cache source =
  if not cache then Parser.parse source
  else begin
    let tbl = Domain.DLS.get cache_key in
    match Hashtbl.find_opt tbl source with
    | Some prog -> prog
    | None ->
        let prog = Parser.parse source in
        if Hashtbl.length tbl >= cache_limit then Hashtbl.reset tbl;
        Hashtbl.add tbl source prog;
        prog
  end

let run_exn ?(max_steps = 50_000_000) ?(cache = true) source =
  let prog = compile ~cache source in
  let env =
    {
      globals = Hashtbl.create 32;
      locals = None;
      steps = 0;
      max_steps;
      out = [];
      last = None_v;
    }
  in
  exec_block env prog;
  { stdout = List.rev env.out; result = env.last; steps = env.steps }

let run ?max_steps ?cache source =
  match run_exn ?max_steps ?cache source with
  | outcome -> Ok outcome
  | exception Runtime_error msg -> Error ("runtime error: " ^ msg)
  | exception Step_limit_exceeded -> Error "step limit exceeded"
  | exception Parser.Parse_error msg -> Error ("syntax error: " ^ msg)
  | exception Lexer.Lex_error (line, msg) ->
      Error (Printf.sprintf "syntax error: line %d: %s" line msg)
  | exception Return_exc _ -> Error "runtime error: 'return' outside function"
  | exception Break_exc -> Error "runtime error: 'break' outside loop"
  | exception Continue_exc ->
      Error "runtime error: 'continue' outside loop"
