(** Streaming latency accumulator for SLO percentiles.

    An append-only sample sink sized for open-loop workloads (millions
    of per-request latencies): amortised O(1) [add] into a growable
    flat float array, quantiles computed by sorting once on demand and
    caching the sorted view until the next [add]. Exact — every sample
    is retained — so the reported p50/p99/p999 are digest-stable
    functions of the input stream, unlike a sketch. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** [0.] when empty. *)

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0, 1], by nearest-rank on the sorted
    samples. @raise Invalid_argument when empty or [q] outside
    [0, 1]. *)

val min : t -> float
(** @raise Invalid_argument when empty. *)

val max : t -> float
(** @raise Invalid_argument when empty. *)

val merge_into : t -> src:t -> unit
(** Append every sample of [src] (in insertion order) to [t]. *)

val sorted_points : t -> every:int -> (float * float) list
(** CDF rendering: every [every]-th point of the sorted samples as
    [(value, cumulative fraction)], always including the first and
    last. Empty list when empty. *)
