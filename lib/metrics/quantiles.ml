type t = {
  mutable samples : float array;
  mutable len : int;
  mutable total : float;
  (* Sorted view, invalidated by [add]; rebuilt at most once per batch
     of queries. *)
  mutable sorted : float array option;
}

let create () =
  { samples = Array.make 1024 0.; len = 0; total = 0.; sorted = None }

let add t x =
  if t.len = Array.length t.samples then begin
    let bigger = Array.make (2 * t.len) 0. in
    Array.blit t.samples 0 bigger 0 t.len;
    t.samples <- bigger
  end;
  t.samples.(t.len) <- x;
  t.len <- t.len + 1;
  t.total <- t.total +. x;
  t.sorted <- None

let count t = t.len

let mean t = if t.len = 0 then 0. else t.total /. float_of_int t.len

let sorted t =
  match t.sorted with
  | Some a -> a
  | None ->
      let a = Array.sub t.samples 0 t.len in
      Array.sort compare a;
      t.sorted <- Some a;
      a

let quantile t q =
  if t.len = 0 then invalid_arg "Quantiles.quantile: empty";
  if q < 0. || q > 1. then invalid_arg "Quantiles.quantile: q outside [0,1]";
  let a = sorted t in
  let rank =
    Stdlib.min (t.len - 1)
      (int_of_float (Float.round (q *. float_of_int (t.len - 1))))
  in
  a.(rank)

let min t =
  if t.len = 0 then invalid_arg "Quantiles.min: empty";
  (sorted t).(0)

let max t =
  if t.len = 0 then invalid_arg "Quantiles.max: empty";
  (sorted t).(t.len - 1)

let merge_into t ~src =
  for i = 0 to src.len - 1 do
    add t src.samples.(i)
  done

let sorted_points t ~every =
  if t.len = 0 then []
  else begin
    let a = sorted t in
    let every = Stdlib.max 1 every in
    let out = ref [] in
    for i = t.len - 1 downto 0 do
      if i = 0 || i = t.len - 1 || i mod every = 0 then
        out :=
          (a.(i), float_of_int (i + 1) /. float_of_int t.len) :: !out
    done;
    !out
  end
