module Engine = Lightvm_sim.Engine

type port = int

type error = Invalid_port | Wrong_domain | Already_bound | Not_bound

type endpoint = { domid : int; port : port }

type state =
  | Unbound of { expected_remote : int }
  | Bound of endpoint (* the peer endpoint *)
  | Closed

type chan = {
  mutable state : state;
  mutable handler : (unit -> unit) option;
}

type t = {
  (* (domid, port) -> channel endpoint *)
  table : (int * int, chan) Hashtbl.t;
  next_port : (int, int) Hashtbl.t;
}

let create () = { table = Hashtbl.create 64; next_port = Hashtbl.create 16 }

let fresh_port t domid =
  let n = Option.value ~default:1 (Hashtbl.find_opt t.next_port domid) in
  Hashtbl.replace t.next_port domid (n + 1);
  n

let alloc_unbound t ~domid ~remote =
  let port = fresh_port t domid in
  Hashtbl.replace t.table (domid, port)
    { state = Unbound { expected_remote = remote }; handler = None };
  port

let bind_interdomain t ~domid ~remote ~remote_port =
  match Hashtbl.find_opt t.table (remote, remote_port) with
  | None -> Error Invalid_port
  | Some peer -> (
      match peer.state with
      | Bound _ -> Error Already_bound
      | Closed -> Error Invalid_port
      | Unbound { expected_remote } ->
          if expected_remote <> domid then Error Wrong_domain
          else begin
            let port = fresh_port t domid in
            let local =
              {
                state = Bound { domid = remote; port = remote_port };
                handler = None;
              }
            in
            Hashtbl.replace t.table (domid, port) local;
            peer.state <- Bound { domid; port };
            Ok port
          end)

let set_handler t ~domid ~port f =
  match Hashtbl.find_opt t.table (domid, port) with
  | None -> invalid_arg "Evtchn.set_handler: no such port"
  | Some chan -> chan.handler <- Some f

let notify t ~domid ~port =
  match Hashtbl.find_opt t.table (domid, port) with
  | None -> Error Invalid_port
  | Some chan -> (
      match chan.state with
      | Unbound _ -> Error Not_bound
      | Closed -> Error Invalid_port
      | Bound peer -> (
          match Hashtbl.find_opt t.table (peer.domid, peer.port) with
          | None -> Error Invalid_port
          | Some peer_chan ->
              (match peer_chan.handler with
              | Some handler ->
                  Engine.spawn ~name:"evtchn-handler" handler
              | None -> () (* lost, like a masked interrupt *));
              Ok ()))

let close t ~domid ~port =
  match Hashtbl.find_opt t.table (domid, port) with
  | None -> Error Invalid_port
  | Some chan ->
      (match chan.state with
      | Bound peer -> (
          match Hashtbl.find_opt t.table (peer.domid, peer.port) with
          | Some peer_chan -> peer_chan.state <- Unbound { expected_remote = domid }
          | None -> ())
      | Unbound _ | Closed -> ());
      chan.state <- Closed;
      chan.handler <- None;
      Hashtbl.remove t.table (domid, port);
      Ok ()

let ports_of t ~domid =
  List.sort compare
    (Hashtbl.fold
       (fun (d, p) _ acc -> if d = domid then p :: acc else acc)
       t.table [])

let close_all t ~domid =
  let ports = ports_of t ~domid in
  List.iter (fun port -> ignore (close t ~domid ~port)) ports;
  (* Domids are never reused, so a destroyed domain's port counter is
     dead state: without this removal the counter table gains one
     entry per VM ever created, and a host churning millions of
     serverless lifecycles drags an ever-growing live set through
     every major GC cycle. *)
  Hashtbl.remove t.next_port domid;
  List.length ports

let close_peers_of t ~domid =
  let stale =
    Hashtbl.fold
      (fun (d, p) chan acc ->
        match chan.state with
        | Unbound { expected_remote } when expected_remote = domid ->
            (d, p) :: acc
        | Bound peer when peer.domid = domid -> (d, p) :: acc
        | Unbound _ | Bound _ | Closed -> acc)
      t.table []
  in
  List.iter
    (fun (d, p) -> ignore (close t ~domid:d ~port:p))
    (List.sort compare stale);
  List.length stale

(* Open endpoints across all domains, for leak accounting. *)
let count t = Hashtbl.length t.table
