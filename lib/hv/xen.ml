module Engine = Lightvm_sim.Engine
module Cpu = Lightvm_sim.Cpu
module Trace = Lightvm_trace.Trace

type error = ENOMEM | ENOENT | EINVAL

type t = {
  platform : Params.platform;
  costs : Params.costs;
  frames : Frames.t;
  evtchn : Evtchn.t;
  gnttab : Gnttab.t;
  devpage : Devpage.t;
  cpu : Cpu.t;
  domains : (int, Domain.t) Hashtbl.t;
  (* Guest RAM is tracked separately from hypervisor overhead so
     populate/depopulate and the Fig 14 accounting stay exact. *)
  ram_kb : (int, int) Hashtbl.t; (* domid -> populated guest RAM *)
  pending_mem_kb : (int, int) Hashtbl.t; (* requested but not populated *)
  mutable next_domid : int;
  mutable rr_next : int; (* round-robin index into guest cores *)
  mutable hypercalls : int;
}

(* The hypervisor itself occupies a fixed slice of host memory. *)
let xen_own_mem_kb = 128 * 1024

let xen_owner = -1

let platform t = t.platform
let costs t = t.costs
let cpu t = t.cpu
let evtchn t = t.evtchn
let gnttab t = t.gnttab
let devpage t = t.devpage
let hypercalls t = t.hypercalls

let dom0_cores t = List.init t.platform.Params.dom0_cores Fun.id

let guest_cores t =
  List.init
    (Params.guest_cores t.platform)
    (fun i -> t.platform.Params.dom0_cores + i)

(* Every hypercall is one guest->hypervisor->guest round trip: two
   privilege crossings. *)
let hypercall ?(op = "hypercall") t ~cost =
  t.hypercalls <- t.hypercalls + 1;
  Trace.Counter.incr "hv.hypercalls";
  Trace.Counter.incr ~by:2 "hv.crossings";
  Trace.Span.with_ ~category:"hv" op (fun () ->
      Engine.sleep (t.costs.Params.hypercall_base +. cost))

let boot ?(platform = Params.xeon_e5_1630) ?(costs = Params.default_costs)
    ?(dom0_mem_mb = 4096) () =
  let frames = Frames.create ~total_kb:(platform.Params.ram_mb * 1024) in
  (match Frames.alloc frames ~owner:xen_owner ~kb:xen_own_mem_kb with
  | Ok () -> ()
  | Error Frames.ENOMEM -> invalid_arg "Xen.boot: host too small");
  (match Frames.alloc frames ~owner:0 ~kb:(dom0_mem_mb * 1024) with
  | Ok () -> ()
  | Error Frames.ENOMEM -> invalid_arg "Xen.boot: host too small for Dom0");
  let cpu =
    Cpu.create ~speed:platform.Params.speed ~ncores:platform.Params.cores ()
  in
  let domains = Hashtbl.create 64 in
  let dom0 =
    Domain.make ~domid:0 ~name:"Domain-0"
      ~vcpus:platform.Params.dom0_cores
      ~max_mem_kb:(dom0_mem_mb * 1024) ~core:0
  in
  Domain.set_state dom0 Domain.Running;
  Hashtbl.replace domains 0 dom0;
  {
    platform;
    costs;
    frames;
    evtchn = Evtchn.create ();
    gnttab = Gnttab.create ();
    devpage = Devpage.create ();
    cpu;
    domains;
    ram_kb = Hashtbl.create 64;
    pending_mem_kb = Hashtbl.create 64;
    next_domid = 1;
    rr_next = 0;
    hypercalls = 0;
  }

let domain t ~domid = Hashtbl.find_opt t.domains domid

let domains t =
  List.sort
    (fun a b -> compare (Domain.domid a) (Domain.domid b))
    (Hashtbl.fold (fun _ d acc -> d :: acc) t.domains [])

let guest_count t = Hashtbl.length t.domains - 1

let overhead_kb t ~mem_kb =
  t.costs.Params.domain_fixed_overhead_kb
  + int_of_float
      (t.costs.Params.domain_mem_overhead_fraction *. float_of_int mem_kb)

let create_domain t ~name ~vcpus ~mem_mb =
  let c = t.costs in
  hypercall ~op:"domctl_create" t
    ~cost:
      (c.Params.domctl_create
      +. (float_of_int vcpus *. c.Params.vcpu_init));
  let mem_kb = int_of_float (mem_mb *. 1024.) in
  let overhead = overhead_kb t ~mem_kb in
  let domid = t.next_domid in
  match Frames.alloc t.frames ~owner:domid ~kb:overhead with
  | Error Frames.ENOMEM -> Error ENOMEM
  | Ok () ->
      t.next_domid <- t.next_domid + 1;
      let cores = guest_cores t in
      let core =
        match cores with
        | [] -> 0
        | _ ->
            let core = List.nth cores (t.rr_next mod List.length cores) in
            t.rr_next <- t.rr_next + 1;
            core
      in
      let dom = Domain.make ~domid ~name ~vcpus ~max_mem_kb:mem_kb ~core in
      Hashtbl.replace t.domains domid dom;
      Hashtbl.replace t.pending_mem_kb domid mem_kb;
      Devpage.setup t.devpage ~domid;
      Ok dom

let with_domain t ~domid f =
  match domain t ~domid with
  | None -> Error ENOENT
  | Some dom -> f dom

let populate_memory t ~domid =
  with_domain t ~domid (fun dom ->
      let mem_kb =
        match Hashtbl.find_opt t.pending_mem_kb domid with
        | Some kb -> kb
        | None -> Domain.max_mem_kb dom
      in
      let pages = mem_kb / t.costs.Params.page_size_kb in
      hypercall ~op:"populate_physmap" t
        ~cost:(float_of_int pages *. t.costs.Params.per_page_populate);
      match Frames.alloc t.frames ~owner:domid ~kb:mem_kb with
      | Error Frames.ENOMEM -> Error ENOMEM
      | Ok () ->
          Hashtbl.remove t.pending_mem_kb domid;
          Hashtbl.replace t.ram_kb domid mem_kb;
          Ok ())

let load_image t ~domid ~size_mb =
  with_domain t ~domid (fun _dom ->
      let pages = Params.pages_of_mb_f t.costs size_mb in
      hypercall ~op:"load_image" t
        ~cost:(float_of_int pages *. t.costs.Params.per_page_copy);
      Ok ())

let unpause t ~domid =
  with_domain t ~domid (fun dom ->
      hypercall ~op:"domctl_unpause" t ~cost:5.0e-6;
      match Domain.state dom with
      | Domain.Paused | Domain.Running ->
          Domain.set_state dom Domain.Running;
          Ok ()
      | Domain.Shutdown _ | Domain.Dying -> Error EINVAL)

let pause t ~domid =
  with_domain t ~domid (fun dom ->
      hypercall ~op:"domctl_pause" t ~cost:5.0e-6;
      match Domain.state dom with
      | Domain.Running | Domain.Paused ->
          Domain.set_state dom Domain.Paused;
          Ok ()
      | Domain.Shutdown _ | Domain.Dying -> Error EINVAL)

let shutdown t ~domid ~reason =
  with_domain t ~domid (fun dom ->
      hypercall ~op:"sched_shutdown" t ~cost:10.0e-6;
      Domain.set_state dom (Domain.Shutdown reason);
      Ok ())

let destroy t ~domid =
  if domid = 0 then Error EINVAL
  else
    with_domain t ~domid (fun dom ->
        Domain.set_state dom Domain.Dying;
        hypercall ~op:"domctl_destroy" t ~cost:t.costs.Params.domctl_destroy;
        ignore (Evtchn.close_all t.evtchn ~domid);
        (* Peer-side teardown, all covered by the one domctl_destroy
           charge: channels other domains had bound to (or reserved
           for) this one, grant entries it owned, mappings it held. *)
        ignore (Evtchn.close_peers_of t.evtchn ~domid);
        ignore (Gnttab.release_domain t.gnttab ~domid);
        Devpage.teardown t.devpage ~domid;
        ignore (Frames.free_all t.frames ~owner:domid);
        Hashtbl.remove t.ram_kb domid;
        Hashtbl.remove t.pending_mem_kb domid;
        Hashtbl.remove t.domains domid;
        Ok ())

let consume_guest t ~domid work =
  match domain t ~domid with
  | None -> invalid_arg "Xen.consume_guest: no such domain"
  | Some dom -> Cpu.consume t.cpu ~core:(Domain.core dom) work

let consume_dom0 t work =
  let core = Cpu.pick_least_loaded t.cpu ~cores:(dom0_cores t) in
  Cpu.consume t.cpu ~core work

let core_of t ~domid = Option.map Domain.core (domain t ~domid)

let free_mem_kb t = Frames.free_kb t.frames
let used_mem_kb t = Frames.used_kb t.frames
let total_mem_kb t = Frames.total_kb t.frames
let domain_mem_kb t ~domid = Frames.owned_kb t.frames ~owner:domid
