(** Grant tables: the page-sharing mechanism behind split drivers.

    A domain grants a peer access to one of its frames and hands over
    the grant reference (via XenStore or a noxs device page); the peer
    maps it. References cannot be revoked while mapped. *)

type t

type gref = int

type error = Invalid_ref | Wrong_domain | Still_mapped | Not_mapped

val create : unit -> t

val grant_access : t -> owner:int -> grantee:int -> frame:int -> gref
(** Returns the grant reference (scoped to [owner]'s table). *)

val map : t -> grantee:int -> owner:int -> gref -> (int, error) result
(** Map the granted frame; returns the frame number. *)

val unmap : t -> grantee:int -> owner:int -> gref -> (unit, error) result

val end_access : t -> owner:int -> gref -> (unit, error) result
(** Fails with [Still_mapped] while the grantee holds a mapping. *)

val release_domain : t -> domid:int -> int
(** Domain-death cleanup: drop every entry [domid] owns (the table
    pages are freed with the domain, mapped or not) and release the
    mappings it held on other domains' entries. Returns how many owned
    entries were dropped. *)

val active_grants : t -> owner:int -> int
(** Outstanding grant entries owned by [owner]. *)

val mapped_count : t -> owner:int -> gref -> int

val count : t -> int
(** Outstanding grant entries across all owners. For leak accounting —
    see [Lightvm.Host.resources]. *)
