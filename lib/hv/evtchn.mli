(** Event channels: Xen's virtual interrupt lines.

    The lifecycle mirrors the real ABI: one side allocates an unbound
    port naming the expected peer ([alloc_unbound]), the peer binds to
    it ([bind_interdomain]), and either side can then [notify] the
    other, which runs the handler the receiving domain registered for
    its port. *)

type t

type port = int

type error = Invalid_port | Wrong_domain | Already_bound | Not_bound

val create : unit -> t

val alloc_unbound : t -> domid:int -> remote:int -> port
(** A fresh port owned by [domid], bindable only by [remote]. *)

val bind_interdomain :
  t -> domid:int -> remote:int -> remote_port:port -> (port, error) result
(** Bind caller's fresh local port to the peer's unbound port. *)

val set_handler : t -> domid:int -> port:port -> (unit -> unit) -> unit
(** Handler invoked (in a fresh simulation process) when the peer
    notifies. Replaces any previous handler. *)

val notify : t -> domid:int -> port:port -> (unit, error) result
(** Fire the event to whoever is bound at the other end. Succeeds even
    if the peer has no handler (the event is then lost, as a real
    masked interrupt would be). *)

val close : t -> domid:int -> port:port -> (unit, error) result

val close_all : t -> domid:int -> int
(** Close every port owned by the domain; returns how many. *)

val close_peers_of : t -> domid:int -> int
(** Close every {e other} domain's port that is bound to [domid] or
    unbound-but-reserved for it; returns how many. Models the peer-side
    teardown domain destruction triggers: after {!close_all} the dead
    domain's peers hold dangling endpoints no one will ever rebind. *)

val ports_of : t -> domid:int -> port list

val count : t -> int
(** Open endpoints across all domains (unbound ports count one; a bound
    pair counts two). For leak accounting — see [Lightvm.Host.resources]. *)
