type gref = int

type error = Invalid_ref | Wrong_domain | Still_mapped | Not_mapped

type entry = {
  grantee : int;
  frame : int;
  mutable mapped : int; (* mapping refcount *)
}

type t = {
  table : (int * gref, entry) Hashtbl.t; (* (owner, gref) -> entry *)
  next_ref : (int, int) Hashtbl.t;
}

let create () = { table = Hashtbl.create 64; next_ref = Hashtbl.create 16 }

let grant_access t ~owner ~grantee ~frame =
  Lightvm_trace.Trace.Counter.incr "hv.gnttab_ops";
  let gref =
    Option.value ~default:8 (Hashtbl.find_opt t.next_ref owner)
  in
  Hashtbl.replace t.next_ref owner (gref + 1);
  Hashtbl.replace t.table (owner, gref) { grantee; frame; mapped = 0 };
  gref

let map t ~grantee ~owner gref =
  Lightvm_trace.Trace.Counter.incr "hv.gnttab_ops";
  match Hashtbl.find_opt t.table (owner, gref) with
  | None -> Error Invalid_ref
  | Some entry ->
      if entry.grantee <> grantee then Error Wrong_domain
      else begin
        entry.mapped <- entry.mapped + 1;
        Ok entry.frame
      end

let unmap t ~grantee ~owner gref =
  Lightvm_trace.Trace.Counter.incr "hv.gnttab_ops";
  match Hashtbl.find_opt t.table (owner, gref) with
  | None -> Error Invalid_ref
  | Some entry ->
      if entry.grantee <> grantee then Error Wrong_domain
      else if entry.mapped = 0 then Error Not_mapped
      else begin
        entry.mapped <- entry.mapped - 1;
        Ok ()
      end

let end_access t ~owner gref =
  match Hashtbl.find_opt t.table (owner, gref) with
  | None -> Error Invalid_ref
  | Some entry ->
      if entry.mapped > 0 then Error Still_mapped
      else begin
        Hashtbl.remove t.table (owner, gref);
        Ok ()
      end

let release_domain t ~domid =
  let owned =
    Hashtbl.fold
      (fun (o, g) _ acc -> if o = domid then (o, g) :: acc else acc)
      t.table []
  in
  List.iter (Hashtbl.remove t.table) owned;
  Hashtbl.iter
    (fun _ entry -> if entry.grantee = domid then entry.mapped <- 0)
    t.table;
  Hashtbl.remove t.next_ref domid;
  List.length owned

let active_grants t ~owner =
  Hashtbl.fold
    (fun (o, _) _ acc -> if o = owner then acc + 1 else acc)
    t.table 0

let mapped_count t ~owner gref =
  match Hashtbl.find_opt t.table (owner, gref) with
  | None -> 0
  | Some entry -> entry.mapped

let count t = Hashtbl.length t.table
