(** The hypervisor: domains, memory, CPUs, event channels, grant tables
    and noxs device pages behind a hypercall-shaped interface.

    Every entry point charges simulated time (privilege switch plus the
    operation's work) and bumps the hypercall counter, so toolstacks can
    attribute creation time to the "hypervisor" category exactly the way
    the paper's Figure 5 instrumentation does. *)

type t

type error =
  | ENOMEM
  | ENOENT  (** no such domain *)
  | EINVAL

val boot :
  ?platform:Params.platform ->
  ?costs:Params.costs ->
  ?dom0_mem_mb:int ->
  unit ->
  t
(** Boot the host (must run inside a simulation). Creates Dom0 pinned to
    the platform's reserved cores and accounts its memory. Default
    platform: the paper's 4-core Xeon. *)

val platform : t -> Params.platform

val costs : t -> Params.costs

val cpu : t -> Lightvm_sim.Cpu.t

val evtchn : t -> Evtchn.t

val gnttab : t -> Gnttab.t

val devpage : t -> Devpage.t

val hypercalls : t -> int
(** Total hypercalls performed so far. *)

val hypercall : ?op:string -> t -> cost:float -> unit
(** Charge one generic hypercall of the given extra cost. [op] names
    the operation in the trace span (default ["hypercall"]). *)

(** {1 Domain control} *)

val create_domain :
  t -> name:string -> vcpus:int -> mem_mb:float -> (Domain.t, error) result
(** DOMCTL_createdomain: allocates the domid and hypervisor-side
    structures (charging their memory overhead), assigns the vCPU to a
    guest core round-robin. Guest RAM itself is not yet populated. *)

val populate_memory : t -> domid:int -> (unit, error) result
(** Populate the domain's RAM ([mem_mb] from creation); fails with
    ENOMEM when the host is out of frames. *)

val load_image : t -> domid:int -> size_mb:float -> (unit, error) result
(** Copy a kernel image into guest memory: cost linear in image size
    (the Figure 2 effect). *)

val unpause : t -> domid:int -> (unit, error) result

val pause : t -> domid:int -> (unit, error) result

val shutdown :
  t -> domid:int -> reason:Domain.shutdown_reason -> (unit, error) result

val destroy : t -> domid:int -> (unit, error) result
(** Tears down event channels, grants, the device page, frees all
    memory, and retires the domid. *)

val domain : t -> domid:int -> Domain.t option

val domains : t -> Domain.t list
(** All live domains (including Dom0), by ascending domid. *)

val guest_count : t -> int
(** Live domains excluding Dom0. *)

(** {1 CPU} *)

val consume_guest : t -> domid:int -> float -> unit
(** Run [work] seconds of reference CPU on the domain's core (shares
    the core with whatever else runs there). *)

val consume_dom0 : t -> float -> unit
(** Run work on the least-loaded Dom0 core. *)

val dom0_cores : t -> int list

val guest_cores : t -> int list

val core_of : t -> domid:int -> int option

(** {1 Memory accounting} *)

val free_mem_kb : t -> int

val used_mem_kb : t -> int

val total_mem_kb : t -> int

val domain_mem_kb : t -> domid:int -> int
(** Frames held on behalf of the domain (RAM + hypervisor overhead). *)
