(** Reproductions of every figure in the paper's evaluation (Section 6)
    and use cases (Section 7). Each function runs one or more complete
    simulations and returns the figure's data as labelled series or a
    table; sizes default to laptop-friendly scales and accept the
    paper's full parameters (see the [?n]-style arguments).

    The per-experiment index lives in DESIGN.md; paper-vs-measured
    numbers in EXPERIMENTS.md. *)

module Series = Lightvm_metrics.Series
module Table = Lightvm_metrics.Table

type labelled = {
  label : string;
  series : Series.t;
}

(** {1 Partitioned simulation}

    The multi-host families ([scale]'s partitioned row and the
    [cluster] policy jobs) can run each simulated host in its own
    partition of a {!Lightvm_sim.Engine.run_partitioned} — conservative
    synchronization with the modeled top-of-rack switch latency as the
    lookahead — executing on up to [sim_jobs] cores. [`None] runs the
    identical workload in a plain single-heap {!Lightvm_sim.Engine.run}.
    Both modes, at any [sim_jobs], produce bit-identical output
    (test/test_partition.ml pins this). *)

type partition = [ `Host | `None ]

val partition_name : partition -> string

val partition_of_string : string -> (partition, string) result
(** Parses ["host"] and ["none"] (the [--partition] flag). *)

val fig1_syscall_growth : unit -> Table.t * float
(** The Linux syscall-count table and its per-year growth slope. *)

val fig2_boot_vs_image_size : ?sizes_mb:float list -> unit -> Series.t
(** Boot time (ms) of the daytime unikernel vs image size (MB),
    images inflated with binary objects, stored on a ramdisk. *)

val fig4_instantiation : ?n:int -> unit -> labelled list
(** Creation and boot time series (x = number of running guests,
    y = ms) for Debian/Tinyx/unikernel under xl, Docker containers and
    processes. Paper scale: [n = 1000]. *)

val fig5_breakdown : ?n:int -> ?sample:int -> unit -> labelled list
(** xl + Debian creation-time breakdown: one series per category
    (xenstore, devices, toolstack, load, hypervisor, config). *)

val fig9_create_times : ?n:int -> unit -> labelled list
(** Creation+boot of the daytime unikernel under all five toolstack
    combinations. *)

val scale_creation : ?n:int -> unit -> labelled list
(** The Fig 9 creation sweep pushed to the simulator's 10,000-guest
    design target for xl, chaos [XS] and chaos [NoXS]; each mode runs
    one simulation whose 2000/5000/10000-guest prefixes (capped by
    [?n]) yield every count's curve, sampled to ~20 points per curve.
    xl stops at 2000: its modeled libxl protocol is Θ(N²) simulated
    round trips, so the quadratic trend is established early and chaos
    [XS] carries the full-scale XenStore stress. A final partitioned
    row brings the same top-count population up as 8 concurrent chaos
    [XS] hosts, one partition each (see {!type-partition}). *)

val reliability_default_spec : string
(** The fault spec the [reliability] experiment runs when none is given
    on the command line: XenStore conflicts and quota rejections,
    mid-pipeline phase failures, hotplug hangs and backend allocation
    failures, each at a low base probability (see DESIGN.md "Failure
    model"). Parses with [Lightvm_sim.Fault.parse_spec]. *)

val fig10_density :
  ?vms:int -> ?containers:int -> unit -> labelled list
(** LightVM (noop unikernel, no devices) vs Docker on the 64-core AMD
    machine. Paper scale: [vms = 8000]; Docker wedges around 3000. *)

val fig11_boot_compare : ?n:int -> unit -> labelled list
(** Unikernel and Tinyx guests over LightVM vs Docker containers. *)

val fig12_checkpoint :
  ?n:int -> ?batch:int -> unit -> labelled list * labelled list
(** (save series, restore series) per toolstack mode; each round adds
    [batch] guests and checkpoints [batch] random ones. *)

val fig13_migration : ?n:int -> ?batch:int -> unit -> labelled list

val fig14_memory : ?n:int -> ?sample:int -> unit -> labelled list
(** Total memory usage (MB) vs instance count for Debian, Tinyx,
    Minipython unikernel, Docker and processes. *)

val fig15_cpu_usage :
  ?n:int -> ?sample:int -> ?window:float -> unit -> labelled list
(** Idle CPU utilisation (%% of the whole machine) vs guest count. *)

val fig16a_firewall : ?users:int list -> unit -> Table.t
(** Aggregate throughput and ping RTT for up to 1000 ClickOS firewalls. *)

val fig16b_jit :
  ?arrivals:float list -> ?clients:int -> unit -> labelled list
(** Ping-RTT CDFs for several client inter-arrival times. *)

val fig16c_tls : ?instances:int list -> unit -> labelled list
(** TLS termination throughput vs instance count for bare metal, Tinyx
    and the axtls unikernel. *)

val fig17_18_lambda :
  ?requests:int -> unit -> labelled list * labelled list
(** (Fig 17 service-time series, Fig 18 concurrency-over-time series)
    for chaos [XS] vs LightVM on the overloaded host. *)

val ablation_xenstore : ?n:int -> unit -> labelled list
(** Design-choice ablation: chaos [XS] creation times under oxenstored,
    cxenstored (the paper's "much higher overheads" footnote), and
    oxenstored with access logging disabled (removes the rotation
    spikes but not the growth). *)

val pause_unpause : unit -> Table.t
(** Section 2's third requirement: pausing/unpausing a guest must be as
    quick as freezing/thawing a container. *)

val wan_migration : unit -> Table.t
(** Migration over a 1 Gbps / 10 ms RTT link (Section 7.1 reports
    ~150 ms for a ClickOS guest). *)

val headline_numbers : unit -> Table.t
(** The abstract's numbers: 2.3 ms boot, save/restore/migrate times,
    image sizes and footprints — paper vs this reproduction. *)

val tinyx_table : unit -> Table.t
(** Section 3.2 build-system numbers for several applications. *)

(** {1 Uniform result API}

    Every experiment above is also reachable through {!all} (or {!find})
    and returns the same {!result} record, so front ends dispatch and
    render generically instead of pattern-matching per-figure shapes. *)

type result = {
  name : string;
  figure : string;  (** paper figure or section, e.g. ["Fig 5"] *)
  series : labelled list;
  tables : Table.t list;
  notes : string list;
  prefix_seconds : float;
      (** Wall-clock seconds spent building or loading shared boot
          prefixes (see {!prefixes}); [0.] for experiments that use
          none. Real time, not simulated time: excluded from rendered
          output so digests stay a pure function of the inputs. *)
}

val all : (string * (unit -> result)) list
(** Experiments at their default (laptop-friendly) scales, keyed by
    name ([fig1] ... [fig18], [scale], [ablation], [pause],
    [wan-migration], [headline], [tinyx]). *)

val names : string list

val registry :
  ?n:int ->
  ?partition:partition ->
  ?sim_jobs:int ->
  unit ->
  (string * (unit -> result)) list
(** Like {!all} with the scale knob (guests/clients/requests — the
    figure's dominant axis) overridden where the experiment has one,
    and the partitioning of the multi-host families (default [`Host]
    with [sim_jobs = 1]: the partitioned engine, windows run inline). *)

val find :
  ?n:int ->
  ?partition:partition ->
  ?sim_jobs:int ->
  string ->
  (unit -> result) option

(** {1 Plans: parallel execution}

    A {!plan} decomposes an experiment into independent jobs — one per
    curve or mode, each a self-contained simulation with its own
    {!Lightvm_sim.Engine.run} and explicit Rng seeds — plus a merge of
    the resulting pieces in fixed job order. Because jobs share no
    state, a job's piece is identical whether it runs inline or on a
    {!Lightvm_sim.Pool} worker, and {!run_plan}'s output is
    bit-identical for any [jobs] count (see test/test_parallel.ml). *)

type piece = {
  p_series : labelled list;
  p_tables : Table.t list;
  p_notes : string list;
  p_prefix_seconds : float;
      (** wall time this job spent building/loading shared prefixes;
          summed across pieces into {!result.prefix_seconds} *)
}
(** One job's contribution to an experiment's output. *)

type plan = {
  plan_name : string;
  plan_figure : string;
  plan_jobs : (string * (unit -> piece)) list;
      (** labelled jobs, e.g. ["fig9/lightvm"]; label order is merge
          order *)
  plan_finish : piece list -> piece;
      (** merge, given pieces in job order; usually concatenation *)
}

val plans :
  ?n:int ->
  ?partition:partition ->
  ?sim_jobs:int ->
  unit ->
  (string * plan) list
(** Same registry as {!registry}, as plans. *)

val reliability_plan :
  ?n:int ->
  ?spec:Lightvm_sim.Fault.spec ->
  ?fault_seed:int64 ->
  unit ->
  plan
(** The [reliability] experiment with an explicit fault spec and seed
    (defaults: {!reliability_default_spec} parsed, seed 42). For each
    of xl, chaos [XS] and chaos [NoXS] at fault multipliers 0/1/2/4 it
    attempts [n] creations (default 200) and reports a per-mode success
    -rate series, per-cell creation-time CDFs, and notes with injected
    -fault counts. Output is a pure function of [(n, spec, fault_seed)]
    — identical for any [jobs] count. An empty [spec] consumes no
    randomness and leaves every digest byte-identical. *)

val cluster_fault_spec : string
(** The migration-fault spec the [cluster] drain job runs when none is
    given explicitly: ["migrate.corrupt:0.6"]. *)

val cluster_plan :
  ?n:int ->
  ?spec:Lightvm_sim.Fault.spec ->
  ?fault_seed:int64 ->
  ?partition:partition ->
  ?sim_jobs:int ->
  unit ->
  plan
(** The [cluster] experiment family: a multi-host cluster (up to 20
    hosts across 4 racks, sized from [n]) brings up [n] guests (default
    500) once per scheduling policy — bin-pack, spread, pool-everywhere.
    Placements are planned by the policy against bookkept views and
    announced on the switch from the control plane; every host then
    creates its assigned guests concurrently (in its own partition with
    [partition = `Host], the default), and the job records per-guest
    create+boot latency plus the final placement distribution. A fourth
    job drains host 0 by live migration under the injected fault [spec]
    (default {!cluster_fault_spec} parsed, seed 42), rebalances, and
    reports the cluster-wide resource accounting check (that job is
    single-heap: migration is cross-partition state motion). Output is
    a pure function of [(n, spec, fault_seed)] — identical for any
    [jobs]/[sim_jobs] count and both partition modes. *)

val plan :
  ?n:int -> ?partition:partition -> ?sim_jobs:int -> string -> plan option

val job_count : plan -> int

val run_plan : ?jobs:int -> plan -> result
(** Run the plan's jobs on a fresh {!Lightvm_sim.Pool} of [jobs]
    workers ([jobs <= 1], the default, runs them inline on the calling
    domain) and merge. [registry]'s runners are [run_plan] with the
    default. *)

(** {1 Prefix caching and snapshot/resume}

    The scale, reliability and cluster-drain families declare shared
    {e boot prefixes}: the part of each job's simulation that is
    identical across curves (a host booted to N guests, a warmed-up
    reliability host, the cluster with all its guests running). Each
    distinct prefix is simulated once per process invocation, captured
    ({!Lightvm_sim.Engine.run_capture}) and frozen to bytes
    ({!Lightvm_sim.Checkpoint.freeze}); every consumer — including jobs
    on different {!Lightvm_sim.Pool} worker domains — thaws its own
    deep copy and runs only its suffix. A suffix run from a thawed
    image renders bit-identically to the unbroken simulation
    (test/test_checkpoint.ml pins this across the jobs x partition
    matrix); the wall time spent on prefixes is reported out of band as
    {!result.prefix_seconds}. *)

type prefix = {
  prefix_key : string;
      (** cache key and on-disk config string, e.g. ["scale:chaos-xs@
          2000"], ["scale-fleet:host/j1@10000"], ["reliability:xl"],
          ["cluster:drain@500"] *)
  prefix_describe : string;  (** one-line human description *)
  prefix_build : unit -> string;
      (** simulate (or fetch from the cache) and return frozen image
          bytes *)
}

val prefixes :
  ?n:int -> ?partition:partition -> ?sim_jobs:int -> unit -> prefix list
(** Every prefix the plans at this scale would use, addressable by
    name. *)

val prefix_cache_reset : unit -> unit
(** Drop all cached images (tests and cold-path benchmarks). Must not
    race in-flight {!prefix.prefix_build} calls. *)

val snapshot_to_file :
  ?n:int ->
  ?partition:partition ->
  ?sim_jobs:int ->
  key:string ->
  path:string ->
  unit ->
  (string, string) Stdlib.result
(** Build the named prefix and write it to [path] with the versioned
    {!Lightvm_sim.Checkpoint} header (config = [key]). [Ok] carries the
    prefix description; [Error] an explanation (unknown key, i/o
    failure, unquiesced prefix). *)

val resume_from_file :
  ?n:int ->
  ?spec:Lightvm_sim.Fault.spec ->
  ?fault_seed:int64 ->
  path:string ->
  unit ->
  (result, string) Stdlib.result
(** Load a snapshot written by {!snapshot_to_file} and run the suffix
    its stored key implies: scale images are extended by [n] more
    creations (default a tenth) and re-rendered; fleet images run their
    second wave; reliability images run an [n]-attempt (default 200)
    fault-injection cell under [spec] (default
    {!reliability_default_spec}) and [fault_seed]; drain images drain
    host 0 under [spec] (default {!cluster_fault_spec}). Header
    mismatches (wrong magic, format version, producing binary) surface
    as [Error] with the structured reason — never as garbage state. *)

(** {1 Testing and bench hooks}

    Each prefixed family exposes its [~snapshot] toggle: [true] (the
    plans' default) runs the capture/freeze/thaw/resume path, [false]
    the original unbroken single-simulation body. The checkpoint test
    suite asserts both render bit-identically; the bench fork-vs-cold
    pair times them against each other. *)

val scale_mode_curves :
  ?snapshot:bool -> counts:int list -> string -> float * labelled list
(** One scale mode's merged curves, mode by slug (["xl"],
    ["chaos-xs"], ["chaos-noxs"]). Returns [(prefix_seconds, rows)]. *)

val scale_fleet_row :
  ?snapshot:bool ->
  count:int ->
  partition:partition ->
  sim_jobs:int ->
  unit ->
  float * labelled
(** The partitioned fleet row: two fan-out waves, snapshot point at the
    wave-1 barrier. *)

val reliability_cell_piece :
  ?snapshot:bool ->
  n:int ->
  mode:string ->
  spec:Lightvm_sim.Fault.spec ->
  seed:int64 ->
  level:float ->
  unit ->
  piece
(** One reliability cell (mode by slug), forked from the warmed-host
    image when [snapshot]. *)

val cluster_drain_piece :
  ?snapshot:bool ->
  guests:int ->
  spec:Lightvm_sim.Fault.spec ->
  fault_seed:int64 ->
  unit ->
  piece
(** The cluster drain job, forked from the booted-cluster image when
    [snapshot]. *)

val scale_cold_full : n:int -> extra:int -> labelled
(** Bench baseline: unbroken chaos [XS] run to [n + extra] guests. *)

val scale_prefix_warm : n:int -> float
(** Build (or fetch) the [n]-guest chaos [XS] image; returns the wall
    seconds it took — the fork row's [prefix_seconds]. *)

val scale_fork_suffix : n:int -> extra:int -> labelled
(** Bench fork path: thaw the [n]-guest image and extend by [extra]
    creations. Renders the same curve as {!scale_cold_full} (the
    resume contract) for a fraction of the work. *)

(** {1 Serverless hooks}

    The open-loop serverless family's CLI, test and bench surface
    (DESIGN.md section 12; the family itself runs via the
    ["serverless"] plan). *)

val serverless_rate : float
(** Mean arrival rate of the family's calibrated cells, req/s — chosen
    inside the VM policies' dom0 creation capacity so Poisson tails
    reflect queueing, not unbounded overload. *)

val serverless_run :
  ?snapshot:bool ->
  ?n:int ->
  ?duration:float ->
  ?spec:Lightvm_sim.Fault.spec ->
  ?fault_seed:int64 ->
  arrival:string ->
  rate:float ->
  policy:string ->
  unit ->
  (result, string) Stdlib.result
(** One configurable cell from CLI flag values: [arrival] is
    ["poisson"], ["diurnal"] or ["mmpp"]; [policy] is ["coldboot"],
    ["warmpool"] or ["container"]. [duration] (simulated seconds of
    arrivals) wins over [n] (a request budget) when both are given.
    [spec] injects creation faults, which surface as failed requests.
    [Error] on an unknown arrival or policy name. *)

val serverless_cell_piece :
  ?snapshot:bool ->
  requests:int ->
  policy:string ->
  arrival:Lightvm_serverless.Arrival.process ->
  ?spec:Lightvm_sim.Fault.spec ->
  seed:int64 ->
  unit ->
  (piece, string) Stdlib.result
(** One family cell with an explicit arrival process and seed;
    [~snapshot:false] runs warm-pool cells unbroken instead of forking
    the prefix image (the checkpoint-equality tests pin both paths to
    the same render). *)

val serverless_fleet :
  requests:int ->
  partition:partition ->
  sim_jobs:int ->
  seed:int64 ->
  unit ->
  piece
(** The multi-host fleet cell: independent warm-pool nodes, one per
    host partition (or all on the single heap with [`None]), merged in
    host order — bit-identical across the jobs x partition matrix. *)

val serverless_bench_summary :
  ?requests:int -> unit -> float * float * float
(** [(cold_p99_us, warm_p99_us, warm_hit_rate)] for the flagship
    Poisson pair at the family seeds — the bench's JSON fields, and
    CI's warm-beats-cold assertion. *)
