module Engine = Lightvm_sim.Engine
module Pool = Lightvm_sim.Pool
module Rng = Lightvm_sim.Rng
module Fault = Lightvm_sim.Fault
module Cpu = Lightvm_sim.Cpu
module Series = Lightvm_metrics.Series
module Table = Lightvm_metrics.Table
module Params = Lightvm_hv.Params
module Xen = Lightvm_hv.Xen
module Image = Lightvm_guest.Image
module Guest = Lightvm_guest.Guest
module Mode = Lightvm_toolstack.Mode
module Vmconfig = Lightvm_toolstack.Vmconfig
module Create = Lightvm_toolstack.Create
module Toolstack = Lightvm_toolstack.Toolstack
module Checkpoint = Lightvm_toolstack.Checkpoint
module Migrate = Lightvm_toolstack.Migrate
module Snap = Lightvm_sim.Checkpoint
module Vmm = Lightvm_cluster.Vmm
module Scheduler = Lightvm_cluster.Scheduler
module Cluster = Lightvm_cluster.Cluster
module Switch = Lightvm_net.Switch
module Machine = Lightvm_container.Machine
module Docker = Lightvm_container.Docker
module Process = Lightvm_container.Process
module Layers = Lightvm_container.Layers
module Syscalls = Lightvm_workloads.Syscalls
module Firewall = Lightvm_workloads.Firewall
module Jit = Lightvm_workloads.Jit
module Tls_term = Lightvm_workloads.Tls_term
module Lambda = Lightvm_workloads.Lambda
module Serverless = Lightvm_serverless.Serverless
module Arrival = Lightvm_serverless.Arrival
module Quantiles = Lightvm_metrics.Quantiles

type labelled = {
  label : string;
  series : Series.t;
}

(* Run a self-contained simulation and return its result; guests with
   periodic background load would keep the event loop alive forever,
   so the simulation is stopped once the experiment body returns. *)
let run_sim f =
  let result = ref None in
  ignore
    (Engine.run (fun () ->
         result := Some (f ());
         Engine.stop ()));
  match !result with
  | Some r -> r
  | None -> failwith "simulation did not complete"

let ms x = x *. 1e3

let mk label unit_label = Series.create ~unit_label ~name:label ()

(* ------------------------------------------------------------------ *)
(* Partitioned simulations.

   The multi-host families (cluster, the partitioned scale row) model
   one partition per host: host [i] owns partition [i + 1], partition 0
   is the control plane. The conservative-sync lookahead is the modeled
   top-of-rack switch latency — every cross-partition interaction in
   the model is a network hop, so it always carries at least the
   lookahead of simulated delay and [Engine.post] never rejects it.

   [`None] runs the *same* workload in a plain single-heap [Engine.run]
   (every [spawn_in]/[post] degrades to [after], same delays). Per-host
   state is disjoint and cross-host effects travel only via switch
   deliveries and completion posts, so the two modes — and any [jobs]
   count — produce bit-identical series (pinned in
   test/test_partition.ml). *)

type partition = [ `Host | `None ]

let partition_name = function `Host -> "host" | `None -> "none"

let partition_of_string = function
  | "host" -> Ok `Host
  | "none" -> Ok `None
  | s ->
      Error
        (Printf.sprintf "unknown partition mode %S (expected host or none)" s)

let lookahead = Switch.default_latency

(* [run_sim] for partitioned families: [f] starts in partition 0. *)
let run_sim_partitioned ~jobs ~partitions f =
  let result = ref None in
  ignore
    (Engine.run_partitioned ~jobs ~lookahead ~partitions (fun () ->
         result := Some (f ());
         Engine.stop ()));
  match !result with
  | Some r -> r
  | None -> failwith "simulation did not complete"

(* Fan out one process per host — host [h] in partition [part_of h] —
   and block (in partition 0) until all complete. Dispatch and the
   completion notification each model one switch hop, identical in both
   partition modes. *)
let fan_out_hosts ~hosts ~part_of work =
  let all_done = Engine.Ivar.create () in
  let remaining = ref hosts in
  for h = 0 to hosts - 1 do
    Engine.spawn_in
      ~name:(Printf.sprintf "host-%d" h)
      ~partition:(part_of h) ~delay:lookahead
      (fun () ->
        work h;
        Engine.post ~partition:0 ~delay:lookahead (fun () ->
            decr remaining;
            if !remaining = 0 then Engine.Ivar.fill all_done ()))
  done;
  if hosts > 0 then Engine.Ivar.read all_done

(* ------------------------------------------------------------------ *)
(* Vmm-backed lifecycle helpers.

   Every VM lifecycle operation in the experiment bodies flows through
   the cluster library's Vmm API (the public lifecycle surface). The
   helpers reproduce the measurement arithmetic of the original inline
   implementations exactly — t0 / now-.t0 / now-.t0-.t_create — so the
   digest-pinned renders are bit-identical to the pre-API code. The
   returned [Create.created] handle feeds the bodies that reach into
   toolstack internals (breakdown categories, checkpoint victims). *)

let vmm_created host (vi : Vmm.vm_info) =
  match Toolstack.vm (Vmm.toolstack host) ~domid:vi.Vmm.vi_domid with
  | Some created -> created
  | None -> assert false

let vm_create_exn host ?name ?nics ?disks image =
  match Vmm.vm_create host (Vmm.vm_request ?name ?nics ?disks image) with
  | Ok vi -> vmm_created host vi
  | Error (Vmm.Vm_create_failed msg) -> raise (Create.Create_failed msg)
  | Error e -> raise (Create.Create_failed (Vmm.error_to_string e))

(* Create a VM and block until its guest is up. *)
let launch host ?name ?nics ?disks image =
  let created = vm_create_exn host ?name ?nics ?disks image in
  ignore (Vmm.vm_boot host ~domid:created.Create.domid);
  created

(* [(vm, create_seconds, boot_seconds)]. *)
let launch_timed host ?name ?nics ?disks image =
  let t0 = Engine.now () in
  let created = vm_create_exn host ?name ?nics ?disks image in
  let t_create = Engine.now () -. t0 in
  ignore (Vmm.vm_boot host ~domid:created.Create.domid);
  let t_boot = Engine.now () -. t0 -. t_create in
  (created, t_create, t_boot)

let retire host (created : Create.created) =
  ignore (Vmm.vm_delete host ~domid:created.Create.domid)

(* ------------------------------------------------------------------ *)
(* Job decomposition.

   Every experiment is a list of jobs; each job is one self-contained
   simulation (or pure computation) producing a [piece], and the
   experiment's output is the pieces merged in job order. Jobs never
   share state — each runs its own [Engine.run] with explicit Rng
   seeds — so a job's piece is the same whether it runs on the calling
   domain or a Pool worker, and merged output is bit-identical whatever
   the [jobs] count. *)

type piece = {
  p_series : labelled list;
  p_tables : Table.t list;
  p_notes : string list;
  p_prefix_seconds : float;
}

let piece ?(series = []) ?(tables = []) ?(notes = []) ?(prefix_seconds = 0.) ()
    =
  {
    p_series = series;
    p_tables = tables;
    p_notes = notes;
    p_prefix_seconds = prefix_seconds;
  }

let piece_concat pieces =
  {
    p_series = List.concat_map (fun p -> p.p_series) pieces;
    p_tables = List.concat_map (fun p -> p.p_tables) pieces;
    p_notes = List.concat_map (fun p -> p.p_notes) pieces;
    p_prefix_seconds =
      List.fold_left (fun acc p -> acc +. p.p_prefix_seconds) 0. pieces;
  }

type job = string * (unit -> piece)

let run_jobs (jobs : job list) = List.map (fun (_, j) -> j ()) jobs

let series_of_jobs jobs =
  List.concat_map (fun p -> p.p_series) (run_jobs jobs)

(* ------------------------------------------------------------------ *)
(* Experiment-level prefix caching.

   Several families boot the same population before diverging — every
   reliability cell of a mode warms the same host, the cluster drain
   job boots the same guests the fault sweep then migrates, a scale
   curve to 5000 guests is an exact event prefix of the curve to
   10,000. With checkpoint/restore ({!Lightvm_sim.Engine.run_capture} /
   [resume] plus {!Lightvm_sim.Checkpoint}) each distinct prefix is
   simulated once per process invocation, frozen to bytes, and every
   consumer thaws its own deep copy and runs only its suffix. Thawing
   from the shared bytes is what isolates forks: each [Snap.thaw] is a
   fresh copy of the whole model graph, so two variants resumed from
   one image never see each other's state, even on different Pool
   worker domains.

   Correctness bar (pinned in test/test_checkpoint.ml): a suffix run
   from a thawed image renders bit-identically to the unbroken
   simulation that runs prefix and suffix in one piece — the
   [~snapshot:false] paths below keep the unbroken bodies alive
   precisely so the equality stays testable.

   The cache is keyed by the prefix's config string ("scale:chaos-xs@
   2000", "reliability:xl", ...) and shared across Pool worker domains:
   the first toucher builds, concurrent touchers wait on the condition
   variable, later touchers get the frozen bytes for free. *)

let wall = Unix.gettimeofday

(* Cache-internal failures (a prefix that cannot quiesce is a bug, not
   an expected outcome) surface as exceptions; the file-level
   snapshot/resume API below returns [result] instead. *)
let snap_err label = function
  | Ok v -> v
  | Error e -> failwith (label ^ ": " ^ Snap.error_to_string e)

type prefix_state = Building | Ready of string

let prefix_lock = Mutex.create ()
let prefix_cond = Condition.create ()
let prefix_tbl : (string, prefix_state) Hashtbl.t = Hashtbl.create 16

(* Frozen image bytes for [key], built by [build] at most once per
   invocation (and per [prefix_cache_reset]). [build] runs outside the
   lock: a chained build (the 10k scale image extending the 5k one)
   re-enters for its parent key without deadlocking. *)
let prefix_image ~key build =
  let rec get () =
    match Hashtbl.find_opt prefix_tbl key with
    | Some (Ready bytes) ->
        Mutex.unlock prefix_lock;
        bytes
    | Some Building ->
        Condition.wait prefix_cond prefix_lock;
        get ()
    | None -> (
        Hashtbl.replace prefix_tbl key Building;
        Mutex.unlock prefix_lock;
        match build () with
        | bytes ->
            Mutex.lock prefix_lock;
            Hashtbl.replace prefix_tbl key (Ready bytes);
            Condition.broadcast prefix_cond;
            Mutex.unlock prefix_lock;
            bytes
        | exception e ->
            Mutex.lock prefix_lock;
            Hashtbl.remove prefix_tbl key;
            Condition.broadcast prefix_cond;
            Mutex.unlock prefix_lock;
            raise e)
  in
  Mutex.lock prefix_lock;
  get ()

(* Drop every cached image (tests and cold-path benchmarks). Callers
   must not race this with in-flight builds. *)
let prefix_cache_reset () =
  Mutex.lock prefix_lock;
  Hashtbl.reset prefix_tbl;
  Mutex.unlock prefix_lock

(* CLI-safe slugs for mode names ("chaos [XS]" -> "chaos-xs"), used in
   prefix keys and the snapshot/resume grammar. *)
let mode_slug mode =
  match Mode.name mode with
  | "xl" -> "xl"
  | "chaos [XS]" -> "chaos-xs"
  | "chaos [XS+split]" -> "chaos-xs-split"
  | "chaos [NoXS]" -> "chaos-noxs"
  | "LightVM" -> "lightvm"
  | other -> other

let mode_of_slug slug =
  List.find_opt (fun m -> String.equal (mode_slug m) slug) Mode.all_modes

(* ------------------------------------------------------------------ *)
(* Fig 1 *)

let fig1_syscall_growth () =
  let table =
    Table.create ~title:"Fig 1: Linux syscall API growth (x86_32)"
      ~columns:[ "year"; "release"; "syscalls" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [ string_of_int p.Syscalls.year; p.Syscalls.version;
          string_of_int p.Syscalls.syscalls ])
    Syscalls.data;
  (table, Syscalls.growth_per_year ())

(* ------------------------------------------------------------------ *)
(* Fig 2 *)

let fig2_boot_vs_image_size
    ?(sizes_mb = [ 0.; 50.; 100.; 200.; 400.; 600.; 800.; 1000. ]) () =
  let series = mk "fig2-boot-vs-image-size" "ms" in
  run_sim (fun () ->
      let host = Vmm.create ~mode:Mode.lightvm () in
      List.iter
        (fun extra ->
          let image = Image.with_inflated_image Image.daytime ~extra_mb:extra in
          let vm, t_create, t_boot =
            launch_timed host image
          in
          Series.add series ~x:(Image.daytime.Image.disk_mb +. extra)
            ~y:(ms (t_create +. t_boot));
          retire host vm)
        sizes_mb);
  series

(* ------------------------------------------------------------------ *)
(* Fig 4 *)

let vm_instantiation_series ~mode ~image ~nics ~disks ~n ~label_prefix =
  let create_series = mk (label_prefix ^ " create") "ms" in
  let boot_series = mk (label_prefix ^ " boot") "ms" in
  run_sim (fun () ->
      let host = Vmm.create ~mode () in
      if mode.Mode.split then Vmm.prefill_pool host image ~nics ~disks;
      for i = 1 to n do
        let _vm, t_create, t_boot =
          launch_timed host ~nics ~disks image
        in
        Series.add create_series ~x:(float_of_int i) ~y:(ms t_create);
        Series.add boot_series ~x:(float_of_int i) ~y:(ms t_boot)
      done);
  [
    { label = label_prefix ^ " Create"; series = create_series };
    { label = label_prefix ^ " Boot"; series = boot_series };
  ]

let docker_series ~platform ~image ~n ~label =
  let series = mk (label ^ " run") "ms" in
  run_sim (fun () ->
      let machine = Machine.create ~platform () in
      let engine = Docker.create machine in
      (try
         for i = 1 to n do
           let t0 = Engine.now () in
           match
             Docker.run engine ~image ~name:(Printf.sprintf "c%d" i) ()
           with
           | Ok _ ->
               Series.add series ~x:(float_of_int i)
                 ~y:(ms (Engine.now () -. t0))
           | Error _ -> raise Exit
         done
       with Exit -> ()));
  { label; series }

let process_series ~n =
  let series = mk "process create" "ms" in
  run_sim (fun () ->
      let machine = Machine.create () in
      let procs = Process.create machine ~rng:(Rng.create 7L) in
      for i = 1 to n do
        let t0 = Engine.now () in
        ignore (Process.fork_exec procs ~name:(Printf.sprintf "p%d" i) ());
        Series.add series ~x:(float_of_int i)
          ~y:(ms (Engine.now () -. t0))
      done);
  { label = "Process Create"; series }

let fig4_jobs ?(n = 200) () : job list =
  [
    ( "fig4/debian",
      fun () ->
        piece
          ~series:
            (vm_instantiation_series ~mode:Mode.xl ~image:Image.debian
               ~nics:1 ~disks:1 ~n ~label_prefix:"Debian")
          () );
    ( "fig4/tinyx",
      fun () ->
        piece
          ~series:
            (vm_instantiation_series ~mode:Mode.xl ~image:Image.tinyx
               ~nics:1 ~disks:0 ~n ~label_prefix:"Tinyx")
          () );
    ( "fig4/minios",
      fun () ->
        piece
          ~series:
            (vm_instantiation_series ~mode:Mode.xl ~image:Image.daytime
               ~nics:1 ~disks:0 ~n ~label_prefix:"MiniOS")
          () );
    ( "fig4/docker",
      fun () ->
        piece
          ~series:
            [
              docker_series ~platform:Params.xeon_e5_1630
                ~image:Layers.micropython_image ~n ~label:"Docker Run";
            ]
          () );
    ("fig4/process", fun () -> piece ~series:[ process_series ~n ] ());
  ]

let fig4_instantiation ?n () = series_of_jobs (fig4_jobs ?n ())

(* ------------------------------------------------------------------ *)
(* Fig 5 *)

let fig5_breakdown ?(n = 200) ?(sample = 10) () =
  let series_for =
    List.map
      (fun cat -> (cat, mk ("fig5 " ^ Create.category_name cat) "ms"))
      Create.categories
  in
  run_sim (fun () ->
      let host = Vmm.create ~mode:Mode.xl () in
      for i = 1 to n do
        let vm, _, _ =
          launch_timed host ~nics:1 ~disks:1 Image.debian
        in
        if i mod sample = 0 || i = 1 then
          List.iter
            (fun (cat, series) ->
              Series.add series ~x:(float_of_int i)
                ~y:(ms (Create.breakdown_get vm.Create.breakdown cat)))
            series_for
      done);
  List.map
    (fun (cat, series) -> { label = Create.category_name cat; series })
    series_for

(* ------------------------------------------------------------------ *)
(* Fig 9 *)

let fig9_mode ~n mode =
  let label = Mode.name mode in
  let series = mk ("fig9 " ^ label) "ms" in
  run_sim (fun () ->
      let host = Vmm.create ~mode () in
      if mode.Mode.split then
        Vmm.prefill_pool host Image.daytime ~nics:1 ~disks:0;
      for i = 1 to n do
        let _vm, t_create, t_boot =
          launch_timed host ~nics:1 Image.daytime
        in
        Series.add series ~x:(float_of_int i)
          ~y:(ms (t_create +. t_boot))
      done);
  { label; series }

let fig9_jobs ?(n = 200) () : job list =
  List.map
    (fun mode ->
      ( "fig9/" ^ Mode.name mode,
        fun () -> piece ~series:[ fig9_mode ~n mode ] () ))
    Mode.all_modes

let fig9_create_times ?n () = series_of_jobs (fig9_jobs ?n ())

(* ------------------------------------------------------------------ *)
(* Scale: the Fig 9/14 creation sweeps pushed to 10,000 guests *)

(* The paper stops its creation sweeps at 1000 guests; this family
   extends them to the simulator's design target of 10,000 to show the
   host-side data structures (indexed watch dispatch, persistent
   transaction snapshots, interned paths) stay near-linear while the
   *modeled* costs keep their figure-9 shapes exactly.

   xl is capped at [scale_xl_cap]: the modeled libxl protocol performs
   [Costs.xl_name_scans] full scans of /local/domain per creation, each
   one directory request plus one read per existing domain — Θ(N²)
   simulated round trips, ~2.5x10^8 messages at N = 10^4. That
   quadratic is the paper's mechanism and must stay real, so the trend
   is established by 2000 guests and chaos [XS] (same store, same
   watch registrations, linear message count) carries the full-10k
   XenStore stress instead. *)

let scale_default_counts = [ 2000; 5000; 10_000 ]
let scale_xl_cap = 2000
let scale_modes = [ Mode.xl; Mode.chaos_xs; Mode.chaos_noxs ]

let scale_counts n =
  match List.filter (fun c -> c <= n) scale_default_counts with
  | [] -> [ n ] (* small-n runs (tests) still cover every mode *)
  | counts -> counts

(* One simulation per mode records every count's curve in a single
   pass: the run to a smaller count is an exact event prefix of the run
   to the largest (same host, same creation sequence, deterministic),
   so each count's series is bit-identical to what a separate
   simulation of exactly that count would produce — for one set of
   creations instead of one per count (10k instead of 17k at the
   default counts). Sampling is per count: ~20 points plus first and
   last, as before.

   With [~snapshot:true] (the plan default) the pass is materialised as
   a chain of checkpoint images — the host booted to 2000 guests, that
   image extended to 5000, that one to 10,000 — each boundary simulated
   once per invocation ({!prefix_image}) and reusable by anything that
   wants a host at that population: the curve render, the fork-vs-cold
   bench pair, a [snapshot] written to disk. [~snapshot:false] keeps
   the unbroken single-run body; test/test_checkpoint.ml pins that both
   paths render bit-identically. *)

(* Create guests [from+1 .. upto] on [host], recording create+boot
   latency per guest. The shared creation loop of both paths: the
   resumed suffix continues exactly where the captured prefix left
   off. *)
let scale_create_range host lat ~from ~upto =
  for i = from + 1 to upto do
    let _vm, t_create, t_boot = launch_timed host ~nics:1 Image.daytime in
    lat.(i - 1) <- t_create +. t_boot
  done

let scale_curve_rows ~mode ~counts lat =
  List.map
    (fun count ->
      let stride = max 1 (count / 20) in
      let label = Printf.sprintf "%s/%d" (Mode.name mode) count in
      let series = mk ("scale " ^ label) "ms" in
      for i = 1 to count do
        if i = 1 || i = count || i mod stride = 0 then
          Series.add series ~x:(float_of_int i) ~y:(ms lat.(i - 1))
      done;
      { label; series })
    counts

let scale_mode_lat_unbroken ~mode top =
  let lat = Array.make top nan in
  run_sim (fun () ->
      let host = Vmm.create ~mode () in
      if mode.Mode.split then
        Vmm.prefill_pool host Image.daytime ~nics:1 ~disks:0;
      scale_create_range host lat ~from:0 ~upto:top);
  lat

let scale_prefix_key ~mode count =
  Printf.sprintf "scale:%s@%d" (mode_slug mode) count

(* The frozen image of a host booted to [count] guests, chained through
   the smaller boundaries in [bounds]. The image payload is
   [(Engine.saved, (host, lat))]: engine heap state plus the model root
   and the latencies recorded so far — one marshalled value, so the
   heap thunks and the host they close over stay shared on thaw. *)
let rec scale_image ~mode ~bounds count =
  prefix_image ~key:(scale_prefix_key ~mode count) (fun () ->
      let prev =
        List.fold_left (fun a c -> if c < count then max a c else a) 0 bounds
      in
      if prev = 0 then (
        let lat = Array.make count nan in
        let host = ref None in
        let _clock, saved =
          Engine.run_capture (fun () ->
              let h = Vmm.create ~mode () in
              if mode.Mode.split then
                Vmm.prefill_pool h Image.daytime ~nics:1 ~disks:0;
              host := Some h;
              scale_create_range h lat ~from:0 ~upto:count;
              Engine.stop ())
        in
        snap_err "scale image" (Snap.freeze (saved, (Option.get !host, lat))))
      else
        let bytes = scale_image ~mode ~bounds prev in
        let ((saved : Engine.saved), ((host : Vmm.t), lat_prev)) =
          snap_err "scale image" (Snap.thaw bytes)
        in
        let lat = Array.make count nan in
        Array.blit lat_prev 0 lat 0 prev;
        let _clock, saved =
          Engine.resume_capture saved (fun () ->
              scale_create_range host lat ~from:prev ~upto:count;
              Engine.stop ())
        in
        snap_err "scale image" (Snap.freeze (saved, (host, lat))))

(* [(prefix_seconds, rows)] for one mode's merged curve. *)
let scale_mode_merged ~snapshot ~counts mode =
  let top = List.fold_left max 1 counts in
  if not snapshot then
    (0., scale_curve_rows ~mode ~counts (scale_mode_lat_unbroken ~mode top))
  else
    let t0 = wall () in
    let bytes = scale_image ~mode ~bounds:counts top in
    let ((_ : Engine.saved), ((_ : Vmm.t), lat)) =
      snap_err "scale image" (Snap.thaw bytes)
    in
    (wall () -. t0, scale_curve_rows ~mode ~counts lat)

(* The partitioned row: the same total population brought up as a fleet
   of [scale_partition_hosts] identical chaos [XS] hosts, each creating
   its share concurrently in its own partition. With [`Host] the
   simulation runs on up to [sim_jobs] cores; with [`None] the same
   workload shares one heap. Either way the series is the per-round
   mean of the per-host create+boot latencies — identical in both modes
   and at any [sim_jobs] (the per-host streams never interact).

   The bring-up runs as two fan-out waves with a barrier between them;
   the wave boundary is the row's snapshot point, so the partitioned
   capture/resume path has a well-defined unbroken twin: the
   [~snapshot:false] body runs both waves in one simulation, the
   [~snapshot:true] body captures every partition's state after wave 1
   ({!Engine.run_partitioned_capture}), freezes it, and resumes a
   thawed copy for wave 2 — same barrier, same events, bit-identical
   series across the whole jobs x partition matrix
   (test/test_checkpoint.ml). *)
let scale_partition_hosts = 8

let fleet_prefix_key ~partition ~sim_jobs total =
  Printf.sprintf "scale-fleet:%s/j%d@%d" (partition_name partition) sim_jobs
    total

(* One wave: every host creates guests [from+1 .. upto] of its share,
   concurrently, in its own partition when [`Host]. *)
let fleet_wave ~partition nodes lat ~from ~upto =
  let hosts = Array.length nodes in
  fan_out_hosts ~hosts
    ~part_of:(fun h -> match partition with `Host -> h + 1 | `None -> 0)
    (fun h -> scale_create_range nodes.(h) lat.(h) ~from ~upto)

(* [sim_jobs] is part of the key only to keep determinism tests honest:
   the bytes are the same for every worker count, but a cache hit would
   short-circuit the re-simulation the jobs-matrix tests exist to
   exercise. *)
let fleet_image ~partition ~sim_jobs ~hosts ~per ~per1 =
  prefix_image
    ~key:(fleet_prefix_key ~partition ~sim_jobs (hosts * per))
    (fun () ->
      let lat = Array.make_matrix hosts per nan in
      let nodes = ref [||] in
      let body () =
        nodes :=
          Array.init hosts (fun i ->
              Vmm.create ~host_id:i ~mode:Mode.chaos_xs ());
        fleet_wave ~partition !nodes lat ~from:0 ~upto:per1;
        Engine.stop ()
      in
      let saved =
        match partition with
        | `Host ->
            snd
              (Engine.run_partitioned_capture ~jobs:sim_jobs ~lookahead
                 ~partitions:hosts body)
        | `None -> snd (Engine.run_capture body)
      in
      snap_err "fleet image" (Snap.freeze (saved, (!nodes, lat))))

let fleet_row_render ~hosts ~per lat =
  let total = hosts * per in
  let label =
    Printf.sprintf "%s x%d hosts/%d" (Mode.name Mode.chaos_xs) hosts total
  in
  let series = mk ("scale " ^ label) "ms" in
  let stride = max 1 (per / 20) in
  for j = 1 to per do
    if j = 1 || j = per || j mod stride = 0 then begin
      let sum = ref 0. in
      for h = 0 to hosts - 1 do
        sum := !sum +. lat.(h).(j - 1)
      done;
      Series.add series
        ~x:(float_of_int (j * hosts))
        ~y:(ms (!sum /. float_of_int hosts))
    end
  done;
  { label; series }

(* [(prefix_seconds, row)]. *)
let scale_partitioned ~snapshot ~count ~partition ~sim_jobs =
  let hosts = scale_partition_hosts in
  let per = max 1 (count / hosts) in
  let per1 = max 1 (per / 2) in
  if not snapshot then begin
    let lat = Array.make_matrix hosts per nan in
    let body () =
      let nodes =
        Array.init hosts (fun i ->
            Vmm.create ~host_id:i ~mode:Mode.chaos_xs ())
      in
      fleet_wave ~partition nodes lat ~from:0 ~upto:per1;
      fleet_wave ~partition nodes lat ~from:per1 ~upto:per
    in
    (match partition with
    | `Host -> run_sim_partitioned ~jobs:sim_jobs ~partitions:hosts body
    | `None -> run_sim body);
    (0., fleet_row_render ~hosts ~per lat)
  end
  else begin
    let t0 = wall () in
    let bytes = fleet_image ~partition ~sim_jobs ~hosts ~per ~per1 in
    let ((saved : Engine.saved), ((nodes : Vmm.t array), lat)) =
      snap_err "fleet image" (Snap.thaw bytes)
    in
    let prefix_seconds = wall () -. t0 in
    ignore
      (Engine.resume ~jobs:sim_jobs saved (fun () ->
           fleet_wave ~partition nodes lat ~from:per1 ~upto:per;
           Engine.stop ()));
    (prefix_seconds, fleet_row_render ~hosts ~per lat)
  end

let scale_jobs ?(n = 10_000) ?(partition = `Host) ?(sim_jobs = 1) () :
    job list =
  let counts = scale_counts n in
  let top = List.fold_left max 1 counts in
  List.map
    (fun mode ->
      let counts =
        if String.equal (Mode.name mode) "xl" then
          List.filter (fun c -> c <= scale_xl_cap) counts
        else counts
      in
      ( Printf.sprintf "scale/%s/%s" (Mode.name mode)
          (String.concat "+" (List.map string_of_int counts)),
        fun () ->
          let prefix_seconds, series =
            scale_mode_merged ~snapshot:true ~counts mode
          in
          piece ~series ~prefix_seconds () ))
    scale_modes
  @ [
      ( Printf.sprintf "scale/partitioned/%d" top,
        fun () ->
          let prefix_seconds, row =
            scale_partitioned ~snapshot:true ~count:top ~partition ~sim_jobs
          in
          piece ~series:[ row ] ~prefix_seconds () );
    ]

let scale_creation ?n () = series_of_jobs (scale_jobs ?n ())

(* ------------------------------------------------------------------ *)
(* Reliability (no paper figure): creation under fault injection.

   For each toolstack mode and fault multiplier, attempt [n] creations
   with the base fault spec scaled by the multiplier, and report the
   success rate plus the CDF of successful creation times. Faults draw
   only from the per-point streams seeded from [fault_seed] (see
   lib/sim/fault.ml), so a given (spec, seed) pair reproduces the exact
   same failures whatever the [--jobs] count. After every failed
   attempt the host's resource counts are compared against a snapshot
   taken just before it: a leaked domain, frame, grant, event channel,
   control page, XenStore node or watch surfaces as a "LEAK" note (the
   test suite additionally asserts there are none). *)

(* A little of everything: XenStore transaction conflicts and quota
   rejections, mid-pipeline phase failures on both the prepare and
   execute side, hotplug hangs and backend allocation failures. The
   [NoXS] column is naturally immune to the xs.* points — its creations
   never touch the store — which is part of the point. *)
let reliability_default_spec =
  "xs.eagain:0.05,xs.equota:0.005,create.phase2:0.004,create.phase4:0.004,\
   create.phase7:0.004,hotplug.hang:0.03,evtchn.alloc:0.004,gnttab.alloc:0.004"

let reliability_levels = [ 0.; 1.; 2.; 4. ]
let reliability_modes = [ Mode.xl; Mode.chaos_xs; Mode.chaos_noxs ]

(* Distinct per-cell stream seed, a pure function of the user-visible
   fault seed and the cell's position, so cells stay independent and
   the whole sweep is reproducible from [fault_seed] alone. *)
let reliability_cell_seed ~fault_seed mi li =
  Int64.add fault_seed (Int64.of_int (((mi + 1) * 257) + li))

let reliability_prefix_key mode = "reliability:" ^ mode_slug mode

(* The shared boot prefix of every cell of [mode]: a fresh host with
   one warmup creation launched and retired. The warmup runs outside
   the injector in both paths: the first creation on a fresh host
   materialises shared store directories (/vm, the backend kind levels)
   that persist for the host's lifetime, so resource snapshots are only
   stable from the second creation on — which also makes it exactly the
   state all four fault levels of a mode can fork from. *)
let reliability_image mode =
  prefix_image ~key:(reliability_prefix_key mode) (fun () ->
      let host = ref None in
      let _clock, saved =
        Engine.run_capture (fun () ->
            let h = Vmm.create ~mode () in
            let warm = launch h ~name:"rel-warmup" Image.daytime in
            retire h warm;
            host := Some h;
            Engine.stop ())
      in
      snap_err "reliability image" (Snap.freeze (saved, Option.get !host)))

(* The cell's suffix: [n] creation attempts under the injector,
   accumulating successes, latencies and leak reports into the refs. *)
let reliability_attempts ~n ~label ~injector host ok times leaks =
  Fault.with_injector injector (fun () ->
      for i = 1 to n do
        let before = Vmm.resources host in
        let req =
          Vmm.vm_request ~name:(Printf.sprintf "rel-%d" i) Image.daytime
        in
        let t0 = Engine.now () in
        match Vmm.vm_create host req with
        | Ok vi ->
            incr ok;
            times := (Engine.now () -. t0) :: !times;
            ignore (Vmm.vm_boot host ~domid:vi.Vmm.vi_domid)
        | Error _ -> (
            match Vmm.check_leak host ~before with
            | Ok () -> ()
            | Error leaked ->
                leaks :=
                  Printf.sprintf "LEAK %s attempt %d: %s" label i leaked
                  :: !leaks)
      done)

let reliability_render ~mode ~label ~level ~n ~injector ~prefix_seconds ok
    times leaks =
  let cdf = mk ("reliability cdf " ^ label) "ms" in
  let success =
    mk (Printf.sprintf "reliability success %s" (Mode.name mode)) "%"
  in
  (* CDF over successful creations only: x in ms, y the percentile. *)
  let sorted = List.sort compare (List.rev !times) in
  List.iteri
    (fun i t ->
      Series.add cdf ~x:(ms t)
        ~y:(100. *. float_of_int (i + 1) /. float_of_int (max 1 !ok)))
    sorted;
  Series.add success ~x:level ~y:(100. *. float_of_int !ok /. float_of_int n);
  let fired =
    Fault.counts injector
    |> List.filter (fun (_, (_, injected)) -> injected > 0)
    |> List.map (fun (pt, (checks, injected)) ->
           Printf.sprintf "%s %d/%d" pt injected checks)
  in
  let note =
    Printf.sprintf "reliability %s: %d/%d created ok, %d faults injected%s"
      label !ok n
      (Fault.injected_total injector)
      (match fired with
      | [] -> ""
      | l -> " (" ^ String.concat ", " l ^ ")")
  in
  piece
    ~series:[ { label = "cdf " ^ label; series = cdf };
              { label = "success " ^ Mode.name mode; series = success } ]
    ~notes:(note :: List.rev !leaks)
    ~prefix_seconds ()

let reliability_cell ~snapshot ~n ~mode ~spec ~seed ~level =
  let label = Printf.sprintf "%s x%g" (Mode.name mode) level in
  let injector = Fault.create ~seed (Fault.scale spec level) in
  let ok = ref 0 and times = ref [] and leaks = ref [] in
  let prefix_seconds =
    if not snapshot then begin
      run_sim (fun () ->
          let host = Vmm.create ~mode () in
          let warm = launch host ~name:"rel-warmup" Image.daytime in
          retire host warm;
          reliability_attempts ~n ~label ~injector host ok times leaks);
      0.
    end
    else begin
      let t0 = wall () in
      let bytes = reliability_image mode in
      let ((saved : Engine.saved), (host : Vmm.t)) =
        snap_err "reliability image" (Snap.thaw bytes)
      in
      let prefix_seconds = wall () -. t0 in
      ignore
        (Engine.resume saved (fun () ->
             reliability_attempts ~n ~label ~injector host ok times leaks;
             Engine.stop ()));
      prefix_seconds
    end
  in
  reliability_render ~mode ~label ~level ~n ~injector ~prefix_seconds ok times
    leaks

let reliability_jobs ?(n = 200) ?spec ?(fault_seed = 42L) () : job list =
  let spec =
    match spec with
    | Some s -> s
    | None -> (
        match Fault.parse_spec reliability_default_spec with
        | Ok s -> s
        | Error m -> invalid_arg ("reliability_default_spec: " ^ m))
  in
  List.concat
    (List.mapi
       (fun mi mode ->
         List.mapi
           (fun li level ->
             ( Printf.sprintf "reliability/%s/x%g" (Mode.name mode) level,
               fun () ->
                 reliability_cell ~snapshot:true ~n ~mode ~spec
                   ~seed:(reliability_cell_seed ~fault_seed mi li)
                   ~level ))
           reliability_levels)
       reliability_modes)

(* Collapse the per-cell single-point success series into one series
   per mode (points arrive in job order, i.e. ascending fault level);
   the CDF labels are unique per cell and pass through untouched. *)
let reliability_finish pieces =
  let merged = piece_concat pieces in
  let out = ref [] in
  List.iter
    (fun l ->
      match List.find_opt (fun l' -> String.equal l'.label l.label) !out with
      | Some existing ->
          List.iter
            (fun (x, y) -> Series.add existing.series ~x ~y)
            (Series.points l.series)
      | None ->
          let s =
            Series.create
              ~unit_label:(Series.unit_label l.series)
              ~name:(Series.name l.series) ()
          in
          List.iter (fun (x, y) -> Series.add s ~x ~y) (Series.points l.series);
          out := { l with series = s } :: !out)
    merged.p_series;
  { merged with p_series = List.rev !out }

(* ------------------------------------------------------------------ *)
(* Fig 10 *)

let fig10_lightvm ~vms =
  let lightvm_series = mk "fig10 LightVM" "ms" in
  run_sim (fun () ->
      let host =
        Vmm.create ~platform:Params.amd_opteron_6376 ~mode:Mode.lightvm ()
      in
      Vmm.prefill_pool host Image.noop_unikernel ~nics:0 ~disks:0;
      try
        for i = 1 to vms do
          let _vm, t_create, t_boot =
            launch_timed host ~nics:0 Image.noop_unikernel
          in
          Series.add lightvm_series ~x:(float_of_int i)
            ~y:(ms (t_create +. t_boot))
        done
      with Create.Create_failed _ -> ());
  { label = "LightVM"; series = lightvm_series }

let fig10_jobs ?(vms = 4000) ?(containers = 4000) () : job list =
  [
    ("fig10/lightvm", fun () -> piece ~series:[ fig10_lightvm ~vms ] ());
    ( "fig10/docker",
      fun () ->
        piece
          ~series:
            [
              docker_series ~platform:Params.amd_opteron_6376
                ~image:Layers.alpine_noop ~n:containers ~label:"Docker";
            ]
          () );
  ]

let fig10_density ?vms ?containers () =
  series_of_jobs (fig10_jobs ?vms ?containers ())

(* ------------------------------------------------------------------ *)
(* Fig 11 *)

(* create+boot combined, as the paper plots boot-to-usable. *)
let fig11_total label parts =
  let combined = mk (label ^ " total") "ms" in
  (match parts with
  | [ { series = create; _ }; { series = boot; _ } ] ->
      List.iter2
        (fun (x, c) (_, b) -> Series.add combined ~x ~y:(c +. b))
        (Series.points create) (Series.points boot)
  | _ -> ());
  { label; series = combined }

let fig11_jobs ?(n = 200) () : job list =
  [
    ( "fig11/unikernel",
      fun () ->
        piece
          ~series:
            [
              fig11_total "Unikernel over LightVM"
                (vm_instantiation_series ~mode:Mode.lightvm
                   ~image:Image.daytime ~nics:1 ~disks:0 ~n
                   ~label_prefix:"Unikernel over LightVM");
            ]
          () );
    ( "fig11/tinyx",
      fun () ->
        piece
          ~series:
            [
              fig11_total "Tinyx over LightVM"
                (vm_instantiation_series ~mode:Mode.lightvm
                   ~image:Image.tinyx ~nics:1 ~disks:0 ~n
                   ~label_prefix:"Tinyx over LightVM");
            ]
          () );
    ( "fig11/docker",
      fun () ->
        piece
          ~series:
            [
              docker_series ~platform:Params.xeon_e5_1630
                ~image:Layers.micropython_image ~n ~label:"Docker";
            ]
          () );
  ]

let fig11_boot_compare ?n () = series_of_jobs (fig11_jobs ?n ())

(* ------------------------------------------------------------------ *)
(* Figs 12 and 13 *)

let checkpoint_modes = [ Mode.xl; Mode.chaos_xs; Mode.chaos_noxs; Mode.lightvm ]

let fig12_mode ~n ~batch mode =
  let label = Mode.name mode in
  let save_series = mk ("fig12a " ^ label) "ms" in
  let restore_series = mk ("fig12b " ^ label) "ms" in
  run_sim (fun () ->
      let host = Vmm.create ~mode () in
      if mode.Mode.split then
        Vmm.prefill_pool host Image.daytime ~nics:1 ~disks:0;
      let ts = Vmm.toolstack host in
      let rng = Rng.create 33L in
      let rounds = n / batch in
      for round = 1 to rounds do
        (* Bring the population up to round*batch guests. *)
        while Vmm.vm_count host < round * batch do
          ignore (launch host Image.daytime)
        done;
        (* Checkpoint [batch] randomly chosen guests (vm.snapshot /
           vm.restore through the host's API endpoint). *)
        let victims = Array.of_list (Toolstack.vms ts) in
        Rng.shuffle rng victims;
        let victims = Array.to_list (Array.sub victims 0 batch) in
        let t0 = Engine.now () in
        let saved =
          List.map
            (fun (vm : Create.created) ->
              match Vmm.vm_snapshot host ~domid:vm.Create.domid with
              | Ok s -> s
              | Error e -> failwith (Vmm.error_to_string e))
            victims
        in
        let t_save = (Engine.now () -. t0) /. float_of_int batch in
        let t1 = Engine.now () in
        let restored =
          List.map
            (fun s ->
              match Vmm.vm_restore host s with
              | Ok vi -> vi
              | Error e -> failwith (Vmm.error_to_string e))
            saved
        in
        List.iter
          (fun (vi : Vmm.vm_info) ->
            ignore (Vmm.vm_boot host ~domid:vi.Vmm.vi_domid))
          restored;
        let t_restore = (Engine.now () -. t1) /. float_of_int batch in
        let x = float_of_int (round * batch) in
        Series.add save_series ~x ~y:(ms t_save);
        Series.add restore_series ~x ~y:(ms t_restore)
      done);
  ( { label; series = save_series },
    { label; series = restore_series } )

let fig12_jobs ?(n = 200) ?(batch = 10) () : job list =
  List.map
    (fun mode ->
      ( "fig12/" ^ Mode.name mode,
        fun () ->
          let save, restore = fig12_mode ~n ~batch mode in
          piece ~series:[ save; restore ] () ))
    checkpoint_modes

let fig12_checkpoint ?n ?batch () =
  let pieces = run_jobs (fig12_jobs ?n ?batch ()) in
  ( List.map (fun p -> List.nth p.p_series 0) pieces,
    List.map (fun p -> List.nth p.p_series 1) pieces )

let fig13_mode ~n ~batch mode =
  let label = Mode.name mode in
  let series = mk ("fig13 " ^ label) "ms" in
  run_sim (fun () ->
      let src = Vmm.create ~mode () in
      let dst = Vmm.create ~mode () in
      if mode.Mode.split then
        Vmm.prefill_pool src Image.daytime ~nics:1 ~disks:0;
      let rng = Rng.create 44L in
      let rounds = n / batch in
      for round = 1 to rounds do
        while Vmm.vm_count src < round * batch do
          ignore (launch src Image.daytime)
        done;
        let victims = Array.of_list (Toolstack.vms (Vmm.toolstack src)) in
        Rng.shuffle rng victims;
        let victims = Array.to_list (Array.sub victims 0 batch) in
        let t0 = Engine.now () in
        List.iter
          (fun (vm : Create.created) ->
            match Vmm.vm_migrate ~src ~dst ~domid:vm.Create.domid with
            | Error e -> failwith (Vmm.error_to_string e)
            | Ok (resumed, _stats) ->
                ignore (Vmm.vm_boot dst ~domid:resumed.Vmm.vi_domid))
          victims;
        let avg = (Engine.now () -. t0) /. float_of_int batch in
        Series.add series ~x:(float_of_int (round * batch)) ~y:(ms avg)
        (* The outer while-loop replaces the migrated guests on the
           source host before the next round, as in the paper. *)
      done);
  { label; series }

let fig13_jobs ?(n = 200) ?(batch = 10) () : job list =
  List.map
    (fun mode ->
      ( "fig13/" ^ Mode.name mode,
        fun () -> piece ~series:[ fig13_mode ~n ~batch mode ] () ))
    checkpoint_modes

let fig13_migration ?n ?batch () = series_of_jobs (fig13_jobs ?n ?batch ())

(* ------------------------------------------------------------------ *)
(* Fig 14 *)

let fig14_vm_memory ~n ~sample ~image ~label =
  let series = mk ("fig14 " ^ label) "MB" in
  run_sim (fun () ->
      let host = Vmm.create ~mode:Mode.lightvm () in
      for i = 1 to n do
        ignore (launch host ~nics:1 image);
        if i mod sample = 0 || i = 1 then
          Series.add series ~x:(float_of_int i)
            ~y:(float_of_int (Vmm.guest_mem_kb host) /. 1024.)
      done);
  { label; series }

let fig14_docker_memory ~n ~sample =
  let series = mk "fig14 Docker" "MB" in
  run_sim (fun () ->
      let machine = Machine.create () in
      let engine = Docker.create machine in
      for i = 1 to n do
        (match
           Docker.run engine ~image:Layers.micropython_image
             ~name:(Printf.sprintf "c%d" i) ()
         with
        | Ok _ -> ()
        | Error _ -> ());
        if i mod sample = 0 || i = 1 then
          Series.add series ~x:(float_of_int i)
            ~y:(float_of_int (Docker.rss_kb engine) /. 1024.)
      done);
  { label = "Docker Micropython"; series }

let fig14_process_memory ~n ~sample =
  let series = mk "fig14 process" "MB" in
  run_sim (fun () ->
      let machine = Machine.create () in
      let procs = Process.create machine ~rng:(Rng.create 5L) in
      for i = 1 to n do
        ignore
          (Process.fork_exec procs ~rss_kb:1_600
             ~name:(Printf.sprintf "mpy%d" i) ());
        if i mod sample = 0 || i = 1 then
          Series.add series ~x:(float_of_int i)
            ~y:(float_of_int (Process.rss_kb procs) /. 1024.)
      done);
  { label = "Micropython Process"; series }

let fig14_jobs ?(n = 400) ?(sample = 20) () : job list =
  let vm label image =
    ( "fig14/" ^ label,
      fun () -> piece ~series:[ fig14_vm_memory ~n ~sample ~image ~label ] ()
    )
  in
  [
    vm "Debian" Image.debian;
    vm "Tinyx" Image.tinyx_micropython;
    ("fig14/docker", fun () -> piece ~series:[ fig14_docker_memory ~n ~sample ] ());
    vm "Minipython" Image.minipython;
    ("fig14/process", fun () -> piece ~series:[ fig14_process_memory ~n ~sample ] ());
  ]

let fig14_memory ?n ?sample () = series_of_jobs (fig14_jobs ?n ?sample ())

(* ------------------------------------------------------------------ *)
(* Fig 15 *)

let fig15_vm_usage ~n ~sample ~window ~image ~label =
  let series = mk ("fig15 " ^ label) "%" in
  run_sim (fun () ->
      let host = Vmm.create ~mode:Mode.lightvm () in
      let cpu = Xen.cpu (Vmm.xen host) in
      for i = 1 to n do
        ignore (launch host ~nics:1 image);
        if i mod sample = 0 || i = 1 then begin
          Cpu.reset_stats cpu;
          let t0 = Engine.now () in
          Engine.sleep window;
          Series.add series ~x:(float_of_int i)
            ~y:(100. *. Cpu.utilization cpu ~since:t0)
        end
      done);
  { label; series }

let fig15_docker_usage ~n ~sample ~window =
  let series = mk "fig15 Docker" "%" in
  run_sim (fun () ->
      let machine = Machine.create () in
      let engine = Docker.create machine in
      let cpu = Machine.cpu machine in
      for i = 1 to n do
        (match
           Docker.run engine ~image:Layers.alpine_noop
             ~name:(Printf.sprintf "c%d" i) ()
         with
        | Ok _ -> ()
        | Error _ -> ());
        if i mod sample = 0 || i = 1 then begin
          Cpu.reset_stats cpu;
          let t0 = Engine.now () in
          Engine.sleep window;
          Series.add series ~x:(float_of_int i)
            ~y:(100. *. Cpu.utilization cpu ~since:t0)
        end
      done);
  { label = "Docker"; series }

let fig15_jobs ?(n = 200) ?(sample = 50) ?(window = 10.) () : job list =
  let vm label image =
    ( "fig15/" ^ label,
      fun () ->
        piece ~series:[ fig15_vm_usage ~n ~sample ~window ~image ~label ] ()
    )
  in
  [
    vm "Debian" Image.debian;
    vm "Tinyx" Image.tinyx;
    vm "Unikernel" Image.noop_unikernel;
    ( "fig15/docker",
      fun () -> piece ~series:[ fig15_docker_usage ~n ~sample ~window ] () );
  ]

let fig15_cpu_usage ?n ?sample ?window () =
  series_of_jobs (fig15_jobs ?n ?sample ?window ())

(* ------------------------------------------------------------------ *)
(* Section 7: use cases *)

let fig16a_firewall ?(users = [ 1; 100; 250; 500; 750; 1000 ]) () =
  let table =
    Table.create
      ~title:"Fig 16a: personal firewalls (ClickOS, 10 Mbps/user)"
      ~columns:[ "users"; "total Gbps"; "per-user Mbps"; "RTT ms" ]
  in
  List.iter
    (fun p ->
      Table.add_row table
        [
          string_of_int p.Firewall.active_users;
          Printf.sprintf "%.2f" p.Firewall.total_gbps;
          Printf.sprintf "%.1f" p.Firewall.per_user_mbps;
          Printf.sprintf "%.1f" p.Firewall.rtt_ms;
        ])
    (Firewall.capacity ~users ());
  table

let fig16b_interval ~clients interval =
  let label = Printf.sprintf "%.0f ms" (interval *. 1e3) in
  let result =
    Jit.run
      { Jit.default_config with Jit.arrival_interval = interval; clients }
  in
  let series = mk ("fig16b " ^ label) "cdf" in
  List.iter
    (fun (rtt, frac) -> Series.add series ~x:(ms rtt) ~y:frac)
    (Lightvm_metrics.Cdf.points result.Jit.cdf);
  { label; series }

let fig16b_jobs ?(arrivals = [ 0.010; 0.025; 0.050; 0.100 ])
    ?(clients = 250) () : job list =
  List.map
    (fun interval ->
      ( Printf.sprintf "fig16b/%.0fms" (interval *. 1e3),
        fun () -> piece ~series:[ fig16b_interval ~clients interval ] () ))
    arrivals

let fig16b_jit ?arrivals ?clients () =
  series_of_jobs (fig16b_jobs ?arrivals ?clients ())

let fig16c_backend ~instances backend =
  let label = Tls_term.backend_name backend in
  let series = mk ("fig16c " ^ label) "Kreq/s" in
  List.iter
    (fun (n, tput) ->
      Series.add series ~x:(float_of_int n) ~y:(tput /. 1e3))
    (Tls_term.sweep backend ~instances);
  { label; series }

let fig16c_jobs ?(instances = [ 1; 5; 10; 14; 50; 100; 250; 500; 750; 1000 ])
    () : job list =
  List.map
    (fun backend ->
      ( "fig16c/" ^ Tls_term.backend_name backend,
        fun () -> piece ~series:[ fig16c_backend ~instances backend ] () ))
    [ Tls_term.Bare_metal; Tls_term.Tinyx_vm; Tls_term.Unikernel ]

let fig16c_tls ?instances () = series_of_jobs (fig16c_jobs ?instances ())

(* ------------------------------------------------------------------ *)
(* Figs 17 and 18 *)

(* One mode's lambda run: service-time series (Fig 17) and concurrency
   series (Fig 18). *)
let lambda_mode ~requests ~label mode =
  let result = Lambda.run { (Lambda.default_config mode) with Lambda.requests } in
  assert result.Lambda.outputs_ok;
  let service = mk ("fig17 " ^ label) "s" in
  List.iter
    (fun (i, t) -> Series.add service ~x:(float_of_int i) ~y:t)
    result.Lambda.service_times;
  let concurrency = mk ("fig18 " ^ label) "VMs" in
  List.iter
    (fun (t, c) ->
      (* Samplers start at slightly different offsets per mode; round
         to whole seconds so the series share an x grid. *)
      Series.add concurrency ~x:(Float.round t) ~y:(float_of_int c))
    result.Lambda.concurrency;
  ( { label; series = service }, { label; series = concurrency } )

let lambda_runs = [ ("chaos [XS]", Mode.chaos_xs); ("LightVM", Mode.lightvm) ]

let fig17_jobs ?(requests = 400) () : job list =
  List.map
    (fun (label, mode) ->
      ( "fig17/" ^ label,
        fun () ->
          let service, _ = lambda_mode ~requests ~label mode in
          piece ~series:[ service ] () ))
    lambda_runs

let fig18_jobs ?(requests = 400) () : job list =
  List.map
    (fun (label, mode) ->
      ( "fig18/" ^ label,
        fun () ->
          let _, concurrency = lambda_mode ~requests ~label mode in
          piece ~series:[ concurrency ] () ))
    lambda_runs

let fig17_18_lambda ?(requests = 400) () =
  let runs =
    List.map
      (fun (label, mode) -> lambda_mode ~requests ~label mode)
      lambda_runs
  in
  (List.map fst runs, List.map snd runs)

(* ------------------------------------------------------------------ *)
(* Ablations *)

(* The design choices DESIGN.md calls out, isolated:
   - oxenstored vs cxenstored (the paper's footnote: "results with
     cxenstored show much higher overheads");
   - access logging on/off ("disabling this logging would remove the
     spikes, but it would not help in improving the overall creation
     times"). *)
let ablation_variant ~n label profile =
  let series = mk ("ablation " ^ label) "ms" in
  run_sim (fun () ->
      let host = Vmm.create ~mode:Mode.chaos_xs ~xs_profile:profile () in
      for i = 1 to n do
        let _vm, t_create, t_boot =
          launch_timed host ~nics:1 Image.daytime
        in
        Series.add series ~x:(float_of_int i) ~y:(ms (t_create +. t_boot))
      done);
  { label; series }

let ablation_jobs ?(n = 300) () : job list =
  [
    ( "ablation/oxenstored",
      fun () ->
        piece
          ~series:
            [ ablation_variant ~n "oxenstored"
                Lightvm_xenstore.Xs_costs.oxenstored ]
          () );
    ( "ablation/cxenstored",
      fun () ->
        piece
          ~series:
            [ ablation_variant ~n "cxenstored"
                Lightvm_xenstore.Xs_costs.cxenstored ]
          () );
    ( "ablation/logging-off",
      fun () ->
        piece
          ~series:
            [
              ablation_variant ~n "oxenstored, logging off"
                { Lightvm_xenstore.Xs_costs.oxenstored with
                  Lightvm_xenstore.Xs_costs.logging_enabled = false };
            ]
          () );
  ]

let ablation_xenstore ?n () = series_of_jobs (ablation_jobs ?n ())

(* Section 2's third requirement: pause/unpause as fast as container
   freeze/thaw (Amazon Lambda "freezes" and "thaws" its containers). *)
let pause_unpause () =
  let table =
    Table.create
      ~title:"Pause/unpause latency (Section 2 requirement)"
      ~columns:[ "system"; "pause ms"; "unpause ms" ]
  in
  let vm_times =
    run_sim (fun () ->
        let host = Vmm.create ~mode:Mode.lightvm () in
        let vm = launch host Image.daytime in
        let domid = vm.Create.domid in
        let t0 = Engine.now () in
        (match Vmm.vm_pause host ~domid with
        | Ok () -> ()
        | Error e -> failwith ("pause failed: " ^ Vmm.error_to_string e));
        let t_pause = Engine.now () -. t0 in
        let t1 = Engine.now () in
        (match Vmm.vm_resume host ~domid with
        | Ok () -> ()
        | Error e -> failwith ("unpause failed: " ^ Vmm.error_to_string e));
        (t_pause, Engine.now () -. t1))
  in
  let container_times =
    run_sim (fun () ->
        let machine = Machine.create () in
        let engine = Docker.create machine in
        match Docker.run engine ~image:Layers.alpine_noop ~name:"c" () with
        | Error _ -> failwith "docker run failed"
        | Ok c ->
            let t0 = Engine.now () in
            Docker.pause engine c;
            let t_pause = Engine.now () -. t0 in
            let t1 = Engine.now () in
            Docker.unpause engine c;
            (t_pause, Engine.now () -. t1))
  in
  let row name (p, u) =
    Table.add_row table
      [ name; Printf.sprintf "%.3f" (ms p); Printf.sprintf "%.3f" (ms u) ]
  in
  row "LightVM guest (hypercall)" vm_times;
  row "Docker container (freezer cgroup)" container_times;
  table

let wan_migration () =
  let table =
    Table.create
      ~title:
        "Migration over a 1 Gbps / 10 ms RTT link (Section 7.1: \
         ClickOS in ~150 ms)"
      ~columns:[ "guest"; "RAM MB"; "migration ms" ]
  in
  List.iter
    (fun image ->
      let total =
        run_sim (fun () ->
            let mk_host host_id =
              Vmm.create ~host_id ~mode:Mode.lightvm
                ~costs:Lightvm_toolstack.Costs.wan ()
            in
            let src = mk_host 0 and dst = mk_host 1 in
            let created = launch src ~name:"wan-guest" image in
            match
              Vmm.vm_migrate ~src ~dst ~domid:created.Create.domid
            with
            | Error e -> failwith (Vmm.error_to_string e)
            | Ok (_resumed, stats) -> stats.Migrate.total)
      in
      Table.add_row table
        [
          image.Image.name;
          Printf.sprintf "%.1f" image.Image.mem_mb;
          Printf.sprintf "%.0f" (ms total);
        ])
    [ Image.daytime; Image.clickos_firewall; Image.minipython ];
  table

(* ------------------------------------------------------------------ *)
(* Headline numbers *)

let headline_numbers () =
  let table =
    Table.create ~title:"Headline numbers: paper vs this reproduction"
      ~columns:[ "metric"; "paper"; "measured" ]
  in
  (* Boot of the no-device noop unikernel with every optimization. *)
  let noop_boot =
    run_sim (fun () ->
        let host = Vmm.create ~mode:Mode.lightvm () in
        Vmm.prefill_pool host Image.noop_unikernel ~nics:0 ~disks:0;
        let _vm, t_create, t_boot =
          launch_timed host ~nics:0 Image.noop_unikernel
        in
        t_create +. t_boot)
  in
  let daytime_boot =
    run_sim (fun () ->
        let host = Vmm.create ~mode:Mode.lightvm () in
        Vmm.prefill_pool host Image.daytime ~nics:1 ~disks:0;
        let _vm, t_create, t_boot =
          launch_timed host ~nics:1 Image.daytime
        in
        t_create +. t_boot)
  in
  let save_t, restore_t =
    run_sim (fun () ->
        let host = Vmm.create ~mode:Mode.lightvm () in
        let vm = launch host Image.daytime in
        let t0 = Engine.now () in
        let saved =
          match Vmm.vm_snapshot host ~domid:vm.Create.domid with
          | Ok s -> s
          | Error e -> failwith (Vmm.error_to_string e)
        in
        let t_save = Engine.now () -. t0 in
        let t1 = Engine.now () in
        (match Vmm.vm_restore host saved with
        | Ok vi -> ignore (Vmm.vm_boot host ~domid:vi.Vmm.vi_domid)
        | Error e -> failwith (Vmm.error_to_string e));
        (t_save, Engine.now () -. t1))
  in
  let migrate_t =
    run_sim (fun () ->
        let src = Vmm.create ~host_id:0 ~mode:Mode.lightvm () in
        let dst = Vmm.create ~host_id:1 ~mode:Mode.lightvm () in
        let vm = launch src Image.daytime in
        match Vmm.vm_migrate ~src ~dst ~domid:vm.Create.domid with
        | Error e -> failwith (Vmm.error_to_string e)
        | Ok (_resumed, stats) -> stats.Migrate.total)
  in
  let row metric paper measured =
    Table.add_row table [ metric; paper; measured ]
  in
  row "noop unikernel boot" "2.3 ms" (Printf.sprintf "%.1f ms" (ms noop_boot));
  row "daytime create+boot (all opts)" "4 ms"
    (Printf.sprintf "%.1f ms" (ms daytime_boot));
  row "daytime image on disk" "480 KB"
    (Printf.sprintf "%.0f KB" (Image.daytime.Image.disk_mb *. 1024.));
  row "daytime running memory" "3.6 MB"
    (Printf.sprintf "%.1f MB" Image.daytime.Image.mem_mb);
  row "save (LightVM)" "30 ms" (Printf.sprintf "%.0f ms" (ms save_t));
  row "restore (LightVM)" "20 ms" (Printf.sprintf "%.0f ms" (ms restore_t));
  row "migrate (LightVM)" "60 ms" (Printf.sprintf "%.0f ms" (ms migrate_t));
  table

let tinyx_table () =
  let table =
    Table.create ~title:"Tinyx build system (Section 3.2)"
      ~columns:
        [ "app"; "packages"; "image MB"; "mem MB"; "kernel KB";
          "debian kernel KB" ]
  in
  List.iter
    (fun app ->
      match Lightvm_tinyx.Build.build (Lightvm_tinyx.Build.spec ~app ()) with
      | Error msg -> Table.add_row table [ app; "error: " ^ msg; ""; ""; ""; "" ]
      | Ok r ->
          Table.add_row table
            [
              app;
              string_of_int (List.length r.Lightvm_tinyx.Build.packages);
              Printf.sprintf "%.1f"
                r.Lightvm_tinyx.Build.image.Image.disk_mb;
              Printf.sprintf "%.1f" r.Lightvm_tinyx.Build.image.Image.mem_mb;
              string_of_int r.Lightvm_tinyx.Build.kernel_kb;
              string_of_int r.Lightvm_tinyx.Build.debian_kernel_kb;
            ])
    [ "nginx"; "micropython"; "redis-server"; "haproxy" ];
  table

(* ------------------------------------------------------------------ *)
(* Cluster control plane.

   One simulation per scheduling policy: a multi-host cluster places
   guests through the control plane ([Cluster.launch] + [Vmm.vm_boot]
   on the chosen host), recording the create+boot latency the control
   plane observes and the final placement distribution. A fourth job
   drains host 0 under injected migration faults and then rebalances,
   asserting the cluster's loss-aware resource accounting stays exact
   ([Cluster.check_leak]). Everything is seeded, so each job's piece is
   identical whatever the [--jobs] count. *)

let cluster_hosts ~guests = max 4 (min 20 (guests / 25))
let cluster_racks = 4
let cluster_fault_spec = "migrate.corrupt:0.6"

let cluster_boot c (p : Cluster.placement) =
  match
    Vmm.vm_boot (Cluster.host c p.Cluster.pl_host)
      ~domid:p.Cluster.pl_vm.Vmm.vi_domid
  with
  | Ok () -> ()
  | Error e -> failwith ("cluster boot: " ^ Vmm.error_to_string e)

(* One policy's bring-up, partition-parallel: placements are planned up
   front in partition 0 against bookkept scheduler views (the planner
   sees the exact view sequence it would see if placements applied one
   at a time, so the distribution is the policy's), each placement is
   announced on the switch from the control plane, and then every host
   creates its assigned guests concurrently — one creation stream per
   host, in the host's own partition when [`Host]. Latencies land in a
   preallocated per-guest slot, so the merge is by global index and the
   series is identical whatever the partitioning or [sim_jobs]. *)
let cluster_policy_job ?hosts ?(summarize = false) ~guests ~partition
    ~sim_jobs policy () =
  let hosts =
    match hosts with Some h -> h | None -> cluster_hosts ~guests
  in
  let pname = Scheduler.policy_name policy in
  let latency = mk (Printf.sprintf "cluster boot latency %s" pname) "ms" in
  let sample = max 1 (guests / 50) in
  let final_views = ref [] in
  let lat = Array.make guests nan in
  let body () =
    (* Pool-everywhere only makes sense on a pool-capable toolstack;
       the other policies run the paper's default split toolstack. *)
    let mode, pool_target =
      match policy with
      | Scheduler.Pool_everywhere ->
          (Mode.lightvm, Some (max 1 (min 8 (guests / hosts))))
      | Scheduler.Binpack | Scheduler.Spread -> (Mode.chaos_xs, None)
    in
    let c =
      Cluster.create ~hosts ~racks:cluster_racks
        ~partitioned:(partition = `Host)
        ~mode ?pool_target ~policy ()
    in
    (match policy with
    | Scheduler.Pool_everywhere ->
        Cluster.prefill_pools c Image.daytime ~nics:1 ~disks:0
    | Scheduler.Binpack | Scheduler.Spread -> ());
    let views = Array.of_list (Cluster.views c) in
    let planner = Scheduler.make policy in
    let mem_kb =
      int_of_float (ceil (Image.daytime.Image.mem_mb *. 1024.))
    in
    let per_host = Array.make hosts [] in
    for gi = 0 to guests - 1 do
      match
        Scheduler.place planner ~hosts:(Array.to_list views) ~mem_kb
      with
      | Error msg -> failwith ("cluster plan: no capacity: " ^ msg)
      | Ok id ->
          views.(id) <-
            {
              views.(id) with
              Scheduler.hv_vms = views.(id).Scheduler.hv_vms + 1;
              Scheduler.hv_free_kb = views.(id).Scheduler.hv_free_kb - mem_kb;
            };
          Cluster.announce c ~src:id ~dst:id "vm.create";
          per_host.(id) <- gi :: per_host.(id)
    done;
    fan_out_hosts ~hosts
      ~part_of:(Cluster.partition_of c)
      (fun h ->
        let host = Cluster.host c h in
        List.iter
          (fun gi ->
            let t0 = Engine.now () in
            (match
               Vmm.vm_create host (Vmm.vm_request ~nics:1 Image.daytime)
             with
            | Error e -> failwith ("cluster create: " ^ Vmm.error_to_string e)
            | Ok vi -> (
                match Vmm.vm_boot host ~domid:vi.Vmm.vi_domid with
                | Ok () -> ()
                | Error e ->
                    failwith ("cluster boot: " ^ Vmm.error_to_string e)));
            lat.(gi) <- Engine.now () -. t0)
          (List.rev per_host.(h)));
    final_views := Cluster.views c
  in
  (match partition with
  | `Host -> run_sim_partitioned ~jobs:sim_jobs ~partitions:hosts body
  | `None -> run_sim body);
  for i = 1 to guests do
    if i mod sample = 0 || i = 1 then
      Series.add latency ~x:(float_of_int i) ~y:(ms lat.(i - 1))
  done;
  let counts =
    List.map (fun (v : Scheduler.host_view) -> v.Scheduler.hv_vms) !final_views
  in
  let note =
    (* A 100-host placement list is noise; the scale row reports the
       distribution instead. Both forms are pure functions of the
       placements, so either digests deterministically. *)
    if summarize then begin
      let mn = List.fold_left min max_int counts
      and mx = List.fold_left max 0 counts
      and total = List.fold_left ( + ) 0 counts in
      Printf.sprintf
        "cluster %s: %d guests on %d hosts, per-host min %d / mean %.1f / \
         max %d"
        pname guests hosts mn
        (float_of_int total /. float_of_int (max 1 hosts))
        mx
    end
    else
      Printf.sprintf "cluster %s: %d guests on %d hosts, placement [%s]"
        pname guests hosts
        (String.concat "; " (List.map string_of_int counts))
  in
  piece
    ~series:[ { label = "cluster " ^ pname; series = latency } ]
    ~notes:[ note ] ()

let cluster_drain_prefix_key guests = Printf.sprintf "cluster:drain@%d" guests

(* The drain job's boot prefix: the whole cluster up with [guests]
   spread-placed guests running — everything before the first injected
   fault. (The policy bring-up jobs are not prefixed: pool-everywhere
   runs split toolstacks whose warm-pool refill daemons park effect
   continuations, which is exactly what a checkpoint cannot hold.) *)
let cluster_drain_image_for ~key ~hosts ~guests =
  prefix_image ~key (fun () ->
      let cl = ref None in
      let _clock, saved =
        Engine.run_capture (fun () ->
            let c =
              Cluster.create ~hosts ~racks:cluster_racks ~mode:Mode.chaos_xs
                ~policy:Scheduler.Spread ()
            in
            for _ = 1 to guests do
              match Cluster.launch c (Vmm.vm_request ~nics:1 Image.daytime) with
              | Error e -> failwith (Cluster.error_to_string e)
              | Ok p -> cluster_boot c p
            done;
            cl := Some c;
            Engine.stop ())
      in
      snap_err "cluster drain image" (Snap.freeze (saved, Option.get !cl)))

let cluster_drain_image ~guests =
  cluster_drain_image_for
    ~key:(cluster_drain_prefix_key guests)
    ~hosts:(cluster_hosts ~guests) ~guests

(* The drain suffix: snapshot accounting, drain host 0 under the
   injector, rebalance, leak check. Runs inside the simulation, after
   the boot prefix — inline or resumed from a thawed image. *)
let cluster_drain_suffix ~spec ~fault_seed c =
  let injector = Fault.create ~seed:fault_seed spec in
  let before = Cluster.resources c in
  let drain =
    Fault.with_injector injector (fun () -> Cluster.drain c ~host:0)
  in
  let reb = Cluster.rebalance c () in
  let leak =
    match Cluster.check_leak c ~before with
    | Ok () -> "accounting exact (leak-free)"
    | Error s -> "LEAK: " ^ s
  in
  let report tag (r : Cluster.move_report) =
    Printf.sprintf
      "cluster %s: %d attempted, %d moved, %d lost, %d stranded in %.1f ms"
      tag r.Cluster.mv_attempted r.Cluster.mv_moved r.Cluster.mv_lost
      r.Cluster.mv_stranded (ms r.Cluster.mv_seconds)
  in
  piece
    ~notes:
      [
        report "drain host 0 under migrate.corrupt" drain;
        report "rebalance" reb;
        "cluster drain/rebalance: " ^ leak;
      ]
    ()

let cluster_drain_job_for ~image ~hosts ~snapshot ~guests ~spec ~fault_seed
    () =
  if not snapshot then
    run_sim (fun () ->
        let c =
          Cluster.create ~hosts ~racks:cluster_racks ~mode:Mode.chaos_xs
            ~policy:Scheduler.Spread ()
        in
        for _ = 1 to guests do
          match Cluster.launch c (Vmm.vm_request ~nics:1 Image.daytime) with
          | Error e -> failwith (Cluster.error_to_string e)
          | Ok p -> cluster_boot c p
        done;
        cluster_drain_suffix ~spec ~fault_seed c)
  else begin
    let t0 = wall () in
    let bytes = image () in
    let ((saved : Engine.saved), (c : Cluster.t)) =
      snap_err "cluster drain image" (Snap.thaw bytes)
    in
    let prefix_seconds = wall () -. t0 in
    let out = ref None in
    ignore
      (Engine.resume saved (fun () ->
           out := Some (cluster_drain_suffix ~spec ~fault_seed c);
           Engine.stop ()));
    match !out with
    | Some p -> { p with p_prefix_seconds = prefix_seconds }
    | None -> failwith "cluster drain: simulation did not complete"
  end

let cluster_drain_job ~snapshot ~guests ~spec ~fault_seed () =
  cluster_drain_job_for
    ~image:(fun () -> cluster_drain_image ~guests)
    ~hosts:(cluster_hosts ~guests) ~snapshot ~guests ~spec ~fault_seed ()

let cluster_jobs ?(n = 500) ?spec ?(fault_seed = 42L) ?(partition = `Host)
    ?(sim_jobs = 1) () : job list =
  let guests = n in
  let spec =
    match spec with
    | Some s -> s
    | None -> (
        match Fault.parse_spec cluster_fault_spec with
        | Ok s -> s
        | Error m -> invalid_arg ("cluster_fault_spec: " ^ m))
  in
  List.map
    (fun policy ->
      ( "cluster/" ^ Scheduler.policy_name policy,
        cluster_policy_job ~guests ~partition ~sim_jobs policy ))
    Scheduler.policies
  (* The drain job migrates guests between hosts — inherently
     cross-partition state motion — so it stays on the single-heap
     engine. *)
  @ [
      ( "cluster/drain",
        cluster_drain_job ~snapshot:true ~guests ~spec ~fault_seed );
    ]

(* ------------------------------------------------------------------ *)
(* cluster-scale: ROADMAP item 1's end state — 100 hosts x 10k guests
   scheduled, migrated and rebalanced. Same machinery as the [cluster]
   family, but hosts are sized for cloud scale (one host per ~100
   guests, capped at 100) rather than per ~25 capped at 20, the
   placement note is summarized (a 100-element list is noise), and the
   family runs one policy bring-up instead of three — at this scale the
   row exists to exercise the control plane and the event core, not to
   compare policies again. The drain job forks its own prefix image
   (the full fleet booted), keyed separately from [cluster]'s so the
   two families cache independently. *)

let cluster_scale_hosts ~guests = max 4 (min 100 (guests / 100))

let cluster_scale_prefix_key guests =
  Printf.sprintf "cluster-scale:drain@%d" guests

let cluster_scale_drain_image ~guests =
  cluster_drain_image_for
    ~key:(cluster_scale_prefix_key guests)
    ~hosts:(cluster_scale_hosts ~guests)
    ~guests

let cluster_scale_jobs ?(n = 2000) ?spec ?(fault_seed = 42L)
    ?(partition = `Host) ?(sim_jobs = 1) () : job list =
  let guests = n in
  let hosts = cluster_scale_hosts ~guests in
  let spec =
    match spec with
    | Some s -> s
    | None -> (
        match Fault.parse_spec cluster_fault_spec with
        | Ok s -> s
        | Error m -> invalid_arg ("cluster_fault_spec: " ^ m))
  in
  [
    ( "cluster-scale/spread",
      cluster_policy_job ~hosts ~summarize:true ~guests ~partition ~sim_jobs
        Scheduler.Spread );
    ( "cluster-scale/drain",
      cluster_drain_job_for
        ~image:(fun () -> cluster_scale_drain_image ~guests)
        ~hosts ~snapshot:true ~guests ~spec ~fault_seed );
  ]

(* ------------------------------------------------------------------ *)
(* Serverless (open-loop; DESIGN.md section 12).

   The paper's Lambda rows (Figs 17/18) are closed-loop. This family is
   the open-loop production regime: Lightvm_serverless drives an
   arrival process against one instance-acquisition policy per cell and
   reports the latency percentiles, queue-depth trace and pool hit
   rate. The calibration below keeps the Poisson cells inside the dom0
   creation capacity of the VM policies (~190 req/s for these modes on
   the paper's Xeon, measured in simulation), so their tails reflect
   queueing, not unbounded overload; the container cell at the same
   rate is far beyond `docker run` capacity and drains its backlog
   after arrivals stop — the Fig 10 contrast restated as sojourn
   times. The mmpp cell's bursts (4x base) do exceed capacity, which is
   what exercises the autoscaler's scale-up path.

   Every warm-pool cell forks the same checkpoint prefix: a LightVM
   host with the function-instance pool target set and synchronously
   prefilled ("serverless:warm@<target>"). Prefilling parks no
   continuation, so the image quiesces — unlike a host that has already
   served a take (whose background refill daemon may be mid-build). *)

let serverless_rate = 80.
let serverless_pool_target = 4
let serverless_cold_mode = Mode.chaos_xs

let serverless_prefix_key target = Printf.sprintf "serverless:warm@%d" target

let serverless_image target =
  prefix_image ~key:(serverless_prefix_key target) (fun () ->
      let host = ref None in
      let _clock, saved =
        Engine.run_capture (fun () ->
            let h = Vmm.create () in
            Serverless.warm_pool h ~target;
            host := Some h;
            Engine.stop ())
      in
      snap_err "serverless image" (Snap.freeze (saved, Option.get !host)))

(* Distinct per-cell seed so cells stay independent whatever the job
   order: a pure function of the base seed and the cell's position in
   the family. *)
let serverless_cell_seed ~seed i = Int64.add seed (Int64.of_int (i * 7919))

let serverless_config ~arrival ~requests ~policy ~seed =
  let duration = float_of_int requests /. Arrival.mean_rate arrival in
  {
    (Serverless.default_config ~arrival ~duration policy) with
    Serverless.seed;
    autoscaler =
      {
        Serverless.default_autoscaler with
        min_target = serverless_pool_target;
      };
  }

(* One cell's piece: the latency CDF (x in us, y the percentile), the
   queue-depth trace and the percentile note. Everything rendered is
   simulated data, so the piece digests identically however the cell
   was scheduled. *)
let serverless_render ~label ~prefix_seconds (s : Serverless.stats) =
  let cdf = mk ("serverless cdf " ^ label) "us" in
  let n = Quantiles.count s.Serverless.latency in
  if n > 0 then
    List.iter
      (fun (v, frac) -> Series.add cdf ~x:(1e6 *. v) ~y:(100. *. frac))
      (Quantiles.sorted_points s.Serverless.latency ~every:(max 1 (n / 200)));
  piece
    ~series:
      [
        { label = "cdf " ^ label; series = cdf };
        { label = "queue " ^ label; series = s.Serverless.queue_depth };
      ]
    ~notes:[ Serverless.percentile_note ~label s ]
    ~prefix_seconds ()

(* A cell body: host of the right shape, then the open-loop run,
   optionally under a fault injector (injected creation failures count
   as failed requests; the arrival stream never blocks on them). *)
let serverless_attempts ~cfg ~injector host =
  match injector with
  | None -> Serverless.run_node cfg host
  | Some injector ->
      Fault.with_injector injector (fun () -> Serverless.run_node cfg host)

(* [(prefix_seconds, stats)] for one cell. Warm-pool cells fork the
   shared prefix image by default; [~snapshot:false] keeps the unbroken
   twin alive so the fork-equals-unbroken contract stays testable. *)
let serverless_cell_stats ~snapshot ~requests ~policy ~arrival ?spec ~seed () =
  let cfg = serverless_config ~arrival ~requests ~policy ~seed in
  let injector = Option.map (fun spec -> Fault.create ~seed spec) spec in
  match policy with
  | Serverless.Warm_pool when snapshot ->
      let t0 = wall () in
      let bytes = serverless_image serverless_pool_target in
      let ((saved : Engine.saved), (host : Vmm.t)) =
        snap_err "serverless image" (Snap.thaw bytes)
      in
      let prefix_seconds = wall () -. t0 in
      let out = ref None in
      ignore
        (Engine.resume saved (fun () ->
             out := Some (serverless_attempts ~cfg ~injector host);
             Engine.stop ()));
      let stats =
        match !out with
        | Some s -> s
        | None -> failwith "serverless: simulation did not complete"
      in
      (prefix_seconds, stats)
  | _ ->
      let stats =
        run_sim (fun () ->
            let host =
              match policy with
              | Serverless.Warm_pool ->
                  let h = Vmm.create () in
                  Serverless.warm_pool h ~target:serverless_pool_target;
                  h
              | Serverless.Cold_boot | Serverless.Container ->
                  Vmm.create ~mode:serverless_cold_mode ()
            in
            serverless_attempts ~cfg ~injector host)
      in
      (0., stats)

let serverless_label ~policy ~arrival ~spec =
  Printf.sprintf "%s/%s"
    (Serverless.policy_name policy)
    (Arrival.name arrival)
  ^ match spec with Some _ -> "/faults" | None -> ""

let serverless_cell ~snapshot ~requests ~policy ~arrival ?spec ~seed () =
  let prefix_seconds, stats =
    serverless_cell_stats ~snapshot ~requests ~policy ~arrival ?spec ~seed ()
  in
  serverless_render
    ~label:(serverless_label ~policy ~arrival ~spec)
    ~prefix_seconds stats

(* The fleet cell: [serverless_fleet_hosts] LightVM hosts each running
   an independent warm-pool node in its own partition, per-host streams
   split from the cell seed by host index. Hosts only write their own
   slot of the results array (the disjoint-slot cross-domain pattern),
   and the merge walks hosts in index order, so the render is identical
   across the jobs x partition matrix. *)
let serverless_fleet_hosts = 4

(* The per-host fan-out shared by the fleet cell and the day row:
   [node h] supplies host [h]'s (already warm, or freshly warmed) VMM,
   each host runs its own Poisson stream split from the cell seed by
   host index, and results land in disjoint slots. *)
let serverless_fleet_cells ~partition ~per ~seed ~node slots =
  let hosts = Array.length slots in
  fan_out_hosts ~hosts
    ~part_of:(fun h -> match partition with `Host -> h + 1 | `None -> 0)
    (fun h ->
      let host = node h in
      let cfg =
        serverless_config
          ~arrival:(Arrival.Poisson { rate = serverless_rate })
          ~requests:per ~policy:Serverless.Warm_pool
          ~seed:(Int64.add seed (Int64.of_int ((h + 1) * 104729)))
      in
      slots.(h) <- Some (Serverless.run_node cfg host))

(* Merge the per-host results in host index order (latency quantiles
   merged into one accumulator, counters summed) and render: identical
   whatever the partitioning or worker count. *)
let serverless_fleet_finish ~label ~prefix_seconds slots =
  let per_host = Array.to_list (Array.map Option.get slots) in
  let merged = Quantiles.create () in
  List.iter
    (fun (s : Serverless.stats) ->
      Quantiles.merge_into merged ~src:s.Serverless.latency)
    per_host;
  let total f = List.fold_left (fun a s -> a + f s) 0 per_host in
  let agg =
    {
      Serverless.requests = total (fun s -> s.Serverless.requests);
      completed = total (fun s -> s.Serverless.completed);
      failures = total (fun s -> s.Serverless.failures);
      latency = merged;
      queue_depth = (List.hd per_host).Serverless.queue_depth;
      pool_hits = total (fun s -> s.Serverless.pool_hits);
      pool_takes = total (fun s -> s.Serverless.pool_takes);
      peak_target =
        List.fold_left
          (fun a (s : Serverless.stats) -> max a s.Serverless.peak_target)
          0 per_host;
      makespan =
        List.fold_left
          (fun a (s : Serverless.stats) -> Float.max a s.Serverless.makespan)
          0. per_host;
    }
  in
  let p = serverless_render ~label ~prefix_seconds agg in
  let host_notes =
    List.mapi
      (fun h s ->
        Serverless.percentile_note ~label:(Printf.sprintf "fleet host %d" h) s)
      per_host
  in
  { p with p_notes = p.p_notes @ host_notes }

let serverless_fleet ~requests ~partition ~sim_jobs ~seed () =
  let hosts = serverless_fleet_hosts in
  let per = max 1 (requests / hosts) in
  let slots : Serverless.stats option array = Array.make hosts None in
  let body () =
    serverless_fleet_cells ~partition ~per ~seed
      ~node:(fun h ->
        let host = Vmm.create ~host_id:h () in
        Serverless.warm_pool host ~target:serverless_pool_target;
        host)
      slots
  in
  (match partition with
  | `Host -> run_sim_partitioned ~jobs:sim_jobs ~partitions:hosts body
  | `None -> run_sim body);
  serverless_fleet_finish
    ~label:(Printf.sprintf "fleet x%d warmpool/poisson" hosts)
    ~prefix_seconds:0. slots

let serverless_jobs ?(n = 2000) ?spec ?(fault_seed = 42L)
    ?(partition = `Host) ?(sim_jobs = 1) () : job list =
  let requests = n in
  let rate = serverless_rate in
  let poisson = Arrival.Poisson { rate } in
  let duration = float_of_int requests /. rate in
  let diurnal = Arrival.Diurnal { base = rate; amplitude = 0.6; period = duration } in
  let mmpp =
    Arrival.Mmpp
      {
        calm_rate = rate /. 2.;
        burst_rate = 4. *. rate;
        mean_calm = duration /. 12.;
        mean_burst = duration /. 60.;
      }
  in
  let spec =
    match spec with
    | Some s -> s
    | None -> (
        match Fault.parse_spec reliability_default_spec with
        | Ok s -> s
        | Error m -> invalid_arg ("reliability_default_spec: " ^ m))
  in
  let cell i ?spec ~policy ~arrival () =
    serverless_cell ~snapshot:true ~requests ~policy ~arrival ?spec
      ~seed:(serverless_cell_seed ~seed:fault_seed i) ()
  in
  [
    ( "serverless/coldboot",
      fun () -> cell 0 ~policy:Serverless.Cold_boot ~arrival:poisson () );
    ( "serverless/warmpool",
      fun () -> cell 1 ~policy:Serverless.Warm_pool ~arrival:poisson () );
    ( "serverless/container",
      fun () -> cell 2 ~policy:Serverless.Container ~arrival:poisson () );
    ( "serverless/warmpool-diurnal",
      fun () -> cell 3 ~policy:Serverless.Warm_pool ~arrival:diurnal () );
    ( "serverless/warmpool-mmpp",
      fun () -> cell 4 ~policy:Serverless.Warm_pool ~arrival:mmpp () );
    ( "serverless/coldboot-faults",
      fun () -> cell 5 ~spec ~policy:Serverless.Cold_boot ~arrival:poisson ()
    );
    ( Printf.sprintf "serverless/fleet/%d" serverless_fleet_hosts,
      fun () ->
        serverless_fleet ~requests ~partition ~sim_jobs
          ~seed:(serverless_cell_seed ~seed:fault_seed 6)
          () );
  ]

(* CLI hook: one configurable cell from flag values, returning the
   uniform [result] shape (defined below) via [serverless_run]. *)
let serverless_cell_piece ?(snapshot = true) ~requests ~policy ~arrival ?spec
    ~seed () =
  match Serverless.policy_of_string policy with
  | Error m -> Error m
  | Ok policy ->
      Ok (serverless_cell ~snapshot ~requests ~policy ~arrival ?spec ~seed ())

(* Bench hook: [(cold_p99_us, warm_p99_us, warm_hit_rate)] for the
   flagship Poisson pair, same seeds as the family jobs. The bench
   emits these as JSON fields and CI asserts warm < cold. *)
let serverless_bench_summary ?(requests = 2000) () =
  let poisson = Arrival.Poisson { rate = serverless_rate } in
  let stats i policy =
    snd
      (serverless_cell_stats ~snapshot:true ~requests ~policy ~arrival:poisson
         ~seed:(serverless_cell_seed ~seed:42L i) ())
  in
  let cold = stats 0 Serverless.Cold_boot in
  let warm = stats 1 Serverless.Warm_pool in
  let p99 (s : Serverless.stats) =
    if Quantiles.count s.Serverless.latency = 0 then 0.
    else 1e6 *. Quantiles.quantile s.Serverless.latency 0.99
  in
  (p99 cold, p99 warm, Serverless.hit_rate warm)

(* ------------------------------------------------------------------ *)
(* serverless-day: ROADMAP item 2's headline row — a full day's worth
   of host-seconds of open-loop traffic (at bench scale, 7M requests at
   the calibrated 80 req/s per host across the 4-host fleet, i.e.
   ~87,500 host-seconds of arrivals) pushed through the fleet cell in
   one simulation. The fleet prefix — the hosts created and their
   instance pools synchronously prefilled — is captured once per
   (partition, sim_jobs) config and the day itself runs as a resumed
   suffix. Prefilling parks no effect continuation, so the image
   quiesces — the same argument as the single-host "serverless:warm@"
   image; [sim_jobs] is in the key for the same reason it is in the
   scale-fleet key (cache hits must not short-circuit the jobs-matrix
   determinism tests). *)

let serverless_day_prefix_key ~partition ~sim_jobs hosts =
  Printf.sprintf "serverless-day:%s/j%d@%d" (partition_name partition)
    sim_jobs hosts

let serverless_day_image ~partition ~sim_jobs () =
  let hosts = serverless_fleet_hosts in
  prefix_image
    ~key:(serverless_day_prefix_key ~partition ~sim_jobs hosts)
    (fun () ->
      let nodes : Vmm.t option array = Array.make hosts None in
      let body () =
        fan_out_hosts ~hosts
          ~part_of:(fun h ->
            match partition with `Host -> h + 1 | `None -> 0)
          (fun h ->
            let host = Vmm.create ~host_id:h () in
            Serverless.warm_pool host ~target:serverless_pool_target;
            nodes.(h) <- Some host);
        Engine.stop ()
      in
      let saved =
        match partition with
        | `Host ->
            snd
              (Engine.run_partitioned_capture ~jobs:sim_jobs ~lookahead
                 ~partitions:hosts body)
        | `None -> snd (Engine.run_capture body)
      in
      snap_err "serverless day image"
        (Snap.freeze (saved, Array.map Option.get nodes)))

let serverless_day ~requests ~partition ~sim_jobs ~seed () =
  let hosts = serverless_fleet_hosts in
  let per = max 1 (requests / hosts) in
  let slots : Serverless.stats option array = Array.make hosts None in
  let t0 = wall () in
  let bytes = serverless_day_image ~partition ~sim_jobs () in
  let ((saved : Engine.saved), (nodes : Vmm.t array)) =
    snap_err "serverless day image" (Snap.thaw bytes)
  in
  let prefix_seconds = wall () -. t0 in
  ignore
    (Engine.resume ~jobs:sim_jobs saved (fun () ->
         serverless_fleet_cells ~partition ~per ~seed
           ~node:(fun h -> nodes.(h))
           slots;
         Engine.stop ()));
  serverless_fleet_finish
    ~label:(Printf.sprintf "day fleet x%d warmpool/poisson" hosts)
    ~prefix_seconds slots

let serverless_day_jobs ?(n = 8000) ?(partition = `Host) ?(sim_jobs = 1) () :
    job list =
  [
    ( "serverless-day/fleet",
      fun () ->
        serverless_day ~requests:n ~partition ~sim_jobs
          ~seed:(serverless_cell_seed ~seed:42L 7)
          () );
  ]

(* ------------------------------------------------------------------ *)
(* Uniform result API: every experiment is reachable through [all] and
   returns the same record, so front ends (CLI, bench) dispatch and
   print generically instead of pattern-matching per-figure shapes. *)

type result = {
  name : string;
  figure : string; (* paper figure or section, e.g. "Fig 5" *)
  series : labelled list;
  tables : Table.t list;
  notes : string list;
  prefix_seconds : float;
      (* wall time spent building/loading shared boot prefixes; real
         time, not simulated — excluded from rendered output so digests
         stay reproducible *)
}

let relabel suffix l = { l with label = l.label ^ " " ^ suffix }

(* ------------------------------------------------------------------ *)
(* Plans: the parallel execution layer. A plan is the experiment's job
   list plus the (order-preserving) merge of the resulting pieces. *)

type plan = {
  plan_name : string;
  plan_figure : string;
  plan_jobs : job list;
  plan_finish : piece list -> piece;
}

let mk_plan ?(finish = piece_concat) ~figure name jobs =
  { plan_name = name; plan_figure = figure; plan_jobs = jobs;
    plan_finish = finish }

let single ~figure name f = mk_plan ~figure name [ (name, f) ]

let reliability_plan ?n ?spec ?fault_seed () =
  mk_plan ~figure:"Failure model" "reliability" ~finish:reliability_finish
    (reliability_jobs ?n ?spec ?fault_seed ())

let cluster_plan ?n ?spec ?fault_seed ?partition ?sim_jobs () =
  mk_plan ~figure:"Cluster" "cluster"
    (cluster_jobs ?n ?spec ?fault_seed ?partition ?sim_jobs ())

let plans ?n ?partition ?sim_jobs () : (string * plan) list =
  [
    ( "fig1",
      single ~figure:"Fig 1" "fig1" (fun () ->
          let table, slope = fig1_syscall_growth () in
          piece ~tables:[ table ]
            ~notes:[ Printf.sprintf "growth: %.1f syscalls/year" slope ]
            ()) );
    ( "fig2",
      single ~figure:"Fig 2" "fig2" (fun () ->
          piece
            ~series:
              [
                {
                  label = "daytime create+boot vs image size";
                  series = fig2_boot_vs_image_size ();
                };
              ]
            ()) );
    ("fig4", mk_plan ~figure:"Fig 4" "fig4" (fig4_jobs ?n ()));
    ( "fig5",
      single ~figure:"Fig 5" "fig5" (fun () ->
          piece ~series:(fig5_breakdown ?n ()) ()) );
    ("fig9", mk_plan ~figure:"Fig 9" "fig9" (fig9_jobs ?n ()));
    ( "scale",
      mk_plan ~figure:"Fig 9 at 10k" "scale"
        (scale_jobs ?n ?partition ?sim_jobs ()) );
    ("reliability", reliability_plan ?n ());
    ( "fig10",
      mk_plan ~figure:"Fig 10" "fig10"
        (fig10_jobs ?vms:n ?containers:n ()) );
    ("fig11", mk_plan ~figure:"Fig 11" "fig11" (fig11_jobs ?n ()));
    ( "fig12",
      (* Sequential rendering lists every mode's save series first,
         then every restore: reassemble that order from the per-mode
         pieces ([save; restore] each). *)
      mk_plan ~figure:"Fig 12" "fig12" (fig12_jobs ?n ())
        ~finish:(fun pieces ->
          let save = List.map (fun p -> List.nth p.p_series 0) pieces in
          let restore = List.map (fun p -> List.nth p.p_series 1) pieces in
          piece
            ~series:
              (List.map (relabel "save") save
              @ List.map (relabel "restore") restore)
            ()) );
    ("fig13", mk_plan ~figure:"Fig 13" "fig13" (fig13_jobs ?n ()));
    ("fig14", mk_plan ~figure:"Fig 14" "fig14" (fig14_jobs ?n ()));
    ("fig15", mk_plan ~figure:"Fig 15" "fig15" (fig15_jobs ?n ()));
    ( "fig16a",
      single ~figure:"Fig 16a" "fig16a" (fun () ->
          piece ~tables:[ fig16a_firewall () ] ()) );
    ( "fig16b",
      mk_plan ~figure:"Fig 16b" "fig16b" (fig16b_jobs ?clients:n ()) );
    ("fig16c", mk_plan ~figure:"Fig 16c" "fig16c" (fig16c_jobs ()));
    ("fig17", mk_plan ~figure:"Fig 17" "fig17" (fig17_jobs ?requests:n ()));
    ("fig18", mk_plan ~figure:"Fig 18" "fig18" (fig18_jobs ?requests:n ()));
    ( "ablation",
      mk_plan ~figure:"Sec 4.2 ablation" "ablation" (ablation_jobs ?n ()) );
    ( "pause",
      single ~figure:"Sec 2" "pause" (fun () ->
          piece ~tables:[ pause_unpause () ] ()) );
    ( "wan-migration",
      single ~figure:"Sec 7.1" "wan-migration" (fun () ->
          piece ~tables:[ wan_migration () ] ()) );
    ( "headline",
      single ~figure:"Abstract" "headline" (fun () ->
          piece ~tables:[ headline_numbers () ] ()) );
    ( "tinyx",
      single ~figure:"Sec 3.2" "tinyx" (fun () ->
          piece ~tables:[ tinyx_table () ] ()) );
    ("cluster", cluster_plan ?n ?partition ?sim_jobs ());
    ( "cluster-scale",
      mk_plan ~figure:"Cluster at scale" "cluster-scale"
        (cluster_scale_jobs ?n ?partition ?sim_jobs ()) );
    ( "serverless",
      mk_plan ~figure:"Open-loop serverless" "serverless"
        (serverless_jobs ?n ?partition ?sim_jobs ()) );
    ( "serverless-day",
      mk_plan ~figure:"Serverless day" "serverless-day"
        (serverless_day_jobs ?n ?partition ?sim_jobs ()) );
  ]

let plan ?n ?partition ?sim_jobs name =
  List.assoc_opt name (plans ?n ?partition ?sim_jobs ())

let job_count p = List.length p.plan_jobs

let run_plan ?(jobs = 1) p =
  let thunks = List.map snd p.plan_jobs in
  let pieces =
    if jobs <= 1 then List.map (fun f -> f ()) thunks
    else Pool.run ~jobs thunks
  in
  let merged = p.plan_finish pieces in
  {
    name = p.plan_name;
    figure = p.plan_figure;
    series = merged.p_series;
    tables = merged.p_tables;
    notes = merged.p_notes;
    prefix_seconds = merged.p_prefix_seconds;
  }

(* ------------------------------------------------------------------ *)

let registry ?n ?partition ?sim_jobs () =
  List.map
    (fun (name, p) -> (name, fun () -> run_plan p))
    (plans ?n ?partition ?sim_jobs ())

let all = registry ()

let names = List.map fst all

let find ?n ?partition ?sim_jobs name =
  List.assoc_opt name (registry ?n ?partition ?sim_jobs ())

(* ------------------------------------------------------------------ *)
(* Named prefixes and file-level snapshot/resume.

   Every shared boot prefix the plans use is also addressable by name,
   so the CLI can build one, write it to disk ([snapshot]) and later
   fork suffix runs from the file ([resume]) — across process
   invocations, as long as it is the same binary
   ({!Lightvm_sim.Checkpoint} refuses anything else). The prefix key
   doubles as the snapshot's stored config string: [resume] dispatches
   on it, so a snapshot file knows which suffix grammar applies. *)

type prefix = {
  prefix_key : string;
  prefix_describe : string;
  prefix_build : unit -> string;
}

let prefixes ?n ?(partition = `Host) ?(sim_jobs = 1) () : prefix list =
  let scale_n = match n with Some v -> v | None -> 10_000 in
  let counts = scale_counts scale_n in
  let top = List.fold_left max 1 counts in
  let scale_prefixes =
    List.concat_map
      (fun mode ->
        let counts =
          if String.equal (Mode.name mode) "xl" then
            List.filter (fun c -> c <= scale_xl_cap) counts
          else counts
        in
        List.map
          (fun count ->
            {
              prefix_key = scale_prefix_key ~mode count;
              prefix_describe =
                Printf.sprintf "one %s host booted to %d daytime guests"
                  (Mode.name mode) count;
              prefix_build = (fun () -> scale_image ~mode ~bounds:counts count);
            })
          counts)
      scale_modes
  in
  let fleet =
    let hosts = scale_partition_hosts in
    let per = max 1 (top / hosts) in
    let per1 = max 1 (per / 2) in
    let total = hosts * per in
    {
      prefix_key = fleet_prefix_key ~partition ~sim_jobs total;
      prefix_describe =
        Printf.sprintf
          "%d chaos [XS] hosts at wave 1 (%d of %d guests each, partition \
           %s, %d sim jobs)"
          hosts per1 per (partition_name partition) sim_jobs;
      prefix_build =
        (fun () -> fleet_image ~partition ~sim_jobs ~hosts ~per ~per1);
    }
  in
  let rel =
    List.map
      (fun mode ->
        {
          prefix_key = reliability_prefix_key mode;
          prefix_describe =
            Printf.sprintf "one warmed-up %s host (reliability cell prefix)"
              (Mode.name mode);
          prefix_build = (fun () -> reliability_image mode);
        })
      reliability_modes
  in
  let drain =
    let guests = match n with Some v -> v | None -> 500 in
    {
      prefix_key = cluster_drain_prefix_key guests;
      prefix_describe =
        Printf.sprintf
          "spread cluster of %d hosts with %d guests running (drain prefix)"
          (cluster_hosts ~guests) guests;
      prefix_build = (fun () -> cluster_drain_image ~guests);
    }
  in
  let serverless_warm =
    {
      prefix_key = serverless_prefix_key serverless_pool_target;
      prefix_describe =
        Printf.sprintf
          "one LightVM host, function-instance pool prefilled to %d \
           (serverless warm prefix)"
          serverless_pool_target;
      prefix_build = (fun () -> serverless_image serverless_pool_target);
    }
  in
  let scale_drain =
    let guests = match n with Some v -> v | None -> 2000 in
    {
      prefix_key = cluster_scale_prefix_key guests;
      prefix_describe =
        Printf.sprintf
          "spread cluster of %d hosts with %d guests running \
           (cluster-scale drain prefix)"
          (cluster_scale_hosts ~guests) guests;
      prefix_build = (fun () -> cluster_scale_drain_image ~guests);
    }
  in
  let day_fleet =
    let hosts = serverless_fleet_hosts in
    {
      prefix_key = serverless_day_prefix_key ~partition ~sim_jobs hosts;
      prefix_describe =
        Printf.sprintf
          "%d LightVM hosts, function-instance pools prefilled to %d each \
           (serverless-day fleet prefix, partition %s, %d sim jobs)"
          hosts serverless_pool_target (partition_name partition) sim_jobs;
      prefix_build = (fun () -> serverless_day_image ~partition ~sim_jobs ());
    }
  in
  scale_prefixes @ [ fleet ] @ rel
  @ [ drain; scale_drain; serverless_warm; day_fleet ]

let snapshot_to_file ?n ?partition ?sim_jobs ~key ~path () =
  let avail = prefixes ?n ?partition ?sim_jobs () in
  match List.find_opt (fun p -> String.equal p.prefix_key key) avail with
  | None ->
      Error
        (Printf.sprintf "unknown prefix %S; available:\n  %s" key
           (String.concat "\n  " (List.map (fun p -> p.prefix_key) avail)))
  | Some p -> (
      match p.prefix_build () with
      | exception Failure msg -> Error msg
      | bytes -> (
          match Snap.save_bytes ~path ~config:key bytes with
          | Ok () -> Ok p.prefix_describe
          | Error e -> Error (Snap.error_to_string e)))

(* --- resume: parse the stored key and run the matching suffix. --- *)

let mk_result ~name ~notes series =
  {
    name;
    figure = "snapshot";
    series;
    tables = [];
    notes;
    prefix_seconds = 0.;
  }

(* "scale:<mode>@<count>": extend the host by [extra] more guests and
   render the full curve to count+extra. *)
let resume_scale ~mode ~count ~extra bytes =
  match (Snap.thaw bytes : (Engine.saved * (Vmm.t * float array), _) Stdlib.result)
  with
  | Error e -> Error (Snap.error_to_string e)
  | Ok (saved, (host, lat_prev)) ->
      let total = count + extra in
      let lat = Array.make total nan in
      Array.blit lat_prev 0 lat 0 count;
      ignore
        (Engine.resume saved (fun () ->
             scale_create_range host lat ~from:count ~upto:total;
             Engine.stop ()));
      Ok
        (mk_result ~name:"resume"
           ~notes:
             [
               Printf.sprintf
                 "resumed %s host at %d guests, extended to %d" (Mode.name mode)
                 count total;
             ]
           (scale_curve_rows ~mode ~counts:[ total ] lat))

(* "scale-fleet:<part>/j<J>@<total>": run wave 2 from the wave-1 image
   and render the fleet row. *)
let resume_fleet ~partition ~sim_jobs ~total bytes =
  match
    (Snap.thaw bytes
      : ( Engine.saved * (Vmm.t array * float array array),
          _ )
        Stdlib.result)
  with
  | Error e -> Error (Snap.error_to_string e)
  | Ok (saved, (nodes, lat)) ->
      let hosts = Array.length nodes in
      let per = total / hosts in
      let per1 = max 1 (per / 2) in
      ignore
        (Engine.resume ~jobs:sim_jobs saved (fun () ->
             fleet_wave ~partition nodes lat ~from:per1 ~upto:per;
             Engine.stop ()));
      Ok
        (mk_result ~name:"resume"
           ~notes:
             [
               Printf.sprintf
                 "resumed fleet wave 2: %d hosts, guests %d..%d of %d each"
                 hosts (per1 + 1) per per;
             ]
           [ fleet_row_render ~hosts ~per lat ])

(* "reliability:<mode>": one full fault-injection cell on the warmed
   host. *)
let resume_reliability ~mode ~n ~spec ~fault_seed bytes =
  match (Snap.thaw bytes : (Engine.saved * Vmm.t, _) Stdlib.result) with
  | Error e -> Error (Snap.error_to_string e)
  | Ok (saved, host) ->
      let label = Printf.sprintf "%s x1" (Mode.name mode) in
      let injector = Fault.create ~seed:fault_seed spec in
      let ok = ref 0 and times = ref [] and leaks = ref [] in
      ignore
        (Engine.resume saved (fun () ->
             reliability_attempts ~n ~label ~injector host ok times leaks;
             Engine.stop ()));
      let p =
        reliability_render ~mode ~label ~level:1. ~n ~injector
          ~prefix_seconds:0. ok times leaks
      in
      Ok
        (mk_result ~name:"resume" ~notes:p.p_notes p.p_series)

(* "cluster:drain@<guests>": drain/rebalance/leak-check under the
   injected fault spec. *)
let resume_drain ~spec ~fault_seed bytes =
  match (Snap.thaw bytes : (Engine.saved * Cluster.t, _) Stdlib.result) with
  | Error e -> Error (Snap.error_to_string e)
  | Ok (saved, c) ->
      let out = ref None in
      ignore
        (Engine.resume saved (fun () ->
             out := Some (cluster_drain_suffix ~spec ~fault_seed c);
             Engine.stop ()));
      let p =
        match !out with
        | Some p -> p
        | None -> failwith "cluster drain: simulation did not complete"
      in
      Ok (mk_result ~name:"resume" ~notes:p.p_notes p.p_series)

(* "serverless:warm@<target>": the flagship warm-pool Poisson cell run
   as a suffix of the prefilled-host image. *)
let resume_serverless ~requests bytes =
  match (Snap.thaw bytes : (Engine.saved * Vmm.t, _) Stdlib.result) with
  | Error e -> Error (Snap.error_to_string e)
  | Ok (saved, host) ->
      let policy = Serverless.Warm_pool in
      let arrival = Arrival.Poisson { rate = serverless_rate } in
      let cfg =
        serverless_config ~arrival ~requests ~policy
          ~seed:(serverless_cell_seed ~seed:42L 1)
      in
      let out = ref None in
      ignore
        (Engine.resume saved (fun () ->
             out := Some (Serverless.run_node cfg host);
             Engine.stop ()));
      (match !out with
      | None -> Error "serverless: simulation did not complete"
      | Some stats ->
          let p =
            serverless_render
              ~label:(serverless_label ~policy ~arrival ~spec:None)
              ~prefix_seconds:0. stats
          in
          Ok (mk_result ~name:"resume" ~notes:p.p_notes p.p_series))

(* "serverless-day:<part>/j<J>@<hosts>": the full-day open-loop fleet
   cell run as a suffix of the prefilled-fleet image. *)
let resume_serverless_day ~partition ~sim_jobs ~requests bytes =
  match
    (Snap.thaw bytes : (Engine.saved * Vmm.t array, _) Stdlib.result)
  with
  | Error e -> Error (Snap.error_to_string e)
  | Ok (saved, nodes) ->
      let hosts = Array.length nodes in
      let per = max 1 (requests / hosts) in
      let slots : Serverless.stats option array = Array.make hosts None in
      ignore
        (Engine.resume ~jobs:sim_jobs saved (fun () ->
             serverless_fleet_cells ~partition ~per
               ~seed:(serverless_cell_seed ~seed:42L 7)
               ~node:(fun h -> nodes.(h))
               slots;
             Engine.stop ()));
      let p =
        serverless_fleet_finish
          ~label:(Printf.sprintf "day fleet x%d warmpool/poisson" hosts)
          ~prefix_seconds:0. slots
      in
      Ok (mk_result ~name:"resume" ~notes:p.p_notes p.p_series)

let split_once ~on s =
  match String.index_opt s on with
  | None -> None
  | Some i ->
      Some
        ( String.sub s 0 i,
          String.sub s (i + 1) (String.length s - i - 1) )

let parse_fault_spec = function
  | Some s -> Ok s
  | None -> (
      match Fault.parse_spec cluster_fault_spec with
      | Ok s -> Ok s
      | Error m -> Error ("cluster_fault_spec: " ^ m))

let reliability_spec_default = function
  | Some s -> Ok s
  | None -> (
      match Fault.parse_spec reliability_default_spec with
      | Ok s -> Ok s
      | Error m -> Error ("reliability_default_spec: " ^ m))

let resume_from_file ?n ?spec ?(fault_seed = 42L) ~path () =
  match Snap.load_bytes ~path () with
  | Error e -> Error (Snap.error_to_string e)
  | Ok (key, bytes) -> (
      let bad () = Error (Printf.sprintf "unrecognised snapshot key %S" key) in
      match split_once ~on:':' key with
      | Some ("scale", rest) -> (
          match split_once ~on:'@' rest with
          | Some (slug, count) -> (
              match (mode_of_slug slug, int_of_string_opt count) with
              | Some mode, Some count ->
                  let extra =
                    match n with Some v -> v | None -> max 1 (count / 10)
                  in
                  resume_scale ~mode ~count ~extra bytes
              | _ -> bad ())
          | None -> bad ())
      | Some ("scale-fleet", rest) -> (
          match (split_once ~on:'/' rest : (string * string) option) with
          | Some (part, rest) -> (
              match (partition_of_string part, split_once ~on:'@' rest) with
              | Ok partition, Some (jobs, total)
                when String.length jobs > 1 && jobs.[0] = 'j' -> (
                  match
                    ( int_of_string_opt
                        (String.sub jobs 1 (String.length jobs - 1)),
                      int_of_string_opt total )
                  with
                  | Some sim_jobs, Some total ->
                      resume_fleet ~partition ~sim_jobs ~total bytes
                  | _ -> bad ())
              | _ -> bad ())
          | None -> bad ())
      | Some ("reliability", slug) -> (
          match (mode_of_slug slug, reliability_spec_default spec) with
          | Some mode, Ok spec ->
              let n = match n with Some v -> v | None -> 200 in
              resume_reliability ~mode ~n ~spec ~fault_seed bytes
          | None, _ -> bad ()
          | _, Error m -> Error m)
      | Some (("cluster" | "cluster-scale"), rest) -> (
          match (split_once ~on:'@' rest, parse_fault_spec spec) with
          | Some ("drain", _), Ok spec -> resume_drain ~spec ~fault_seed bytes
          | _, Error m -> Error m
          | _ -> bad ())
      | Some ("serverless", rest) -> (
          match split_once ~on:'@' rest with
          | Some ("warm", target) when int_of_string_opt target <> None ->
              let requests = match n with Some v -> v | None -> 2000 in
              resume_serverless ~requests bytes
          | _ -> bad ())
      | Some ("serverless-day", rest) -> (
          match (split_once ~on:'/' rest : (string * string) option) with
          | Some (part, rest) -> (
              match (partition_of_string part, split_once ~on:'@' rest) with
              | Ok partition, Some (jobs, hosts)
                when String.length jobs > 1
                     && jobs.[0] = 'j'
                     && int_of_string_opt hosts <> None -> (
                  match
                    int_of_string_opt
                      (String.sub jobs 1 (String.length jobs - 1))
                  with
                  | Some sim_jobs ->
                      let requests =
                        match n with Some v -> v | None -> 8000
                      in
                      resume_serverless_day ~partition ~sim_jobs ~requests
                        bytes
                  | None -> bad ())
              | _ -> bad ())
          | None -> bad ())
      | _ -> bad ())

(* ------------------------------------------------------------------ *)
(* Test and bench hooks: the [~snapshot] toggle of each prefixed family
   (test/test_checkpoint.ml pins snapshot == unbroken), and the
   fork-vs-cold pair bench/main.ml times. *)

let scale_mode_curves ?(snapshot = true) ~counts slug =
  match mode_of_slug slug with
  | None -> invalid_arg ("scale_mode_curves: unknown mode " ^ slug)
  | Some mode -> scale_mode_merged ~snapshot ~counts mode

let scale_fleet_row ?(snapshot = true) ~count ~partition ~sim_jobs () =
  scale_partitioned ~snapshot ~count ~partition ~sim_jobs

let reliability_cell_piece ?(snapshot = true) ~n ~mode:slug ~spec ~seed ~level
    () =
  match mode_of_slug slug with
  | None -> invalid_arg ("reliability_cell_piece: unknown mode " ^ slug)
  | Some mode -> reliability_cell ~snapshot ~n ~mode ~spec ~seed ~level

let cluster_drain_piece ?(snapshot = true) ~guests ~spec ~fault_seed () =
  cluster_drain_job ~snapshot ~guests ~spec ~fault_seed ()

(* The bench pair: a cold unbroken run to [n + extra] guests vs a fork
   of the cached [n]-guest image extended by [extra]. Same final curve
   (the resume contract), a fraction of the work: the fork pays thaw
   plus [extra] creations, the cold run pays all [n + extra]. *)

let scale_cold_full ~n ~extra =
  let total = n + extra in
  match
    scale_curve_rows ~mode:Mode.chaos_xs ~counts:[ total ]
      (scale_mode_lat_unbroken ~mode:Mode.chaos_xs total)
  with
  | [ row ] -> row
  | _ -> assert false

let scale_prefix_warm ~n =
  let t0 = wall () in
  ignore (scale_image ~mode:Mode.chaos_xs ~bounds:[ n ] n);
  wall () -. t0

let scale_fork_suffix ~n ~extra =
  let bytes = scale_image ~mode:Mode.chaos_xs ~bounds:[ n ] n in
  let ((saved : Engine.saved), ((host : Vmm.t), lat_prev)) =
    snap_err "scale image" (Snap.thaw bytes)
  in
  let total = n + extra in
  let lat = Array.make total nan in
  Array.blit lat_prev 0 lat 0 n;
  ignore
    (Engine.resume saved (fun () ->
         scale_create_range host lat ~from:n ~upto:total;
         Engine.stop ()));
  match scale_curve_rows ~mode:Mode.chaos_xs ~counts:[ total ] lat with
  | [ row ] -> row
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* The CLI's `serverless` subcommand: one configurable cell from flag
   values. [duration] wins over [n] when both are given (requests
   follow from rate * duration); otherwise [n] is the request budget
   and the duration follows from the mean rate. *)

let serverless_run ?(snapshot = true) ?n ?duration ?spec
    ?(fault_seed = 42L) ~arrival ~rate ~policy () =
  if rate <= 0. then Error "rate must be positive"
  else
    let requests, period =
      match (duration, n) with
      | Some d, _ -> (max 1 (int_of_float (rate *. d)), d)
      | None, Some v -> (v, float_of_int v /. rate)
      | None, None -> (2000, 2000. /. rate)
    in
    match Arrival.of_flag ~rate ~period arrival with
    | Error m -> Error m
    | Ok arrival -> (
        match
          serverless_cell_piece ~snapshot ~requests ~policy ~arrival ?spec
            ~seed:fault_seed ()
        with
        | Error m -> Error m
        | Ok p ->
            Ok
              {
                name = "serverless";
                figure = "Open-loop serverless";
                series = p.p_series;
                tables = p.p_tables;
                notes = p.p_notes;
                prefix_seconds = p.p_prefix_seconds;
              })
