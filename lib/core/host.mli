(** A complete LightVM host: hypervisor + XenStore + Dom0 backends +
    toolstack, assembled for one of the paper's testbeds and toolstack
    modes.

    Since the cluster control plane landed, a host {e is} a
    {!Lightvm_cluster.Vmm} endpoint (the types are equal), and the
    cloud-hypervisor-shaped lifecycle API over there is the public
    entry point for VM lifecycle operations. This module survives as a
    compatibility shim so the pre-cluster call sites — tests, and any
    external snippets written against the original surface — keep
    compiling; the lifecycle helpers below are deprecated and new code
    should call [Vmm.vm_create]/[vm_boot]/[vm_delete] instead. *)

type t = Lightvm_cluster.Vmm.t

val create :
  ?platform:Lightvm_hv.Params.platform ->
  ?mode:Lightvm_toolstack.Mode.t ->
  ?xs_profile:Lightvm_xenstore.Xs_costs.profile ->
  ?pool_target:int ->
  unit ->
  t
(** Boot a host inside a running simulation. Defaults: the paper's
    4-core Xeon, full LightVM mode (chaos + noxs + split toolstack,
    xendevd, min-memory patch), oxenstored cost profile. *)

val vmm : t -> Lightvm_cluster.Vmm.t
(** The host's lifecycle endpoint — the identity function, made
    explicit for call sites migrating off the deprecated helpers. *)

val xen : t -> Lightvm_hv.Xen.t

val toolstack : t -> Lightvm_toolstack.Toolstack.t

val mode : t -> Lightvm_toolstack.Mode.t

val platform : t -> Lightvm_hv.Params.platform

val boot_vm :
  t ->
  ?name:string ->
  ?nics:int ->
  ?disks:int ->
  Lightvm_guest.Image.t ->
  Lightvm_toolstack.Create.created
(** Create a VM from an image and block until it is up. Raises
    {!Lightvm_toolstack.Create.Create_failed} on error.
    @deprecated Use {!Lightvm_cluster.Vmm.vm_create} followed by
    {!Lightvm_cluster.Vmm.vm_boot}: same costs, structured errors. *)

val create_and_boot_time :
  t ->
  ?name:string ->
  ?nics:int ->
  ?disks:int ->
  Lightvm_guest.Image.t ->
  Lightvm_toolstack.Create.created * float * float
(** [(vm, create_seconds, boot_seconds)].
    @deprecated Use the {!Lightvm_cluster.Vmm} API and
    {!Lightvm_cluster.Vmm.vm_counters}. *)

val destroy_vm : t -> Lightvm_toolstack.Create.created -> unit
(** @deprecated Use {!Lightvm_cluster.Vmm.vm_delete}. *)

val vm_count : t -> int

val guest_mem_kb : t -> int
(** Memory held by guests (excluding Dom0/Xen), for the Fig 14
    accounting. *)

(** A snapshot of every countable resource a VM creation acquires
    (equal to {!Lightvm_cluster.Vmm.resources}, where it now lives):
    guest domains, allocated frames, event-channel endpoints,
    grant-table entries, noxs control pages, XenStore nodes and
    watches. Two snapshots are comparable with [( = )]. *)
type resources = Lightvm_cluster.Vmm.resources = {
  r_domains : int;
  r_mem_kb : int;
  r_evtchns : int;
  r_grants : int;
  r_ctrl_pages : int;
  r_xs_nodes : int;
  r_xs_watches : int;
}

val resources : t -> resources
(** The host's current resource counts. Deterministic: a pure function
    of the simulation state, usable inside digest-pinned experiments. *)

val diff_resources : before:resources -> after:resources -> string list
(** Human-readable list of counters that changed, empty when none did. *)

val check_leak : t -> before:resources -> (unit, string) result
(** Post-failure invariant check (see DESIGN.md "Failure model"): [Ok]
    when the host's resource counts match [before] exactly, [Error s]
    naming every leaked counter otherwise. Call with a snapshot taken
    before a creation attempt to assert that a failed create released
    everything it had acquired. *)

val prefill_pool_for : t -> Lightvm_guest.Image.t -> nics:int -> disks:int -> unit
