module Engine = Lightvm_sim.Engine
module Params = Lightvm_hv.Params
module Xen = Lightvm_hv.Xen
module Frames = Lightvm_hv.Frames
module Image = Lightvm_guest.Image
module Guest = Lightvm_guest.Guest
module Mode = Lightvm_toolstack.Mode
module Vmconfig = Lightvm_toolstack.Vmconfig
module Toolstack = Lightvm_toolstack.Toolstack
module Create = Lightvm_toolstack.Create

type t = {
  xen : Xen.t;
  ts : Toolstack.t;
  mutable counter : int;
}

let create ?(platform = Params.xeon_e5_1630) ?(mode = Mode.lightvm)
    ?xs_profile ?pool_target () =
  let xen = Xen.boot ~platform () in
  let ts = Toolstack.make ~xen ~mode ?xs_profile ?pool_target () in
  { xen; ts; counter = 0 }

let xen t = t.xen
let toolstack t = t.ts
let mode t = Toolstack.mode t.ts
let platform t = Xen.platform t.xen

let fresh_name t image =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s-%d" image.Image.name t.counter

let config_for t ?name ?(nics = 1) ?(disks = 0) image =
  let name = match name with Some n -> n | None -> fresh_name t image in
  Vmconfig.for_image ~nics ~disks ~name image

let override_for image =
  (* Images built on the fly (inflated or Tinyx-custom) are not in the
     static registry; hand them to the pipeline directly. Physical
     equality suffices — registry images are shared values — and avoids
     a deep structural compare on every single VM creation. *)
  match Image.find image.Image.name with
  | Some registered when registered == image -> None
  | _ -> Some image

let boot_vm t ?name ?nics ?disks image =
  let cfg = config_for t ?name ?nics ?disks image in
  let created =
    Toolstack.create_vm_exn t.ts ?image_override:(override_for image) cfg
  in
  Guest.wait_ready created.Create.guest;
  created

let create_and_boot_time t ?name ?nics ?disks image =
  let cfg = config_for t ?name ?nics ?disks image in
  let t0 = Engine.now () in
  let created =
    Toolstack.create_vm_exn t.ts ?image_override:(override_for image) cfg
  in
  let t_create = Engine.now () -. t0 in
  Guest.wait_ready created.Create.guest;
  let t_boot = Engine.now () -. t0 -. t_create in
  (created, t_create, t_boot)

let destroy_vm t created = Toolstack.destroy_vm t.ts created

let vm_count t = Toolstack.vm_count t.ts

(* ------------------------------------------------------------------ *)
(* Resource accounting.

   A snapshot of every countable resource a VM creation can acquire.
   The invariant behind the fault-injection experiments: a failed
   creation must leave every one of these exactly where it found them
   (the rollback in Create releases XenStore subtrees, watches, grants,
   control pages, event channels and frames). [diff_resources] renders
   what leaked; the reliability experiment and the leak test assert it
   is empty after every injected failure. *)

type resources = {
  r_domains : int;  (* guest domains, shells included *)
  r_mem_kb : int;  (* frames allocated, all owners *)
  r_evtchns : int;  (* open event-channel endpoints *)
  r_grants : int;  (* outstanding grant-table entries *)
  r_ctrl_pages : int;  (* registered noxs control pages *)
  r_xs_nodes : int;  (* XenStore nodes *)
  r_xs_watches : int;  (* registered XenStore watches *)
}

let resources t =
  let env = Toolstack.env t.ts in
  {
    r_domains = Xen.guest_count t.xen;
    r_mem_kb = Xen.used_mem_kb t.xen;
    r_evtchns = Lightvm_hv.Evtchn.count (Xen.evtchn t.xen);
    r_grants = Lightvm_hv.Gnttab.count (Xen.gnttab t.xen);
    r_ctrl_pages = Lightvm_guest.Ctrl.count env.Create.ctrl;
    r_xs_nodes =
      Lightvm_xenstore.Xs_store.node_count
        (Lightvm_xenstore.Xs_server.store env.Create.xs_server);
    r_xs_watches =
      Lightvm_xenstore.Xs_server.watch_count env.Create.xs_server;
  }

let diff_resources ~before ~after =
  let d name get acc =
    let b = get before and a = get after in
    if a = b then acc else Printf.sprintf "%s %+d (%d -> %d)" name (a - b) b a :: acc
  in
  List.rev
    ([]
    |> d "domains" (fun r -> r.r_domains)
    |> d "mem_kb" (fun r -> r.r_mem_kb)
    |> d "evtchns" (fun r -> r.r_evtchns)
    |> d "grants" (fun r -> r.r_grants)
    |> d "ctrl_pages" (fun r -> r.r_ctrl_pages)
    |> d "xs_nodes" (fun r -> r.r_xs_nodes)
    |> d "xs_watches" (fun r -> r.r_xs_watches))

let check_leak t ~before =
  match diff_resources ~before ~after:(resources t) with
  | [] -> Ok ()
  | leaks -> Error (String.concat ", " leaks)

let guest_mem_kb t =
  List.fold_left
    (fun acc dom ->
      let domid = Lightvm_hv.Domain.domid dom in
      if domid = 0 then acc else acc + Xen.domain_mem_kb t.xen ~domid)
    0
    (Xen.domains t.xen)

let prefill_pool_for t image ~nics ~disks =
  Toolstack.prefill_pool t.ts (config_for t ~name:"pool-template" ~nics
                                 ~disks image)
