(* Deprecated shim over the cluster library's Vmm endpoint — see
   host.mli. Every operation delegates, with the exact call sequence
   the old inline implementation charged, so simulated timings (and the
   digest-pinned experiments built on them) are unchanged. *)

module Engine = Lightvm_sim.Engine
module Guest = Lightvm_guest.Guest
module Create = Lightvm_toolstack.Create
module Toolstack = Lightvm_toolstack.Toolstack
module Vmm = Lightvm_cluster.Vmm

type t = Vmm.t

let create ?platform ?mode ?xs_profile ?pool_target () =
  Vmm.create ?platform ?mode ?xs_profile ?pool_target ()

let vmm t = t
let xen = Vmm.xen
let toolstack = Vmm.toolstack
let mode = Vmm.mode
let platform = Vmm.platform

(* Failures keep surfacing as Create_failed with the pipeline's own
   message, as the pre-Vmm implementation raised them. *)
let vm_create_exn t ?name ?nics ?disks image =
  match Vmm.vm_create t (Vmm.vm_request ?name ?nics ?disks image) with
  | Ok vi -> (
      match Toolstack.vm (Vmm.toolstack t) ~domid:vi.Vmm.vi_domid with
      | Some created -> created
      | None -> assert false)
  | Error (Vmm.Vm_create_failed msg) -> raise (Create.Create_failed msg)
  | Error e -> raise (Create.Create_failed (Vmm.error_to_string e))

let boot_vm t ?name ?nics ?disks image =
  let created = vm_create_exn t ?name ?nics ?disks image in
  ignore (Vmm.vm_boot t ~domid:created.Create.domid);
  created

let create_and_boot_time t ?name ?nics ?disks image =
  let t0 = Engine.now () in
  let created = vm_create_exn t ?name ?nics ?disks image in
  let t_create = Engine.now () -. t0 in
  ignore (Vmm.vm_boot t ~domid:created.Create.domid);
  let t_boot = Engine.now () -. t0 -. t_create in
  (created, t_create, t_boot)

let destroy_vm t (created : Create.created) =
  match Vmm.vm_delete t ~domid:created.Create.domid with
  | Ok () -> ()
  | Error e -> invalid_arg ("Host.destroy_vm: " ^ Vmm.error_to_string e)

let vm_count = Vmm.vm_count

type resources = Vmm.resources = {
  r_domains : int;
  r_mem_kb : int;
  r_evtchns : int;
  r_grants : int;
  r_ctrl_pages : int;
  r_xs_nodes : int;
  r_xs_watches : int;
}

let resources = Vmm.resources
let diff_resources = Vmm.diff_resources
let check_leak = Vmm.check_leak
let guest_mem_kb = Vmm.guest_mem_kb

let prefill_pool_for t image ~nics ~disks =
  Vmm.prefill_pool t image ~nics ~disks
