module Engine = Lightvm_sim.Engine
module Params = Lightvm_hv.Params
module Xen = Lightvm_hv.Xen
module Frames = Lightvm_hv.Frames
module Image = Lightvm_guest.Image
module Guest = Lightvm_guest.Guest
module Mode = Lightvm_toolstack.Mode
module Vmconfig = Lightvm_toolstack.Vmconfig
module Toolstack = Lightvm_toolstack.Toolstack
module Create = Lightvm_toolstack.Create

type t = {
  xen : Xen.t;
  ts : Toolstack.t;
  mutable counter : int;
}

let create ?(platform = Params.xeon_e5_1630) ?(mode = Mode.lightvm)
    ?xs_profile ?pool_target () =
  let xen = Xen.boot ~platform () in
  let ts = Toolstack.make ~xen ~mode ?xs_profile ?pool_target () in
  { xen; ts; counter = 0 }

let xen t = t.xen
let toolstack t = t.ts
let mode t = Toolstack.mode t.ts
let platform t = Xen.platform t.xen

let fresh_name t image =
  t.counter <- t.counter + 1;
  Printf.sprintf "%s-%d" image.Image.name t.counter

let config_for t ?name ?(nics = 1) ?(disks = 0) image =
  let name = match name with Some n -> n | None -> fresh_name t image in
  Vmconfig.for_image ~nics ~disks ~name image

let override_for image =
  (* Images built on the fly (inflated or Tinyx-custom) are not in the
     static registry; hand them to the pipeline directly. Physical
     equality suffices — registry images are shared values — and avoids
     a deep structural compare on every single VM creation. *)
  match Image.find image.Image.name with
  | Some registered when registered == image -> None
  | _ -> Some image

let boot_vm t ?name ?nics ?disks image =
  let cfg = config_for t ?name ?nics ?disks image in
  let created =
    Toolstack.create_vm_exn t.ts ?image_override:(override_for image) cfg
  in
  Guest.wait_ready created.Create.guest;
  created

let create_and_boot_time t ?name ?nics ?disks image =
  let cfg = config_for t ?name ?nics ?disks image in
  let t0 = Engine.now () in
  let created =
    Toolstack.create_vm_exn t.ts ?image_override:(override_for image) cfg
  in
  let t_create = Engine.now () -. t0 in
  Guest.wait_ready created.Create.guest;
  let t_boot = Engine.now () -. t0 -. t_create in
  (created, t_create, t_boot)

let destroy_vm t created = Toolstack.destroy_vm t.ts created

let vm_count t = Toolstack.vm_count t.ts

let guest_mem_kb t =
  List.fold_left
    (fun acc dom ->
      let domid = Lightvm_hv.Domain.domid dom in
      if domid = 0 then acc else acc + Xen.domain_mem_kb t.xen ~domid)
    0
    (Xen.domains t.xen)

let prefill_pool_for t image ~nics ~disks =
  Toolstack.prefill_pool t.ts (config_for t ~name:"pool-template" ~nics
                                 ~disks image)
