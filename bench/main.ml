(* The benchmark harness: regenerates every table and figure of the
   paper's evaluation (Section 6) and use cases (Section 7), printing
   the same rows/series the paper reports next to the paper's values,
   then runs a Bechamel micro-benchmark suite over the substrate
   operations each figure leans on.

     dune exec bench/main.exe            medium scale (~10 minutes: the
                                         serverless-day row alone pushes
                                         a ~7M-request simulated day)
     dune exec bench/main.exe -- quick   CI scale (seconds)
     dune exec bench/main.exe -- full    paper scale (tens of minutes)

   Options:
     --jobs N         worker domains for the per-curve job pool
                      (default: the machine's recommended domain count,
                      capped; the rendered output is identical for any
                      value). The same budget drives the partitioned
                      engine inside the multi-host families.
     --partition MODE host (default) runs each simulated host of the
                      multi-host families in its own partition of the
                      conservative-sync parallel engine; none runs the
                      identical workload single-heap. Output is
                      bit-identical either way.
     --json PATH      also write the machine-readable perf trajectory
                      (per-experiment job/wall seconds and GC counters,
                      micro ns/op)
*)

module E = Lightvm.Experiment
module Pool = Lightvm_sim.Pool
module Series = Lightvm_metrics.Series
module Table = Lightvm_metrics.Table

type scale = Quick | Medium | Full

let usage () =
  prerr_endline
    "usage: main.exe [quick|medium|full] [--jobs N] \
     [--partition host|none] [--json PATH]";
  exit 2

let scale, jobs, partition, json_path =
  let scale = ref Medium in
  let jobs = ref (Pool.default_jobs ()) in
  let partition = ref `Host in
  let json = ref None in
  let rec go = function
    | [] -> ()
    | "quick" :: rest -> scale := Quick; go rest
    | "medium" :: rest -> scale := Medium; go rest
    | "full" :: rest -> scale := Full; go rest
    | ("--jobs" | "-j") :: v :: rest -> (
        match int_of_string_opt v with
        | Some j -> jobs := max 1 j; go rest
        | None -> usage ())
    | "--partition" :: v :: rest -> (
        match E.partition_of_string v with
        | Ok p -> partition := p; go rest
        | Error _ -> usage ())
    | "--json" :: path :: rest -> json := Some path; go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv));
  (!scale, !jobs, !partition, !json)

(* The sequential (jobs <= 1) path runs simulations on this domain;
   pool workers tune themselves in [Pool.create]. *)
let () = Pool.tune_gc ()

let scale_name =
  match scale with Quick -> "quick" | Medium -> "medium" | Full -> "full"

let pick ~quick ~medium ~full =
  match scale with Quick -> quick | Medium -> medium | Full -> full

let t_start = Unix.gettimeofday ()

let section title paper_note =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=');
  if paper_note <> "" then Printf.printf "paper: %s\n" paper_note;
  Printf.printf "[%.1fs elapsed]\n%!" (Unix.gettimeofday () -. t_start)

(* Print a family of series side by side, sampled to ~10 rows. *)
let print_series ?(x_label = "N") (series : E.labelled list) =
  match series with
  | [] -> ()
  | first :: _ ->
      let xs = List.map fst (Series.points first.E.series) in
      let n = List.length xs in
      let step = max 1 (n / 10) in
      let sampled_idx =
        List.filteri (fun i _ -> i mod step = 0 || i = n - 1) xs
      in
      let header =
        Printf.sprintf "%8s" x_label
        :: List.map (fun l -> Printf.sprintf "%24s" l.E.label) series
      in
      print_endline (String.concat "" header);
      List.iter
        (fun x ->
          let cells =
            List.map
              (fun (l : E.labelled) ->
                match Series.y_at l.E.series ~x with
                | Some y -> Printf.sprintf "%24.2f" y
                | None -> Printf.sprintf "%24s" "-")
              series
          in
          Printf.printf "%8g%s\n" x (String.concat "" cells))
        sampled_idx

let print_table table = Format.printf "%a@." Table.pp table

(* The single generic renderer: every experiment comes back as an
   [E.result], whatever mix of series/tables/notes it produced. *)
let print_result (r : E.result) =
  print_series r.E.series;
  List.iter print_table r.E.tables;
  List.iter print_endline r.E.notes

(* ------------------------------------------------------------------ *)

(* Every experiment dispatches through [E.plans]: one (id, scale,
   paper-note) row per entry, rendered uniformly. [None] keeps the
   experiment's own default scale. *)
let experiments =
  [
    ("fig1", None, "~200 syscalls in 2002 growing to ~400 by 2017");
    ("fig2", None, "linear, ~1 ms per MB (ramdisk-backed images)");
    ( "fig4",
      Some (pick ~quick:60 ~medium:400 ~full:1000),
      "Debian 500ms create/1.5s boot; Tinyx 360/180ms; unikernel 80/3ms; \
       Docker ~200ms; process 3.5ms" );
    ( "fig5",
      Some (pick ~quick:60 ~medium:400 ~full:1000),
      "XenStore and device creation dominate; XenStore grows superlinearly"
    );
    ( "fig9",
      Some (pick ~quick:80 ~medium:400 ~full:1000),
      "xl 100ms->1s; chaos[XS] 15->80ms; +split max ~25ms; noxs 8-15ms; \
       all: 4->4.1ms" );
    ( "scale",
      Some (pick ~quick:10_000 ~medium:10_000 ~full:10_000),
      "beyond the paper: host stays near-linear to 10k guests; xl capped \
       at 2000 (its modeled libxl protocol is Theta(N^2) round trips)" );
    ( "reliability",
      Some (pick ~quick:20 ~medium:100 ~full:200),
      "success rates fall as fault rates rise; [NoXS] immune to xs.* \
       points; no resource leaks after failed creations" );
    ( "fig10",
      Some (pick ~quick:300 ~medium:3000 ~full:8000),
      "LightVM scales to 8000 guests; Docker ~150ms->1s and wedges ~3000"
    );
    ( "fig11",
      Some (pick ~quick:60 ~medium:400 ~full:1000),
      "unikernel ~4ms; Tinyx close to Docker (~150-250ms)" );
    ( "fig12",
      Some (pick ~quick:40 ~medium:200 ~full:1000),
      "LightVM: save 30ms, restore 20ms, flat; xl: 128ms and 550ms" );
    ( "fig13",
      Some (pick ~quick:40 ~medium:200 ~full:1000),
      "LightVM ~60ms regardless of load; xl grows into seconds" );
    ( "fig14",
      Some (pick ~quick:100 ~medium:400 ~full:1000),
      "at 1000: Debian ~114GB, Tinyx ~27GB, Docker ~5GB, Minipython a \
       bit above Docker" );
    ( "fig15",
      Some (pick ~quick:60 ~medium:200 ~full:1000),
      "at 1000: Debian ~25%, Tinyx ~1%, unikernel/Docker near zero" );
    ( "fig16a",
      None,
      "linear to 2.5Gbps @250 users; 4Gbps/4Mbps each @1000; RTT ~60ms" );
    ( "fig16b",
      Some (pick ~quick:60 ~medium:250 ~full:1000),
      "median 13ms / p90 20ms at 25ms arrivals; long timeout tail at 10ms"
    );
    ( "fig16c",
      None,
      "bare metal and Tinyx saturate ~1.4 Kreq/s; unikernel ~1/5 (lwip)" );
    ( "fig17",
      Some (pick ~quick:100 ~medium:400 ~full:1000),
      "overloaded host: XenStore path backs up more than noxs" );
    ( "fig18",
      Some (pick ~quick:100 ~medium:400 ~full:1000),
      "concurrent VMs over time on the overloaded host" );
    ( "ablation",
      Some (pick ~quick:60 ~medium:300 ~full:1000),
      "cxenstored much slower than oxenstored; disabling logging removes \
       the spikes but not the growth" );
    ( "cluster",
      Some (pick ~quick:60 ~medium:300 ~full:500),
      "beyond the paper: 3 placement policies on a multi-host cluster, \
       plus drain/rebalance under injected migration corruption \
       (leak-free accounting)" );
    ( "cluster-scale",
      Some (pick ~quick:1000 ~medium:10_000 ~full:10_000),
      "beyond the paper: the event-core headline — 100 hosts x 10k \
       guests scheduled, then drained and rebalanced from the cached \
       prefix image, leak-free" );
    ( "serverless",
      Some (pick ~quick:600 ~medium:2000 ~full:4000),
      "beyond the paper: open-loop invocations on one dom0-bottlenecked \
       host; the split-toolstack warm pool moves create work off the \
       request path, winning at the tail (p99/p999) while background \
       refill cedes a little median" );
    ( "serverless-day",
      Some (pick ~quick:40_000 ~medium:7_000_000 ~full:7_000_000),
      "beyond the paper: a full simulated day of open-loop traffic \
       (~7M requests at the calibrated 80 req/s per host) through the \
       prefix-cached warm fleet" );
    ("wan-migration", None, "ClickOS guest in ~150 ms");
    ("pause", None, "must match container freeze/thaw");
    ("headline", None, "");
    ("tinyx", None, "");
  ]

let planned =
  (* [sim_jobs = jobs]: the worker budget drives both the per-curve
     pool and, inside the partitioned multi-host families, the
     per-partition windows. *)
  List.map
    (fun (id, n, note) ->
      match E.plan ?n ~partition ~sim_jobs:jobs id with
      | Some p -> (id, n, note, p)
      | None -> failwith ("bench: unknown experiment " ^ id))
    experiments

(* GC counter deltas around a region of the calling domain: allocation
   pressure (minor/promoted words) and how many major collections the
   region forced. OCaml 5 counters are per-domain, and a pool worker
   runs one job at a time, so the deltas taken inside the job closure
   belong to that job alone. *)
type gc_delta = {
  gd_minor_words : float;
  gd_promoted_words : float;
  gd_major_collections : int;
}

let gc_zero =
  { gd_minor_words = 0.; gd_promoted_words = 0.; gd_major_collections = 0 }

let gc_add a b =
  {
    gd_minor_words = a.gd_minor_words +. b.gd_minor_words;
    gd_promoted_words = a.gd_promoted_words +. b.gd_promoted_words;
    gd_major_collections = a.gd_major_collections + b.gd_major_collections;
  }

let gc_delta g0 g1 =
  {
    gd_minor_words = g1.Gc.minor_words -. g0.Gc.minor_words;
    gd_promoted_words = g1.Gc.promoted_words -. g0.Gc.promoted_words;
    gd_major_collections = g1.Gc.major_collections - g0.Gc.major_collections;
  }

let gc_note g =
  Printf.sprintf "%.1fM minor / %.1fM promoted words, %d major gc"
    (g.gd_minor_words /. 1e6)
    (g.gd_promoted_words /. 1e6)
    g.gd_major_collections

(* Wrap a job so its start/end timestamps and GC deltas ride along
   with its piece. *)
let timed job () =
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let v = job () in
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  (v, t0, t1, gc_delta g0 g1)

(* Run every curve-job of every experiment. With a pool, all jobs are
   submitted up front (in registry order) so long experiments overlap
   short ones; results are awaited per experiment, still in fixed
   order, so the printed output matches a sequential run byte for
   byte. Each experiment gets two durations: the sum of its job
   durations (the cost it would have alone) and its wall clock (first
   job start to last job end — overlapping experiments' walls can sum
   to more than the process total). *)
let run_all () =
  if jobs <= 1 then
    List.map
      (fun (id, n, note, p) ->
        ( id, n, note, p,
          List.map (fun (_, job) -> timed job ()) p.E.plan_jobs ))
      planned
  else begin
    let pool = Pool.create ~workers:jobs in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        planned
        |> List.map (fun (id, n, note, p) ->
               ( id, n, note, p,
                 List.map
                   (fun (_, job) -> Pool.submit pool (timed job))
                   p.E.plan_jobs ))
        |> List.map (fun (id, n, note, p, handles) ->
               ( id, n, note, p,
                 List.map
                   (fun h ->
                     match Pool.await h with
                     | Ok v -> v
                     | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
                   handles )))
  end

let finish_result (p : E.plan) pieces =
  let merged = p.E.plan_finish pieces in
  {
    E.name = p.E.plan_name;
    figure = p.E.plan_figure;
    series = merged.E.p_series;
    tables = merged.E.p_tables;
    notes = merged.E.p_notes;
    prefix_seconds = merged.E.p_prefix_seconds;
  }

(* (name, job count, summed job seconds, wall seconds, prefix seconds)
   per experiment, in order. *)
let experiment_rows =
  Printf.printf
    "LightVM reproduction bench (scale: %s, jobs: %d, partition: %s)\n"
    scale_name jobs
    (E.partition_name partition);
  List.map
    (fun (id, n, note, p, timed_pieces) ->
      let pieces = List.map (fun (v, _, _, _) -> v) timed_pieces in
      let job_secs =
        List.fold_left
          (fun a (_, t0, t1, _) -> a +. (t1 -. t0))
          0. timed_pieces
      in
      let wall_secs =
        match timed_pieces with
        | [] -> 0.
        | (_, t0, t1, _) :: rest ->
            let start, stop =
              List.fold_left
                (fun (a, b) (_, t0, t1, _) -> (min a t0, max b t1))
                (t0, t1) rest
            in
            stop -. start
      in
      let gc =
        List.fold_left
          (fun a (_, _, _, g) -> gc_add a g)
          gc_zero timed_pieces
      in
      let prefix_secs =
        List.fold_left (fun a p -> a +. p.E.p_prefix_seconds) 0. pieces
      in
      (match n with
      | Some n -> section (Printf.sprintf "%s (n = %d)" id n) note
      | None -> section id note);
      print_result (finish_result p pieces);
      Printf.printf "[%s: %.2f s over %d job(s), %.2f s wall%s; %s]\n" id
        job_secs
        (List.length timed_pieces)
        wall_secs
        (if prefix_secs > 0. then
           Printf.sprintf ", %.2f s on shared prefixes" prefix_secs
         else "")
        (gc_note gc);
      (id, List.length timed_pieces, job_secs, wall_secs, prefix_secs, gc))
    (run_all ())

(* ------------------------------------------------------------------ *)
(* Checkpoint fork-vs-cold pair: the same chaos [XS] curve to
   [n + extra] guests, once as an unbroken simulation (cold) and once
   forked from the [n]-guest checkpoint image and extended by [extra]
   creations (fork). The image build itself runs outside the fork row's
   timed region and is reported as its [prefix_seconds]: the pair
   isolates what boot-once/fork-many saves when suffixes share a
   prefix. Both rows render the identical curve (the resume
   contract). *)
let snapshot_pair_rows =
  let n = pick ~quick:1000 ~medium:2000 ~full:5000 in
  let extra = max 1 (n / 10) in
  section
    (Printf.sprintf "snapshot fork-vs-cold (n = %d + %d)" n extra)
    "fork pays thaw + the suffix; cold re-simulates the whole prefix";
  (* Earlier experiments may have cached overlapping images; reset so
     the pair measures a true build. *)
  E.prefix_cache_reset ();
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let cold = E.scale_cold_full ~n ~extra in
  let t1 = Unix.gettimeofday () in
  let g1 = Gc.quick_stat () in
  let prefix_secs = E.scale_prefix_warm ~n in
  let g2 = Gc.quick_stat () in
  let t2 = Unix.gettimeofday () in
  let fork = E.scale_fork_suffix ~n ~extra in
  let t3 = Unix.gettimeofday () in
  let g3 = Gc.quick_stat () in
  let identical =
    Series.points cold.E.series = Series.points fork.E.series
  in
  print_series [ cold; fork ];
  Printf.printf
    "[snapshot-cold: %.2f s | snapshot-fork: %.2f s + %.2f s prefix build \
     | curves identical: %b | speedup on suffix: %.1fx]\n"
    (t1 -. t0) (t3 -. t2) prefix_secs identical
    ((t1 -. t0) /. Float.max 1e-9 (t3 -. t2));
  if not identical then
    failwith "snapshot bench: fork and cold curves diverge";
  [
    ("snapshot-cold", 1, t1 -. t0, t1 -. t0, 0., gc_delta g0 g1);
    ("snapshot-fork", 1, t3 -. t2, t3 -. t2, prefix_secs, gc_delta g2 g3);
  ]

(* ------------------------------------------------------------------ *)
(* Serverless SLO headline: the warm-pool-vs-cold-boot p99 comparison
   at the calibrated operating point. Always requests = 2000 whatever
   the scale: the autoscaler needs a few control intervals to settle
   and the tail needs enough samples, so shorter runs would compare
   transients, not the steady state the SLO row claims. *)
let serverless_slo_rows, serverless_slo =
  section "serverless SLO summary (requests = 2000)"
    "warm pool beats cold boot at p99; refill contention cedes median";
  let g0 = Gc.quick_stat () in
  let t0 = Unix.gettimeofday () in
  let cold_p99_us, warm_p99_us, pool_hit_rate =
    E.serverless_bench_summary ~requests:2000 ()
  in
  let dt = Unix.gettimeofday () -. t0 in
  let gc = gc_delta g0 (Gc.quick_stat ()) in
  Printf.printf
    "  cold-boot p99: %10.1f us\n  warm-pool p99: %10.1f us\n\
    \  pool hit rate: %10.3f\n[serverless-slo: %.2f s]\n"
    cold_p99_us warm_p99_us pool_hit_rate dt;
  if warm_p99_us >= cold_p99_us then
    failwith "serverless bench: warm-pool p99 did not beat cold boot";
  ( [ ("serverless-slo", 2, dt, dt, 0., gc) ],
    (cold_p99_us, warm_p99_us, pool_hit_rate) )

let all_experiment_rows =
  experiment_rows @ snapshot_pair_rows @ serverless_slo_rows

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks: the real (wall-clock) cost of the
   substrate operations each figure leans on. One Test.make per
   figure/table. *)

open Bechamel
open Toolkit

let xs_store_ops () =
  (* Fig 5/9's substrate: real store writes + reads, on the overwrite
     fast path (same-value refresh through the lookup memo). *)
  let store = Lightvm_xenstore.Xs_store.create () in
  let path = Lightvm_xenstore.Xs_path.of_string "/local/domain/1/name" in
  Staged.stage (fun () ->
      ignore (Lightvm_xenstore.Xs_store.write store ~caller:0 path "guest");
      ignore (Lightvm_xenstore.Xs_store.read store ~caller:0 path))

let xs_store_ops_generic () =
  (* Reference: the functional-update path every write used before the
     overwrite fast path and lookup memo existed. *)
  let store = Lightvm_xenstore.Xs_store.create () in
  let path = Lightvm_xenstore.Xs_path.of_string "/local/domain/1/name" in
  Staged.stage (fun () ->
      ignore
        (Lightvm_xenstore.Xs_store.write_generic store ~caller:0 path
           "guest");
      ignore (Lightvm_xenstore.Xs_store.read store ~caller:0 path))

let xs_wire_roundtrip () =
  (* The message protocol behind Fig 5's xenstore category: scratch
     reuse, so a pack+unpack cycle allocates only the decoded strings.
     8 messages per op — a single roundtrip (~150 ns) sits below the
     harness noise floor; the ref pair below amortizes identically. *)
  let scratch = Lightvm_xenstore.Xs_wire.scratch () in
  Staged.stage (fun () ->
      for _ = 1 to 8 do
        let buf =
          Lightvm_xenstore.Xs_wire.pack_into scratch
            Lightvm_xenstore.Xs_wire.Write ~req_id:1l ~tx_id:0l
            [ "/local/domain/1/name"; "guest-1" ]
        in
        ignore (Lightvm_xenstore.Xs_wire.unpack buf)
      done)

(* Reference replica of the wire codec the scratch path replaced:
   assoc-list opcode tables, a fresh buffer per pack, and an unpack
   that copies the payload before splitting it. *)
module Old_wire_ref = struct
  module W = Lightvm_xenstore.Xs_wire

  let op_table =
    [ (W.Debug, 0); (W.Directory, 1); (W.Read, 2); (W.Get_perms, 3);
      (W.Watch, 4); (W.Unwatch, 5); (W.Transaction_start, 6);
      (W.Transaction_end, 7); (W.Introduce, 8); (W.Release, 9);
      (W.Get_domain_path, 10); (W.Write, 11); (W.Mkdir, 12); (W.Rm, 13);
      (W.Set_perms, 14); (W.Watch_event, 15); (W.Error, 16);
      (W.Is_domain_introduced, 17); (W.Resume, 18); (W.Set_target, 19) ]

  let op_of_int n =
    List.find_map (fun (op, i) -> if i = n then Some op else None) op_table

  let pack op ~req_id ~tx_id strings =
    let len =
      List.fold_left (fun acc s -> acc + String.length s + 1) 0 strings
    in
    let buf = Bytes.create (W.header_size + len) in
    Bytes.set_int32_le buf 0 (Int32.of_int (List.assoc op op_table));
    Bytes.set_int32_le buf 4 req_id;
    Bytes.set_int32_le buf 8 tx_id;
    Bytes.set_int32_le buf 12 (Int32.of_int len);
    let pos = ref W.header_size in
    List.iter
      (fun s ->
        Bytes.blit_string s 0 buf !pos (String.length s);
        Bytes.set buf (!pos + String.length s) '\000';
        pos := !pos + String.length s + 1)
      strings;
    buf

  let unpack buf =
    let op =
      match op_of_int (Int32.to_int (Bytes.get_int32_le buf 0)) with
      | Some op -> op
      | None -> assert false
    in
    let req_id = Bytes.get_int32_le buf 4 in
    let tx_id = Bytes.get_int32_le buf 8 in
    let len = Int32.to_int (Bytes.get_int32_le buf 12) in
    let payload = Bytes.sub_string buf W.header_size len in
    let strings =
      match String.split_on_char '\000' payload with
      | [] -> []
      | parts -> (
          match List.rev parts with
          | "" :: rest -> List.rev rest
          | _ -> parts)
    in
    ((op, req_id, tx_id, len), strings)
end

let xs_wire_roundtrip_old () =
  Staged.stage (fun () ->
      for _ = 1 to 8 do
        let buf =
          Old_wire_ref.pack Lightvm_xenstore.Xs_wire.Write ~req_id:1l
            ~tx_id:0l
            [ "/local/domain/1/name"; "guest-1" ]
        in
        ignore (Old_wire_ref.unpack buf)
      done)

let xs_transaction () =
  (* Fig 17's conflict machinery. *)
  let store = Lightvm_xenstore.Xs_store.create () in
  let path = Lightvm_xenstore.Xs_path.of_string "/t/a" in
  Staged.stage (fun () ->
      let tx = Lightvm_xenstore.Xs_transaction.start store ~id:1 in
      ignore (Lightvm_xenstore.Xs_transaction.write tx ~caller:0 path "v");
      ignore (Lightvm_xenstore.Xs_transaction.commit tx ~into:store))

let xs_path_segments () =
  (* The store walks a path's segments on every op; they are cached in
     the path value, so this must be a pointer read, not a re-split. *)
  let path =
    Lightvm_xenstore.Xs_path.of_string "/local/domain/7/device/vif/0/state"
  in
  Staged.stage (fun () ->
      ignore (Lightvm_xenstore.Xs_path.segments path))

let event_heap () =
  (* The simulation engine behind every figure. *)
  let heap = Lightvm_sim.Heap.create () in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      ignore (Lightvm_sim.Heap.push heap ~time:(float_of_int !i) ());
      if !i mod 2 = 0 then ignore (Lightvm_sim.Heap.pop heap))

let event_heap_churn () =
  (* Timeout-heavy pattern: most pushes are cancelled before they fire,
     exercising lazy cancellation and the compaction threshold. *)
  let heap = Lightvm_sim.Heap.create () in
  let i = ref 0 in
  Staged.stage (fun () ->
      incr i;
      let t = float_of_int !i in
      let a = Lightvm_sim.Heap.push heap ~time:t () in
      ignore (Lightvm_sim.Heap.push heap ~time:(t +. 0.25) ());
      let b = Lightvm_sim.Heap.push heap ~time:(t +. 0.5) () in
      Lightvm_sim.Heap.cancel heap a;
      Lightvm_sim.Heap.cancel heap b;
      ignore (Lightvm_sim.Heap.pop heap))

(* Reference replica of the event heap the 4-ary index heap replaced:
   one boxed record per entry behind an option slot, binary sift_up/
   sift_down chasing entry pointers on every comparison, pop returning
   a fresh [(time, payload) option]. Only the push/pop core is
   replicated — exactly what the hold-model pair below exercises. Kept
   verbatim so the pair keeps measuring the same before/after as the
   live heap evolves. *)
module Old_heap_ref = struct
  type 'a entry = {
    time : float;
    seq : int;
    payload : 'a;
    mutable cancelled : bool;
    mutable departed : bool;
  }

  type 'a t = {
    mutable data : 'a entry option array;
    mutable len : int;
    mutable next_seq : int;
    mutable live : int;
  }

  let create () = { data = [||]; len = 0; next_seq = 0; live = 0 }

  let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

  let get t i =
    match t.data.(i) with Some e -> e | None -> assert false

  let swap t i j =
    let tmp = t.data.(i) in
    t.data.(i) <- t.data.(j);
    t.data.(j) <- tmp

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt (get t i) (get t parent) then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.len && lt (get t l) (get t !smallest) then smallest := l;
    if r < t.len && lt (get t r) (get t !smallest) then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let ensure_capacity t =
    let cap = Array.length t.data in
    if t.len >= cap then begin
      let ncap = if cap = 0 then 16 else 2 * cap in
      let fresh = Array.make ncap None in
      Array.blit t.data 0 fresh 0 t.len;
      t.data <- fresh
    end

  let push t ~time payload =
    let entry =
      { time; seq = t.next_seq; payload; cancelled = false;
        departed = false }
    in
    t.next_seq <- t.next_seq + 1;
    ensure_capacity t;
    t.data.(t.len) <- Some entry;
    t.len <- t.len + 1;
    t.live <- t.live + 1;
    sift_up t (t.len - 1);
    entry

  let pop_any t =
    if t.len = 0 then None
    else begin
      let top = get t 0 in
      t.len <- t.len - 1;
      if t.len > 0 then begin
        t.data.(0) <- t.data.(t.len);
        t.data.(t.len) <- None;
        sift_down t 0
      end
      else t.data.(0) <- None;
      Some top
    end

  let rec pop t =
    match pop_any t with
    | None -> None
    | Some entry ->
        if entry.cancelled then pop t
        else begin
          entry.departed <- true;
          t.live <- t.live - 1;
          Some (entry.time, entry.payload)
        end
end

(* The hold model on a deep standing heap — the regime the 100-host
   cluster and the simulated day put the event core in: ~10k pending
   timers, every operation a full-depth sift. Each hold schedules one
   event a random delay ahead of the clock and pops the next one,
   exactly the engine hot loop's next_time/pop_payload sequence.
   8 holds per measured op, same amortization as the wire pair, so the
   harness floor does not flatten the old/new ratio. *)
let deep_heap_standing = 10_000

let event_heap_deep () =
  let heap = Lightvm_sim.Heap.create () in
  let rng = Lightvm_sim.Rng.create 7L in
  for _ = 1 to deep_heap_standing do
    ignore (Lightvm_sim.Heap.push heap ~time:(Lightvm_sim.Rng.float rng 1.) ())
  done;
  let clock = ref 0. in
  Staged.stage (fun () ->
      for _ = 1 to 8 do
        ignore
          (Lightvm_sim.Heap.push heap
             ~time:(!clock +. Lightvm_sim.Rng.float rng 1.)
             ());
        clock := Lightvm_sim.Heap.next_time heap;
        ignore (Lightvm_sim.Heap.pop_payload heap)
      done)

let event_heap_deep_old () =
  let heap = Old_heap_ref.create () in
  let rng = Lightvm_sim.Rng.create 7L in
  for _ = 1 to deep_heap_standing do
    ignore (Old_heap_ref.push heap ~time:(Lightvm_sim.Rng.float rng 1.) ())
  done;
  let clock = ref 0. in
  Staged.stage (fun () ->
      for _ = 1 to 8 do
        ignore
          (Old_heap_ref.push heap
             ~time:(!clock +. Lightvm_sim.Rng.float rng 1.)
             ());
        match Old_heap_ref.pop heap with
        | Some (t, ()) -> clock := t
        | None -> ()
      done)

let minipy_src = "total = 0\nfor i in range(50):\n    total += i\n"

let minipy_run () =
  (* Fig 17/18's per-request program, hitting the compiled-program
     cache (the steady state for a server replaying one handler). *)
  Staged.stage (fun () -> ignore (Lightvm_minipy.Interp.run minipy_src))

let minipy_run_fresh () =
  (* Reference: parse on every run, as every call did before the
     per-domain program cache. *)
  Staged.stage (fun () ->
      ignore (Lightvm_minipy.Interp.run ~cache:false minipy_src))

let firewall_eval () =
  (* Fig 16a's per-packet work. *)
  let rs = Lightvm_workloads.Firewall.personal_ruleset ~user_id:7 in
  let pkt =
    { Lightvm_workloads.Firewall.src_ip = 0x0a000007;
      dst_ip = 0x08080808; pkt_proto = `Tcp; pkt_dport = 443 }
  in
  Staged.stage (fun () ->
      ignore (Lightvm_workloads.Firewall.eval rs pkt))

let vmconfig_text =
  "name = \"g\"\nkernel = \"daytime\"\nmemory = 4\nvcpus = 1\n\
   vif = ['bridge=xenbr0']\n"

let vmconfig_parse () =
  (* Fig 8/9's phase 6, on the single-pass cursor parser. *)
  Staged.stage (fun () ->
      ignore (Lightvm_toolstack.Vmconfig.parse vmconfig_text))

(* Reference replica of the parser the single-pass rewrite replaced:
   split into lines, strip/copy each piece, fold a record copy per
   key. Kept verbatim so the bench pair keeps measuring the same
   before/after even as the live parser evolves. *)
module Old_vmconfig_ref = struct
  type value = Str of string | Num of float | Lst of string list

  exception Parse_error of int * string

  let fail line msg = raise (Parse_error (line, msg))

  let strip s =
    let is_space c = c = ' ' || c = '\t' || c = '\r' in
    let n = String.length s in
    let rec first i = if i < n && is_space s.[i] then first (i + 1) else i in
    let rec last i = if i > 0 && is_space s.[i - 1] then last (i - 1) else i in
    let a = first 0 and b = last n in
    if a >= b then "" else String.sub s a (b - a)

  let drop_comment s =
    let n = String.length s in
    let rec go i in_quote quote_char =
      if i >= n then s
      else
        match s.[i] with
        | ('"' | '\'') as c when not in_quote -> go (i + 1) true c
        | c when in_quote && c = quote_char -> go (i + 1) false ' '
        | '#' when not in_quote -> String.sub s 0 i
        | _ -> go (i + 1) in_quote quote_char
    in
    go 0 false ' '

  let parse_quoted line s =
    let n = String.length s in
    if n < 2 then fail line "unterminated string"
    else begin
      let quote = s.[0] in
      if s.[n - 1] <> quote then fail line "unterminated string"
      else String.sub s 1 (n - 2)
    end

  let split_list_items line inner =
    let items = ref [] and buf = Buffer.create 16 in
    let in_quote = ref false and quote = ref ' ' in
    String.iter
      (fun c ->
        match c with
        | ('"' | '\'') when not !in_quote ->
            in_quote := true;
            quote := c;
            Buffer.add_char buf c
        | c when !in_quote && c = !quote ->
            in_quote := false;
            Buffer.add_char buf c
        | ',' when not !in_quote ->
            items := Buffer.contents buf :: !items;
            Buffer.clear buf
        | c -> Buffer.add_char buf c)
      inner;
    if !in_quote then fail line "unterminated string in list";
    items := Buffer.contents buf :: !items;
    List.rev !items

  let parse_list line s =
    let n = String.length s in
    if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
      fail line "malformed list";
    let inner = strip (String.sub s 1 (n - 2)) in
    if inner = "" then []
    else
      List.map
        (fun item ->
          let item = strip item in
          if String.length item >= 2 && (item.[0] = '"' || item.[0] = '\'')
          then parse_quoted line item
          else fail line ("list items must be quoted: " ^ item))
        (split_list_items line inner)

  let parse_value line s =
    let s = strip s in
    if s = "" then fail line "missing value"
    else if s.[0] = '[' then Lst (parse_list line s)
    else if s.[0] = '"' || s.[0] = '\'' then Str (parse_quoted line s)
    else
      match float_of_string_opt s with
      | Some f -> Num f
      | None -> fail line ("cannot parse value: " ^ s)

  let parse_line line s =
    match String.index_opt s '=' with
    | None -> fail line "expected key = value"
    | Some i ->
        let key = strip (String.sub s 0 i) in
        let value = String.sub s (i + 1) (String.length s - i - 1) in
        if key = "" then fail line "empty key";
        (key, parse_value line value)

  type t = {
    name : string;
    kernel : string;
    memory_mb : float;
    vcpus : int;
    vifs : string list;
    disks : string list;
    on_crash : string;
    extra : (string * string) list;
  }

  let default =
    { name = ""; kernel = ""; memory_mb = 4.; vcpus = 1; vifs = [];
      disks = []; on_crash = "destroy"; extra = [] }

  let apply line cfg (key, value) =
    match (key, value) with
    | "name", Str s -> { cfg with name = s }
    | "kernel", Str s -> { cfg with kernel = s }
    | "memory", Num f -> { cfg with memory_mb = f }
    | "maxmem", Num _ -> cfg
    | "vcpus", Num f -> { cfg with vcpus = int_of_float f }
    | "vif", Lst items -> { cfg with vifs = items }
    | "disk", Lst items -> { cfg with disks = items }
    | "on_crash", Str s -> { cfg with on_crash = s }
    | ("name" | "kernel" | "on_crash"), _ ->
        fail line (key ^ " expects a string")
    | ("memory" | "vcpus"), _ -> fail line (key ^ " expects a number")
    | ("vif" | "disk"), _ -> fail line (key ^ " expects a list")
    | _, Str s -> { cfg with extra = cfg.extra @ [ (key, s) ] }
    | _, Num f ->
        { cfg with extra = cfg.extra @ [ (key, Printf.sprintf "%g" f) ] }
    | _, Lst items ->
        { cfg with extra = cfg.extra @ [ (key, String.concat ";" items) ] }

  let parse text =
    try
      let lines = String.split_on_char '\n' text in
      let cfg =
        List.fold_left
          (fun (lineno, cfg) raw ->
            let s = strip (drop_comment raw) in
            if s = "" then (lineno + 1, cfg)
            else (lineno + 1, apply lineno cfg (parse_line lineno s)))
          (1, default) lines
        |> snd
      in
      if cfg.name = "" then Error "missing required key: name"
      else if cfg.kernel = "" then Error "missing required key: kernel"
      else Ok cfg
    with Parse_error (line, msg) ->
      Error (Printf.sprintf "line %d: %s" line msg)
end

let vmconfig_parse_old () =
  Staged.stage (fun () -> ignore (Old_vmconfig_ref.parse vmconfig_text))

let kconfig_prune () =
  (* Tinyx's kernel-minimisation loop (Section 3.2). *)
  Staged.stage (fun () ->
      let base =
        Lightvm_tinyx.Kconfig.for_platform Lightvm_tinyx.Kconfig_types.Xen_pv
      in
      ignore
        (Lightvm_tinyx.Kconfig.prune
           ~platform:Lightvm_tinyx.Kconfig_types.Xen_pv ~app:"nginx" base))

let tls_handshake () =
  (* Fig 16c's protocol state machine. *)
  Staged.stage (fun () ->
      ignore
        (List.fold_left
           (fun state msg ->
             match Lightvm_net.Tls.step state msg with
             | Ok s -> s
             | Error _ -> state)
           Lightvm_net.Tls.initial Lightvm_net.Tls.handshake_messages))

(* The [scale] experiment's substrate, each next to the structure it
   replaced so the JSON trajectory records the ratio. *)

let scale_watch_trie () =
  (* 10k registered watches (one shutdown watch per domain, as xl
     registers them), one dispatch. The trie walks the modified path's
     spine instead of scanning the registry. *)
  let module W = Lightvm_xenstore.Xs_watch in
  let module P = Lightvm_xenstore.Xs_path in
  let t = W.create () in
  for i = 1 to 10_000 do
    W.add t ~owner:i
      ~path:
        (P.of_string (Printf.sprintf "/local/domain/%d/control/shutdown" i))
      ~token:"shutdown"
      ~deliver:(fun _ -> ())
  done;
  let modified = P.of_string "/local/domain/5000/control/shutdown" in
  Staged.stage (fun () -> ignore (W.matching t ~modified))

let scale_watch_linear () =
  (* Reference: the pre-index registry — an is_prefix test against
     every registered watch. *)
  let module P = Lightvm_xenstore.Xs_path in
  let watches =
    Array.init 10_000 (fun i ->
        P.of_string
          (Printf.sprintf "/local/domain/%d/control/shutdown" (i + 1)))
  in
  let modified = P.of_string "/local/domain/5000/control/shutdown" in
  Staged.stage (fun () ->
      let hits = ref [] in
      Array.iter
        (fun p -> if P.is_prefix p ~of_:modified then hits := p :: !hits)
        watches;
      ignore !hits)

let scale_snapshot_persistent () =
  (* Transaction snapshot of a 10k-domain store: pure structural
     sharing (immutable node tree + persistent ownership map). *)
  let module S = Lightvm_xenstore.Xs_store in
  let module P = Lightvm_xenstore.Xs_path in
  let store = S.create () in
  for i = 1 to 10_000 do
    ignore
      (S.write store ~caller:0
         (P.of_string (Printf.sprintf "/local/domain/%d/name" i))
         (Printf.sprintf "g%d" i))
  done;
  Staged.stage (fun () -> ignore (S.snapshot store))

let scale_snapshot_copy () =
  (* Reference: the per-transaction table copy a mutable store needs. *)
  let tbl = Hashtbl.create 16384 in
  for i = 1 to 10_000 do
    Hashtbl.replace tbl
      (Printf.sprintf "/local/domain/%d/name" i)
      (Printf.sprintf "g%d" i)
  done;
  Staged.stage (fun () -> ignore (Hashtbl.copy tbl))

let micro_tests =
  [
    Test.make ~name:"fig5/fig9: xenstore write+read" (xs_store_ops ());
    Test.make ~name:"fig5/fig9: xenstore write+read (generic ref)"
      (xs_store_ops_generic ());
    Test.make ~name:"fig5: xs wire pack/unpack" (xs_wire_roundtrip ());
    Test.make ~name:"fig5: xs wire pack/unpack (alloc ref)"
      (xs_wire_roundtrip_old ());
    Test.make ~name:"fig17: xenstore transaction" (xs_transaction ());
    Test.make ~name:"fig5/fig9: xs_path segments (cached)"
      (xs_path_segments ());
    Test.make ~name:"all figs: event heap push/pop" (event_heap ());
    Test.make ~name:"all figs: event heap push/cancel/pop"
      (event_heap_churn ());
    Test.make ~name:"cluster-scale: event heap hold@10k (4-ary index)"
      (event_heap_deep ());
    Test.make
      ~name:"cluster-scale: event heap hold@10k (boxed binary ref)"
      (event_heap_deep_old ());
    Test.make ~name:"fig17/18: minipy program" (minipy_run ());
    Test.make ~name:"fig17/18: minipy program (fresh-parse ref)"
      (minipy_run_fresh ());
    Test.make ~name:"fig16a: firewall rule eval" (firewall_eval ());
    Test.make ~name:"fig8/9: vm config parse" (vmconfig_parse ());
    Test.make ~name:"fig8/9: vm config parse (list-based ref)"
      (vmconfig_parse_old ());
    Test.make ~name:"tinyx: kconfig prune loop" (kconfig_prune ());
    Test.make ~name:"fig16c: TLS handshake steps" (tls_handshake ());
    Test.make ~name:"scale: watch dispatch (trie, 10k watches)"
      (scale_watch_trie ());
    Test.make ~name:"scale: watch dispatch (linear ref, 10k watches)"
      (scale_watch_linear ());
    Test.make ~name:"scale: tx snapshot (persistent, 10k domains)"
      (scale_snapshot_persistent ());
    Test.make ~name:"scale: tx snapshot (copying ref, 10k domains)"
      (scale_snapshot_copy ());
  ]

(* (name, ns/op estimate) per micro-benchmark, in declaration order. *)
let micro_rows =
  section "Bechamel micro-benchmarks (real time per op)" "";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  (* 0.5 s per test: the old/new reference pairs need estimates stable
     enough that the faster side reliably measures faster. *)
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 10) ()
  in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock raw in
      Hashtbl.fold
        (fun name result acc ->
          let est =
            match Analyze.OLS.estimates result with
            | Some (est :: _) -> Some est
            | Some [] | None -> None
          in
          (match est with
          | Some est -> Printf.printf "  %-44s %12.1f ns/op\n" name est
          | None -> Printf.printf "  %-44s (no estimate)\n" name);
          (name, est) :: acc)
        analyzed [])
    micro_tests

(* ------------------------------------------------------------------ *)
(* Machine-readable perf trajectory (--json). Hand-rolled emission:
   the schema is flat and we avoid a JSON dependency. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let write_json path ~total =
  let oc = open_out path in
  let out fmt = Printf.fprintf oc fmt in
  out "{\n";
  out "  \"scale\": \"%s\",\n" scale_name;
  out "  \"jobs\": %d,\n" jobs;
  out "  \"partition\": \"%s\",\n" (E.partition_name partition);
  (* [total_wall_seconds] is the true end-to-end process wall clock.
     Per experiment, [job_seconds] sums that experiment's job durations
     (its cost run alone, the figure regression checks compare) and
     [wall_seconds] is its first-job-start to last-job-end span; with a
     pool, experiments overlap, so per-row walls can sum to more than
     the total. *)
  out "  \"total_wall_seconds\": %.3f,\n" total;
  (* [prefix_seconds] (wall time spent building/loading shared boot
     prefixes — included in [job_seconds], broken out so the trajectory
     shows what prefix caching amortizes). The GC columns are the
     executing domains' counter deltas over the row's jobs: allocation
     regressions show up in [minor_words] long before they move the
     noisy wall clocks, so the CI gate compares those. *)
  out "  \"experiments\": [\n";
  List.iteri
    (fun i (id, njobs, job_secs, wall_secs, prefix_secs, gc) ->
      out
        "    { \"name\": %S, \"jobs\": %d, \"job_seconds\": %.3f, \
         \"wall_seconds\": %.3f, \"prefix_seconds\": %.3f, \
         \"minor_words\": %.0f, \"promoted_words\": %.0f, \
         \"major_collections\": %d }%s\n"
        id njobs job_secs wall_secs prefix_secs gc.gd_minor_words
        gc.gd_promoted_words gc.gd_major_collections
        (if i = List.length all_experiment_rows - 1 then "" else ","))
    all_experiment_rows;
  out "  ],\n";
  (* The serverless SLO row (always requests = 2000; see the summary
     section): tail latency in microseconds per policy, plus the warm
     pool's hit rate over the run. *)
  let cold_p99_us, warm_p99_us, pool_hit_rate = serverless_slo in
  out "  \"serverless\": { \"requests\": 2000, \"cold_p99_us\": %.1f, \
       \"warm_p99_us\": %.1f, \"pool_hit_rate\": %.4f },\n"
    cold_p99_us warm_p99_us pool_hit_rate;
  out "  \"microbench\": [\n";
  List.iteri
    (fun i (name, est) ->
      let value =
        match est with
        | Some ns -> Printf.sprintf "%.1f" ns
        | None -> "null"
      in
      out "    { \"name\": \"%s\", \"ns_per_op\": %s }%s\n"
        (json_escape name) value
        (if i = List.length micro_rows - 1 then "" else ","))
    micro_rows;
  out "  ]\n";
  out "}\n";
  close_out oc

let () =
  let total = Unix.gettimeofday () -. t_start in
  (match json_path with
  | None -> ()
  | Some path ->
      write_json path ~total;
      Printf.printf "\nperf trajectory written to %s\n" path);
  Printf.printf "\nbench complete in %.1f s\n" total
