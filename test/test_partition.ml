(* The partitioned engine's window protocol, and the partition/jobs
   determinism matrix: cluster output must be bit-identical across
   --partition host|none and any sim_jobs count, including under
   injected migration faults; cross-partition posts respect the
   lookahead bound and merge in (time, source partition, send order);
   the minipy program cache never changes observable behaviour. *)

module E = Lightvm.Experiment
module Engine = Lightvm_sim.Engine
module Fault = Lightvm_sim.Fault
module Switch = Lightvm_net.Switch
module Series = Lightvm_metrics.Series
module Table = Lightvm_metrics.Table
module Interp = Lightvm_minipy.Interp

(* ------------------------------------------------------------------ *)
(* Window protocol edge cases. The modeled lookahead is the top-of-rack
   switch latency, so in-model traffic always clears the bound; these
   pin the bound itself. *)

let lookahead = Switch.default_latency

let test_post_below_lookahead_rejected () =
  let rejected = ref false in
  ignore
    (Engine.run_partitioned ~jobs:1 ~lookahead ~partitions:2 (fun () ->
         (try Engine.post ~partition:1 ~delay:(lookahead /. 2.) (fun () -> ())
          with Invalid_argument _ -> rejected := true);
         Engine.stop ()));
  Alcotest.(check bool)
    "cross-partition post below lookahead rejected" true !rejected

let test_post_at_lookahead_legal () =
  (* delay = lookahead is the tightest legal event: it lands exactly on
     the next window's opening edge. *)
  let fired = ref false in
  ignore
    (Engine.run_partitioned ~jobs:1 ~lookahead ~partitions:2 (fun () ->
         Engine.post ~partition:1 ~delay:lookahead (fun () -> fired := true)));
  Alcotest.(check bool) "delay = lookahead delivered" true !fired

let test_same_partition_zero_delay () =
  (* Zero-delay events are fine inside a partition: the lookahead bound
     only constrains traffic that crosses a window barrier. *)
  let fired = ref false in
  ignore
    (Engine.run_partitioned ~jobs:1 ~lookahead ~partitions:2 (fun () ->
         Engine.post ~partition:0 ~delay:0. (fun () -> fired := true)));
  Alcotest.(check bool) "same-partition zero-delay fired" true !fired

let test_simultaneous_merge_order jobs () =
  (* Hosts 1 and 2 each send dom0 two messages, all arriving at the
     same instant. The barrier merge must order them by (time, source
     partition, per-source send order) — never by which worker finished
     first — so the deliberately reversed send below still comes out
     sorted, at any jobs count. *)
  let order = ref [] in
  let seen tag () = order := tag :: !order in
  let l = lookahead in
  ignore
    (Engine.run_partitioned ~jobs ~lookahead:l ~partitions:2 (fun () ->
         Engine.post ~partition:2 ~delay:l (fun () ->
             Engine.post ~partition:0 ~delay:l (seen "host2/first");
             Engine.post ~partition:0 ~delay:l (seen "host2/second"));
         Engine.post ~partition:1 ~delay:l (fun () ->
             Engine.post ~partition:0 ~delay:l (seen "host1/first");
             Engine.post ~partition:0 ~delay:l (seen "host1/second"))));
  Alcotest.(check (list string))
    "(time, src, seq) merge order"
    [ "host1/first"; "host1/second"; "host2/first"; "host2/second" ]
    (List.rev !order)

(* ------------------------------------------------------------------ *)
(* Adaptive window sizing must be invisible: a random multi-partition
   workload of self-hops (sub-lookahead delays) and cross-partition
   posts produces the exact same per-partition event logs — times
   included — with [adaptive] on or off, at any jobs count. *)

let adaptive_workload ~adaptive ~jobs ~partitions ~seed =
  let steps = 10 in
  let logs = Array.make (partitions + 1) [] in
  (* Each cell is only ever touched by events of its own partition, so
     partitions running concurrently never share a cell. *)
  let record p tag = logs.(p) <- (Engine.now (), tag) :: logs.(p) in
  ignore
    (Engine.run_partitioned ~jobs ~adaptive ~lookahead ~partitions (fun () ->
         for p = 1 to partitions do
           (* One driver chain per partition, each with its own stream:
              the draws depend only on (seed, p, step), never on the
              interleaving. *)
           let rng = Random.State.make [| 0x5eed; seed; p |] in
           let rec step i =
             if i <= steps then begin
               record p (Printf.sprintf "p%d step%d" p i);
               let target = 1 + Random.State.int rng partitions in
               let cross =
                 lookahead *. (1. +. (float (Random.State.int rng 5) /. 2.))
               in
               Engine.post ~partition:target ~delay:cross (fun () ->
                   record target (Printf.sprintf "p%d->p%d msg%d" p target i));
               let hop =
                 lookahead *. float (Random.State.int rng 100) /. 150.
               in
               Engine.post ~partition:p ~delay:hop (fun () -> step (i + 1))
             end
           in
           Engine.post ~partition:p ~delay:lookahead (fun () -> step 1)
         done));
  Array.map
    (fun l ->
      List.rev_map (fun (t, tag) -> Printf.sprintf "%h %s" t tag) l)
    logs

let adaptive_arb =
  QCheck.make
    ~print:(fun (partitions, seed) ->
      Printf.sprintf "partitions=%d seed=%d" partitions seed)
    QCheck.Gen.(pair (int_range 2 4) (int_bound 100_000))

let prop_adaptive_matrix =
  QCheck.Test.make
    ~name:"adaptive windows: logs identical to fixed windows (jobs 1/4)"
    ~count:6 adaptive_arb (fun (partitions, seed) ->
      let run ~adaptive ~jobs =
        adaptive_workload ~adaptive ~jobs ~partitions ~seed
      in
      let reference = run ~adaptive:false ~jobs:1 in
      reference = run ~adaptive:true ~jobs:1
      && reference = run ~adaptive:false ~jobs:4
      && reference = run ~adaptive:true ~jobs:4)

(* ------------------------------------------------------------------ *)
(* Determinism matrix: random cluster workloads with migration faults
   enabled must produce bit-identical output whether the hosts share
   one heap or run as partitions on 1, 2 or 8 workers. *)

(* Exact (hex) floats, as in test_parallel.ml: any numeric divergence
   between runs must show up in the digest. *)
let render (r : E.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf r.E.name;
  Buffer.add_char buf '/';
  Buffer.add_string buf r.E.figure;
  Buffer.add_char buf '\n';
  List.iter
    (fun (l : E.labelled) ->
      Buffer.add_string buf ("# " ^ l.E.label ^ "\n");
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%h\t%h\n" x y))
        (Series.points l.E.series))
    r.E.series;
  List.iter
    (fun t -> Buffer.add_string buf (Format.asprintf "%a@." Table.pp t))
    r.E.tables;
  List.iter (fun n -> Buffer.add_string buf (n ^ "\n")) r.E.notes;
  Buffer.contents buf

let cluster_digest ~n ~spec ~fault_seed ~partition ~sim_jobs =
  let plan = E.cluster_plan ~n ~spec ~fault_seed ~partition ~sim_jobs () in
  Digest.to_hex (Digest.string (render (E.run_plan ~jobs:1 plan)))

let workload_arb =
  QCheck.make
    ~print:(fun (n, seed, mult) ->
      Printf.sprintf "n=%d seed=%Ld fault-scale=%g" n seed mult)
    QCheck.Gen.(
      triple (int_range 6 20)
        (map Int64.of_int (int_bound 10_000))
        (oneofl [ 0.5; 1.0; 2.0 ]))

let prop_partition_matrix =
  QCheck.Test.make
    ~name:"cluster digests identical across partition modes and sim_jobs"
    ~count:5 workload_arb (fun (n, fault_seed, mult) ->
      let spec =
        match Fault.parse_spec E.cluster_fault_spec with
        | Ok s -> Fault.scale s mult
        | Error e -> failwith e
      in
      let digest partition sim_jobs =
        cluster_digest ~n ~spec ~fault_seed ~partition ~sim_jobs
      in
      let reference = digest `Host 1 in
      String.equal reference (digest `Host 2)
      && String.equal reference (digest `Host 8)
      && String.equal reference (digest `None 1))

let test_scale_partition_matrix () =
  (* The scale experiment's partitioned row, same matrix. *)
  let digest partition sim_jobs =
    match E.plan ~n:40 ~partition ~sim_jobs "scale" with
    | None -> Alcotest.fail "scale plan missing"
    | Some p -> Digest.to_hex (Digest.string (render (E.run_plan ~jobs:1 p)))
  in
  let reference = digest `Host 1 in
  Alcotest.(check string) "sim_jobs=8" reference (digest `Host 8);
  Alcotest.(check string) "partition=none" reference (digest `None 1)

(* ------------------------------------------------------------------ *)
(* The compiled-program cache (the micro pass's minipy half) must be
   invisible: cached and fresh-parse runs agree on stdout, steps and
   errors — first call (cache miss) and second call (cache hit) alike. *)

let minipy_corpus =
  [
    Lightvm_workloads.Lambda.approx_e_program;
    "total = 0\nfor i in range(50):\n    total += i\nprint(total)\n";
    "def fib(n):\n    if n < 2:\n        return n\n    return fib(n - 1) + \
     fib(n - 2)\nprint(fib(12))\n";
    "xs = [3, 1, 2]\nprint(len(xs))\nprint(xs[0] * 10)\n";
    "s = \"light\"\nprint(s + \"vm\")\n";
    "while True:\n    pass\n" (* hits the step limit *);
    "x = (\n" (* parse error: also must be identical, and not cached *);
  ]

let test_minipy_cache_equivalence () =
  List.iter
    (fun src ->
      let fresh = Interp.run ~max_steps:200_000 ~cache:false src in
      (* Twice: first cached call misses and fills, second hits. *)
      for call = 1 to 2 do
        match (Interp.run ~max_steps:200_000 src, fresh) with
        | Ok a, Ok b ->
            Alcotest.(check int)
              (Printf.sprintf "steps (call %d)" call)
              b.Interp.steps a.Interp.steps;
            Alcotest.(check (list string))
              (Printf.sprintf "stdout (call %d)" call)
              b.Interp.stdout a.Interp.stdout
        | Error a, Error b ->
            Alcotest.(check string)
              (Printf.sprintf "error (call %d)" call)
              b a
        | Ok _, Error _ | Error _, Ok _ ->
            Alcotest.fail "cached and fresh runs disagree on success"
      done)
    minipy_corpus

let suites =
  [
    ( "partition.window",
      [
        Alcotest.test_case "post below lookahead rejected" `Quick
          test_post_below_lookahead_rejected;
        Alcotest.test_case "post at exactly lookahead legal" `Quick
          test_post_at_lookahead_legal;
        Alcotest.test_case "same-partition zero delay" `Quick
          test_same_partition_zero_delay;
        Alcotest.test_case "simultaneous merge order (jobs=1)" `Quick
          (test_simultaneous_merge_order 1);
        Alcotest.test_case "simultaneous merge order (jobs=8)" `Quick
          (test_simultaneous_merge_order 8);
        QCheck_alcotest.to_alcotest prop_adaptive_matrix;
      ] );
    ( "partition.determinism",
      [
        QCheck_alcotest.to_alcotest prop_partition_matrix;
        Alcotest.test_case "scale row matrix" `Slow
          test_scale_partition_matrix;
      ] );
    ( "minipy.cache",
      [
        Alcotest.test_case "cached = fresh on corpus" `Quick
          test_minipy_cache_equivalence;
      ] );
  ]
