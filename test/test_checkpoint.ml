(* Checkpoint/restore and experiment prefix caching: a suffix run from
   a thawed image must render bit-identically to the unbroken
   simulation, across the jobs x partition matrix and under injected
   faults; one image must support any number of independent forks; and
   the on-disk format must refuse foreign or stale files with a
   structured error instead of deserializing garbage. *)

module E = Lightvm.Experiment
module Engine = Lightvm_sim.Engine
module Checkpoint = Lightvm_sim.Checkpoint
module Fault = Lightvm_sim.Fault
module Series = Lightvm_metrics.Series
module Table = Lightvm_metrics.Table

(* Exact (hex) floats, as in test_partition.ml: any numeric divergence
   must show in the digest. [p_prefix_seconds] is wall-clock time and
   deliberately NOT rendered — the digest is a pure function of the
   simulated output. *)
let add_labelled buf (l : E.labelled) =
  Buffer.add_string buf ("# " ^ l.E.label ^ "\n");
  List.iter
    (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%h\t%h\n" x y))
    (Series.points l.E.series)

let digest_rows rows =
  let buf = Buffer.create 4096 in
  List.iter (add_labelled buf) rows;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let digest_piece (p : E.piece) =
  let buf = Buffer.create 4096 in
  List.iter (add_labelled buf) p.E.p_series;
  List.iter
    (fun t -> Buffer.add_string buf (Format.asprintf "%a@." Table.pp t))
    p.E.p_tables;
  List.iter (fun n -> Buffer.add_string buf (n ^ "\n")) p.E.p_notes;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let parse_spec s =
  match Fault.parse_spec s with Ok s -> s | Error e -> failwith e

(* ------------------------------------------------------------------ *)
(* Scale: chained images (boot to 300, snapshot, extend to 700,
   snapshot) must render every count's curve exactly as one unbroken
   simulation does. *)

let test_scale_snapshot_equal () =
  E.prefix_cache_reset ();
  List.iter
    (fun (slug, counts) ->
      let _, unbroken = E.scale_mode_curves ~snapshot:false ~counts slug in
      let _, forked = E.scale_mode_curves ~snapshot:true ~counts slug in
      Alcotest.(check string)
        (slug ^ " snapshot = unbroken")
        (digest_rows unbroken) (digest_rows forked))
    [ ("chaos-xs", [ 300; 700 ]); ("xl", [ 200 ]); ("chaos-noxs", [ 400 ]) ]

(* ------------------------------------------------------------------ *)
(* Fleet: the partitioned row's snapshot point is the wave-1 barrier.
   Captured under any (partition, sim_jobs) config, the resumed second
   wave must match the unbroken two-wave run — and every cell of the
   matrix must agree with every other. *)

let test_fleet_snapshot_matrix () =
  E.prefix_cache_reset ();
  let count = 240 in
  let digest ~snapshot partition sim_jobs =
    let _, row = E.scale_fleet_row ~snapshot ~count ~partition ~sim_jobs () in
    digest_rows [ row ]
  in
  let reference = digest ~snapshot:false `Host 1 in
  List.iter
    (fun (partition, sim_jobs, name) ->
      Alcotest.(check string)
        ("unbroken " ^ name) reference
        (digest ~snapshot:false partition sim_jobs);
      Alcotest.(check string)
        ("snapshot " ^ name) reference
        (digest ~snapshot:true partition sim_jobs))
    [
      (`Host, 1, "host/j1"); (`Host, 8, "host/j8");
      (`None, 1, "none/j1"); (`None, 8, "none/j8");
    ]

(* ------------------------------------------------------------------ *)
(* Cluster drain under scaled migration faults: random (guests, seed,
   fault multiplier) triples, forked from the booted-cluster image vs
   simulated unbroken. *)

let drain_arb =
  QCheck.make
    ~print:(fun (n, seed, mult) ->
      Printf.sprintf "guests=%d seed=%Ld fault-scale=%g" n seed mult)
    QCheck.Gen.(
      triple (int_range 6 20)
        (map Int64.of_int (int_bound 10_000))
        (oneofl [ 0.5; 1.0; 2.0 ]))

let prop_drain_snapshot =
  QCheck.Test.make
    ~name:"drain from image = unbroken drain (scaled migrate.corrupt)"
    ~count:5 drain_arb (fun (guests, fault_seed, mult) ->
      E.prefix_cache_reset ();
      let spec = Fault.scale (parse_spec E.cluster_fault_spec) mult in
      let unbroken =
        E.cluster_drain_piece ~snapshot:false ~guests ~spec ~fault_seed ()
      in
      let forked =
        E.cluster_drain_piece ~snapshot:true ~guests ~spec ~fault_seed ()
      in
      String.equal (digest_piece unbroken) (digest_piece forked))

(* ------------------------------------------------------------------ *)
(* Reliability: cells forked from one warmed-host image vs unbroken,
   and — the fork-many contract — two different suffixes thawed from
   the SAME cached image must each match their unbroken twin: forks
   share no mutable state. *)

let test_reliability_snapshot_equal () =
  E.prefix_cache_reset ();
  let spec = parse_spec E.reliability_default_spec in
  List.iter
    (fun (slug, seed, level) ->
      (* No cache reset between iterations: chaos-xs at two seeds runs
         both suffixes from the image built on the first hit. *)
      let cell snapshot =
        E.reliability_cell_piece ~snapshot ~n:60 ~mode:slug ~spec ~seed
          ~level ()
      in
      Alcotest.(check string)
        (Printf.sprintf "%s seed=%Ld x%g" slug seed level)
        (digest_piece (cell false))
        (digest_piece (cell true)))
    [
      ("xl", 42L, 1.); ("chaos-xs", 42L, 2.); ("chaos-xs", 7L, 2.);
      ("chaos-noxs", 42L, 1.);
    ]

(* Restore-twice: the same suffix replayed from one image is
   reproducible (thaw makes a fresh copy each time, so the first replay
   cannot have consumed or mutated anything the second needs). *)
let test_restore_twice () =
  E.prefix_cache_reset ();
  let once () = digest_rows [ E.scale_fork_suffix ~n:150 ~extra:15 ] in
  let first = once () in
  Alcotest.(check string) "second fork identical" first (once ());
  Alcotest.(check string) "fork = unbroken"
    (digest_rows [ E.scale_cold_full ~n:150 ~extra:15 ])
    first

(* ------------------------------------------------------------------ *)
(* Format hygiene. The header is checked magic-first, then version,
   then integrity, then producing binary, then (on request) config —
   each failure surfaces as its own structured error. *)

let write_raw path s =
  let oc = open_out_bin path in
  output_string oc s;
  close_out oc

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) name

let magic = "LVMSNAP\x01"

(* Structurally identical to the module's private header record: a
   4-field tag-0 block, so [input_value] reads it back as one. *)
let raw_header ~version ~binary ~config =
  Marshal.to_string (version, binary, config, Digest.string config) []

let check_error name expected_sub = function
  | Ok _ -> Alcotest.fail (name ^ ": expected an error")
  | Error err ->
      let msg = Checkpoint.error_to_string err in
      if not (Astring_check.contains (String.lowercase_ascii msg) expected_sub)
      then
        Alcotest.fail
          (Printf.sprintf "%s: error %S does not mention %S" name msg
             expected_sub)

let test_save_load_roundtrip () =
  let path = tmp "lvm_test_roundtrip.lvmsnap" in
  let payload = (42, "state", [ 1.5; 2.5 ]) in
  (match Checkpoint.save ~path ~config:"unit:roundtrip" payload with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
  (match Checkpoint.inspect ~path with
  | Ok config -> Alcotest.(check string) "inspect config" "unit:roundtrip" config
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
  match Checkpoint.load ~expect_config:"unit:roundtrip" ~path () with
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e)
  | Ok (config, v) ->
      Alcotest.(check string) "stored config" "unit:roundtrip" config;
      Alcotest.(check bool) "payload round-trips" true (v = payload)

let test_header_mismatches () =
  let path = tmp "lvm_test_header.lvmsnap" in
  (* Not a snapshot at all. *)
  write_raw path "PNG\x89 definitely not a snapshot";
  check_error "garbage" "bad magic" (Checkpoint.inspect ~path);
  write_raw path "";
  check_error "empty" "bad magic" (Checkpoint.inspect ~path);
  (* Right magic, wrong format version. *)
  write_raw path
    (magic
    ^ raw_header
        ~version:(Checkpoint.format_version + 1)
        ~binary:(Digest.string "whatever") ~config:"scale:chaos-xs@100");
  check_error "future version" "format version" (Checkpoint.inspect ~path);
  (* Right version, foreign producing binary. *)
  write_raw path
    (magic
    ^ raw_header ~version:Checkpoint.format_version
        ~binary:(Digest.string "some other executable")
        ~config:"scale:chaos-xs@100");
  check_error "foreign binary" "different binary" (Checkpoint.inspect ~path);
  (* Valid file, caller expects a different config. *)
  (match Checkpoint.save ~path ~config:"unit:a" (1, 2) with
  | Ok () -> ()
  | Error e -> Alcotest.fail (Checkpoint.error_to_string e));
  check_error "config mismatch" "config mismatch"
    (Checkpoint.load ~expect_config:"unit:b" ~path () :
      (string * (int * int), Checkpoint.error) result);
  (* Flipping a byte of the stored config breaks the header's config
     digest. The config is in the clear, so find it in the bytes. *)
  let valid = In_channel.with_open_bin path In_channel.input_all in
  let corrupt = Bytes.of_string valid in
  let i =
    let rec find i =
      if i + 6 > String.length valid then
        Alcotest.fail "stored config not found in file"
      else if String.equal (String.sub valid i 6) "unit:a" then i
      else find (i + 1)
    in
    find 0
  in
  Bytes.set corrupt (i + 5) 'z';
  write_raw path (Bytes.to_string corrupt);
  (match Checkpoint.inspect ~path with
  | Ok _ -> Alcotest.fail "tampered header accepted"
  | Error _ -> ());
  Sys.remove path

let test_not_quiesced () =
  (* A process asleep across the capture point parks an effect
     continuation in the heap: not a legal checkpoint. *)
  let _, saved =
    Engine.run_capture ~until:1.0 (fun () ->
        Engine.spawn ~name:"sleeper" (fun () -> Engine.sleep 10.))
  in
  match Checkpoint.freeze saved with
  | Error (Checkpoint.Not_quiesced _) -> ()
  | Error e ->
      Alcotest.fail ("expected Not_quiesced, got " ^ Checkpoint.error_to_string e)
  | Ok _ -> Alcotest.fail "parked continuation marshalled"

(* ------------------------------------------------------------------ *)
(* The CLI surface: snapshot_to_file / resume_from_file. A resume from
   disk must equal the in-process fork (and hence the unbroken run);
   unknown keys are refused. *)

let test_snapshot_file_roundtrip () =
  E.prefix_cache_reset ();
  let path = tmp "lvm_test_scale.lvmsnap" in
  (match
     E.snapshot_to_file ~n:150 ~key:"scale:chaos-xs@150" ~path ()
   with
  | Ok _description -> ()
  | Error msg -> Alcotest.fail msg);
  let resumed () =
    match E.resume_from_file ~n:15 ~path () with
    | Ok r -> digest_rows r.E.series
    | Error msg -> Alcotest.fail msg
  in
  let first = resumed () in
  Alcotest.(check string) "resume twice identical" first (resumed ());
  Alcotest.(check string) "resume = in-process fork"
    (digest_rows [ E.scale_fork_suffix ~n:150 ~extra:15 ])
    first

let test_snapshot_unknown_key () =
  match
    E.snapshot_to_file ~n:100 ~key:"scale:chaos-xs@99999"
      ~path:(tmp "lvm_test_unknown.lvmsnap") ()
  with
  | Ok _ -> Alcotest.fail "unknown prefix key accepted"
  | Error _ -> ()

let suites =
  [
    ( "checkpoint.prefix",
      [
        Alcotest.test_case "scale: snapshot = unbroken" `Slow
          test_scale_snapshot_equal;
        Alcotest.test_case "fleet: matrix snapshot = unbroken" `Slow
          test_fleet_snapshot_matrix;
        QCheck_alcotest.to_alcotest prop_drain_snapshot;
        Alcotest.test_case "reliability: forks = unbroken twins" `Slow
          test_reliability_snapshot_equal;
        Alcotest.test_case "restore twice from one image" `Quick
          test_restore_twice;
      ] );
    ( "checkpoint.format",
      [
        Alcotest.test_case "save/load round trip" `Quick
          test_save_load_roundtrip;
        Alcotest.test_case "header mismatches refused" `Quick
          test_header_mismatches;
        Alcotest.test_case "unquiesced state refused" `Quick
          test_not_quiesced;
        Alcotest.test_case "snapshot/resume via file" `Slow
          test_snapshot_file_roundtrip;
        Alcotest.test_case "unknown prefix key refused" `Quick
          test_snapshot_unknown_key;
      ] );
  ]
