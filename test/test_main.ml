let () =
  Alcotest.run "lightvm"
    (Test_sim.suites @ Test_xenstore.suites @ Test_hv.suites
    @ Test_toolstack.suites @ Test_tinyx.suites @ Test_container.suites
    @ Test_net.suites @ Test_minipy.suites @ Test_workloads.suites
    @ Test_core.suites @ Test_metrics.suites @ Test_xenstore_model.suites
    @ Test_guest.suites @ Test_extra.suites @ Test_trace.suites
    @ Test_fault.suites @ Test_parallel.suites @ Test_cluster.suites
    @ Test_partition.suites @ Test_checkpoint.suites
    @ Test_serverless.suites)
