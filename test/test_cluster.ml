(* The cluster control plane: scheduler policy shapes (binpack fills
   host 0 first; spread never co-locates in a failure domain while an
   empty one has capacity), drain/rebalance under injected migration
   corruption with exact loss accounting, and a qcheck property pinning
   that the whole cluster experiment family is a pure function of its
   seed — identical placement and digests for any --jobs. *)

module Engine = Lightvm_sim.Engine
module Fault = Lightvm_sim.Fault
module Mode = Lightvm_toolstack.Mode
module Image = Lightvm_guest.Image
module Vmm = Lightvm_cluster.Vmm
module Scheduler = Lightvm_cluster.Scheduler
module Cluster = Lightvm_cluster.Cluster
module E = Lightvm.Experiment
module Series = Lightvm_metrics.Series
module Table = Lightvm_metrics.Table

let run_sim f =
  let result = ref None in
  ignore
    (Engine.run (fun () ->
         result := Some (f ());
         Engine.stop ()));
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation did not complete"

let spec_of_string s =
  match Fault.parse_spec s with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "parse_spec %S: %s" s msg

let launch_or_fail c =
  match Cluster.launch c (Vmm.vm_request ~nics:1 Image.daytime) with
  | Error e -> Alcotest.failf "launch: %s" (Cluster.error_to_string e)
  | Ok p -> (
      match
        Vmm.vm_boot (Cluster.host c p.Cluster.pl_host)
          ~domid:p.Cluster.pl_vm.Vmm.vi_domid
      with
      | Ok () -> p
      | Error e -> Alcotest.failf "boot: %s" (Vmm.error_to_string e))

let vms_per_host c =
  List.map (fun (v : Scheduler.host_view) -> v.Scheduler.hv_vms)
    (Cluster.views c)

(* ------------------------------------------------------------------ *)
(* Scheduler policies through the control plane *)

let test_binpack_fills_host0 () =
  let counts =
    run_sim (fun () ->
        let c =
          Cluster.create ~hosts:4 ~mode:Mode.chaos_xs
            ~policy:Scheduler.Binpack ()
        in
        for _ = 1 to 10 do
          ignore (launch_or_fail c)
        done;
        vms_per_host c)
  in
  Alcotest.(check (list int))
    "all on host 0 while it fits" [ 10; 0; 0; 0 ] counts

let test_spread_respects_failure_domains () =
  run_sim (fun () ->
      (* 8 hosts in 4 racks: the first 4 guests must land in 4 distinct
         racks, and 8 guests must end up one per host. *)
      let c =
        Cluster.create ~hosts:8 ~racks:4 ~mode:Mode.chaos_xs
          ~policy:Scheduler.Spread ()
      in
      for i = 1 to 8 do
        ignore (launch_or_fail c);
        let by_rack = Hashtbl.create 4 in
        List.iter
          (fun (v : Scheduler.host_view) ->
            let r = v.Scheduler.hv_rack in
            Hashtbl.replace by_rack r
              (v.Scheduler.hv_vms
              + Option.value ~default:0 (Hashtbl.find_opt by_rack r)))
          (Cluster.views c);
        let racks = Hashtbl.fold (fun _ n acc -> n :: acc) by_rack [] in
        let occupied = List.length (List.filter (fun n -> n > 0) racks) in
        let doubled = List.exists (fun n -> n >= 2) racks in
        if doubled && occupied < 4 then
          Alcotest.failf
            "after %d guests: a rack holds 2 VMs while an empty rack \
             remains"
            i
      done;
      Alcotest.(check (list int))
        "8 guests end up one per host"
        [ 1; 1; 1; 1; 1; 1; 1; 1 ]
        (vms_per_host c))

let test_scheduler_no_capacity () =
  let views =
    [
      { Scheduler.hv_id = 0; hv_rack = 0; hv_vms = 3; hv_free_kb = 64 };
      { Scheduler.hv_id = 1; hv_rack = 0; hv_vms = 0; hv_free_kb = 128 };
    ]
  in
  List.iter
    (fun policy ->
      let s = Scheduler.make policy in
      (match Scheduler.place s ~hosts:views ~mem_kb:100_000 with
      | Ok id ->
          Alcotest.failf "%s placed on %d with no capacity"
            (Scheduler.policy_name policy)
            id
      | Error _ -> ());
      match Scheduler.place s ~hosts:views ~mem_kb:100 with
      | Ok 1 -> ()
      | Ok id ->
          Alcotest.failf "%s: expected host 1 (only fit), got %d"
            (Scheduler.policy_name policy)
            id
      | Error e ->
          Alcotest.failf "%s: feasible placement refused: %s"
            (Scheduler.policy_name policy)
            e)
    Scheduler.policies

(* ------------------------------------------------------------------ *)
(* Drain under injected migration corruption: losses are accounted,
   never leaked. *)

let test_drain_under_fault_leak_free () =
  let spec = spec_of_string "migrate.corrupt:0.6" in
  let injector = Fault.create ~seed:42L spec in
  run_sim (fun () ->
      let c =
        Cluster.create ~hosts:4 ~racks:4 ~mode:Mode.chaos_xs
          ~policy:Scheduler.Spread ()
      in
      for _ = 1 to 20 do
        ignore (launch_or_fail c)
      done;
      let before = Cluster.resources c in
      let drain =
        Fault.with_injector injector (fun () -> Cluster.drain c ~host:0)
      in
      Alcotest.(check int)
        "host 0 drained" 0
        (Vmm.vm_count (Cluster.host c 0));
      Alcotest.(check int) "nothing stranded" 0 drain.Cluster.mv_stranded;
      if drain.Cluster.mv_lost < 1 then
        Alcotest.fail
          "expected at least one guest lost to migrate.corrupt at this \
           seed";
      Alcotest.(check int)
        "attempted = moved + lost" drain.Cluster.mv_attempted
        (drain.Cluster.mv_moved + drain.Cluster.mv_lost);
      let reb = Cluster.rebalance c () in
      let counts = vms_per_host c in
      let mx = List.fold_left max min_int counts in
      let mn = List.fold_left min max_int counts in
      if mx - mn > 1 then
        Alcotest.failf "rebalance left spread %d (%d moved)" (mx - mn)
          reb.Cluster.mv_moved;
      (* The loss-aware no-leak invariant: accounted resources (live +
         lost) match the pre-drain snapshot exactly. *)
      (match Cluster.check_leak c ~before with
      | Ok () -> ()
      | Error s -> Alcotest.failf "resource leak after drain: %s" s);
      if drain.Cluster.mv_lost > 0 then
        let lost = Cluster.lost_resources c in
        Alcotest.(check bool)
          "lost guests freed accounted memory" true
          (lost.Vmm.r_mem_kb > 0 && lost.Vmm.r_domains > 0))

(* ------------------------------------------------------------------ *)
(* Determinism: the cluster experiment family is a pure function of
   (n, spec, fault_seed) — same seed gives byte-identical renders (and
   therefore placements) whatever the jobs count. *)

let render (r : E.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (r.E.name ^ "/" ^ r.E.figure ^ "\n");
  List.iter
    (fun (l : E.labelled) ->
      Buffer.add_string buf ("# " ^ l.E.label ^ "\n");
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%h\t%h\n" x y))
        (Series.points l.E.series))
    r.E.series;
  List.iter
    (fun t -> Buffer.add_string buf (Format.asprintf "%a@." Table.pp t))
    r.E.tables;
  List.iter (fun n -> Buffer.add_string buf (n ^ "\n")) r.E.notes;
  Buffer.contents buf

let digest_of_run ~jobs ~seed =
  let spec = spec_of_string "migrate.corrupt:0.5" in
  let plan = E.cluster_plan ~n:24 ~spec ~fault_seed:seed () in
  Digest.to_hex (Digest.string (render (E.run_plan ~jobs plan)))

let prop_cluster_seed_determinism =
  QCheck.Test.make ~name:"same seed => same placement digest, any jobs"
    ~count:4
    QCheck.(make ~print:Int64.to_string Gen.(map Int64.of_int (int_bound 999)))
    (fun seed ->
      let sequential = digest_of_run ~jobs:1 ~seed in
      let parallel = digest_of_run ~jobs:4 ~seed in
      String.equal sequential parallel)

let test_distinct_seeds_distinct_outcomes () =
  (* Not a hard guarantee for arbitrary seed pairs, but these two must
     differ (different guests are lost in the drain) — a frozen injector
     would make this fail and silently weaken the qcheck property. *)
  let a = digest_of_run ~jobs:1 ~seed:1L in
  let b = digest_of_run ~jobs:1 ~seed:2L in
  if String.equal a b then
    Alcotest.fail "seeds 1 and 2 produced identical cluster timelines"

let suites =
  [
    ( "cluster.scheduler",
      [
        Alcotest.test_case "binpack fills host 0 first" `Quick
          test_binpack_fills_host0;
        Alcotest.test_case "spread respects failure domains" `Quick
          test_spread_respects_failure_domains;
        Alcotest.test_case "no-capacity refusal" `Quick
          test_scheduler_no_capacity;
      ] );
    ( "cluster.drain",
      [
        Alcotest.test_case "drain under migrate.corrupt is leak-free"
          `Slow test_drain_under_fault_leak_free;
      ] );
    ( "cluster.determinism",
      [
        QCheck_alcotest.to_alcotest prop_cluster_seed_determinism;
        Alcotest.test_case "distinct seeds diverge" `Slow
          test_distinct_seeds_distinct_outcomes;
      ] );
  ]
