(* Tests for the XenStore: paths, permissions, store semantics,
   transactions, watches, wire protocol, logging and the server. *)

module Engine = Lightvm_sim.Engine
module Xs_path = Lightvm_xenstore.Xs_path
module Xs_perms = Lightvm_xenstore.Xs_perms
module Xs_store = Lightvm_xenstore.Xs_store
module Xs_error = Lightvm_xenstore.Xs_error
module Xs_transaction = Lightvm_xenstore.Xs_transaction
module Xs_watch = Lightvm_xenstore.Xs_watch
module Xs_wire = Lightvm_xenstore.Xs_wire
module Xs_logging = Lightvm_xenstore.Xs_logging
module Xs_server = Lightvm_xenstore.Xs_server
module Xs_client = Lightvm_xenstore.Xs_client

let in_sim f () = ignore (Engine.run f)

let p = Xs_path.of_string

let err : Xs_error.t Alcotest.testable =
  Alcotest.testable Xs_error.pp ( = )

let store_res ok = Alcotest.result ok err

(* ------------------------------------------------------------------ *)
(* Paths *)

let test_path_parse () =
  let t = p "/local/domain/0/name" in
  Alcotest.(check (list string))
    "segments"
    [ "local"; "domain"; "0"; "name" ]
    (Xs_path.segments t);
  Alcotest.(check string) "round trip" "/local/domain/0/name"
    (Xs_path.to_string t);
  Alcotest.(check string) "root" "/" (Xs_path.to_string Xs_path.root);
  Alcotest.(check int) "depth" 4 (Xs_path.depth t)

let test_path_invalid () =
  let bad s =
    match Xs_path.of_string_opt s with
    | Some _ -> Alcotest.failf "accepted bad path %S" s
    | None -> ()
  in
  bad "relative/path";
  bad "";
  bad "/double//slash";
  bad "/bad char";
  bad ("/" ^ String.make 300 'a')

let test_path_trailing_slash () =
  Alcotest.(check string) "trailing slash tolerated" "/a/b"
    (Xs_path.to_string (p "/a/b/"))

let test_path_parent_basename () =
  let t = p "/a/b/c" in
  Alcotest.(check (option string))
    "parent" (Some "/a/b")
    (Option.map Xs_path.to_string (Xs_path.parent t));
  Alcotest.(check (option string)) "basename" (Some "c") (Xs_path.basename t);
  Alcotest.(check (option string))
    "root has no parent" None
    (Option.map Xs_path.to_string (Xs_path.parent Xs_path.root))

let test_path_prefix () =
  let check_prefix a b expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s prefix of %s" a b)
      expected
      (Xs_path.is_prefix (p a) ~of_:(p b))
  in
  check_prefix "/a" "/a/b/c" true;
  check_prefix "/a/b/c" "/a/b/c" true;
  check_prefix "/a/b/c" "/a" false;
  check_prefix "/a/bb" "/a/b" false;
  check_prefix "/" "/anything" true

let test_path_special () =
  let s = p "@introduceDomain" in
  Alcotest.(check bool) "special" true (Xs_path.is_special s);
  Alcotest.(check bool) "not prefix of normal" false
    (Xs_path.is_prefix s ~of_:(p "/a"))

let test_path_domain () =
  Alcotest.(check string) "domain path" "/local/domain/7"
    (Xs_path.to_string (Xs_path.domain_path 7))

let prop_path_roundtrip =
  let seg =
    QCheck.Gen.(
      string_size ~gen:(oneof [ char_range 'a' 'z'; char_range '0' '9' ])
        (int_range 1 8))
  in
  let path_gen =
    QCheck.Gen.(
      map
        (fun segs -> "/" ^ String.concat "/" segs)
        (list_size (int_range 1 6) seg))
  in
  QCheck.Test.make ~name:"path to_string/of_string round-trips" ~count:200
    (QCheck.make path_gen) (fun s ->
      Xs_path.to_string (Xs_path.of_string s) = s)

(* ------------------------------------------------------------------ *)
(* Perms *)

let test_perms_basics () =
  let perms = Xs_perms.make ~owner:3 ~default:Xs_perms.Read () in
  Alcotest.(check bool) "owner writes" true
    (Xs_perms.can_write perms ~domid:3);
  Alcotest.(check bool) "other reads" true (Xs_perms.can_read perms ~domid:5);
  Alcotest.(check bool) "other cannot write" false
    (Xs_perms.can_write perms ~domid:5);
  Alcotest.(check bool) "dom0 writes anything" true
    (Xs_perms.can_write perms ~domid:0)

let test_perms_acl () =
  let perms =
    Xs_perms.grant (Xs_perms.owned_default 1) ~domid:4 Xs_perms.Write
  in
  Alcotest.(check bool) "acl write" true (Xs_perms.can_write perms ~domid:4);
  Alcotest.(check bool) "acl no read" false
    (Xs_perms.can_read perms ~domid:4);
  Alcotest.(check bool) "others nothing" false
    (Xs_perms.can_read perms ~domid:9)

let test_perms_string () =
  let perms =
    Xs_perms.make ~owner:3 ~default:Xs_perms.None_
      ~acl:[ (0, Xs_perms.Read); (5, Xs_perms.Both) ]
      ()
  in
  let s = Xs_perms.to_string perms in
  Alcotest.(check string) "encoding" "n3,r0,b5" s;
  match Xs_perms.of_string s with
  | None -> Alcotest.fail "failed to parse own encoding"
  | Some parsed ->
      Alcotest.(check bool) "round trip" true (Xs_perms.equal perms parsed)

let test_perms_bad_string () =
  Alcotest.(check bool) "garbage rejected" true
    (Xs_perms.of_string "x3,r0" = None);
  Alcotest.(check bool) "empty rejected" true (Xs_perms.of_string "" = None)

(* ------------------------------------------------------------------ *)
(* Store *)

let test_store_read_write () =
  let s = Xs_store.create () in
  Alcotest.check (store_res Alcotest.unit) "write" (Ok ())
    (Xs_store.write s ~caller:0 (p "/tool/test") "hello");
  Alcotest.check (store_res Alcotest.string) "read back" (Ok "hello")
    (Xs_store.read s ~caller:0 (p "/tool/test"));
  Alcotest.check (store_res Alcotest.string) "missing" (Error Xs_error.ENOENT)
    (Xs_store.read s ~caller:0 (p "/tool/absent"))

let test_store_implicit_parents () =
  let s = Xs_store.create () in
  Alcotest.check (store_res Alcotest.unit) "deep write" (Ok ())
    (Xs_store.write s ~caller:0 (p "/a/b/c/d") "v");
  Alcotest.check
    (store_res Alcotest.(list string))
    "intermediate created" (Ok [ "c" ])
    (Xs_store.directory s ~caller:0 (p "/a/b"))

let test_store_directory () =
  let s = Xs_store.create () in
  List.iter
    (fun name ->
      match Xs_store.write s ~caller:0 (p ("/dir/" ^ name)) name with
      | Ok () -> ()
      | Error e -> Alcotest.failf "write %s: %s" name (Xs_error.to_string e))
    [ "zeta"; "alpha"; "mid" ];
  Alcotest.check
    (store_res Alcotest.(list string))
    "sorted children"
    (Ok [ "alpha"; "mid"; "zeta" ])
    (Xs_store.directory s ~caller:0 (p "/dir"))

let test_store_rm_subtree () =
  let s = Xs_store.create () in
  ignore (Xs_store.write s ~caller:0 (p "/x/y/z") "1");
  ignore (Xs_store.write s ~caller:0 (p "/x/y2") "2");
  let before = Xs_store.node_count s in
  Alcotest.check (store_res Alcotest.unit) "rm" (Ok ())
    (Xs_store.rm s ~caller:0 (p "/x/y"));
  Alcotest.(check bool) "gone" false (Xs_store.exists s (p "/x/y/z"));
  Alcotest.(check bool) "sibling kept" true (Xs_store.exists s (p "/x/y2"));
  Alcotest.(check int) "count dropped by 2" (before - 2)
    (Xs_store.node_count s);
  Alcotest.check (store_res Alcotest.unit) "rm missing"
    (Error Xs_error.ENOENT)
    (Xs_store.rm s ~caller:0 (p "/x/y"))

let test_store_rm_root_rejected () =
  let s = Xs_store.create () in
  Alcotest.check (store_res Alcotest.unit) "rm root" (Error Xs_error.EINVAL)
    (Xs_store.rm s ~caller:0 Xs_path.root)

let test_store_permissions () =
  let s = Xs_store.create () in
  (* Dom0 creates a node owned by domain 5. *)
  ignore (Xs_store.write s ~caller:0 (p "/guest") "");
  ignore
    (Xs_store.set_perms s ~caller:0 (p "/guest")
       (Xs_perms.owned_default 5));
  Alcotest.check (store_res Alcotest.unit) "domain 5 writes" (Ok ())
    (Xs_store.write s ~caller:5 (p "/guest/data") "mine");
  Alcotest.check (store_res Alcotest.string) "domain 7 cannot read"
    (Error Xs_error.EACCES)
    (Xs_store.read s ~caller:7 (p "/guest/data"));
  Alcotest.check (store_res Alcotest.unit) "domain 7 cannot write"
    (Error Xs_error.EACCES)
    (Xs_store.write s ~caller:7 (p "/guest/data") "stolen");
  Alcotest.check (store_res Alcotest.unit)
    "domain 7 cannot create under /guest" (Error Xs_error.EACCES)
    (Xs_store.write s ~caller:7 (p "/guest/other") "x")

let test_store_setperms_owner_only () =
  let s = Xs_store.create () in
  ignore (Xs_store.write s ~caller:0 (p "/n") "");
  ignore (Xs_store.set_perms s ~caller:0 (p "/n") (Xs_perms.owned_default 5));
  Alcotest.check (store_res Alcotest.unit) "non-owner rejected"
    (Error Xs_error.EACCES)
    (Xs_store.set_perms s ~caller:7 (p "/n")
       (Xs_perms.owned_default 7));
  Alcotest.check (store_res Alcotest.unit) "owner allowed" (Ok ())
    (Xs_store.set_perms s ~caller:5 (p "/n")
       (Xs_perms.make ~owner:5 ~default:Xs_perms.Read ()))

let test_store_owned_count () =
  let s = Xs_store.create () in
  ignore (Xs_store.write s ~caller:0 (p "/g") "");
  ignore (Xs_store.set_perms s ~caller:0 (p "/g") (Xs_perms.owned_default 3));
  let base = Xs_store.owned_count s ~domid:3 in
  ignore (Xs_store.write s ~caller:3 (p "/g/a/b") "v");
  Alcotest.(check int) "two new nodes for domain 3" (base + 2)
    (Xs_store.owned_count s ~domid:3);
  ignore (Xs_store.rm s ~caller:3 (p "/g/a"));
  Alcotest.(check int) "freed on rm" base (Xs_store.owned_count s ~domid:3)

let test_store_mkdir_idempotent () =
  let s = Xs_store.create () in
  Alcotest.check (store_res Alcotest.unit) "mkdir" (Ok ())
    (Xs_store.mkdir s ~caller:0 (p "/d"));
  Alcotest.check (store_res Alcotest.unit) "mkdir again" (Ok ())
    (Xs_store.mkdir s ~caller:0 (p "/d"))

let test_store_generation () =
  let s = Xs_store.create () in
  let g0 = Xs_store.generation s in
  ignore (Xs_store.write s ~caller:0 (p "/w") "1");
  Alcotest.(check bool) "write bumps" true (Xs_store.generation s > g0);
  let g1 = Xs_store.generation s in
  ignore (Xs_store.read s ~caller:0 (p "/w"));
  Alcotest.(check int) "read does not bump" g1 (Xs_store.generation s)

let test_store_snapshot_isolation () =
  let s = Xs_store.create () in
  ignore (Xs_store.write s ~caller:0 (p "/orig") "before");
  let view = Xs_store.of_snapshot (Xs_store.snapshot s) in
  ignore (Xs_store.write view ~caller:0 (p "/orig") "changed");
  ignore (Xs_store.write view ~caller:0 (p "/extra") "new");
  Alcotest.check (store_res Alcotest.string) "original untouched"
    (Ok "before")
    (Xs_store.read s ~caller:0 (p "/orig"));
  Alcotest.(check bool) "no leak" false (Xs_store.exists s (p "/extra"))

let test_store_snapshot_owned_independent () =
  (* Snapshots are pure structural sharing (immutable tree + persistent
     ownership counts), so the bookkeeping must be as independent as
     the data: neither direction of mutation may leak, including the
     per-domain owned counts quotas rely on. *)
  let s = Xs_store.create () in
  ignore (Xs_store.write s ~caller:0 (p "/g") "");
  ignore (Xs_store.set_perms s ~caller:0 (p "/g") (Xs_perms.owned_default 5));
  let before = Xs_store.owned_count s ~domid:5 in
  let view = Xs_store.of_snapshot (Xs_store.snapshot s) in
  ignore (Xs_store.write view ~caller:5 (p "/g/name") "g5");
  Alcotest.(check int) "original owned_count(5) untouched" before
    (Xs_store.owned_count s ~domid:5);
  Alcotest.(check int) "view owned_count(5) grew" (before + 1)
    (Xs_store.owned_count view ~domid:5);
  (* And the other direction: mutating the original after the snapshot
     must not show through the view. *)
  ignore (Xs_store.rm s ~caller:0 (p "/g"));
  Alcotest.(check int) "original freed its nodes" 0
    (Xs_store.owned_count s ~domid:5);
  Alcotest.(check int) "view owned_count(5) unaffected by rm" (before + 1)
    (Xs_store.owned_count view ~domid:5);
  Alcotest.(check bool) "view still has the node" true
    (Xs_store.exists view (p "/g/name"))

let prop_store_node_count =
  (* node_count always equals the actual size of the tree. *)
  QCheck.Test.make ~name:"store node count consistent" ~count:100
    QCheck.(
      list
        (pair (int_range 0 4)
           (list_of_size Gen.(int_range 1 3) (int_range 0 5))))
    (fun script ->
      let s = Xs_store.create () in
      List.iter
        (fun (kind, segs) ->
          let path =
            List.fold_left
              (fun acc seg -> acc ^ "/k" ^ string_of_int seg)
              "" segs
          in
          let path = p (if path = "" then "/k0" else path) in
          match kind with
          | 0 | 1 | 2 -> ignore (Xs_store.write s ~caller:0 path "v")
          | 3 -> ignore (Xs_store.mkdir s ~caller:0 path)
          | _ -> ignore (Xs_store.rm s ~caller:0 path))
        script;
      match Xs_store.lookup s Xs_path.root with
      | None -> false
      | Some root ->
          Xs_store.Node.subtree_size root = Xs_store.node_count s)

(* ------------------------------------------------------------------ *)
(* Transactions *)

let test_tx_commit_applies () =
  let s = Xs_store.create () in
  let tx = Xs_transaction.start s ~id:1 in
  Alcotest.check (store_res Alcotest.unit) "tx write" (Ok ())
    (Xs_transaction.write tx ~caller:0 (p "/t/a") "1");
  Alcotest.(check bool) "not yet visible" false (Xs_store.exists s (p "/t/a"));
  (match Xs_transaction.commit tx ~into:s with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "commit failed: %s" (Xs_error.to_string e));
  Alcotest.check (store_res Alcotest.string) "visible after commit" (Ok "1")
    (Xs_store.read s ~caller:0 (p "/t/a"))

let test_tx_reads_own_writes () =
  let s = Xs_store.create () in
  let tx = Xs_transaction.start s ~id:1 in
  ignore (Xs_transaction.write tx ~caller:0 (p "/t/x") "inner");
  Alcotest.check (store_res Alcotest.string) "tx sees own write"
    (Ok "inner")
    (Xs_transaction.read tx ~caller:0 (p "/t/x"))

let test_tx_conflict_detected () =
  let s = Xs_store.create () in
  ignore (Xs_store.write s ~caller:0 (p "/c") "0");
  let tx = Xs_transaction.start s ~id:1 in
  (* The transaction reads /c, then someone else changes it. *)
  ignore (Xs_transaction.read tx ~caller:0 (p "/c"));
  ignore (Xs_transaction.write tx ~caller:0 (p "/c2") "derived");
  ignore (Xs_store.write s ~caller:0 (p "/c") "interference");
  (match Xs_transaction.commit tx ~into:s with
  | Error Xs_error.EAGAIN -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Xs_error.to_string e)
  | Ok _ -> Alcotest.fail "conflicting commit succeeded");
  Alcotest.(check bool) "aborted tx left no writes" false
    (Xs_store.exists s (p "/c2"))

let test_tx_unrelated_interference_ok () =
  let s = Xs_store.create () in
  ignore (Xs_store.write s ~caller:0 (p "/c") "0");
  let tx = Xs_transaction.start s ~id:1 in
  ignore (Xs_transaction.read tx ~caller:0 (p "/c"));
  ignore (Xs_transaction.write tx ~caller:0 (p "/c2") "derived");
  (* Unrelated write elsewhere must not break serialisability. *)
  ignore (Xs_store.write s ~caller:0 (p "/elsewhere") "noise");
  match Xs_transaction.commit tx ~into:s with
  | Ok _ ->
      Alcotest.check (store_res Alcotest.string) "write applied"
        (Ok "derived")
        (Xs_store.read s ~caller:0 (p "/c2"))
  | Error e -> Alcotest.failf "spurious conflict: %s" (Xs_error.to_string e)

let test_tx_write_write_conflict () =
  let s = Xs_store.create () in
  ignore (Xs_store.write s ~caller:0 (p "/ww") "0");
  let tx = Xs_transaction.start s ~id:1 in
  (* Read-modify-write inside the transaction. *)
  ignore (Xs_transaction.read tx ~caller:0 (p "/ww"));
  ignore (Xs_transaction.write tx ~caller:0 (p "/ww") "tx");
  ignore (Xs_store.write s ~caller:0 (p "/ww") "other");
  match Xs_transaction.commit tx ~into:s with
  | Error Xs_error.EAGAIN -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Xs_error.to_string e)
  | Ok _ -> Alcotest.fail "lost update not detected"

let test_tx_writes_listed () =
  let s = Xs_store.create () in
  let tx = Xs_transaction.start s ~id:9 in
  ignore (Xs_transaction.write tx ~caller:0 (p "/w/one") "1");
  ignore (Xs_transaction.mkdir tx ~caller:0 (p "/w/two"));
  Alcotest.(check (list string))
    "modified paths in order" [ "/w/one"; "/w/two" ]
    (List.map Xs_path.to_string (Xs_transaction.writes tx))

(* ------------------------------------------------------------------ *)
(* Watches *)

let test_watch_matching () =
  let w = Xs_watch.create () in
  let fired = ref [] in
  Xs_watch.add w ~owner:0 ~path:(p "/be/vif") ~token:"t1"
    ~deliver:(fun e -> fired := ("t1", e.Xs_watch.event_path) :: !fired);
  Xs_watch.add w ~owner:0 ~path:(p "/other") ~token:"t2"
    ~deliver:(fun e -> fired := ("t2", e.Xs_watch.event_path) :: !fired);
  let hits = Xs_watch.matching w ~modified:(p "/be/vif/3/0/state") in
  Alcotest.(check int) "one match" 1 (List.length hits);
  (match hits with
  | [ (wpath, token, _) ] ->
      Alcotest.(check string) "watch path" "/be/vif"
        (Xs_path.to_string wpath);
      Alcotest.(check string) "token" "t1" token
  | _ -> Alcotest.fail "unexpected matches");
  Alcotest.(check int) "no match elsewhere" 0
    (List.length (Xs_watch.matching w ~modified:(p "/unrelated")))

let test_watch_remove () =
  let w = Xs_watch.create () in
  Xs_watch.add w ~owner:2 ~path:(p "/a") ~token:"x" ~deliver:(fun _ -> ());
  Xs_watch.add w ~owner:2 ~path:(p "/b") ~token:"y" ~deliver:(fun _ -> ());
  Xs_watch.add w ~owner:3 ~path:(p "/c") ~token:"z" ~deliver:(fun _ -> ());
  Alcotest.(check bool) "remove hit" true
    (Xs_watch.remove w ~owner:2 ~path:(p "/a") ~token:"x");
  Alcotest.(check bool) "remove miss" false
    (Xs_watch.remove w ~owner:2 ~path:(p "/a") ~token:"x");
  Alcotest.(check int) "remove owner" 1 (Xs_watch.remove_owner w ~owner:2);
  Alcotest.(check int) "one left" 1 (Xs_watch.count w)

let test_watch_special () =
  let w = Xs_watch.create () in
  Xs_watch.add w ~owner:0 ~path:(p "@releaseDomain") ~token:"r"
    ~deliver:(fun _ -> ());
  Alcotest.(check int) "special matches exactly" 1
    (List.length (Xs_watch.matching w ~modified:(p "@releaseDomain")));
  Alcotest.(check int) "not ordinary paths" 0
    (List.length (Xs_watch.matching w ~modified:(p "/local")))

(* ------------------------------------------------------------------ *)
(* Wire protocol *)

let test_wire_roundtrip () =
  let buf =
    Xs_wire.pack Xs_wire.Write ~req_id:7l ~tx_id:3l
      [ "/local/domain/1/name"; "guest-1" ]
  in
  let header, args = Xs_wire.unpack buf in
  Alcotest.(check bool) "op" true (header.Xs_wire.op = Xs_wire.Write);
  Alcotest.(check int32) "req id" 7l header.Xs_wire.req_id;
  Alcotest.(check int32) "tx id" 3l header.Xs_wire.tx_id;
  Alcotest.(check (list string))
    "args" [ "/local/domain/1/name"; "guest-1" ] args

let test_wire_op_codes () =
  (* Spot-check the real protocol numbers. *)
  Alcotest.(check int) "READ" 2 (Xs_wire.op_to_int Xs_wire.Read);
  Alcotest.(check int) "WRITE" 11 (Xs_wire.op_to_int Xs_wire.Write);
  Alcotest.(check int) "WATCH_EVENT" 15
    (Xs_wire.op_to_int Xs_wire.Watch_event);
  List.iter
    (fun i ->
      match Xs_wire.op_of_int i with
      | Some op -> Alcotest.(check int) "inverse" i (Xs_wire.op_to_int op)
      | None -> Alcotest.failf "op %d not recognised" i)
    (List.init 20 Fun.id)

let test_wire_malformed () =
  (try
     ignore (Xs_wire.unpack_header (Bytes.create 4));
     Alcotest.fail "short header accepted"
   with Xs_wire.Malformed _ -> ());
  try
    ignore
      (Xs_wire.pack Xs_wire.Write ~req_id:0l ~tx_id:0l
         [ String.make 5000 'x' ]);
    Alcotest.fail "oversized payload accepted"
  with Xs_wire.Malformed _ -> ()

let prop_wire_roundtrip =
  let arg =
    QCheck.Gen.(
      string_size ~gen:(char_range 'a' 'z') (int_range 0 20))
  in
  QCheck.Test.make ~name:"wire pack/unpack round-trips" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 5) arg))
    (fun args ->
      let buf = Xs_wire.pack Xs_wire.Read ~req_id:1l ~tx_id:2l args in
      let _, decoded = Xs_wire.unpack buf in
      decoded = args)

(* ------------------------------------------------------------------ *)
(* Logging *)

let test_logging_rotation () =
  let log = Xs_logging.create ~rotate_lines:10 ~enabled:true () in
  let rotations = ref 0 in
  for _ = 1 to 25 do
    if Xs_logging.log_access log ~lines:2 then incr rotations
  done;
  Alcotest.(check int) "rotations" 5 !rotations;
  Alcotest.(check int) "totals" 50 (Xs_logging.total_lines log);
  Alcotest.(check int) "counter matches" 5 (Xs_logging.rotations log)

let test_logging_disabled () =
  let log = Xs_logging.create ~rotate_lines:1 ~enabled:false () in
  Alcotest.(check bool) "no rotation when disabled" false
    (Xs_logging.log_access log ~lines:100);
  Alcotest.(check int) "nothing recorded" 0 (Xs_logging.total_lines log)

(* ------------------------------------------------------------------ *)
(* Server *)

let test_server_basic_ops =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      let t0 = Engine.now () in
      (match Xs_server.op srv ~caller:0 (Xs_server.Write (p "/a", "1")) with
      | Xs_server.Ok_unit -> ()
      | _ -> Alcotest.fail "write failed");
      (match Xs_server.op srv ~caller:0 (Xs_server.Read (p "/a")) with
      | Xs_server.Ok_value v -> Alcotest.(check string) "value" "1" v
      | _ -> Alcotest.fail "read failed");
      Alcotest.(check bool) "ops cost simulated time" true
        (Engine.now () > t0);
      Alcotest.(check int) "two ops counted" 2 (Xs_server.counters srv).ops)

let test_server_watch_fires =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      let events = ref [] in
      ignore
        (Xs_server.watch srv ~caller:0 ~path:(p "/be") ~token:"tok"
           ~deliver:(fun e ->
             events := Xs_path.to_string e.Xs_watch.event_path :: !events));
      Engine.sleep 0.001;
      (* Registration fires the watch once. *)
      Alcotest.(check (list string)) "initial event" [ "/be" ] !events;
      ignore (Xs_server.op srv ~caller:0 (Xs_server.Write (p "/be/vif/1", "x")));
      Engine.sleep 0.001;
      Alcotest.(check (list string))
        "event for sub-path write" [ "/be/vif/1"; "/be" ] !events)

let test_server_unwatch =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      let count = ref 0 in
      ignore
        (Xs_server.watch srv ~caller:0 ~path:(p "/w") ~token:"k"
           ~deliver:(fun _ -> incr count));
      Engine.sleep 0.001;
      let after_initial = !count in
      (match
         Xs_server.op srv ~caller:0 (Xs_server.Unwatch (p "/w", "k"))
       with
      | Xs_server.Ok_unit -> ()
      | _ -> Alcotest.fail "unwatch failed");
      ignore (Xs_server.op srv ~caller:0 (Xs_server.Write (p "/w/x", "1")));
      Engine.sleep 0.001;
      Alcotest.(check int) "no events after unwatch" after_initial !count)

let test_server_transaction_helper =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      let result =
        Xs_server.transaction srv ~caller:0 (fun txid ->
            (match
               Xs_server.op srv ~caller:0 ~tx:txid
                 (Xs_server.Write (p "/tx/a", "1"))
             with
            | Xs_server.Ok_unit -> ()
            | _ -> Alcotest.fail "tx write failed");
            Ok ())
      in
      Alcotest.(check bool) "committed" true (result = Ok ());
      match Xs_server.op srv ~caller:0 (Xs_server.Read (p "/tx/a")) with
      | Xs_server.Ok_value v -> Alcotest.(check string) "applied" "1" v
      | _ -> Alcotest.fail "read after commit failed")

let test_server_quota =
  in_sim (fun () ->
      let srv = Xs_server.create ~quota_nodes:3 () in
      (* Give domain 9 a writable area. *)
      ignore (Xs_server.op srv ~caller:0 (Xs_server.Mkdir (p "/g")));
      ignore
        (Xs_server.op srv ~caller:0
           (Xs_server.Set_perms (p "/g", Xs_perms.owned_default 9)));
      let write i =
        Xs_server.op srv ~caller:9
          (Xs_server.Write (p ("/g/n" ^ string_of_int i), "v"))
      in
      (match write 1 with
      | Xs_server.Ok_unit -> ()
      | _ -> Alcotest.fail "first write");
      (match write 2 with
      | Xs_server.Ok_unit -> ()
      | _ -> Alcotest.fail "second write");
      (* Domain 9 now owns /g + 2 nodes = 3 = quota. *)
      match write 3 with
      | Xs_server.Err Xs_error.EQUOTA -> ()
      | _ -> Alcotest.fail "quota not enforced")

let test_server_uniqueness_scan_cost =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      (* Populate N guests with names, then time another name write. *)
      let populate n =
        for i = 1 to n do
          ignore
            (Xs_server.op srv ~caller:0
               (Xs_server.Write
                  ( p (Printf.sprintf "/local/domain/%d/name" i),
                    Printf.sprintf "guest-%d" i )))
        done
      in
      let time_name_write i =
        let t0 = Engine.now () in
        ignore
          (Xs_server.op srv ~caller:0
             (Xs_server.Write
                ( p (Printf.sprintf "/local/domain/%d/name" i),
                  Printf.sprintf "guest-%d" i )));
        Engine.now () -. t0
      in
      populate 10;
      let cost_small = time_name_write 11 in
      populate 200;
      let cost_large = time_name_write 500 in
      Alcotest.(check bool)
        (Printf.sprintf "uniqueness scan grows (%g -> %g)" cost_small
           cost_large)
        true
        (cost_large > cost_small *. 5.))

let test_server_duplicate_name_rejected =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      ignore
        (Xs_server.op srv ~caller:0
           (Xs_server.Write (p "/local/domain/1/name", "dup")));
      match
        Xs_server.op srv ~caller:0
          (Xs_server.Write (p "/local/domain/2/name", "dup"))
      with
      | Xs_server.Err Xs_error.EEXIST -> ()
      | _ -> Alcotest.fail "duplicate name accepted")

let test_server_concurrent_tx_conflict =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      ignore (Xs_server.op srv ~caller:0 (Xs_server.Write (p "/shared", "0")));
      let get_txid () =
        match Xs_server.op srv ~caller:0 Xs_server.Transaction_start with
        | Xs_server.Ok_txid id -> id
        | _ -> Alcotest.fail "tx start failed"
      in
      let tx1 = get_txid () in
      let tx2 = get_txid () in
      let bump tx =
        match
          Xs_server.op srv ~caller:0 ~tx (Xs_server.Read (p "/shared"))
        with
        | Xs_server.Ok_value v ->
            let n = int_of_string v in
            ignore
              (Xs_server.op srv ~caller:0 ~tx
                 (Xs_server.Write (p "/shared", string_of_int (n + 1))))
        | _ -> Alcotest.fail "tx read failed"
      in
      bump tx1;
      bump tx2;
      (match
         Xs_server.op srv ~caller:0 ~tx:tx1 (Xs_server.Transaction_end true)
       with
      | Xs_server.Ok_unit -> ()
      | _ -> Alcotest.fail "first commit failed");
      (match
         Xs_server.op srv ~caller:0 ~tx:tx2 (Xs_server.Transaction_end true)
       with
      | Xs_server.Err Xs_error.EAGAIN -> ()
      | _ -> Alcotest.fail "second commit should conflict");
      Alcotest.(check int) "conflict counted" 1
        (Xs_server.counters srv).tx_conflicts;
      match Xs_server.op srv ~caller:0 (Xs_server.Read (p "/shared")) with
      | Xs_server.Ok_value v -> Alcotest.(check string) "no lost update" "1" v
      | _ -> Alcotest.fail "read failed")

let test_server_wire_interface =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      let send op args =
        Xs_server.handle_packet srv ~caller:0
          (Xs_wire.pack op ~req_id:5l ~tx_id:0l args)
      in
      let _, _ = Xs_wire.unpack (send Xs_wire.Write [ "/wire/a"; "42" ]) in
      let header, args = Xs_wire.unpack (send Xs_wire.Read [ "/wire/a" ]) in
      Alcotest.(check bool) "read reply op" true
        (header.Xs_wire.op = Xs_wire.Read);
      Alcotest.(check int32) "req id echoed" 5l header.Xs_wire.req_id;
      Alcotest.(check (list string)) "value" [ "42" ] args;
      let header, args = Xs_wire.unpack (send Xs_wire.Read [ "/missing" ]) in
      Alcotest.(check bool) "error op" true
        (header.Xs_wire.op = Xs_wire.Error);
      Alcotest.(check (list string)) "ENOENT" [ "ENOENT" ] args)

let test_client_api =
  in_sim (fun () ->
      let srv = Xs_server.create () in
      let c = Xs_client.connect srv ~domid:0 in
      Xs_client.write c "/cl/x" "v";
      Alcotest.(check string) "read" "v" (Xs_client.read c "/cl/x");
      Alcotest.(check (option string))
        "read_opt missing" None
        (Xs_client.read_opt c "/cl/missing");
      Xs_client.with_transaction c (fun txid ->
          Xs_client.write c ~tx:txid "/cl/t1" "a";
          Xs_client.write c ~tx:txid "/cl/t2" "b");
      Alcotest.(check (list string))
        "directory" [ "t1"; "t2"; "x" ]
        (Xs_client.directory c "/cl");
      Xs_client.rm c "/cl/x";
      Alcotest.check_raises "read after rm"
        (Xs_error.Error Xs_error.ENOENT) (fun () ->
          ignore (Xs_client.read c "/cl/x"));
      Alcotest.(check string) "domain path" "/local/domain/4"
        (Xs_client.get_domain_path c 4))

let suites =
  [
    ( "xenstore.path",
      [
        Alcotest.test_case "parse" `Quick test_path_parse;
        Alcotest.test_case "invalid" `Quick test_path_invalid;
        Alcotest.test_case "trailing slash" `Quick test_path_trailing_slash;
        Alcotest.test_case "parent/basename" `Quick
          test_path_parent_basename;
        Alcotest.test_case "prefix" `Quick test_path_prefix;
        Alcotest.test_case "special" `Quick test_path_special;
        Alcotest.test_case "domain path" `Quick test_path_domain;
        QCheck_alcotest.to_alcotest prop_path_roundtrip;
      ] );
    ( "xenstore.perms",
      [
        Alcotest.test_case "basics" `Quick test_perms_basics;
        Alcotest.test_case "acl" `Quick test_perms_acl;
        Alcotest.test_case "string round trip" `Quick test_perms_string;
        Alcotest.test_case "bad strings" `Quick test_perms_bad_string;
      ] );
    ( "xenstore.store",
      [
        Alcotest.test_case "read/write" `Quick test_store_read_write;
        Alcotest.test_case "implicit parents" `Quick
          test_store_implicit_parents;
        Alcotest.test_case "directory" `Quick test_store_directory;
        Alcotest.test_case "rm subtree" `Quick test_store_rm_subtree;
        Alcotest.test_case "rm root rejected" `Quick
          test_store_rm_root_rejected;
        Alcotest.test_case "permissions" `Quick test_store_permissions;
        Alcotest.test_case "set_perms owner only" `Quick
          test_store_setperms_owner_only;
        Alcotest.test_case "owned counts" `Quick test_store_owned_count;
        Alcotest.test_case "mkdir idempotent" `Quick
          test_store_mkdir_idempotent;
        Alcotest.test_case "generation" `Quick test_store_generation;
        Alcotest.test_case "snapshot isolation" `Quick
          test_store_snapshot_isolation;
        Alcotest.test_case "snapshot owned counts independent" `Quick
          test_store_snapshot_owned_independent;
        QCheck_alcotest.to_alcotest prop_store_node_count;
      ] );
    ( "xenstore.transaction",
      [
        Alcotest.test_case "commit applies" `Quick test_tx_commit_applies;
        Alcotest.test_case "reads own writes" `Quick
          test_tx_reads_own_writes;
        Alcotest.test_case "conflict detected" `Quick
          test_tx_conflict_detected;
        Alcotest.test_case "unrelated interference ok" `Quick
          test_tx_unrelated_interference_ok;
        Alcotest.test_case "write-write conflict" `Quick
          test_tx_write_write_conflict;
        Alcotest.test_case "writes listed" `Quick test_tx_writes_listed;
      ] );
    ( "xenstore.watch",
      [
        Alcotest.test_case "matching" `Quick test_watch_matching;
        Alcotest.test_case "remove" `Quick test_watch_remove;
        Alcotest.test_case "special paths" `Quick test_watch_special;
      ] );
    ( "xenstore.wire",
      [
        Alcotest.test_case "round trip" `Quick test_wire_roundtrip;
        Alcotest.test_case "op codes" `Quick test_wire_op_codes;
        Alcotest.test_case "malformed" `Quick test_wire_malformed;
        QCheck_alcotest.to_alcotest prop_wire_roundtrip;
      ] );
    ( "xenstore.logging",
      [
        Alcotest.test_case "rotation" `Quick test_logging_rotation;
        Alcotest.test_case "disabled" `Quick test_logging_disabled;
      ] );
    ( "xenstore.server",
      [
        Alcotest.test_case "basic ops" `Quick test_server_basic_ops;
        Alcotest.test_case "watch fires" `Quick test_server_watch_fires;
        Alcotest.test_case "unwatch" `Quick test_server_unwatch;
        Alcotest.test_case "transaction helper" `Quick
          test_server_transaction_helper;
        Alcotest.test_case "quota" `Quick test_server_quota;
        Alcotest.test_case "uniqueness scan cost" `Quick
          test_server_uniqueness_scan_cost;
        Alcotest.test_case "duplicate name rejected" `Quick
          test_server_duplicate_name_rejected;
        Alcotest.test_case "concurrent tx conflict" `Quick
          test_server_concurrent_tx_conflict;
        Alcotest.test_case "wire interface" `Quick
          test_server_wire_interface;
        Alcotest.test_case "client api" `Quick test_client_api;
      ] );
  ]
