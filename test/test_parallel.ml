(* Determinism of the parallel experiment runner, the Pool itself, and
   the heap's lazy-cancellation/compaction invariants. *)

module E = Lightvm.Experiment
module Pool = Lightvm_sim.Pool
module Heap = Lightvm_sim.Heap
module Series = Lightvm_metrics.Series
module Table = Lightvm_metrics.Table

(* ------------------------------------------------------------------ *)
(* Pool *)

let test_pool_order () =
  let items = List.init 40 Fun.id in
  Alcotest.(check (list int))
    "results in submission order"
    (List.map (fun x -> x * x) items)
    (Pool.map ~jobs:4 (fun x -> x * x) items)

let test_pool_single_job_inline () =
  (* jobs = 1 must not spawn domains: the thunk runs on this domain. *)
  let self = Domain.self () in
  Alcotest.(check bool)
    "ran on the calling domain" true
    (List.hd (Pool.run ~jobs:1 [ (fun () -> Domain.self () = self) ]))

let test_pool_workers_are_domains () =
  let self = Domain.self () in
  let elsewhere =
    Pool.run ~jobs:2 (List.init 4 (fun _ () -> Domain.self () <> self))
  in
  Alcotest.(check bool)
    "jobs ran on worker domains" true
    (List.for_all Fun.id elsewhere)

exception Boom of int

let test_pool_exception () =
  let ran = Array.make 6 false in
  match
    Pool.run ~jobs:3
      (List.init 6 (fun i () ->
           ran.(i) <- true;
           if i = 2 || i = 4 then raise (Boom i)))
  with
  | _ -> Alcotest.fail "expected Boom"
  | exception Boom i ->
      (* First failure in submission order, after every job ran. *)
      Alcotest.(check int) "first failing job" 2 i;
      Alcotest.(check bool)
        "all jobs still ran" true
        (Array.for_all Fun.id ran)

(* ------------------------------------------------------------------ *)
(* Experiment plans: byte-identical output for any jobs count. *)

(* Render with exact (hex) floats: any numeric divergence between a
   sequential and a pooled run must show up in the comparison. *)
let render (r : E.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf r.E.name;
  Buffer.add_char buf '/';
  Buffer.add_string buf r.E.figure;
  Buffer.add_char buf '\n';
  List.iter
    (fun (l : E.labelled) ->
      Buffer.add_string buf ("# " ^ l.E.label ^ "\n");
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%h\t%h\n" x y))
        (Series.points l.E.series))
    r.E.series;
  List.iter
    (fun t -> Buffer.add_string buf (Format.asprintf "%a@." Table.pp t))
    r.E.tables;
  List.iter (fun n -> Buffer.add_string buf (n ^ "\n")) r.E.notes;
  Buffer.contents buf

let test_plan_deterministic name plan () =
  let sequential = render (E.run_plan ~jobs:1 plan) in
  let parallel = render (E.run_plan ~jobs:4 plan) in
  if not (String.equal sequential parallel) then
    Alcotest.failf
      "%s: output with jobs=4 differs from jobs=1 (%d vs %d bytes)" name
      (String.length sequential) (String.length parallel)

(* Every registry entry, at a scale small enough for the test suite. *)
let determinism_cases =
  List.map
    (fun (name, plan) ->
      Alcotest.test_case
        (Printf.sprintf "%s (%d job(s))" name (E.job_count plan))
        `Slow
        (test_plan_deterministic name plan))
    (E.plans ~n:40 ())

(* ------------------------------------------------------------------ *)
(* Regression pin: the exact fig9 render at the paper's n = 1000, as
   produced by the seed's linear-scan watch registry and copying
   snapshots. The indexed registry, persistent snapshots, interned
   paths and the engine's sleep fast path are host-cost optimisations
   only — if this digest ever changes, simulated behaviour changed and
   the optimisation broke the modeled-cost invariant (see DESIGN.md
   "Scaling"). *)

let fig9_1000_digest = "2b80ee104c48c228384b816e1380814c"

let test_fig9_digest_pinned () =
  match E.plan ~n:1000 "fig9" with
  | None -> Alcotest.fail "fig9 plan missing"
  | Some p ->
      Alcotest.(check string)
        "fig9@1000 render digest" fig9_1000_digest
        (Digest.to_hex (Digest.string (render (E.run_plan ~jobs:1 p))))

(* ------------------------------------------------------------------ *)
(* Heap model: random push/pop/cancel against a naive reference,
   checking pop order and the live count (which drives compaction). *)

type op = Push of float | Pop | Cancel of int

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (* few distinct times, so seq tie-breaking is exercised *)
        (6, map (fun t -> Push (float_of_int t)) (int_bound 9));
        (3, return Pop);
        (* dense enough cancels to trip the compaction threshold *)
        (4, map (fun i -> Cancel i) (int_bound 10_000));
      ])

let print_op = function
  | Push t -> Printf.sprintf "Push %g" t
  | Pop -> "Pop"
  | Cancel i -> Printf.sprintf "Cancel %d" i

let ops_arb =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    QCheck.Gen.(list_size (int_range 0 600) op_gen)

type model_state = Live | Gone

let prop_heap_model =
  QCheck.Test.make ~name:"heap matches model under push/pop/cancel"
    ~count:200 ops_arb (fun ops ->
      let h = Heap.create () in
      (* (key, heap entry, state), oldest first; payload = seq. *)
      let entries = ref [] in
      let seq = ref 0 in
      let live () =
        List.length (List.filter (fun (_, _, st) -> !st = Live) !entries)
      in
      let ops_ok =
        List.for_all
          (fun op ->
            match op with
            | Push t ->
                let e = Heap.push h ~time:t !seq in
                entries := !entries @ [ ((t, !seq), e, ref Live) ];
                incr seq;
                Heap.size h = live ()
            | Cancel i -> (
                match !entries with
                | [] -> Heap.size h = 0
                | l ->
                    let _, e, st = List.nth l (i mod List.length l) in
                    Heap.cancel h e;
                    (* Cancel of a popped entry must be a no-op. *)
                    if !st = Live && Heap.cancelled e then st := Gone;
                    Heap.size h = live ())
            | Pop -> (
                let expected =
                  List.filter (fun (_, _, st) -> !st = Live) !entries
                  |> List.sort (fun (k1, _, _) (k2, _, _) -> compare k1 k2)
                in
                match (Heap.pop h, expected) with
                | None, [] -> Heap.size h = 0
                | Some (t, v), ((et, es), _, st) :: _ ->
                    st := Gone;
                    Float.equal t et && v = es && Heap.size h = live ()
                | Some _, [] | None, _ :: _ -> false))
          ops
      in
      (* The snapshot contract checkpoint/restore depends on, checked
         in whatever cancelled/compacted state the op sequence left:
         [entries] lists exactly the live entries in pop order, and
         re-pushing the snapshot into a fresh heap (in array order,
         fresh seqs) reproduces this heap's exact remaining pop
         order. *)
      let expected_live =
        List.filter (fun (_, _, st) -> !st = Live) !entries
        |> List.sort (fun (k1, _, _) (k2, _, _) -> compare k1 k2)
        |> List.map (fun ((t, s), _, _) -> (t, s))
      in
      let snap = Heap.entries h in
      let snapshot_ok = Array.to_list snap = expected_live in
      let h' = Heap.create () in
      Array.iter (fun (t, v) -> ignore (Heap.push h' ~time:t v)) snap;
      let pops heap =
        let rec go acc =
          match Heap.pop heap with
          | None -> List.rev acc
          | Some p -> go (p :: acc)
        in
        go []
      in
      let replay_ok = pops h' = pops h in
      ops_ok && snapshot_ok && replay_ok)

let test_heap_compaction_shrinks () =
  (* Push many, cancel all but one: the backing array must not keep a
     slot per cancelled entry once past the threshold, and the
     survivor must still pop correctly. *)
  let h = Heap.create () in
  let keeper = Heap.push h ~time:5000. "keeper" in
  ignore keeper;
  for i = 1 to 10_000 do
    Heap.cancel h (Heap.push h ~time:(float_of_int i) "victim")
  done;
  Alcotest.(check int) "one live entry" 1 (Heap.size h);
  Alcotest.(check (option (pair (float 1e-9) string)))
    "survivor pops" (Some (5000., "keeper")) (Heap.pop h);
  Alcotest.(check (option (pair (float 1e-9) string)))
    "then empty" None (Heap.pop h)

let test_heap_capacity_shrinks () =
  (* Grow-to-peak then drain: the backing arrays must give the peak
     storage back (halving at quarter occupancy) instead of holding it
     for the heap's lifetime, and must stop at the fixed floor. *)
  let h = Heap.create () in
  for i = 1 to 100_000 do
    ignore (Heap.push h ~time:(float_of_int i) i)
  done;
  let peak_cap = Heap.capacity h in
  Alcotest.(check bool)
    "peak capacity covers the population" true (peak_cap >= 100_000);
  for _ = 1 to 99_900 do
    ignore (Heap.pop h)
  done;
  Alcotest.(check int) "100 live entries left" 100 (Heap.size h);
  Alcotest.(check int) "drained capacity back at the floor" 1024
    (Heap.capacity h);
  (* The survivors still pop in order after all that resizing. *)
  let rec drain prev =
    match Heap.pop h with
    | None -> ()
    | Some (t, _) ->
        Alcotest.(check bool) "pop order preserved" true (t >= prev);
        drain t
  in
  drain neg_infinity;
  Alcotest.(check int) "floor retained when empty" 1024 (Heap.capacity h)

let suites =
  [
    ( "sim.pool",
      [
        Alcotest.test_case "map preserves order" `Quick test_pool_order;
        Alcotest.test_case "jobs=1 runs inline" `Quick
          test_pool_single_job_inline;
        Alcotest.test_case "workers are domains" `Quick
          test_pool_workers_are_domains;
        Alcotest.test_case "first exception rethrown" `Quick
          test_pool_exception;
      ] );
    ("parallel.experiments", determinism_cases);
    ( "experiment.regression",
      [
        Alcotest.test_case "fig9@1000 digest pinned" `Slow
          test_fig9_digest_pinned;
      ] );
    ( "sim.heap.compaction",
      [
        QCheck_alcotest.to_alcotest prop_heap_model;
        Alcotest.test_case "cancel-heavy compaction" `Quick
          test_heap_compaction_shrinks;
        Alcotest.test_case "capacity shrinks after drain" `Quick
          test_heap_capacity_shrinks;
      ] );
  ]
