(* Model-based property test: random operation sequences against a
   reference model (a flat path->value map with explicit parent
   tracking), checking that the real tree store agrees on every
   observable. *)

module Xs_path = Lightvm_xenstore.Xs_path
module Xs_store = Lightvm_xenstore.Xs_store
module Xs_error = Lightvm_xenstore.Xs_error

module SMap = Map.Make (String)

(* The reference model: a set of existing paths with values. All ops run
   as Dom0, so permissions do not constrain the model. *)
module Model = struct
  type t = string SMap.t (* path -> value; "" for directories *)

  let initial : t =
    SMap.of_seq
      (List.to_seq
         [ ("/local", ""); ("/local/domain", ""); ("/tool", "");
           ("/vm", "") ])

  let parents path =
    (* "/a/b/c" -> ["/a"; "/a/b"] *)
    let segs = String.split_on_char '/' path in
    let segs = List.filter (fun s -> s <> "") segs in
    let rec go acc prefix = function
      | [] | [ _ ] -> List.rev acc
      | seg :: rest ->
          let p = prefix ^ "/" ^ seg in
          go (p :: acc) p rest
    in
    go [] "" segs

  let write model path value =
    let model =
      List.fold_left
        (fun m parent ->
          if SMap.mem parent m then m else SMap.add parent "" m)
        model (parents path)
    in
    SMap.add path value model

  let mkdir model path =
    if SMap.mem path model then model else write model path ""

  let rm model path =
    if not (SMap.mem path model) then None
    else
      Some
        (SMap.filter
           (fun p _ -> not (p = path || String.length p > String.length path
                            && String.sub p 0 (String.length path + 1)
                               = path ^ "/"))
           model)

  let read model path = SMap.find_opt path model

  let children model path =
    let prefix = if path = "/" then "/" else path ^ "/" in
    SMap.fold
      (fun p _ acc ->
        if String.length p > String.length prefix
           && String.sub p 0 (String.length prefix) = prefix
           && not (String.contains_from p (String.length prefix) '/')
        then
          String.sub p (String.length prefix)
            (String.length p - String.length prefix)
          :: acc
        else acc)
      model []
    |> List.sort compare

  let count model = SMap.cardinal model + 1 (* + root *)
end

type op =
  | Op_write of string * string
  | Op_mkdir of string
  | Op_rm of string
  | Op_read of string
  | Op_dir of string

let op_gen =
  let open QCheck.Gen in
  let seg = oneofl [ "a"; "b"; "c"; "d" ] in
  let path =
    map
      (fun segs -> "/" ^ String.concat "/" segs)
      (list_size (int_range 1 4) seg)
  in
  let value = oneofl [ "x"; "y"; "longer-value"; "" ] in
  frequency
    [
      (4, map2 (fun p v -> Op_write (p, v)) path value);
      (2, map (fun p -> Op_mkdir p) path);
      (2, map (fun p -> Op_rm p) path);
      (3, map (fun p -> Op_read p) path);
      (2, map (fun p -> Op_dir p) path);
    ]

let apply_both (store, model) op =
  let p s = Xs_path.of_string s in
  match op with
  | Op_write (path, value) -> (
      match Xs_store.write store ~caller:0 (p path) value with
      | Ok () -> Ok (Model.write model path value)
      | Error e -> Error (e, "write " ^ path))
  | Op_mkdir path -> (
      match Xs_store.mkdir store ~caller:0 (p path) with
      | Ok () -> Ok (Model.mkdir model path)
      | Error e -> Error (e, "mkdir " ^ path))
  | Op_rm path -> (
      let real = Xs_store.rm store ~caller:0 (p path) in
      match (real, Model.rm model path) with
      | Ok (), Some model' -> Ok model'
      | Error Xs_error.ENOENT, None -> Ok model
      | Ok (), None -> Error (Xs_error.EINVAL, "rm diverged (real ok)")
      | Error e, Some _ -> Error (e, "rm diverged (model ok) " ^ path)
      | Error _, None -> Ok model)
  | Op_read path -> (
      let real =
        match Xs_store.read store ~caller:0 (p path) with
        | Ok v -> Some v
        | Error _ -> None
      in
      if real = Model.read model path then Ok model
      else Error (Xs_error.EINVAL, "read diverged at " ^ path))
  | Op_dir path -> (
      let real =
        match Xs_store.directory store ~caller:0 (p path) with
        | Ok entries -> Some entries
        | Error _ -> None
      in
      let expected =
        if path <> "/" && Model.read model path = None then None
        else Some (Model.children model path)
      in
      if real = expected then Ok model
      else Error (Xs_error.EINVAL, "directory diverged at " ^ path))

let prop_store_matches_model =
  QCheck.Test.make ~name:"store agrees with a reference model" ~count:300
    (QCheck.make QCheck.Gen.(list_size (int_range 1 60) op_gen))
    (fun ops ->
      let store = Xs_store.create () in
      let rec go model = function
        | [] ->
            (* Final structural check: node counts agree. *)
            Model.count model = Xs_store.node_count store
        | op :: rest -> (
            match apply_both (store, model) op with
            | Ok model' -> go model' rest
            | Error (_, msg) -> QCheck.Test.fail_report msg)
      in
      go Model.initial ops)

(* ------------------------------------------------------------------ *)
(* Watch-registry model: the indexed (trie + per-owner) registry must
   agree with the obvious linear reference — a registration-order list
   filtered with is_prefix — on every observable, for random add /
   remove / remove_owner sequences probed at random modified paths. *)

module Xs_watch = Lightvm_xenstore.Xs_watch

module Watch_model = struct
  (* (owner, path, token) in registration order. *)
  type t = (int * Xs_path.t * string) list

  let add model ~owner ~path ~token = model @ [ (owner, path, token) ]

  let remove model ~owner ~path ~token =
    let keep (o, p, tk) =
      not (o = owner && Xs_path.equal p path && tk = token)
    in
    let model' = List.filter keep model in
    (model', List.length model' <> List.length model)

  let remove_owner model ~owner =
    let model' = List.filter (fun (o, _, _) -> o <> owner) model in
    (model', List.length model - List.length model')

  let count model = List.length model

  let count_for model ~owner =
    List.length (List.filter (fun (o, _, _) -> o = owner) model)

  let matching model ~modified =
    List.filter_map
      (fun (_, p, tk) ->
        let hit =
          if Xs_path.is_special p || Xs_path.is_special modified then
            Xs_path.equal p modified
          else Xs_path.is_prefix p ~of_:modified
        in
        if hit then Some (Xs_path.to_string p, tk) else None)
      model
end

type watch_op =
  | W_add of int * string * string
  | W_remove of int * string * string
  | W_remove_owner of int

let watch_path_gen =
  let open QCheck.Gen in
  let seg = oneofl [ "a"; "b"; "c" ] in
  frequency
    [
      ( 6,
        map
          (fun segs -> "/" ^ String.concat "/" segs)
          (list_size (int_range 1 4) seg) );
      (1, return "/");
      (1, oneofl [ "@introduceDomain"; "@releaseDomain" ]);
    ]

let watch_op_gen =
  let open QCheck.Gen in
  let owner = int_range 0 3 in
  let token = oneofl [ "t0"; "t1"; "t2" ] in
  frequency
    [
      (5, map3 (fun o p tk -> W_add (o, p, tk)) owner watch_path_gen token);
      (2, map3 (fun o p tk -> W_remove (o, p, tk)) owner watch_path_gen token);
      (1, map (fun o -> W_remove_owner o) owner);
    ]

let prop_watch_matches_model =
  QCheck.Test.make
    ~name:"indexed watch registry agrees with the linear reference"
    ~count:300
    (QCheck.make
       QCheck.Gen.(
         pair
           (list_size (int_range 1 40) watch_op_gen)
           (list_size (int_range 1 8) watch_path_gen)))
    (fun (ops, probes) ->
      let t = Xs_watch.create () in
      let model =
        List.fold_left
          (fun model op ->
            match op with
            | W_add (owner, path, token) ->
                let path = Xs_path.of_string path in
                Xs_watch.add t ~owner ~path ~token ~deliver:(fun _ -> ());
                Watch_model.add model ~owner ~path ~token
            | W_remove (owner, path, token) ->
                let path = Xs_path.of_string path in
                let removed = Xs_watch.remove t ~owner ~path ~token in
                let model', removed' =
                  Watch_model.remove model ~owner ~path ~token
                in
                if removed <> removed' then
                  QCheck.Test.fail_report
                    (Printf.sprintf "remove %d %s diverged" owner
                       (Xs_path.to_string path));
                model'
            | W_remove_owner owner ->
                let n = Xs_watch.remove_owner t ~owner in
                let model', n' = Watch_model.remove_owner model ~owner in
                if n <> n' then
                  QCheck.Test.fail_report
                    (Printf.sprintf "remove_owner %d: %d <> %d" owner n n');
                model')
          [] ops
      in
      if Xs_watch.count t <> Watch_model.count model then
        QCheck.Test.fail_report "count diverged";
      for owner = 0 to 3 do
        if
          Xs_watch.count_for t ~owner <> Watch_model.count_for model ~owner
        then
          QCheck.Test.fail_report
            (Printf.sprintf "count_for %d diverged" owner)
      done;
      (* Probe both the random paths and the specials: matching must
         agree in content *and* registration order. *)
      List.iter
        (fun probe ->
          let modified = Xs_path.of_string probe in
          let real =
            List.map
              (fun (p, tk, _) -> (Xs_path.to_string p, tk))
              (Xs_watch.matching t ~modified)
          in
          let expected = Watch_model.matching model ~modified in
          if real <> expected then
            QCheck.Test.fail_report
              (Printf.sprintf "matching %s diverged: [%s] <> [%s]" probe
                 (String.concat "; "
                    (List.map (fun (p, tk) -> p ^ ":" ^ tk) real))
                 (String.concat "; "
                    (List.map (fun (p, tk) -> p ^ ":" ^ tk) expected))))
        (probes @ [ "@introduceDomain"; "@releaseDomain"; "/" ]);
      true)

let suites =
  [
    ( "xenstore.model",
      [
        QCheck_alcotest.to_alcotest prop_store_matches_model;
        QCheck_alcotest.to_alcotest prop_watch_matches_model;
      ] );
  ]
