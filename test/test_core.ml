(* Tests for the public facade: Host assembly and the experiment
   harness (shape checks on small instances of each figure). *)

module Engine = Lightvm_sim.Engine
module Series = Lightvm_metrics.Series
module Table = Lightvm_metrics.Table
module Params = Lightvm_hv.Params
module Xen = Lightvm_hv.Xen
module Image = Lightvm_guest.Image
module Mode = Lightvm_toolstack.Mode
module Host = Lightvm.Host
module E = Lightvm.Experiment

let in_sim f () = ignore (Engine.run f)

let find_label label (series : E.labelled list) =
  match List.find_opt (fun l -> l.E.label = label) series with
  | Some l -> l.E.series
  | None ->
      Alcotest.failf "missing series %S (have: %s)" label
        (String.concat ", " (List.map (fun l -> l.E.label) series))

let last_y series =
  match Series.last_y series with
  | Some y -> y
  | None -> Alcotest.fail "empty series"

let first_y series =
  match Series.points series with
  | (_, y) :: _ -> y
  | [] -> Alcotest.fail "empty series"

(* ------------------------------------------------------------------ *)
(* Host *)

let test_host_boot_vm =
  in_sim (fun () ->
      let host = Host.create () in
      Alcotest.(check string) "default platform" "xeon-e5-1630v3"
        (Host.platform host).Params.name;
      let vm = Host.boot_vm host Image.daytime in
      Alcotest.(check int) "one vm" 1 (Host.vm_count host);
      Alcotest.(check bool) "memory accounted" true
        (Host.guest_mem_kb host > 3_600);
      Host.destroy_vm host vm;
      Alcotest.(check int) "destroyed" 0 (Host.vm_count host))

let test_host_inflated_image =
  in_sim (fun () ->
      let host = Host.create () in
      let fat = Image.with_inflated_image Image.daytime ~extra_mb:100. in
      let _vm, t_create, _ = Host.create_and_boot_time host fat in
      (* 100 MB at ~1 ms/MB dominates creation. *)
      Alcotest.(check bool)
        (Printf.sprintf "load dominates (%.0f ms)" (t_create *. 1e3))
        true
        (t_create > 0.09))

let test_host_modes_independent =
  in_sim (fun () ->
      let a = Host.create ~mode:Mode.xl () in
      let b = Host.create ~mode:Mode.lightvm () in
      ignore (Host.boot_vm a Image.daytime);
      Alcotest.(check int) "hosts isolated" 0 (Host.vm_count b))

(* ------------------------------------------------------------------ *)
(* Experiments (small instances) *)

let test_fig1 () =
  let table, slope = E.fig1_syscall_growth () in
  Alcotest.(check bool) "rows" true (List.length (Table.rows table) >= 10);
  Alcotest.(check bool) "positive growth" true (slope > 0.)

let test_fig2_linear () =
  let series = E.fig2_boot_vs_image_size ~sizes_mb:[ 0.; 100.; 500. ] () in
  match Series.points series with
  | [ (_, t0); (_, t100); (_, t500) ] ->
      (* ~1 ms per MB (Fig 2's slope). *)
      let slope = (t500 -. t100) /. 400. in
      Alcotest.(check bool)
        (Printf.sprintf "slope %.2f ms/MB" slope)
        true
        (slope > 0.8 && slope < 1.2);
      Alcotest.(check bool) "small base" true (t0 < 20.)
  | _ -> Alcotest.fail "wrong point count"

let test_fig4_ordering () =
  let series = E.fig4_instantiation ~n:25 () in
  let debian_boot = last_y (find_label "Debian Boot" series) in
  let tinyx_boot = last_y (find_label "Tinyx Boot" series) in
  let minios_boot = last_y (find_label "MiniOS Boot" series) in
  Alcotest.(check bool)
    (Printf.sprintf "Debian %.0f > Tinyx %.0f > MiniOS %.0f ms"
       debian_boot tinyx_boot minios_boot)
    true
    (debian_boot > tinyx_boot && tinyx_boot > minios_boot);
  Alcotest.(check bool) "Debian boots in seconds" true
    (debian_boot > 1000.);
  Alcotest.(check bool) "MiniOS boots in ms" true (minios_boot < 15.)

let test_fig5_devices_dominate () =
  let series = E.fig5_breakdown ~n:20 ~sample:5 () in
  let devices = last_y (find_label "devices" series) in
  let total =
    List.fold_left
      (fun acc (l : E.labelled) -> acc +. last_y l.E.series)
      0. series
  in
  Alcotest.(check bool) "devices biggest early" true
    (devices > 0.3 *. total)

let test_fig9_ordering () =
  let series = E.fig9_create_times ~n:40 () in
  let get label = last_y (find_label label series) in
  let xl = get "xl" in
  let chaos = get "chaos [XS]" in
  let lightvm = get "LightVM" in
  Alcotest.(check bool)
    (Printf.sprintf "xl %.0f > chaos %.1f > lightvm %.1f" xl chaos lightvm)
    true
    (xl > chaos && chaos > lightvm);
  Alcotest.(check bool) "lightvm ~4ms" true (lightvm < 6.)

let test_fig10_density () =
  let series = E.fig10_density ~vms:300 ~containers:300 () in
  let lightvm = find_label "LightVM" series in
  let docker = find_label "Docker" series in
  Alcotest.(check int) "all vms created" 300 (Series.length lightvm);
  Alcotest.(check bool) "vm creation stays in ms" true
    (Series.max_y lightvm < 50.);
  Alcotest.(check bool) "docker much slower per instance" true
    (first_y docker > 10. *. first_y lightvm)

let test_fig12_flat_lightvm () =
  let save, restore = E.fig12_checkpoint ~n:60 ~batch:10 () in
  let lv_save = find_label "LightVM" save in
  let xl_restore = find_label "xl" restore in
  let lv_restore = find_label "LightVM" restore in
  Alcotest.(check bool) "lightvm save flat" true
    (Series.max_y lv_save -. Series.min_y lv_save < 5.);
  Alcotest.(check bool)
    (Printf.sprintf "xl restore %.0f much slower than lightvm %.0f"
       (last_y xl_restore) (last_y lv_restore))
    true
    (last_y xl_restore > 10. *. last_y lv_restore)

let test_fig13_migration_times () =
  let series = E.fig13_migration ~n:40 ~batch:10 () in
  let lv = last_y (find_label "LightVM" series) in
  Alcotest.(check bool)
    (Printf.sprintf "LightVM migration ~60ms (%.0f)" lv)
    true
    (lv > 30. && lv < 120.)

let test_fig14_memory_ordering () =
  let series = E.fig14_memory ~n:100 ~sample:50 () in
  let get label = last_y (find_label label series) in
  let debian = get "Debian" in
  let tinyx = get "Tinyx" in
  let docker = get "Docker Micropython" in
  let minipython = get "Minipython" in
  let proc = get "Micropython Process" in
  Alcotest.(check bool)
    (Printf.sprintf "ordering %.0f > %.0f > %.0f; proc %.0f smallest"
       debian tinyx minipython proc)
    true
    (debian > tinyx && tinyx > minipython && minipython > proc);
  (* Docker's rss includes the engine: bigger than the unikernels at
     low counts. *)
  Alcotest.(check bool) "docker engine base visible" true (docker > 200.)

let test_fig15_ordering () =
  let series = E.fig15_cpu_usage ~n:100 ~sample:100 ~window:5. () in
  let get label = last_y (find_label label series) in
  Alcotest.(check bool)
    (Printf.sprintf "Debian %.2f%% > Tinyx %.3f%% > Unikernel %.4f%%"
       (get "Debian") (get "Tinyx") (get "Unikernel"))
    true
    (get "Debian" > get "Tinyx" && get "Tinyx" >= get "Unikernel")

let test_fig16c_levels () =
  let series = E.fig16c_tls ~instances:[ 1; 100; 1000 ] () in
  let bare = last_y (find_label "bare metal" series) in
  let uni = last_y (find_label "unikernel" series) in
  Alcotest.(check bool)
    (Printf.sprintf "bare %.2f ~5x unikernel %.2f" bare uni)
    true
    (bare /. uni > 4. && bare /. uni < 6.)

let test_headline_table () =
  let table = E.headline_numbers () in
  Alcotest.(check int) "seven rows" 7 (List.length (Table.rows table));
  (* Every measured cell is filled in. *)
  List.iter
    (fun row ->
      match row with
      | [ _; _; measured ] ->
          Alcotest.(check bool) "measured non-empty" true
            (String.length measured > 0)
      | _ -> Alcotest.fail "bad row shape")
    (Table.rows table)

let test_tinyx_table () =
  let table = E.tinyx_table () in
  Alcotest.(check int) "four apps" 4 (List.length (Table.rows table))

let suites =
  [
    ( "core.host",
      [
        Alcotest.test_case "boot vm" `Quick test_host_boot_vm;
        Alcotest.test_case "inflated image" `Quick test_host_inflated_image;
        Alcotest.test_case "hosts independent" `Quick
          test_host_modes_independent;
      ] );
    ( "core.experiment",
      [
        Alcotest.test_case "fig1" `Quick test_fig1;
        Alcotest.test_case "fig2 linear" `Quick test_fig2_linear;
        Alcotest.test_case "fig4 ordering" `Quick test_fig4_ordering;
        Alcotest.test_case "fig5 devices dominate" `Quick
          test_fig5_devices_dominate;
        Alcotest.test_case "fig9 ordering" `Quick test_fig9_ordering;
        Alcotest.test_case "fig10 density" `Quick test_fig10_density;
        Alcotest.test_case "fig12 checkpoint" `Quick
          test_fig12_flat_lightvm;
        Alcotest.test_case "fig13 migration" `Quick
          test_fig13_migration_times;
        Alcotest.test_case "fig14 memory" `Quick test_fig14_memory_ordering;
        Alcotest.test_case "fig15 cpu" `Quick test_fig15_ordering;
        Alcotest.test_case "fig16c levels" `Quick test_fig16c_levels;
        Alcotest.test_case "headline table" `Quick test_headline_table;
        Alcotest.test_case "tinyx table" `Quick test_tinyx_table;
      ] );
  ]
