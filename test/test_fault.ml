(* Fault-injection layer: spec parsing, determinism (equal seeds =>
   identical digests for any spec), toolstack retry behaviour, and the
   no-leak invariant after injected mid-pipeline failures. *)

module Engine = Lightvm_sim.Engine
module Fault = Lightvm_sim.Fault
module Mode = Lightvm_toolstack.Mode
module Toolstack = Lightvm_toolstack.Toolstack
module Vmconfig = Lightvm_toolstack.Vmconfig
module Xs_server = Lightvm_xenstore.Xs_server
module Image = Lightvm_guest.Image
module Host = Lightvm.Host

let run_sim f =
  let result = ref None in
  ignore
    (Engine.run (fun () ->
         result := Some (f ());
         Engine.stop ()));
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation did not complete"

let spec_of_string s =
  match Fault.parse_spec s with
  | Ok spec -> spec
  | Error msg -> Alcotest.failf "parse_spec %S: %s" s msg

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let test_parse_roundtrip () =
  let cases =
    [ "";
      "xs.eagain:0.5";
      "xs.eagain:0.5,hotplug.hang:@3";
      "create.phase*:0.01,xs.equota";
      "migrate.corrupt:@1" ]
  in
  List.iter
    (fun s ->
      let once = Fault.spec_to_string (spec_of_string s) in
      let twice = Fault.spec_to_string (spec_of_string once) in
      Alcotest.(check string) (Printf.sprintf "roundtrip %S" s) once twice)
    cases;
  Alcotest.(check string) "empty spec renders empty" ""
    (Fault.spec_to_string Fault.empty_spec)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let test_parse_wildcard () =
  let spec = spec_of_string "create.phase*:0.25" in
  let rendered = Fault.spec_to_string spec in
  List.iter
    (fun i ->
      let entry = Printf.sprintf "create.phase%d:0.25" i in
      Alcotest.(check bool)
        (entry ^ " present") true
        (contains ~sub:entry rendered))
    [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]

let test_parse_override () =
  (* Later entries win for the same point. *)
  let spec = spec_of_string "xs.eagain:0.1,xs.eagain:@4" in
  Alcotest.(check string) "override" "xs.eagain:@4" (Fault.spec_to_string spec)

let test_parse_errors () =
  let bad s =
    match Fault.parse_spec s with
    | Ok _ -> Alcotest.failf "parse_spec %S unexpectedly succeeded" s
    | Error _ -> ()
  in
  bad "no.such.point:0.5";
  bad "nosuchprefix*:0.5";
  bad "xs.eagain:1.5";
  bad "xs.eagain:@0";
  bad "xs.eagain:cheese"

let test_scale () =
  let spec = spec_of_string "xs.eagain:0.2,hotplug.hang:@8" in
  Alcotest.(check string) "x2" "xs.eagain:0.4,hotplug.hang:@4"
    (Fault.spec_to_string (Fault.scale spec 2.));
  Alcotest.(check bool) "x0 is empty" true
    (Fault.spec_is_empty (Fault.scale spec 0.))

(* ------------------------------------------------------------------ *)
(* Fire semantics outside / under the empty spec *)

let test_fire_unregistered_raises () =
  Alcotest.check_raises "typo fails loudly"
    (Invalid_argument "Fault.fire: unregistered point \"xs.tpyo\"")
    (fun () -> ignore (Fault.fire "xs.tpyo"))

let test_empty_spec_inert () =
  Alcotest.(check bool) "no injector: no fire" false (Fault.fire "xs.eagain");
  let inj = Fault.create ~seed:1L Fault.empty_spec in
  Fault.with_injector inj (fun () ->
      Alcotest.(check bool) "not active" false (Fault.active ());
      Alcotest.(check bool) "empty spec: no fire" false (Fault.fire "xs.eagain"));
  Alcotest.(check int) "no counters" 0 (List.length (Fault.counts inj));
  Alcotest.(check int) "nothing injected" 0 (Fault.injected_total inj)

(* ------------------------------------------------------------------ *)
(* Determinism: equal (seed, spec) => identical run digests. The digest
   covers each attempt's outcome and simulated timing (exact hex
   floats) plus the injector's per-point counters. *)

let reliability_modes = [ Mode.xl; Mode.chaos_xs; Mode.chaos_noxs ]

let attempt_config i =
  Vmconfig.for_image ~nics:1 ~disks:0
    ~name:(Printf.sprintf "flt-%d" i)
    Image.daytime

(* Warm up with one fault-free create+destroy first: the first creation
   materialises shared store directories (/vm, the backend kind levels)
   that persist for the host's lifetime, so resource snapshots are only
   comparable from the second creation on (see DESIGN.md "Failure
   model"). *)
let warm_host mode =
  let host = Host.create ~mode () in
  let warm = Host.boot_vm host Image.daytime in
  Host.destroy_vm host warm;
  host

let run_digest ~mode ~seed spec =
  let inj = Fault.create ~seed spec in
  let buf = Buffer.create 256 in
  run_sim (fun () ->
      let host = warm_host mode in
      Fault.with_injector inj (fun () ->
          for i = 1 to 3 do
            let t0 = Engine.now () in
            (match Toolstack.create_vm (Host.toolstack host) (attempt_config i)
             with
            | Ok _ -> Buffer.add_string buf "ok "
            | Error e -> Buffer.add_string buf ("err " ^ e ^ " "));
            Buffer.add_string buf (Printf.sprintf "%h\n" (Engine.now () -. t0))
          done));
  List.iter
    (fun (p, (checks, injected)) ->
      Buffer.add_string buf (Printf.sprintf "%s %d/%d\n" p injected checks))
    (Fault.counts inj);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let spec_string_gen =
  QCheck.Gen.(
    let entry (name, _) =
      frequency
        [ (3, return None);
          ( 2,
            map
              (fun p -> Some (Printf.sprintf "%s:%.3f" name p))
              (float_bound_inclusive 0.4) );
          ( 1,
            map
              (fun k -> Some (Printf.sprintf "%s:@%d" name (1 + k)))
              (int_bound 7) ) ]
    in
    map
      (fun entries -> String.concat "," (List.filter_map Fun.id entries))
      (flatten_l (List.map entry Fault.points)))

let prop_equal_seed_equal_digest =
  QCheck.Test.make ~count:6 ~name:"fault: equal (seed, spec) => equal digest"
    (QCheck.make
       QCheck.Gen.(pair spec_string_gen (map Int64.of_int int))
       ~print:(fun (s, seed) -> Printf.sprintf "spec=%S seed=%Ld" s seed))
    (fun (spec_str, seed) ->
      let spec = spec_of_string spec_str in
      let mode = Mode.chaos_xs in
      String.equal (run_digest ~mode ~seed spec) (run_digest ~mode ~seed spec))

(* ------------------------------------------------------------------ *)
(* Retry: a periodic transaction conflict is absorbed by the client's
   bounded retry loop — creation still succeeds, and the daemon's
   conflict counter proves the conflicts really happened. *)

let test_eagain_retry_absorbed () =
  run_sim (fun () ->
      let host = warm_host Mode.chaos_xs in
      (* Each creation commits one frontend transaction, so with @2
         the 2nd and 3rd creations conflict once each (checks 2 and 4)
         and their single retry (checks 3 and 5) goes through. *)
      let inj = Fault.create ~seed:3L (spec_of_string "xs.eagain:@2") in
      Fault.with_injector inj (fun () ->
          for i = 1 to 3 do
            match Toolstack.create_vm (Host.toolstack host) (attempt_config i)
            with
            | Ok _ -> ()
            | Error e ->
                Alcotest.failf "create %d failed despite retries: %s" i e
          done);
      let counters =
        Xs_server.counters (Toolstack.xs_server (Host.toolstack host))
      in
      Alcotest.(check bool) "conflicts recorded" true
        (counters.Xs_server.tx_conflicts > 0);
      Alcotest.(check bool) "faults were injected" true
        (Fault.injected_total inj > 0))

(* ------------------------------------------------------------------ *)
(* No-leak invariant: with any single creation-path point firing on
   every check, the attempt either fails and leaves every resource
   count exactly as before (rollback released the partially-built
   domain), or succeeds because the point is inert for that mode (e.g.
   xs.* under noxs, backend pre-allocation under XenStore). *)

let creation_points =
  [ "xs.eagain"; "xs.equota"; "create.phase1"; "create.phase2";
    "create.phase3"; "create.phase4"; "create.phase5"; "create.phase6";
    "create.phase7"; "create.phase8"; "create.phase9"; "hotplug.hang";
    "evtchn.alloc"; "gnttab.alloc" ]

let inert mode point =
  match point with
  | "xs.eagain" | "xs.equota" -> mode.Mode.registry = Mode.Noxs
  | "evtchn.alloc" | "gnttab.alloc" -> mode.Mode.registry = Mode.Xenstore
  | _ -> false

let test_no_leak_after_injected_failure () =
  List.iter
    (fun mode ->
      List.iter
        (fun point ->
          let inj = Fault.create ~seed:11L (spec_of_string point) in
          run_sim (fun () ->
              let host = warm_host mode in
              let before = Host.resources host in
              let outcome =
                Fault.with_injector inj (fun () ->
                    Toolstack.create_vm (Host.toolstack host)
                      (attempt_config 1))
              in
              match outcome with
              | Error _ -> (
                  match Host.check_leak host ~before with
                  | Ok () -> ()
                  | Error leaked ->
                      Alcotest.failf "%s under %s leaked: %s" (Mode.name mode)
                        point leaked)
              | Ok _ ->
                  if not (inert mode point) then
                    Alcotest.failf "%s under %s unexpectedly succeeded"
                      (Mode.name mode) point))
        creation_points)
    reliability_modes

let suites =
  [
    ( "sim.fault",
      [
        Alcotest.test_case "spec roundtrip" `Quick test_parse_roundtrip;
        Alcotest.test_case "wildcard expansion" `Quick test_parse_wildcard;
        Alcotest.test_case "later entry overrides" `Quick test_parse_override;
        Alcotest.test_case "malformed specs rejected" `Quick test_parse_errors;
        Alcotest.test_case "scale" `Quick test_scale;
        Alcotest.test_case "unregistered point raises" `Quick
          test_fire_unregistered_raises;
        Alcotest.test_case "empty spec is inert" `Quick test_empty_spec_inert;
        QCheck_alcotest.to_alcotest prop_equal_seed_equal_digest;
      ] );
    ( "toolstack.fault",
      [
        Alcotest.test_case "EAGAIN absorbed by retry" `Quick
          test_eagain_retry_absorbed;
        Alcotest.test_case "no leak after injected failure" `Slow
          test_no_leak_after_injected_failure;
      ] );
  ]
