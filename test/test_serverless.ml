(* The open-loop serverless family (DESIGN.md section 12): the
   determinism invariant (equal seed => equal digest across the
   jobs x partition matrix and across snapshot-forked vs unbroken
   warm-pool cells), the queueing core against M/M/k theory, the
   autoscaler's exact resource accounting after a drain, and the
   streaming quantile accumulator it all reports through. *)

module E = Lightvm.Experiment
module Engine = Lightvm_sim.Engine
module Rng = Lightvm_sim.Rng
module Series = Lightvm_metrics.Series
module Quantiles = Lightvm_metrics.Quantiles
module Vmm = Lightvm_cluster.Vmm
module S = Lightvm_serverless.Serverless
module A = Lightvm_serverless.Arrival

let run_sim f =
  let result = ref None in
  ignore
    (Engine.run (fun () ->
         result := Some (f ());
         Engine.stop ()));
  Option.get !result

(* Exact-hex render of a piece: any float drift shows in the digest. *)
let piece_digest (p : E.piece) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (l : E.labelled) ->
      Buffer.add_string buf ("# " ^ l.E.label ^ "\n");
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%h\t%h\n" x y))
        (Series.points l.E.series))
    p.E.p_series;
  List.iter (fun n -> Buffer.add_string buf (n ^ "\n")) p.E.p_notes;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let result_digest (r : E.result) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (l : E.labelled) ->
      Buffer.add_string buf ("# " ^ l.E.label ^ "\n");
      List.iter
        (fun (x, y) -> Buffer.add_string buf (Printf.sprintf "%h\t%h\n" x y))
        (Series.points l.E.series))
    r.E.series;
  List.iter (fun n -> Buffer.add_string buf (n ^ "\n")) r.E.notes;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* ------------------------------------------------------------------ *)
(* Determinism: the fleet cell across the jobs x partition matrix. *)

let fleet_arb =
  QCheck.make
    ~print:(fun (requests, seed) ->
      Printf.sprintf "requests=%d seed=%Ld" requests seed)
    QCheck.Gen.(pair (int_range 40 160) (map Int64.of_int (int_bound 10_000)))

let prop_fleet_matrix =
  QCheck.Test.make
    ~name:"serverless fleet digests identical across partition and sim_jobs"
    ~count:5 fleet_arb (fun (requests, seed) ->
      let digest partition sim_jobs =
        piece_digest
          (E.serverless_fleet ~requests ~partition ~sim_jobs ~seed ())
      in
      let reference = digest `Host 1 in
      String.equal reference (digest `Host 4)
      && String.equal reference (digest `Host 8)
      && String.equal reference (digest `None 1))

(* The whole family plan: worker-pool jobs must not change the render
   either (jobs only schedules; every cell owns its streams). *)
let test_family_jobs_matrix () =
  let digest jobs partition =
    match E.plan ~n:250 ~partition "serverless" with
    | None -> Alcotest.fail "serverless plan missing"
    | Some p -> result_digest (E.run_plan ~jobs p)
  in
  let reference = digest 1 `Host in
  Alcotest.(check string) "jobs=8" reference (digest 8 `Host);
  Alcotest.(check string) "partition=none" reference (digest 1 `None)

(* Warm-pool cells forked from the prefix image must render exactly as
   the unbroken twin that builds the host inline. *)
let test_snapshot_matches_unbroken () =
  let cell snapshot =
    E.prefix_cache_reset ();
    match
      E.serverless_cell_piece ~snapshot ~requests:200 ~policy:"warmpool"
        ~arrival:(A.Poisson { rate = E.serverless_rate })
        ~seed:7L ()
    with
    | Ok p -> piece_digest p
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check string) "fork == unbroken" (cell false) (cell true)

(* ------------------------------------------------------------------ *)
(* Queueing core vs M/M/k theory: with pure-delay service (no VM
   plumbing, no dom0 contention) the dispatcher is exactly an M/M/k
   queue, so the measured mean sojourn must approach Erlang C's
   prediction. rho = 0.75, ~21k requests; measured error is ~5%, the
   bound leaves room for engine evolution without hiding a real bug. *)

let test_mmk_mean_sojourn () =
  let rate = 300. and service_mean = 0.01 and servers = 4 in
  let stats =
    run_sim (fun () ->
        let root = Rng.create 2024L in
        let arrival_rng = Rng.split root in
        let service_rng = Rng.split root in
        S.run_open_loop
          ~gen:(A.generator (A.Poisson { rate }) ~rng:arrival_rng)
          ~service_rng ~duration:70. ~concurrency:servers ~service_mean
          ~sample_every:1.
          ~invoke:(fun _ service_s ->
            Engine.sleep service_s;
            true)
          ~pool_stats:(fun () -> (0, 0))
          ())
  in
  let measured = Quantiles.mean stats.S.latency in
  let analytic =
    S.erlang_c_wait ~rate ~service_mean ~servers +. service_mean
  in
  let rel = abs_float (measured -. analytic) /. analytic in
  if rel > 0.15 then
    Alcotest.failf "mean sojourn %.6fs vs Erlang C %.6fs (rel err %.3f)"
      measured analytic rel;
  Alcotest.(check bool)
    "all arrivals completed"
    true
    (stats.S.completed = stats.S.requests && stats.S.failures = 0)

(* An unstable offered load must be rejected, not return nonsense. *)
let test_erlang_c_rejects_unstable () =
  Alcotest.check_raises "rate >= capacity"
    (Invalid_argument
       "Serverless.erlang_c_wait: unstable system (rate >= capacity)")
    (fun () -> ignore (S.erlang_c_wait ~rate:500. ~service_mean:0.01 ~servers:4))

(* ------------------------------------------------------------------ *)
(* Autoscaler accounting: after a full warm-pool run, scaling the pool
   target to zero must release every domain, frame, event channel,
   grant, control page and store node the pool and its instances ever
   held — bit-exact against a snapshot taken at the same quiescent
   state before the run. *)

let test_autoscaler_drain_no_leak () =
  let leak =
    run_sim (fun () ->
        let host = Vmm.create () in
        let cfg policy =
          {
            (S.default_config
               ~arrival:(A.Poisson { rate = E.serverless_rate })
               ~duration:1.5 policy)
            with
            S.seed = 11L;
          }
        in
        (* First cell materialises the host's persistent store
           directories (they live for the host's lifetime), then the
           pool is drained and the refill daemon left to quiesce:
           that's the reference state. *)
        ignore (S.run_node (cfg S.Warm_pool) host);
        Engine.sleep 2.;
        S.warm_pool host ~target:0;
        let before = Vmm.resources host in
        ignore (S.run_node (cfg S.Warm_pool) host);
        Engine.sleep 2.;
        S.warm_pool host ~target:0;
        Vmm.check_leak host ~before)
  in
  match leak with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "autoscaler drain leaked: %s" msg

(* ------------------------------------------------------------------ *)
(* The streaming quantile accumulator. *)

let test_quantiles_nearest_rank () =
  let q = Quantiles.create () in
  List.iter (Quantiles.add q) [ 5.; 1.; 4.; 2.; 3. ];
  Alcotest.(check int) "count" 5 (Quantiles.count q);
  Alcotest.(check (float 1e-9)) "p0" 1. (Quantiles.quantile q 0.);
  Alcotest.(check (float 1e-9)) "p50" 3. (Quantiles.quantile q 0.5);
  Alcotest.(check (float 1e-9)) "p100" 5. (Quantiles.quantile q 1.);
  Alcotest.(check (float 1e-9)) "mean" 3. (Quantiles.mean q);
  (* adding after a quantile query invalidates the sorted cache *)
  Quantiles.add q 0.;
  Alcotest.(check (float 1e-9)) "p0 after add" 0. (Quantiles.quantile q 0.);
  let m = Quantiles.create () in
  Quantiles.add m 10.;
  Quantiles.merge_into m ~src:q;
  Alcotest.(check int) "merged count" 7 (Quantiles.count m);
  Alcotest.(check (float 1e-9)) "merged max" 10. (Quantiles.quantile m 1.)

let suites =
  [
    ( "serverless",
      [
        Alcotest.test_case "family digest: jobs x partition" `Quick
          test_family_jobs_matrix;
        Alcotest.test_case "warm cell: fork == unbroken" `Quick
          test_snapshot_matches_unbroken;
        QCheck_alcotest.to_alcotest prop_fleet_matrix;
        Alcotest.test_case "M/M/k mean sojourn vs Erlang C" `Quick
          test_mmk_mean_sojourn;
        Alcotest.test_case "Erlang C rejects unstable load" `Quick
          test_erlang_c_rejects_unstable;
        Alcotest.test_case "autoscaler drain leaks nothing" `Quick
          test_autoscaler_drain_no_leak;
        Alcotest.test_case "quantiles: nearest rank, merge" `Quick
          test_quantiles_nearest_rank;
      ] );
  ]
