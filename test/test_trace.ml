(* Tests for the span-and-counter tracing subsystem (lib/trace): span
   nesting against the virtual clock, ring eviction, counters for a
   known creation path, Chrome JSON export, and the guarantee that the
   Fig 5 breakdown is unchanged by turning the tracer on. *)

module Engine = Lightvm_sim.Engine
module Series = Lightvm_metrics.Series
module Trace = Lightvm_trace.Trace
module Trace_export = Lightvm_trace.Trace_export
module Xen = Lightvm_hv.Xen
module Image = Lightvm_guest.Image
module Mode = Lightvm_toolstack.Mode
module Create = Lightvm_toolstack.Create
module Toolstack = Lightvm_toolstack.Toolstack
module Xs_server = Lightvm_xenstore.Xs_server
module Host = Lightvm.Host
module E = Lightvm.Experiment

(* Guests keep periodic timers alive, so experiments stop the engine
   once the body returns (same shape as Experiment.run_sim). *)
let run_sim f =
  let result = ref None in
  ignore
    (Engine.run (fun () ->
         result := Some (f ());
         Engine.stop ()));
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "simulation did not complete"

(* Every test leaves the global tracer off and empty. *)
let with_trace ?capacity f =
  Trace.enable ?capacity ();
  Fun.protect ~finally:Trace.disable f

(* ------------------------------------------------------------------ *)
(* Span nesting and virtual-clock ordering *)

let test_span_nesting () =
  with_trace (fun () ->
      ignore
        (Engine.run (fun () ->
             Trace.Span.with_ ~category:"t" "outer" (fun () ->
                 Engine.sleep 1.0;
                 Trace.Span.with_ ~category:"t" "inner" (fun () ->
                     Engine.sleep 2.0);
                 Engine.sleep 0.5)));
      match Trace.spans () with
      | [ inner; outer ] ->
          (* completion order: the inner span ends first *)
          Alcotest.(check string) "inner first" "inner" inner.Trace.sp_name;
          Alcotest.(check string) "outer second" "outer" outer.Trace.sp_name;
          Alcotest.(check int) "inner depth" 1 inner.Trace.sp_depth;
          Alcotest.(check int) "outer depth" 0 outer.Trace.sp_depth;
          Alcotest.(check bool) "inner within outer" true
            (outer.Trace.sp_start <= inner.Trace.sp_start
            && inner.Trace.sp_end <= outer.Trace.sp_end);
          Alcotest.(check (float 1e-9)) "outer duration" 3.5
            (Trace.duration outer);
          Alcotest.(check (float 1e-9)) "inner duration" 2.0
            (Trace.duration inner);
          (* self time excludes the nested span *)
          Alcotest.(check (float 1e-9)) "outer self" 1.5 outer.Trace.sp_self;
          Alcotest.(check (float 1e-9)) "inner self" 2.0 inner.Trace.sp_self
      | spans ->
          Alcotest.failf "expected 2 spans, got %d" (List.length spans))

let test_ring_eviction_keeps_newest () =
  with_trace ~capacity:4 (fun () ->
      ignore
        (Engine.run (fun () ->
             for i = 1 to 10 do
               Trace.Span.with_ ~category:"t" (string_of_int i) (fun () ->
                   Engine.sleep 1.0)
             done));
      Alcotest.(check int) "retained" 4 (List.length (Trace.spans ()));
      Alcotest.(check int) "evicted" 6 (Trace.evicted ());
      Alcotest.(check int) "total ever recorded" 10 (Trace.span_count ());
      Alcotest.(check (list string))
        "newest kept, oldest first"
        [ "7"; "8"; "9"; "10" ]
        (List.map (fun s -> s.Trace.sp_name) (Trace.spans ())))

(* ------------------------------------------------------------------ *)
(* Counters for a single chaos [XS] create *)

let test_create_counters () =
  with_trace (fun () ->
      run_sim (fun () ->
          let host = Host.create ~mode:Mode.chaos_xs () in
          ignore (Host.boot_vm host Image.daytime);
          let ts = Host.toolstack host in
          let env = Toolstack.env ts in
          let c = Xs_server.counters (Toolstack.xs_server ts) in
          (* The tracer's tallies must agree with the components' own
             counters. *)
          Alcotest.(check int) "hypercalls"
            (Xen.hypercalls env.Create.xen)
            (Trace.Counter.value "hv.hypercalls");
          Alcotest.(check int) "two crossings per hypercall"
            (2 * Xen.hypercalls env.Create.xen)
            (Trace.Counter.value "hv.crossings");
          let xs_ops =
            List.fold_left
              (fun acc (name, v) ->
                if String.starts_with ~prefix:"xs.op." name then acc + v
                else acc)
              0 (Trace.Counter.all ())
          in
          Alcotest.(check int) "per-type op counters sum to daemon ops"
            c.Xs_server.ops xs_ops;
          Alcotest.(check int) "watch fires"
            c.Xs_server.watch_events
            (Trace.Counter.value "xs.watch_fires");
          (* oxenstored: 4 softirqs and 4 crossings per message. *)
          Alcotest.(check int) "softirqs" (4 * c.Xs_server.ops)
            (Trace.Counter.value "xs.softirqs");
          Alcotest.(check int) "xs crossings" (4 * c.Xs_server.ops)
            (Trace.Counter.value "xs.crossings");
          (* One create = the full 9-phase pipeline, one span each. *)
          let create_spans =
            List.filter
              (fun s -> s.Trace.sp_category = "create")
              (Trace.spans ())
          in
          Alcotest.(check int) "9 phase spans" 9 (List.length create_spans);
          (* Charged virtual time is attributed per category. *)
          Alcotest.(check bool) "xs.message charge recorded" true
            (match List.assoc_opt "xs.message" (Trace.charged ()) with
            | Some t -> t > 0.
            | None -> false)))

(* ------------------------------------------------------------------ *)
(* Chrome JSON export *)

(* A deliberately small JSON parser — just enough structure to prove
   the exporter's output parses: values, objects, arrays, strings with
   escapes, numbers, literals. *)
let check_json s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = Alcotest.failf "json: %s at offset %d" msg !pos in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      incr pos
    done
  in
  let expect c =
    if peek () = Some c then incr pos
    else fail (Printf.sprintf "expected %c" c)
  in
  let string_lit () =
    expect '"';
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (match peek () with
            | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
                incr pos
            | Some 'u' -> pos := !pos + 5
            | _ -> fail "bad escape");
            loop ()
        | _ ->
            incr pos;
            loop ()
    in
    loop ()
  in
  let number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    if !pos = start then fail "bad number"
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        expect '{';
        skip_ws ();
        if peek () = Some '}' then incr pos
        else
          let rec members () =
            skip_ws ();
            string_lit ();
            skip_ws ();
            expect ':';
            value ();
            skip_ws ();
            if peek () = Some ',' then begin
              incr pos;
              members ()
            end
            else expect '}'
          in
          members ()
    | Some '[' ->
        expect '[';
        skip_ws ();
        if peek () = Some ']' then incr pos
        else
          let rec elements () =
            value ();
            skip_ws ();
            if peek () = Some ',' then begin
              incr pos;
              elements ()
            end
            else expect ']'
          in
          elements ()
    | Some '"' -> string_lit ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> pos := !pos + 4
    | Some 'f' -> pos := !pos + 5
    | Some 'n' -> pos := !pos + 4
    | _ -> fail "expected a value"
  in
  value ();
  skip_ws ();
  if !pos <> n then fail "trailing garbage"

let count_substring hay needle =
  let rec loop from acc =
    match String.index_from_opt hay from needle.[0] with
    | None -> acc
    | Some i ->
        if
          i + String.length needle <= String.length hay
          && String.sub hay i (String.length needle) = needle
        then loop (i + 1) (acc + 1)
        else loop (i + 1) acc
  in
  loop 0 0

let test_chrome_json () =
  with_trace (fun () ->
      run_sim (fun () ->
          let host = Host.create ~mode:Mode.xl () in
          ignore (Host.boot_vm host Image.daytime));
      let json = Trace_export.to_chrome_json () in
      check_json json;
      Alcotest.(check bool) "has traceEvents" true
        (count_substring json "\"traceEvents\"" = 1);
      (* One complete ("X") event per retained span, one counter ("C")
         event per counter. *)
      Alcotest.(check int) "one X event per span"
        (List.length (Trace.spans ()))
        (count_substring json "\"ph\":\"X\"");
      Alcotest.(check int) "one C event per counter"
        (List.length (Trace.Counter.all ()))
        (count_substring json "\"ph\":\"C\""))

(* ------------------------------------------------------------------ *)
(* The Fig 5 breakdown is bit-identical with the tracer on *)

let test_fig5_breakdown_unchanged () =
  Trace.disable ();
  let baseline = E.fig5_breakdown ~n:6 ~sample:2 () in
  let traced =
    with_trace ~capacity:100_000 (fun () ->
        E.fig5_breakdown ~n:6 ~sample:2 ())
  in
  List.iter2
    (fun (a : E.labelled) (b : E.labelled) ->
      Alcotest.(check string) "label" a.E.label b.E.label;
      let pa = Series.points a.E.series and pb = Series.points b.E.series in
      Alcotest.(check int) "point count" (List.length pa) (List.length pb);
      List.iter2
        (fun (xa, ya) (xb, yb) ->
          Alcotest.(check (float 0.)) "x" xa xb;
          Alcotest.(check (float 0.)) "y (bit-identical)" ya yb)
        pa pb)
    baseline traced

(* ------------------------------------------------------------------ *)

let suites =
  [
    ( "trace",
      [
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "ring eviction" `Quick
          test_ring_eviction_keeps_newest;
        Alcotest.test_case "create counters" `Quick test_create_counters;
        Alcotest.test_case "chrome json" `Quick test_chrome_json;
        Alcotest.test_case "fig5 unchanged" `Quick
          test_fig5_breakdown_unchanged;
      ] );
  ]
