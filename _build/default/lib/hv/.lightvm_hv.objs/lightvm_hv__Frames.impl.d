lib/hv/frames.ml: Hashtbl List Option
