lib/hv/frames.mli:
