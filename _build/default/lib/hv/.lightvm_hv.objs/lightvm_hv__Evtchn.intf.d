lib/hv/evtchn.mli:
