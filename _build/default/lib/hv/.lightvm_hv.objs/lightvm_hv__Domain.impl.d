lib/hv/domain.ml: Format Lightvm_sim
