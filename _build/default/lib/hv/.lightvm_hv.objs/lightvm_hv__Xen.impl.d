lib/hv/xen.ml: Devpage Domain Evtchn Frames Fun Gnttab Hashtbl Lightvm_sim List Option Params
