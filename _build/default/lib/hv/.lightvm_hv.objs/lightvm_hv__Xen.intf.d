lib/hv/xen.mli: Devpage Domain Evtchn Gnttab Lightvm_sim Params
