lib/hv/params.ml: Float
