lib/hv/gnttab.ml: Hashtbl Option
