lib/hv/evtchn.ml: Hashtbl Lightvm_sim List Option
