lib/hv/devpage.ml: Hashtbl List
