lib/hv/devpage.mli:
