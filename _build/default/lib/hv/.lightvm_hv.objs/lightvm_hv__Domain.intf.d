lib/hv/domain.mli: Format
