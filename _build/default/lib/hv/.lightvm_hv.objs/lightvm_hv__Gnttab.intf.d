lib/hv/gnttab.mli:
