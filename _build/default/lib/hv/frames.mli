(** Physical memory frame allocator.

    Tracks 4 KiB frames per owning domain. Allocation is bump-style
    accounting (the simulation never touches frame contents); the point
    is exact memory-footprint bookkeeping for the density and memory
    experiments (Figs 10 and 14): when the allocator is out of frames,
    VM creation fails with ENOMEM just like the real host. *)

type t

type error = ENOMEM

val create : total_kb:int -> t

val total_kb : t -> int

val used_kb : t -> int

val free_kb : t -> int

val alloc : t -> owner:int -> kb:int -> (unit, error) result
(** Rounded up to whole frames. *)

val free : t -> owner:int -> kb:int -> unit
(** Releases up to the owner's current holding; raises
    [Invalid_argument] when the owner does not hold that much. *)

val free_all : t -> owner:int -> int
(** Release everything held by [owner]; returns the KiB released. *)

val owned_kb : t -> owner:int -> int

val owners : t -> (int * int) list
(** [(owner, kb)] pairs, sorted by owner. *)
