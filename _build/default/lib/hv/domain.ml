type shutdown_reason = Poweroff | Reboot | Suspend | Crash

type state =
  | Paused
  | Running
  | Shutdown of shutdown_reason
  | Dying

type t = {
  domid : int;
  mutable name : string;
  mutable state : state;
  vcpus : int;
  mutable max_mem_kb : int;
  mutable core : int;
  mutable shell : bool;
  created_at : float;
}

let make ~domid ~name ~vcpus ~max_mem_kb ~core =
  {
    domid;
    name;
    state = Paused;
    vcpus;
    max_mem_kb;
    core;
    shell = false;
    created_at =
      (if Lightvm_sim.Engine.running () then Lightvm_sim.Engine.now ()
       else 0.);
  }

let domid t = t.domid
let name t = t.name
let set_name t name = t.name <- name
let state t = t.state
let set_state t s = t.state <- s
let vcpus t = t.vcpus
let max_mem_kb t = t.max_mem_kb
let set_max_mem_kb t kb = t.max_mem_kb <- kb
let core t = t.core
let set_core t c = t.core <- c
let is_shell t = t.shell
let set_shell t b = t.shell <- b
let created_at t = t.created_at
let is_running t = t.state = Running

let pp_state fmt = function
  | Paused -> Format.pp_print_string fmt "paused"
  | Running -> Format.pp_print_string fmt "running"
  | Shutdown Poweroff -> Format.pp_print_string fmt "shutdown(poweroff)"
  | Shutdown Reboot -> Format.pp_print_string fmt "shutdown(reboot)"
  | Shutdown Suspend -> Format.pp_print_string fmt "shutdown(suspend)"
  | Shutdown Crash -> Format.pp_print_string fmt "shutdown(crash)"
  | Dying -> Format.pp_print_string fmt "dying"
