(* Testbed descriptions and hypervisor cost constants.

   The paper uses three machines; speeds are relative to the 3.7 GHz
   Xeon E5-1630 v3 on which most microbenchmarks ran. *)

type platform = {
  name : string;
  cores : int; (* total physical cores *)
  dom0_cores : int; (* reserved for Dom0 *)
  speed : float; (* relative single-core speed *)
  ram_mb : int;
}

(* 4-core Intel Xeon E5-1630 v3 @ 3.7 GHz, 128 GiB DDR4 (Section 4.2,
   most of Section 6). Dom0 gets one core, guests share the other 3. *)
let xeon_e5_1630 =
  { name = "xeon-e5-1630v3"; cores = 4; dom0_cores = 1; speed = 1.0;
    ram_mb = 131_072 }

(* 4x AMD Opteron 6376 @ 2.3 GHz (64 cores), 128 GB DDR3 (Fig 10).
   Dom0 gets 4 cores, guests the other 60. *)
let amd_opteron_6376 =
  { name = "amd-opteron-6376"; cores = 64; dom0_cores = 4; speed = 0.62;
    ram_mb = 131_072 }

(* 14-core Intel Xeon E5-2690 v4 @ 2.6 GHz, 64 GB (Section 7 use cases). *)
let xeon_e5_2690 =
  { name = "xeon-e5-2690v4"; cores = 14; dom0_cores = 1; speed = 0.85;
    ram_mb = 65_536 }

let guest_cores p = p.cores - p.dom0_cores

type costs = {
  hypercall_base : float; (* privilege-level switch, in and out *)
  domctl_create : float; (* allocate and wire up struct domain *)
  domctl_destroy : float;
  vcpu_init : float; (* per vCPU *)
  per_page_populate : float; (* populate-physmap, per 4 KiB page *)
  per_page_copy : float; (* copying data into guest pages *)
  evtchn_op : float;
  gnttab_op : float;
  devpage_op : float; (* noxs device-page read/write hypercall *)
  page_size_kb : int;
  (* Hypervisor per-domain memory overhead: struct domain, p2m, shadow
     tables. *)
  domain_fixed_overhead_kb : int;
  domain_mem_overhead_fraction : float;
}

let default_costs =
  {
    hypercall_base = 1.0e-6;
    domctl_create = 120.0e-6;
    domctl_destroy = 150.0e-6;
    vcpu_init = 25.0e-6;
    per_page_populate = 0.45e-6;
    (* Calibrated to Fig 2: boot time grows ~1 ms per MB of image
       (256 pages/MB -> ~3.9 us/page). *)
    per_page_copy = 3.9e-6;
    evtchn_op = 4.0e-6;
    gnttab_op = 3.0e-6;
    devpage_op = 2.0e-6;
    page_size_kb = 4;
    domain_fixed_overhead_kb = 256;
    domain_mem_overhead_fraction = 0.0075;
  }

let pages_of_mb costs mb = mb * 1024 / costs.page_size_kb

let pages_of_mb_f costs mb =
  int_of_float (Float.ceil (mb *. 1024. /. float_of_int costs.page_size_kb))
