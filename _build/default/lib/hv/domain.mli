(** Per-domain state kept by the hypervisor. *)

type shutdown_reason = Poweroff | Reboot | Suspend | Crash

type state =
  | Paused  (** created but not scheduled *)
  | Running
  | Shutdown of shutdown_reason
  | Dying

type t

val make :
  domid:int -> name:string -> vcpus:int -> max_mem_kb:int -> core:int -> t

val domid : t -> int

val name : t -> string

val set_name : t -> string -> unit

val state : t -> state

val set_state : t -> state -> unit

val vcpus : t -> int

val max_mem_kb : t -> int

val set_max_mem_kb : t -> int -> unit

val core : t -> int
(** Physical core this domain's vCPU is pinned to (round-robin
    assignment at creation, as in the paper's experiments). *)

val set_core : t -> int -> unit

val is_shell : t -> bool
(** Pre-created, not yet specialised (split-toolstack pool, Fig 8). *)

val set_shell : t -> bool -> unit

val created_at : t -> float

val is_running : t -> bool

val pp_state : Format.formatter -> state -> unit
