(** noxs device memory pages (Section 5.1).

    For each VM the hypervisor keeps one special page listing the VM's
    devices: kind, backend domain, grant reference for the device
    control page, and event-channel port. Dom0 writes entries through a
    hypercall; the owning guest maps the page read-only and uses it to
    connect its frontends without ever touching the XenStore. *)

type kind = Vif | Vbd | Sysctl

type entry = {
  kind : kind;
  devid : int;
  backend_domid : int;
  grant_ref : int;
  evtchn_port : int;
}

type error = No_page | Access_denied | Page_full | No_entry

type t

val max_entries : int
(** Entries that fit one 4 KiB page. *)

val create : unit -> t

val setup : t -> domid:int -> unit
(** Allocate the (empty) device page for a new domain. *)

val teardown : t -> domid:int -> unit

val has_page : t -> domid:int -> bool

val write_entry :
  t -> caller:int -> domid:int -> entry -> (unit, error) result
(** Dom0 only. Replaces an existing entry with the same kind+devid. *)

val remove_entry :
  t -> caller:int -> domid:int -> kind:kind -> devid:int ->
  (unit, error) result
(** Dom0 only. *)

val read : t -> caller:int -> domid:int -> (entry list, error) result
(** The guest itself or Dom0; read-only mapping semantics. *)

val find :
  t -> caller:int -> domid:int -> kind:kind -> devid:int ->
  (entry, error) result

val kind_to_string : kind -> string
