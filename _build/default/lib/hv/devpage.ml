type kind = Vif | Vbd | Sysctl

type entry = {
  kind : kind;
  devid : int;
  backend_domid : int;
  grant_ref : int;
  evtchn_port : int;
}

type error = No_page | Access_denied | Page_full | No_entry

type t = { pages : (int, entry list ref) Hashtbl.t }

(* A 4 KiB page holds a header plus 32-byte entries. *)
let max_entries = 120

let create () = { pages = Hashtbl.create 32 }

let setup t ~domid =
  if not (Hashtbl.mem t.pages domid) then
    Hashtbl.replace t.pages domid (ref [])

let teardown t ~domid = Hashtbl.remove t.pages domid

let has_page t ~domid = Hashtbl.mem t.pages domid

let same_slot a ~kind ~devid = a.kind = kind && a.devid = devid

let write_entry t ~caller ~domid entry =
  if caller <> 0 then Error Access_denied
  else
    match Hashtbl.find_opt t.pages domid with
    | None -> Error No_page
    | Some page ->
        let others =
          List.filter
            (fun e -> not (same_slot e ~kind:entry.kind ~devid:entry.devid))
            !page
        in
        if List.length others >= max_entries then Error Page_full
        else begin
          page := others @ [ entry ];
          Ok ()
        end

let remove_entry t ~caller ~domid ~kind ~devid =
  if caller <> 0 then Error Access_denied
  else
    match Hashtbl.find_opt t.pages domid with
    | None -> Error No_page
    | Some page ->
        if List.exists (fun e -> same_slot e ~kind ~devid) !page then begin
          page := List.filter (fun e -> not (same_slot e ~kind ~devid)) !page;
          Ok ()
        end
        else Error No_entry

let read t ~caller ~domid =
  if caller <> 0 && caller <> domid then Error Access_denied
  else
    match Hashtbl.find_opt t.pages domid with
    | None -> Error No_page
    | Some page -> Ok !page

let find t ~caller ~domid ~kind ~devid =
  match read t ~caller ~domid with
  | Error e -> Error e
  | Ok entries -> (
      match List.find_opt (fun e -> same_slot e ~kind ~devid) entries with
      | Some e -> Ok e
      | None -> Error No_entry)

let kind_to_string = function
  | Vif -> "vif"
  | Vbd -> "vbd"
  | Sysctl -> "sysctl"
