type t = {
  total_frames : int;
  frame_kb : int;
  mutable used_frames : int;
  held : (int, int) Hashtbl.t; (* owner -> frames *)
}

type error = ENOMEM

let frame_kb = 4

let frames_of_kb kb = (kb + frame_kb - 1) / frame_kb

let create ~total_kb =
  if total_kb <= 0 then invalid_arg "Frames.create: total_kb <= 0";
  {
    total_frames = frames_of_kb total_kb;
    frame_kb;
    used_frames = 0;
    held = Hashtbl.create 64;
  }

let total_kb t = t.total_frames * t.frame_kb
let used_kb t = t.used_frames * t.frame_kb
let free_kb t = (t.total_frames - t.used_frames) * t.frame_kb

let holding t owner = Option.value ~default:0 (Hashtbl.find_opt t.held owner)

let alloc t ~owner ~kb =
  let frames = frames_of_kb kb in
  if t.used_frames + frames > t.total_frames then Error ENOMEM
  else begin
    t.used_frames <- t.used_frames + frames;
    Hashtbl.replace t.held owner (holding t owner + frames);
    Ok ()
  end

let free t ~owner ~kb =
  let frames = frames_of_kb kb in
  let held = holding t owner in
  if frames > held then
    invalid_arg "Frames.free: owner does not hold that much memory";
  t.used_frames <- t.used_frames - frames;
  if held = frames then Hashtbl.remove t.held owner
  else Hashtbl.replace t.held owner (held - frames)

let free_all t ~owner =
  let held = holding t owner in
  t.used_frames <- t.used_frames - held;
  Hashtbl.remove t.held owner;
  held * t.frame_kb

let owned_kb t ~owner = holding t owner * t.frame_kb

let owners t =
  List.sort compare
    (Hashtbl.fold (fun k v acc -> (k, v * t.frame_kb) :: acc) t.held [])
