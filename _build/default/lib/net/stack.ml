type t = {
  stack_name : string;
  cpu_multiplier : float;
  connection_overhead : float;
}

let linux =
  { stack_name = "linux"; cpu_multiplier = 1.0;
    connection_overhead = 30.0e-6 }

let lwip =
  { stack_name = "lwip"; cpu_multiplier = 5.0;
    connection_overhead = 140.0e-6 }

let per_request_cpu t ~base =
  (base *. t.cpu_multiplier) +. t.connection_overhead
