(** Fluid (rate-based) traffic allocation under CPU constraints.

    The firewall use case runs up to a thousand VMs, each forwarding a
    client's flow; the binding resource is guest CPU. Given each flow's
    offered rate and per-bit processing cost, this computes the max-min
    fair achieved rates per core — the waterfilling that produces the
    paper's linear-then-saturating aggregate throughput (Fig 16a). *)

type demand = {
  flow_id : int;
  offered_bps : float;
  cpu_per_bit : float;  (** reference-CPU seconds per bit processed *)
  core : int;
}

type allocation = {
  alloc_flow_id : int;
  achieved_bps : float;
}

val allocate :
  core_speed:float -> demands:demand list -> allocation list
(** Max-min fair CPU sharing per core: every flow gets the CPU to
    satisfy its offered rate if possible; otherwise the core's capacity
    is split max-min fairly. Results are in input order. *)

val total_bps : allocation list -> float
