type cipher = {
  cipher_name : string;
  server_private_key_cpu : float;
  symmetric_per_kb : float;
}

(* 1,400 req/s across 14 cores at 0.85 relative speed:
   14 * 0.85 / 1400 = 8.5 ms of reference CPU per request; most of it
   the RSA-1024 private-key operation plus apachebench-visible HTTP
   handling. *)
let rsa_1024 =
  { cipher_name = "RSA-1024"; server_private_key_cpu = 7.6e-3;
    symmetric_per_kb = 9.0e-6 }

let rsa_2048 =
  { cipher_name = "RSA-2048"; server_private_key_cpu = 28.0e-3;
    symmetric_per_kb = 9.0e-6 }

let ecdhe =
  { cipher_name = "ECDHE-RSA"; server_private_key_cpu = 2.4e-3;
    symmetric_per_kb = 9.0e-6 }

type message =
  | Client_hello
  | Server_hello
  | Certificate
  | Server_hello_done
  | Client_key_exchange
  | Change_cipher_spec
  | Finished

let handshake_messages =
  [ Client_hello; Server_hello; Certificate; Server_hello_done;
    Client_key_exchange; Change_cipher_spec; Finished ]

type state = { remaining : message list }

let initial = { remaining = handshake_messages }

let expected_next state =
  match state.remaining with [] -> None | m :: _ -> Some m

let message_name = function
  | Client_hello -> "ClientHello"
  | Server_hello -> "ServerHello"
  | Certificate -> "Certificate"
  | Server_hello_done -> "ServerHelloDone"
  | Client_key_exchange -> "ClientKeyExchange"
  | Change_cipher_spec -> "ChangeCipherSpec"
  | Finished -> "Finished"

let step state msg =
  match state.remaining with
  | [] -> Error "handshake already complete"
  | expected :: rest ->
      if expected = msg then Ok { remaining = rest }
      else
        Error
          (Printf.sprintf "expected %s, got %s" (message_name expected)
             (message_name msg))

let is_complete state = state.remaining = []

(* Non-RSA handshake work: parsing, certificate send, PRF, MAC. *)
let handshake_misc_cpu = 0.5e-3

let server_handshake_cpu cipher ~stack =
  Stack.per_request_cpu stack
    ~base:(cipher.server_private_key_cpu +. handshake_misc_cpu)

let serve_request_cpu cipher ~stack ~response_kb =
  server_handshake_cpu cipher ~stack
  +. (response_kb *. cipher.symmetric_per_kb *. stack.Stack.cpu_multiplier)
