(** A learning software bridge (the Linux bridge / Open vSwitch in
    Dom0).

    Ports deliver packets to callbacks. The bridge learns source
    addresses, floods unknown destinations and broadcasts, and has a
    finite packets-per-second capacity enforced by a token bucket —
    when offered load exceeds it, packets drop. Broadcasts (ARP) are
    dropped first, reproducing the overload behaviour in the paper's
    just-in-time instantiation experiment ("our Linux bridge is
    overloaded and starts dropping packets (mostly ARP packets)"). *)

type t

val create :
  ?capacity_pps:float -> ?latency:float -> ?queue_slots:int -> unit -> t
(** Defaults: 300k pps, 30 us forwarding latency, 2048 burst slots. *)

val attach : t -> port:int -> handler:(Packet.t -> unit) -> unit
(** Attach an endpoint; replaces any previous handler on that port. *)

val detach : t -> port:int -> unit

val send : t -> Packet.t -> unit
(** Inject a packet at its source port. Delivery happens after the
    forwarding latency; drops are silent (counted). *)

val learned : t -> int
(** Size of the forwarding database. *)

val ports : t -> int

val forwarded : t -> int

val dropped : t -> int

val dropped_broadcast : t -> int
