(** Packets on the software switch. Addresses are small integers (port
    ids double as MAC addresses); [Broadcast] reaches every port except
    the sender's. *)

type addr = Addr of int | Broadcast

type kind =
  | Arp_request
  | Arp_reply
  | Icmp_echo
  | Icmp_reply
  | Udp
  | Tcp

type t = {
  src : int;
  dst : addr;
  kind : kind;
  size_b : int;
  seq : int;  (** correlates requests with replies *)
  payload : string;  (** application data, e.g. a daytime string *)
}

val make :
  src:int -> dst:addr -> kind:kind -> ?size_b:int -> ?payload:string ->
  seq:int -> unit -> t
(** Default sizes: 64 B for ARP/ICMP, 1500 B otherwise, plus the
    payload length. *)

val is_broadcast : t -> bool

val kind_to_string : kind -> string

val pp : Format.formatter -> t -> unit
