(** Network stack profiles: the mature Linux TCP stack vs the
    lightweight lwip used by the unikernels — the paper attributes the
    TLS unikernel's 5x throughput deficit "mostly due to the
    inefficient lwip stack". *)

type t = {
  stack_name : string;
  cpu_multiplier : float;
      (** scales per-request/per-byte CPU relative to Linux *)
  connection_overhead : float;  (** extra CPU per TCP connection *)
}

val linux : t

val lwip : t

val per_request_cpu : t -> base:float -> float
