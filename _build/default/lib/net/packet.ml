type addr = Addr of int | Broadcast

type kind =
  | Arp_request
  | Arp_reply
  | Icmp_echo
  | Icmp_reply
  | Udp
  | Tcp

type t = {
  src : int;
  dst : addr;
  kind : kind;
  size_b : int;
  seq : int;
  payload : string;
}

let default_size = function
  | Arp_request | Arp_reply | Icmp_echo | Icmp_reply -> 64
  | Udp | Tcp -> 1500

let make ~src ~dst ~kind ?size_b ?(payload = "") ~seq () =
  let size_b =
    match size_b with
    | Some s -> s
    | None -> default_size kind + String.length payload
  in
  { src; dst; kind; size_b; seq; payload }

let is_broadcast t = t.dst = Broadcast

let kind_to_string = function
  | Arp_request -> "arp-request"
  | Arp_reply -> "arp-reply"
  | Icmp_echo -> "icmp-echo"
  | Icmp_reply -> "icmp-reply"
  | Udp -> "udp"
  | Tcp -> "tcp"

let pp fmt t =
  Format.fprintf fmt "%s %d->%s seq=%d" (kind_to_string t.kind) t.src
    (match t.dst with Addr a -> string_of_int a | Broadcast -> "*")
    t.seq
