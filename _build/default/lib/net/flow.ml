type demand = {
  flow_id : int;
  offered_bps : float;
  cpu_per_bit : float;
  core : int;
}

type allocation = {
  alloc_flow_id : int;
  achieved_bps : float;
}

(* Max-min fair allocation of one core's CPU among its flows: satisfy
   the smallest demands first, then split what remains equally. *)
let allocate_core ~capacity demands =
  let sorted =
    List.stable_sort
      (fun a b ->
        compare
          (a.offered_bps *. a.cpu_per_bit)
          (b.offered_bps *. b.cpu_per_bit))
      demands
  in
  let n = List.length sorted in
  let results = Hashtbl.create (max 1 n) in
  let rec fill remaining_capacity remaining_flows = function
    | [] -> ()
    | d :: rest ->
        let cpu_need = d.offered_bps *. d.cpu_per_bit in
        let fair_share = remaining_capacity /. float_of_int remaining_flows in
        let granted_cpu = Float.min cpu_need fair_share in
        let achieved =
          if d.cpu_per_bit <= 0. then d.offered_bps
          else Float.min d.offered_bps (granted_cpu /. d.cpu_per_bit)
        in
        Hashtbl.replace results d.flow_id achieved;
        fill
          (remaining_capacity -. granted_cpu)
          (remaining_flows - 1) rest
  in
  fill capacity n sorted;
  results

let allocate ~core_speed ~demands =
  let by_core = Hashtbl.create 16 in
  List.iter
    (fun d ->
      let existing =
        Option.value ~default:[] (Hashtbl.find_opt by_core d.core)
      in
      Hashtbl.replace by_core d.core (d :: existing))
    demands;
  let per_core_results = Hashtbl.create 16 in
  Hashtbl.iter
    (fun core ds ->
      Hashtbl.replace per_core_results core
        (allocate_core ~capacity:core_speed (List.rev ds)))
    by_core;
  List.map
    (fun d ->
      let core_results = Hashtbl.find per_core_results d.core in
      {
        alloc_flow_id = d.flow_id;
        achieved_bps = Hashtbl.find core_results d.flow_id;
      })
    demands

let total_bps allocations =
  List.fold_left (fun acc a -> acc +. a.achieved_bps) 0. allocations
