lib/net/tls.mli: Stack
