lib/net/stack.mli:
