lib/net/flow.ml: Float Hashtbl List Option
