lib/net/stack.ml:
