lib/net/flow.mli:
