lib/net/tls.ml: Printf Stack
