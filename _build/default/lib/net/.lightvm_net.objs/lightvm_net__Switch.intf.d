lib/net/switch.mli: Packet
