lib/net/switch.ml: Float Hashtbl Lightvm_sim Packet
