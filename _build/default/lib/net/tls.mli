(** TLS handshake state machine with a cost model (axtls, RSA-1024).

    The message flow is the classic RSA key-exchange handshake; the
    dominant cost is the server's private-key operation. Costs are
    calibrated so a 14-core Linux box saturates around 1,400 HTTPS
    requests/second with 1024-bit RSA, matching Fig 16c. *)

type cipher = {
  cipher_name : string;
  server_private_key_cpu : float;  (** RSA decrypt, reference seconds *)
  symmetric_per_kb : float;
}

val rsa_1024 : cipher

val rsa_2048 : cipher

val ecdhe : cipher

(** Handshake message types, in protocol order. *)
type message =
  | Client_hello
  | Server_hello
  | Certificate
  | Server_hello_done
  | Client_key_exchange
  | Change_cipher_spec
  | Finished

type state

val initial : state

val expected_next : state -> message option
(** [None] once the handshake is complete. *)

val step : state -> message -> (state, string) result
(** Advance the state machine; errors on out-of-order messages. *)

val is_complete : state -> bool

val handshake_messages : message list

val server_handshake_cpu : cipher -> stack:Stack.t -> float
(** Total server-side CPU for one handshake + small response. *)

val serve_request_cpu :
  cipher -> stack:Stack.t -> response_kb:float -> float
(** Full request: handshake + symmetric transfer of the response. *)
