(** The Tinyx build system, end to end: resolve the application's
    package set, assemble the distribution, configure and prune the
    kernel, and emit a bootable guest {!Lightvm_guest.Image.t} with the
    initramfs bundled into the kernel image. *)

type spec = {
  app : string option;  (** [None] builds a no-app base image *)
  platform : Kconfig_types.platform;
  whitelist : string list;
  prune_kernel : bool;
      (** run the test-driven option-disable loop (slower build,
          smaller kernel) *)
}

type report = {
  image : Lightvm_guest.Image.t;
  packages : string list;
  blacklisted : string list;
  distribution_kb : int;
  kernel_kb : int;
  kernel_runtime_kb : int;
  prune_iterations : int;
  debian_kernel_kb : int;  (** comparison point from the paper *)
  debian_kernel_runtime_kb : int;
}

val default_spec : spec

val spec :
  ?platform:Kconfig_types.platform ->
  ?whitelist:string list ->
  ?prune_kernel:bool ->
  ?app:string ->
  unit ->
  spec

val build : spec -> (report, string) Result.t
