(* Target platforms a Tinyx image can be built for (Section 3.2: "the
   platform the image will be running on, e.g. a Xen VM"). *)
type platform = Xen_pv | Kvm | Baremetal

let platform_name = function
  | Xen_pv -> "xen"
  | Kvm -> "kvm"
  | Baremetal -> "baremetal"
