type layer = {
  layer_name : string;
  files_kb : int;
}

type t = {
  upper_kb : int;
  stripped_kb : int;
  merged : layer list;
}

let debootstrap_base = { layer_name = "debootstrap-base"; files_kb = 190_000 }

let busybox_underlay = { layer_name = "busybox-underlay"; files_kb = 1_880 }

(* Installing through the package manager leaves caches, lists and
   dpkg/apt databases behind: roughly this fraction of the installed
   payload, plus a fixed chunk of apt lists. *)
let cache_fraction = 0.18
let apt_state_kb = 1_400

let assemble ~repo ~packages ~app_glue_kb =
  let installed_kb = Package.size_kb repo packages in
  let cache_kb =
    apt_state_kb + int_of_float (cache_fraction *. float_of_int installed_kb)
  in
  let upper_kb = installed_kb + cache_kb in
  (* "Before unmounting, we remove all cache files, any dpkg/apt related
     files, and other unnecessary directories." *)
  let cleaned_kb = upper_kb - cache_kb in
  (* BusyBox already provides core utilities; overlap with packages that
     ship the same tools is deduplicated by the merge. *)
  let merged =
    [
      busybox_underlay;
      { layer_name = "overlay-cleaned"; files_kb = cleaned_kb };
      { layer_name = "init-glue"; files_kb = app_glue_kb };
    ]
  in
  { upper_kb; stripped_kb = cache_kb; merged }

let upper_kb t = t.upper_kb
let stripped_kb t = t.stripped_kb

let distribution_kb t =
  List.fold_left (fun acc l -> acc + l.files_kb) 0 t.merged

let layers t = t.merged
