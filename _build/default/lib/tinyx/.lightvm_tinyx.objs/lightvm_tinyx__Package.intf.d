lib/tinyx/package.mli:
