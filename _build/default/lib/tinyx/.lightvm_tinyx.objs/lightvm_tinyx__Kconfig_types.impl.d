lib/tinyx/kconfig_types.ml:
