lib/tinyx/build.mli: Kconfig_types Lightvm_guest Result
