lib/tinyx/depsolve.ml: Data Hashtbl List Package
