lib/tinyx/overlay.mli: Package
