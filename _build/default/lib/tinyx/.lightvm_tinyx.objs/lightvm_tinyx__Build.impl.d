lib/tinyx/build.ml: Data Depsolve Kconfig Kconfig_types Lightvm_guest List Option Overlay Package
