lib/tinyx/kconfig.ml: Data Hashtbl List Set String
