lib/tinyx/data.ml: Kconfig_types List Package
