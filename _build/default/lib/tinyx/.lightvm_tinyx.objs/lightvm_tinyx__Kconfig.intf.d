lib/tinyx/kconfig.mli: Kconfig_types Result
