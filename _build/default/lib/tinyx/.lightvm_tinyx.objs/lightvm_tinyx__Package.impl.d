lib/tinyx/package.ml: Hashtbl List
