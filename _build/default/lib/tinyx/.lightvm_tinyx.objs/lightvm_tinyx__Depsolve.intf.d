lib/tinyx/depsolve.mli: Package Result
