lib/tinyx/overlay.ml: List Package
