(** Kernel configuration minimisation (Section 3.2).

    Tinyx starts from the [tinyconfig] target, adds what the platform
    needs (e.g. Xen frontends), and can then run a test-driven pruning
    loop: disable each candidate option in turn, rebuild, boot, run the
    user's test; keep the option off if the test still passes. *)

type config

val tinyconfig : config
(** The baseline: only the tinyconfig defaults. *)

val for_platform : Kconfig_types.platform -> config
(** tinyconfig + the platform's required options (with their
    dependencies). *)

val enable : config -> string -> (config, string) Result.t
(** Enable an option and (recursively) its dependencies. Errors on an
    unknown option. *)

val disable : config -> string -> config
(** Disable an option and everything that depends on it. *)

val is_enabled : config -> string -> bool

val enabled : config -> string list
(** Sorted. *)

val image_kb : config -> int
(** Kernel image size for this configuration. *)

val runtime_kb : config -> int
(** Runtime kernel memory for this configuration. *)

val debian_like : config
(** A distribution kernel with (nearly) everything enabled, for the
    paper's size comparison. *)

val boots : config -> platform:Kconfig_types.platform -> app:string -> bool
(** Does a kernel with this config boot the platform and pass the
    app's smoke test? *)

val prune :
  platform:Kconfig_types.platform ->
  app:string ->
  ?candidates:string list ->
  config ->
  config * int
(** The olddefconfig loop: for each candidate (default: every enabled
    option), disable, rebuild, test; re-enable only if the test fails.
    Returns the pruned config and the number of rebuild+test
    iterations performed. *)
