module Image = Lightvm_guest.Image

type spec = {
  app : string option;
  platform : Kconfig_types.platform;
  whitelist : string list;
  prune_kernel : bool;
}

type report = {
  image : Image.t;
  packages : string list;
  blacklisted : string list;
  distribution_kb : int;
  kernel_kb : int;
  kernel_runtime_kb : int;
  prune_iterations : int;
  debian_kernel_kb : int;
  debian_kernel_runtime_kb : int;
}

let default_spec =
  { app = None; platform = Kconfig_types.Xen_pv; whitelist = [];
    prune_kernel = true }

let spec ?(platform = Kconfig_types.Xen_pv) ?(whitelist = [])
    ?(prune_kernel = true) ?app () =
  { app; platform; whitelist; prune_kernel }

let app_glue_kb = 8 (* the BusyBox-init glue that launches the app *)

(* Boot cost scales gently with what there is to uncompress and init. *)
let boot_work_of ~kernel_kb ~distribution_kb =
  0.11
  +. (float_of_int kernel_kb *. 9.0e-6)
  +. (float_of_int distribution_kb *. 2.2e-6)

let build spec =
  let repo = Data.repo in
  let app_name = Option.value ~default:"busybox" spec.app in
  (* 1. Distribution: dependency resolution + overlay assembly. *)
  let resolution =
    match spec.app with
    | None ->
        Ok
          {
            Depsolve.packages = [ "busybox"; "libc6" ];
            blacklisted = [];
            total_kb = Package.size_kb repo [ "busybox"; "libc6" ];
          }
    | Some app ->
        Depsolve.resolve ~repo ~app ~whitelist:spec.whitelist ()
  in
  match resolution with
  | Error msg -> Error msg
  | Ok resolution -> (
      let overlay =
        Overlay.assemble ~repo ~packages:resolution.Depsolve.packages
          ~app_glue_kb
      in
      let distribution_kb = Overlay.distribution_kb overlay in
      (* 2. Kernel: tinyconfig + platform, app requirements, optional
         pruning loop. *)
      let base = Kconfig.for_platform spec.platform in
      let with_app =
        List.fold_left
          (fun acc o ->
            match Kconfig.enable acc o with Ok c -> c | Error _ -> acc)
          base
          (Data.app_required app_name)
      in
      let config, iterations =
        if spec.prune_kernel then
          Kconfig.prune ~platform:spec.platform ~app:app_name with_app
        else (with_app, 0)
      in
      if not (Kconfig.boots config ~platform:spec.platform ~app:app_name)
      then Error "pruned kernel no longer boots (bug)"
      else begin
        let kernel_kb = Kconfig.image_kb config in
        let kernel_runtime_kb = Kconfig.runtime_kb config in
        (* 3. The image: distribution bundled as initramfs into the
           kernel image (how the paper's Tinyx guests are measured). *)
        let disk_mb =
          float_of_int (kernel_kb + distribution_kb) /. 1024.
        in
        let mem_mb =
          (* runtime kernel + userspace working set: BusyBox init plus
             the app's resident footprint, roughly a quarter of its
             installed size. *)
          (float_of_int kernel_runtime_kb /. 1024.)
          +. 6.0
          +. (0.25 *. float_of_int resolution.Depsolve.total_kb /. 1024.)
        in
        let name =
          match spec.app with
          | None -> "tinyx-custom"
          | Some app -> "tinyx-custom-" ^ app
        in
        let image =
          {
            Image.name;
            kind = Image.Tinyx spec.app;
            disk_mb;
            kernel_mb = disk_mb;
            mem_mb;
            kernel_init_work =
              boot_work_of ~kernel_kb ~distribution_kb;
            app_init_work = (if spec.app = None then 0.003 else 0.012);
            idle_tick_period = 0.1;
            idle_tick_work = 5.0e-6;
          }
        in
        Ok
          {
            image;
            packages = resolution.Depsolve.packages;
            blacklisted = resolution.Depsolve.blacklisted;
            distribution_kb;
            kernel_kb;
            kernel_runtime_kb;
            prune_iterations = iterations;
            debian_kernel_kb = Kconfig.image_kb Kconfig.debian_like;
            debian_kernel_runtime_kb =
              Kconfig.runtime_kb Kconfig.debian_like;
          }
      end)
