(** Package metadata for the embedded Debian-like repository Tinyx
    resolves against (Section 3.2). *)

type t = {
  name : string;
  size_kb : int;  (** installed size *)
  deps : string list;  (** package names *)
  libs : string list;  (** shared libraries this package provides *)
  required_for_install_only : bool;
      (** dpkg/apt-style packages marked required but not needed at
          runtime — Tinyx's blacklist targets these *)
  has_install_scripts : bool;
      (** maintainer scripts that need utilities a minimal system lacks
          (why Tinyx installs into an OverlayFS over debootstrap) *)
}

type repo

val repo_of_list : t list -> repo

val find : repo -> string -> t option

val find_exn : repo -> string -> t
(** Raises [Not_found]. *)

val all : repo -> t list

val providers_of_lib : repo -> string -> t list
(** Packages providing a shared library (objdump resolution). *)

val size_kb : repo -> string list -> int
(** Total installed size of a package set. *)
