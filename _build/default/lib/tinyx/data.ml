(* The embedded repository and kernel-option database Tinyx builds
   against. Sizes are representative of Debian jessie-era packages. *)

let pkg ?(deps = []) ?(libs = []) ?(install_only = false)
    ?(scripts = false) name size_kb =
  {
    Package.name;
    size_kb;
    deps;
    libs;
    required_for_install_only = install_only;
    has_install_scripts = scripts;
  }

let packages =
  [
    (* Core. *)
    pkg "libc6" 10_600 ~deps:[ "gcc-4.9-base" ]
      ~libs:[ "libc.so.6"; "libm.so.6"; "libdl.so.2";
              "libpthread.so.0"; "librt.so.1" ]
      ~scripts:true;
    pkg "busybox" 1_880 ~deps:[ "libc6" ];
    pkg "zlib1g" 160 ~deps:[ "libc6" ] ~libs:[ "libz.so.1" ];
    pkg "libssl1.0" 2_900 ~deps:[ "libc6"; "zlib1g" ]
      ~libs:[ "libssl.so.1.0"; "libcrypto.so.1.0" ] ~scripts:true;
    pkg "libpcre3" 670 ~deps:[ "libc6" ] ~libs:[ "libpcre.so.3" ];
    pkg "libexpat1" 390 ~deps:[ "libc6" ] ~libs:[ "libexpat.so.1" ];
    pkg "libffi6" 160 ~deps:[ "libc6" ] ~libs:[ "libffi.so.6" ];
    pkg "libncurses5" 800 ~deps:[ "libc6" ] ~libs:[ "libncurses.so.5" ];
    pkg "libreadline6" 720 ~deps:[ "libc6"; "libncurses5" ]
      ~libs:[ "libreadline.so.6" ];
    (* Installation machinery: required by the package manager but
       useless at runtime — exactly what the Tinyx blacklist drops. *)
    pkg "dpkg" 6_600 ~deps:[ "libc6" ] ~install_only:true ~scripts:true;
    pkg "apt" 3_700 ~deps:[ "libc6"; "dpkg" ] ~install_only:true
      ~scripts:true;
    pkg "debconf" 1_200 ~deps:[ "dpkg"; "perl-base" ] ~install_only:true
      ~scripts:true;
    pkg "gcc-4.9-base" 200 ~deps:[] ~install_only:true;
    pkg "perl-base" 5_300 ~deps:[ "libc6" ] ~install_only:true
      ~scripts:true;
    (* Init systems (Tinyx uses BusyBox init instead). *)
    pkg "systemd" 12_700 ~deps:[ "libc6" ] ~scripts:true;
    pkg "sysvinit" 250 ~deps:[ "libc6" ] ~scripts:true;
    (* Applications. *)
    pkg "nginx" 1_200
      ~deps:[ "libc6"; "libpcre3"; "libssl1.0"; "zlib1g"; "debconf" ]
      ~libs:[] ~scripts:true;
    pkg "micropython" 640 ~deps:[ "libc6"; "libffi6" ];
    pkg "redis-server" 1_600 ~deps:[ "libc6"; "debconf" ] ~scripts:true;
    pkg "haproxy" 2_100
      ~deps:[ "libc6"; "libpcre3"; "libssl1.0"; "debconf" ] ~scripts:true;
    pkg "axtls" 260 ~deps:[ "libc6" ] ~libs:[ "libaxtls.so.1" ];
    pkg "iperf" 280 ~deps:[ "libc6" ];
    pkg "python2.7-minimal" 10_200
      ~deps:[ "libc6"; "zlib1g"; "libexpat1"; "libssl1.0";
              "libreadline6" ]
      ~scripts:true;
  ]

let repo = Package.repo_of_list packages

(* Which shared libraries each application binary links against — what
   Tinyx learns by running objdump on the binary. *)
let objdump_libs = function
  | "nginx" -> [ "libc.so.6"; "libpcre.so.3"; "libssl.so.1.0"; "libz.so.1" ]
  | "micropython" -> [ "libc.so.6"; "libffi.so.6"; "libm.so.6" ]
  | "redis-server" -> [ "libc.so.6"; "libm.so.6"; "libpthread.so.0" ]
  | "haproxy" -> [ "libc.so.6"; "libpcre.so.3"; "libcrypto.so.1.0" ]
  | "iperf" -> [ "libc.so.6"; "libm.so.6"; "librt.so.1" ]
  | "python2.7-minimal" ->
      [ "libc.so.6"; "libz.so.1"; "libexpat.so.1"; "libssl.so.1.0";
        "libreadline.so.6"; "libm.so.6"; "libdl.so.2" ]
  | _ -> [ "libc.so.6" ]

(* ------------------------------------------------------------------ *)
(* Kernel configuration database *)

type koption = {
  opt_name : string;
  size_kb : int; (* contribution to the kernel image *)
  runtime_kb : int; (* contribution to runtime kernel memory *)
  opt_deps : string list;
  default_in_tinyconfig : bool;
}

let opt ?(deps = []) ?(dflt = false) ~runtime_kb name size_kb =
  {
    opt_name = name;
    size_kb;
    runtime_kb;
    opt_deps = deps;
    default_in_tinyconfig = dflt;
  }

(* tinyconfig gives a ~600 KB kernel using ~1 MB at runtime; everything
   else is opt-in. A typical Debian kernel enables nearly all of it. *)
let tinyconfig_base_kb = 620
let tinyconfig_runtime_kb = 1_050

let koptions =
  [
    opt "CONFIG_NET" 380 ~runtime_kb:120;
    opt "CONFIG_INET" 520 ~runtime_kb:160 ~deps:[ "CONFIG_NET" ];
    opt "CONFIG_BLOCK" 260 ~runtime_kb:80;
    opt "CONFIG_EXT4_FS" 480 ~runtime_kb:60 ~deps:[ "CONFIG_BLOCK" ];
    opt "CONFIG_TMPFS" 60 ~runtime_kb:20;
    opt "CONFIG_PROC_FS" 90 ~runtime_kb:25 ~dflt:true;
    opt "CONFIG_SYSFS" 110 ~runtime_kb:30 ~dflt:true;
    opt "CONFIG_MODULES" 95 ~runtime_kb:40;
    opt "CONFIG_SMP" 310 ~runtime_kb:200;
    opt "CONFIG_HYPERVISOR_GUEST" 75 ~runtime_kb:15;
    opt "CONFIG_XEN" 290 ~runtime_kb:85
      ~deps:[ "CONFIG_HYPERVISOR_GUEST" ];
    opt "CONFIG_XEN_BLKDEV_FRONTEND" 85 ~runtime_kb:20
      ~deps:[ "CONFIG_XEN"; "CONFIG_BLOCK" ];
    opt "CONFIG_XEN_NETDEV_FRONTEND" 95 ~runtime_kb:25
      ~deps:[ "CONFIG_XEN"; "CONFIG_NET" ];
    opt "CONFIG_VIRTIO" 70 ~runtime_kb:15;
    opt "CONFIG_VIRTIO_NET" 80 ~runtime_kb:20
      ~deps:[ "CONFIG_VIRTIO"; "CONFIG_NET" ];
    opt "CONFIG_VIRTIO_BLK" 70 ~runtime_kb:18
      ~deps:[ "CONFIG_VIRTIO"; "CONFIG_BLOCK" ];
    (* Bare-metal driver piles that virtual machines never need. *)
    opt "CONFIG_DRIVERS_PCI_PILE" 900 ~runtime_kb:900;
    opt "CONFIG_DRIVERS_USB_PILE" 750 ~runtime_kb:700;
    opt "CONFIG_DRIVERS_GPU_PILE" 1_150 ~runtime_kb:1_200;
    opt "CONFIG_DRIVERS_SOUND_PILE" 680 ~runtime_kb:600;
    opt "CONFIG_DRIVERS_WIRELESS_PILE" 820 ~runtime_kb:800;
    opt "CONFIG_FS_MISC_PILE" 640 ~runtime_kb:550;
    opt "CONFIG_CRYPTO_PILE" 470 ~runtime_kb:400;
    opt "CONFIG_DEBUG_INFO" 2_600 ~runtime_kb:0;
    opt "CONFIG_IPV6" 340 ~runtime_kb:95 ~deps:[ "CONFIG_NET" ];
    opt "CONFIG_NETFILTER" 410 ~runtime_kb:120 ~deps:[ "CONFIG_NET" ];
    opt "CONFIG_UNIX" 95 ~runtime_kb:25 ~deps:[ "CONFIG_NET" ];
  ]

let koption_names = List.map (fun o -> o.opt_name) koptions

(* What each target platform needs to boot at all. *)
let platform_required = function
  | Kconfig_types.Xen_pv ->
      [ "CONFIG_HYPERVISOR_GUEST"; "CONFIG_XEN";
        "CONFIG_XEN_NETDEV_FRONTEND" ]
  | Kconfig_types.Kvm ->
      [ "CONFIG_VIRTIO"; "CONFIG_VIRTIO_NET"; "CONFIG_NET" ]
  | Kconfig_types.Baremetal ->
      [ "CONFIG_DRIVERS_PCI_PILE"; "CONFIG_BLOCK" ]

(* What each application needs from the kernel (discovered by the
   boot-and-test loop). *)
let app_required = function
  | "nginx" -> [ "CONFIG_NET"; "CONFIG_INET"; "CONFIG_UNIX";
                 "CONFIG_TMPFS" ]
  | "micropython" -> [ "CONFIG_NET"; "CONFIG_INET" ]
  | "redis-server" -> [ "CONFIG_NET"; "CONFIG_INET"; "CONFIG_TMPFS" ]
  | "haproxy" -> [ "CONFIG_NET"; "CONFIG_INET"; "CONFIG_UNIX" ]
  | "iperf" -> [ "CONFIG_NET"; "CONFIG_INET" ]
  | "python2.7-minimal" -> [ "CONFIG_NET"; "CONFIG_INET"; "CONFIG_TMPFS" ]
  | _ -> []

(* A Debian kernel for comparison: everything on. *)
let debian_kernel_options =
  List.filter (fun n -> n <> "CONFIG_DEBUG_INFO") koption_names
