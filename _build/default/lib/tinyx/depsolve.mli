(** Dependency resolution for the Tinyx distribution (Section 3.2).

    Tinyx derives the package set for an application from (1) the
    shared libraries the binary links against (objdump) and (2) the
    package manager's dependency graph — minus a blacklist of packages
    "marked as required (mostly for installation, e.g. dpkg) but not
    strictly needed for running the application", plus a user
    whitelist. *)

type result = {
  packages : string list;  (** resolved closure, sorted *)
  blacklisted : string list;  (** dropped by the blacklist *)
  total_kb : int;
}

val default_blacklist : string list

val resolve :
  ?blacklist:string list ->
  ?whitelist:string list ->
  repo:Package.repo ->
  app:string ->
  unit ->
  (result, string) Result.t
(** Closure of the app, its objdump-discovered library providers, the
    whitelist and BusyBox. Unknown app or whitelist entries error. *)

val closure :
  repo:Package.repo -> string list -> (string list, string) Result.t
(** Plain transitive dependency closure (no blacklist), sorted. *)
