module SSet = Set.Make (String)

type config = SSet.t

let option_table =
  let tbl = Hashtbl.create 32 in
  List.iter (fun o -> Hashtbl.replace tbl o.Data.opt_name o) Data.koptions;
  tbl

let find_option name = Hashtbl.find_opt option_table name

let tinyconfig =
  List.fold_left
    (fun acc o ->
      if o.Data.default_in_tinyconfig then SSet.add o.Data.opt_name acc
      else acc)
    SSet.empty Data.koptions

let rec enable config name =
  match find_option name with
  | None -> Error ("unknown kernel option: " ^ name)
  | Some o ->
      List.fold_left
        (fun acc dep ->
          match acc with Error _ -> acc | Ok c -> enable c dep)
        (Ok (SSet.add name config))
        o.Data.opt_deps

let enable_exn config name =
  match enable config name with
  | Ok c -> c
  | Error msg -> invalid_arg msg

let for_platform platform =
  List.fold_left enable_exn tinyconfig (Data.platform_required platform)

let disable config name =
  (* Drop the option and, transitively, everything depending on it. *)
  let rec go config =
    let dead =
      SSet.filter
        (fun n ->
          match find_option n with
          | None -> false
          | Some o ->
              List.exists
                (fun dep -> not (SSet.mem dep config))
                o.Data.opt_deps)
        config
    in
    if SSet.is_empty dead then config else go (SSet.diff config dead)
  in
  go (SSet.remove name config)

let is_enabled config name = SSet.mem name config

let enabled config = SSet.elements config

let image_kb config =
  SSet.fold
    (fun name acc ->
      match find_option name with
      | Some o -> acc + o.Data.size_kb
      | None -> acc)
    config Data.tinyconfig_base_kb

let runtime_kb config =
  SSet.fold
    (fun name acc ->
      match find_option name with
      | Some o -> acc + o.Data.runtime_kb
      | None -> acc)
    config Data.tinyconfig_runtime_kb

let debian_like =
  List.fold_left
    (fun acc name ->
      match enable acc name with Ok c -> c | Error _ -> acc)
    tinyconfig Data.debian_kernel_options

let boots config ~platform ~app =
  let required = Data.platform_required platform @ Data.app_required app in
  List.for_all (fun name -> SSet.mem name config) required

let prune ~platform ~app ?candidates config =
  let candidates =
    match candidates with Some c -> c | None -> enabled config
  in
  List.fold_left
    (fun (config, iterations) name ->
      if not (SSet.mem name config) then (config, iterations)
      else begin
        let attempt = disable config name in
        (* "rebuild the kernel with the olddefconfig target, boot the
           Tinyx image, and run a user-provided test" *)
        if boots attempt ~platform ~app then (attempt, iterations + 1)
        else (config, iterations + 1)
      end)
    (config, 0) candidates
