type t = {
  name : string;
  size_kb : int;
  deps : string list;
  libs : string list;
  required_for_install_only : bool;
  has_install_scripts : bool;
}

type repo = { by_name : (string, t) Hashtbl.t; order : t list }

let repo_of_list packages =
  let by_name = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace by_name p.name p) packages;
  { by_name; order = packages }

let find repo name = Hashtbl.find_opt repo.by_name name

let find_exn repo name =
  match find repo name with Some p -> p | None -> raise Not_found

let all repo = repo.order

let providers_of_lib repo lib =
  List.filter (fun p -> List.mem lib p.libs) repo.order

let size_kb repo names =
  List.fold_left
    (fun acc name ->
      match find repo name with Some p -> acc + p.size_kb | None -> acc)
    0 names
