type result = {
  packages : string list;
  blacklisted : string list;
  total_kb : int;
}

let default_blacklist =
  [ "dpkg"; "apt"; "debconf"; "perl-base"; "gcc-4.9-base"; "systemd";
    "sysvinit" ]

let closure ~repo roots =
  let seen = Hashtbl.create 32 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      match Package.find repo name with
      | None -> raise (Failure ("unknown package: " ^ name))
      | Some p ->
          Hashtbl.replace seen name ();
          List.iter visit p.Package.deps
    end
  in
  match List.iter visit roots with
  | () ->
      Ok
        (List.sort compare
           (Hashtbl.fold (fun name () acc -> name :: acc) seen []))
  | exception Failure msg -> Error msg

let resolve ?(blacklist = default_blacklist) ?(whitelist = []) ~repo ~app
    () =
  match Package.find repo app with
  | None -> Error ("unknown application package: " ^ app)
  | Some _ -> (
      (* objdump pass: libraries -> providing packages. *)
      let lib_packages =
        List.concat_map
          (fun lib ->
            List.map
              (fun p -> p.Package.name)
              (Package.providers_of_lib repo lib))
          (Data.objdump_libs app)
      in
      let roots = (app :: "busybox" :: whitelist) @ lib_packages in
      match closure ~repo roots with
      | Error _ as e -> e
      | Ok full ->
          (* The blacklist drops install-time machinery unless the user
             whitelisted it back. *)
          let keep name =
            List.mem name whitelist || not (List.mem name blacklist)
          in
          let packages, blacklisted = List.partition keep full in
          Ok
            {
              packages;
              blacklisted;
              total_kb = Package.size_kb repo packages;
            })
