(** Filesystem assembly via OverlayFS (Section 3.2).

    Tinyx mounts an empty overlay over a debootstrap base, installs the
    resolved packages there (so maintainer scripts find the utilities
    they expect), strips caches and package-manager state, then merges
    the overlay onto a BusyBox underlay and takes the result as the
    distribution. *)

type layer = {
  layer_name : string;
  files_kb : int;
}

type t

val debootstrap_base : layer
(** The minimal Debian the overlay is mounted over (never shipped). *)

val busybox_underlay : layer

val assemble :
  repo:Package.repo -> packages:string list -> app_glue_kb:int -> t
(** Install the packages into the overlay and run the full pipeline. *)

val upper_kb : t -> int
(** The overlay's upper directory after installation (pre-strip). *)

val stripped_kb : t -> int
(** Removed caches, dpkg/apt state and other unnecessary files. *)

val distribution_kb : t -> int
(** Final merged distribution size (what ships in the image). *)

val layers : t -> layer list
(** [busybox_underlay] then the cleaned overlay then the init glue. *)
