(** Tree-walking evaluator with step accounting.

    Steps count every expression node evaluated and statement executed,
    so callers (the Lambda compute service) can convert interpreter
    work into simulated CPU time. *)

exception Runtime_error of string

exception Step_limit_exceeded

type outcome = {
  stdout : string list;  (** lines printed, in order *)
  result : Value.t;  (** value of the last expression statement *)
  steps : int;
}

val run : ?max_steps:int -> string -> (outcome, string) result
(** Parse + evaluate a program. All errors (lex, parse, runtime, step
    limit) are rendered into the [Error] string. *)

val run_exn : ?max_steps:int -> string -> outcome

val builtin_names : string list
