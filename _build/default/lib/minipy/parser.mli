(** Recursive-descent parser with precedence climbing for expressions
    and the indentation-based block structure for statements. *)

exception Parse_error of string

val parse : string -> Ast.program
(** Raises {!Parse_error} or {!Lexer.Lex_error}. *)

val parse_result : string -> (Ast.program, string) result
