type token =
  | NAME of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KEYWORD of string
  | OP of string
  | NEWLINE
  | INDENT
  | DEDENT
  | EOF

exception Lex_error of int * string

let keywords =
  [ "def"; "return"; "if"; "elif"; "else"; "while"; "for"; "in"; "break";
    "continue"; "pass"; "and"; "or"; "not"; "True"; "False"; "None" ]

let is_digit c = c >= '0' && c <= '9'

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_name_char c = is_name_start c || is_digit c

(* Multi-character operators, longest first. *)
let operators =
  [ "**"; "//"; "<="; ">="; "=="; "!="; "+="; "-="; "*="; "/="; "+"; "-";
    "*"; "/"; "%"; "<"; ">"; "="; "("; ")"; "["; "]"; ","; ":"; "." ]

let tokenize source =
  let lines = String.split_on_char '\n' source in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let indent_stack = ref [ 0 ] in
  let lineno = ref 0 in
  let lex_line line =
    let n = String.length line in
    (* Indentation. *)
    let rec indent_width i =
      if i < n && line.[i] = ' ' then indent_width (i + 1)
      else if i < n && line.[i] = '\t' then
        raise (Lex_error (!lineno, "tabs are not allowed for indentation"))
      else i
    in
    let start = indent_width 0 in
    (* Blank or comment-only lines produce nothing. *)
    let is_blank =
      start >= n || line.[start] = '#' || String.trim line = ""
    in
    if not is_blank then begin
      let current = List.hd !indent_stack in
      if start > current then begin
        indent_stack := start :: !indent_stack;
        emit INDENT
      end
      else if start < current then begin
        let rec pop () =
          match !indent_stack with
          | top :: rest when top > start ->
              indent_stack := rest;
              emit DEDENT;
              pop ()
          | top :: _ when top <> start ->
              raise (Lex_error (!lineno, "inconsistent dedent"))
          | _ -> ()
        in
        pop ()
      end;
      (* Tokens on the line. *)
      let i = ref start in
      let rec loop () =
        if !i >= n then ()
        else begin
          let c = line.[!i] in
          if c = ' ' then begin
            incr i;
            loop ()
          end
          else if c = '#' then () (* comment to end of line *)
          else if is_digit c then begin
            let j = ref !i in
            while !j < n && (is_digit line.[!j] || line.[!j] = '.') do
              incr j
            done;
            let text = String.sub line !i (!j - !i) in
            (if String.contains text '.' then
               match float_of_string_opt text with
               | Some f -> emit (FLOAT f)
               | None -> raise (Lex_error (!lineno, "bad number: " ^ text))
             else
               match int_of_string_opt text with
               | Some k -> emit (INT k)
               | None -> raise (Lex_error (!lineno, "bad number: " ^ text)));
            i := !j;
            loop ()
          end
          else if is_name_start c then begin
            let j = ref !i in
            while !j < n && is_name_char line.[!j] do
              incr j
            done;
            let text = String.sub line !i (!j - !i) in
            if List.mem text keywords then emit (KEYWORD text)
            else emit (NAME text);
            i := !j;
            loop ()
          end
          else if c = '"' || c = '\'' then begin
            let quote = c in
            let buf = Buffer.create 16 in
            let j = ref (!i + 1) in
            let rec scan () =
              if !j >= n then
                raise (Lex_error (!lineno, "unterminated string"))
              else if line.[!j] = '\\' && !j + 1 < n then begin
                (match line.[!j + 1] with
                | 'n' -> Buffer.add_char buf '\n'
                | 't' -> Buffer.add_char buf '\t'
                | c -> Buffer.add_char buf c);
                j := !j + 2;
                scan ()
              end
              else if line.[!j] = quote then incr j
              else begin
                Buffer.add_char buf line.[!j];
                incr j;
                scan ()
              end
            in
            scan ();
            emit (STRING (Buffer.contents buf));
            i := !j;
            loop ()
          end
          else begin
            match
              List.find_opt
                (fun op ->
                  let l = String.length op in
                  !i + l <= n && String.sub line !i l = op)
                operators
            with
            | Some op ->
                emit (OP op);
                i := !i + String.length op;
                loop ()
            | None ->
                raise
                  (Lex_error (!lineno, Printf.sprintf "bad character %C" c))
          end
        end
      in
      loop ();
      emit NEWLINE
    end
  in
  List.iter
    (fun line ->
      incr lineno;
      lex_line line)
    lines;
  (* Close any open indentation. *)
  List.iter
    (fun level -> if level > 0 then emit DEDENT)
    !indent_stack;
  emit EOF;
  List.rev !tokens

let token_to_string = function
  | NAME s -> "NAME(" ^ s ^ ")"
  | INT k -> "INT(" ^ string_of_int k ^ ")"
  | FLOAT f -> Printf.sprintf "FLOAT(%g)" f
  | STRING s -> Printf.sprintf "STRING(%S)" s
  | KEYWORD s -> "KW(" ^ s ^ ")"
  | OP s -> "OP(" ^ s ^ ")"
  | NEWLINE -> "NEWLINE"
  | INDENT -> "INDENT"
  | DEDENT -> "DEDENT"
  | EOF -> "EOF"
