(* Abstract syntax for the MicroPython-like subset. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div (* true division *)
  | Floordiv
  | Mod
  | Pow

type cmpop = Lt | Le | Gt | Ge | Eq | Ne

type expr =
  | Int_lit of int
  | Float_lit of float
  | Str_lit of string
  | Bool_lit of bool
  | None_lit
  | Name of string
  | List_lit of expr list
  | Binop of binop * expr * expr
  | Neg of expr
  | Not of expr
  | Compare of expr * cmpop * expr
  | And of expr * expr
  | Or of expr * expr
  | Call of string * expr list
  | Method_call of expr * string * expr list
  | Index of expr * expr

type target =
  | Target_name of string
  | Target_index of expr * expr

type stmt =
  | Expr_stmt of expr
  | Assign of target * expr
  | Aug_assign of target * binop * expr
  | If of (expr * stmt list) list * stmt list
      (* (condition, body) per if/elif branch; final else body *)
  | While of expr * stmt list
  | For of string * expr * stmt list
  | Def of string * string list * stmt list
  | Return of expr option
  | Break
  | Continue
  | Pass

type program = stmt list

let binop_name = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Floordiv -> "//"
  | Mod -> "%"
  | Pow -> "**"
