(** Tokenizer with Python-style significant indentation: emits INDENT
    and DEDENT tokens from an indentation stack, NEWLINE at logical
    line ends, and skips blank lines and [#] comments. *)

type token =
  | NAME of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KEYWORD of string
      (** def return if elif else while for in break continue pass
          and or not True False None *)
  | OP of string
      (** + - * / // % ** < <= > >= == != = += -= *= /= ( ) [ ] , : . *)
  | NEWLINE
  | INDENT
  | DEDENT
  | EOF

exception Lex_error of int * string
(** line number, message *)

val tokenize : string -> token list

val token_to_string : token -> string
