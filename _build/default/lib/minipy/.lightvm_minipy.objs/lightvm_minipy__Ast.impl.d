lib/minipy/ast.ml:
