lib/minipy/lexer.mli:
