lib/minipy/parser.mli: Ast
