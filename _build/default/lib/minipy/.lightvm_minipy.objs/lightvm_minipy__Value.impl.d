lib/minipy/value.ml: Array Ast Float Printf String
