lib/minipy/interp.mli: Value
