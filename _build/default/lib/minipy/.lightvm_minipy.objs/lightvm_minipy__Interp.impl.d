lib/minipy/interp.ml: Array Ast Float Hashtbl Lexer List Parser Printf String Value
