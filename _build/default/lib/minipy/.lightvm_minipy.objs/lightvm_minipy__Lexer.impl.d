lib/minipy/lexer.ml: Buffer List Printf String
