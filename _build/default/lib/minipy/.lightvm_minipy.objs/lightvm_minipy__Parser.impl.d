lib/minipy/parser.ml: Ast Lexer List Option Printf
