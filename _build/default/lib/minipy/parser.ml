open Lexer

exception Parse_error of string

type state = { mutable tokens : token list }

let fail msg = raise (Parse_error msg)

let peek st = match st.tokens with [] -> EOF | t :: _ -> t

let advance st =
  match st.tokens with
  | [] -> fail "unexpected end of input"
  | t :: rest ->
      st.tokens <- rest;
      t

let expect st tok =
  let got = advance st in
  if got <> tok then
    fail
      (Printf.sprintf "expected %s, got %s" (token_to_string tok)
         (token_to_string got))

let accept st tok =
  if peek st = tok then begin
    ignore (advance st);
    true
  end
  else false

(* ------------------------------------------------------------------ *)
(* Expressions, precedence climbing *)

let binop_of_op = function
  | "+" -> Some Ast.Add
  | "-" -> Some Ast.Sub
  | "*" -> Some Ast.Mul
  | "/" -> Some Ast.Div
  | "//" -> Some Ast.Floordiv
  | "%" -> Some Ast.Mod
  | "**" -> Some Ast.Pow
  | _ -> None

let cmpop_of_op = function
  | "<" -> Some Ast.Lt
  | "<=" -> Some Ast.Le
  | ">" -> Some Ast.Gt
  | ">=" -> Some Ast.Ge
  | "==" -> Some Ast.Eq
  | "!=" -> Some Ast.Ne
  | _ -> None

let rec parse_expr st = parse_or st

and parse_or st =
  let left = parse_and st in
  if peek st = KEYWORD "or" then begin
    ignore (advance st);
    Ast.Or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_not st in
  if peek st = KEYWORD "and" then begin
    ignore (advance st);
    Ast.And (left, parse_and st)
  end
  else left

and parse_not st =
  if peek st = KEYWORD "not" then begin
    ignore (advance st);
    Ast.Not (parse_not st)
  end
  else parse_comparison st

and parse_comparison st =
  let left = parse_arith st in
  match peek st with
  | OP op when cmpop_of_op op <> None ->
      ignore (advance st);
      let right = parse_arith st in
      Ast.Compare (left, Option.get (cmpop_of_op op), right)
  | _ -> left

and parse_arith st =
  let rec loop left =
    match peek st with
    | OP (("+" | "-") as op) ->
        ignore (advance st);
        let right = parse_term st in
        loop (Ast.Binop (Option.get (binop_of_op op), left, right))
    | _ -> left
  in
  loop (parse_term st)

and parse_term st =
  let rec loop left =
    match peek st with
    | OP (("*" | "/" | "//" | "%") as op) ->
        ignore (advance st);
        let right = parse_factor st in
        loop (Ast.Binop (Option.get (binop_of_op op), left, right))
    | _ -> left
  in
  loop (parse_factor st)

and parse_factor st =
  match peek st with
  | OP "-" ->
      ignore (advance st);
      Ast.Neg (parse_factor st)
  | OP "+" ->
      ignore (advance st);
      parse_factor st
  | _ -> parse_power st

and parse_power st =
  let base = parse_postfix st in
  if peek st = OP "**" then begin
    ignore (advance st);
    (* Right-associative. *)
    Ast.Binop (Ast.Pow, base, parse_factor st)
  end
  else base

and parse_postfix st =
  let rec loop expr =
    match peek st with
    | OP "[" ->
        ignore (advance st);
        let index = parse_expr st in
        expect st (OP "]");
        loop (Ast.Index (expr, index))
    | OP "." -> (
        ignore (advance st);
        match advance st with
        | NAME meth ->
            expect st (OP "(");
            let args = parse_args st in
            loop (Ast.Method_call (expr, meth, args))
        | t -> fail ("expected method name, got " ^ token_to_string t))
    | _ -> expr
  in
  loop (parse_atom st)

and parse_args st =
  if accept st (OP ")") then []
  else begin
    let rec loop acc =
      let arg = parse_expr st in
      if accept st (OP ",") then loop (arg :: acc)
      else begin
        expect st (OP ")");
        List.rev (arg :: acc)
      end
    in
    loop []
  end

and parse_atom st =
  match advance st with
  | INT k -> Ast.Int_lit k
  | FLOAT f -> Ast.Float_lit f
  | STRING s -> Ast.Str_lit s
  | KEYWORD "True" -> Ast.Bool_lit true
  | KEYWORD "False" -> Ast.Bool_lit false
  | KEYWORD "None" -> Ast.None_lit
  | NAME name ->
      if accept st (OP "(") then Ast.Call (name, parse_args st)
      else Ast.Name name
  | OP "(" ->
      let e = parse_expr st in
      expect st (OP ")");
      e
  | OP "[" ->
      if accept st (OP "]") then Ast.List_lit []
      else begin
        let rec loop acc =
          let e = parse_expr st in
          if accept st (OP ",") then loop (e :: acc)
          else begin
            expect st (OP "]");
            List.rev (e :: acc)
          end
        in
        Ast.List_lit (loop [])
      end
  | t -> fail ("unexpected token " ^ token_to_string t)

(* ------------------------------------------------------------------ *)
(* Statements *)

let aug_of_op = function
  | "+=" -> Some Ast.Add
  | "-=" -> Some Ast.Sub
  | "*=" -> Some Ast.Mul
  | "/=" -> Some Ast.Div
  | _ -> None

let rec parse_block st =
  (* ':' NEWLINE INDENT stmt+ DEDENT *)
  expect st (OP ":");
  expect st NEWLINE;
  expect st INDENT;
  let rec loop acc =
    if accept st DEDENT then List.rev acc
    else loop (parse_stmt st :: acc)
  in
  loop []

and parse_stmt st =
  match peek st with
  | KEYWORD "pass" ->
      ignore (advance st);
      expect st NEWLINE;
      Ast.Pass
  | KEYWORD "break" ->
      ignore (advance st);
      expect st NEWLINE;
      Ast.Break
  | KEYWORD "continue" ->
      ignore (advance st);
      expect st NEWLINE;
      Ast.Continue
  | KEYWORD "return" ->
      ignore (advance st);
      if accept st NEWLINE then Ast.Return None
      else begin
        let e = parse_expr st in
        expect st NEWLINE;
        Ast.Return (Some e)
      end
  | KEYWORD "def" -> (
      ignore (advance st);
      match advance st with
      | NAME fname ->
          expect st (OP "(");
          let params =
            if accept st (OP ")") then []
            else begin
              let rec loop acc =
                match advance st with
                | NAME p ->
                    if accept st (OP ",") then loop (p :: acc)
                    else begin
                      expect st (OP ")");
                      List.rev (p :: acc)
                    end
                | t ->
                    fail ("expected parameter, got " ^ token_to_string t)
              in
              loop []
            end
          in
          Ast.Def (fname, params, parse_block st)
      | t -> fail ("expected function name, got " ^ token_to_string t))
  | KEYWORD "if" ->
      ignore (advance st);
      let cond = parse_expr st in
      let body = parse_block st in
      let rec elifs acc =
        if peek st = KEYWORD "elif" then begin
          ignore (advance st);
          let c = parse_expr st in
          let b = parse_block st in
          elifs ((c, b) :: acc)
        end
        else if peek st = KEYWORD "else" then begin
          ignore (advance st);
          (List.rev acc, parse_block st)
        end
        else (List.rev acc, [])
      in
      let branches, else_body = elifs [ (cond, body) ] in
      Ast.If (branches, else_body)
  | KEYWORD "while" ->
      ignore (advance st);
      let cond = parse_expr st in
      Ast.While (cond, parse_block st)
  | KEYWORD "for" -> (
      ignore (advance st);
      match advance st with
      | NAME var ->
          expect st (KEYWORD "in");
          let iter = parse_expr st in
          Ast.For (var, iter, parse_block st)
      | t -> fail ("expected loop variable, got " ^ token_to_string t))
  | _ ->
      (* Expression, assignment or augmented assignment. *)
      let e = parse_expr st in
      let stmt =
        match peek st with
        | OP "=" ->
            ignore (advance st);
            let value = parse_expr st in
            Ast.Assign (target_of_expr e, value)
        | OP op when aug_of_op op <> None ->
            ignore (advance st);
            let value = parse_expr st in
            Ast.Aug_assign (target_of_expr e, Option.get (aug_of_op op),
                            value)
        | _ -> Ast.Expr_stmt e
      in
      expect st NEWLINE;
      stmt

and target_of_expr = function
  | Ast.Name n -> Ast.Target_name n
  | Ast.Index (e, i) -> Ast.Target_index (e, i)
  | _ -> fail "invalid assignment target"

let parse source =
  let st = { tokens = Lexer.tokenize source } in
  let rec loop acc =
    match peek st with
    | EOF -> List.rev acc
    | NEWLINE ->
        ignore (advance st);
        loop acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

let parse_result source =
  match parse source with
  | prog -> Ok prog
  | exception Parse_error msg -> Error msg
  | exception Lexer.Lex_error (line, msg) ->
      Error (Printf.sprintf "line %d: %s" line msg)
