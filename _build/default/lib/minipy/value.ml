(* Runtime values. Lists are mutable (Python semantics for append and
   index assignment). *)

type t =
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | None_v
  | List of t array ref
  | Func of func

and func = {
  fname : string;
  params : string list;
  body : Ast.stmt list;
}

let rec to_string = function
  | Int k -> string_of_int k
  | Float f ->
      if Float.is_integer f && Float.abs f < 1e16 then
        Printf.sprintf "%.1f" f
      else Printf.sprintf "%.12g" f
  | Str s -> s
  | Bool true -> "True"
  | Bool false -> "False"
  | None_v -> "None"
  | List items ->
      "["
      ^ String.concat ", " (Array.to_list (Array.map repr !items))
      ^ "]"
  | Func f -> Printf.sprintf "<function %s>" f.fname

and repr = function
  | Str s -> "'" ^ s ^ "'"
  | v -> to_string v

let truthy = function
  | Bool b -> b
  | Int k -> k <> 0
  | Float f -> f <> 0.
  | Str s -> s <> ""
  | None_v -> false
  | List items -> Array.length !items > 0
  | Func _ -> true

let type_name = function
  | Int _ -> "int"
  | Float _ -> "float"
  | Str _ -> "str"
  | Bool _ -> "bool"
  | None_v -> "NoneType"
  | List _ -> "list"
  | Func _ -> "function"

(* Structural equality with Python's int/float mixing. *)
let rec equal a b =
  match (a, b) with
  | Int x, Float y | Float y, Int x -> float_of_int x = y
  | Bool x, Int y | Int y, Bool x -> (if x then 1 else 0) = y
  | List xs, List ys ->
      Array.length !xs = Array.length !ys
      && begin
           let ok = ref true in
           Array.iteri
             (fun i x -> if not (equal x !ys.(i)) then ok := false)
             !xs;
           !ok
         end
  | _ -> a = b
