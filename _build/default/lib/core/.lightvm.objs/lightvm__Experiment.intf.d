lib/core/experiment.mli: Lightvm_metrics
