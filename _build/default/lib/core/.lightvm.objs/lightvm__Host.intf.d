lib/core/host.mli: Lightvm_guest Lightvm_hv Lightvm_toolstack Lightvm_xenstore
