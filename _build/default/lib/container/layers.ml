type layer = {
  digest : string;
  size_kb : int;
}

type image = {
  image_name : string;
  layers : layer list;
}

type store = { known : (string, layer) Hashtbl.t }

let create_store () = { known = Hashtbl.create 16 }

let pull store image =
  List.fold_left
    (fun acc layer ->
      if Hashtbl.mem store.known layer.digest then acc
      else begin
        Hashtbl.replace store.known layer.digest layer;
        acc + layer.size_kb
      end)
    0 image.layers

let stored_kb store =
  Hashtbl.fold (fun _ l acc -> acc + l.size_kb) store.known 0

let layer_count store = Hashtbl.length store.known

let image_size_kb image =
  List.fold_left (fun acc l -> acc + l.size_kb) 0 image.layers

let alpine_base = { digest = "sha256:alpine-base"; size_kb = 4_900 }

let micropython_image =
  {
    image_name = "micropython";
    layers =
      [ alpine_base; { digest = "sha256:mpy-bin"; size_kb = 760 } ];
  }

let alpine_noop =
  {
    image_name = "alpine-noop";
    layers = [ alpine_base; { digest = "sha256:noop"; size_kb = 12 } ];
  }

let nginx_image =
  {
    image_name = "nginx";
    layers =
      [
        { digest = "sha256:debian-slim"; size_kb = 31_000 };
        { digest = "sha256:nginx-bin"; size_kb = 17_500 };
        { digest = "sha256:nginx-conf"; size_kb = 40 };
      ];
  }
