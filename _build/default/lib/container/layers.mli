(** Container images as stacks of content-addressed layers.

    Layers are shared: pulling two images with a common base stores the
    base once; running many containers from one image shares all its
    read-only layers and gives each container only a writable upper
    layer. *)

type layer = {
  digest : string;
  size_kb : int;
}

type image = {
  image_name : string;
  layers : layer list;  (** base first *)
}

type store

val create_store : unit -> store

val pull : store -> image -> int
(** Register an image; returns the KiB actually added (shared layers
    are free). *)

val stored_kb : store -> int

val layer_count : store -> int

val image_size_kb : image -> int

val micropython_image : image

val alpine_noop : image

val nginx_image : image
