module Engine = Lightvm_sim.Engine
module Frames = Lightvm_hv.Frames

type container = {
  id : int;
  c_name : string;
  image : Layers.image;
  c_rss_kb : int;
  mutable paused : bool;
  mutable alive : bool;
}

type error =
  | Out_of_memory
  | Engine_wedged

type t = {
  machine : Machine.t;
  store : Layers.store;
  containers : (int, container) Hashtbl.t;
  mutable next_id : int;
  mutable pool_chunks : int;
  mutable pool_used_kb : int;
  mutable is_wedged : bool;
}

(* Cost constants (reference-speed CPU seconds), calibrated to
   "Docker containers start in around 200ms" (Fig 4) ramping towards
   ~1s at 3,000 containers on the slower AMD machine (Fig 10). *)
let cost_client_daemon = 0.020
let cost_containerd = 0.032
let cost_namespaces = 0.026
let cost_cgroups = 0.016
let cost_network = 0.036
let cost_per_layer_mount = 0.009
let cost_bookkeeping_per_container = 2.0e-5
let cost_bookkeeping_quadratic = 6.5e-8
let cost_pool_grow = 1.3
let cost_pause = 0.008
let cost_unpause = 0.007
let cost_stop = 0.045

let engine_owner = -2
let pool_owner = -3

let engine_base_rss_kb = 260 * 1024
let shim_rss_kb = 2_300
let net_rss_kb = 280
let pool_chunk_kb = 8 * 1024 * 1024
let pool_reserve_per_container_kb = 40 * 1024

let create machine =
  (match
     Frames.alloc (Machine.mem machine) ~owner:engine_owner
       ~kb:engine_base_rss_kb
   with
  | Ok () -> ()
  | Error Frames.ENOMEM -> invalid_arg "Docker.create: host too small");
  let t =
    {
      machine;
      store = Layers.create_store ();
      containers = Hashtbl.create 64;
      next_id = 1;
      pool_chunks = 0;
      pool_used_kb = 0;
      is_wedged = false;
    }
  in
  (* The storage driver sets up its first thin-pool chunk at daemon
     start, so the first [docker run] does not pay for pool growth. *)
  (match
     Frames.alloc (Machine.mem machine) ~owner:pool_owner ~kb:pool_chunk_kb
   with
  | Ok () -> t.pool_chunks <- 1
  | Error Frames.ENOMEM -> () (* wedge on first reservation instead *));
  t

let machine t = t.machine

let running t =
  Hashtbl.fold
    (fun _ c acc -> if c.alive then acc + 1 else acc)
    t.containers 0

let wedged t = t.is_wedged

(* Reserve thin-pool space, growing the pool a chunk at a time. *)
let reserve_pool t kb =
  if t.pool_used_kb + kb <= t.pool_chunks * pool_chunk_kb then begin
    t.pool_used_kb <- t.pool_used_kb + kb;
    Ok false
  end
  else
    match
      Frames.alloc (Machine.mem t.machine) ~owner:pool_owner
        ~kb:pool_chunk_kb
    with
    | Ok () ->
        t.pool_chunks <- t.pool_chunks + 1;
        t.pool_used_kb <- t.pool_used_kb + kb;
        Ok true
    | Error Frames.ENOMEM ->
        t.is_wedged <- true;
        Error ()

let run t ?(rss_kb = 1_500) ~image ~name () =
  if t.is_wedged then Error Engine_wedged
  else begin
    ignore (Layers.pull t.store image);
    (* Client -> daemon -> containerd -> runc. *)
    Machine.consume_any t.machine cost_client_daemon;
    Machine.consume_any t.machine cost_containerd;
    (* Storage: per-layer overlay mounts plus the thin-pool
       reservation for the writable layer. *)
    Machine.consume_any t.machine
      (float_of_int (List.length image.Layers.layers)
      *. cost_per_layer_mount);
    match reserve_pool t pool_reserve_per_container_kb with
    | Error () -> Error Out_of_memory
    | Ok grew ->
        if grew then
          (* Growing the pool stalls the engine: the latency spikes the
             paper ties to "large jumps in memory consumption". *)
          Machine.consume_any t.machine cost_pool_grow;
        (* Namespaces, cgroups, veth + bridge. *)
        Machine.consume_any t.machine cost_namespaces;
        Machine.consume_any t.machine cost_cgroups;
        Machine.consume_any t.machine cost_network;
        (* Daemon bookkeeping: list scans plus graph-driver metadata
           walks that degrade superlinearly with population (the Fig 10
           ramp towards ~1 s near 3000 containers). *)
        let n = float_of_int (running t) in
        Machine.consume_any t.machine
          ((n *. cost_bookkeeping_per_container)
          +. (n *. n *. cost_bookkeeping_quadratic));
        let total_rss = rss_kb + shim_rss_kb + net_rss_kb in
        let id = t.next_id in
        (match
           Frames.alloc (Machine.mem t.machine) ~owner:id ~kb:total_rss
         with
        | Error Frames.ENOMEM -> Error Out_of_memory
        | Ok () ->
            t.next_id <- t.next_id + 1;
            let c =
              { id; c_name = name; image; c_rss_kb = total_rss;
                paused = false; alive = true }
            in
            Hashtbl.replace t.containers id c;
            Ok c)
  end

let stop t c =
  if c.alive then begin
    Machine.consume_any t.machine cost_stop;
    c.alive <- false;
    ignore (Frames.free_all (Machine.mem t.machine) ~owner:c.id);
    t.pool_used_kb <- t.pool_used_kb - pool_reserve_per_container_kb;
    Hashtbl.remove t.containers c.id
  end

let pause t c =
  if c.alive && not c.paused then begin
    Machine.consume_any t.machine cost_pause;
    c.paused <- true
  end

let unpause t c =
  if c.alive && c.paused then begin
    Machine.consume_any t.machine cost_unpause;
    c.paused <- false
  end

let is_paused c = c.paused

let container_name c = c.c_name

let rss_kb t =
  Hashtbl.fold
    (fun _ c acc -> if c.alive then acc + c.c_rss_kb else acc)
    t.containers engine_base_rss_kb

let reserved_kb t = t.pool_chunks * pool_chunk_kb
