(** Plain Linux processes (fork/exec), the paper's baseline: "a process
    is created and launched in 3.5 ms on average (9 ms at the 90%
    percentile)", independent of how many processes already exist. *)

type t

type proc

val create : Machine.t -> rng:Lightvm_sim.Rng.t -> t

val fork_exec : t -> ?rss_kb:int -> name:string -> unit -> proc
(** Blocks for the fork+exec duration (randomised, heavy-tailed). *)

val kill : t -> proc -> unit

val running : t -> int

val rss_kb : t -> int

val proc_name : proc -> string
