(** A bare-metal Linux host (no hypervisor) for the container and
    process baselines: the same physical CPU/memory model as the Xen
    hosts, so comparisons are apples-to-apples. *)

type t

val create : ?platform:Lightvm_hv.Params.platform -> unit -> t
(** Reserves the kernel's own memory slice. *)

val platform : t -> Lightvm_hv.Params.platform

val cpu : t -> Lightvm_sim.Cpu.t

val mem : t -> Lightvm_hv.Frames.t

val kernel_owner : int
(** Owner id used for kernel/base-system memory. *)

val consume : t -> core:int -> float -> unit

val consume_any : t -> float -> unit
(** Run work on the least-loaded core. *)

val pick_core : t -> int
(** Round-robin core assignment for new workloads. *)

val free_mem_kb : t -> int

val used_mem_kb : t -> int
