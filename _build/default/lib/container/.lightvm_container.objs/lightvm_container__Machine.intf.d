lib/container/machine.mli: Lightvm_hv Lightvm_sim
