lib/container/layers.ml: Hashtbl List
