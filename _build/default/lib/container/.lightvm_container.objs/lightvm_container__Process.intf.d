lib/container/process.mli: Lightvm_sim Machine
