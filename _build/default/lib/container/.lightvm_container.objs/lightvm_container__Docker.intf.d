lib/container/docker.mli: Layers Machine
