lib/container/docker.ml: Hashtbl Layers Lightvm_hv Lightvm_sim List Machine
