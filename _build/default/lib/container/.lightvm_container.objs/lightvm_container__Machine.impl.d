lib/container/machine.ml: Fun Lightvm_hv Lightvm_sim List
