lib/container/layers.mli:
