lib/container/process.ml: Hashtbl Lightvm_hv Lightvm_sim Machine
