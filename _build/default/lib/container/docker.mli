(** The container engine (Docker 1.13 in the paper's experiments).

    [run] charges the real cost structure of [docker run]: client/daemon
    round-trip, per-layer overlay mounts, namespace + cgroup setup, veth
    pair and bridge attachment, and daemon bookkeeping that grows with
    the number of live containers. Storage is reserved from a
    thin-provisioned pool that grows in large chunks — the latency
    spikes and the memory jumps of Figure 10 — and when the host cannot
    back the next chunk, the engine wedges, which is why the paper's
    run stops at ~3,000 containers. *)

type t

type container

type error =
  | Out_of_memory
  | Engine_wedged

val create : Machine.t -> t

val machine : t -> Machine.t

val run :
  t ->
  ?rss_kb:int ->
  image:Layers.image ->
  name:string ->
  unit ->
  (container, error) result
(** Create + start one container (blocking). [rss_kb] is the payload
    process's resident memory (default 1.5 MB, a Micropython-sized
    process). *)

val stop : t -> container -> unit

val pause : t -> container -> unit

val unpause : t -> container -> unit

val running : t -> int

val is_paused : container -> bool

val container_name : container -> string

val rss_kb : t -> int
(** Resident memory of the engine + all containers (the Fig 14
    metric). *)

val reserved_kb : t -> int
(** Thin-pool reservations (the Fig 10 density limiter). *)

val wedged : t -> bool
