module Rng = Lightvm_sim.Rng
module Frames = Lightvm_hv.Frames

type proc = {
  pid : int;
  p_name : string;
  p_rss_kb : int;
  mutable alive : bool;
}

type t = {
  machine : Machine.t;
  rng : Rng.t;
  procs : (int, proc) Hashtbl.t;
  mutable next_pid : int;
}

let create machine ~rng =
  { machine; rng; procs = Hashtbl.create 64; next_pid = 100 }

(* fork/exec: ~1.2 ms floor (page-table copy, exec, dynamic linking)
   plus an exponential tail (page faults, scheduling) giving a 3.5 ms
   mean and ~9 ms at the 95th+ percentile. *)
let fork_exec_cost rng =
  0.0012 +. Rng.exponential rng ~mean:0.0023

let fork_exec t ?(rss_kb = 1_400) ~name () =
  Machine.consume_any t.machine (fork_exec_cost t.rng);
  (match Frames.alloc (Machine.mem t.machine) ~owner:t.next_pid ~kb:rss_kb
   with
  | Ok () -> ()
  | Error Frames.ENOMEM -> failwith "Process.fork_exec: out of memory");
  let proc =
    { pid = t.next_pid; p_name = name; p_rss_kb = rss_kb; alive = true }
  in
  t.next_pid <- t.next_pid + 1;
  Hashtbl.replace t.procs proc.pid proc;
  proc

let kill t proc =
  if proc.alive then begin
    proc.alive <- false;
    ignore (Frames.free_all (Machine.mem t.machine) ~owner:proc.pid);
    Hashtbl.remove t.procs proc.pid
  end

let running t = Hashtbl.length t.procs

let rss_kb t =
  Hashtbl.fold (fun _ p acc -> acc + p.p_rss_kb) t.procs 0

let proc_name p = p.p_name
