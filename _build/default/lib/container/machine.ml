module Params = Lightvm_hv.Params
module Frames = Lightvm_hv.Frames
module Cpu = Lightvm_sim.Cpu

type t = {
  platform : Params.platform;
  cpu : Cpu.t;
  mem : Frames.t;
  mutable rr : int;
}

let kernel_owner = -1

let kernel_mem_kb = 600 * 1024 (* host kernel + base system *)

let create ?(platform = Params.xeon_e5_1630) () =
  let mem = Frames.create ~total_kb:(platform.Params.ram_mb * 1024) in
  (match Frames.alloc mem ~owner:kernel_owner ~kb:kernel_mem_kb with
  | Ok () -> ()
  | Error Frames.ENOMEM -> invalid_arg "Machine.create: host too small");
  {
    platform;
    cpu =
      Cpu.create ~speed:platform.Params.speed ~ncores:platform.Params.cores
        ();
    mem;
    rr = 0;
  }

let platform t = t.platform
let cpu t = t.cpu
let mem t = t.mem

let consume t ~core work = Cpu.consume t.cpu ~core work

let consume_any t work =
  let cores = List.init t.platform.Params.cores Fun.id in
  Cpu.consume t.cpu ~core:(Cpu.pick_least_loaded t.cpu ~cores) work

let pick_core t =
  let core = t.rr mod t.platform.Params.cores in
  t.rr <- t.rr + 1;
  core

let free_mem_kb t = Frames.free_kb t.mem
let used_mem_kb t = Frames.used_kb t.mem
