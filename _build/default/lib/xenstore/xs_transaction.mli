(** XenStore transactions.

    A transaction runs against a private store view snapshotted at
    start (O(1), thanks to the immutable tree). Every operation is
    journaled; commit validates the journal against the live store —
    every read must yield the result it yielded inside the transaction —
    and then applies the writes atomically. A validation failure is the
    paper's "failed transactions that need to be retried": the caller
    gets [EAGAIN]. *)

type t

type op_result =
  | Value of (string, Xs_error.t) result
  | Listing of (string list, Xs_error.t) result
  | Unit of (unit, Xs_error.t) result

val start : Xs_store.t -> id:int -> t

val id : t -> int

val view : t -> Xs_store.t
(** The private view; callers run ordinary {!Xs_store} operations on it
    through the journaling wrappers below. *)

val read : t -> caller:int -> Xs_path.t -> (string, Xs_error.t) result

val directory :
  t -> caller:int -> Xs_path.t -> (string list, Xs_error.t) result

val write : t -> caller:int -> Xs_path.t -> string -> (unit, Xs_error.t) result

val mkdir : t -> caller:int -> Xs_path.t -> (unit, Xs_error.t) result

val rm : t -> caller:int -> Xs_path.t -> (unit, Xs_error.t) result

val set_perms :
  t -> caller:int -> Xs_path.t -> Xs_perms.t -> (unit, Xs_error.t) result

val op_count : t -> int

val writes : t -> Xs_path.t list
(** Paths modified inside the transaction, in application order (used
    for firing watches after a successful commit). *)

val commit :
  t -> into:Xs_store.t -> (Xs_path.t list, Xs_error.t) result
(** Validate + apply. [Ok modified_paths] on success; [Error EAGAIN] on
    conflict. When the live store has not changed since [start] the
    journal replays without validation overhead. *)

val abort : t -> unit
