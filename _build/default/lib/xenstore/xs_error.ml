type t =
  | ENOENT
  | EACCES
  | EEXIST
  | EINVAL
  | EAGAIN
  | EQUOTA
  | ENOSPC
  | EBUSY
  | EISDIR

let to_string = function
  | ENOENT -> "ENOENT"
  | EACCES -> "EACCES"
  | EEXIST -> "EEXIST"
  | EINVAL -> "EINVAL"
  | EAGAIN -> "EAGAIN"
  | EQUOTA -> "EQUOTA"
  | ENOSPC -> "ENOSPC"
  | EBUSY -> "EBUSY"
  | EISDIR -> "EISDIR"

let of_string = function
  | "ENOENT" -> Some ENOENT
  | "EACCES" -> Some EACCES
  | "EEXIST" -> Some EEXIST
  | "EINVAL" -> Some EINVAL
  | "EAGAIN" -> Some EAGAIN
  | "EQUOTA" -> Some EQUOTA
  | "ENOSPC" -> Some ENOSPC
  | "EBUSY" -> Some EBUSY
  | "EISDIR" -> Some EISDIR
  | _ -> None

let pp fmt t = Format.pp_print_string fmt (to_string t)

exception Error of t
