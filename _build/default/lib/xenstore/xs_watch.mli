(** Watch registry.

    A watch pairs a path with a client token; any modification at or
    below the path fires an event carrying the *modified* path and the
    token. Matching deliberately scans the whole registry — the linear
    cost in the number of registered watches is one of the scalability
    problems the paper measures, and {!Xs_server} charges simulated time
    per watch examined. *)

type event = { event_path : Xs_path.t; token : string }

type t

val create : unit -> t

val count : t -> int

val count_for : t -> owner:int -> int

val add :
  t ->
  owner:int ->
  path:Xs_path.t ->
  token:string ->
  deliver:(event -> unit) ->
  unit

val remove : t -> owner:int -> path:Xs_path.t -> token:string -> bool
(** [true] when something was removed. *)

val remove_owner : t -> owner:int -> int
(** Drop all watches of a domain (on release); returns how many. *)

val matching : t -> modified:Xs_path.t -> (Xs_path.t * string * (event -> unit)) list
(** Watches whose path is a prefix of (or equal to) [modified], in
    registration order, as [(watch_path, token, deliver)]. Special
    paths ([@introduceDomain], [@releaseDomain]) only match exactly. *)
