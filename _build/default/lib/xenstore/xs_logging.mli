(** Access-log model.

    The real xenstored appends every access to its log and rotates a
    ring of files when the current one reaches a line limit. Rotation
    stalls the (single-threaded) daemon — the paper traces the regular
    spikes in Figures 4 and 9 to exactly this. *)

type t

val create : ?files:int -> ?rotate_lines:int -> enabled:bool -> unit -> t
(** Defaults follow the paper: 20 files, 13,215 lines per file. *)

val enabled : t -> bool

val log_access : t -> lines:int -> bool
(** Record [lines] of log output; [true] iff a rotation was triggered
    (at most one per call). No-op (and [false]) when disabled. *)

val total_lines : t -> int

val rotations : t -> int

val lines_in_current : t -> int

val files : t -> int
(** Size of the rotation ring; rotation cost scales with it. *)
