type t = {
  files : int;
  rotate_lines : int;
  on : bool;
  mutable current : int;
  mutable total : int;
  mutable rotations : int;
}

let create ?(files = 20) ?(rotate_lines = 13_215) ~enabled () =
  if files < 1 then invalid_arg "Xs_logging.create: files < 1";
  if rotate_lines < 1 then invalid_arg "Xs_logging.create: rotate_lines < 1";
  { files; rotate_lines; on = enabled; current = 0; total = 0; rotations = 0 }

let enabled t = t.on

let log_access t ~lines =
  if not t.on then false
  else begin
    t.current <- t.current + lines;
    t.total <- t.total + lines;
    if t.current >= t.rotate_lines then begin
      t.current <- 0;
      t.rotations <- t.rotations + 1;
      true
    end
    else false
  end

let total_lines t = t.total
let rotations t = t.rotations
let lines_in_current t = t.current
let files t = t.files
