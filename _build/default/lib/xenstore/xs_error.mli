(** XenStore error codes, matching the strings the real daemon puts in
    XS_ERROR replies. *)

type t =
  | ENOENT  (** no such node *)
  | EACCES  (** permission denied *)
  | EEXIST  (** node already exists (mkdir) *)
  | EINVAL  (** malformed request *)
  | EAGAIN  (** transaction conflict; caller should retry *)
  | EQUOTA  (** per-domain entry quota exhausted *)
  | ENOSPC  (** store full *)
  | EBUSY   (** too many in-flight transactions *)
  | EISDIR  (** operation needs a leaf *)

val to_string : t -> string

val of_string : string -> t option

val pp : Format.formatter -> t -> unit

exception Error of t
(** Used by the client convenience wrappers; the store itself returns
    [result]s. *)
