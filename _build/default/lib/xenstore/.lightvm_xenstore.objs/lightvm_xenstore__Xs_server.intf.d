lib/xenstore/xs_server.mli: Xs_costs Xs_error Xs_path Xs_perms Xs_store Xs_watch
