lib/xenstore/xs_error.mli: Format
