lib/xenstore/xs_path.mli: Format
