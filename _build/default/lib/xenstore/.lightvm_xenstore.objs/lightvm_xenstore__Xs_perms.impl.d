lib/xenstore/xs_perms.ml: Format List Option Printf String
