lib/xenstore/xs_wire.ml: Bytes Int32 List Printf String
