lib/xenstore/xs_logging.mli:
