lib/xenstore/xs_client.ml: List Xs_error Xs_path Xs_server
