lib/xenstore/xs_costs.ml:
