lib/xenstore/xs_wire.mli:
