lib/xenstore/xs_perms.mli: Format
