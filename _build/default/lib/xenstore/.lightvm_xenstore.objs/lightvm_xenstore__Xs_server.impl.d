lib/xenstore/xs_server.ml: Hashtbl Int32 Lightvm_sim List String Xs_costs Xs_error Xs_logging Xs_path Xs_perms Xs_store Xs_transaction Xs_watch Xs_wire
