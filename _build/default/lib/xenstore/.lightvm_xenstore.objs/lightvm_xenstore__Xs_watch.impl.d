lib/xenstore/xs_watch.ml: List Xs_path
