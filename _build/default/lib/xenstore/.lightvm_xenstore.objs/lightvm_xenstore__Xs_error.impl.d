lib/xenstore/xs_error.ml: Format
