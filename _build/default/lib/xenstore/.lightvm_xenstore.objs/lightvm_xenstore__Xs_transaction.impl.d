lib/xenstore/xs_transaction.ml: List Xs_error Xs_path Xs_perms Xs_store
