lib/xenstore/xs_path.ml: Format List Printf String
