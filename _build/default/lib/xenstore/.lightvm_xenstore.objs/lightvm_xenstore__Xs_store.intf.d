lib/xenstore/xs_store.mli: Xs_error Xs_path Xs_perms
