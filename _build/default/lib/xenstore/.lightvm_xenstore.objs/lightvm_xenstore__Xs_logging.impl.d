lib/xenstore/xs_logging.ml:
