lib/xenstore/xs_store.ml: Hashtbl List Map Option String Xs_error Xs_path Xs_perms
