lib/xenstore/xs_transaction.mli: Xs_error Xs_path Xs_perms Xs_store
