lib/xenstore/xs_client.mli: Xs_perms Xs_server Xs_watch
