lib/xenstore/xs_watch.mli: Xs_path
