(** Convenience client over {!Xs_server} — the moral equivalent of
    libxs. Raises {!Xs_error.Error} instead of returning results, and
    adds the small helpers toolstacks lean on. *)

type t

val connect : Xs_server.t -> domid:int -> t

val domid : t -> int

val server : t -> Xs_server.t

val read : t -> ?tx:int -> string -> string
(** Raises [Error ENOENT] etc. *)

val read_opt : t -> ?tx:int -> string -> string option

val write : t -> ?tx:int -> string -> string -> unit

val mkdir : t -> ?tx:int -> string -> unit

val rm : t -> ?tx:int -> string -> unit

val directory : t -> ?tx:int -> string -> string list

val set_perms : t -> ?tx:int -> string -> Xs_perms.t -> unit

val watch :
  t -> path:string -> token:string -> deliver:(Xs_watch.event -> unit) ->
  unit

val unwatch : t -> path:string -> token:string -> unit

val with_transaction : t -> (int -> unit) -> unit
(** Retries on conflict; raises on other errors. *)

val get_domain_path : t -> int -> string

val introduce : t -> int -> unit

val release : t -> int -> unit

val write_many : t -> ?tx:int -> (string * string) list -> unit
(** One write per pair, in order. *)
