type event = { event_path : Xs_path.t; token : string }

type watch = {
  owner : int;
  path : Xs_path.t;
  token : string;
  deliver : event -> unit;
}

type t = { mutable watches : watch list (* reversed registration order *) }

let create () = { watches = [] }

let count t = List.length t.watches

let count_for t ~owner =
  List.length (List.filter (fun w -> w.owner = owner) t.watches)

let add t ~owner ~path ~token ~deliver =
  t.watches <- { owner; path; token; deliver } :: t.watches

let remove t ~owner ~path ~token =
  let before = List.length t.watches in
  t.watches <-
    List.filter
      (fun w ->
        not
          (w.owner = owner
          && Xs_path.equal w.path path
          && w.token = token))
      t.watches;
  List.length t.watches < before

let remove_owner t ~owner =
  let before = List.length t.watches in
  t.watches <- List.filter (fun w -> w.owner <> owner) t.watches;
  before - List.length t.watches

let matching t ~modified =
  let matches w =
    if Xs_path.is_special w.path || Xs_path.is_special modified then
      Xs_path.equal w.path modified
    else Xs_path.is_prefix w.path ~of_:modified
  in
  List.rev_map
    (fun w -> (w.path, w.token, w.deliver))
    (List.filter matches t.watches)
