type op =
  | Debug
  | Directory
  | Read
  | Get_perms
  | Watch
  | Unwatch
  | Transaction_start
  | Transaction_end
  | Introduce
  | Release
  | Get_domain_path
  | Write
  | Mkdir
  | Rm
  | Set_perms
  | Watch_event
  | Error
  | Is_domain_introduced
  | Resume
  | Set_target

let op_table =
  [
    (Debug, 0);
    (Directory, 1);
    (Read, 2);
    (Get_perms, 3);
    (Watch, 4);
    (Unwatch, 5);
    (Transaction_start, 6);
    (Transaction_end, 7);
    (Introduce, 8);
    (Release, 9);
    (Get_domain_path, 10);
    (Write, 11);
    (Mkdir, 12);
    (Rm, 13);
    (Set_perms, 14);
    (Watch_event, 15);
    (Error, 16);
    (Is_domain_introduced, 17);
    (Resume, 18);
    (Set_target, 19);
  ]

let op_to_int op = List.assoc op op_table

let op_of_int n =
  List.find_map (fun (op, i) -> if i = n then Some op else None) op_table

type header = {
  op : op;
  req_id : int32;
  tx_id : int32;
  len : int;
}

let header_size = 16
let max_payload = 4096

exception Malformed of string

let payload_bytes strings =
  List.fold_left (fun acc s -> acc + String.length s + 1) 0 strings

let pack op ~req_id ~tx_id strings =
  let len = payload_bytes strings in
  if len > max_payload then
    raise (Malformed (Printf.sprintf "payload too large: %d" len));
  let buf = Bytes.create (header_size + len) in
  Bytes.set_int32_le buf 0 (Int32.of_int (op_to_int op));
  Bytes.set_int32_le buf 4 req_id;
  Bytes.set_int32_le buf 8 tx_id;
  Bytes.set_int32_le buf 12 (Int32.of_int len);
  let pos = ref header_size in
  List.iter
    (fun s ->
      Bytes.blit_string s 0 buf !pos (String.length s);
      Bytes.set buf (!pos + String.length s) '\000';
      pos := !pos + String.length s + 1)
    strings;
  buf

let unpack_header buf =
  if Bytes.length buf < header_size then
    raise (Malformed "short header");
  let opcode = Int32.to_int (Bytes.get_int32_le buf 0) in
  match op_of_int opcode with
  | None -> raise (Malformed (Printf.sprintf "unknown op %d" opcode))
  | Some op ->
      {
        op;
        req_id = Bytes.get_int32_le buf 4;
        tx_id = Bytes.get_int32_le buf 8;
        len = Int32.to_int (Bytes.get_int32_le buf 12);
      }

let unpack buf =
  let header = unpack_header buf in
  if Bytes.length buf < header_size + header.len then
    raise (Malformed "truncated payload");
  if header.len > max_payload then raise (Malformed "oversized payload");
  let payload = Bytes.sub_string buf header_size header.len in
  let strings =
    match String.split_on_char '\000' payload with
    | [] -> []
    | parts -> (
        (* Each string is NUL-terminated, so a well-formed payload ends
           with an empty fragment; drop it. *)
        match List.rev parts with
        | "" :: rest -> List.rev rest
        | _ -> parts)
  in
  (header, strings)
