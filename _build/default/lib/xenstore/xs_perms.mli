(** Node permissions, following the XenStore ACL model: a node has an
    owning domain (which may always read and write it), a default
    permission for everyone else, and an explicit per-domain ACL.
    Dom0 bypasses all checks. *)

type role =
  | None_  (** no access *)
  | Read
  | Write
  | Both

type t

val make : owner:int -> ?default:role -> ?acl:(int * role) list -> unit -> t

val owner : t -> int

val default_role : t -> role

val acl : t -> (int * role) list

val owned_default : int -> t
(** Owner-only access, the default for freshly created nodes. *)

val can_read : t -> domid:int -> bool

val can_write : t -> domid:int -> bool

val grant : t -> domid:int -> role -> t
(** Add or replace an ACL entry. *)

val to_string : t -> string
(** Wire encoding, e.g. ["n3,r0,b5"]: first entry is owner+default,
    the rest the ACL. *)

val of_string : string -> t option

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
