type role = None_ | Read | Write | Both

type t = { owner : int; default : role; acl : (int * role) list }

let make ~owner ?(default = None_) ?(acl = []) () = { owner; default; acl }

let owner t = t.owner
let default_role t = t.default
let acl t = t.acl

let owned_default owner = { owner; default = None_; acl = [] }

let role_for t domid =
  if domid = t.owner then Both
  else
    match List.assoc_opt domid t.acl with
    | Some r -> r
    | None -> t.default

let can_read t ~domid =
  domid = 0
  || match role_for t domid with Read | Both -> true | None_ | Write -> false

let can_write t ~domid =
  domid = 0
  || match role_for t domid with Write | Both -> true | None_ | Read -> false

let grant t ~domid role =
  let acl = (domid, role) :: List.remove_assoc domid t.acl in
  { t with acl }

let role_char = function
  | None_ -> 'n'
  | Read -> 'r'
  | Write -> 'w'
  | Both -> 'b'

let role_of_char = function
  | 'n' -> Some None_
  | 'r' -> Some Read
  | 'w' -> Some Write
  | 'b' -> Some Both
  | _ -> None

let to_string t =
  let entry role domid = Printf.sprintf "%c%d" (role_char role) domid in
  String.concat ","
    (entry t.default t.owner
    :: List.map (fun (domid, role) -> entry role domid) t.acl)

let of_string s =
  let parse_entry e =
    if String.length e < 2 then None
    else
      match role_of_char e.[0] with
      | None -> None
      | Some role -> (
          match int_of_string_opt (String.sub e 1 (String.length e - 1)) with
          | Some domid when domid >= 0 -> Some (domid, role)
          | Some _ | None -> None)
  in
  match String.split_on_char ',' s with
  | [] | [ "" ] -> None
  | first :: rest -> (
      match parse_entry first with
      | None -> None
      | Some (owner, default) ->
          let rec parse_acl acc = function
            | [] -> Some (List.rev acc)
            | e :: tl -> (
                match parse_entry e with
                | None -> None
                | Some (domid, role) -> parse_acl ((domid, role) :: acc) tl)
          in
          Option.map
            (fun acl -> { owner; default; acl })
            (parse_acl [] rest))

let equal a b = a = b

let pp fmt t = Format.pp_print_string fmt (to_string t)
