type t =
  | Absolute of string list
  | Special of string (* "@introduceDomain" / "@releaseDomain" *)

exception Invalid of string

let max_path_length = 3072
let max_segment_length = 256

let root = Absolute []

let segment_char_ok c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '-' || c = '.' || c = ':' || c = '@' || c = '+'

let check_segment s =
  if s = "" then raise (Invalid "empty path segment");
  if String.length s > max_segment_length then
    raise (Invalid ("segment too long: " ^ s));
  String.iter
    (fun c ->
      if not (segment_char_ok c) then
        raise (Invalid (Printf.sprintf "illegal character %C in %S" c s)))
    s

let specials = [ "@introduceDomain"; "@releaseDomain" ]

let of_string s =
  if List.mem s specials then Special s
  else begin
    if String.length s > max_path_length then raise (Invalid "path too long");
    if s = "" then raise (Invalid "empty path");
    if s.[0] <> '/' then raise (Invalid ("path not absolute: " ^ s));
    if s = "/" then root
    else begin
      (* Tolerate a single trailing slash, as the real daemon does. *)
      let s =
        if String.length s > 1 && s.[String.length s - 1] = '/' then
          String.sub s 0 (String.length s - 1)
        else s
      in
      let parts = String.split_on_char '/' s in
      match parts with
      | "" :: segs ->
          List.iter check_segment segs;
          Absolute segs
      | _ -> raise (Invalid ("path not absolute: " ^ s))
    end
  end

let of_string_opt s = try Some (of_string s) with Invalid _ -> None

let to_string = function
  | Special s -> s
  | Absolute [] -> "/"
  | Absolute segs -> "/" ^ String.concat "/" segs

let segments = function Special _ -> [] | Absolute segs -> segs

let is_special = function Special _ -> true | Absolute _ -> false

let depth = function Special _ -> 0 | Absolute segs -> List.length segs

let concat p seg =
  match p with
  | Special _ -> raise (Invalid "cannot extend a special path")
  | Absolute segs ->
      check_segment seg;
      Absolute (segs @ [ seg ])

let ( / ) = concat

let parent = function
  | Special _ -> None
  | Absolute [] -> None
  | Absolute segs ->
      let rec drop_last = function
        | [] | [ _ ] -> []
        | x :: rest -> x :: drop_last rest
      in
      Some (Absolute (drop_last segs))

let basename = function
  | Special _ -> None
  | Absolute [] -> None
  | Absolute segs -> Some (List.nth segs (List.length segs - 1))

let is_prefix p ~of_ =
  match (p, of_) with
  | Special a, Special b -> a = b
  | Special _, _ | _, Special _ -> false
  | Absolute a, Absolute b ->
      let rec go = function
        | [], _ -> true
        | _, [] -> false
        | x :: xs, y :: ys -> x = y && go (xs, ys)
      in
      go (a, b)

let equal a b = a = b
let compare a b = compare (to_string a) (to_string b)
let pp fmt t = Format.pp_print_string fmt (to_string t)

let domain_path domid =
  Absolute [ "local"; "domain"; string_of_int domid ]
