type journal_entry =
  | J_read of int * Xs_path.t * (string, Xs_error.t) result
  | J_directory of int * Xs_path.t * (string list, Xs_error.t) result
  | J_write of int * Xs_path.t * string
  | J_mkdir of int * Xs_path.t
  | J_rm of int * Xs_path.t
  | J_set_perms of int * Xs_path.t * Xs_perms.t

type op_result =
  | Value of (string, Xs_error.t) result
  | Listing of (string list, Xs_error.t) result
  | Unit of (unit, Xs_error.t) result

type t = {
  tx_id : int;
  base_generation : int;
  view : Xs_store.t;
  mutable journal : journal_entry list; (* reversed *)
  mutable aborted : bool;
}

let start store ~id =
  {
    tx_id = id;
    base_generation = Xs_store.generation store;
    view = Xs_store.of_snapshot (Xs_store.snapshot store);
    journal = [];
    aborted = false;
  }

let id t = t.tx_id
let view t = t.view

let record t e = t.journal <- e :: t.journal

let read t ~caller path =
  let r = Xs_store.read t.view ~caller path in
  record t (J_read (caller, path, r));
  r

let directory t ~caller path =
  let r = Xs_store.directory t.view ~caller path in
  record t (J_directory (caller, path, r));
  r

let write t ~caller path value =
  let r = Xs_store.write t.view ~caller path value in
  if r = Ok () then record t (J_write (caller, path, value));
  r

let mkdir t ~caller path =
  let r = Xs_store.mkdir t.view ~caller path in
  if r = Ok () then record t (J_mkdir (caller, path));
  r

let rm t ~caller path =
  let r = Xs_store.rm t.view ~caller path in
  if r = Ok () then record t (J_rm (caller, path));
  r

let set_perms t ~caller path perms =
  let r = Xs_store.set_perms t.view ~caller path perms in
  if r = Ok () then record t (J_set_perms (caller, path, perms));
  r

let op_count t = List.length t.journal

let entry_write_path = function
  | J_write (_, p, _) | J_mkdir (_, p) | J_rm (_, p)
  | J_set_perms (_, p, _) ->
      Some p
  | J_read _ | J_directory _ -> None

let writes t =
  List.filter_map entry_write_path (List.rev t.journal)

exception Conflict

let replay_into store entries =
  let apply = function
    | J_read (caller, path, expected) ->
        if Xs_store.read store ~caller path <> expected then raise Conflict
    | J_directory (caller, path, expected) ->
        if Xs_store.directory store ~caller path <> expected then
          raise Conflict
    | J_write (caller, path, value) ->
        if Xs_store.write store ~caller path value <> Ok () then
          raise Conflict
    | J_mkdir (caller, path) ->
        if Xs_store.mkdir store ~caller path <> Ok () then raise Conflict
    | J_rm (caller, path) ->
        if Xs_store.rm store ~caller path <> Ok () then raise Conflict
    | J_set_perms (caller, path, perms) ->
        if Xs_store.set_perms store ~caller path perms <> Ok () then
          raise Conflict
  in
  List.iter apply entries

let commit t ~into:store =
  if t.aborted then Error Xs_error.EINVAL
  else begin
    let modified = writes t in
    if Xs_store.generation store = t.base_generation then begin
      (* Fast path: nothing else touched the store. Re-apply journaled
         writes directly; they cannot conflict. *)
      (try replay_into store (List.rev t.journal)
       with Conflict -> assert false);
      Ok modified
    end
    else begin
      (* Validate + apply against a scratch copy so failure leaves the
         live store untouched. *)
      let scratch = Xs_store.of_snapshot (Xs_store.snapshot store) in
      match replay_into scratch (List.rev t.journal) with
      | () ->
          (* Apply for real, now that validation passed. *)
          (try replay_into store (List.rev t.journal)
           with Conflict ->
             (* Cannot happen: the live store has not changed since the
                scratch copy was taken (single-threaded server). *)
             assert false);
          Ok modified
      | exception Conflict -> Error Xs_error.EAGAIN
    end
  end

let abort t = t.aborted <- true
