(** Lightweight compute service (Section 7.4, Figs 17 and 18).

    A Dom0 daemon receives compute requests — real mini-Python
    programs — and spawns a Minipython unikernel per request; the VM
    runs the program through the {!Lightvm_minipy} interpreter (its
    step count converted to guest CPU time) and shuts down. Requests
    arrive every 250 ms while the three guest cores can only retire one
    ~0.8 s job every ~266 ms, so the host is slightly overloaded and
    VMs back up — the regime where noxs beats the XenStore by keeping
    booting VMs off the store. *)

type config = {
  requests : int;
  inter_arrival : float;  (** paper: 250 ms *)
  mode : Lightvm_toolstack.Mode.t;
  program : string;  (** mini-Python source each request runs *)
  compute_seconds : float;
      (** guest CPU work the program represents (paper: ~0.8 s) *)
}

val approx_e_program : string
(** The paper's workload: a series approximation of e. *)

val default_config : Lightvm_toolstack.Mode.t -> config

type result = {
  service_times : (int * float) list;
      (** (request index, arrival-to-completion seconds) *)
  concurrency : (float * int) list;
      (** (time, live VMs) sampled over the run *)
  outputs_ok : bool;
      (** every program run printed the expected result *)
  failures : int;
  makespan : float;
}

val run : config -> result
