(** Personal firewalls at the mobile edge (Section 7.1).

    A real 5-tuple rule engine (first-match semantics) provides the
    per-packet work; the capacity experiment then runs one ClickOS
    firewall VM per mobile user on a 14-core host, each user offering a
    10 Mbps flow, and reports aggregate throughput plus the
    scheduling-induced RTT of a ping through one of the VMs
    (Fig 16a). *)

(** {1 Rule engine} *)

type action = Allow | Drop

type rule = {
  src_prefix : int * int;  (** (address, mask bits) over int32-ish ints *)
  dst_prefix : int * int;
  proto : [ `Tcp | `Udp | `Icmp | `Any ];
  dport : int * int;  (** inclusive range; (0, 65535) = any *)
  rule_action : action;
}

type ruleset

type packet_info = {
  src_ip : int;
  dst_ip : int;
  pkt_proto : [ `Tcp | `Udp | `Icmp ];
  pkt_dport : int;
}

val rule :
  ?src:int * int -> ?dst:int * int -> ?proto:[ `Tcp | `Udp | `Icmp | `Any ] ->
  ?dport:int * int -> action -> rule

val compile : rule list -> default:action -> ruleset

val rule_count : ruleset -> int

val eval : ruleset -> packet_info -> action
(** First matching rule wins; [default] otherwise. *)

val personal_ruleset : user_id:int -> ruleset
(** The per-user firewall configuration the experiment deploys: block
    inbound except established/well-known, with some user-specific
    holes. *)

val per_packet_cpu : ruleset -> float
(** Reference CPU per packet through this ruleset (ClickOS fast path +
    per-rule matching). *)

(** {1 Capacity experiment} *)

type point = {
  active_users : int;
  total_gbps : float;
  per_user_mbps : float;
  rtt_ms : float;
}

val capacity :
  ?platform:Lightvm_hv.Params.platform ->
  ?per_user_mbps:float ->
  users:int list ->
  unit ->
  point list
(** For each user count: one firewall VM per user pinned round-robin on
    the guest cores, each offering [per_user_mbps] (default 10, "typical
    4G speeds in busy cells"); throughput from max-min fair CPU sharing,
    RTT from the run-queue length ahead of the ping VM. *)
