module Engine = Lightvm_sim.Engine
module Switch = Lightvm_net.Switch
module Packet = Lightvm_net.Packet
module Xen = Lightvm_hv.Xen

let day_names =
  [| "Thursday"; "Friday"; "Saturday"; "Sunday"; "Monday"; "Tuesday";
     "Wednesday" |]
(* The simulation epoch (t = 0) is the Unix epoch: 1970-01-01 was a
   Thursday. *)

let month_lengths ~leap =
  [| 31; (if leap then 29 else 28); 31; 30; 31; 30; 31; 31; 30; 31; 30;
     31 |]

let month_names =
  [| "January"; "February"; "March"; "April"; "May"; "June"; "July";
     "August"; "September"; "October"; "November"; "December" |]

let is_leap y = (y mod 4 = 0 && y mod 100 <> 0) || y mod 400 = 0

let format_time t =
  let total_seconds = int_of_float t in
  let days = total_seconds / 86_400 in
  let secs_of_day = total_seconds mod 86_400 in
  (* Walk years from 1970. *)
  let rec to_year year days =
    let len = if is_leap year then 366 else 365 in
    if days >= len then to_year (year + 1) (days - len) else (year, days)
  in
  let year, day_of_year = to_year 1970 days in
  let lengths = month_lengths ~leap:(is_leap year) in
  let rec to_month m d =
    if d >= lengths.(m) then to_month (m + 1) (d - lengths.(m))
    else (m, d + 1)
  in
  let month, day_of_month = to_month 0 day_of_year in
  Printf.sprintf "%s, %s %d, %d %d:%02d:%02d-UTC"
    day_names.(days mod 7)
    month_names.(month)
    day_of_month year (secs_of_day / 3600)
    (secs_of_day mod 3600 / 60)
    (secs_of_day mod 60)

type server = {
  switch : Switch.t;
  port : int;
  mutable served : int;
  mutable running : bool;
}

(* CPU to accept a connection, format the time and send it. *)
let per_connection_work = 35.0e-6

let start ~switch ~xen ~domid ~port =
  let server = { switch; port; served = 0; running = true } in
  Switch.attach switch ~port ~handler:(fun pkt ->
      if server.running && pkt.Packet.kind = Packet.Tcp
         && pkt.Packet.dst = Packet.Addr port
      then begin
        Xen.consume_guest xen ~domid per_connection_work;
        server.served <- server.served + 1;
        Switch.send switch
          (Packet.make ~src:port ~dst:(Packet.Addr pkt.Packet.src)
             ~kind:Packet.Tcp
             ~payload:(format_time (Engine.now ()))
             ~seq:pkt.Packet.seq ())
      end);
  server

let stop server =
  server.running <- false;
  Switch.detach server.switch ~port:server.port

let connections_served server = server.served

let query ~switch ~client_port ~server_port ~seq =
  let t0 = Engine.now () in
  let reply = Engine.Ivar.create () in
  Switch.attach switch ~port:client_port ~handler:(fun pkt ->
      if pkt.Packet.kind = Packet.Tcp && pkt.Packet.seq = seq
         && not (Engine.Ivar.is_full reply)
      then Engine.Ivar.fill reply pkt.Packet.payload);
  Switch.send switch
    (Packet.make ~src:client_port ~dst:(Packet.Addr server_port)
       ~kind:Packet.Tcp ~seq ());
  let daytime = Engine.Ivar.read reply in
  (daytime, Engine.now () -. t0)
