module Params = Lightvm_hv.Params
module Cpu = Lightvm_sim.Cpu
module Tls = Lightvm_net.Tls
module Stack = Lightvm_net.Stack

type backend =
  | Bare_metal
  | Tinyx_vm
  | Unikernel

let backend_name = function
  | Bare_metal -> "bare metal"
  | Tinyx_vm -> "Tinyx"
  | Unikernel -> "unikernel"

let stack_of = function
  | Bare_metal | Tinyx_vm -> Stack.linux
  | Unikernel -> Stack.lwip

(* Virtualization tax on the VM backends (grant copies, event
   channels); Tinyx performance "is very similar to that of running
   processes on a bare-metal Linux distribution". *)
let virt_overhead = function
  | Bare_metal -> 1.0
  | Tinyx_vm -> 1.04
  | Unikernel -> 1.02

let per_request_cpu ?(cipher = Tls.rsa_1024) backend =
  Tls.serve_request_cpu cipher ~stack:(stack_of backend) ~response_kb:0.2
  *. virt_overhead backend

let throughput ?(platform = Params.xeon_e5_2690) ?cipher backend
    ~instances =
  if instances <= 0 then 0.
  else begin
    (* Closed-loop clients keep every instance busy; an instance is
       single-threaded, so it can use at most one core, and instances
       sharing a core split it. *)
    let cores = platform.Params.cores in
    let busy_cores = min instances cores in
    let capacity =
      float_of_int busy_cores *. platform.Params.speed
    in
    capacity /. per_request_cpu ?cipher backend
  end

let sweep ?platform backend ~instances =
  List.map (fun n -> (n, throughput ?platform backend ~instances:n))
    instances

type memory_point = {
  mem_backend : backend;
  instance_mem_mb : float;
  boot_ms : float;
}

let footprint = function
  | Bare_metal ->
      { mem_backend = Bare_metal; instance_mem_mb = 2.5; boot_ms = 4. }
  | Tinyx_vm ->
      { mem_backend = Tinyx_vm; instance_mem_mb = 40.; boot_ms = 190. }
  | Unikernel ->
      { mem_backend = Unikernel; instance_mem_mb = 16.; boot_ms = 6. }

let serve_one cpu ~core backend =
  (* Drive the protocol state machine for real, then charge the
     backend's cost for the whole exchange. *)
  let final =
    List.fold_left
      (fun state msg ->
        match Tls.step state msg with
        | Ok s -> s
        | Error e -> invalid_arg ("TLS handshake broke: " ^ e))
      Tls.initial Tls.handshake_messages
  in
  assert (Tls.is_complete final);
  Cpu.consume cpu ~core (per_request_cpu backend)
