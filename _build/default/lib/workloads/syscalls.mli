(** The Linux syscall-API growth dataset behind Figure 1 — the paper's
    motivation for why the container attack surface keeps getting
    harder to secure. Counts are x86_32 syscall-table sizes per kernel
    release (approximate public values). *)

type point = {
  year : int;
  version : string;
  syscalls : int;
}

val data : point list
(** Chronological. *)

val series : unit -> Lightvm_metrics.Series.t
(** x = year, y = syscall count. *)

val growth_per_year : unit -> float
(** Least-squares slope (syscalls added per year). *)

val count_in : int -> int option
(** Count for the latest release at or before the given year. *)
