(** Just-in-time service instantiation (Section 7.2, Fig 16b).

    A dispatcher in Dom0 watches the software bridge; the first packet
    from a new client triggers the boot of that client's service VM,
    which then answers the client's ping. Clients ARP first — under
    fast arrivals the bridge sheds ARP broadcasts, those clients time
    out and retry, and the measured RTT distribution grows the long
    tail the paper shows. Idle VMs are torn down after two seconds. *)

type config = {
  arrival_interval : float;  (** open-loop client inter-arrival *)
  clients : int;
  mode : Lightvm_toolstack.Mode.t;
  arp_timeout : float;  (** client retry timer (default 1 s) *)
  max_retries : int;
  bridge_pps : float;
  idle_teardown : float;  (** destroy VMs idle this long (paper: 2 s) *)
}

val default_config : config

type result = {
  rtts : float list;  (** one measured RTT per client, arrival order *)
  cdf : Lightvm_metrics.Cdf.t;
  timeouts : int;  (** clients that needed at least one retry *)
  arp_drops : int;
  vms_booted : int;
  torn_down : int;  (** VMs destroyed by the idle reaper *)
}

val run : config -> result
(** Runs the whole experiment in one simulation. *)
