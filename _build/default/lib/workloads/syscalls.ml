type point = {
  year : int;
  version : string;
  syscalls : int;
}

(* Approximate x86_32 syscall-table sizes at each release (paper Fig 1:
   from about 200 in 2002 to about 400 by 2017). *)
let data =
  [
    { year = 2002; version = "2.5.31"; syscalls = 221 };
    { year = 2003; version = "2.6.0"; syscalls = 274 };
    { year = 2005; version = "2.6.11"; syscalls = 289 };
    { year = 2006; version = "2.6.16"; syscalls = 310 };
    { year = 2008; version = "2.6.24"; syscalls = 325 };
    { year = 2009; version = "2.6.32"; syscalls = 337 };
    { year = 2011; version = "3.0"; syscalls = 347 };
    { year = 2013; version = "3.10"; syscalls = 351 };
    { year = 2015; version = "4.0"; syscalls = 364 };
    { year = 2016; version = "4.8"; syscalls = 379 };
    { year = 2017; version = "4.14"; syscalls = 385 };
    { year = 2018; version = "4.17"; syscalls = 397 };
  ]

let series () =
  let s =
    Lightvm_metrics.Series.create ~unit_label:"syscalls"
      ~name:"linux-syscall-growth" ()
  in
  List.iter
    (fun p ->
      Lightvm_metrics.Series.add s ~x:(float_of_int p.year)
        ~y:(float_of_int p.syscalls))
    data;
  s

let growth_per_year () =
  let n = float_of_int (List.length data) in
  let sx, sy, sxy, sxx =
    List.fold_left
      (fun (sx, sy, sxy, sxx) p ->
        let x = float_of_int p.year and y = float_of_int p.syscalls in
        (sx +. x, sy +. y, sxy +. (x *. y), sxx +. (x *. x)))
      (0., 0., 0., 0.) data
  in
  ((n *. sxy) -. (sx *. sy)) /. ((n *. sxx) -. (sx *. sx))

let count_in year =
  List.fold_left
    (fun acc p -> if p.year <= year then Some p.syscalls else acc)
    None data
