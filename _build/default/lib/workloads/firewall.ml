module Params = Lightvm_hv.Params
module Flow = Lightvm_net.Flow

type action = Allow | Drop

type rule = {
  src_prefix : int * int;
  dst_prefix : int * int;
  proto : [ `Tcp | `Udp | `Icmp | `Any ];
  dport : int * int;
  rule_action : action;
}

type ruleset = { rules : rule list; default : action }

type packet_info = {
  src_ip : int;
  dst_ip : int;
  pkt_proto : [ `Tcp | `Udp | `Icmp ];
  pkt_dport : int;
}

let any_prefix = (0, 0)

let rule ?(src = any_prefix) ?(dst = any_prefix) ?(proto = `Any)
    ?(dport = (0, 65535)) action =
  { src_prefix = src; dst_prefix = dst; proto; dport;
    rule_action = action }

let compile rules ~default = { rules; default }

let rule_count rs = List.length rs.rules

let prefix_matches (addr, bits) ip =
  bits = 0
  ||
  let shift = 32 - bits in
  ip lsr shift = addr lsr shift

let proto_matches rule_proto pkt_proto =
  match rule_proto with
  | `Any -> true
  | (`Tcp | `Udp | `Icmp) as p -> p = (pkt_proto :> [ `Tcp | `Udp | `Icmp ])

let rule_matches r pkt =
  prefix_matches r.src_prefix pkt.src_ip
  && prefix_matches r.dst_prefix pkt.dst_ip
  && proto_matches r.proto pkt.pkt_proto
  && fst r.dport <= pkt.pkt_dport
  && pkt.pkt_dport <= snd r.dport

let eval rs pkt =
  let rec go = function
    | [] -> rs.default
    | r :: rest -> if rule_matches r pkt then r.rule_action else go rest
  in
  go rs.rules

(* One user's firewall: the 10.0.0.0/8 side is the operator network,
   user_id picks their personal address and open ports. *)
let personal_ruleset ~user_id =
  let user_ip = 0x0a000000 lor (user_id land 0xffffff) in
  compile ~default:Drop
    [
      (* Outbound from the user goes through. *)
      rule ~src:(user_ip, 32) Allow;
      (* Inbound web and DNS replies. *)
      rule ~dst:(user_ip, 32) ~proto:`Tcp ~dport:(80, 80) Allow;
      rule ~dst:(user_ip, 32) ~proto:`Tcp ~dport:(443, 443) Allow;
      rule ~dst:(user_ip, 32) ~proto:`Udp ~dport:(53, 53) Allow;
      (* ICMP diagnostics. *)
      rule ~dst:(user_ip, 32) ~proto:`Icmp Allow;
      (* A user-specific high port (e.g. a game). *)
      rule ~dst:(user_ip, 32) ~proto:`Udp
        ~dport:(10_000 + (user_id mod 1000), 10_000 + (user_id mod 1000))
        Allow;
      (* Known-bad ranges dropped explicitly (keeps the list busy). *)
      rule ~src:(0xc0a80000, 16) Drop;
      rule ~dst:(user_ip, 32) ~proto:`Tcp ~dport:(0, 1023) Drop;
    ]

(* ClickOS packet-processing cost: fast path plus linear rule
   matching. *)
let clickos_base_per_packet = 0.9e-6
let per_rule_cost = 8.0e-8

let per_packet_cpu rs =
  clickos_base_per_packet
  +. (float_of_int (rule_count rs) *. per_rule_cost)

(* With hundreds of VMs per core the dominant cost is not matching but
   waking a VM to handle its traffic; as load (and therefore queue
   depth) grows, more packets are handled per wakeup. This is why the
   paper's aggregate keeps climbing past the saturation knee: 2.5 Gbps
   at 250 users but 4 Gbps at 1000 (Fig 16a). *)
let vm_wakeup_cost = 30.0e-6
let vring_io_cost = 11.0e-6

let batch_factor ~active = 1. +. Float.min 1. (float_of_int active /. 1000.)

let effective_per_packet_cpu ~active rs =
  per_packet_cpu rs
  +. (vm_wakeup_cost /. batch_factor ~active)
  +. vring_io_cost

let packet_bits = 1500. *. 8.

(* Scheduling latency for the ping VM: the Xen credit scheduler
   round-robins through the runnable VMs on the core ("the Xen
   scheduler will effectively round-robin through the VMs"); each
   runnable VM ahead of us holds the core for roughly a boost-credit
   slice. Calibrated to ~60 ms at 1000 active users on 13 guest
   cores. *)
let boost_slice = 0.83e-3

type point = {
  active_users : int;
  total_gbps : float;
  per_user_mbps : float;
  rtt_ms : float;
}

let capacity ?(platform = Params.xeon_e5_2690) ?(per_user_mbps = 10.)
    ~users () =
  let guest_cores = Params.guest_cores platform in
  List.map
    (fun n ->
      let demands =
        List.init n (fun i ->
            let rs = personal_ruleset ~user_id:i in
            let cpu_per_bit =
              effective_per_packet_cpu ~active:n rs /. packet_bits
            in
            {
              Flow.flow_id = i;
              offered_bps = per_user_mbps *. 1e6;
              cpu_per_bit;
              core = i mod guest_cores;
            })
      in
      let allocs =
        Flow.allocate ~core_speed:platform.Params.speed ~demands
      in
      let total = Flow.total_bps allocs in
      (* Run-queue delay: VMs on the ping VM's core that cannot get
         their full demand are runnable essentially always. *)
      let vms_on_core0 =
        List.filter (fun d -> d.Flow.core = 0) demands
      in
      let core0_cpu_demand =
        List.fold_left
          (fun acc d -> acc +. (d.Flow.offered_bps *. d.Flow.cpu_per_bit))
          0. vms_on_core0
      in
      let saturated = core0_cpu_demand > platform.Params.speed in
      let queue_len =
        if saturated then List.length vms_on_core0
        else
          (* Lightly loaded: only a handful of VMs runnable at once. *)
          min (List.length vms_on_core0) 2
      in
      let rtt =
        (2. *. 0.15e-3) (* wire + switch both ways *)
        +. (float_of_int queue_len *. boost_slice)
      in
      {
        active_users = n;
        total_gbps = total /. 1e9;
        per_user_mbps = (if n = 0 then 0. else total /. float_of_int n /. 1e6);
        rtt_ms = rtt *. 1e3;
      })
    users
