module Engine = Lightvm_sim.Engine
module Xen = Lightvm_hv.Xen
module Image = Lightvm_guest.Image
module Guest = Lightvm_guest.Guest
module Mode = Lightvm_toolstack.Mode
module Vmconfig = Lightvm_toolstack.Vmconfig
module Toolstack = Lightvm_toolstack.Toolstack
module Create = Lightvm_toolstack.Create
module Interp = Lightvm_minipy.Interp
module Value = Lightvm_minipy.Value

type config = {
  requests : int;
  inter_arrival : float;
  mode : Mode.t;
  program : string;
  compute_seconds : float;
}

let approx_e_program =
  {|
def approx_e(n):
    total = 0.0
    fact = 1.0
    i = 0
    while i <= n:
        if i > 0:
            fact = fact * i
        total = total + 1.0 / fact
        i = i + 1
    return total

print(approx_e(17))
|}

let default_config mode =
  {
    requests = 1000;
    inter_arrival = 0.250;
    mode;
    program = approx_e_program;
    compute_seconds = 0.8;
  }

type result = {
  service_times : (int * float) list;
  concurrency : (float * int) list;
  outputs_ok : bool;
  failures : int;
  makespan : float;
}

let expected_output program =
  match Interp.run program with
  | Ok { Interp.stdout; _ } -> stdout
  | Error msg -> invalid_arg ("lambda program is broken: " ^ msg)

let run config =
  let expected = expected_output config.program in
  let service_times = ref [] in
  let concurrency = ref [] in
  let live = ref 0 in
  let failures = ref 0 in
  let bad_output = ref false in
  let makespan = ref 0. in
  ignore
    (Engine.run (fun () ->
         let xen = Xen.boot () in
         let ts = Toolstack.make ~xen ~mode:config.mode () in
         let vm_config i =
           Vmconfig.for_image
             ~name:(Printf.sprintf "lambda-%d" i)
             Image.minipython
         in
         if config.mode.Mode.split then
           Toolstack.prefill_pool ts (vm_config 0);
         let finished = ref 0 in
         let all_done = Engine.Ivar.create () in
         (* Sampler for the Fig 18 concurrency curve. *)
         let sampling = ref true in
         Engine.spawn ~name:"lambda-sampler" (fun () ->
             while !sampling do
               Engine.sleep 1.0;
               concurrency := (Engine.now (), !live) :: !concurrency
             done);
         let handle_request i () =
           let arrived = Engine.now () in
           incr live;
           (match Toolstack.create_vm ts (vm_config i) with
           | Error _ -> incr failures
           | Ok created ->
               Guest.wait_ready created.Create.guest;
               (* Run the program for real; charge its work as guest
                  CPU, scaled so this program costs
                  [config.compute_seconds]. *)
               (match Interp.run config.program with
               | Error _ -> bad_output := true
               | Ok { Interp.stdout; _ } ->
                   if stdout <> expected then bad_output := true);
               Xen.consume_guest xen ~domid:created.Create.domid
                 config.compute_seconds;
               Toolstack.destroy_vm ts created);
           decr live;
           service_times := (i, Engine.now () -. arrived) :: !service_times;
           incr finished;
           if !finished = config.requests then
             Engine.Ivar.fill all_done ()
         in
         for i = 0 to config.requests - 1 do
           Engine.spawn
             ~name:(Printf.sprintf "lambda-req-%d" i)
             (handle_request i);
           Engine.sleep config.inter_arrival
         done;
         Engine.Ivar.read all_done;
         makespan := Engine.now ();
         sampling := false));
  {
    service_times = List.sort compare !service_times;
    concurrency = List.rev !concurrency;
    outputs_ok = not !bad_output;
    failures = !failures;
    makespan = !makespan;
  }
