module Engine = Lightvm_sim.Engine
module Cdf = Lightvm_metrics.Cdf
module Xen = Lightvm_hv.Xen
module Image = Lightvm_guest.Image
module Guest = Lightvm_guest.Guest
module Mode = Lightvm_toolstack.Mode
module Vmconfig = Lightvm_toolstack.Vmconfig
module Toolstack = Lightvm_toolstack.Toolstack
module Create = Lightvm_toolstack.Create
module Packet = Lightvm_net.Packet
module Switch = Lightvm_net.Switch

type config = {
  arrival_interval : float;
  clients : int;
  mode : Mode.t;
  arp_timeout : float;
  max_retries : int;
  bridge_pps : float;
  idle_teardown : float;
}

let default_config =
  {
    arrival_interval = 0.025;
    clients = 150;
    mode = Mode.lightvm;
    arp_timeout = 1.0;
    max_retries = 3;
    bridge_pps = 20_000.;
    idle_teardown = 2.0;
  }

type result = {
  rtts : float list;
  cdf : Cdf.t;
  timeouts : int;
  arp_drops : int;
  vms_booted : int;
  torn_down : int;
}

let dispatcher_port = 1

(* All clients reach the edge box through one physical uplink, so the
   bridge's broadcast fanout is dispatcher + uplink + live service VMs
   (not one port per mobile client). *)
let uplink_port = 2

let service_addr i = 20_000 + i

type vm_state =
  | Booting of Packet.t list ref  (** pings stashed until the VM is up *)
  | Ready of Create.created

let run config =
  let rtts = Array.make config.clients nan in
  let retried = Array.make config.clients false in
  let vms_booted = ref 0 in
  let torn_down = ref 0 in
  let arp_drops = ref 0 in
  ignore
    (Engine.run (fun () ->
         let xen = Xen.boot () in
         let ts = Toolstack.make ~xen ~mode:config.mode () in
         let sw = Switch.create ~capacity_pps:config.bridge_pps () in
         let vms : (int, vm_state) Hashtbl.t = Hashtbl.create 64 in
         let last_activity : (int, float) Hashtbl.t = Hashtbl.create 64 in
         let vm_config i =
           Vmconfig.for_image
             ~name:(Printf.sprintf "svc-%d" i)
             Image.clickos_firewall
         in
         if config.mode.Mode.split then
           Toolstack.prefill_pool ts (vm_config 0);

         (* The service VM's behaviour once up: answer pings on its own
            port. *)
         let attach_vm i (created : Create.created) =
           Switch.attach sw ~port:(service_addr i)
             ~handler:(fun pkt ->
               match pkt.Packet.kind with
               | Packet.Icmp_echo
                 when pkt.Packet.dst = Packet.Addr (service_addr i) ->
                   Hashtbl.replace last_activity i (Engine.now ());
                   (* Echo handling costs a little guest CPU. *)
                   Xen.consume_guest xen ~domid:created.Create.domid
                     50.0e-6;
                   Switch.send sw
                     (Packet.make ~src:(service_addr i)
                        ~dst:(Packet.Addr pkt.Packet.src)
                        ~kind:Packet.Icmp_reply ~seq:pkt.Packet.seq ())
               | _ -> ())
         in

         (* Dispatcher: proxy-ARP, and boot-on-first-packet with the
            triggering ping stashed and re-injected once the VM is up
            (the Jitsu trick the paper builds on). *)
         let boot_vm i pending =
           Engine.spawn ~name:(Printf.sprintf "jit-boot-%d" i)
             (fun () ->
               match Toolstack.create_vm ts (vm_config i) with
               | Error _ -> Hashtbl.remove vms i
               | Ok created ->
                   Guest.wait_ready created.Create.guest;
                   incr vms_booted;
                   Hashtbl.replace vms i (Ready created);
                   Hashtbl.replace last_activity i (Engine.now ());
                   attach_vm i created;
                   (* Replay the packets that arrived while booting. *)
                   List.iter (Switch.send sw) (List.rev !pending);
                   pending := [])
         in
         Switch.attach sw ~port:dispatcher_port ~handler:(fun pkt ->
             match pkt.Packet.kind with
             | Packet.Arp_request ->
                 Switch.send sw
                   (Packet.make ~src:dispatcher_port
                      ~dst:(Packet.Addr pkt.Packet.src)
                      ~kind:Packet.Arp_reply ~seq:pkt.Packet.seq ())
             | Packet.Icmp_echo -> (
                 let i = pkt.Packet.seq in
                 match Hashtbl.find_opt vms i with
                 | Some (Ready _) -> () (* VM answers it itself *)
                 | Some (Booting pending) ->
                     pending := pkt :: !pending
                 | None ->
                     let pending = ref [ pkt ] in
                     Hashtbl.replace vms i (Booting pending);
                     boot_vm i pending)
             | _ -> ());

         (* Idle reaper: destroy VMs quiet for [idle_teardown]. *)
         let reaper_live = ref true in
         Engine.spawn ~name:"jit-reaper" (fun () ->
             while !reaper_live do
               Engine.sleep 0.5;
               let now = Engine.now () in
               Hashtbl.iter
                 (fun i last ->
                   if now -. last > config.idle_teardown then
                     match Hashtbl.find_opt vms i with
                     | Some (Ready created) ->
                         Hashtbl.remove vms i;
                         Hashtbl.remove last_activity i;
                         Switch.detach sw ~port:(service_addr i);
                         Toolstack.destroy_vm ts created;
                         incr torn_down
                     | Some (Booting _) | None -> ())
                 (Hashtbl.copy last_activity)
             done);

         (* Clients, multiplexed behind the uplink port. *)
         let client_rx : (int, Packet.t -> unit) Hashtbl.t =
           Hashtbl.create 64
         in
         Switch.attach sw ~port:uplink_port ~handler:(fun pkt ->
             match Hashtbl.find_opt client_rx pkt.Packet.seq with
             | Some handler -> handler pkt
             | None -> ());
         let client i () =
           let start = Engine.now () in
           let done_ = Engine.Ivar.create () in
           Hashtbl.replace client_rx i (fun pkt ->
               match pkt.Packet.kind with
               | Packet.Arp_reply when pkt.Packet.seq = i ->
                   Switch.send sw
                     (Packet.make ~src:uplink_port
                        ~dst:(Packet.Addr (service_addr i))
                        ~kind:Packet.Icmp_echo ~seq:i ())
               | Packet.Icmp_reply when pkt.Packet.seq = i ->
                   if not (Engine.Ivar.is_full done_) then
                     Engine.Ivar.fill done_ (Engine.now () -. start)
               | _ -> ());
           let send_arp () =
             Switch.send sw
               (Packet.make ~src:uplink_port ~dst:Packet.Broadcast
                  ~kind:Packet.Arp_request ~seq:i ())
           in
           send_arp ();
           (* Retry loop on timeout. *)
           let rec watch attempt =
             Engine.spawn ~name:(Printf.sprintf "client-%d-timer" i)
               (fun () ->
                 Engine.sleep config.arp_timeout;
                 if not (Engine.Ivar.is_full done_) then begin
                   retried.(i) <- true;
                   if attempt < config.max_retries then begin
                     send_arp ();
                     watch (attempt + 1)
                   end
                   else
                     Engine.Ivar.fill done_ (Engine.now () -. start)
                 end)
           in
           watch 1;
           let rtt = Engine.Ivar.read done_ in
           rtts.(i) <- rtt
         in
         for i = 0 to config.clients - 1 do
           Engine.spawn ~name:(Printf.sprintf "client-%d" i) (client i);
           Engine.sleep config.arrival_interval
         done;
         (* Let stragglers finish, then stop the reaper so the
            simulation drains. *)
         Engine.sleep
           (float_of_int (config.max_retries + 1) *. config.arp_timeout);
         arp_drops := Switch.dropped_broadcast sw;
         reaper_live := false));
  let rtt_list =
    Array.to_list rtts |> List.filter (fun r -> not (Float.is_nan r))
  in
  {
    rtts = rtt_list;
    cdf = Cdf.of_samples rtt_list;
    timeouts =
      Array.fold_left (fun acc r -> if r then acc + 1 else acc) 0 retried;
    arp_drops = !arp_drops;
    vms_booted = !vms_booted;
    torn_down = !torn_down;
  }
