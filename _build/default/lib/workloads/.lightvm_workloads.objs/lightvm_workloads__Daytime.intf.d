lib/workloads/daytime.mli: Lightvm_hv Lightvm_net
