lib/workloads/lambda.ml: Lightvm_guest Lightvm_hv Lightvm_minipy Lightvm_sim Lightvm_toolstack List Printf
