lib/workloads/tls_term.mli: Lightvm_hv Lightvm_net Lightvm_sim
