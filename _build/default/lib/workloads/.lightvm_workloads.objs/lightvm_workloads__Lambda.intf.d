lib/workloads/lambda.mli: Lightvm_toolstack
