lib/workloads/syscalls.mli: Lightvm_metrics
