lib/workloads/jit.mli: Lightvm_metrics Lightvm_toolstack
