lib/workloads/syscalls.ml: Lightvm_metrics List
