lib/workloads/jit.ml: Array Float Hashtbl Lightvm_guest Lightvm_hv Lightvm_metrics Lightvm_net Lightvm_sim Lightvm_toolstack List Printf
