lib/workloads/firewall.ml: Float Lightvm_hv Lightvm_net List
