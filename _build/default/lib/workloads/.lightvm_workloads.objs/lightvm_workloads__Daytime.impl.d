lib/workloads/daytime.ml: Array Lightvm_hv Lightvm_net Lightvm_sim Printf
