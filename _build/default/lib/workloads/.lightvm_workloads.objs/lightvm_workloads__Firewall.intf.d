lib/workloads/firewall.mli: Lightvm_hv
