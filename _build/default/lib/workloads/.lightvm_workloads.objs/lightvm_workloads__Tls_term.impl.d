lib/workloads/tls_term.ml: Lightvm_hv Lightvm_net Lightvm_sim List
