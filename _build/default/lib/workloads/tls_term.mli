(** High-density TLS termination (Section 7.3, Fig 16c).

    N terminating instances — bare-metal processes, Tinyx VMs or axtls
    unikernels — serve closed-loop HTTPS clients fetching an empty file
    with RSA-1024. Throughput rises while instances spread across idle
    cores and saturates at the host's aggregate RSA capacity; the
    unikernel plateaus at roughly a fifth of Tinyx because of lwip. *)

type backend =
  | Bare_metal  (** Linux process, Linux stack *)
  | Tinyx_vm  (** Tinyx guest, Linux stack, small virt overhead *)
  | Unikernel  (** axtls over MiniOS + lwip *)

val backend_name : backend -> string

val throughput :
  ?platform:Lightvm_hv.Params.platform ->
  ?cipher:Lightvm_net.Tls.cipher ->
  backend ->
  instances:int ->
  float
(** Requests per second served by [instances] of the backend under
    closed-loop load. *)

val sweep :
  ?platform:Lightvm_hv.Params.platform ->
  backend ->
  instances:int list ->
  (int * float) list

type memory_point = {
  mem_backend : backend;
  instance_mem_mb : float;
  boot_ms : float;
}

val footprint : backend -> memory_point
(** Paper numbers: unikernel 16 MB / ~6 ms boot; Tinyx 40 MB /
    ~190 ms. *)

val serve_one :
  Lightvm_sim.Cpu.t -> core:int -> backend -> unit
(** Serve one full handshake+request on a core of the simulated CPU —
    runs the real TLS state machine and charges its cost (used by the
    example program and tests). *)
