(** The daytime unikernel's application (Section 3.1): "only 50 LoC are
    needed to implement a TCP server over Mini-OS that returns the
    current time whenever it receives a connection". This is that
    server, running over the simulated switch with the virtual clock
    rendered in the classic RFC 867 style. *)

val format_time : float -> string
(** Render a virtual timestamp (seconds since simulation start) as a
    daytime string, e.g. ["Thursday, January 1, 1970 0:00:42-UTC"] —
    the simulation epoch is the Unix epoch. *)

type server

val start :
  switch:Lightvm_net.Switch.t ->
  xen:Lightvm_hv.Xen.t ->
  domid:int ->
  port:int ->
  server
(** Attach the daytime service to a switch port, answering TCP
    connections from the guest [domid] (each reply charges a little
    guest CPU). *)

val stop : server -> unit

val connections_served : server -> int

val query :
  switch:Lightvm_net.Switch.t ->
  client_port:int ->
  server_port:int ->
  seq:int ->
  string * float
(** Connect from [client_port] and block until the daytime string
    arrives; returns [(daytime, rtt_seconds)]. Must run inside a
    simulation. *)
