(** A running guest: the simulation process that boots the VM's kernel,
    brings up its device frontends (via xenbus or noxs), starts the
    application, and then generates the image's idle background load
    until stopped.

    Guest boot consumes CPU on the domain's assigned core, so boot time
    degrades with core contention exactly as in the paper's Figure 11. *)

type registry =
  | Xenbus of Lightvm_xenstore.Xs_client.t
      (** classic path; the client is the guest's own connection *)
  | Noxs of Ctrl.t  (** noxs path, with the control-page registry *)

type t

val start :
  xen:Lightvm_hv.Xen.t ->
  registry:registry ->
  domid:int ->
  image:Image.t ->
  devices:Device.config list ->
  ?on_ready:(unit -> unit) ->
  unit ->
  t
(** Spawn the guest's boot process (returns immediately). *)

val wait_ready : t -> unit
(** Block until the guest has finished booting. *)

val booted : t -> bool

val boot_time : t -> float
(** Seconds from [start] to ready. Raises [Invalid_argument] before
    boot completes. *)

val domid : t -> int

val image : t -> Image.t

val devices : t -> Device.config list

val shutdown : t -> unit
(** Stop the idle load and mark the guest down (guest-side part of
    shutdown/suspend; charges the guest's save work). *)

val suspend_work : float
(** Guest-side CPU seconds to quiesce over the xenbus path (save
    internal state, acknowledge the control/shutdown handshake). The
    noxs path is over an order of magnitude cheaper. *)

val resume : t -> unit
(** Restart idle load after a restore. *)

val is_up : t -> bool
