lib/guest/xenbus_front.ml: Device Lightvm_hv Lightvm_sim Lightvm_xenstore Printf
