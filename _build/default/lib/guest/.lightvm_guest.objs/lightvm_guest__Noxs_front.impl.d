lib/guest/noxs_front.ml: Ctrl Device Lightvm_hv Printf
