lib/guest/device.ml: Format Lightvm_hv Printf
