lib/guest/guest.mli: Ctrl Device Image Lightvm_hv Lightvm_xenstore
