lib/guest/noxs_front.mli: Ctrl Device Lightvm_hv
