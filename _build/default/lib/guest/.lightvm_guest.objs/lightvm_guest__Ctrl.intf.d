lib/guest/ctrl.mli:
