lib/guest/image.ml: List Printf
