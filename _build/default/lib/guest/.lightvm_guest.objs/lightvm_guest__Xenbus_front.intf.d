lib/guest/xenbus_front.mli: Device Lightvm_hv Lightvm_xenstore
