lib/guest/device.mli: Format Lightvm_hv
