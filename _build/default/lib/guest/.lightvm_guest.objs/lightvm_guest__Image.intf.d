lib/guest/image.mli:
