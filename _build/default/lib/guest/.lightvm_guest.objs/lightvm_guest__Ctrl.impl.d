lib/guest/ctrl.ml: Hashtbl Lightvm_sim
