lib/guest/guest.ml: Ctrl Device Image Lightvm_hv Lightvm_sim Lightvm_xenstore List Noxs_front Printf Xenbus_front
