(** Guest-side noxs device bring-up — Figure 7b, steps 3 and 4.

    Instead of talking to the XenStore, the guest asks the hypervisor
    for its device page, maps it, and connects to each backend through
    the device control page and event channel found there. Three or four
    hypercalls, no daemon round-trips. *)

exception Connect_failed of string

val map_device_page :
  xen:Lightvm_hv.Xen.t -> domid:int -> Lightvm_hv.Devpage.entry list
(** Hypercall: discover + map the device page; returns its entries. *)

val connect :
  xen:Lightvm_hv.Xen.t ->
  ctrl:Ctrl.t ->
  domid:int ->
  Device.config ->
  unit
(** Bring up one frontend; blocks until the backend control-page state
    is Connected. *)

val disconnect :
  xen:Lightvm_hv.Xen.t -> ctrl:Ctrl.t -> domid:int -> Device.config -> unit
