module Engine = Lightvm_sim.Engine
module Xen = Lightvm_hv.Xen
module Domain = Lightvm_hv.Domain

type registry =
  | Xenbus of Lightvm_xenstore.Xs_client.t
  | Noxs of Ctrl.t

type t = {
  xen : Xen.t;
  registry : registry;
  domid : int;
  image : Image.t;
  devices : Device.config list;
  ready : unit Engine.Ivar.t;
  started_at : float;
  mutable ready_at : float option;
  mutable up : bool;
  (* Bumped on every shutdown/resume so a stale idle loop (asleep
     across a suspend/resume cycle) exits instead of doubling the
     background load. *)
  mutable idle_gen : int;
}

let domid t = t.domid
let image t = t.image
let devices t = t.devices
let booted t = Engine.Ivar.is_full t.ready
let wait_ready t = Engine.Ivar.read t.ready
let is_up t = t.up

let boot_time t =
  match t.ready_at with
  | Some at -> at -. t.started_at
  | None -> invalid_arg "Guest.boot_time: guest not booted yet"

(* Quiescing over the classic path means a XenStore control/shutdown
   handshake (watch + acknowledgement writes); under noxs the sysctl
   pseudo-device is a shared-page flip. *)
let suspend_work_xenbus = 2.5e-3
let suspend_work_noxs = 0.15e-3

let suspend_work = suspend_work_xenbus

(* Idle background load: Tinyx and Debian run periodic kernel/service
   work even when idle; unikernels do not (Image.idle_tick_period =
   infinity). *)
let rec idle_loop t gen =
  if t.up && t.idle_gen = gen then begin
    let period = t.image.Image.idle_tick_period in
    if period <> infinity then begin
      Engine.sleep period;
      if t.up && t.idle_gen = gen then begin
        (match Xen.domain t.xen ~domid:t.domid with
        | Some dom when Domain.is_running dom ->
            Xen.consume_guest t.xen ~domid:t.domid
              t.image.Image.idle_tick_work
        | Some _ | None -> ());
        idle_loop t gen
      end
    end
  end

let connect_devices t =
  match t.registry with
  | Xenbus xs ->
      List.iter
        (fun dev -> Xenbus_front.connect ~xs ~xen:t.xen ~domid:t.domid dev)
        t.devices
  | Noxs ctrl ->
      if t.devices <> [] then begin
        ignore (Noxs_front.map_device_page ~xen:t.xen ~domid:t.domid);
        List.iter
          (fun dev ->
            Noxs_front.connect ~xen:t.xen ~ctrl ~domid:t.domid dev)
          t.devices
      end

let boot_process t ~on_ready () =
  Xen.consume_guest t.xen ~domid:t.domid t.image.Image.kernel_init_work;
  connect_devices t;
  Xen.consume_guest t.xen ~domid:t.domid t.image.Image.app_init_work;
  t.ready_at <- Some (Engine.now ());
  t.up <- true;
  Engine.Ivar.fill t.ready ();
  on_ready ();
  idle_loop t t.idle_gen

let start ~xen ~registry ~domid ~image ~devices ?(on_ready = fun () -> ())
    () =
  let t =
    {
      xen;
      registry;
      domid;
      image;
      devices;
      ready = Engine.Ivar.create ();
      started_at = Engine.now ();
      ready_at = None;
      up = false;
      idle_gen = 0;
    }
  in
  Engine.spawn ~name:(Printf.sprintf "guest-%d" domid) (boot_process t ~on_ready);
  t

let shutdown t =
  if t.up then begin
    t.up <- false;
    t.idle_gen <- t.idle_gen + 1;
    (* Guest-side quiesce: save internal state, unbind event channels
       and device pages. *)
    let work =
      match t.registry with
      | Xenbus _ -> suspend_work_xenbus
      | Noxs _ -> suspend_work_noxs
    in
    match Xen.domain t.xen ~domid:t.domid with
    | Some dom when Domain.is_running dom ->
        Xen.consume_guest t.xen ~domid:t.domid work
    | Some _ | None -> ()
  end

let resume t =
  if not t.up then begin
    t.up <- true;
    t.idle_gen <- t.idle_gen + 1;
    let gen = t.idle_gen in
    Engine.spawn ~name:(Printf.sprintf "guest-%d-idle" t.domid) (fun () ->
        idle_loop t gen)
  end
