type kind =
  | Unikernel of string
  | Tinyx of string option
  | Debian

type t = {
  name : string;
  kind : kind;
  disk_mb : float;
  kernel_mb : float;
  mem_mb : float;
  kernel_init_work : float;
  app_init_work : float;
  idle_tick_period : float;
  idle_tick_work : float;
}

let boot_work t = t.kernel_init_work +. t.app_init_work

let idle_load t =
  if t.idle_tick_period = infinity then 0.
  else t.idle_tick_work /. t.idle_tick_period

let with_inflated_image t ~extra_mb =
  {
    t with
    name = Printf.sprintf "%s+%.0fMB" t.name extra_mb;
    disk_mb = t.disk_mb +. extra_mb;
    kernel_mb = t.kernel_mb +. extra_mb;
  }

(* MiniOS guests: no background tasks at all when idle ("idling ...
   unikernels do not run such background tasks", Section 6.1). *)
let unikernel ~name ~app ~disk_mb ~mem_mb ~kernel_init_work ~app_init_work =
  {
    name;
    kind = Unikernel app;
    disk_mb;
    kernel_mb = disk_mb;
    mem_mb;
    kernel_init_work;
    app_init_work;
    idle_tick_period = infinity;
    idle_tick_work = 0.;
  }

let noop_unikernel =
  unikernel ~name:"noop" ~app:"noop" ~disk_mb:0.28 ~mem_mb:3.6
    ~kernel_init_work:0.8e-3 ~app_init_work:0.1e-3

let daytime =
  (* 480 KB uncompressed image, 3.6 MB RAM, ~3 ms guest boot (device
     bring-up adds its own work on top of these). *)
  unikernel ~name:"daytime" ~app:"daytime" ~disk_mb:0.48 ~mem_mb:3.6
    ~kernel_init_work:0.6e-3 ~app_init_work:0.5e-3

let minipython =
  unikernel ~name:"minipython" ~app:"micropython" ~disk_mb:1.0 ~mem_mb:8.
    ~kernel_init_work:1.2e-3 ~app_init_work:1.4e-3

let clickos_firewall =
  unikernel ~name:"clickos-fw" ~app:"click-firewall" ~disk_mb:1.7 ~mem_mb:8.
    ~kernel_init_work:2.0e-3 ~app_init_work:5.0e-3

let tls_unikernel =
  unikernel ~name:"tls-unikernel" ~app:"axtls-proxy" ~disk_mb:1.2 ~mem_mb:16.
    ~kernel_init_work:1.5e-3 ~app_init_work:2.5e-3

(* Tinyx: a minimal Linux needs kernel init plus BusyBox init, and even
   when idle runs occasional kernel background work (the Fig 11 boot
   time growth past ~250 VMs/core comes from exactly this). *)
let tinyx_base ~name ~app ~disk_mb ~mem_mb ~boot_s ~app_init =
  {
    name;
    kind = Tinyx app;
    disk_mb;
    kernel_mb = disk_mb; (* distribution bundled as initramfs *)
    mem_mb;
    kernel_init_work = boot_s;
    app_init_work = app_init;
    idle_tick_period = 0.1;
    (* ~0.005%% of a core per idle VM: 1000 Tinyx guests keep about 1%%
       of the 4-core machine busy (Fig 15). *)
    idle_tick_work = 5.0e-6;
  }

let tinyx =
  tinyx_base ~name:"tinyx" ~app:None ~disk_mb:9.5 ~mem_mb:30. ~boot_s:0.16
    ~app_init:0.005

let tinyx_micropython =
  tinyx_base ~name:"tinyx-micropython" ~app:(Some "micropython")
    ~disk_mb:10.5 ~mem_mb:32. ~boot_s:0.16 ~app_init:0.012

let tinyx_tls =
  tinyx_base ~name:"tinyx-tls" ~app:(Some "axtls-proxy") ~disk_mb:12.
    ~mem_mb:40. ~boot_s:0.165 ~app_init:0.02

(* Minimal Debian jessie: 1.1 GB disk of which the builder loads the
   kernel + initrd; 1.5 s boot dominated by systemd services; idle
   services keep ~0.075% of a core busy (Fig 15: 1000 VMs ~ 25% of the
   4-core machine). *)
let debian =
  {
    name = "debian";
    kind = Debian;
    disk_mb = 1126.;
    kernel_mb = 45.;
    mem_mb = 111.;
    kernel_init_work = 0.55;
    app_init_work = 0.9;
    idle_tick_period = 0.25;
    (* ~0.1%% of a core per idle Debian VM: 1000 of them use ~25%% of
       the 4-core machine (Fig 15). *)
    idle_tick_work = 250.0e-6;
  }

let all =
  [
    noop_unikernel;
    daytime;
    minipython;
    clickos_firewall;
    tls_unikernel;
    tinyx;
    tinyx_micropython;
    tinyx_tls;
    debian;
  ]

let find name = List.find_opt (fun i -> i.name = name) all
