(** VM image descriptions: the guests the paper measures.

    An image bundles the static facts that drive the simulation — disk
    size, loadable kernel size (the Figure 2 linear term), runtime
    memory footprint, guest-side boot work, and idle background load
    (which separates Debian from Tinyx from unikernels in Figures 11
    and 15). *)

type kind =
  | Unikernel of string  (** app linked against MiniOS, e.g. "daytime" *)
  | Tinyx of string option  (** Tinyx distribution, optional app *)
  | Debian

type t = {
  name : string;
  kind : kind;
  disk_mb : float;  (** on-disk image size *)
  kernel_mb : float;  (** what the domain builder loads into memory *)
  mem_mb : float;  (** runtime memory footprint *)
  kernel_init_work : float;
  (** guest CPU seconds before device bring-up *)
  app_init_work : float;  (** guest CPU seconds after device bring-up *)
  idle_tick_period : float;
  (** background-task period when idle; [infinity] = truly idle *)
  idle_tick_work : float;  (** CPU per background tick *)
}

val boot_work : t -> float
(** [kernel_init_work +. app_init_work]. *)

val idle_load : t -> float
(** Long-run fraction of a reference core consumed when idle. *)

val with_inflated_image : t -> extra_mb:float -> t
(** Pad the kernel image with binary objects, as the paper does for
    Figure 2. Boot work is unchanged; only load time grows. *)

(** The guests of the evaluation, calibrated to Sections 3 and 6. *)

val noop_unikernel : t
(** MiniOS with no app and no devices: the 2.3 ms boot record holder. *)

val daytime : t
(** The 50-LoC daytime TCP server over MiniOS + lwip: 480 KB image,
    3.6 MB RAM. *)

val minipython : t
(** Micropython unikernel: ~1 MB image, 8 MB RAM. *)

val clickos_firewall : t
(** ClickOS running a firewall configuration: 1.7 MB image, 8 MB RAM. *)

val tls_unikernel : t
(** axtls-based TLS termination proxy: 16 MB RAM, ~6 ms boot. *)

val tinyx : t
(** Tinyx with no app: 9.5 MB image, ~30 MB RAM, ~180 ms boot. *)

val tinyx_micropython : t

val tinyx_tls : t
(** Tinyx TLS proxy: 40 MB RAM, ~190 ms boot. *)

val debian : t
(** Minimal Debian jessie: 1.1 GB disk, 111 MB RAM, 1.5 s boot, and a
    fleet of idle services. *)

val all : t list

val find : string -> t option
(** Look up any of the above by [name]. *)
