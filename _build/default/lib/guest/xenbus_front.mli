(** Guest-side xenbus device bring-up — the classic (pre-noxs) path of
    Figure 7a.

    The toolstack has already written frontend and backend directories;
    the front-end driver reads its directory, allocates a shared ring
    and an event channel, publishes them, and then waits for the
    back-end to flip its state to Connected. Every step is real
    XenStore traffic from the guest, which is exactly the load noxs
    eliminates. *)

(** XenbusState, as in xen/include/public/io/xenbus.h. *)
type xenbus_state =
  | Initialising
  | Init_wait
  | Initialised
  | Connected
  | Closing
  | Closed

val state_to_wire : xenbus_state -> string
(** The numeric string written to the store ("1".."6"). *)

val state_of_wire : string -> xenbus_state option

exception Connect_failed of string

val connect :
  xs:Lightvm_xenstore.Xs_client.t ->
  xen:Lightvm_hv.Xen.t ->
  domid:int ->
  Device.config ->
  unit
(** Bring up one frontend; blocks until the backend reports Connected.
    [xs] must be the guest's own XenStore connection (so permissions
    and protocol costs are attributed to the guest). *)

val disconnect :
  xs:Lightvm_xenstore.Xs_client.t -> domid:int -> Device.config -> unit
(** Flip the frontend to Closed (used on suspend). *)
