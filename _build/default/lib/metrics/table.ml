type t = {
  title : string;
  columns : string list;
  mutable rev_rows : string list list;
}

let create ~title ~columns = { title; columns; rev_rows = [] }

let title t = t.title

let add_row t row =
  if List.length row <> List.length t.columns then
    invalid_arg "Table.add_row: wrong number of cells";
  t.rev_rows <- row :: t.rev_rows

let add_rowf t row = add_row t (List.map (Printf.sprintf "%g") row)

let rows t = List.rev t.rev_rows

let pp fmt t =
  let all = t.columns :: rows t in
  let ncols = List.length t.columns in
  let widths = Array.make ncols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
        row)
    all;
  let pp_row row =
    List.iteri
      (fun i cell ->
        let pad = widths.(i) - String.length cell in
        Format.fprintf fmt "%s%s%s" cell (String.make pad ' ')
          (if i = ncols - 1 then "" else "  "))
      row;
    Format.fprintf fmt "@\n"
  in
  Format.fprintf fmt "== %s ==@\n" t.title;
  pp_row t.columns;
  let total =
    Array.fold_left ( + ) 0 widths + (2 * (ncols - 1))
  in
  Format.fprintf fmt "%s@\n" (String.make total '-');
  List.iter pp_row (rows t)

let to_string t = Format.asprintf "%a" pp t
