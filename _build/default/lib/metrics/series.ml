type t = {
  name : string;
  unit_label : string;
  mutable rev_points : (float * float) list;
  mutable n : int;
}

let create ?(unit_label = "") ~name () =
  { name; unit_label; rev_points = []; n = 0 }

let name t = t.name
let unit_label t = t.unit_label

let add t ~x ~y =
  t.rev_points <- (x, y) :: t.rev_points;
  t.n <- t.n + 1

let points t = List.rev t.rev_points
let length t = t.n

let last_y t =
  match t.rev_points with [] -> None | (_, y) :: _ -> Some y

let fold_y f init t =
  List.fold_left (fun acc (_, y) -> f acc y) init t.rev_points

let max_y t = fold_y max neg_infinity t
let min_y t = fold_y min infinity t

let y_at t ~x =
  List.find_map
    (fun (px, py) -> if px = x then Some py else None)
    (points t)

let sample t ~every =
  if every <= 0 then invalid_arg "Series.sample: every <= 0";
  let pts = points t in
  let n = List.length pts in
  List.filteri (fun i _ -> i mod every = 0 || i = n - 1) pts

let pp fmt t =
  Format.fprintf fmt "# %s%s@\n" t.name
    (if t.unit_label = "" then "" else " [" ^ t.unit_label ^ "]");
  List.iter (fun (x, y) -> Format.fprintf fmt "%g %g@\n" x y) (points t)
