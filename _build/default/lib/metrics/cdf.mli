(** Empirical cumulative distribution functions (paper Fig. 16b). *)

type t

val of_samples : float list -> t
(** Raises [Invalid_argument] on an empty list. *)

val count : t -> int

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0,1]. *)

val at : t -> float -> float
(** Fraction of samples [<= x]. *)

val points : t -> (float * float) list
(** Sorted [(value, cumulative fraction)] pairs, one per sample. *)

val pp : Format.formatter -> t -> unit
