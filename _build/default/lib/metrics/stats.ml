type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min_v : float;
  mutable max_v : float;
  mutable sum : float;
}

let create () =
  { n = 0; mean = 0.; m2 = 0.; min_v = infinity; max_v = neg_infinity;
    sum = 0. }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min_v then t.min_v <- x;
  if x > t.max_v then t.max_v <- x;
  t.sum <- t.sum +. x

let count t = t.n
let mean t = if t.n = 0 then 0. else t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min_value t = t.min_v
let max_value t = t.max_v
let sum t = t.sum

let percentile samples p =
  match samples with
  | [] -> invalid_arg "Stats.percentile: empty sample list"
  | _ ->
      if p < 0. || p > 100. then
        invalid_arg "Stats.percentile: p outside [0, 100]";
      let sorted = Array.of_list samples in
      Array.sort compare sorted;
      let n = Array.length sorted in
      if n = 1 then sorted.(0)
      else begin
        let rank = p /. 100. *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor rank) in
        let hi = int_of_float (Float.ceil rank) in
        if lo = hi then sorted.(lo)
        else begin
          let frac = rank -. float_of_int lo in
          (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
        end
      end

let median samples = percentile samples 50.
