(** Named (x, y) series, the unit in which experiments report results
    and benches print figures. *)

type t

val create : ?unit_label:string -> name:string -> unit -> t

val name : t -> string

val unit_label : t -> string

val add : t -> x:float -> y:float -> unit

val points : t -> (float * float) list
(** In insertion order. *)

val length : t -> int

val last_y : t -> float option

val max_y : t -> float

val min_y : t -> float

val y_at : t -> x:float -> float option
(** Exact-x lookup (first match). *)

val sample : t -> every:int -> (float * float) list
(** Every [n]th point, always including the last. *)

val pp : Format.formatter -> t -> unit
(** Two-column dump: [x y] per line under a header. *)
