(** Streaming summary statistics (Welford) and order statistics. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

val mean : t -> float
(** 0. when empty. *)

val variance : t -> float
(** Sample variance; 0. for fewer than two observations. *)

val stddev : t -> float

val min_value : t -> float
(** [infinity] when empty. *)

val max_value : t -> float
(** [neg_infinity] when empty. *)

val sum : t -> float

val percentile : float list -> float -> float
(** [percentile samples p] with [p] in [0,100], linear interpolation
    between closest ranks. Raises [Invalid_argument] on an empty list. *)

val median : float list -> float
