lib/metrics/cdf.ml: Array Format List Stats
