lib/metrics/cdf.mli: Format
