lib/metrics/table.ml: Array Format List Printf String
