lib/metrics/series.ml: Format List
