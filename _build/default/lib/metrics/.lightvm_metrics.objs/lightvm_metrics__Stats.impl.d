lib/metrics/stats.ml: Array Float
