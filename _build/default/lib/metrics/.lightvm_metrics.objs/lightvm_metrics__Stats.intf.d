lib/metrics/stats.mli:
