(** Aligned plain-text tables for bench output. *)

type t

val create : title:string -> columns:string list -> t

val title : t -> string

val add_row : t -> string list -> unit
(** Must match the column count. *)

val add_rowf : t -> float list -> unit
(** Formats each value with [%g]. *)

val rows : t -> string list list

val pp : Format.formatter -> t -> unit

val to_string : t -> string
