type t = { sorted : float array }

let of_samples samples =
  match samples with
  | [] -> invalid_arg "Cdf.of_samples: empty sample list"
  | _ ->
      let sorted = Array.of_list samples in
      Array.sort compare sorted;
      { sorted }

let count t = Array.length t.sorted

let quantile t q =
  if q < 0. || q > 1. then invalid_arg "Cdf.quantile: q outside [0, 1]";
  Stats.percentile (Array.to_list t.sorted) (q *. 100.)

let at t x =
  (* Count of samples <= x by binary search for the rightmost. *)
  let n = Array.length t.sorted in
  let rec go lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.sorted.(mid) <= x then go (mid + 1) hi else go lo mid
    end
  in
  float_of_int (go 0 n) /. float_of_int n

let points t =
  let n = Array.length t.sorted in
  List.init n (fun i ->
      (t.sorted.(i), float_of_int (i + 1) /. float_of_int n))

let pp fmt t =
  List.iter (fun (x, f) -> Format.fprintf fmt "%g %g@\n" x f) (points t)
