(** Counting semaphore with FIFO wakeup, for modelling exclusive or
    bounded resources (locks, ramdisk bandwidth slots, daemon worker
    pools). *)

type t

val create : int -> t
(** [create capacity] with [capacity >= 1]. *)

val capacity : t -> int

val available : t -> int

val waiting : t -> int

val acquire : t -> unit
(** Blocks the calling process until a unit is available. *)

val try_acquire : t -> bool

val release : t -> unit

val with_resource : t -> (unit -> 'a) -> 'a
(** Acquire, run, release — also on exception. *)
