type t = float

let us x = x *. 1e-6
let ms x = x *. 1e-3
let s x = x
let to_ms t = t *. 1e3
let to_us t = t *. 1e6
let pp_ms fmt t = Format.fprintf fmt "%.3fms" (to_ms t)
