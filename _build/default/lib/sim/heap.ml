type 'a entry = {
  time : float;
  seq : int;
  payload : 'a;
  mutable cancelled : bool;
}

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
  mutable live : int;
}

let create () = { data = [||]; len = 0; next_seq = 0; live = 0 }

let size t = t.live

let is_empty t = t.live = 0

let lt a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let swap t i j =
  let tmp = t.data.(i) in
  t.data.(i) <- t.data.(j);
  t.data.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt t.data.(i) t.data.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.len && lt t.data.(l) t.data.(!smallest) then smallest := l;
  if r < t.len && lt t.data.(r) t.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let ensure_capacity t =
  let cap = Array.length t.data in
  if t.len >= cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    (* The dummy slot is immediately overwritten by the caller. *)
    let dummy = t.data in
    let fresh =
      if cap = 0 then
        Array.make ncap
          { time = 0.; seq = 0; payload = Obj.magic 0; cancelled = true }
      else Array.make ncap dummy.(0)
    in
    Array.blit t.data 0 fresh 0 t.len;
    t.data <- fresh
  end

let push t ~time payload =
  let entry =
    { time; seq = t.next_seq; payload; cancelled = false }
  in
  t.next_seq <- t.next_seq + 1;
  ensure_capacity t;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  t.live <- t.live + 1;
  sift_up t (t.len - 1);
  entry

let pop_any t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      sift_down t 0
    end;
    Some top
  end

let rec pop t =
  match pop_any t with
  | None -> None
  | Some entry ->
      if entry.cancelled then pop t
      else begin
        t.live <- t.live - 1;
        Some (entry.time, entry.payload)
      end

let rec peek_time t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    if top.cancelled then begin
      ignore (pop_any t);
      peek_time t
    end
    else Some top.time
  end

let cancel t entry =
  if not entry.cancelled then begin
    entry.cancelled <- true;
    t.live <- t.live - 1
  end

let cancelled entry = entry.cancelled
