(** Deterministic pseudo-random numbers (splitmix64).

    Every stochastic element of the simulation draws from an explicit
    [Rng.t] so that runs are reproducible bit-for-bit from a seed. *)

type t

val create : int64 -> t

val split : t -> t
(** An independent stream derived from [t]; also advances [t]. *)

val int64 : t -> int64

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]. Requires [n > 0]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val uniform : t -> lo:float -> hi:float -> float

val exponential : t -> mean:float -> float

val bool : t -> float -> bool
(** [bool t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit

val pick : t -> 'a list -> 'a
(** Uniform choice. Requires a non-empty list. *)
