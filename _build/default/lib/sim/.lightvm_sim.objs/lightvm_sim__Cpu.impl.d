lib/sim/cpu.ml: Array Engine List
