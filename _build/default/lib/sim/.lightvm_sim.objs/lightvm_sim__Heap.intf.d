lib/sim/heap.mli:
