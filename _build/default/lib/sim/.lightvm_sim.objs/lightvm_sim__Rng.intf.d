lib/sim/rng.mli:
