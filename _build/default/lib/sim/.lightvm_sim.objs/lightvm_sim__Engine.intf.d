lib/sim/engine.mli:
