lib/sim/resource.mli:
