(** Multi-core CPU under processor sharing.

    Each core runs its active jobs at an equal share of the core's
    speed — a fluid approximation of round-robin scheduling with a small
    quantum (Xen's credit scheduler, Linux CFS). A job is created by
    {!consume}, which blocks the calling simulation process until the
    requested amount of work (in seconds of reference-speed CPU time)
    has been served.

    The model also tracks per-core busy time so experiments can report
    utilisation (paper Fig. 15), and exposes run-queue lengths for the
    scheduling-latency model used by the firewall use case (Fig. 16a). *)

type t

val create : ?speed:float -> ncores:int -> unit -> t
(** [speed] is a relative frequency factor (reference = 1.0); a job of
    [w] seconds takes [w /. speed] seconds on an otherwise idle core. *)

val ncores : t -> int

val consume : t -> core:int -> float -> unit
(** [consume t ~core w] blocks until [w] seconds of reference CPU work
    have been served on [core]. [w <= 0.] returns immediately. *)

val consume_async : t -> core:int -> float -> unit Engine.Ivar.t
(** Non-blocking variant: the returned ivar fills on completion. *)

val load : t -> core:int -> int
(** Number of jobs currently sharing the core. *)

val total_load : t -> int

val busiest_load : t -> int

val pick_least_loaded : t -> cores:int list -> int
(** Among [cores], the one with the fewest active jobs (ties to the
    lowest id). *)

val busy_seconds : t -> float
(** Cumulative busy time summed over cores since creation or the last
    {!reset_stats}, sampled at the current instant. *)

val utilization : t -> since:float -> float
(** Average fraction of total capacity busy over [now - since]. *)

val reset_stats : t -> unit
