type t = {
  cap : int;
  mutable avail : int;
  waiters : (unit -> unit) Queue.t;
}

let create capacity =
  if capacity < 1 then invalid_arg "Sim.Resource.create: capacity < 1";
  { cap = capacity; avail = capacity; waiters = Queue.create () }

let capacity t = t.cap
let available t = t.avail
let waiting t = Queue.length t.waiters

let acquire t =
  if t.avail > 0 then t.avail <- t.avail - 1
  else Engine.suspend (fun resume -> Queue.add resume t.waiters)

let try_acquire t =
  if t.avail > 0 then begin
    t.avail <- t.avail - 1;
    true
  end
  else false

let release t =
  match Queue.take_opt t.waiters with
  | Some resume -> resume ()
  | None ->
      if t.avail >= t.cap then
        invalid_arg "Sim.Resource.release: released more than acquired";
      t.avail <- t.avail + 1

let with_resource t f =
  acquire t;
  match f () with
  | v ->
      release t;
      v
  | exception e ->
      release t;
      raise e
