(** Virtual time. The simulation clock counts seconds as a [float];
    these helpers keep unit conversions explicit at call sites. *)

type t = float

val us : float -> t
(** Microseconds to seconds. *)

val ms : float -> t
(** Milliseconds to seconds. *)

val s : float -> t

val to_ms : t -> float

val to_us : t -> float

val pp_ms : Format.formatter -> t -> unit
(** Renders as milliseconds with three decimals, e.g. ["2.312ms"]. *)
