(* Toolstack configuration knobs — the axes of the paper's Figure 9.

   Each LightVM mechanism can be enabled independently:
   - [impl]: the standard xl/libxl toolstack vs the lean chaos/libchaos
   - [registry]: classic XenStore vs noxs device pages
   - [split]: pre-created VM shells from the chaos daemon pool (Fig 8)
   - [hotplug]: forked bash scripts vs the xendevd binary daemon
   - [min_mem_patch]: lift the 4 MB minimum-memory floor (footnote 1) *)

type toolstack_impl = Xl | Chaos

type registry_kind = Xenstore | Noxs

type hotplug_kind = Script | Xendevd

type t = {
  impl : toolstack_impl;
  registry : registry_kind;
  split : bool;
  hotplug : hotplug_kind;
  min_mem_patch : bool;
}

(* Out-of-the-box Xen: the paper's "xl" curve. *)
let xl =
  {
    impl = Xl;
    registry = Xenstore;
    split = false;
    hotplug = Script;
    min_mem_patch = false;
  }

(* chaos toolstack, still on the XenStore. *)
let chaos_xs =
  {
    impl = Chaos;
    registry = Xenstore;
    split = false;
    hotplug = Xendevd;
    min_mem_patch = true;
  }

let chaos_xs_split = { chaos_xs with split = true }

let chaos_noxs = { chaos_xs with registry = Noxs }

(* All optimizations on: chaos + noxs + split toolstack. *)
let lightvm = { chaos_xs with registry = Noxs; split = true }

let all_modes =
  [ xl; chaos_xs; chaos_xs_split; chaos_noxs; lightvm ]

let name t =
  match (t.impl, t.registry, t.split) with
  | Xl, _, _ -> "xl"
  | Chaos, Xenstore, false -> "chaos [XS]"
  | Chaos, Xenstore, true -> "chaos [XS+split]"
  | Chaos, Noxs, false -> "chaos [NoXS]"
  | Chaos, Noxs, true -> "LightVM"
