(** xl-style VM configuration files.

    A real parser for the format the toolstacks consume, e.g.:

    {v
    # a guest
    name = "daytime-1"
    kernel = "daytime"
    memory = 4
    vcpus = 1
    vif = ['bridge=xenbr0']
    disk = ['ramdisk,xvda,w']
    on_crash = "destroy"
    v}

    Values are strings, integers or lists of strings; [#] starts a
    comment. Unknown keys are preserved in [extra]. *)

type t = {
  name : string;
  kernel : string;  (** image name, resolved against {!Lightvm_guest.Image} *)
  memory_mb : float;
  vcpus : int;
  vifs : string list;  (** one detail string per network device *)
  disks : string list;  (** one spec per block device *)
  on_crash : string;
  extra : (string * string) list;
}

val parse : string -> (t, string) result
(** Parse a whole config file; the error carries a line number. *)

val to_string : t -> string
(** Render back to the file format ([parse] of the result
    round-trips). *)

val devices : t -> Lightvm_guest.Device.config list
(** vifs then disks, devids numbered from 0 per kind. *)

val image : t -> Lightvm_guest.Image.t option
(** Look up [kernel] among the known images. *)

val make :
  ?memory_mb:float ->
  ?vcpus:int ->
  ?vifs:string list ->
  ?disks:string list ->
  ?on_crash:string ->
  name:string ->
  kernel:string ->
  unit ->
  t

val for_image :
  ?nics:int -> ?disks:int -> name:string -> Lightvm_guest.Image.t -> t
(** Convenience: a config sized from an image's requirements (memory =
    the image's footprint, one vif by default). *)
