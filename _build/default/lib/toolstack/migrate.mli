(** Live(ish) migration, Section 5.1/6.2.

    chaos opens a TCP connection to the migration daemon on the remote
    host and sends the guest's configuration so the daemon pre-creates
    the domain and its devices; the source then suspends the guest and
    streams its memory; the destination resumes it. *)

type stats = {
  total : float;  (** wall-clock migration time *)
  precreate : float;  (** remote domain + device pre-creation *)
  suspend : float;
  transfer : float;
  resume : float;
}

val migrate :
  src:Toolstack.t ->
  dst:Toolstack.t ->
  Create.created ->
  Create.created * stats
(** Returns the VM handle on the destination host. Both hosts should
    run the same toolstack mode. Raises {!Create.Create_failed} when
    the destination cannot host the guest. *)
