(** Dom0 back-end drivers (netback/blkback).

    Two bring-up paths, matching Figure 7:

    - {b XenStore}: the toolstack writes the backend directory; the
      back-end watches the frontend's state node and completes the
      handshake (read ring/event-channel, map, bind, flip to Connected)
      when the guest publishes its half.
    - {b noxs}: the toolstack issues a pre-creation ioctl; the back-end
      synchronously allocates the device control page and an unbound
      event channel, and returns their identifiers for the hypervisor's
      device page. The handshake then runs over shared memory when the
      guest kicks the event channel. *)

type t

val create :
  xen:Lightvm_hv.Xen.t ->
  xs:Lightvm_xenstore.Xs_client.t option ->
  ctrl:Lightvm_guest.Ctrl.t ->
  costs:Costs.t ->
  t

val ctrl : t -> Lightvm_guest.Ctrl.t

val fresh_mac : t -> string
(** Xen-prefixed MAC (00:16:3e:...), sequential. *)

val watch_device :
  t -> domid:int -> Lightvm_guest.Device.config -> unit
(** XenStore path: register the persistent frontend-state watch for a
    device whose backend directory the toolstack just created. *)

val precreate_device :
  t -> domid:int -> Lightvm_guest.Device.config -> int * int
(** noxs path (the ioctl): returns [(grant_ref, evtchn_port)] to be
    written into the domain's device page. *)

val destroy_device :
  t -> domid:int -> Lightvm_guest.Device.config -> grant_ref:int -> unit
(** noxs teardown (unoptimized, per Section 6.2). *)

val connected_count : t -> int
(** Devices brought to Connected so far (both paths). *)
