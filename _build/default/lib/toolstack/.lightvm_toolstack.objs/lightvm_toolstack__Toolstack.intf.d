lib/toolstack/toolstack.mli: Costs Create Lightvm_guest Lightvm_hv Lightvm_xenstore Mode Vmconfig
