lib/toolstack/pool.mli:
