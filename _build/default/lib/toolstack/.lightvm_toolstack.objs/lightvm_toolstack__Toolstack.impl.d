lib/toolstack/toolstack.ml: Backend Costs Create Hashtbl Lightvm_guest Lightvm_hv Lightvm_sim Lightvm_xenstore List Mode Pool Printf Vmconfig
