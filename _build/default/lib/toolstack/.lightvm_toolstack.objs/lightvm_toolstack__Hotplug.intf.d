lib/toolstack/hotplug.mli: Costs Lightvm_guest Lightvm_hv Mode
