lib/toolstack/hotplug.ml: Costs Lightvm_guest Lightvm_hv Mode
