lib/toolstack/vmconfig.ml: Buffer Char Lightvm_guest List Printf String
