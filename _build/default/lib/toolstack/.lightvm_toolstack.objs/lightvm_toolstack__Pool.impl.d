lib/toolstack/pool.ml: Lightvm_sim Queue
