lib/toolstack/costs.ml:
