lib/toolstack/migrate.ml: Checkpoint Costs Create Lightvm_sim String Toolstack Vmconfig
