lib/toolstack/create.mli: Backend Costs Lightvm_guest Lightvm_hv Lightvm_xenstore Mode Vmconfig
