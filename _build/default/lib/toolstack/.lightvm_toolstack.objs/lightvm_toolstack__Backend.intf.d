lib/toolstack/backend.mli: Costs Lightvm_guest Lightvm_hv Lightvm_xenstore
