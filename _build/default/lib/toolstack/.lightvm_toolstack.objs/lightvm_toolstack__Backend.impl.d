lib/toolstack/backend.ml: Costs Lightvm_guest Lightvm_hv Lightvm_sim Lightvm_xenstore Printf
