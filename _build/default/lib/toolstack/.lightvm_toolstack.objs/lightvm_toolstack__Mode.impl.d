lib/toolstack/mode.ml:
