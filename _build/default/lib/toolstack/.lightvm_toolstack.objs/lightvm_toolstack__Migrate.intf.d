lib/toolstack/migrate.mli: Create Toolstack
