lib/toolstack/checkpoint.ml: Costs Create Lightvm_guest Lightvm_hv Lightvm_sim Lightvm_xenstore Mode Printf Toolstack Vmconfig
