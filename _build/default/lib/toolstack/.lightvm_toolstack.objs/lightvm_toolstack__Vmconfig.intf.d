lib/toolstack/vmconfig.mli: Lightvm_guest
