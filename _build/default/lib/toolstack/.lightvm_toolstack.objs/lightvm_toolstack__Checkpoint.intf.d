lib/toolstack/checkpoint.mli: Create Toolstack
