lib/toolstack/create.ml: Array Backend Costs Float Hotplug Lightvm_guest Lightvm_hv Lightvm_sim Lightvm_xenstore List Mode Printf String Vmconfig
