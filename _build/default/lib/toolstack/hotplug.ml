module Xen = Lightvm_hv.Xen
module Device = Lightvm_guest.Device

let estimate kind ~costs (dev : Device.config) =
  match kind with
  | Mode.Xendevd -> costs.Costs.xendevd_per_device
  | Mode.Script ->
      match dev.Device.kind with
      | Device.Vif -> costs.Costs.hotplug_script_vif +. costs.Costs.udev_settle
      | Device.Vbd -> costs.Costs.hotplug_script_vbd +. costs.Costs.udev_settle
      | Device.Sysctl -> 0. (* no user-space setup: pure shared memory *)

let run kind ~xen ~costs dev = Xen.consume_dom0 xen (estimate kind ~costs dev)
