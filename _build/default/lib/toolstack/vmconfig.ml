type t = {
  name : string;
  kernel : string;
  memory_mb : float;
  vcpus : int;
  vifs : string list;
  disks : string list;
  on_crash : string;
  extra : (string * string) list;
}

type value =
  | Str of string
  | Num of float
  | Lst of string list

exception Parse_error of int * string

let fail line msg = raise (Parse_error (line, msg))

(* ------------------------------------------------------------------ *)
(* Lexing one [key = value] line *)

let strip s =
  let is_space c = c = ' ' || c = '\t' || c = '\r' in
  let n = String.length s in
  let rec first i = if i < n && is_space s.[i] then first (i + 1) else i in
  let rec last i = if i > 0 && is_space s.[i - 1] then last (i - 1) else i in
  let a = first 0 and b = last n in
  if a >= b then "" else String.sub s a (b - a)

let drop_comment s =
  (* [#] outside quotes starts a comment. *)
  let n = String.length s in
  let rec go i in_quote quote_char =
    if i >= n then s
    else
      match s.[i] with
      | ('"' | '\'') as c when not in_quote -> go (i + 1) true c
      | c when in_quote && c = quote_char -> go (i + 1) false ' '
      | '#' when not in_quote -> String.sub s 0 i
      | _ -> go (i + 1) in_quote quote_char
  in
  go 0 false ' '

let parse_quoted line s =
  let n = String.length s in
  if n < 2 then fail line "unterminated string"
  else begin
    let quote = s.[0] in
    if s.[n - 1] <> quote then fail line "unterminated string"
    else String.sub s 1 (n - 2)
  end

(* Split list items on commas outside quotes, so specs like
   'ramdisk,xvda,w' stay intact. *)
let split_list_items line inner =
  let items = ref [] and buf = Buffer.create 16 in
  let in_quote = ref false and quote = ref ' ' in
  String.iter
    (fun c ->
      match c with
      | ('"' | '\'') when not !in_quote ->
          in_quote := true;
          quote := c;
          Buffer.add_char buf c
      | c when !in_quote && c = !quote ->
          in_quote := false;
          Buffer.add_char buf c
      | ',' when not !in_quote ->
          items := Buffer.contents buf :: !items;
          Buffer.clear buf
      | c -> Buffer.add_char buf c)
    inner;
  if !in_quote then fail line "unterminated string in list";
  items := Buffer.contents buf :: !items;
  List.rev !items

let parse_list line s =
  let n = String.length s in
  if n < 2 || s.[0] <> '[' || s.[n - 1] <> ']' then
    fail line "malformed list";
  let inner = strip (String.sub s 1 (n - 2)) in
  if inner = "" then []
  else
    List.map
      (fun item ->
        let item = strip item in
        if String.length item >= 2 && (item.[0] = '"' || item.[0] = '\'')
        then parse_quoted line item
        else fail line ("list items must be quoted: " ^ item))
      (split_list_items line inner)

let parse_value line s =
  let s = strip s in
  if s = "" then fail line "missing value"
  else if s.[0] = '[' then Lst (parse_list line s)
  else if s.[0] = '"' || s.[0] = '\'' then Str (parse_quoted line s)
  else
    match float_of_string_opt s with
    | Some f -> Num f
    | None -> fail line ("cannot parse value: " ^ s)

let parse_line line s =
  match String.index_opt s '=' with
  | None -> fail line "expected key = value"
  | Some i ->
      let key = strip (String.sub s 0 i) in
      let value = String.sub s (i + 1) (String.length s - i - 1) in
      if key = "" then fail line "empty key";
      (key, parse_value line value)

(* ------------------------------------------------------------------ *)

let default =
  {
    name = "";
    kernel = "";
    memory_mb = 4.;
    vcpus = 1;
    vifs = [];
    disks = [];
    on_crash = "destroy";
    extra = [];
  }

let apply line cfg (key, value) =
  match (key, value) with
  | "name", Str s -> { cfg with name = s }
  | "kernel", Str s -> { cfg with kernel = s }
  | "memory", Num f -> { cfg with memory_mb = f }
  | "maxmem", Num _ -> cfg
  | "vcpus", Num f -> { cfg with vcpus = int_of_float f }
  | "vif", Lst items -> { cfg with vifs = items }
  | "disk", Lst items -> { cfg with disks = items }
  | "on_crash", Str s -> { cfg with on_crash = s }
  | ("name" | "kernel" | "on_crash"), _ ->
      fail line (key ^ " expects a string")
  | ("memory" | "vcpus"), _ -> fail line (key ^ " expects a number")
  | ("vif" | "disk"), _ -> fail line (key ^ " expects a list")
  | _, Str s -> { cfg with extra = cfg.extra @ [ (key, s) ] }
  | _, Num f ->
      { cfg with extra = cfg.extra @ [ (key, Printf.sprintf "%g" f) ] }
  | _, Lst items ->
      { cfg with extra = cfg.extra @ [ (key, String.concat ";" items) ] }

let parse text =
  try
    let lines = String.split_on_char '\n' text in
    let cfg =
      List.fold_left
        (fun (lineno, cfg) raw ->
          let s = strip (drop_comment raw) in
          if s = "" then (lineno + 1, cfg)
          else (lineno + 1, apply lineno cfg (parse_line lineno s)))
        (1, default) lines
      |> snd
    in
    if cfg.name = "" then Error "missing required key: name"
    else if cfg.kernel = "" then Error "missing required key: kernel"
    else Ok cfg
  with Parse_error (line, msg) ->
    Error (Printf.sprintf "line %d: %s" line msg)

let to_string cfg =
  let b = Buffer.create 256 in
  let quoted_list items =
    "[" ^ String.concat ", " (List.map (Printf.sprintf "'%s'") items) ^ "]"
  in
  Buffer.add_string b (Printf.sprintf "name = \"%s\"\n" cfg.name);
  Buffer.add_string b (Printf.sprintf "kernel = \"%s\"\n" cfg.kernel);
  Buffer.add_string b (Printf.sprintf "memory = %g\n" cfg.memory_mb);
  Buffer.add_string b (Printf.sprintf "vcpus = %d\n" cfg.vcpus);
  if cfg.vifs <> [] then
    Buffer.add_string b (Printf.sprintf "vif = %s\n" (quoted_list cfg.vifs));
  if cfg.disks <> [] then
    Buffer.add_string b
      (Printf.sprintf "disk = %s\n" (quoted_list cfg.disks));
  Buffer.add_string b (Printf.sprintf "on_crash = \"%s\"\n" cfg.on_crash);
  List.iter
    (fun (k, v) -> Buffer.add_string b (Printf.sprintf "%s = \"%s\"\n" k v))
    cfg.extra;
  Buffer.contents b

let devices cfg =
  let module Device = Lightvm_guest.Device in
  List.mapi
    (fun i detail ->
      let bridge =
        match String.index_opt detail '=' with
        | Some j when String.sub detail 0 j = "bridge" ->
            String.sub detail (j + 1) (String.length detail - j - 1)
        | _ -> "xenbr0"
      in
      Device.vif ~bridge ~devid:i ())
    cfg.vifs
  @ List.mapi
      (fun i spec -> Device.vbd ~target:spec ~devid:i ())
      cfg.disks

let image cfg = Lightvm_guest.Image.find cfg.kernel

let make ?(memory_mb = 4.) ?(vcpus = 1) ?(vifs = []) ?(disks = [])
    ?(on_crash = "destroy") ~name ~kernel () =
  { name; kernel; memory_mb; vcpus; vifs; disks; on_crash; extra = [] }

let for_image ?(nics = 1) ?(disks = 0) ~name img =
  let module Image = Lightvm_guest.Image in
  let vifs = List.init nics (fun _ -> "bridge=xenbr0") in
  let disk_specs = List.init disks (fun i ->
      Printf.sprintf "ramdisk,xvd%c,w" (Char.chr (Char.code 'a' + i)))
  in
  make ~memory_mb:img.Image.mem_mb ~vcpus:1 ~vifs ~disks:disk_specs
    ~name ~kernel:img.Image.name ()
