(** Device hotplug in Dom0 (Section 5.3).

    With standard Xen, creating a virtual device runs user-configured
    bash scripts (forked by xl or by udevd) to add the vif to the
    bridge or set up the block device — tens of milliseconds. xendevd
    replaces this with a pre-compiled daemon reacting to udev events
    without forking. *)

val run :
  Mode.hotplug_kind ->
  xen:Lightvm_hv.Xen.t ->
  costs:Costs.t ->
  Lightvm_guest.Device.config ->
  unit
(** Perform the setup for one device, charging Dom0 CPU. Blocks for the
    script/daemon duration. *)

val estimate :
  Mode.hotplug_kind -> costs:Costs.t -> Lightvm_guest.Device.config ->
  float
(** The cost that {!run} will charge (for tests and documentation). *)
