module Engine = Lightvm_sim.Engine

type 'a t = {
  target : int;
  make : unit -> 'a;
  shells : 'a Queue.t;
  mutable refilling : bool;
  mutable made : int;
}

let create ~target ~make =
  if target < 1 then invalid_arg "Pool.create: target < 1";
  { target; make; shells = Queue.create (); refilling = false; made = 0 }

let build t =
  let shell = t.make () in
  t.made <- t.made + 1;
  shell

let prefill t =
  while Queue.length t.shells < t.target do
    Queue.add (build t) t.shells
  done

let size t = Queue.length t.shells
let target t = t.target

let rec refill_loop t =
  if Queue.length t.shells < t.target then begin
    match build t with
    | shell ->
        Queue.add shell t.shells;
        refill_loop t
    | exception _ ->
        (* Background refills must not crash the daemon (e.g. the host
           ran out of memory); creation paths will surface the error
           when a synchronous build fails. *)
        t.refilling <- false
  end
  else t.refilling <- false

let kick_refill t =
  if not t.refilling then begin
    t.refilling <- true;
    Engine.spawn ~name:"chaos-daemon-refill" (fun () -> refill_loop t)
  end

let take t =
  match Queue.take_opt t.shells with
  | Some shell ->
      kick_refill t;
      shell
  | None ->
      kick_refill t;
      build t

let made_total t = t.made
