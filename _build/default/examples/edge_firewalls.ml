(* Personal firewalls at the mobile edge (Section 7.1): a real rule
   engine filtering packets, then the cell-capacity sweep of Fig 16a.

   Run with: dune exec examples/edge_firewalls.exe *)

module Firewall = Lightvm_workloads.Firewall

let show_verdict rs description pkt =
  let verdict =
    match Firewall.eval rs pkt with
    | Firewall.Allow -> "ALLOW"
    | Firewall.Drop -> "DROP"
  in
  Printf.printf "  %-38s -> %s\n" description verdict

let () =
  (* One user's firewall and a few packets through it. *)
  let user_id = 7 in
  let rs = Firewall.personal_ruleset ~user_id in
  let user_ip = 0x0a000000 lor user_id in
  Printf.printf "Personal firewall for user %d (%d rules):\n" user_id
    (Firewall.rule_count rs);
  show_verdict rs "outbound web request"
    { Firewall.src_ip = user_ip; dst_ip = 0x08080808; pkt_proto = `Tcp;
      pkt_dport = 443 };
  show_verdict rs "inbound HTTPS reply"
    { Firewall.src_ip = 0x08080808; dst_ip = user_ip; pkt_proto = `Tcp;
      pkt_dport = 443 };
  show_verdict rs "inbound ssh probe"
    { Firewall.src_ip = 0xdeadbeef; dst_ip = user_ip; pkt_proto = `Tcp;
      pkt_dport = 22 };
  show_verdict rs "inbound ping"
    { Firewall.src_ip = 0x08080808; dst_ip = user_ip; pkt_proto = `Icmp;
      pkt_dport = 0 };
  show_verdict rs "packet for another user"
    { Firewall.src_ip = 0x08080808; dst_ip = user_ip + 1;
      pkt_proto = `Tcp; pkt_dport = 443 };

  (* The capacity experiment: one ClickOS VM per user on the 14-core
     edge box, 10 Mbps per user. *)
  Printf.printf
    "\nCell capacity (one ClickOS firewall VM per user, 10 Mbps each):\n";
  Printf.printf "  %6s  %10s  %13s  %7s\n" "users" "total Gbps"
    "per-user Mbps" "RTT ms";
  List.iter
    (fun p ->
      Printf.printf "  %6d  %10.2f  %13.1f  %7.1f\n"
        p.Firewall.active_users p.Firewall.total_gbps
        p.Firewall.per_user_mbps p.Firewall.rtt_ms)
    (Firewall.capacity ~users:[ 1; 100; 250; 500; 750; 1000 ] ());
  Printf.printf
    "\n(LTE-advanced peaks at ~3.3 Gbps per cell sector: one machine\n\
    \ can run personal firewalls for the whole cell.)\n"
