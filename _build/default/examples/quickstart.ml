(* Quickstart: boot a LightVM host, create a unikernel in a few
   milliseconds, checkpoint it, and migrate it to a second host.

   Run with: dune exec examples/quickstart.exe *)

module Engine = Lightvm_sim.Engine
module Image = Lightvm_guest.Image
module Guest = Lightvm_guest.Guest
module Mode = Lightvm_toolstack.Mode
module Create = Lightvm_toolstack.Create
module Checkpoint = Lightvm_toolstack.Checkpoint
module Migrate = Lightvm_toolstack.Migrate
module Host = Lightvm.Host

let ms t = t *. 1e3

let () =
  ignore
    (Engine.run (fun () ->
         (* A host with every LightVM mechanism on: chaos toolstack,
            noxs instead of the XenStore, split toolstack, xendevd. *)
         let host = Host.create ~mode:Mode.lightvm () in
         Printf.printf "Booted a %s host in mode %S\n"
           (Host.platform host).Lightvm_hv.Params.name
           (Mode.name (Host.mode host));

         (* Warm the chaos daemon's shell pool, then create a VM. *)
         Host.prefill_pool_for host Image.daytime ~nics:1 ~disks:0;
         let vm, t_create, t_boot =
           Host.create_and_boot_time host Image.daytime
         in
         Printf.printf
           "Created %S (domid %d): create %.2f ms + boot %.2f ms = %.2f ms\n"
           vm.Create.vm_name vm.Create.domid (ms t_create) (ms t_boot)
           (ms (t_create +. t_boot));
         Printf.printf "  %d device(s) connected, %.1f MB of guest memory\n"
           (List.length vm.Create.devices)
           (float_of_int
              (Lightvm_hv.Xen.domain_mem_kb (Host.xen host)
                 ~domid:vm.Create.domid)
           /. 1024.);

         (* Checkpoint: save + restore. *)
         let ts = Host.toolstack host in
         let t0 = Engine.now () in
         let saved = Checkpoint.save ts vm in
         Printf.printf "Saved to ramdisk in %.1f ms\n" (ms (Engine.now () -. t0));
         let t0 = Engine.now () in
         let restored = Checkpoint.restore ts saved in
         Guest.wait_ready restored.Create.guest;
         Printf.printf "Restored in %.1f ms\n" (ms (Engine.now () -. t0));

         (* Migrate to a second host. *)
         let dst = Host.create ~mode:Mode.lightvm () in
         let _vm', stats =
           Migrate.migrate ~src:ts ~dst:(Host.toolstack dst) restored
         in
         Printf.printf
           "Migrated in %.1f ms (suspend %.1f + transfer %.1f + resume %.1f)\n"
           (ms stats.Migrate.total) (ms stats.Migrate.suspend)
           (ms stats.Migrate.transfer) (ms stats.Migrate.resume);
         Printf.printf "Guests now: source %d, destination %d\n"
           (Host.vm_count host) (Host.vm_count dst);
         Engine.stop ()))
