(* Lightweight compute service (Section 7.4): spawn a Minipython
   unikernel per request and run real mini-Python programs through the
   from-scratch interpreter.

   Run with: dune exec examples/lambda_service.exe *)

module Interp = Lightvm_minipy.Interp
module Mode = Lightvm_toolstack.Mode
module Lambda = Lightvm_workloads.Lambda

let fib_program =
  {|
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

xs = []
for i in range(12):
    xs.append(fib(i))
print(xs)
|}

let () =
  (* First, the interpreter by itself. *)
  Printf.printf "Running a program through the Minipython interpreter:\n";
  (match Interp.run fib_program with
  | Ok { Interp.stdout; steps; _ } ->
      List.iter (fun line -> Printf.printf "  > %s\n" line) stdout;
      Printf.printf "  (%d interpreter steps)\n" steps
  | Error msg -> Printf.printf "  error: %s\n" msg);

  (* Now as a service: one unikernel per request on an overloaded
     4-core host, LightVM vs the XenStore-based toolstack. *)
  let run mode =
    let config =
      { (Lambda.default_config mode) with Lambda.requests = 200 }
    in
    let result = Lambda.run config in
    let times = List.map snd result.Lambda.service_times in
    let total = List.fold_left ( +. ) 0. times in
    let worst = List.fold_left Float.max 0. times in
    let peak =
      List.fold_left (fun acc (_, c) -> max acc c) 0
        result.Lambda.concurrency
    in
    Printf.printf
      "  %-16s mean service %5.2f s, worst %5.2f s, peak backlog %3d \
       VMs, outputs %s\n"
      (Mode.name mode)
      (total /. float_of_int (List.length times))
      worst peak
      (if result.Lambda.outputs_ok then "verified" else "WRONG");
    result.Lambda.makespan
  in
  Printf.printf
    "\n200 compute requests (approximating e, ~0.8 s each) at 250 ms \
     inter-arrivals\non a 4-core host (3 guest cores -> slightly \
     overloaded):\n";
  let _ = run Mode.chaos_xs in
  let _ = run Mode.lightvm in
  ()
