examples/lambda_service.mli:
