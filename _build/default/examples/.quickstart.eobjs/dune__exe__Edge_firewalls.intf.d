examples/edge_firewalls.mli:
