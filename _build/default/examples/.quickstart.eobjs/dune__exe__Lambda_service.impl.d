examples/lambda_service.ml: Float Lightvm_minipy Lightvm_toolstack Lightvm_workloads List Printf
