examples/build_tinyx.ml: Lightvm Lightvm_guest Lightvm_sim Lightvm_tinyx Lightvm_toolstack List Printf String
