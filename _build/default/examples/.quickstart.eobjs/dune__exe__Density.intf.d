examples/density.mli:
