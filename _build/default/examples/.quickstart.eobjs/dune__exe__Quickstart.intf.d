examples/quickstart.mli:
