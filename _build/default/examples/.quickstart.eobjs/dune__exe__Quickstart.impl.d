examples/quickstart.ml: Lightvm Lightvm_guest Lightvm_hv Lightvm_sim Lightvm_toolstack List Printf
