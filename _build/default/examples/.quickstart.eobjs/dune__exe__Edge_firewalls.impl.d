examples/edge_firewalls.ml: Lightvm_workloads List Printf
