examples/build_tinyx.mli:
