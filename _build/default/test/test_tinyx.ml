(* Tests for the Tinyx build system: package resolution, overlay
   assembly, kernel config minimisation and end-to-end builds. *)

module Package = Lightvm_tinyx.Package
module Data = Lightvm_tinyx.Data
module Depsolve = Lightvm_tinyx.Depsolve
module Overlay = Lightvm_tinyx.Overlay
module Kconfig = Lightvm_tinyx.Kconfig
module Kt = Lightvm_tinyx.Kconfig_types
module Build = Lightvm_tinyx.Build
module Image = Lightvm_guest.Image

let repo = Data.repo

(* ------------------------------------------------------------------ *)
(* Depsolve *)

let test_closure () =
  match Depsolve.closure ~repo [ "nginx" ] with
  | Error msg -> Alcotest.failf "closure failed: %s" msg
  | Ok packages ->
      List.iter
        (fun expected ->
          Alcotest.(check bool) ("includes " ^ expected) true
            (List.mem expected packages))
        [ "nginx"; "libc6"; "libpcre3"; "libssl1.0"; "zlib1g" ]

let test_closure_unknown () =
  match Depsolve.closure ~repo [ "no-such-package" ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown package resolved"

let test_blacklist_drops_install_machinery () =
  (* A package whose closure pulls dpkg through the whitelist test. *)
  match Depsolve.resolve ~repo ~app:"nginx" () with
  | Error msg -> Alcotest.failf "resolve failed: %s" msg
  | Ok r ->
      Alcotest.(check bool) "no dpkg" false
        (List.mem "dpkg" r.Depsolve.packages);
      Alcotest.(check bool) "no systemd" false
        (List.mem "systemd" r.Depsolve.packages);
      Alcotest.(check bool) "busybox included" true
        (List.mem "busybox" r.Depsolve.packages)

let test_whitelist_overrides () =
  match Depsolve.resolve ~repo ~app:"nginx" ~whitelist:[ "perl-base" ] () with
  | Error msg -> Alcotest.failf "resolve failed: %s" msg
  | Ok r ->
      Alcotest.(check bool) "perl whitelisted back" true
        (List.mem "perl-base" r.Depsolve.packages)

let test_objdump_libs_resolved () =
  (* micropython links libffi -> libffi6 package must appear. *)
  match Depsolve.resolve ~repo ~app:"micropython" () with
  | Error msg -> Alcotest.failf "resolve failed: %s" msg
  | Ok r ->
      Alcotest.(check bool) "libffi6 pulled via objdump" true
        (List.mem "libffi6" r.Depsolve.packages)

let prop_closure_is_closed =
  QCheck.Test.make ~name:"dependency closure is transitively closed"
    ~count:50
    (QCheck.make
       (QCheck.Gen.oneofl
          [ "nginx"; "micropython"; "redis-server"; "haproxy"; "iperf" ]))
    (fun app ->
      match Depsolve.closure ~repo [ app ] with
      | Error _ -> false
      | Ok packages ->
          List.for_all
            (fun name ->
              match Package.find repo name with
              | None -> false
              | Some p ->
                  List.for_all
                    (fun dep -> List.mem dep packages)
                    p.Package.deps)
            packages)

(* ------------------------------------------------------------------ *)
(* Overlay *)

let test_overlay_strips_caches () =
  match Depsolve.resolve ~repo ~app:"nginx" () with
  | Error msg -> Alcotest.failf "resolve failed: %s" msg
  | Ok r ->
      let overlay =
        Overlay.assemble ~repo ~packages:r.Depsolve.packages ~app_glue_kb:8
      in
      Alcotest.(check bool) "something was stripped" true
        (Overlay.stripped_kb overlay > 0);
      Alcotest.(check bool) "distribution smaller than upper+busybox" true
        (Overlay.distribution_kb overlay
        < Overlay.upper_kb overlay + Overlay.busybox_underlay.Overlay.files_kb);
      Alcotest.(check bool) "way below debootstrap base" true
        (Overlay.distribution_kb overlay
        < Overlay.debootstrap_base.Overlay.files_kb / 4)

(* ------------------------------------------------------------------ *)
(* Kconfig *)

let test_kconfig_platform () =
  let xen = Kconfig.for_platform Kt.Xen_pv in
  Alcotest.(check bool) "xen frontend on" true
    (Kconfig.is_enabled xen "CONFIG_XEN_NETDEV_FRONTEND");
  Alcotest.(check bool) "dependencies pulled" true
    (Kconfig.is_enabled xen "CONFIG_NET"
    && Kconfig.is_enabled xen "CONFIG_HYPERVISOR_GUEST");
  Alcotest.(check bool) "no baremetal piles" false
    (Kconfig.is_enabled xen "CONFIG_DRIVERS_GPU_PILE")

let test_kconfig_disable_cascades () =
  let xen = Kconfig.for_platform Kt.Xen_pv in
  let without_net = Kconfig.disable xen "CONFIG_NET" in
  Alcotest.(check bool) "dependent option dropped too" false
    (Kconfig.is_enabled without_net "CONFIG_XEN_NETDEV_FRONTEND")

let test_kconfig_enable_unknown () =
  match Kconfig.enable Kconfig.tinyconfig "CONFIG_NOT_REAL" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown option enabled"

let test_kconfig_sizes () =
  let tinyx = Kconfig.for_platform Kt.Xen_pv in
  let debian = Kconfig.debian_like in
  let tinyx_kb = Kconfig.image_kb tinyx in
  let debian_kb = Kconfig.image_kb debian in
  (* Paper: Tinyx kernels are about half the size of Debian kernels. *)
  Alcotest.(check bool)
    (Printf.sprintf "tinyx kernel much smaller (%d vs %d kb)" tinyx_kb
       debian_kb)
    true
    (float_of_int tinyx_kb < 0.55 *. float_of_int debian_kb);
  (* Paper: 1.6 MB runtime for Tinyx vs 8 MB for Debian. *)
  let tinyx_rt = Kconfig.runtime_kb tinyx in
  let debian_rt = Kconfig.runtime_kb debian in
  Alcotest.(check bool)
    (Printf.sprintf "runtime %d kb in [1200, 2200]" tinyx_rt)
    true
    (tinyx_rt >= 1_200 && tinyx_rt <= 2_200);
  Alcotest.(check bool)
    (Printf.sprintf "debian runtime %d kb > 3x tinyx" debian_rt)
    true
    (debian_rt > 3 * tinyx_rt)

let test_kconfig_prune () =
  (* Start from a config with spurious extras and prune for iperf. *)
  let base = Kconfig.for_platform Kt.Xen_pv in
  let bloated =
    List.fold_left
      (fun acc o ->
        match Kconfig.enable acc o with Ok c -> c | Error _ -> acc)
      base
      [ "CONFIG_INET"; "CONFIG_IPV6"; "CONFIG_NETFILTER";
        "CONFIG_DRIVERS_SOUND_PILE"; "CONFIG_EXT4_FS" ]
  in
  let pruned, iterations = Kconfig.prune ~platform:Kt.Xen_pv ~app:"iperf"
      bloated in
  Alcotest.(check bool) "iterations ran" true (iterations > 0);
  Alcotest.(check bool) "sound pile pruned" false
    (Kconfig.is_enabled pruned "CONFIG_DRIVERS_SOUND_PILE");
  Alcotest.(check bool) "ipv6 pruned" false
    (Kconfig.is_enabled pruned "CONFIG_IPV6");
  Alcotest.(check bool) "still boots" true
    (Kconfig.boots pruned ~platform:Kt.Xen_pv ~app:"iperf");
  Alcotest.(check bool) "smaller" true
    (Kconfig.image_kb pruned < Kconfig.image_kb bloated)

let prop_prune_preserves_boot =
  QCheck.Test.make ~name:"pruning never breaks the boot test" ~count:40
    (QCheck.make
       (QCheck.Gen.oneofl
          [ "nginx"; "micropython"; "redis-server"; "iperf" ]))
    (fun app ->
      let base = Kconfig.for_platform Kt.Xen_pv in
      let with_app =
        List.fold_left
          (fun acc o ->
            match Kconfig.enable acc o with Ok c -> c | Error _ -> acc)
          base (Data.app_required app)
      in
      let pruned, _ = Kconfig.prune ~platform:Kt.Xen_pv ~app with_app in
      Kconfig.boots pruned ~platform:Kt.Xen_pv ~app
      && Kconfig.image_kb pruned <= Kconfig.image_kb with_app)

(* ------------------------------------------------------------------ *)
(* End-to-end build *)

let test_build_nginx () =
  match Build.build (Build.spec ~app:"nginx" ()) with
  | Error msg -> Alcotest.failf "build failed: %s" msg
  | Ok report ->
      let img = report.Build.image in
      (* Paper Section 3.2: images of a few tens of MBs, ~30 MB RAM. *)
      Alcotest.(check bool)
        (Printf.sprintf "disk %.1f MB in [5, 40]" img.Image.disk_mb)
        true
        (img.Image.disk_mb > 5. && img.Image.disk_mb < 40.);
      Alcotest.(check bool)
        (Printf.sprintf "mem %.1f MB in [10, 45]" img.Image.mem_mb)
        true
        (img.Image.mem_mb > 10. && img.Image.mem_mb < 45.);
      Alcotest.(check bool) "kernel about half of debian" true
        (report.Build.kernel_kb * 2 < report.Build.debian_kernel_kb + 400);
      Alcotest.(check bool) "blacklist applied" true
        (report.Build.blacklisted <> [])

let test_build_no_app () =
  match Build.build Build.default_spec with
  | Error msg -> Alcotest.failf "build failed: %s" msg
  | Ok report ->
      Alcotest.(check bool) "smaller than nginx build" true
        (match Build.build (Build.spec ~app:"nginx" ()) with
        | Ok nginx ->
            report.Build.distribution_kb < nginx.Build.distribution_kb
        | Error _ -> false)

let test_build_unknown_app () =
  match Build.build (Build.spec ~app:"definitely-not-a-package" ()) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown app built"

let test_build_prune_smaller () =
  let build prune =
    match
      Build.build (Build.spec ~app:"micropython" ~prune_kernel:prune ())
    with
    | Ok r -> r
    | Error msg -> Alcotest.failf "build failed: %s" msg
  in
  let pruned = build true and unpruned = build false in
  Alcotest.(check bool) "pruned kernel no larger" true
    (pruned.Build.kernel_kb <= unpruned.Build.kernel_kb);
  Alcotest.(check bool) "pruning iterated" true
    (pruned.Build.prune_iterations > 0)

let suites =
  [
    ( "tinyx.depsolve",
      [
        Alcotest.test_case "closure" `Quick test_closure;
        Alcotest.test_case "unknown package" `Quick test_closure_unknown;
        Alcotest.test_case "blacklist" `Quick
          test_blacklist_drops_install_machinery;
        Alcotest.test_case "whitelist" `Quick test_whitelist_overrides;
        Alcotest.test_case "objdump libs" `Quick
          test_objdump_libs_resolved;
        QCheck_alcotest.to_alcotest prop_closure_is_closed;
      ] );
    ( "tinyx.overlay",
      [ Alcotest.test_case "strips caches" `Quick test_overlay_strips_caches ]
    );
    ( "tinyx.kconfig",
      [
        Alcotest.test_case "platform options" `Quick test_kconfig_platform;
        Alcotest.test_case "disable cascades" `Quick
          test_kconfig_disable_cascades;
        Alcotest.test_case "unknown option" `Quick
          test_kconfig_enable_unknown;
        Alcotest.test_case "paper size ratios" `Quick test_kconfig_sizes;
        Alcotest.test_case "pruning loop" `Quick test_kconfig_prune;
        QCheck_alcotest.to_alcotest prop_prune_preserves_boot;
      ] );
    ( "tinyx.build",
      [
        Alcotest.test_case "nginx image" `Quick test_build_nginx;
        Alcotest.test_case "no-app image" `Quick test_build_no_app;
        Alcotest.test_case "unknown app" `Quick test_build_unknown_app;
        Alcotest.test_case "pruning shrinks" `Quick
          test_build_prune_smaller;
      ] );
  ]
